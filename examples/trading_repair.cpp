// Trading scenario (the paper's Example 5 / §6.1.1 narrative): a
// TradeOrder decrypts a customer payload — genuinely expensive CPU work —
// then reads security prices. A concurrent PriceUpdate invalidates one of
// its security predicates. Under OMVCC the whole order restarts,
// re-decrypting the payload; under MV3C the repair re-reads one price and
// re-encodes one trade line. This example stages exactly that and reports
// the work each engine did.
//
//   build/examples/trading_repair

#include <cstdio>

#include "workloads/trading.h"

using namespace mv3c;
using namespace mv3c::trading;

int main() {
  TransactionManager mgr;
  TradingDb db(&mgr, /*securities=*/100000, /*customers=*/1000);
  db.Load();

  // The client prepares an encrypted order for 3 securities.
  OrderPayload payload{};
  payload.trade_id = 1;
  payload.timestamp = 42;
  payload.n_items = 3;
  payload.items[0] = {100, 1};
  payload.items[1] = {200, -1};
  payload.items[2] = {300, 1};
  TradeOrderParams order;
  order.customer_id = 7;
  order.payload = EncodePayload(payload, CustomerKeyFor(7));

  std::printf("staging: TradeOrder(3 securities) vs concurrent "
              "PriceUpdate(security 200)\n\n");

  // --- MV3C ---
  Mv3cExecutor trade(&mgr);
  trade.Reset(Mv3cTradeOrder(db, order));
  trade.Begin();  // snapshot drawn before the price update commits
  Mv3cExecutor pu(&mgr);
  pu.MustRun(Mv3cPriceUpdate(db, {200, 7777}));
  StepResult r = trade.Step();
  std::printf("MV3C : first attempt  -> %s\n",
              r == StepResult::kNeedsRetry ? "validation failed" : "commit");
  r = trade.Step();
  std::printf("MV3C : repair+commit  -> %s\n",
              r == StepResult::kCommitted ? "committed" : "failed");
  std::printf("MV3C : invalidated predicates=%llu, closures re-executed=%llu"
              " (the decrypt closure did NOT re-run)\n\n",
              static_cast<unsigned long long>(
                  trade.stats().invalidated_predicates),
              static_cast<unsigned long long>(
                  trade.stats().reexecuted_closures));

  // --- OMVCC, same staging on a fresh database ---
  TransactionManager mgr2;
  TradingDb db2(&mgr2, 100000, 1000);
  db2.Load();
  OmvccExecutor trade2(&mgr2);
  trade2.Reset(OmvccTradeOrder(db2, order));
  trade2.Begin();
  OmvccExecutor pu2(&mgr2);
  pu2.MustRun(OmvccPriceUpdate(db2, {200, 7777}));
  r = trade2.Step();
  std::printf("OMVCC: first attempt  -> %s\n",
              r == StepResult::kNeedsRetry
                  ? "conflict (full restart: re-decrypt, re-read all)"
                  : "commit");
  int extra_rounds = 0;
  while (r == StepResult::kNeedsRetry) {
    r = trade2.Step();
    ++extra_rounds;
  }
  std::printf("OMVCC: committed after %d full re-execution(s)\n",
              extra_rounds);

  // Verify the MV3C-repaired trade line carries the NEW price.
  Mv3cExecutor reader(&mgr);
  reader.MustRun([&](Mv3cTransaction& t) {
    return t.Lookup(
        db.trade_lines, payload.trade_id * 16 + 1, ColumnMask::All(),
        [&](Mv3cTransaction&, TradeLineTable::Object*,
            const TradeLineRow* row) {
          const OrderPayload line =
              DecodePayload(row->encrypted_data, CustomerKeyFor(7));
          std::printf("\nrepaired trade line for security 200: traded price "
                      "%lld (expected 7777: sell order)\n",
                      static_cast<long long>(line.trade_id));
          return ExecStatus::kOk;
        });
  });
  return 0;
}
