// Quickstart: define a table, write MV3C transaction programs with
// predicates and closures, run them through the executor, and watch a
// conflict get repaired instead of restarted.
//
//   build/examples/quickstart

#include <cstdio>

#include "common/macros.h"
#include "mv3c/mv3c_executor.h"
#include "mv3c/mv3c_transaction.h"

using namespace mv3c;

// 1. A row type. Column ids feed attribute-level validation (§4.1); rows
//    that implement MergeFrom compose partial-column writes correctly.
struct Account {
  int64_t balance = 0;

  void MergeFrom(const Account& base, ColumnMask modified) {
    if (!modified.Contains(0)) balance = base.balance;
  }
};
constexpr ColumnMask kBalance = ColumnMask::Of(0);

int main() {
  // 2. The shared transaction manager and a table. kAllowMultiple lets
  //    read-modify-write conflicts reach validation (and repair) instead
  //    of fail-fasting during execution.
  TransactionManager mgr;
  Table<int64_t, Account> accounts("accounts", 1024,
                                   WwPolicy::kAllowMultiple);

  // 3. Populate: programs are callables receiving the MV3C DSL facade.
  Mv3cExecutor loader(&mgr);
  loader.MustRun([&](Mv3cTransaction& t) {
    for (int64_t id = 0; id < 10; ++id) {
      t.InsertRow(accounts, id, Account{1000});
    }
    return ExecStatus::kOk;
  });

  // 4. A transfer program: the sender lookup is the root predicate; its
  //    closure updates the sender and creates a child predicate for the
  //    receiver. On a conflict, only the invalidated predicate's closure
  //    re-executes (Algorithm 2).
  auto transfer = [&](int64_t from, int64_t to, int64_t amount) {
    return [&accounts, from, to, amount](Mv3cTransaction& t) {
      return t.Lookup(
          accounts, from, kBalance,
          [&accounts, to, amount](Mv3cTransaction& t, auto* from_obj,
                                  const Account* from_row) -> ExecStatus {
            if (from_row == nullptr || from_row->balance < amount) {
              return ExecStatus::kUserAbort;  // insufficient funds
            }
            Account updated = *from_row;
            updated.balance -= amount;
            ExecStatus st = t.UpdateRow(accounts, from_obj, updated, kBalance);
            if (st != ExecStatus::kOk) return st;
            return t.Lookup(accounts, to, kBalance,
                            [&accounts, amount](Mv3cTransaction& t,
                                                auto* to_obj,
                                                const Account* to_row) {
                              Account u = *to_row;
                              u.balance += amount;
                              return t.UpdateRow(accounts, to_obj, u,
                                                 kBalance);
                            });
          });
    };
  };

  // 5. Run one transaction to completion.
  Mv3cExecutor exec(&mgr);
  StepResult r = exec.Run(transfer(0, 1, 250));
  std::printf("transfer committed: %s\n",
              r == StepResult::kCommitted ? "yes" : "no");

  // 6. Stage a conflict: two overlapping transfers touching account 2.
  //    b reads account 2, then a commits a change to it; b's validation
  //    fails and the repair re-executes ONLY the receiver's closure.
  Mv3cExecutor a(&mgr), b(&mgr);
  a.Reset(transfer(3, 2, 100));
  b.Reset(transfer(4, 2, 100));
  a.Begin();
  b.Begin();
  r = a.Step();                 // a commits first
  MV3C_CHECK(r == StepResult::kCommitted);
  r = b.Step();                 // b fails validation -> repair pending
  std::printf("b first attempt: %s\n",
              r == StepResult::kNeedsRetry ? "validation failed (repairing)"
                                           : "committed");
  r = b.Step();                 // repair + revalidate -> commit
  std::printf("b after repair : %s (closures re-executed: %llu)\n",
              r == StepResult::kCommitted ? "committed" : "failed",
              static_cast<unsigned long long>(
                  b.stats().reexecuted_closures));

  // 7. Check the final state with a read-only scan.
  Mv3cExecutor reader(&mgr);
  reader.MustRun([&](Mv3cTransaction& t) {
    return t.Scan(
        accounts, [](const Account&) { return true; }, kBalance, false,
        [](Mv3cTransaction&,
           const std::vector<ScanEntry<Table<int64_t, Account>>>& rows) {
          int64_t total = 0;
          for (const auto& e : rows) total += e.row.balance;
          std::printf("total balance  : %lld (money conserved)\n",
                      static_cast<long long>(total));
          return ExecStatus::kOk;
        });
  });
  return 0;
}
