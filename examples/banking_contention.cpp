// Banking under contention (the paper's Example 2): a stream of
// TransferMoney transactions that all conflict on the central fee account,
// driven at increasing concurrency under both engines. Shows live how
// MV3C's repairs (one closure each) beat OMVCC's full restarts, and that
// the money-conservation invariant survives.
//
//   build/examples/banking_contention [n_txns]

#include <cstdio>
#include <cstdlib>

#include "driver/window_driver.h"
#include "workloads/banking.h"

using namespace mv3c;

int main(int argc, char** argv) {
  const uint64_t n_txns = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                   : 50000;
  const int64_t n_accounts = 10000;
  std::printf("Banking example: %llu TransferMoney txns, %lld accounts, all "
              "conflicting on the fee account\n\n",
              static_cast<unsigned long long>(n_txns),
              static_cast<long long>(n_accounts));
  std::printf("%12s %14s %14s %14s %14s\n", "concurrency", "mv3c tx/s",
              "mv3c repairs", "omvcc tx/s", "omvcc fails");

  for (size_t window : {1, 4, 16, 64}) {
    banking::TransferGenerator gen(n_accounts, 100, 1);
    std::vector<banking::TransferParams> stream(n_txns);
    for (auto& p : stream) p = gen.Next();

    // MV3C run.
    TransactionManager mgr1;
    banking::BankingDb db1(&mgr1, n_accounts, 1'000'000);
    db1.Load();
    WindowDriver<Mv3cExecutor> d1(
        window, [&](...) { return std::make_unique<Mv3cExecutor>(&mgr1); },
        [&] { mgr1.CollectGarbage(); });
    auto t0 = std::chrono::steady_clock::now();
    const DriveResult r1 = d1.Run(CountedSource<Mv3cExecutor::Program>(
        n_txns,
        [&](uint64_t i) { return banking::Mv3cTransferMoney(db1, stream[i]); }));
    const double s1 =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    uint64_t repairs = 0;
    for (auto* e : d1.executors()) repairs += e->stats().repair_rounds;

    // OMVCC run on identical input.
    TransactionManager mgr2;
    banking::BankingDb db2(&mgr2, n_accounts, 1'000'000);
    db2.Load();
    WindowDriver<OmvccExecutor> d2(
        window, [&](...) { return std::make_unique<OmvccExecutor>(&mgr2); },
        [&] { mgr2.CollectGarbage(); });
    t0 = std::chrono::steady_clock::now();
    const DriveResult r2 = d2.Run(CountedSource<OmvccExecutor::Program>(
        n_txns, [&](uint64_t i) {
          return banking::OmvccTransferMoney(db2, stream[i]);
        }));
    const double s2 =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    uint64_t fails = 0;
    for (auto* e : d2.executors()) {
      fails += e->stats().validation_failures + e->stats().ww_restarts;
    }

    std::printf("%12zu %14.0f %14llu %14.0f %14llu\n", window,
                r1.committed / s1, static_cast<unsigned long long>(repairs),
                r2.committed / s2, static_cast<unsigned long long>(fails));

    // Invariant: total money unchanged under both engines.
    const int64_t want = n_accounts * 1'000'000;
    if (db1.TotalBalance() != want || db2.TotalBalance() != want) {
      std::printf("MONEY CONSERVATION VIOLATED\n");
      return 1;
    }
  }
  std::printf("\nmoney conserved under both engines at every concurrency "
              "level\n");
  return 0;
}
