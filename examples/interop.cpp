// Interoperability (paper §3): MV3C and OMVCC transactions running in the
// same database at the same time. The only interaction between engines is
// the validation phase, and both share the recently-committed list of the
// transaction manager — so a system can migrate programs to MV3C one at a
// time. This example runs a mixed stream and cross-checks the invariant.
//
//   build/examples/interop

#include <cstdio>
#include <thread>

#include "driver/window_driver.h"
#include "workloads/banking.h"

using namespace mv3c;

int main() {
  constexpr int64_t kAccounts = 1000;
  constexpr uint64_t kTxnsPerEngine = 20000;
  TransactionManager mgr;  // ONE manager serves both engines
  banking::BankingDb db(&mgr, kAccounts, 1'000'000);
  db.Load();

  banking::TransferGenerator gen_m(kAccounts, 100, 11);
  banking::TransferGenerator gen_o(kAccounts, 100, 22);
  std::vector<banking::TransferParams> stream_m(kTxnsPerEngine);
  std::vector<banking::TransferParams> stream_o(kTxnsPerEngine);
  for (auto& p : stream_m) p = gen_m.Next();
  for (auto& p : stream_o) p = gen_o.Next();

  std::printf("running %llu MV3C and %llu OMVCC TransferMoney transactions "
              "concurrently against one database...\n",
              static_cast<unsigned long long>(kTxnsPerEngine),
              static_cast<unsigned long long>(kTxnsPerEngine));

  DriveResult rm, ro;
  std::thread mv3c_thread([&] {
    WindowDriver<Mv3cExecutor> d(
        8, [&](...) { return std::make_unique<Mv3cExecutor>(&mgr); },
        [&] { mgr.CollectGarbage(); });
    rm = d.Run(CountedSource<Mv3cExecutor::Program>(
        kTxnsPerEngine, [&](uint64_t i) {
          return banking::Mv3cTransferMoney(db, stream_m[i]);
        }));
  });
  std::thread omvcc_thread([&] {
    WindowDriver<OmvccExecutor> d(
        8, [&](...) { return std::make_unique<OmvccExecutor>(&mgr); });
    ro = d.Run(CountedSource<OmvccExecutor::Program>(
        kTxnsPerEngine, [&](uint64_t i) {
          return banking::OmvccTransferMoney(db, stream_o[i]);
        }));
  });
  mv3c_thread.join();
  omvcc_thread.join();

  std::printf("MV3C : %llu committed, %llu user-aborted\n",
              static_cast<unsigned long long>(rm.committed),
              static_cast<unsigned long long>(rm.user_aborted));
  std::printf("OMVCC: %llu committed, %llu user-aborted\n",
              static_cast<unsigned long long>(ro.committed),
              static_cast<unsigned long long>(ro.user_aborted));

  const int64_t total = db.TotalBalance();
  const int64_t want = kAccounts * 1'000'000;
  std::printf("total balance: %lld (expected %lld) -> %s\n",
              static_cast<long long>(total), static_cast<long long>(want),
              total == want ? "serializable interop confirmed" : "VIOLATION");
  return total == want ? 0 : 1;
}
