#!/usr/bin/env bash
# Compares a fresh benchmark capture against a committed baseline.
#
#   usage: scripts/bench_compare.sh [baseline] [fresh] [build_dir]
#
# With no `fresh` argument the script first runs bench_capture.sh into a
# temp file, so the one-liner after a perf-sensitive change is just
# `scripts/bench_compare.sh` from the repo root. Runs are joined on
# (bench, engine, window) and the per-run committed-throughput delta is
# printed, plus a per-bench rollup; the fig7a/fig8 headline rows are the
# ones ISSUE acceptance criteria reference. Exit status is 0 always —
# this is a reporting tool, thresholds are the reviewer's call (quick-
# scale runs on shared CI hardware are too noisy for a hard gate).
set -u
BASELINE="${1:-BENCH_baseline.json}"
FRESH="${2:-}"
BUILD_DIR="${3:-build}"

if [ ! -f "$BASELINE" ]; then
  echo "baseline not found: $BASELINE" >&2
  exit 2
fi

cleanup=""
if [ -z "$FRESH" ]; then
  FRESH="$(mktemp --suffix=.json)"
  cleanup="$FRESH"
  trap 'rm -f "$cleanup"' EXIT
  echo "capturing fresh run into $FRESH ..." >&2
  "$(dirname "$0")/bench_capture.sh" "$BUILD_DIR" "$FRESH" || true
fi

python3 - "$BASELINE" "$FRESH" <<'EOF'
import json
import sys
from collections import defaultdict

def load(path):
    with open(path) as f:
        doc = json.load(f)
    runs = {}
    for r in doc.get("runs", []):
        # Serving runs (bench/loadgen.cc) are parameterized by the offered
        # arrival rate, not the bench window — it joins the key so a 4k/s
        # run never diffs against a 20k/s one.
        runs[(r["bench"], r["engine"], r.get("window", 0),
              r.get("arrival_rate", 0))] = r
    return doc, runs

base_doc, base = load(sys.argv[1])
fresh_doc, fresh = load(sys.argv[2])
print(f"baseline: {sys.argv[1]} (git {base_doc.get('git', '?')}, "
      f"{base_doc.get('scale', '?')} scale)")
print(f"fresh:    {sys.argv[2]} (git {fresh_doc.get('git', '?')}, "
      f"{fresh_doc.get('scale', '?')} scale)")
if base_doc.get("scale") != fresh_doc.get("scale"):
    print("WARNING: scale mismatch, deltas are not comparable")
print()

hdr = (f"{'bench':32} {'engine':22} {'win':>4} {'rate':>7} "
       f"{'base tps':>12} {'new tps':>12} {'delta':>8} {'shed':>12}")
print(hdr)
print("-" * len(hdr))
per_bench = defaultdict(list)
for key in sorted(base.keys() | fresh.keys()):
    b, f = base.get(key), fresh.get(key)
    bench, engine, window, rate = key
    rate_s = f"{rate:.0f}" if rate else "-"
    if b is None or f is None:
        side = "baseline" if f is None else "fresh"
        print(f"{bench:32} {engine:22} {window:>4} {rate_s:>7} "
              f"{'(only in ' + side + ')':>34}")
        continue
    delta = (f["tps"] - b["tps"]) / b["tps"] * 100 if b["tps"] else 0.0
    per_bench[bench].append(delta)
    # Serving runs carry a shed fraction; show base->fresh so an admission
    # regression (more load shed at the same offered rate) is visible next
    # to the throughput delta it explains.
    if "shed_fraction" in b or "shed_fraction" in f:
        shed = (f"{b.get('shed_fraction', 0) * 100:4.1f}->"
                f"{f.get('shed_fraction', 0) * 100:4.1f}%")
    else:
        shed = ""
    print(f"{bench:32} {engine:22} {window:>4} {rate_s:>7} "
          f"{b['tps']:12.1f} {f['tps']:12.1f} {delta:+7.1f}% {shed:>12}")

print()
print("per-bench mean delta:")
for bench in sorted(per_bench):
    ds = per_bench[bench]
    print(f"  {bench:32} {sum(ds) / len(ds):+6.1f}%  "
          f"(n={len(ds)}, min {min(ds):+.1f}%, max {max(ds):+.1f}%)")
EOF
