#!/usr/bin/env bash
# Serving-stack smoke/integration check (DESIGN §5k): starts mv3c_serve,
# drives bench/loadgen open-loop against it over localhost, scrapes
# /metrics and /healthz over HTTP, and asserts the server's Prometheus
# txn_committed counter equals the number of committed acks the loadgen
# observed — the end-to-end proof that no commit is double-counted, lost,
# or acked without running.
#
#   usage: scripts/serve_smoke.sh [build_dir] [workload] [ack] [rate] [secs]
#
#   ack: "none" (default, no WAL), "async", or "sync" (WAL group commit;
#        sync additionally requires every committed ack to carry the
#        durable flag — the loadgen does not check flags, the server test
#        does, so here sync just exercises the durable path end to end).
set -u

BUILD_DIR="${1:-build}"
WL="${2:-banking}"
ACK="${3:-none}"
RATE="${4:-2000}"
SECS="${5:-3}"

SERVE="$BUILD_DIR/src/server/mv3c_serve"
LOADGEN="$BUILD_DIR/bench/loadgen"
for bin in "$SERVE" "$LOADGEN"; do
  if [ ! -x "$bin" ]; then
    echo "SKIP: $bin not built" >&2
    exit 77
  fi
done

case "$WL" in
  tpcc) SCALE=1 ;;
  *)    SCALE=20000 ;;
esac

TMP="$(mktemp -d)"
serve_pid=""
cleanup() {
  [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null
  [ -n "$serve_pid" ] && wait "$serve_pid" 2>/dev/null
  rm -rf "$TMP"
}
trap cleanup EXIT

serve_args=(--workload="$WL" --workers=4 --scale="$SCALE" --port=0)
if [ "$ACK" != none ]; then
  mkdir -p "$TMP/wal"
  serve_args+=(--wal --wal-dir="$TMP/wal" --ack="$ACK")
fi

"$SERVE" "${serve_args[@]}" > "$TMP/serve.out" 2> "$TMP/serve.err" &
serve_pid=$!

PORT=""
for _ in $(seq 1 150); do
  PORT="$(sed -n 's/^LISTENING port=//p' "$TMP/serve.out")"
  [ -n "$PORT" ] && break
  if ! kill -0 "$serve_pid" 2>/dev/null; then
    echo "FAIL: mv3c_serve died during startup" >&2
    cat "$TMP/serve.err" >&2
    exit 1
  fi
  sleep 0.2
done
if [ -z "$PORT" ]; then
  echo "FAIL: mv3c_serve never printed LISTENING" >&2
  exit 1
fi
echo "mv3c_serve up: workload=$WL ack=$ACK port=$PORT" >&2

# Warmup 0 so the loadgen's committed count covers *every* request it sent
# — that is what makes exact equality against the server counter possible.
if ! "$LOADGEN" --port="$PORT" --workload="$WL" --scale="$SCALE" \
     --rate="$RATE" --seconds="$SECS" --warmup-seconds=0 \
     --drain-seconds=5 --connections=4 > "$TMP/loadgen.out" 2>&1; then
  echo "FAIL: loadgen exited nonzero" >&2
  cat "$TMP/loadgen.out" >&2
  exit 1
fi
cat "$TMP/loadgen.out" >&2

python3 - "$TMP/loadgen.out" "$PORT" <<'EOF'
import json
import sys
import urllib.request

with open(sys.argv[1]) as f:
    runjson = [l for l in f if l.startswith("RUNJSON ")]
assert len(runjson) == 1, f"expected 1 RUNJSON line, got {len(runjson)}"
run = json.loads(runjson[0][len("RUNJSON "):])
port = sys.argv[2]

health = urllib.request.urlopen(f"http://127.0.0.1:{port}/healthz", timeout=10)
assert health.status == 200 and health.read().strip() == b"ok", "healthz"

metrics = urllib.request.urlopen(
    f"http://127.0.0.1:{port}/metrics", timeout=10).read().decode()
scraped = {}
for line in metrics.splitlines():
    if line.startswith("#") or not line:
        continue
    name, _, value = line.rpartition(" ")
    scraped[name.split("{")[0]] = float(value)

committed = int(scraped["mv3c_server_txn_committed_total"])
assert run["unanswered"] == 0, f"loadgen lost {run['unanswered']} responses"
assert committed == run["committed"], (
    f"server committed {committed} != loadgen acked-committed "
    f"{run['committed']}")
# The engine's own commit counter (published per-worker snapshots) must
# agree with the front-end's atomic counter.
engine = int(scraped.get("mv3c_engine_commits_total", -1))
assert engine == committed, f"engine commits {engine} != server {committed}"
assert run["committed"] > 0, "nothing committed"
print(f"OK: {run['committed']} commits acked == scraped "
      f"mv3c_server_txn_committed_total == mv3c_engine_commits_total; "
      f"shed_fraction={run['shed_fraction']:.4f} "
      f"p99={run['p99_us']:.0f}us")
EOF
status=$?
if [ $status -ne 0 ]; then
  echo "FAIL: metrics equality check" >&2
  exit 1
fi
echo "PASS: serve_smoke $WL ack=$ACK" >&2
