#!/usr/bin/env bash
# Captures a benchmark baseline: runs every RUNJSON-emitting bench binary
# and collects their RUNJSON lines into one JSON array (default
# BENCH_baseline.json) with a small metadata header. Quick (CI) scale by
# default; MV3C_BENCH_FULL=1 switches to paper-scale inputs.
#
#   usage: scripts/bench_capture.sh [build_dir] [out_file]
#
# ROADMAP calls for committing the baseline before the WAL-parallelization
# work starts, so perf regressions there have something to diff against.
set -u
BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_baseline.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

fail=0
for b in "$BUILD_DIR"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  case "$name" in
    micro_core) continue ;;  # google-benchmark harness, no RUNJSON
  esac
  echo "===== $name =====" >&2
  if ! "$b" > "$TMP.run" 2>&1; then
    echo "FAILED: $name (exit $?)" >&2
    tail -5 "$TMP.run" >&2
    fail=1
    continue
  fi
  grep '^RUNJSON ' "$TMP.run" | sed 's/^RUNJSON //' >> "$TMP"
  rm -f "$TMP.run"
done

# Serving scenario (DESIGN §5k): start mv3c_serve on an ephemeral port and
# drive bench/loadgen open-loop against it; the loadgen's RUNJSON (keyed
# serve_<workload>, carrying arrival_rate / shed_fraction / p99) joins the
# baseline alongside the in-process benches. Skipped silently when either
# binary is absent (e.g. a WAL-off tree that never built the server).
SERVE_BIN="$BUILD_DIR/src/server/mv3c_serve"
LOADGEN_BIN="$BUILD_DIR/bench/loadgen"
if [ -x "$SERVE_BIN" ] && [ -x "$LOADGEN_BIN" ]; then
  if [ -n "${MV3C_BENCH_FULL:-}" ]; then
    serve_rate=20000; serve_secs=10; serve_scale=100000
  else
    serve_rate=4000; serve_secs=3; serve_scale=20000
  fi
  for wl in banking tpcc; do
    scale="$serve_scale"
    [ "$wl" = tpcc ] && scale=1
    echo "===== serve_$wl (loadgen @$serve_rate/s) =====" >&2
    "$SERVE_BIN" --workload="$wl" --workers=4 --scale="$scale" \
      > "$TMP.serve" 2>/dev/null &
    serve_pid=$!
    port=""
    for _ in $(seq 1 100); do
      port="$(sed -n 's/^LISTENING port=//p' "$TMP.serve")"
      [ -n "$port" ] && break
      sleep 0.2
    done
    if [ -z "$port" ]; then
      echo "FAILED: serve_$wl (server never listened)" >&2
      kill "$serve_pid" 2>/dev/null; wait "$serve_pid" 2>/dev/null
      fail=1
      continue
    fi
    if "$LOADGEN_BIN" --port="$port" --workload="$wl" --scale="$scale" \
         --rate="$serve_rate" --seconds="$serve_secs" --warmup-seconds=1 \
         --connections=4 > "$TMP.run" 2>&1; then
      grep '^RUNJSON ' "$TMP.run" | sed 's/^RUNJSON //' >> "$TMP"
    else
      echo "FAILED: serve_$wl (loadgen exit $?)" >&2
      tail -5 "$TMP.run" >&2
      fail=1
    fi
    kill "$serve_pid" 2>/dev/null
    wait "$serve_pid" 2>/dev/null
    rm -f "$TMP.run" "$TMP.serve"
  done
fi

n="$(wc -l < "$TMP")"
{
  printf '{\n'
  printf '  "captured": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "git": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  printf '  "scale": "%s",\n' "${MV3C_BENCH_FULL:+full}${MV3C_BENCH_FULL:-quick}"
  printf '  "runs": [\n'
  awk '{ printf "    %s%s\n", $0, (NR=='"$n"' ? "" : ",") }' "$TMP"
  printf '  ]\n}\n'
} > "$OUT"
echo "wrote $OUT ($n runs)" >&2
exit $fail
