#!/usr/bin/env bash
# Captures a benchmark baseline: runs every RUNJSON-emitting bench binary
# and collects their RUNJSON lines into one JSON array (default
# BENCH_baseline.json) with a small metadata header. Quick (CI) scale by
# default; MV3C_BENCH_FULL=1 switches to paper-scale inputs.
#
#   usage: scripts/bench_capture.sh [build_dir] [out_file]
#
# ROADMAP calls for committing the baseline before the WAL-parallelization
# work starts, so perf regressions there have something to diff against.
set -u
BUILD_DIR="${1:-build}"
OUT="${2:-BENCH_baseline.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

fail=0
for b in "$BUILD_DIR"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  case "$name" in
    micro_core) continue ;;  # google-benchmark harness, no RUNJSON
  esac
  echo "===== $name =====" >&2
  if ! "$b" > "$TMP.run" 2>&1; then
    echo "FAILED: $name (exit $?)" >&2
    tail -5 "$TMP.run" >&2
    fail=1
    continue
  fi
  grep '^RUNJSON ' "$TMP.run" | sed 's/^RUNJSON //' >> "$TMP"
  rm -f "$TMP.run"
done

n="$(wc -l < "$TMP")"
{
  printf '{\n'
  printf '  "captured": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "git": "%s",\n' "$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
  printf '  "scale": "%s",\n' "${MV3C_BENCH_FULL:+full}${MV3C_BENCH_FULL:-quick}"
  printf '  "runs": [\n'
  awk '{ printf "    %s%s\n", $0, (NR=='"$n"' ? "" : ",") }' "$TMP"
  printf '  ]\n}\n'
} > "$OUT"
echo "wrote $OUT ($n runs)" >&2
exit $fail
