#!/usr/bin/env bash
# Runs every benchmark binary in sequence. Quick (CI) scale by default;
# MV3C_BENCH_FULL=1 switches to paper-scale inputs.
set -u
BUILD_DIR="${1:-build}"
for b in "$BUILD_DIR"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  echo "===== $(basename "$b") ====="
  "$b"
  echo
done
