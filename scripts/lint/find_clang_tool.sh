#!/usr/bin/env bash
# Shared clang tool discovery for the lint suite and CI.
#
# Usage: scripts/lint/find_clang_tool.sh <tool> [tool...]
#   Prints the first found spelling of the first tool that resolves —
#   bare name first, then Debian/Ubuntu versioned suffixes, newest first.
#   Exit 0 with the spelling on stdout, exit 1 (silent) when none resolve.
#
# Example: CLANG_QUERY="$(scripts/lint/find_clang_tool.sh clang-query)" || ...

set -u

if [[ $# -lt 1 ]]; then
  echo "usage: $0 <tool> [tool...]" >&2
  exit 2
fi

for tool in "$@"; do
  for cand in "${tool}" "${tool}-20" "${tool}-19" "${tool}-18" \
              "${tool}-17" "${tool}-16" "${tool}-15" "${tool}-14"; do
    if command -v "${cand}" >/dev/null 2>&1; then
      echo "${cand}"
      exit 0
    fi
  done
done
exit 1
