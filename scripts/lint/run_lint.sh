#!/usr/bin/env bash
# Structured lint suite driver (DESIGN §5e/§5j).
#
# Prefers the mv3c_analyze libTooling binary (tools/mv3c_analyze — all nine
# protocol rules, suppressions, per-TU result caching) and falls back to
# the clang-query AST rules (scripts/lint/rules/*.query — the original five
# matchers) on machines without clang dev headers. Neither tool available
# degrades to a no-op unless MV3C_LINT_STRICT=1 (CI sets it), where the
# gate must never silently skip.
#
# Usage: scripts/lint/run_lint.sh [build-dir]
#   build-dir defaults to `build` and must contain compile_commands.json
#   (the top-level CMakeLists sets CMAKE_EXPORT_COMPILE_COMMANDS=ON).
#
# Environment:
#   MV3C_LINT_STRICT=1    missing tools are a setup error, not a skip.
#   MV3C_LINT_FALLBACK=1  force the clang-query path even when the
#                         analyzer binary exists (CI exercises this leg).
#   MV3C_ANALYZE=path     analyzer binary override (default:
#                         <build-dir>/tools/mv3c_analyze/mv3c_analyze).
#   MV3C_LINT_CACHE=dir   analyzer result cache (default:
#                         <build-dir>/mv3c_analyze_cache).
#
# Exit codes: 0 clean (or tools unavailable and MV3C_LINT_STRICT unset),
#             1 rule violation, 2 setup error.

set -u

cd "$(dirname "$0")/../.."
BUILD_DIR="${1:-build}"
RULES_DIR="scripts/lint/rules"

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "lint: ${BUILD_DIR}/compile_commands.json not found." >&2
  echo "lint: configure first: cmake -B ${BUILD_DIR} -S ." >&2
  exit 2
fi

# ---------------------------------------------------------------------------
# Preferred path: the mv3c_analyze binary.
# ---------------------------------------------------------------------------
ANALYZER="${MV3C_ANALYZE:-${BUILD_DIR}/tools/mv3c_analyze/mv3c_analyze}"
if [[ "${MV3C_LINT_FALLBACK:-0}" == "0" && -x "${ANALYZER}" ]]; then
  CACHE_DIR="${MV3C_LINT_CACHE:-${BUILD_DIR}/mv3c_analyze_cache}"
  echo "lint: running ${ANALYZER} (cache: ${CACHE_DIR})"
  "${ANALYZER}" -p "${BUILD_DIR}" --root "$(pwd)" --cache-dir "${CACHE_DIR}"
  rc=$?
  if [[ ${rc} -eq 0 ]]; then
    echo "lint: ok   mv3c_analyze (all rules clean)"
  fi
  exit "${rc}"
fi
if [[ "${MV3C_LINT_FALLBACK:-0}" == "0" ]]; then
  echo "lint: mv3c_analyze not built (${ANALYZER}); falling back to clang-query."
fi

# ---------------------------------------------------------------------------
# Fallback path: clang-query over scripts/lint/rules/*.query.
# ---------------------------------------------------------------------------
CLANG_QUERY="$(scripts/lint/find_clang_tool.sh clang-query)" || CLANG_QUERY=""
if [[ -z "${CLANG_QUERY}" ]]; then
  if [[ "${MV3C_LINT_STRICT:-0}" != "0" ]]; then
    echo "lint: neither mv3c_analyze nor clang-query available and" \
         "MV3C_LINT_STRICT is set." >&2
    exit 2
  fi
  echo "lint: no lint tool found; skipping AST lint (set" \
       "MV3C_LINT_STRICT=1 to make this an error)."
  exit 0
fi

# Every first-party translation unit in the compilation database. The
# per-rule file scoping (src/, bench/, exemptions) lives inside the
# matchers themselves, so headers are covered through whichever TU
# includes them.
mapfile -t FILES < <(python3 - "${BUILD_DIR}/compile_commands.json" <<'EOF'
import json, os, sys
root = os.getcwd() + os.sep
seen = []
for entry in json.load(open(sys.argv[1])):
    f = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
    if f.startswith(root) and f not in seen:
        seen.append(f)
print("\n".join(seen))
EOF
)
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "lint: no first-party files in compilation database?" >&2
  exit 2
fi

FAILED=0
for rule in "${RULES_DIR}"/*.query; do
  out="$(${CLANG_QUERY} -p "${BUILD_DIR}" -f "${rule}" "${FILES[@]}" 2>&1)"
  # A parse/matcher error would report zero matches and read as a clean
  # pass; surface it as a setup failure instead.
  if printf '%s\n' "${out}" | grep -qE '(^|/)[^:]*:[0-9]+:[0-9]+: error: |^Error parsing|unknown command'; then
    echo "lint: ERROR running $(basename "${rule}"):"
    printf '%s\n' "${out}" | head -40 | sed 's/^/  /'
    exit 2
  fi
  # clang-query prints "N matches." / "1 match." per `match` command; a
  # violation is any nonzero total.
  hits="$(printf '%s\n' "${out}" | grep -cE '^.*: note: "root" binds here' || true)"
  if [[ "${hits}" -gt 0 ]]; then
    echo "lint: FAIL $(basename "${rule}") — ${hits} match(es):"
    printf '%s\n' "${out}" | grep -vE '^[0-9]+ match(es)?\.$' | sed 's/^/  /'
    FAILED=1
  else
    echo "lint: ok   $(basename "${rule}")"
  fi
done

exit "${FAILED}"
