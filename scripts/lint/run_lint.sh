#!/usr/bin/env bash
# Structured lint suite: clang-query AST rules over compile_commands.json.
#
# Replaces the old grep-based hygiene checks (raw version new/delete, stray
# *Stats structs) with matchers that see types and template arguments
# instead of token spellings, plus a rule greps could never express
# (std::lock_guard<SpinLock> hiding a lock from the thread-safety
# analysis). Rules live in scripts/lint/rules/*.query, one file per rule,
# each self-documenting.
#
# Usage: scripts/lint/run_lint.sh [build-dir]
#   build-dir defaults to `build` and must contain compile_commands.json
#   (the top-level CMakeLists sets CMAKE_EXPORT_COMPILE_COMMANDS=ON).
#
# Exit codes: 0 clean (or tool unavailable and MV3C_LINT_STRICT unset),
#             1 rule violation, 2 setup error.
# Set MV3C_LINT_STRICT=1 (CI does) to make a missing clang-query fatal:
# locally the suite degrades to a no-op on gcc-only machines, but the gate
# must never silently skip where it is the gate.

set -u

cd "$(dirname "$0")/../.."
BUILD_DIR="${1:-build}"
RULES_DIR="scripts/lint/rules"

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "lint: ${BUILD_DIR}/compile_commands.json not found." >&2
  echo "lint: configure first: cmake -B ${BUILD_DIR} -S ." >&2
  exit 2
fi

CLANG_QUERY=""
for cand in clang-query clang-query-20 clang-query-19 clang-query-18 \
            clang-query-17 clang-query-16 clang-query-15 clang-query-14; do
  if command -v "${cand}" >/dev/null 2>&1; then
    CLANG_QUERY="${cand}"
    break
  fi
done
if [[ -z "${CLANG_QUERY}" ]]; then
  if [[ "${MV3C_LINT_STRICT:-0}" != "0" ]]; then
    echo "lint: clang-query not found and MV3C_LINT_STRICT is set." >&2
    exit 2
  fi
  echo "lint: clang-query not found; skipping AST lint (set" \
       "MV3C_LINT_STRICT=1 to make this an error)."
  exit 0
fi

# Every first-party translation unit in the compilation database. The
# per-rule file scoping (src/, bench/, exemptions) lives inside the
# matchers themselves, so headers are covered through whichever TU
# includes them.
mapfile -t FILES < <(python3 - "${BUILD_DIR}/compile_commands.json" <<'EOF'
import json, os, sys
root = os.getcwd() + os.sep
seen = []
for entry in json.load(open(sys.argv[1])):
    f = os.path.normpath(os.path.join(entry["directory"], entry["file"]))
    if f.startswith(root) and f not in seen:
        seen.append(f)
print("\n".join(seen))
EOF
)
if [[ ${#FILES[@]} -eq 0 ]]; then
  echo "lint: no first-party files in compilation database?" >&2
  exit 2
fi

FAILED=0
for rule in "${RULES_DIR}"/*.query; do
  out="$(${CLANG_QUERY} -p "${BUILD_DIR}" -f "${rule}" "${FILES[@]}" 2>&1)"
  # A parse/matcher error would report zero matches and read as a clean
  # pass; surface it as a setup failure instead.
  if printf '%s\n' "${out}" | grep -qE '(^|/)[^:]*:[0-9]+:[0-9]+: error: |^Error parsing|unknown command'; then
    echo "lint: ERROR running $(basename "${rule}"):"
    printf '%s\n' "${out}" | head -40 | sed 's/^/  /'
    exit 2
  fi
  # clang-query prints "N matches." / "1 match." per `match` command; a
  # violation is any nonzero total.
  hits="$(printf '%s\n' "${out}" | grep -cE '^.*: note: "root" binds here' || true)"
  if [[ "${hits}" -gt 0 ]]; then
    echo "lint: FAIL $(basename "${rule}") — ${hits} match(es):"
    printf '%s\n' "${out}" | grep -vE '^[0-9]+ match(es)?\.$' | sed 's/^/  /'
    FAILED=1
  else
    echo "lint: ok   $(basename "${rule}")"
  fi
done

exit "${FAILED}"
