// wal_dump: offline pretty-printer for redo-log segments (src/wal format,
// DESIGN §5f). Walks each segment's blocks and records, verifying every
// CRC layer, and keeps going past corruption (unlike recovery, which stops
// at the first invalid byte) so a damaged log can be inspected in full.
//
//   wal_dump [-v] <wal-segment-file>...
//
// Exit status is 0 if every segment checked out, 1 otherwise.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "wal/wal_format.h"

namespace {

using mv3c::wal::BlockHeader;
using mv3c::wal::BlockHeaderCrc;
using mv3c::wal::RecordCrcOk;
using mv3c::wal::RecordHeader;
using mv3c::wal::RecordType;
using mv3c::wal::SegmentHeader;
using mv3c::wal::ValidSegmentHeader;

bool ReadWholeFile(const char* path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out->resize(size < 0 ? 0 : static_cast<size_t>(size));
  const size_t got = out->empty() ? 0 : std::fread(out->data(), 1,
                                                   out->size(), f);
  std::fclose(f);
  return got == out->size();
}

void PrintKeyBytes(const uint8_t* key, uint32_t n) {
  const uint32_t shown = n < 8 ? n : 8;
  std::printf("key=");
  for (uint32_t i = 0; i < shown; ++i) std::printf("%02x", key[i]);
  if (shown < n) std::printf("..");
}

const char* TypeName(uint8_t t) {
  if (t == static_cast<uint8_t>(RecordType::kUpsert)) return "upsert";
  if (t == static_cast<uint8_t>(RecordType::kDelete)) return "delete";
  return "?";
}

/// Dumps one segment; returns true if every CRC verified.
bool DumpSegment(const char* path, bool verbose) {
  std::vector<uint8_t> buf;
  if (!ReadWholeFile(path, &buf)) {
    std::printf("%s: unreadable\n", path);
    return false;
  }
  std::printf("%s: %zu bytes\n", path, buf.size());
  if (buf.size() < sizeof(SegmentHeader)) {
    std::printf("  [truncated segment header]\n");
    return false;
  }
  SegmentHeader sh;
  std::memcpy(&sh, buf.data(), sizeof(sh));
  if (!ValidSegmentHeader(sh)) {
    std::printf("  [BAD segment header]\n");
    return false;
  }
  std::printf("  segment header ok (format v%u)\n", sh.format_version);

  bool clean = true;
  size_t off = sizeof(SegmentHeader);
  while (off < buf.size()) {
    if (buf.size() - off < sizeof(BlockHeader)) {
      std::printf("  @%zu [truncated block header: %zu trailing bytes]\n",
                  off, buf.size() - off);
      return false;
    }
    BlockHeader bh;
    std::memcpy(&bh, buf.data() + off, sizeof(bh));
    if (bh.magic != mv3c::wal::kBlockMagic) {
      std::printf("  @%zu [bad block magic 0x%08x]\n", off, bh.magic);
      return false;  // cannot resynchronize: block sizes are in headers
    }
    const bool header_ok = bh.header_crc == BlockHeaderCrc(bh);
    const uint8_t* payload = buf.data() + off + sizeof(BlockHeader);
    const bool payload_present =
        header_ok && buf.size() - off - sizeof(BlockHeader) >= bh.payload_bytes;
    const bool payload_ok =
        payload_present &&
        mv3c::crc32::Compute(payload, bh.payload_bytes) == bh.payload_crc;
    std::printf("  @%zu block epoch=%" PRIu64
                " records=%u payload=%uB header_crc=%s payload_crc=%s\n",
                off, bh.epoch, bh.n_records, bh.payload_bytes,
                header_ok ? "ok" : "BAD",
                !payload_present ? "missing" : (payload_ok ? "ok" : "BAD"));
    if (!header_ok || !payload_present) return false;
    clean = clean && payload_ok;

    size_t roff = 0;
    for (uint32_t i = 0; i < bh.n_records; ++i) {
      if (bh.payload_bytes - roff < sizeof(RecordHeader)) {
        std::printf("    [record %u truncated]\n", i);
        clean = false;
        break;
      }
      RecordHeader rh;
      std::memcpy(&rh, payload + roff, sizeof(rh));
      const size_t rsize = sizeof(RecordHeader) + rh.key_bytes + rh.val_bytes;
      if (bh.payload_bytes - roff < rsize) {
        std::printf("    [record %u overruns payload]\n", i);
        clean = false;
        break;
      }
      const bool rec_ok = RecordCrcOk(payload + roff, rh);
      clean = clean && rec_ok;
      if (verbose || !rec_ok) {
        std::printf("    table=%u ts=%" PRIu64 " %s%s%s mask=%016" PRIx64
                    " %uB+%uB ",
                    rh.table_id, rh.commit_ts, TypeName(rh.type),
                    (rh.flags & mv3c::wal::kFlagInsert) ? " insert" : "",
                    (rh.flags & mv3c::wal::kFlagRepaired) ? " repaired" : "",
                    rh.column_mask, rh.key_bytes, rh.val_bytes);
        PrintKeyBytes(payload + roff + sizeof(RecordHeader), rh.key_bytes);
        std::printf(" crc=%s\n", rec_ok ? "ok" : "BAD");
      }
      roff += rsize;
    }
    off += sizeof(BlockHeader) + bh.payload_bytes;
  }
  return clean;
}

}  // namespace

int main(int argc, char** argv) {
  bool verbose = false;
  std::vector<const char*> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-v") == 0) {
      verbose = true;
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "usage: wal_dump [-v] <wal-segment-file>...\n");
    return 2;
  }
  bool all_ok = true;
  for (const char* p : paths) all_ok = DumpSegment(p, verbose) && all_ok;
  return all_ok ? 0 : 1;
}
