// wal_dump: offline pretty-printer for every durability artifact in a log
// directory (src/wal formats, DESIGN §5f–5g): WAL segments, checkpoint
// manifests, and checkpoint table segments. The file kind is sniffed from
// its magic, so globbing the whole directory works:
//
//   wal_dump [-v] <wal-segment|MANIFEST-*|table-*.ckpt>...
//
// Walks each file's framing, verifying every CRC layer, and keeps going
// past corruption (unlike recovery, which stops at the first invalid byte)
// so a damaged log can be inspected in full. For manifests it also prints
// the implied WAL suffix (the epochs recovery would still replay).
//
// Exit status is 0 if every file checked out, 1 otherwise.

#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "wal/checkpoint_format.h"
#include "wal/wal_format.h"

namespace {

using mv3c::wal::BlockHeader;
using mv3c::wal::BlockHeaderCrc;
using mv3c::wal::CkptSegmentHeader;
using mv3c::wal::CkptTableKind;
using mv3c::wal::ManifestHeader;
using mv3c::wal::ManifestTableEntry;
using mv3c::wal::RecordCrcOk;
using mv3c::wal::RecordHeader;
using mv3c::wal::RecordType;
using mv3c::wal::SegmentHeader;
using mv3c::wal::ValidCkptSegmentHeader;
using mv3c::wal::ValidSegmentHeader;

bool ReadWholeFile(const char* path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) return false;
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  out->resize(size < 0 ? 0 : static_cast<size_t>(size));
  const size_t got = out->empty() ? 0 : std::fread(out->data(), 1,
                                                   out->size(), f);
  std::fclose(f);
  return got == out->size();
}

void PrintKeyBytes(const uint8_t* key, uint32_t n) {
  const uint32_t shown = n < 8 ? n : 8;
  std::printf("key=");
  for (uint32_t i = 0; i < shown; ++i) std::printf("%02x", key[i]);
  if (shown < n) std::printf("..");
}

const char* TypeName(uint8_t t) {
  if (t == static_cast<uint8_t>(RecordType::kUpsert)) return "upsert";
  if (t == static_cast<uint8_t>(RecordType::kDelete)) return "delete";
  return "?";
}

const char* KindName(uint8_t k) {
  if (k == static_cast<uint8_t>(CkptTableKind::kMvcc)) return "mvcc";
  if (k == static_cast<uint8_t>(CkptTableKind::kSv)) return "sv";
  return "?";
}

void PrintRecord(const uint8_t* rec, const RecordHeader& rh, bool rec_ok) {
  std::printf("    table=%u ts=%" PRIu64 " %s%s%s mask=%016" PRIx64
              " %uB+%uB ",
              rh.table_id, rh.commit_ts, TypeName(rh.type),
              (rh.flags & mv3c::wal::kFlagInsert) ? " insert" : "",
              (rh.flags & mv3c::wal::kFlagRepaired) ? " repaired" : "",
              rh.column_mask, rh.key_bytes, rh.val_bytes);
  PrintKeyBytes(rec + sizeof(RecordHeader), rh.key_bytes);
  std::printf(" crc=%s\n", rec_ok ? "ok" : "BAD");
}

/// Walks a flat run of WAL-framed records (a checkpoint segment's body).
/// Returns true if every record framed and CRC-verified; counts them.
bool WalkRecords(const uint8_t* p, size_t n, bool verbose,
                 uint64_t* count) {
  size_t off = 0;
  bool clean = true;
  while (off < n) {
    if (n - off < sizeof(RecordHeader)) {
      std::printf("    @%zu [truncated record header: %zu trailing "
                  "bytes]\n",
                  off, n - off);
      return false;
    }
    RecordHeader rh;
    std::memcpy(&rh, p + off, sizeof(rh));
    const size_t rsize = sizeof(RecordHeader) + rh.key_bytes + rh.val_bytes;
    if (n - off < rsize) {
      std::printf("    @%zu [record overruns file]\n", off);
      return false;
    }
    const bool rec_ok = RecordCrcOk(p + off, rh);
    clean = clean && rec_ok;
    if (verbose || !rec_ok) PrintRecord(p + off, rh, rec_ok);
    ++*count;
    off += rsize;
  }
  return clean;
}

/// Dumps a checkpoint table segment; returns true if fully valid. The
/// printed file_crc/bytes/record count can be checked against the owning
/// manifest's entry by eye (the manifest is the authority on what they
/// SHOULD be; a standalone segment cannot know).
bool DumpCkptSegment(const char* path, const std::vector<uint8_t>& buf,
                     bool verbose) {
  std::printf("%s: checkpoint segment, %zu bytes, file_crc=%08x\n", path,
              buf.size(), mv3c::crc32::Compute(buf.data(), buf.size()));
  CkptSegmentHeader h;
  std::memcpy(&h, buf.data(), sizeof(h));
  if (!ValidCkptSegmentHeader(h)) {
    std::printf("  [BAD checkpoint segment header]\n");
    return false;
  }
  std::printf("  header ok: table=%u checkpoint_seq=%" PRIu64
              " (format v%u)\n",
              h.table_id, h.checkpoint_seq, h.format_version);
  uint64_t count = 0;
  const bool clean = WalkRecords(buf.data() + sizeof(h),
                                 buf.size() - sizeof(h), verbose, &count);
  std::printf("  %" PRIu64 " records, %s\n", count,
              clean ? "all crc ok" : "DAMAGED");
  return clean;
}

/// Dumps a checkpoint manifest; returns true if it validates as a unit.
bool DumpManifest(const char* path, const std::vector<uint8_t>& buf) {
  std::printf("%s: checkpoint manifest, %zu bytes\n", path, buf.size());
  if (buf.size() < sizeof(ManifestHeader)) {
    std::printf("  [truncated manifest header]\n");
    return false;
  }
  ManifestHeader h;
  std::memcpy(&h, buf.data(), sizeof(h));
  if (h.format_version != mv3c::wal::kCkptFormatVersion) {
    std::printf("  [unknown format v%u]\n", h.format_version);
    return false;
  }
  const size_t want =
      sizeof(ManifestHeader) +
      static_cast<size_t>(h.n_tables) * sizeof(ManifestTableEntry);
  if (buf.size() != want) {
    std::printf("  [size mismatch: %u tables imply %zu bytes]\n",
                h.n_tables, want);
    return false;
  }
  std::vector<ManifestTableEntry> entries(h.n_tables);
  if (h.n_tables != 0) {
    std::memcpy(entries.data(), buf.data() + sizeof(h),
                entries.size() * sizeof(ManifestTableEntry));
  }
  const bool crc_ok =
      mv3c::wal::ManifestCrc(h, entries.data(), h.n_tables) ==
      h.manifest_crc;
  std::printf("  seq=%" PRIu64 " checkpoint_ts=%" PRIu64
              " cut_epoch=%" PRIu64 " tables=%u crc=%s\n",
              h.checkpoint_seq, h.checkpoint_ts, h.cut_epoch, h.n_tables,
              crc_ok ? "ok" : "BAD");
  uint64_t rows = 0;
  for (const ManifestTableEntry& e : entries) {
    std::printf("    table=%u kind=%s scan_ts=%" PRIu64
                " records=%" PRIu64 " bytes=%" PRIu64 " file_crc=%08x\n",
                e.table_id, KindName(e.kind), e.scan_ts, e.record_count,
                e.file_bytes, e.file_crc);
    rows += e.record_count;
  }
  std::printf("  %" PRIu64 " checkpointed rows; implied WAL suffix: "
              "replay blocks with epoch > %" PRIu64 "\n",
              rows, h.cut_epoch);
  return crc_ok;
}

/// Parses the partition id out of a `wal-pPP-NNNNNN.log` basename; returns
/// -1 for the single-stream `wal-NNNNNN.log` naming (or anything else).
int PartitionOfPath(const char* path) {
  const char* base = std::strrchr(path, '/');
  base = base == nullptr ? path : base + 1;
  unsigned partition = 0;
  unsigned seg = 0;
  if (std::sscanf(base, "wal-p%2u-%6u.log", &partition, &seg) == 2) {
    return static_cast<int>(partition);
  }
  return -1;
}

/// Dumps one WAL segment; returns true if every CRC verified.
bool DumpSegment(const char* path, const std::vector<uint8_t>& buf,
                 bool verbose) {
  const int partition = PartitionOfPath(path);
  if (partition >= 0) {
    std::printf("%s: %zu bytes (partition %d stream)\n", path, buf.size(),
                partition);
  } else {
    std::printf("%s: %zu bytes\n", path, buf.size());
  }
  if (buf.size() < sizeof(SegmentHeader)) {
    std::printf("  [truncated segment header]\n");
    return false;
  }
  SegmentHeader sh;
  std::memcpy(&sh, buf.data(), sizeof(sh));
  if (!ValidSegmentHeader(sh)) {
    std::printf("  [BAD segment header]\n");
    return false;
  }
  std::printf("  segment header ok (format v%u)\n", sh.format_version);

  bool clean = true;
  size_t off = sizeof(SegmentHeader);
  while (off < buf.size()) {
    if (buf.size() - off < sizeof(BlockHeader)) {
      std::printf("  @%zu [truncated block header: %zu trailing bytes]\n",
                  off, buf.size() - off);
      return false;
    }
    BlockHeader bh;
    std::memcpy(&bh, buf.data() + off, sizeof(bh));
    if (bh.magic != mv3c::wal::kBlockMagic) {
      std::printf("  @%zu [bad block magic 0x%08x]\n", off, bh.magic);
      return false;  // cannot resynchronize: block sizes are in headers
    }
    const bool header_ok = bh.header_crc == BlockHeaderCrc(bh);
    const uint8_t* payload = buf.data() + off + sizeof(BlockHeader);
    const bool payload_present =
        header_ok && buf.size() - off - sizeof(BlockHeader) >= bh.payload_bytes;
    const bool payload_ok =
        payload_present &&
        mv3c::crc32::Compute(payload, bh.payload_bytes) == bh.payload_crc;
    // A heartbeat block (partitioned logs only) proves its stream was
    // merely idle for the epoch, not torn — worth calling out explicitly.
    const bool heartbeat =
        header_ok && bh.payload_bytes == 0 && bh.n_records == 0;
    std::printf("  @%zu block epoch=%" PRIu64
                " records=%u payload=%uB header_crc=%s payload_crc=%s%s\n",
                off, bh.epoch, bh.n_records, bh.payload_bytes,
                header_ok ? "ok" : "BAD",
                !payload_present ? "missing" : (payload_ok ? "ok" : "BAD"),
                heartbeat ? " [heartbeat]" : "");
    if (!header_ok || !payload_present) return false;
    clean = clean && payload_ok;

    size_t roff = 0;
    for (uint32_t i = 0; i < bh.n_records; ++i) {
      if (bh.payload_bytes - roff < sizeof(RecordHeader)) {
        std::printf("    [record %u truncated]\n", i);
        clean = false;
        break;
      }
      RecordHeader rh;
      std::memcpy(&rh, payload + roff, sizeof(rh));
      const size_t rsize = sizeof(RecordHeader) + rh.key_bytes + rh.val_bytes;
      if (bh.payload_bytes - roff < rsize) {
        std::printf("    [record %u overruns payload]\n", i);
        clean = false;
        break;
      }
      const bool rec_ok = RecordCrcOk(payload + roff, rh);
      clean = clean && rec_ok;
      if (verbose || !rec_ok) PrintRecord(payload + roff, rh, rec_ok);
      roff += rsize;
    }
    off += sizeof(BlockHeader) + bh.payload_bytes;
  }
  return clean;
}

/// Routes one file to the right dumper by sniffing its magic.
bool DumpFile(const char* path, bool verbose) {
  std::vector<uint8_t> buf;
  if (!ReadWholeFile(path, &buf)) {
    std::printf("%s: unreadable\n", path);
    return false;
  }
  if (buf.size() >= 8 &&
      std::memcmp(buf.data(), mv3c::wal::kManifestMagic, 8) == 0) {
    return DumpManifest(path, buf);
  }
  if (buf.size() >= sizeof(CkptSegmentHeader) &&
      std::memcmp(buf.data(), mv3c::wal::kCkptSegmentMagic, 8) == 0) {
    return DumpCkptSegment(path, buf, verbose);
  }
  return DumpSegment(path, buf, verbose);
}

}  // namespace

int main(int argc, char** argv) {
  bool verbose = false;
  std::vector<const char*> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-v") == 0) {
      verbose = true;
    } else {
      paths.push_back(argv[i]);
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr,
                 "usage: wal_dump [-v] "
                 "<wal-segment|MANIFEST-*|table-*.ckpt>...\n");
    return 2;
  }
  bool all_ok = true;
  for (const char* p : paths) all_ok = DumpFile(p, verbose) && all_ok;
  return all_ok ? 0 : 1;
}
