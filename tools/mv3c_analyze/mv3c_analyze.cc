// mv3c_analyze — the project's protocol analyzer (DESIGN §5j).
//
// A clang libTooling binary driven by compile_commands.json that enforces
// the conventions the MV3C repair protocol leans on. It absorbs the five
// clang-query AST rules (scripts/lint/rules/*.query, kept as the fallback
// for machines without clang dev headers) and adds four flow/protocol
// checks a stateless matcher cannot express:
//
//   lock_scope_io        blocking file I/O or system-allocator calls
//                        lexically inside a SpinLockGuard scope or inside a
//                        REQUIRES/ACQUIRE-annotated function body (the
//                        TruncateSegmentsBefore bug class from PR 8).
//   timestamp_discipline raw >>/&/| arithmetic on mv3c::Timestamp values,
//                        or epoch-vs-composed-TID comparisons, outside
//                        mvcc/timestamp.h and common/epoch_clock.h.
//   guarded_by_coverage  in any class that declares a capability member,
//                        every non-const, non-atomic data member must be
//                        GUARDED_BY-annotated, a lock/sync primitive, a
//                        type that owns its own lock, or suppressed.
//   atomic_memory_order  every std::atomic operation names its
//                        memory_order explicitly — no defaulted seq_cst.
//
// Suppressions: `// mv3c-lint: allow(rule[,rule...])` on the offending
// line, or as a whole-line comment applying to the next line. Unused or
// unknown-rule suppressions are themselves errors, so stale escapes cannot
// linger.
//
// Caching: per-TU results are stored under --cache-dir keyed on the
// compile command + tool version + rule set, validated against an MD5 of
// every file the TU visited; an unchanged TU is merged from cache without
// re-parsing.
//
// Exit codes match run_lint.sh: 0 clean, 1 findings (or bad suppressions),
// 2 setup/parse error.

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/DeclTemplate.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/ParentMapContext.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/Basic/OperatorKinds.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Tooling/ArgumentsAdjusters.h"
#include "clang/Tooling/CommonOptionsParser.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/Tooling.h"
#include "llvm/ADT/StringRef.h"
#include "llvm/ADT/Twine.h"
#include "llvm/Support/CommandLine.h"
#include "llvm/Support/FileSystem.h"
#include "llvm/Support/JSON.h"
#include "llvm/Support/MD5.h"
#include "llvm/Support/MemoryBuffer.h"
#include "llvm/Support/Path.h"
#include "llvm/Support/Regex.h"
#include "llvm/Support/raw_ostream.h"

using namespace clang;

namespace {

// Bump on any rule-table / allowlist / visitor change: the version feeds
// the per-TU cache key, so stale caches cannot mask new findings.
constexpr const char kToolVersion[] = "mv3c_analyze-2";

// StringRef::startswith/endswith were renamed across the LLVM versions this
// tool must build against; slice + operator== is stable everywhere.
bool HasPrefix(llvm::StringRef s, llvm::StringRef p) {
  return s.size() >= p.size() && s.slice(0, p.size()) == p;
}
bool HasSuffix(llvm::StringRef s, llvm::StringRef p) {
  return s.size() >= p.size() && s.slice(s.size() - p.size(), s.size()) == p;
}

// ---------------------------------------------------------------------------
// Rule catalog
// ---------------------------------------------------------------------------

struct RuleInfo {
  const char* name;
  // Directories (relative to --root) the rule polices.
  const char* dirs_re;
  // Files inside those directories that are exempt ("" = none).
  const char* exempt_re;
  const char* summary;
};

// Order is the reporting order. The first five replicate the clang-query
// rules byte-for-byte in scope and exemptions; the last four are new.
const RuleInfo kRules[] = {
    {"no_raw_version_new", "^(src|bench|examples)/",
     "(^|/)mvcc/version_arena\\.(h|cc)$",
     "versions/records must go through VersionArena::Create/Destroy"},
    {"no_bare_lock_guard", "^src/", "",
     "SpinLock acquisitions must use SpinLockGuard (annotated), not "
     "std::lock_guard"},
    {"no_stats_outside_obs", "^(src|bench)/",
     "(^|/)src/obs/|(^|/)mvcc/version_arena\\.h$|(^|/)sv/sv_transaction\\.h$",
     "engine *Stats structs belong in src/obs/engine_stats.h"},
    {"no_raw_io_outside_wal", "^(src|bench)/", "(^|/)src/wal/",
     "durable file I/O is the WAL's monopoly"},
    {"no_global_ts_counter", "^(src|bench|examples)/",
     "(^|/)mvcc/transaction_manager\\.h$|(^|/)common/epoch_clock\\.h$",
     "no second timestamp authority outside the TID allocator"},
    {"lock_scope_io", "^(src|bench|examples)/", "",
     "no blocking I/O or heap calls inside a SpinLock critical section"},
    {"timestamp_discipline", "^(src|bench|examples)/",
     "(^|/)mvcc/timestamp\\.h$|(^|/)common/epoch_clock\\.h$",
     "composed TIDs are opaque outside timestamp.h: use "
     "TsEpoch/TsLane/ComposeTxnId"},
    {"guarded_by_coverage", "^src/", "",
     "every mutable member of a lock-owning class must be annotated, "
     "atomic, or suppressed"},
    {"atomic_memory_order", "^(src|bench|examples|tools)/", "",
     "atomic operations must name an explicit memory_order"},
};
constexpr int kNumRules = sizeof(kRules) / sizeof(kRules[0]);

// Explicit per-callee allowlist: rule exemptions narrower than a whole
// file. exempt_re (above) silences every finding of a rule in a file;
// an allowlist entry silences one *callee name* in matching paths, so the
// rest of the rule keeps firing there. Used for the serving front-end:
// socket sends are network I/O, not durable file I/O — the WAL monopoly
// (DESIGN §5f) covers bytes that claim durability — but an fwrite/fsync
// in src/server/ must still trip the rule (the lint selftest plants one).
struct AllowlistEntry {
  const char* rule;     // kRules[].name this entry narrows
  const char* path_re;  // root-relative paths it applies to
  const char* callee;   // the one function name it sanctions
};

const AllowlistEntry kAllowlist[] = {
    {"no_raw_io_outside_wal", "(^|/)src/server/|(^|/)bench/loadgen",
     "send"},
    {"no_raw_io_outside_wal", "(^|/)src/server/|(^|/)bench/loadgen",
     "sendto"},
    {"no_raw_io_outside_wal", "(^|/)src/server/|(^|/)bench/loadgen",
     "sendmsg"},
};
constexpr int kNumAllowlist = sizeof(kAllowlist) / sizeof(kAllowlist[0]);

int RuleIndex(llvm::StringRef name) {
  for (int i = 0; i < kNumRules; ++i)
    if (name == kRules[i].name) return i;
  return -1;
}

// ---------------------------------------------------------------------------
// Findings / suppressions
// ---------------------------------------------------------------------------

struct Finding {
  std::string file;  // root-relative
  unsigned line = 0;
  unsigned col = 0;
  std::string rule;
  std::string message;

  std::string Key() const {
    return file + ":" + std::to_string(line) + ":" + std::to_string(col) +
           ":" + rule;
  }
};

struct Suppression {
  std::string file;       // root-relative
  unsigned comment_line;  // where the comment sits (identity for "unused")
  unsigned target_line;   // the line it suppresses
  std::vector<std::string> rules;
};

// Scans one file's raw text for suppression comments. `bad` receives
// findings for malformed/unknown-rule suppressions.
void ScanSuppressions(llvm::StringRef content, llvm::StringRef rel_path,
                      std::vector<Suppression>* out,
                      std::vector<Finding>* bad) {
  unsigned line_no = 0;
  llvm::StringRef rest = content;
  while (!rest.empty()) {
    ++line_no;
    llvm::StringRef line;
    std::tie(line, rest) = rest.split('\n');
    const size_t mark = line.find("mv3c-lint:");
    if (mark == llvm::StringRef::npos) continue;
    llvm::StringRef tail = line.substr(mark + strlen("mv3c-lint:")).ltrim();
    Finding malformed{rel_path.str(), line_no, 1, "suppression", ""};
    if (!HasPrefix(tail, "allow(")) {
      malformed.message = "malformed suppression: expected "
                          "'mv3c-lint: allow(rule[,rule...])'";
      bad->push_back(malformed);
      continue;
    }
    const size_t close = tail.find(')');
    if (close == llvm::StringRef::npos) {
      malformed.message = "malformed suppression: missing ')'";
      bad->push_back(malformed);
      continue;
    }
    llvm::StringRef list = tail.substr(strlen("allow("), close - strlen("allow("));
    Suppression s;
    s.file = rel_path.str();
    s.comment_line = line_no;
    // A comment-only line suppresses the next line; trailing comments
    // suppress their own line.
    llvm::StringRef before = line.substr(0, line.find("//"));
    s.target_line = before.trim().empty() ? line_no + 1 : line_no;
    llvm::SmallVector<llvm::StringRef, 4> parts;
    list.split(parts, ',', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
    for (llvm::StringRef p : parts) {
      p = p.trim();
      if (p.empty()) continue;
      if (RuleIndex(p) < 0) {
        malformed.message =
            ("unknown rule '" + p + "' in suppression").str();
        bad->push_back(malformed);
        continue;
      }
      s.rules.push_back(p.str());
    }
    if (!s.rules.empty()) out->push_back(s);
  }
}

// ---------------------------------------------------------------------------
// Per-TU result
// ---------------------------------------------------------------------------

struct DepFile {
  std::string abs_path;
  std::string rel_path;  // empty when outside the root
  std::string md5;
};

struct TUResult {
  std::vector<Finding> findings;          // includes bad-suppression findings
  std::vector<Suppression> suppressions;  // declared in files this TU saw
  std::vector<DepFile> deps;
  bool parse_error = false;
};

std::string Md5Hex(llvm::StringRef data) {
  llvm::MD5 hash;
  hash.update(data);
  llvm::MD5::MD5Result r;
  hash.final(r);
  return r.digest().str().str();
}

// ---------------------------------------------------------------------------
// The AST visitor
// ---------------------------------------------------------------------------

struct SourceInterval {
  FileID fid;
  unsigned begin;
  unsigned end;
};

struct PendingIoCall {
  FileID fid;
  unsigned offset;
  std::string file;  // root-relative
  unsigned line;
  unsigned col;
  std::string what;  // called entity, for the message
};

class ProtocolVisitor : public RecursiveASTVisitor<ProtocolVisitor> {
 public:
  ProtocolVisitor(ASTContext& ctx, llvm::StringRef root, unsigned rule_mask,
                  TUResult& result)
      : ctx_(ctx),
        sm_(ctx.getSourceManager()),
        root_(root.str()),
        rule_mask_(rule_mask),
        result_(result),
        ts_counter_re_(
            "(ts|tid|txn|timestamp|commit)_?(seq|sequence|counter|ctr|gen)_*$"),
        rule_dirs_re_(),
        rule_exempt_re_() {
    for (int i = 0; i < kNumRules; ++i) {
      rule_dirs_re_.emplace_back(kRules[i].dirs_re);
      rule_exempt_re_.emplace_back(kRules[i].exempt_re);
    }
    for (int i = 0; i < kNumAllowlist; ++i) {
      allowlist_path_re_.emplace_back(kAllowlist[i].path_re);
    }
  }

  bool shouldVisitTemplateInstantiations() const { return false; }
  bool shouldVisitImplicitCode() const { return false; }

  // --- location / scoping helpers ---

  // Root-relative path for a location's expansion file, or "" when the
  // location is outside the root. Also records the file as a dependency
  // and triggers its one-time suppression scan.
  llvm::StringRef RelPath(SourceLocation loc) {
    if (loc.isInvalid()) return "";
    const FileID fid = sm_.getFileID(sm_.getExpansionLoc(loc));
    auto it = file_cache_.find(fid);
    if (it != file_cache_.end()) return it->second;
    std::string rel;
    if (const FileEntry* fe = sm_.getFileEntryForID(fid)) {
      llvm::SmallString<256> abs(fe->tryGetRealPathName());
      if (abs.empty()) {
        abs = fe->getName();
        llvm::sys::fs::make_absolute(abs);
        llvm::sys::path::remove_dots(abs, /*remove_dot_dot=*/true);
      }
      llvm::StringRef abs_ref(abs);
      if (HasPrefix(abs_ref, root_) &&
          abs_ref.size() > root_.size() && abs_ref[root_.size()] == '/') {
        rel = abs_ref.drop_front(root_.size() + 1).str();
      }
      DepFile dep;
      dep.abs_path = abs_ref.str();
      dep.rel_path = rel;
      bool ok = false;
      llvm::StringRef buf = sm_.getBufferData(fid, &ok);
      if (ok) {
        dep.md5 = Md5Hex(buf);
        if (!rel.empty() && scanned_.insert(rel).second) {
          ScanSuppressions(buf, rel, &result_.suppressions,
                           &result_.findings);
        }
      }
      if (seen_deps_.insert(dep.abs_path).second)
        result_.deps.push_back(std::move(dep));
    }
    return file_cache_.emplace(fid, std::move(rel)).first->second;
  }

  // True when `loc` is inside rule `r`'s directories and not exempt.
  bool InRuleScope(int r, SourceLocation loc, llvm::StringRef* rel_out) {
    if (!(rule_mask_ & (1u << r))) return false;
    llvm::StringRef rel = RelPath(loc);
    if (rel.empty()) return false;
    if (!rule_dirs_re_[r].match(rel)) return false;
    if (kRules[r].exempt_re[0] != '\0' && rule_exempt_re_[r].match(rel))
      return false;
    if (rel_out) *rel_out = rel;
    return true;
  }

  // True when an AllowlistEntry sanctions calling `callee` from `rel`
  // under rule `r`.
  bool Allowlisted(int r, llvm::StringRef rel, llvm::StringRef callee) {
    for (int i = 0; i < kNumAllowlist; ++i) {
      if (callee == kAllowlist[i].callee &&
          llvm::StringRef(kAllowlist[i].rule) == kRules[r].name &&
          allowlist_path_re_[i].match(rel)) {
        return true;
      }
    }
    return false;
  }

  void Report(int r, SourceLocation loc, llvm::StringRef rel,
              std::string message) {
    const PresumedLoc p = sm_.getPresumedLoc(sm_.getExpansionLoc(loc));
    Finding f;
    f.file = rel.str();
    f.line = p.isValid() ? p.getLine() : 0;
    f.col = p.isValid() ? p.getColumn() : 0;
    f.rule = kRules[r].name;
    f.message = std::move(message);
    result_.findings.push_back(std::move(f));
  }

  // --- type helpers ---

  static const CXXRecordDecl* RecordOf(QualType t) {
    if (const CXXRecordDecl* rd = t->getAsCXXRecordDecl()) return rd;
    return nullptr;
  }

  // Resolves a member's type to a class definition whose members we can
  // inspect, looking through arrays and (for dependent types inside class
  // template patterns) through TemplateSpecializationType sugar to the
  // template's pattern definition. Returns null for non-class types and
  // for types we cannot see into (template parameters).
  const CXXRecordDecl* ResolveRecordForAudit(QualType t) {
    while (const ArrayType* at = ctx_.getAsArrayType(t))
      t = at->getElementType();
    t = t.getNonReferenceType();
    if (const CXXRecordDecl* rd = t->getAsCXXRecordDecl()) {
      if (rd->hasDefinition()) return rd->getDefinition();
      if (const auto* spec = llvm::dyn_cast<ClassTemplateSpecializationDecl>(rd))
        return spec->getSpecializedTemplate()->getTemplatedDecl();
      return rd;
    }
    if (const auto* tst = t->getAs<TemplateSpecializationType>()) {
      if (const auto* ctd = llvm::dyn_cast_or_null<ClassTemplateDecl>(
              tst->getTemplateName().getAsTemplateDecl()))
        return ctd->getTemplatedDecl();
    }
    return nullptr;
  }

  static bool HasCapabilityAttr(const CXXRecordDecl* rd) {
    return rd != nullptr &&
           (rd->hasAttr<CapabilityAttr>() || rd->hasAttr<ScopedLockableAttr>());
  }

  bool IsStdSyncPrimitive(QualType t) {
    const CXXRecordDecl* rd = RecordOf(t);
    if (!rd) return false;
    const std::string qn = rd->getQualifiedNameAsString();
    static const char* const kNames[] = {
        "std::mutex", "std::timed_mutex", "std::recursive_mutex",
        "std::recursive_timed_mutex", "std::shared_mutex",
        "std::shared_timed_mutex", "std::condition_variable",
        "std::condition_variable_any", "std::once_flag", "std::thread",
        "std::jthread"};
    for (const char* n : kNames)
      if (qn == n) return true;
    return false;
  }

  bool IsAtomicType(QualType t) {
    if (t->isAtomicType()) return true;  // _Atomic
    const CXXRecordDecl* rd = RecordOf(t);
    if (!rd) {
      if (const auto* tst = t->getAs<TemplateSpecializationType>()) {
        if (const TemplateDecl* td = tst->getTemplateName().getAsTemplateDecl())
          return td->getQualifiedNameAsString() == "std::atomic";
      }
      return false;
    }
    const std::string qn = rd->getQualifiedNameAsString();
    return qn == "std::atomic" || qn == "std::atomic_flag" ||
           qn == "std::atomic_ref";
  }

  // True when the record is std::atomic<...> (for the name-based timestamp
  // counter rule, which matches atomics only).
  bool IsStdAtomicSpecialization(QualType t) {
    const auto* rd = llvm::dyn_cast_or_null<ClassTemplateSpecializationDecl>(
        t->getAsCXXRecordDecl());
    return rd != nullptr && rd->getQualifiedNameAsString() == "std::atomic";
  }

  // A type every member of which is atomic, const, or itself
  // self-synchronizing — safe to hold unannotated (EpochClock, the
  // active-slot array). Depth-limited; conservative on anything unusual.
  bool IsSelfSynchronizing(const CXXRecordDecl* rd, int depth = 0) {
    if (rd == nullptr || depth > 3 || !rd->hasDefinition()) return false;
    rd = rd->getDefinition();
    for (const CXXBaseSpecifier& base : rd->bases()) {
      const CXXRecordDecl* brd = ResolveRecordForAudit(base.getType());
      if (!IsSelfSynchronizing(brd, depth + 1)) return false;
    }
    for (const FieldDecl* f : rd->fields()) {
      QualType t = f->getType();
      while (const ArrayType* at = ctx_.getAsArrayType(t))
        t = at->getElementType();
      if (IsAtomicType(t)) continue;
      if (t.isConstQualified()) continue;
      const CXXRecordDecl* frd = ResolveRecordForAudit(t);
      if (frd != nullptr && IsSelfSynchronizing(frd, depth + 1)) continue;
      return false;
    }
    return true;
  }

  // Does the class directly declare a capability (SpinLock) or standard
  // mutex member — i.e. does it own a lock that could guard its state?
  bool DeclaresLockMember(const CXXRecordDecl* rd) {
    if (rd == nullptr || !rd->hasDefinition()) return false;
    rd = rd->getDefinition();
    for (const FieldDecl* f : rd->fields()) {
      QualType t = f->getType();
      while (const ArrayType* at = ctx_.getAsArrayType(t))
        t = at->getElementType();
      if (HasCapabilityAttr(ResolveRecordForAudit(t))) return true;
      if (IsStdSyncPrimitive(t)) return true;
    }
    return false;
  }

  // Is the as-written type (through any chain of typedefs) the
  // mv3c::Timestamp alias?
  bool IsTimestampAsWritten(QualType qt) {
    while (true) {
      if (const auto* tt = qt->getAs<TypedefType>()) {
        const TypedefNameDecl* td = tt->getDecl();
        if (td->getName() == "Timestamp") {
          const DeclContext* dc = td->getDeclContext();
          if (const auto* ns = llvm::dyn_cast<NamespaceDecl>(dc))
            if (ns->getName() == "mv3c") return true;
        }
        qt = td->getUnderlyingType();
        continue;
      }
      const QualType next = qt.getSingleStepDesugaredType(ctx_);
      if (next == qt) return false;
      qt = next;
    }
  }

  // Scoped lock guard: any record carrying SCOPED_CAPABILITY (our
  // SpinLockGuard) or a std lock wrapper instantiated over a capability.
  bool IsScopedGuardType(QualType t) {
    const CXXRecordDecl* rd = t->getAsCXXRecordDecl();
    if (rd == nullptr) return false;
    if (rd->hasAttr<ScopedLockableAttr>()) return true;
    const auto* spec = llvm::dyn_cast<ClassTemplateSpecializationDecl>(rd);
    if (spec == nullptr) return false;
    const std::string qn = spec->getQualifiedNameAsString();
    if (qn != "std::lock_guard" && qn != "std::unique_lock" &&
        qn != "std::scoped_lock" && qn != "std::shared_lock")
      return false;
    const TemplateArgumentList& args = spec->getTemplateArgs();
    for (unsigned i = 0; i < args.size(); ++i) {
      if (args[i].getKind() != TemplateArgument::Type) continue;
      if (HasCapabilityAttr(RecordOf(args[i].getAsType()))) return true;
    }
    return false;
  }

  // --- interval bookkeeping for lock_scope_io ---

  void AddInterval(std::vector<SourceInterval>& out, SourceLocation b,
                   SourceLocation e) {
    if (b.isInvalid() || e.isInvalid()) return;
    const auto db = sm_.getDecomposedExpansionLoc(b);
    const auto de = sm_.getDecomposedExpansionLoc(e);
    if (db.first != de.first) return;
    out.push_back({db.first, db.second, de.second});
  }

  bool InAnyInterval(const std::vector<SourceInterval>& ivs, FileID fid,
                     unsigned off) const {
    for (const SourceInterval& iv : ivs)
      if (iv.fid == fid && off > iv.begin && off < iv.end) return true;
    return false;
  }

  // --- visitors ---

  // no_raw_version_new (new side) + lock_scope_io heap-op collection.
  bool VisitCXXNewExpr(CXXNewExpr* e) {
    const SourceLocation loc = e->getBeginLoc();
    llvm::StringRef rel;
    if (InRuleScope(kRawVersionNew, loc, &rel)) {
      if (const CXXRecordDecl* rd = RecordOf(e->getAllocatedType())) {
        const llvm::StringRef n = rd->getName();
        if (n == "VersionBase" || n == "Version" || n == "CommittedRecord")
          Report(kRawVersionNew, loc, rel,
                 ("raw new of " + n +
                  ": allocate through VersionArena::Create/CreateSibling")
                     .str());
      }
    }
    // Placement new is not an allocator call.
    if (e->getNumPlacementArgs() == 0)
      NoteIoCall(loc, "operator new");
    return true;
  }

  bool VisitCXXDeleteExpr(CXXDeleteExpr* e) {
    const SourceLocation loc = e->getBeginLoc();
    llvm::StringRef rel;
    if (InRuleScope(kRawVersionNew, loc, &rel)) {
      if (const CXXRecordDecl* rd = RecordOf(e->getDestroyedType())) {
        const llvm::StringRef n = rd->getName();
        if (n == "VersionBase" || n == "Version" || n == "CommittedRecord")
          Report(kRawVersionNew, loc, rel,
                 ("raw delete of " + n +
                  ": destroy through VersionArena::Destroy")
                     .str());
      }
    }
    NoteIoCall(loc, "operator delete");
    return true;
  }

  // no_bare_lock_guard + lock guard interval collection + global ts
  // counter (global side).
  bool VisitVarDecl(VarDecl* d) {
    const SourceLocation loc = d->getLocation();
    llvm::StringRef rel;
    if (InRuleScope(kBareLockGuard, loc, &rel)) {
      if (const auto* spec = llvm::dyn_cast_or_null<
              ClassTemplateSpecializationDecl>(d->getType()->getAsCXXRecordDecl())) {
        if (spec->getQualifiedNameAsString() == "std::lock_guard") {
          const TemplateArgumentList& args = spec->getTemplateArgs();
          if (args.size() >= 1 && args[0].getKind() == TemplateArgument::Type) {
            if (const CXXRecordDecl* arg = RecordOf(args[0].getAsType())) {
              if (arg->getName() == "SpinLock")
                Report(kBareLockGuard, loc, rel,
                       "std::lock_guard<SpinLock> is invisible to "
                       "thread-safety analysis: use SpinLockGuard");
            }
          }
        }
      }
    }
    if (d->hasGlobalStorage() && InRuleScope(kGlobalTsCounter, loc, &rel)) {
      if (IsStdAtomicSpecialization(d->getType()) &&
          ts_counter_re_.match(d->getName()))
        Report(kGlobalTsCounter, loc, rel,
               ("atomic global '" + d->getName() +
                "' looks like a second timestamp authority (DESIGN §5h): "
                "commit TIDs come only from the TID allocator")
                   .str());
    }
    return true;
  }

  // Guard scopes: a SpinLockGuard declaration covers the rest of its
  // enclosing compound statement.
  bool VisitDeclStmt(DeclStmt* ds) {
    for (const Decl* d : ds->decls()) {
      const auto* vd = llvm::dyn_cast<VarDecl>(d);
      if (vd == nullptr || !vd->hasLocalStorage()) continue;
      if (!IsScopedGuardType(vd->getType())) continue;
      const auto parents = ctx_.getParents(*ds);
      if (parents.empty()) continue;
      if (const auto* cs = parents[0].get<CompoundStmt>())
        AddInterval(guard_intervals_, ds->getEndLoc(), cs->getRBracLoc());
    }
    return true;
  }

  // no_global_ts_counter (field side).
  bool VisitFieldDecl(FieldDecl* d) {
    const SourceLocation loc = d->getLocation();
    llvm::StringRef rel;
    if (InRuleScope(kGlobalTsCounter, loc, &rel)) {
      if (IsStdAtomicSpecialization(d->getType()) &&
          ts_counter_re_.match(d->getName()))
        Report(kGlobalTsCounter, loc, rel,
               ("atomic field '" + d->getName() +
                "' looks like a second timestamp authority (DESIGN §5h): "
                "commit TIDs come only from the TID allocator")
                   .str());
    }
    return true;
  }

  // no_stats_outside_obs + guarded_by_coverage.
  bool VisitCXXRecordDecl(CXXRecordDecl* rd) {
    if (!rd->isThisDeclarationADefinition()) return true;
    const SourceLocation loc = rd->getLocation();
    llvm::StringRef rel;
    if (rd->isStruct() && InRuleScope(kStatsOutsideObs, loc, &rel)) {
      if (HasSuffix(rd->getName(), "Stats"))
        Report(kStatsOutsideObs, loc, rel,
               ("struct " + rd->getName() +
                " forks the metrics surface: engine counters belong in "
                "src/obs/engine_stats.h")
                   .str());
    }
    if (InRuleScope(kGuardedByCoverage, loc, &rel))
      AuditGuardedByCoverage(rd, rel);
    return true;
  }

  void AuditGuardedByCoverage(const CXXRecordDecl* rd, llvm::StringRef rel) {
    // Scope trigger: the class itself declares a capability member (our
    // SpinLock). std::mutex members are deliberately NOT a trigger — the
    // libstdc++ mutex carries no capability attribute, so annotating
    // fields against it would break -Werror=thread-safety-analysis.
    bool has_capability = false;
    for (const FieldDecl* f : rd->fields()) {
      QualType t = f->getType();
      while (const ArrayType* at = ctx_.getAsArrayType(t))
        t = at->getElementType();
      if (HasCapabilityAttr(ResolveRecordForAudit(t))) {
        has_capability = true;
        break;
      }
    }
    if (!has_capability) return;

    for (const FieldDecl* f : rd->fields()) {
      QualType t = f->getType();
      while (const ArrayType* at = ctx_.getAsArrayType(t))
        t = at->getElementType();
      if (f->hasAttr<GuardedByAttr>() || f->hasAttr<PtGuardedByAttr>())
        continue;
      if (t.isConstQualified() || t->isReferenceType()) continue;
      if (IsAtomicType(t)) continue;
      const CXXRecordDecl* frd = ResolveRecordForAudit(t);
      if (HasCapabilityAttr(frd)) continue;      // the lock itself
      if (IsStdSyncPrimitive(t)) continue;       // mutexes, cvs, threads
      if (DeclaresLockMember(frd)) continue;     // owns its own lock
      if (IsSelfSynchronizing(frd)) continue;    // all-atomic/const type
      Report(kGuardedByCoverage, f->getLocation(), rel,
             ("member '" + f->getName() + "' of lock-owning class '" +
              rd->getName() +
              "' is neither GUARDED_BY-annotated, const, atomic, nor "
              "self-synchronizing")
                 .str());
    }
  }

  // no_raw_io_outside_wal + lock_scope_io call collection.
  bool VisitCallExpr(CallExpr* e) {
    const FunctionDecl* callee = e->getDirectCallee();
    if (callee == nullptr) return true;
    const SourceLocation loc = e->getBeginLoc();

    if (const OverloadedOperatorKind op = callee->getOverloadedOperator();
        op == OO_New || op == OO_Array_New || op == OO_Delete ||
        op == OO_Array_Delete) {
      NoteIoCall(loc, op == OO_New || op == OO_Array_New ? "operator new"
                                                         : "operator delete");
      return true;
    }
    if (callee->getIdentifier() == nullptr || callee->isCXXClassMember())
      return true;
    const llvm::StringRef name = callee->getName();

    static const char* const kRawIo[] = {"write",  "fwrite",  "fsync",
                                         "fdatasync", "pwrite", "pwritev",
                                         "writev", "sync_file_range",
                                         "send",   "sendto",  "sendmsg"};
    llvm::StringRef rel;
    for (const char* n : kRawIo) {
      if (name == n && InRuleScope(kRawIoOutsideWal, loc, &rel) &&
          !Allowlisted(kRawIoOutsideWal, rel, name)) {
        Report(kRawIoOutsideWal, loc, rel,
               ("raw " + name +
                " outside src/wal/: durable bytes must flow through "
                "LogManager (DESIGN §5f)")
                   .str());
        break;
      }
    }

    // The lock-scope set is broader: any blocking file-descriptor call or
    // system-allocator entry point. fprintf/printf stay allowed — the
    // diagnostic-streams policy, same as no_raw_io_outside_wal.
    static const char* const kBlocking[] = {
        "write",   "fwrite",   "fsync",     "fdatasync",     "pwrite",
        "pwritev", "writev",   "sync_file_range",            "read",
        "pread",   "fread",    "open",      "openat",        "creat",
        "close",   "fopen",    "fclose",    "fflush",        "unlink",
        "unlinkat", "rename",  "renameat",  "ftruncate",     "truncate",
        "fallocate", "mkdir",  "rmdir",     "opendir",       "closedir",
        "malloc",  "calloc",   "realloc",   "free",          "posix_memalign",
        "aligned_alloc", "mmap", "munmap",  "usleep",        "nanosleep",
        "sleep",   "send",     "sendto",    "sendmsg",       "recv",
        "recvfrom", "recvmsg"};
    for (const char* n : kBlocking) {
      if (name == n) {
        NoteIoCall(loc, name.str());
        break;
      }
    }
    return true;
  }

  // REQUIRES/ACQUIRE function bodies: everything inside runs with a
  // capability held by contract.
  bool VisitFunctionDecl(FunctionDecl* fd) {
    if (!fd->doesThisDeclarationHaveABody()) return true;
    if (!fd->hasAttr<RequiresCapabilityAttr>() &&
        !fd->hasAttr<AcquireCapabilityAttr>())
      return true;
    if (const Stmt* body = fd->getBody())
      AddInterval(requires_intervals_, body->getBeginLoc(), body->getEndLoc());
    return true;
  }

  // atomic_memory_order: member calls with a defaulted memory_order
  // argument, implicit conversion reads, and operator forms.
  bool VisitCXXMemberCallExpr(CXXMemberCallExpr* e) {
    const CXXMethodDecl* md = e->getMethodDecl();
    if (md == nullptr || !IsAtomicParent(md)) return true;
    const SourceLocation loc = e->getBeginLoc();
    llvm::StringRef rel;
    if (!InRuleScope(kAtomicMemoryOrder, loc, &rel)) return true;
    if (llvm::isa<CXXConversionDecl>(md)) {
      Report(kAtomicMemoryOrder, loc, rel,
             "implicit atomic read (conversion operator) is a seq_cst "
             "load: call load() with an explicit memory_order");
      return true;
    }
    for (unsigned i = 0; i < e->getNumArgs(); ++i) {
      const Expr* arg = e->getArg(i);
      if (!llvm::isa<CXXDefaultArgExpr>(arg)) continue;
      if (!IsMemoryOrderType(arg->getType())) continue;
      Report(kAtomicMemoryOrder, loc, rel,
             ("atomic " + md->getNameAsString() +
              " relies on the defaulted seq_cst memory order: name the "
              "order explicitly"));
      break;
    }
    return true;
  }

  bool VisitCXXOperatorCallExpr(CXXOperatorCallExpr* e) {
    const auto* md = llvm::dyn_cast_or_null<CXXMethodDecl>(e->getDirectCallee());
    if (md == nullptr || !IsAtomicParent(md)) return true;
    if (llvm::isa<CXXConversionDecl>(md)) return true;  // handled above
    const SourceLocation loc = e->getBeginLoc();
    llvm::StringRef rel;
    if (!InRuleScope(kAtomicMemoryOrder, loc, &rel)) return true;
    Report(kAtomicMemoryOrder, loc, rel,
           ("atomic operator" +
            std::string(getOperatorSpelling(e->getOperator())) +
            " is an implicit seq_cst operation: use "
            "load/store/fetch_* with an explicit memory_order"));
    return true;
  }

  // timestamp_discipline.
  bool VisitBinaryOperator(BinaryOperator* op) {
    const SourceLocation loc = op->getOperatorLoc();
    llvm::StringRef rel;
    if (!InRuleScope(kTimestampDiscipline, loc, &rel)) return true;
    const Expr* lhs = op->getLHS()->IgnoreParenImpCasts();
    const Expr* rhs = op->getRHS()->IgnoreParenImpCasts();
    const bool l_ts = IsTimestampAsWritten(lhs->getType());
    const bool r_ts = IsTimestampAsWritten(rhs->getType());

    switch (op->getOpcode()) {
      case BO_Shl: case BO_Shr: case BO_And: case BO_Or: case BO_Xor:
      case BO_ShlAssign: case BO_ShrAssign: case BO_AndAssign:
      case BO_OrAssign: case BO_XorAssign:
        if (l_ts || r_ts)
          Report(kTimestampDiscipline, loc, rel,
                 "raw bit arithmetic on a composed mv3c::Timestamp: use "
                 "TsEpoch/TsLane/ComposeTxnId (DESIGN §5h)");
        return true;
      case BO_LT: case BO_GT: case BO_LE: case BO_GE:
      case BO_EQ: case BO_NE:
        if (l_ts != r_ts) {
          const Expr* other = l_ts ? rhs : lhs;
          if (LooksLikeEpochValue(other))
            Report(kTimestampDiscipline, loc, rel,
                   "comparing a composed mv3c::Timestamp against an epoch "
                   "value: project with TsEpoch() first (DESIGN §5h)");
        }
        return true;
      default:
        return true;
    }
  }

  // Post-traversal: match collected blocking calls against lock scopes.
  void Finalize() {
    for (const PendingIoCall& c : io_calls_) {
      const bool in_guard = InAnyInterval(guard_intervals_, c.fid, c.offset);
      const bool in_requires =
          InAnyInterval(requires_intervals_, c.fid, c.offset);
      if (!in_guard && !in_requires) continue;
      Finding f;
      f.file = c.file;
      f.line = c.line;
      f.col = c.col;
      f.rule = kRules[kLockScopeIo].name;
      f.message = c.what +
                  (in_guard ? " called inside a SpinLockGuard scope"
                            : " called in a REQUIRES/ACQUIRE function") +
                  ": blocking I/O and allocator calls must not run under a "
                  "spinlock (DESIGN §5j)";
      result_.findings.push_back(std::move(f));
    }
  }

 private:
  enum {
    kRawVersionNew = 0,
    kBareLockGuard = 1,
    kStatsOutsideObs = 2,
    kRawIoOutsideWal = 3,
    kGlobalTsCounter = 4,
    kLockScopeIo = 5,
    kTimestampDiscipline = 6,
    kGuardedByCoverage = 7,
    kAtomicMemoryOrder = 8,
  };

  static bool IsAtomicParent(const CXXMethodDecl* md) {
    const CXXRecordDecl* parent = md->getParent();
    if (parent == nullptr) return false;
    const std::string qn = parent->getQualifiedNameAsString();
    return qn == "std::atomic" || qn == "std::atomic_flag" ||
           qn == "std::atomic_ref" || qn == "std::__atomic_base" ||
           qn == "std::__atomic_float";
  }

  static bool IsMemoryOrderType(QualType t) {
    if (const auto* et = t->getAs<EnumType>()) {
      const std::string qn = et->getDecl()->getQualifiedNameAsString();
      return qn == "std::memory_order";
    }
    return false;
  }

  bool LooksLikeEpochValue(const Expr* e) {
    if (const auto* call = llvm::dyn_cast<CallExpr>(e)) {
      if (const FunctionDecl* fd = call->getDirectCallee())
        if (fd->getIdentifier() != nullptr && fd->getName() == "TsEpoch")
          return true;
      return false;
    }
    llvm::StringRef name;
    if (const auto* dre = llvm::dyn_cast<DeclRefExpr>(e))
      name = dre->getDecl()->getName();
    else if (const auto* me = llvm::dyn_cast<MemberExpr>(e))
      name = me->getMemberDecl()->getName();
    if (name.empty()) return false;
    if (IsTimestampAsWritten(e->getType())) return false;
    return name.contains_insensitive("epoch") && e->getType()->isIntegerType();
  }

  void NoteIoCall(SourceLocation loc, std::string what) {
    llvm::StringRef rel;
    if (!InRuleScope(kLockScopeIo, loc, &rel)) return;
    const auto d = sm_.getDecomposedExpansionLoc(loc);
    const PresumedLoc p = sm_.getPresumedLoc(sm_.getExpansionLoc(loc));
    PendingIoCall c;
    c.fid = d.first;
    c.offset = d.second;
    c.file = rel.str();
    c.line = p.isValid() ? p.getLine() : 0;
    c.col = p.isValid() ? p.getColumn() : 0;
    c.what = std::move(what);
    io_calls_.push_back(std::move(c));
  }

  ASTContext& ctx_;
  SourceManager& sm_;
  std::string root_;
  unsigned rule_mask_;
  TUResult& result_;
  llvm::Regex ts_counter_re_;
  std::vector<llvm::Regex> rule_dirs_re_;
  std::vector<llvm::Regex> rule_exempt_re_;
  std::vector<llvm::Regex> allowlist_path_re_;
  std::map<FileID, std::string> file_cache_;
  std::set<std::string> scanned_;
  std::set<std::string> seen_deps_;
  std::vector<SourceInterval> guard_intervals_;
  std::vector<SourceInterval> requires_intervals_;
  std::vector<PendingIoCall> io_calls_;
};

// ---------------------------------------------------------------------------
// Frontend plumbing
// ---------------------------------------------------------------------------

class ProtocolConsumer : public ASTConsumer {
 public:
  ProtocolConsumer(llvm::StringRef root, unsigned rule_mask, TUResult& result)
      : root_(root.str()), rule_mask_(rule_mask), result_(result) {}

  void HandleTranslationUnit(ASTContext& ctx) override {
    ProtocolVisitor v(ctx, root_, rule_mask_, result_);
    v.TraverseDecl(ctx.getTranslationUnitDecl());
    v.Finalize();
  }

 private:
  std::string root_;
  unsigned rule_mask_;
  TUResult& result_;
};

class ProtocolAction : public ASTFrontendAction {
 public:
  ProtocolAction(llvm::StringRef root, unsigned rule_mask, TUResult& result)
      : root_(root.str()), rule_mask_(rule_mask), result_(result) {}

  std::unique_ptr<ASTConsumer> CreateASTConsumer(CompilerInstance&,
                                                 llvm::StringRef) override {
    return std::make_unique<ProtocolConsumer>(root_, rule_mask_, result_);
  }

 private:
  std::string root_;
  unsigned rule_mask_;
  TUResult& result_;
};

class ProtocolActionFactory : public tooling::FrontendActionFactory {
 public:
  ProtocolActionFactory(llvm::StringRef root, unsigned rule_mask,
                        TUResult& result)
      : root_(root.str()), rule_mask_(rule_mask), result_(result) {}

  std::unique_ptr<FrontendAction> create() override {
    return std::make_unique<ProtocolAction>(root_, rule_mask_, result_);
  }

 private:
  std::string root_;
  unsigned rule_mask_;
  TUResult& result_;
};

// ---------------------------------------------------------------------------
// Cache
// ---------------------------------------------------------------------------

std::string CacheKey(const tooling::CompileCommand& cmd, unsigned rule_mask) {
  llvm::MD5 hash;
  hash.update(kToolVersion);
  hash.update("|");
  hash.update(std::to_string(rule_mask));
  hash.update("|");
  hash.update(cmd.Directory);
  for (const std::string& a : cmd.CommandLine) {
    hash.update("|");
    hash.update(a);
  }
  hash.update("|");
  hash.update(cmd.Filename);
  llvm::MD5::MD5Result r;
  hash.final(r);
  return r.digest().str().str();
}

llvm::json::Object ToJson(const TUResult& r) {
  llvm::json::Array findings;
  for (const Finding& f : r.findings)
    findings.push_back(llvm::json::Object{{"file", f.file},
                                          {"line", static_cast<int64_t>(f.line)},
                                          {"col", static_cast<int64_t>(f.col)},
                                          {"rule", f.rule},
                                          {"message", f.message}});
  llvm::json::Array supps;
  for (const Suppression& s : r.suppressions) {
    llvm::json::Array rules;
    for (const std::string& rl : s.rules) rules.push_back(rl);
    supps.push_back(llvm::json::Object{
        {"file", s.file},
        {"comment_line", static_cast<int64_t>(s.comment_line)},
        {"target_line", static_cast<int64_t>(s.target_line)},
        {"rules", std::move(rules)}});
  }
  llvm::json::Array deps;
  for (const DepFile& d : r.deps)
    deps.push_back(llvm::json::Object{
        {"abs", d.abs_path}, {"rel", d.rel_path}, {"md5", d.md5}});
  return llvm::json::Object{{"findings", std::move(findings)},
                            {"suppressions", std::move(supps)},
                            {"deps", std::move(deps)}};
}

bool FromJson(const llvm::json::Object& o, TUResult* r) {
  const llvm::json::Array* findings = o.getArray("findings");
  const llvm::json::Array* supps = o.getArray("suppressions");
  const llvm::json::Array* deps = o.getArray("deps");
  if (findings == nullptr || supps == nullptr || deps == nullptr) return false;
  for (const llvm::json::Value& v : *findings) {
    const llvm::json::Object* fo = v.getAsObject();
    if (fo == nullptr) return false;
    Finding f;
    f.file = fo->getString("file").value_or("").str();
    f.line = static_cast<unsigned>(fo->getInteger("line").value_or(0));
    f.col = static_cast<unsigned>(fo->getInteger("col").value_or(0));
    f.rule = fo->getString("rule").value_or("").str();
    f.message = fo->getString("message").value_or("").str();
    r->findings.push_back(std::move(f));
  }
  for (const llvm::json::Value& v : *supps) {
    const llvm::json::Object* so = v.getAsObject();
    if (so == nullptr) return false;
    Suppression s;
    s.file = so->getString("file").value_or("").str();
    s.comment_line =
        static_cast<unsigned>(so->getInteger("comment_line").value_or(0));
    s.target_line =
        static_cast<unsigned>(so->getInteger("target_line").value_or(0));
    const llvm::json::Array* rules = so->getArray("rules");
    if (rules == nullptr) return false;
    for (const llvm::json::Value& rv : *rules)
      s.rules.push_back(rv.getAsString().value_or("").str());
    r->suppressions.push_back(std::move(s));
  }
  for (const llvm::json::Value& v : *deps) {
    const llvm::json::Object* dobj = v.getAsObject();
    if (dobj == nullptr) return false;
    DepFile d;
    d.abs_path = dobj->getString("abs").value_or("").str();
    d.rel_path = dobj->getString("rel").value_or("").str();
    d.md5 = dobj->getString("md5").value_or("").str();
    r->deps.push_back(std::move(d));
  }
  return true;
}

// A cached entry is fresh when every dependency still hashes the same.
bool DepsFresh(const TUResult& r) {
  for (const DepFile& d : r.deps) {
    auto buf = llvm::MemoryBuffer::getFile(d.abs_path);
    if (!buf) return false;
    if (Md5Hex((*buf)->getBuffer()) != d.md5) return false;
  }
  return true;
}

bool LoadCache(llvm::StringRef dir, llvm::StringRef key, TUResult* r) {
  llvm::SmallString<256> path(dir);
  llvm::sys::path::append(path, key + ".json");
  auto buf = llvm::MemoryBuffer::getFile(path);
  if (!buf) return false;
  auto parsed = llvm::json::parse((*buf)->getBuffer());
  if (!parsed) {
    llvm::consumeError(parsed.takeError());
    return false;
  }
  const llvm::json::Object* o = parsed->getAsObject();
  if (o == nullptr) return false;
  // Parse into a scratch result so a malformed or stale entry cannot leave
  // partial state behind for the live analysis to append onto.
  TUResult tmp;
  if (!FromJson(*o, &tmp) || !DepsFresh(tmp)) return false;
  *r = std::move(tmp);
  return true;
}

void StoreCache(llvm::StringRef dir, llvm::StringRef key, const TUResult& r) {
  if (llvm::sys::fs::create_directories(dir)) return;
  llvm::SmallString<256> path(dir);
  llvm::sys::path::append(path, key + ".json");
  std::error_code ec;
  llvm::raw_fd_ostream os(path, ec);
  if (ec) return;
  os << llvm::json::Value(ToJson(r));
}

// ---------------------------------------------------------------------------
// Resource dir discovery (out-of-tree libTooling binaries don't find the
// builtin headers on their own).
// ---------------------------------------------------------------------------

std::string FindResourceDir() {
  if (const char* env = getenv("MV3C_CLANG_RESOURCE_DIR")) return env;
#if defined(MV3C_CLANG_RESOURCE_DIR_DEFAULT)
  if (llvm::sys::fs::exists(MV3C_CLANG_RESOURCE_DIR_DEFAULT "/include/stddef.h"))
    return MV3C_CLANG_RESOURCE_DIR_DEFAULT;
#endif
#if defined(MV3C_LLVM_LIB_DIR)
  // Scan <llvm-libdir>/clang/* for a version dir holding builtin headers.
  std::error_code ec;
  const std::string base = std::string(MV3C_LLVM_LIB_DIR) + "/clang";
  for (llvm::sys::fs::directory_iterator it(base, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (llvm::sys::fs::exists(it->path() + "/include/stddef.h"))
      return it->path();
  }
#endif
  return "";
}

// ---------------------------------------------------------------------------
// main
// ---------------------------------------------------------------------------

llvm::cl::OptionCategory gCategory("mv3c_analyze options");
llvm::cl::opt<std::string> gRoot(
    "root", llvm::cl::desc("Repository root rules are scoped to (default: cwd)"),
    llvm::cl::init(""), llvm::cl::cat(gCategory));
llvm::cl::opt<bool> gJson("json", llvm::cl::desc("Emit JSON results"),
                          llvm::cl::init(false), llvm::cl::cat(gCategory));
llvm::cl::opt<std::string> gCacheDir(
    "cache-dir", llvm::cl::desc("Per-TU result cache directory"),
    llvm::cl::init(""), llvm::cl::cat(gCategory));
llvm::cl::opt<bool> gNoCache("no-cache",
                             llvm::cl::desc("Disable the per-TU result cache"),
                             llvm::cl::init(false), llvm::cl::cat(gCategory));
llvm::cl::opt<std::string> gRules(
    "rules",
    llvm::cl::desc("Comma-separated rule names to run (default: all)"),
    llvm::cl::init("all"), llvm::cl::cat(gCategory));
llvm::cl::opt<bool> gListRules("list-rules",
                               llvm::cl::desc("List rules and exit"),
                               llvm::cl::init(false), llvm::cl::cat(gCategory));
llvm::cl::opt<bool> gNoUnused(
    "no-unused-suppression-check",
    llvm::cl::desc("Do not fail on unused suppressions (for non-default "
                   "build configurations that compile out annotated code)"),
    llvm::cl::init(false), llvm::cl::cat(gCategory));

}  // namespace

int main(int argc, const char** argv) {
  auto expected_parser = tooling::CommonOptionsParser::create(
      argc, argv, gCategory, llvm::cl::ZeroOrMore);
  if (!expected_parser) {
    llvm::errs() << "mv3c_analyze: " << llvm::toString(expected_parser.takeError())
                 << "\n";
    return 2;
  }
  tooling::CommonOptionsParser& options = *expected_parser;

  if (gListRules) {
    for (const RuleInfo& r : kRules)
      llvm::outs() << r.name << "\t" << r.summary << "\n";
    return 0;
  }

  // Resolve the rule mask.
  unsigned rule_mask = 0;
  if (gRules == "all" || gRules.empty()) {
    rule_mask = (1u << kNumRules) - 1;
  } else {
    llvm::SmallVector<llvm::StringRef, 16> parts;
    llvm::StringRef(gRules).split(parts, ',', -1, false);
    for (llvm::StringRef p : parts) {
      const int idx = RuleIndex(p.trim());
      if (idx < 0) {
        llvm::errs() << "mv3c_analyze: unknown rule '" << p << "'\n";
        return 2;
      }
      rule_mask |= 1u << idx;
    }
  }

  // Resolve the root: explicit flag or cwd, canonicalized.
  llvm::SmallString<256> root;
  if (gRoot.empty()) {
    llvm::sys::fs::current_path(root);
  } else {
    root = gRoot;
    llvm::sys::fs::make_absolute(root);
  }
  llvm::SmallString<256> real_root;
  if (!llvm::sys::fs::real_path(root, real_root)) root = real_root;
  while (!root.empty() && root.back() == '/') root.pop_back();

  const tooling::CompilationDatabase& db = options.getCompilations();
  std::vector<std::string> files = options.getSourcePathList();
  if (files.empty()) files = db.getAllFiles();

  // Keep first-party TUs only; external sources (gtest, benchmark) that a
  // compile database may carry are out of every rule's scope anyway.
  llvm::Regex first_party("^(src|bench|examples|tools|tests)/");
  std::vector<std::string> selected;
  for (const std::string& f : files) {
    llvm::SmallString<256> abs(f);
    llvm::sys::fs::make_absolute(abs);
    llvm::SmallString<256> real;
    if (!llvm::sys::fs::real_path(abs, real)) abs = real;
    llvm::StringRef ar(abs);
    if (!HasPrefix(ar, root) || ar.size() <= root.size() ||
        ar[root.size()] != '/')
      continue;
    if (first_party.match(ar.drop_front(root.size() + 1)))
      selected.push_back(abs.str().str());
  }
  std::sort(selected.begin(), selected.end());
  selected.erase(std::unique(selected.begin(), selected.end()),
                 selected.end());
  if (selected.empty()) {
    llvm::errs() << "mv3c_analyze: no first-party TUs found under " << root
                 << " in the compilation database\n";
    return 2;
  }

  const std::string resource_dir = FindResourceDir();
  const bool use_cache = !gNoCache && !gCacheDir.empty();

  // Global merge state.
  std::map<std::string, Finding> findings;         // key -> finding
  std::map<std::string, Suppression> suppressions; // file:line -> supp
  unsigned cached_tus = 0, analyzed_tus = 0, failed_tus = 0;

  for (const std::string& file : selected) {
    std::vector<tooling::CompileCommand> cmds = db.getCompileCommands(file);
    if (cmds.empty()) continue;
    const std::string key = CacheKey(cmds[0], rule_mask);

    TUResult result;
    bool from_cache = false;
    if (use_cache && LoadCache(gCacheDir, key, &result)) {
      from_cache = true;
      ++cached_tus;
    }
    if (!from_cache) {
      tooling::ClangTool tool(db, {file});
      tool.appendArgumentsAdjuster(tooling::getInsertArgumentAdjuster(
          "-w", tooling::ArgumentInsertPosition::END));
      if (!resource_dir.empty()) {
        tool.appendArgumentsAdjuster(tooling::getInsertArgumentAdjuster(
            {"-resource-dir", resource_dir},
            tooling::ArgumentInsertPosition::END));
      }
      ProtocolActionFactory factory(root, rule_mask, result);
      if (tool.run(&factory) != 0) {
        result.parse_error = true;
        ++failed_tus;
        llvm::errs() << "mv3c_analyze: error while processing " << file
                     << "\n";
      } else {
        ++analyzed_tus;
        if (use_cache) StoreCache(gCacheDir, key, result);
      }
    }

    for (Finding& f : result.findings)
      findings.emplace(f.Key(), std::move(f));
    for (Suppression& s : result.suppressions) {
      const std::string skey =
          s.file + ":" + std::to_string(s.comment_line);
      suppressions.emplace(skey, std::move(s));
    }
  }

  // Match findings against suppressions.
  // target index: file:line -> [suppression keys]
  std::map<std::string, std::vector<const Suppression*>> by_target;
  for (const auto& [skey, s] : suppressions)
    by_target[s.file + ":" + std::to_string(s.target_line)].push_back(&s);

  std::set<const Suppression*> used;
  std::vector<const Finding*> active;    // unsuppressed findings
  std::vector<const Finding*> squelched; // suppressed (JSON visibility)
  for (const auto& [fkey, f] : findings) {
    bool suppressed = false;
    const auto it = by_target.find(f.file + ":" + std::to_string(f.line));
    if (it != by_target.end()) {
      for (const Suppression* s : it->second) {
        if (std::find(s->rules.begin(), s->rules.end(), f.rule) !=
            s->rules.end()) {
          used.insert(s);
          suppressed = true;
        }
      }
    }
    (suppressed ? squelched : active).push_back(&f);
  }

  // Unused suppressions (skipped for rules not enabled this run).
  std::vector<const Suppression*> unused;
  if (!gNoUnused) {
    for (const auto& [skey, s] : suppressions) {
      if (used.count(&s)) continue;
      bool any_enabled = false;
      for (const std::string& r : s.rules) {
        const int idx = RuleIndex(r);
        if (idx >= 0 && (rule_mask & (1u << idx))) any_enabled = true;
      }
      if (any_enabled) unused.push_back(&s);
    }
  }

  const bool failed = !active.empty() || !unused.empty() || failed_tus > 0;

  if (gJson) {
    llvm::json::Array jf;
    for (const Finding* f : active)
      jf.push_back(llvm::json::Object{{"file", f->file},
                                      {"line", static_cast<int64_t>(f->line)},
                                      {"col", static_cast<int64_t>(f->col)},
                                      {"rule", f->rule},
                                      {"message", f->message},
                                      {"suppressed", false}});
    for (const Finding* f : squelched)
      jf.push_back(llvm::json::Object{{"file", f->file},
                                      {"line", static_cast<int64_t>(f->line)},
                                      {"col", static_cast<int64_t>(f->col)},
                                      {"rule", f->rule},
                                      {"message", f->message},
                                      {"suppressed", true}});
    llvm::json::Array ju;
    for (const Suppression* s : unused) {
      llvm::json::Array rules;
      for (const std::string& r : s->rules) rules.push_back(r);
      ju.push_back(llvm::json::Object{
          {"file", s->file},
          {"line", static_cast<int64_t>(s->comment_line)},
          {"rules", std::move(rules)}});
    }
    llvm::json::Object out{{"tool", kToolVersion},
                           {"tus_analyzed", static_cast<int64_t>(analyzed_tus)},
                           {"tus_cached", static_cast<int64_t>(cached_tus)},
                           {"tus_failed", static_cast<int64_t>(failed_tus)},
                           {"findings", std::move(jf)},
                           {"unused_suppressions", std::move(ju)},
                           {"ok", !failed}};
    llvm::outs() << llvm::json::Value(std::move(out)) << "\n";
  } else {
    for (const Finding* f : active)
      llvm::errs() << f->file << ":" << f->line << ":" << f->col
                   << ": error: [" << f->rule << "] " << f->message << "\n";
    for (const Suppression* s : unused)
      llvm::errs() << s->file << ":" << s->comment_line
                   << ": error: [suppression] unused suppression — the "
                      "violation it excused is gone; delete the comment\n";
    llvm::errs() << "mv3c_analyze: " << analyzed_tus << " TU(s) analyzed, "
                 << cached_tus << " from cache, " << failed_tus
                 << " failed; " << active.size() << " finding(s), "
                 << squelched.size() << " suppressed, " << unused.size()
                 << " unused suppression(s)\n";
  }

  if (failed_tus > 0) return 2;
  return failed ? 1 : 0;
}
