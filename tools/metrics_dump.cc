// metrics_dump: runs a short in-process workload burst and dumps the
// engine's merged MetricsRegistry snapshot — the same data the serving
// front-end exposes at /metrics — in either Prometheus text exposition
// (--format=prom, via src/obs/prom_export) or the RUNJSON-style JSON the
// bench suite emits (--format=json). Exists so the exposition writer has
// a consumer outside the server and snapshots can be eyeballed or piped
// into promtool without standing up a network listener.
//
//   metrics_dump --workload=banking --engine=mv3c --txns=20000 --format=prom

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/random.h"
#include "obs/prom_export.h"
#include "server/protocol.h"
#include "server/workload_host.h"
#include "workloads/banking.h"
#include "workloads/tatp.h"
#include "workloads/tpcc.h"
#include "workloads/trading.h"

namespace mv3c {
namespace {

using server::Op;

template <typename Params>
server::WorkloadHost::Result RunOne(server::WorkloadHost* host, Op op,
                                    const Params& p) {
  return host->Run(0, static_cast<uint16_t>(op),
                   reinterpret_cast<const uint8_t*>(&p), sizeof(p));
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

}  // namespace
}  // namespace mv3c

int main(int argc, char** argv) {
  using namespace mv3c;
  server::HostOptions hopts;
  hopts.workers = 1;
  uint64_t txns = 20000;
  uint64_t seed = 42;
  std::string format = "prom";
  std::string v;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (ParseFlag(a, "--workload", &v)) {
      hopts.workload = v;
    } else if (ParseFlag(a, "--engine", &v)) {
      hopts.engine = v;
    } else if (ParseFlag(a, "--scale", &v)) {
      hopts.scale = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(a, "--txns", &v)) {
      txns = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(a, "--seed", &v)) {
      seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(a, "--format", &v)) {
      format = v;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--workload=W] [--engine=E] [--scale=N]\n"
                   "  [--txns=N] [--seed=N] [--format=prom|json]\n",
                   argv[0]);
      return 2;
    }
  }
  if (format != "prom" && format != "json") {
    std::fprintf(stderr, "--format must be prom or json\n");
    return 2;
  }

  auto host = server::MakeWorkloadHost(hopts);
  if (host == nullptr) return 1;

  uint64_t committed = 0;
  if (hopts.workload == "banking") {
    banking::TransferGenerator gen(
        hopts.scale != 0 ? static_cast<int64_t>(hopts.scale) : 100000, 10,
        seed);
    for (uint64_t i = 0; i < txns; ++i) {
      committed += RunOne(host.get(), Op::kBankingTransfer, gen.Next()).status ==
                   server::TxnStatus::kCommitted;
    }
  } else if (hopts.workload == "trading") {
    const uint64_t n = hopts.scale != 0 ? hopts.scale : 100000;
    trading::TradingGenerator gen(n, n, 0.8, 50, seed);
    for (uint64_t i = 0; i < txns; ++i) {
      const auto t = gen.Next();
      const auto r = t.is_trade_order
                         ? RunOne(host.get(), Op::kTradeOrder, t.order)
                         : RunOne(host.get(), Op::kPriceUpdate, t.price);
      committed += r.status == server::TxnStatus::kCommitted;
    }
  } else if (hopts.workload == "tatp") {
    tatp::TatpGenerator gen(hopts.scale != 0 ? hopts.scale : 100000, seed);
    for (uint64_t i = 0; i < txns; ++i) {
      committed += RunOne(host.get(), Op::kTatp, gen.Next()).status ==
                   server::TxnStatus::kCommitted;
    }
  } else if (hopts.workload == "tpcc") {
    tpcc::TpccGenerator gen(
        tpcc::TpccScale{.n_warehouses = hopts.scale != 0 ? hopts.scale : 1},
        seed);
    for (uint64_t i = 0; i < txns; ++i) {
      committed += RunOne(host.get(), Op::kTpcc, gen.Next()).status ==
                   server::TxnStatus::kCommitted;
    }
  } else {
    std::fprintf(stderr, "unknown workload: %s\n", hopts.workload.c_str());
    return 2;
  }
  host->FlushWorkerMetrics(0);
  const obs::MetricsSnapshot snap = host->PublishedEngineMetrics();
  host->Shutdown();

  std::fprintf(stderr, "%llu/%llu committed (%s on %s)\n",
               static_cast<unsigned long long>(committed),
               static_cast<unsigned long long>(txns),
               hopts.workload.c_str(), hopts.engine.c_str());
  if (format == "prom") {
    obs::PromTextWriter w;
    obs::WriteSnapshot(&w, snap, "mv3c_engine",
                       {{"engine", hopts.engine}, {"workload", hopts.workload}});
    std::fputs(w.str().c_str(), stdout);
  } else {
    std::printf("{\"workload\":\"%s\",\"engine\":\"%s\",\"txns\":%llu,"
                "\"committed\":%llu,\"phases\":%s,\"counters\":%s}\n",
                hopts.workload.c_str(), hopts.engine.c_str(),
                static_cast<unsigned long long>(txns),
                static_cast<unsigned long long>(committed),
                snap.PhasesJson().c_str(), snap.CountersJson().c_str());
  }
  return 0;
}
