// Figure 10 (Appendix C.1): TATP with non-uniform key distribution and
// attribute-level validation over increasing window sizes. With 80% of the
// mix read-only, small windows show no difference; at larger windows
// MV3C's acceptance of blind UPDATE_LOCATION writes (no conflicts among
// them) separates it from OMVCC, which prematurely aborts on every
// UPDATE_LOCATION collision.

#include "bench/runners.h"

int main(int argc, char** argv) {
  using namespace mv3c::bench;
  TraceSession trace;
  const bool full = FullRun(argc, argv);
  TatpSetup s;
  // Paper: scale factor 1 = 1M subscribers, 10M transactions.
  s.subscribers = full ? 1000000 : 50000;
  s.n_txns = full ? 10000000 : 200000;

  std::printf("# Figure 10: TATP, %llu subscribers, %llu txns\n",
              static_cast<unsigned long long>(s.subscribers),
              static_cast<unsigned long long>(s.n_txns));
  TablePrinter table({"window", "mv3c_tps", "omvcc_tps", "speedup",
                      "mv3c_conflicts", "omvcc_conflicts"});
  for (size_t window : {1, 2, 4, 8, 16, 32, 64}) {
    const RunResult m = RunTatpMv3c(window, s);
    const RunResult o = RunTatpOmvcc(window, s);
    table.Row({Fmt(static_cast<uint64_t>(window)), Fmt(m.Tps(), 0),
               Fmt(o.Tps(), 0), Fmt(m.Tps() / o.Tps(), 2),
               Fmt(m.Counter("repair_rounds") + m.Counter("ww_restarts")),
               Fmt(o.Counter("validation_failures") +
                   o.Counter("ww_restarts"))});
    EmitRunJson("fig10", "mv3c", window, m);
    EmitRunJson("fig10", "omvcc", window, o);
  }
  return 0;
}
