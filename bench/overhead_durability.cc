// Durability overhead (DESIGN §5f, EXPERIMENTS §durability): the same
// banking stream through MV3C in three regimes — no WAL, WAL with async
// ack (Silo-style group commit: commit returns immediately, durability
// trails by up to one epoch), and WAL with sync ack (commit blocks until
// its epoch is fsynced). Async measures the logging tax on the commit path
// (serialization + buffer handoff); sync measures the full group-commit
// latency as seen by a single-threaded submitter, which is epoch-interval
// bound by construction (one in-flight transaction cannot batch), so it
// runs a smaller stream and is reported as a latency regime, not a
// throughput comparison.
//
// Only built with -DMV3C_WAL=ON.

#include <filesystem>
#include <string>

#include "bench/runners.h"
#include "wal/catalog.h"
#include "wal/log_manager.h"
#include "workloads/wal_registry.h"

namespace mv3c::bench {
namespace {

namespace fs = std::filesystem;

/// RunBankingMv3c with a WAL attached; `ack` selects the commit-path
/// regime. The log directory is wiped before each run so segment sizes are
/// comparable.
RunResult RunBankingMv3cWal(size_t window, const BankingSetup& s,
                            wal::WalConfig::Ack ack, const fs::path& dir,
                            uint32_t partitions = 1) {
  fs::remove_all(dir);
  TransactionManager mgr;
  wal::WalConfig cfg;
  cfg.dir = dir.string();
  cfg.ack = ack;
  cfg.partitions = partitions;  // pinned: env must not shift bench regimes
  mgr.EnableWal(cfg);
  banking::BankingDb db(&mgr, s.accounts, s.initial_balance);
  wal::Catalog cat;
  RegisterWalTables(cat, db);
  db.Load();
  banking::TransferGenerator gen(s.accounts, s.fee_percent, s.seed);
  std::vector<banking::TransferParams> stream(s.n_txns);
  for (auto& p : stream) p = gen.Next();
  RunResult r = Drive<Mv3cExecutor>(
      window, s.n_txns,
      [&](...) {
        return std::make_unique<Mv3cExecutor>(&mgr, DefaultMv3cConfig());
      },
      [&](uint64_t i) { return banking::Mv3cTransferMoney(db, stream[i]); },
      [&] { mgr.CollectGarbage(); });
  mgr.wal()->FlushNow();
  // Fold the writer thread's counters (wal_bytes, epochs_flushed,
  // group_commit_size, sync waits) and the log_serialize/log_flush phase
  // histograms into the run's snapshot.
  r.metrics.Merge(mgr.wal()->metrics().Snapshot());
  AttachArenaStats(&r, mgr);
  mgr.DisableWal();
  return r;
}

std::string MbOnDisk(const RunResult& r) {
  return Fmt(static_cast<double>(r.Counter("wal_bytes")) / (1024.0 * 1024.0),
             1);
}

std::string AvgGroupSize(const RunResult& r) {
  const uint64_t epochs = r.Counter("epochs_flushed");
  if (epochs == 0) return "0";
  return Fmt(static_cast<double>(r.Counter("wal_records")) /
                 static_cast<double>(epochs),
             1);
}

}  // namespace
}  // namespace mv3c::bench

int main(int argc, char** argv) {
  using namespace mv3c::bench;
  TraceSession trace;
  const bool full = FullRun(argc, argv);
  const fs::path dir = fs::temp_directory_path() / "mv3c_overhead_wal";

  std::printf("# §5f: durability overhead (banking, window 10)\n");
  TablePrinter table({"regime", "tps", "vs_off_pct", "log_mb",
                      "recs_per_epoch"});

  BankingSetup s;
  s.accounts = full ? 100000 : 20000;
  s.fee_percent = 100;
  s.n_txns = full ? 1000000 : 150000;

  const RunResult off = RunBankingMv3c(10, s);
  table.Row({"wal-off", Fmt(off.Tps(), 0), "0.00", "-", "-"});
  EmitRunJson("overhead_durability", "mv3c-wal-off", 10, off);

  const RunResult async_r =
      RunBankingMv3cWal(10, s, mv3c::wal::WalConfig::Ack::kAsync, dir);
  table.Row({"wal-async", Fmt(async_r.Tps(), 0),
             Fmt((off.Tps() / async_r.Tps() - 1.0) * 100.0, 2),
             MbOnDisk(async_r), AvgGroupSize(async_r)});
  EmitRunJson("overhead_durability", "mv3c-wal-async", 10, async_r);

  // Partitioned log, same async stream: a single submitter lands on one
  // stream (the others heartbeat), so this row is the partition-machinery
  // tax — the scaling win needs concurrent submitters (fig8 regimes).
  const RunResult async_p4 = RunBankingMv3cWal(
      10, s, mv3c::wal::WalConfig::Ack::kAsync, dir, /*partitions=*/4);
  table.Row({"wal-async-p4", Fmt(async_p4.Tps(), 0),
             Fmt((off.Tps() / async_p4.Tps() - 1.0) * 100.0, 2),
             MbOnDisk(async_p4), AvgGroupSize(async_p4)});
  EmitRunJson("overhead_durability", "mv3c-wal-async-p4", 10, async_p4);

  // Sync ack from a single-threaded submitter is epoch-interval bound:
  // the stream is smaller and the number is a latency statement.
  BankingSetup sync_s = s;
  sync_s.n_txns = full ? 50000 : 5000;
  const RunResult sync_r =
      RunBankingMv3cWal(10, sync_s, mv3c::wal::WalConfig::Ack::kSync, dir);
  table.Row({"wal-sync", Fmt(sync_r.Tps(), 0), "(latency-bound)",
             MbOnDisk(sync_r), AvgGroupSize(sync_r)});
  EmitRunJson("overhead_durability", "mv3c-wal-sync", 10, sync_r);

  fs::remove_all(dir);
  return 0;
}
