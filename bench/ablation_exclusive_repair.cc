// Ablation (§4.3): exclusive repair. After N failed validation rounds the
// repair runs inside the commit critical section, guaranteeing the commit
// and saving further validation rounds, at the price of blocking other
// committers. Under extreme contention this caps the number of rounds a
// transaction burns; with a low threshold it can also serialize the
// system.

#include "bench/runners.h"

int main(int argc, char** argv) {
  using namespace mv3c;
  using namespace mv3c::bench;
  TraceSession trace;
  const bool full = FullRun(argc, argv);
  const int64_t accounts = full ? 100000 : 10000;
  const uint64_t n_txns = full ? 1000000 : 60000;

  std::printf("# Ablation: §4.3 exclusive repair thresholds, Banking, "
              "window 32\n");
  TablePrinter table({"threshold", "tps", "repairs", "exclusive",
                      "validation_fails"});
  for (int threshold : {-1, 0, 1, 3}) {
    TransactionManager mgr;
    banking::BankingDb db(&mgr, accounts, 1'000'000);
    db.Load();
    banking::TransferGenerator gen(accounts, 100, 42);
    std::vector<banking::TransferParams> stream(n_txns);
    for (auto& p : stream) p = gen.Next();
    Mv3cConfig cfg;
    cfg.exclusive_repair_after = threshold;
    uint64_t exclusive = 0, repairs = 0, fails = 0;
    WindowDriver<Mv3cExecutor> driver(
        32, [&](...) { return std::make_unique<Mv3cExecutor>(&mgr, cfg); },
        [&] { mgr.CollectGarbage(); });
    const DriveResult r = driver.Run(CountedSource<Mv3cExecutor::Program>(
        n_txns,
        [&](uint64_t i) { return banking::Mv3cTransferMoney(db, stream[i]); }));
    const double seconds = r.seconds;  // timed by the driver itself
    for (Mv3cExecutor* e : driver.executors()) {
      exclusive += e->stats().exclusive_repairs;
      repairs += e->stats().repair_rounds;
      fails += e->stats().validation_failures;
    }
    table.Row({Fmt(static_cast<uint64_t>(threshold < 0 ? 999 : threshold)),
               Fmt(static_cast<double>(r.committed) / seconds, 0),
               Fmt(repairs), Fmt(exclusive), Fmt(fails)});
  }
  std::printf("(threshold 999 = disabled)\n");
  return 0;
}
