// Figure 6(b): Trading benchmark with 10 concurrent transactions as the
// Zipf alpha parameter of the security-id distribution varies. Larger
// alpha concentrates the accesses on fewer securities, raising the
// fraction of conflicting transactions; MV3C's advantage over OMVCC grows
// with it.

#include "bench/runners.h"

int main(int argc, char** argv) {
  using namespace mv3c::bench;
  TraceSession trace;
  const bool full = FullRun(argc, argv);
  TradingSetup s;
  s.securities = full ? 100000 : 10000;
  s.customers = full ? 100000 : 10000;
  s.n_txns = full ? 500000 : 20000;

  std::printf("# Figure 6(b): Trading, 10 concurrent txns, %llu txns\n",
              static_cast<unsigned long long>(s.n_txns));
  TablePrinter table({"alpha", "mv3c_tps", "omvcc_tps", "speedup",
                      "mv3c_repairs", "omvcc_restarts"});
  for (double alpha : {0.5, 0.8, 1.0, 1.2, 1.4, 1.6, 2.0}) {
    s.alpha = alpha;
    const RunResult m = RunTradingMv3c(10, s);
    const RunResult o = RunTradingOmvcc(10, s);
    table.Row({Fmt(alpha, 1), Fmt(m.Tps(), 0), Fmt(o.Tps(), 0),
               Fmt(m.Tps() / o.Tps(), 2), Fmt(m.Counter("repair_rounds")),
               Fmt(o.Counter("validation_failures") +
                   o.Counter("ww_restarts"))});
    EmitRunJson("fig6b", "mv3c", 10, m);
    EmitRunJson("fig6b", "omvcc", 10, o);
  }
  return 0;
}
