// Figure 11 (Appendix C.2): TPC-C with 1 warehouse over window sizes up
// to 64 (simulated concurrency frees the sweep from the core count). The
// paper reports ~2x MV3C over OMVCC at window 64, consistent in shape
// with the multi-threaded Figure 8(a).

#include "bench/runners.h"

int main(int argc, char** argv) {
  using namespace mv3c::bench;
  TraceSession trace;
  const bool full = FullRun(argc, argv);
  TpccSetup s;
  s.scale.n_warehouses = 1;
  if (!full) {
    s.scale.n_items = 10000;
    s.scale.n_customers_per_d = 1000;
    s.scale.preload_orders_per_d = 1000;
    s.scale.preload_new_orders_per_d = 300;
  }
  s.n_txns = full ? 500000 : 20000;

  std::printf("# Figure 11: TPC-C, 1 warehouse, windows to 64, %llu txns\n",
              static_cast<unsigned long long>(s.n_txns));
  TablePrinter table({"window", "mv3c_tps", "omvcc_tps", "speedup",
                      "mv3c_repairs", "omvcc_fails"});
  for (size_t window : {1, 2, 4, 8, 16, 32, 64}) {
    const RunResult m = RunTpccMv3c(window, s);
    const RunResult o = RunTpccOmvcc(window, s);
    table.Row({Fmt(static_cast<uint64_t>(window)), Fmt(m.Tps(), 0),
               Fmt(o.Tps(), 0), Fmt(m.Tps() / o.Tps(), 2),
               Fmt(m.Counter("repair_rounds")),
               Fmt(o.Counter("validation_failures") +
                   o.Counter("ww_restarts"))});
    EmitRunJson("fig11", "mv3c", window, m);
    EmitRunJson("fig11", "omvcc", window, o);
  }
  return 0;
}
