// Figure 7(c): the ripple effect. Two streams issue TransferMoney
// transactions in logical time — the fast one every 251 units (execution
// costs 250 for both engines), the slow one every 72,000,000 units. A
// failed validation costs a full re-execution (250) under OMVCC and a
// partial repair (187, three quarters) under MV3C, per the measured
// Figure 7(a) ratio. One slow-stream transaction disturbs the fast stream
// and the disturbance compounds: every later transaction's lifetime
// covers its predecessor's commit.

#include "bench/bench_util.h"
#include "driver/ripple_simulator.h"

int main(int argc, char** argv) {
  using namespace mv3c;
  using namespace mv3c::bench;
  RippleSimulator::Params base;
  base.exec_cost = 250;
  base.fast_period = 251;
  base.slow_period = 72'000'000;
  base.n_fast = FullRun(argc, argv) ? 200000 : 20000;

  RippleSimulator::Params omvcc_p = base;
  omvcc_p.retry_cost = 250;
  RippleSimulator::Params mv3c_p = base;
  mv3c_p.retry_cost = 187;
  const auto omvcc = RippleSimulator::Run(omvcc_p);
  const auto mv3c = RippleSimulator::Run(mv3c_p);

  std::printf("# Figure 7(c): ripple effect, paper parameters\n");
  std::printf("# latency (logical units) over the transaction stream\n");
  TablePrinter table({"txn_index", "mv3c_latency", "omvcc_latency"});
  const size_t n = mv3c.txns.size();
  for (size_t i = 0; i < n; i += n / 20) {
    table.Row({Fmt(static_cast<uint64_t>(i)), Fmt(mv3c.txns[i].Latency()),
               Fmt(omvcc.txns[i].Latency())});
  }
  std::printf("\nsummary: mv3c mean=%.0f max=%llu retries=%llu | "
              "omvcc mean=%.0f max=%llu retries=%llu\n",
              mv3c.mean_latency,
              static_cast<unsigned long long>(mv3c.max_latency),
              static_cast<unsigned long long>(mv3c.total_retries),
              omvcc.mean_latency,
              static_cast<unsigned long long>(omvcc.max_latency),
              static_cast<unsigned long long>(omvcc.total_retries));

  // Qualitative-split configuration: between 437 and 500 units of
  // inter-arrival time, MV3C's conflicted service fits in the period (its
  // backlog drains and the stream heals) while OMVCC's does not.
  RippleSimulator::Params split = base;
  split.fast_period = 470;
  split.retry_cost = 187;
  const auto mv3c_heal = RippleSimulator::Run(split);
  split.retry_cost = 250;
  const auto omvcc_div = RippleSimulator::Run(split);
  std::printf("\n# inter-arrival 470: MV3C heals, OMVCC diverges\n");
  std::printf("tail latency: mv3c=%llu omvcc=%llu | retries: mv3c=%llu "
              "omvcc=%llu\n",
              static_cast<unsigned long long>(mv3c_heal.txns.back().Latency()),
              static_cast<unsigned long long>(omvcc_div.txns.back().Latency()),
              static_cast<unsigned long long>(mv3c_heal.total_retries),
              static_cast<unsigned long long>(omvcc_div.total_retries));
  return 0;
}
