// Figure 8(b): TPC-C with 2 warehouses — halving the contention. The
// MV3C-over-OMVCC gap shrinks relative to Figure 8(a): with less real
// contention there is less repair work to save.

#include "bench/runners.h"

int main(int argc, char** argv) {
  using namespace mv3c;
  using namespace mv3c::bench;
  TraceSession trace;
  const bool full = FullRun(argc, argv);
  TpccSetup s;
  s.scale.n_warehouses = 2;
  if (!full) {
    s.scale.n_items = 10000;
    s.scale.n_customers_per_d = 1000;
    s.scale.preload_orders_per_d = 1000;
    s.scale.preload_new_orders_per_d = 300;
  }
  s.n_txns = full ? 500000 : 20000;

  std::printf("# Figure 8(b): TPC-C, 2 warehouses, %llu txns\n",
              static_cast<unsigned long long>(s.n_txns));
  TablePrinter table({"concurrency", "mv3c_tps", "omvcc_tps", "occ_tps",
                      "silo_tps", "mv3c/omvcc"});
  for (size_t window : {1, 2, 4, 8, 12}) {
    const RunResult m = RunTpccMv3c(window, s);
    const RunResult o = RunTpccOmvcc(window, s);
    const RunResult occ = RunTpccSv<OccEngine>(window, s);
    const RunResult silo = RunTpccSv<SiloEngine>(window, s);
    table.Row({Fmt(static_cast<uint64_t>(window)), Fmt(m.Tps(), 0),
               Fmt(o.Tps(), 0), Fmt(occ.Tps(), 0), Fmt(silo.Tps(), 0),
               Fmt(m.Tps() / o.Tps(), 2)});
    EmitRunJson("fig8b", "mv3c", window, m);
    EmitRunJson("fig8b", "omvcc", window, o);
    EmitRunJson("fig8b", "occ", window, occ);
    EmitRunJson("fig8b", "silo", window, silo);
  }
  return 0;
}
