// Recovery time vs history length (DESIGN §5g, EXPERIMENTS §recovery):
// grow a banking WAL history by a multiple of a base transaction count and
// time the two recovery flavors, each against the directory layout its
// deployment mode actually produces:
//
//   genesis      — no checkpoints ever taken; recovery replays the whole
//                  log from the first segment. Cost is linear in history
//                  length by construction.
//   ckpt-suffix  — checkpoints at a fixed cadence with WAL truncation ON
//                  (the default); the directory holds the newest image
//                  plus a bounded suffix. The final chunk is deliberately
//                  left un-checkpointed so the suffix replay is non-empty
//                  but constant-size at every multiple.
//
// The acceptance bar for ISSUE 6: as history grows >= 10x, genesis grows
// with it while ckpt-suffix stays flat. Only built with -DMV3C_WAL=ON.

#include <filesystem>
#include <string>
#include <vector>

#include "bench/runners.h"
#include "wal/catalog.h"
#include "wal/checkpoint.h"
#include "wal/log_manager.h"
#include "wal/state_hash.h"
#include "workloads/wal_registry.h"

namespace mv3c::bench {
namespace {

namespace fs = std::filesystem;

struct HistoryStats {
  uint64_t txns = 0;
  uint64_t log_bytes = 0;
  uint64_t checkpoints = 0;
};

/// Writes `multiple * base_txns` of banking history into `dir` in chunks of
/// `base_txns / 2`. With checkpoints enabled, a round is taken after every
/// chunk except the last (truncating the WAL as it goes), so the
/// un-replayed suffix is exactly one chunk no matter the multiple.
HistoryStats WriteHistory(const fs::path& dir, const BankingSetup& s,
                          uint64_t multiple, bool with_checkpoints) {
  fs::remove_all(dir);
  fs::create_directories(dir);  // LogManager's mkdir is single-level
  HistoryStats out;
  TransactionManager mgr;
  wal::WalConfig cfg;
  cfg.dir = dir.string();
  cfg.ack = wal::WalConfig::Ack::kAsync;
  // Rotate often enough that truncation can retire closed segments; with
  // the default (huge) segment size the whole history stays in one open
  // segment and the checkpoint path would re-scan it all.
  cfg.segment_bytes = 1 << 20;
  mgr.EnableWal(cfg);
  banking::BankingDb db(&mgr, s.accounts, s.initial_balance);
  wal::Catalog cat;
  RegisterWalTables(cat, db);
  db.Load();

  std::unique_ptr<wal::Checkpointer> ck;
  if (with_checkpoints) {
    wal::CheckpointConfig ck_cfg;
    ck_cfg.dir = dir.string();
    ck_cfg.interval_ms = 0;  // manual, chunk-aligned rounds
    ck = std::make_unique<wal::Checkpointer>(ck_cfg, mgr.wal(),
                                             cat.CheckpointSourceProvider());
  }

  banking::TransferGenerator gen(s.accounts, s.fee_percent, s.seed);
  const uint64_t chunk = s.n_txns / 2;
  const uint64_t total = s.n_txns * multiple;
  for (uint64_t done = 0; done < total; done += chunk) {
    std::vector<banking::TransferParams> stream(chunk);
    for (auto& p : stream) p = gen.Next();
    (void)Drive<Mv3cExecutor>(
        10, chunk,
        [&](...) {
          return std::make_unique<Mv3cExecutor>(&mgr, DefaultMv3cConfig());
        },
        [&](uint64_t i) { return banking::Mv3cTransferMoney(db, stream[i]); },
        [&] { mgr.CollectGarbage(); });
    if (!mgr.wal()->FlushNow()) {
      std::fprintf(stderr, "history write failed (wal flush)\n");
      std::exit(1);
    }
    if (ck && done + chunk < total) {
      if (!ck->TakeCheckpoint()) {
        std::fprintf(stderr, "history write failed (checkpoint)\n");
        std::exit(1);
      }
      ++out.checkpoints;
    }
  }
  mgr.DisableWal();
  out.txns = total;
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.path().filename().string().rfind("wal-", 0) == 0) {
      out.log_bytes += fs::file_size(e.path());
    }
  }
  return out;
}

struct TimedRecovery {
  double seconds = 0;
  wal::RecoveryReport report;
};

TimedRecovery TimeRecovery(const fs::path& dir, const BankingSetup& s,
                           bool use_checkpoints) {
  TimedRecovery out;
  TransactionManager mgr;
  banking::BankingDb db(&mgr, s.accounts, s.initial_balance);
  wal::Catalog cat;
  RegisterWalTables(cat, db);
  Timer t;
  out.report = use_checkpoints ? cat.RecoverWithCheckpoints(dir.string())
                               : cat.Recover(dir.string());
  out.seconds = t.Seconds();
  // Sanity: recovery must land on a conserving state or the timing is
  // meaningless.
  if (db.TotalBalance() != s.accounts * s.initial_balance) {
    std::fprintf(stderr, "recovery broke conservation\n");
    std::exit(1);
  }
  return out;
}

RunResult AsRunResult(const TimedRecovery& r) {
  RunResult out;
  out.seconds = r.seconds;
  out.committed = r.report.records_applied +
                  r.report.checkpoint_records_loaded;  // rows recovered
  return out;
}

}  // namespace
}  // namespace mv3c::bench

int main(int argc, char** argv) {
  using namespace mv3c::bench;
  TraceSession trace;
  const bool full = FullRun(argc, argv);
  const fs::path base = fs::temp_directory_path() / "mv3c_overhead_recovery";
  const fs::path dir_genesis = base / "genesis";
  const fs::path dir_ckpt = base / "ckpt";

  BankingSetup s;
  s.accounts = full ? 50000 : 10000;
  s.fee_percent = 100;
  s.n_txns = full ? 200000 : 30000;  // base history; multiples scale it

  std::printf("# §5g: recovery time vs history length (banking; ckpt dir "
              "truncates at a fixed cadence of base/2 txns, final chunk "
              "left as replay suffix)\n");
  TablePrinter table({"history_x", "txns", "genesis_log_mb", "ckpt_log_mb",
                      "ckpts", "genesis_ms", "ckpt_ms", "genesis_rows",
                      "ckpt_rows", "suffix_rows"});

  const std::vector<uint64_t> multiples = {1, 2, 5, 10};
  double genesis_first = 0, genesis_last = 0;
  double ckpt_first = 0, ckpt_last = 0;
  for (const uint64_t m : multiples) {
    const HistoryStats hg = WriteHistory(dir_genesis, s, m, false);
    const HistoryStats hc = WriteHistory(dir_ckpt, s, m, true);
    const TimedRecovery genesis = TimeRecovery(dir_genesis, s, false);
    const TimedRecovery ckpt = TimeRecovery(dir_ckpt, s, true);
    table.Row({Fmt(m), Fmt(hg.txns),
               Fmt(static_cast<double>(hg.log_bytes) / (1024.0 * 1024.0), 1),
               Fmt(static_cast<double>(hc.log_bytes) / (1024.0 * 1024.0), 1),
               Fmt(hc.checkpoints), Fmt(genesis.seconds * 1e3, 1),
               Fmt(ckpt.seconds * 1e3, 1),
               Fmt(genesis.report.records_applied),
               Fmt(ckpt.report.checkpoint_records_loaded),
               Fmt(ckpt.report.records_applied)});
    EmitRunJson("overhead_recovery", "genesis-replay",
                static_cast<size_t>(m), AsRunResult(genesis));
    EmitRunJson("overhead_recovery", "ckpt-suffix", static_cast<size_t>(m),
                AsRunResult(ckpt));
    if (m == multiples.front()) {
      genesis_first = genesis.seconds;
      ckpt_first = ckpt.seconds;
    }
    if (m == multiples.back()) {
      genesis_last = genesis.seconds;
      ckpt_last = ckpt.seconds;
    }
  }

  // The headline: growth factor of each path across a 10x history spread.
  std::printf("growth over %llux history: genesis %.1fx, ckpt-suffix "
              "%.1fx\n",
              static_cast<unsigned long long>(multiples.back()),
              genesis_last / genesis_first, ckpt_last / ckpt_first);

  fs::remove_all(base);
  return 0;
}
