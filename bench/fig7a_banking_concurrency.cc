// Figure 7(a): Banking example, TransferMoney-only stream (every
// transaction conflicts on the central fee account), total execution time
// for a fixed transaction count as the concurrency level grows. The paper
// plots the widening time gap between MV3C and OMVCC (the paper runs 5M
// transactions over 1..10 worker threads; here the same fixed stream runs
// at increasing window sizes).

#include "bench/runners.h"

int main(int argc, char** argv) {
  using namespace mv3c::bench;
  TraceSession trace;
  const bool full = FullRun(argc, argv);
  BankingSetup s;
  s.accounts = full ? 100000 : 10000;
  s.fee_percent = 100;
  s.n_txns = full ? 5000000 : 100000;

  std::printf("# Figure 7(a): Banking TransferMoney, %llu txns, time (s)\n",
              static_cast<unsigned long long>(s.n_txns));
  TablePrinter table({"concurrency", "mv3c_s", "omvcc_s", "mv3c_tps",
                      "omvcc_tps", "speedup"});
  for (size_t window : {1, 2, 4, 8, 16, 32}) {
    const RunResult m = RunBankingMv3c(window, s);
    const RunResult o = RunBankingOmvcc(window, s);
    table.Row({Fmt(static_cast<uint64_t>(window)), Fmt(m.seconds, 2),
               Fmt(o.seconds, 2), Fmt(m.Tps(), 0), Fmt(o.Tps(), 0),
               Fmt(m.Tps() / o.Tps(), 2)});
    EmitRunJson("fig7a", "mv3c", window, m);
    EmitRunJson("fig7a", "omvcc", window, o);
  }
  return 0;
}
