// Micro-benchmarks (google-benchmark) for the hot substrate operations:
// version-chain reads at varying depths, version creation and commit,
// predicate matching with and without the attribute-level short-circuit,
// validation walks over the recently-committed list, cuckoo-map and
// ordered-index operations, Zipf sampling and the trading payload cipher.

#include <benchmark/benchmark.h>

#include "common/cipher.h"

#include "common/macros.h"
#include "common/zipf.h"
#include "index/cuckoo_map.h"
#include "index/ordered_index.h"
#include "mvcc/predicate.h"
#include "mvcc/transaction_manager.h"

namespace mv3c {
namespace {

struct Row {
  int64_t a = 0;
  int64_t b = 0;
};
using TestTable = Table<uint64_t, Row>;

void BM_VersionChainRead(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  TransactionManager mgr;
  TestTable table("t", 16);
  // Build a chain of `depth` committed versions.
  Transaction loader(&mgr);
  mgr.Begin(&loader);
  loader.Insert(table, 1, Row{0, 0});
  MV3C_CHECK(
      mgr.TryCommit(&loader, [](CommittedRecord*) { return true; }));
  auto* obj = table.Find(1);
  // Hold an old reader open so truncation cannot shorten the chain.
  Transaction pin(&mgr);
  mgr.Begin(&pin);
  for (int i = 1; i < depth; ++i) {
    Transaction t(&mgr);
    mgr.Begin(&t);
    t.Update(table, obj, Row{i, i}, ColumnMask::All(), false,
             WwPolicy::kFailFast);
    MV3C_CHECK(mgr.TryCommit(&t, [](CommittedRecord*) { return true; }));
  }
  // Read with the OLD snapshot: traverses the whole chain.
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        obj->FindVisible(pin.start_ts(), pin.txn_id()));
  }
  mgr.CommitReadOnly(&pin);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VersionChainRead)->Arg(1)->Arg(4)->Arg(16)->Arg(40);

void BM_UpdateCommit(benchmark::State& state) {
  TransactionManager mgr;
  TestTable table("t", 16);
  Transaction loader(&mgr);
  mgr.Begin(&loader);
  loader.Insert(table, 1, Row{0, 0});
  MV3C_CHECK(
      mgr.TryCommit(&loader, [](CommittedRecord*) { return true; }));
  auto* obj = table.Find(1);
  int64_t i = 0;
  for (auto _ : state) {
    Transaction t(&mgr);
    mgr.Begin(&t);
    t.Update(table, obj, Row{++i, i}, ColumnMask::All(), false,
             WwPolicy::kFailFast);
    MV3C_CHECK(mgr.TryCommit(&t, [](CommittedRecord*) { return true; }));
    if ((i & 1023) == 0) mgr.CollectGarbage();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UpdateCommit);

void BM_PredicateMatch(benchmark::State& state) {
  const bool attr = state.range(0) != 0;
  // Toggled before the measured threads start; thread creation publishes.
  g_attribute_level_validation.store(attr, std::memory_order_relaxed);
  TransactionManager mgr;
  TestTable table("t", 16);
  Transaction loader(&mgr);
  mgr.Begin(&loader);
  loader.Insert(table, 1, Row{0, 0});
  Timestamp cts;
  MV3C_CHECK(
      mgr.TryCommit(&loader, [](CommittedRecord*) { return true; }, &cts));
  const VersionBase* v = mgr.rc_head()->versions[0];
  KeyEqCriterion<TestTable> pred(&table, 1);
  pred.set_monitored(ColumnMask::Of(1));  // version modified All -> match
  for (auto _ : state) {
    benchmark::DoNotOptimize(pred.ConflictsWith(*v));
  }
  g_attribute_level_validation.store(true, std::memory_order_relaxed);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PredicateMatch)->Arg(0)->Arg(1);

void BM_ValidationWalk(benchmark::State& state) {
  const int rc_len = static_cast<int>(state.range(0));
  TransactionManager mgr;
  TestTable table("t", 1 << 12);
  // Seed rows, then commit rc_len transactions while a victim is active.
  {
    Transaction loader(&mgr);
    mgr.Begin(&loader);
    for (uint64_t k = 0; k < 1024; ++k) loader.Insert(table, k, Row{});
    MV3C_CHECK(
      mgr.TryCommit(&loader, [](CommittedRecord*) { return true; }));
  }
  Transaction victim(&mgr);
  mgr.Begin(&victim);
  for (int i = 0; i < rc_len; ++i) {
    Transaction t(&mgr);
    mgr.Begin(&t);
    t.Update(table, table.Find(i % 1024), Row{i, i}, ColumnMask::All(),
             false, WwPolicy::kFailFast);
    MV3C_CHECK(mgr.TryCommit(&t, [](CommittedRecord*) { return true; }));
  }
  KeyEqCriterion<TestTable> pred(&table, 9999);  // never matches
  for (auto _ : state) {
    bool clean = TransactionManager::ForEachConcurrentVersion(
        mgr.rc_head(), victim.start_ts(),
        [&](const VersionBase& v) { return !pred.ConflictsWith(v); });
    benchmark::DoNotOptimize(clean);
  }
  mgr.CommitReadOnly(&victim);
  state.SetItemsProcessed(state.iterations() * rc_len);
}
BENCHMARK(BM_ValidationWalk)->Arg(8)->Arg(64)->Arg(512);

void BM_CuckooFind(benchmark::State& state) {
  CuckooMap<uint64_t, uint64_t> map(1 << 16);
  for (uint64_t k = 0; k < (1 << 16); ++k) MV3C_CHECK(map.Insert(k, k));
  Xoshiro256 rng(7);
  uint64_t out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Find(rng.NextBounded(1 << 16), &out));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CuckooFind);

void BM_CuckooInsert(benchmark::State& state) {
  CuckooMap<uint64_t, uint64_t> map(1 << 20);
  uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.Insert(k++, k));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CuckooInsert);

void BM_OrderedIndexScan(benchmark::State& state) {
  OrderedIndex<uint64_t, uint64_t, SinglePartition> idx;
  for (uint64_t k = 0; k < 10000; ++k) MV3C_CHECK(idx.Insert(k, k));
  for (auto _ : state) {
    uint64_t sum = 0;
    idx.ScanRange(4000, 4100, [&](uint64_t, uint64_t v) {
      sum += v;
      return true;
    });
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_OrderedIndexScan);

void BM_ZipfNext(benchmark::State& state) {
  ZipfGenerator zipf(100000, 1.4);
  Xoshiro256 rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.Next(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZipfNext);

void BM_CipherApply(benchmark::State& state) {
  StreamCipher cipher(0xDEADBEEF);
  uint8_t buf[112] = {};
  for (auto _ : state) {
    cipher.Apply(buf, sizeof(buf));
    benchmark::DoNotOptimize(buf);
  }
  state.SetBytesProcessed(state.iterations() * sizeof(buf));
}
BENCHMARK(BM_CipherApply);

}  // namespace
}  // namespace mv3c

BENCHMARK_MAIN();
