// Ablation (§2.3.1): write-write conflict policy on the Banking fee
// account. With kAllowMultiple, the RMW conflict on the fee account is
// detected at validation and repaired (one closure). With kFailFast, the
// same conflict prematurely aborts the whole transaction during execution
// — even under MV3C — because a committed-newer or uncommitted-foreign
// version is found at write time.

#include "bench/runners.h"

int main(int argc, char** argv) {
  using namespace mv3c;
  using namespace mv3c::bench;
  TraceSession trace;
  const bool full = FullRun(argc, argv);
  const int64_t accounts = full ? 100000 : 10000;
  const uint64_t n_txns = full ? 1000000 : 60000;

  std::printf("# Ablation: WW policy on the Banking fee account (MV3C)\n");
  TablePrinter table({"policy", "window", "tps", "repairs", "ww_restarts"});
  for (WwPolicy policy : {WwPolicy::kAllowMultiple, WwPolicy::kFailFast}) {
    for (size_t window : {4, 16}) {
      TransactionManager mgr;
      banking::BankingDb db(&mgr, accounts, 1'000'000);
      db.accounts.set_ww_policy(policy);
      db.Load();
      banking::TransferGenerator gen(accounts, 100, 42);
      std::vector<banking::TransferParams> stream(n_txns);
      for (auto& p : stream) p = gen.Next();
      const RunResult r = Drive<Mv3cExecutor>(
          window, n_txns,
          [&](...) { return std::make_unique<Mv3cExecutor>(&mgr); },
          [&](uint64_t i) {
            return banking::Mv3cTransferMoney(db, stream[i]);
          },
          [&] { mgr.CollectGarbage(); });
      table.Row({policy == WwPolicy::kAllowMultiple ? "allow-multiple"
                                                    : "fail-fast",
                 Fmt(static_cast<uint64_t>(window)), Fmt(r.Tps(), 0),
                 Fmt(r.Counter("repair_rounds")),
                 Fmt(r.Counter("ww_restarts"))});
      EmitRunJson("ablation_ww_policy",
                  policy == WwPolicy::kAllowMultiple ? "mv3c-allow-multiple"
                                                     : "mv3c-fail-fast",
                  window, r);
    }
  }
  return 0;
}
