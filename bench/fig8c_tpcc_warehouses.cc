// Figure 8(c): TPC-C at a fixed concurrency level (10) as the number of
// warehouses grows 1..10 — the conflict ratio falls with more warehouses
// and all engines converge.

#include "bench/runners.h"

int main(int argc, char** argv) {
  using namespace mv3c;
  using namespace mv3c::bench;
  TraceSession trace;
  const bool full = FullRun(argc, argv);
  TpccSetup s;
  if (!full) {
    s.scale.n_items = 5000;
    s.scale.n_customers_per_d = 500;
    s.scale.preload_orders_per_d = 500;
    s.scale.preload_new_orders_per_d = 150;
  }
  s.n_txns = full ? 300000 : 15000;

  std::printf("# Figure 8(c): TPC-C, 10 concurrent txns, %llu txns\n",
              static_cast<unsigned long long>(s.n_txns));
  TablePrinter table({"warehouses", "mv3c_tps", "omvcc_tps", "occ_tps",
                      "silo_tps", "mv3c/omvcc"});
  for (uint64_t w : {1, 2, 4, 6, 10}) {
    s.scale.n_warehouses = w;
    const RunResult m = RunTpccMv3c(10, s);
    const RunResult o = RunTpccOmvcc(10, s);
    const RunResult occ = RunTpccSv<OccEngine>(10, s);
    const RunResult silo = RunTpccSv<SiloEngine>(10, s);
    table.Row({Fmt(w), Fmt(m.Tps(), 0), Fmt(o.Tps(), 0), Fmt(occ.Tps(), 0),
               Fmt(silo.Tps(), 0), Fmt(m.Tps() / o.Tps(), 2)});
    EmitRunJson("fig8c", "mv3c", 10, m);
    EmitRunJson("fig8c", "omvcc", 10, o);
    EmitRunJson("fig8c", "occ", 10, occ);
    EmitRunJson("fig8c", "silo", 10, silo);
  }
  return 0;
}
