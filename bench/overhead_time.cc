// §6.2 time overhead: MV3C as a generic MVCC algorithm must cost nearly
// nothing when there are no conflicts. Two configurations, per the paper:
// serial execution (window 1) and concurrent conflict-free execution
// (window 10, NoFeeTransferMoney only / trading without contention). The
// paper reports <1% overhead for both; the overhead here is building the
// predicate graph (closures) instead of a flat predicate list.

#include "bench/runners.h"

int main(int argc, char** argv) {
  using namespace mv3c::bench;
  TraceSession trace;
  const bool full = FullRun(argc, argv);

  std::printf("# §6.2: MV3C overhead vs OMVCC in conflict-free execution\n");
  TablePrinter table({"scenario", "mv3c_tps", "omvcc_tps", "overhead_pct"});

  {
    BankingSetup s;
    s.accounts = full ? 100000 : 20000;
    s.fee_percent = 100;
    s.n_txns = full ? 2000000 : 150000;
    const RunResult m = RunBankingMv3c(1, s);
    const RunResult o = RunBankingOmvcc(1, s);
    table.Row({"banking-serial", Fmt(m.Tps(), 0), Fmt(o.Tps(), 0),
               Fmt((o.Tps() / m.Tps() - 1.0) * 100.0, 2)});
    EmitRunJson("overhead_time_banking_serial", "mv3c", 1, m);
    EmitRunJson("overhead_time_banking_serial", "omvcc", 1, o);
  }
  {
    BankingSetup s;
    s.accounts = full ? 100000 : 20000;
    s.fee_percent = 0;  // NoFeeTransferMoney: concurrent but conflict-free
    s.n_txns = full ? 2000000 : 150000;
    const RunResult m = RunBankingMv3c(10, s);
    const RunResult o = RunBankingOmvcc(10, s);
    table.Row({"banking-nocf-w10", Fmt(m.Tps(), 0), Fmt(o.Tps(), 0),
               Fmt((o.Tps() / m.Tps() - 1.0) * 100.0, 2)});
    EmitRunJson("overhead_time_banking_nocf", "mv3c", 10, m);
    EmitRunJson("overhead_time_banking_nocf", "omvcc", 10, o);
  }
  {
    TradingSetup s;
    s.securities = full ? 100000 : 20000;
    s.customers = full ? 100000 : 20000;
    s.alpha = 0.0;  // uniform security choice: negligible conflicts
    s.n_txns = full ? 500000 : 30000;
    const RunResult m = RunTradingMv3c(1, s);
    const RunResult o = RunTradingOmvcc(1, s);
    table.Row({"trading-serial", Fmt(m.Tps(), 0), Fmt(o.Tps(), 0),
               Fmt((o.Tps() / m.Tps() - 1.0) * 100.0, 2)});
    EmitRunJson("overhead_time_trading_serial", "mv3c", 1, m);
    EmitRunJson("overhead_time_trading_serial", "omvcc", 1, o);
  }
  return 0;
}
