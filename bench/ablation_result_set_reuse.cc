// Ablation (§4.2): result-set reuse for failed scan predicates. The Bonus
// program scans the whole Account table for balances above a threshold;
// concurrent TransferMoney commits invalidate the scan. With reuse, repair
// patches the cached result set by re-reading only the objects touched by
// the conflicting transactions; without it, the repair re-scans the table.

#include "bench/runners.h"

int main(int argc, char** argv) {
  using namespace mv3c;
  using namespace mv3c::bench;
  TraceSession trace;
  const bool full = FullRun(argc, argv);
  const int64_t accounts = full ? 200000 : 30000;
  const uint64_t n_rounds = full ? 200 : 40;

  std::printf("# Ablation: §4.2 result-set reuse (Bonus full scan over %lld "
              "accounts)\n",
              static_cast<long long>(accounts));
  TablePrinter table(
      {"reuse", "seconds", "bonus_commits", "repairs", "rs_fixes"});
  for (bool reuse : {true, false}) {
    TransactionManager mgr;
    banking::BankingDb db(&mgr, accounts, 400);
    db.Load();
    banking::TransferGenerator gen(accounts, 0, 7);
    Timer timer;
    uint64_t commits = 0;
    Mv3cStats stats;
    for (uint64_t round = 0; round < n_rounds; ++round) {
      // Start a Bonus scan, let a transfer commit mid-flight, then let the
      // Bonus repair and commit.
      Mv3cExecutor bonus(&mgr);
      bonus.Reset(banking::Mv3cBonus(db, 300, reuse));
      bonus.Begin();
      Mv3cExecutor w(&mgr);
      w.MustRun(banking::Mv3cTransferMoney(db, gen.Next()));
      StepResult r;
      do {
        r = bonus.Step();
      } while (r == StepResult::kNeedsRetry);
      if (r == StepResult::kCommitted) ++commits;
      stats.Add(bonus.stats());
      mgr.CollectGarbage();
    }
    table.Row({reuse ? "on" : "off", Fmt(timer.Seconds(), 3), Fmt(commits),
               Fmt(stats.repair_rounds), Fmt(stats.result_set_fixes)});
  }
  return 0;
}
