// Figure 6(a): Trading benchmark throughput as the number of concurrent
// transactions grows (Zipf alpha = 1.4). The paper varies worker threads
// 1..10 on a 12-core box; following its own Appendix C methodology (and
// the 1-core evaluation host), concurrency is the window size here, with
// a wider sweep. Expected shape: MV3C and OMVCC tie at concurrency 1
// (<1% overhead), and MV3C pulls ahead as the contention level rises —
// repairs re-read one security instead of re-decrypting and re-running
// the whole TradeOrder, and PriceUpdate's blind write never conflicts.

#include "bench/runners.h"

int main(int argc, char** argv) {
  using namespace mv3c::bench;
  TraceSession trace;
  const bool full = FullRun(argc, argv);
  TradingSetup s;
  s.securities = full ? 100000 : 10000;
  s.customers = full ? 100000 : 10000;
  s.alpha = 1.4;
  s.n_txns = full ? 1000000 : 30000;

  std::printf("# Figure 6(a): Trading, alpha=1.4, %llu txns, %llu securities\n",
              static_cast<unsigned long long>(s.n_txns),
              static_cast<unsigned long long>(s.securities));
  TablePrinter table({"concurrency", "mv3c_tps", "omvcc_tps", "speedup",
                      "mv3c_repairs", "omvcc_restarts"});
  for (size_t window : {1, 2, 4, 8, 16, 32}) {
    const RunResult m = RunTradingMv3c(window, s);
    const RunResult o = RunTradingOmvcc(window, s);
    table.Row({Fmt(static_cast<uint64_t>(window)), Fmt(m.Tps(), 0),
               Fmt(o.Tps(), 0), Fmt(m.Tps() / o.Tps(), 2),
               Fmt(m.Counter("repair_rounds")),
               Fmt(o.Counter("validation_failures") +
                   o.Counter("ww_restarts"))});
    EmitRunJson("fig6a", "mv3c", window, m);
    EmitRunJson("fig6a", "omvcc", window, o);
  }
  return 0;
}
