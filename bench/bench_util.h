#ifndef MV3C_BENCH_BENCH_UTIL_H_
#define MV3C_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace mv3c::bench {

/// Benchmarks run at a CI-friendly scale by default; set MV3C_BENCH_FULL=1
/// (or pass --full) for paper-scale runs.
inline bool FullRun(int argc = 0, char** argv = nullptr) {
  const char* env = std::getenv("MV3C_BENCH_FULL");
  if (env != nullptr && env[0] == '1') return true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) return true;
  }
  return false;
}

/// Wall-clock stopwatch.
class Timer {
 public:
  Timer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Prints an aligned table row by row.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers)
      : headers_(std::move(headers)) {
    std::string line;
    for (const auto& h : headers_) {
      std::printf("%16s", h.c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < headers_.size(); ++i) std::printf("%16s", "----");
    std::printf("\n");
  }

  void Row(const std::vector<std::string>& cells) const {
    for (const auto& c : cells) std::printf("%16s", c.c_str());
    std::printf("\n");
    std::fflush(stdout);
  }

 private:
  std::vector<std::string> headers_;
};

inline std::string Fmt(double v, int prec = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
  return buf;
}
inline std::string Fmt(uint64_t v) { return std::to_string(v); }

}  // namespace mv3c::bench

#endif  // MV3C_BENCH_BENCH_UTIL_H_
