// Figure 7(b): Banking example with 10 concurrent transactions as the
// percentage of conflicting transactions varies: the mix interpolates
// between NoFeeTransferMoney (0% — disjoint accounts, no conflicts) and
// TransferMoney (100% — everyone updates the central fee account). At 0%
// the engines tie (MV3C's overhead is the price of building the predicate
// graph, <1%); the gap grows with the conflict share.

#include "bench/runners.h"

int main(int argc, char** argv) {
  using namespace mv3c::bench;
  TraceSession trace;
  const bool full = FullRun(argc, argv);
  BankingSetup s;
  s.accounts = full ? 100000 : 10000;
  s.n_txns = full ? 2000000 : 80000;

  std::printf("# Figure 7(b): Banking, 10 concurrent txns, %llu txns\n",
              static_cast<unsigned long long>(s.n_txns));
  TablePrinter table({"conflict_pct", "mv3c_tps", "omvcc_tps", "speedup",
                      "mv3c_repairs", "omvcc_fails"});
  for (int pct : {0, 20, 40, 60, 80, 100}) {
    s.fee_percent = pct;
    const RunResult m = RunBankingMv3c(10, s);
    const RunResult o = RunBankingOmvcc(10, s);
    table.Row({Fmt(static_cast<uint64_t>(pct)), Fmt(m.Tps(), 0),
               Fmt(o.Tps(), 0), Fmt(m.Tps() / o.Tps(), 2),
               Fmt(m.Counter("repair_rounds")),
               Fmt(o.Counter("validation_failures") +
                   o.Counter("ww_restarts"))});
    EmitRunJson("fig7b", "mv3c", 10, m);
    EmitRunJson("fig7b", "omvcc", 10, o);
  }
  return 0;
}
