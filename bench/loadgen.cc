// Open-loop load generator for the serving front-end (DESIGN §5k).
//
// Drives a running mv3c_serve over the MV3S wire protocol at a *scheduled*
// arrival rate: request send times are drawn from a Poisson process fixed
// before the server's behavior is observed, and every end-to-end latency is
// measured from the scheduled arrival — not from when the socket finally
// accepted the bytes. A server that stalls therefore accumulates the stall
// into the recorded latencies instead of silently slowing the offered load
// (the coordinated-omission trap closed-loop drivers fall into).
//
//   loadgen --port=7433 --workload=tpcc --rate=20000 --seconds=10
//       --connections=4
//
// Emits one RUNJSON line compatible with scripts/bench_capture.sh /
// bench_compare.sh, keyed by (bench, engine, arrival_rate), carrying
// achieved throughput, shed fraction, and committed-response p50/p99/p999.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "server/admission.h"  // MonotonicNowNs
#include "server/protocol.h"
#include "workloads/banking.h"
#include "workloads/tatp.h"
#include "workloads/tpcc.h"
#include "workloads/trading.h"

namespace mv3c {
namespace {

using server::FrameReader;
using server::MonotonicNowNs;
using server::Op;
using server::ResponseHeader;
using server::TxnStatus;

struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string workload = "banking";
  std::string engine = "serve";  // label for RUNJSON (server picks engine)
  double rate = 10000;           // total scheduled arrivals/second
  double seconds = 10;
  double warmup_seconds = 1;
  double drain_seconds = 2;
  size_t connections = 4;
  uint64_t scale = 0;  // population knob; must match the server's
  uint64_t seed = 42;
  int trade_order_percent = 50;
  double alpha = 0.8;
  int fee_percent = 10;
};

/// Per-workload request factory: fills (op, params bytes) for the next
/// scheduled arrival. Population defaults mirror workload_host.cc so
/// generated keys always land inside the server-side database.
class RequestSource {
 public:
  RequestSource(const Options& o, uint64_t seed)
      : workload_(o.workload),
        banking_(o.scale != 0 ? static_cast<int64_t>(o.scale) : 100000,
                 o.fee_percent, seed),
        trading_(o.scale != 0 ? o.scale : 100000,
                 o.scale != 0 ? o.scale : 100000, o.alpha,
                 o.trade_order_percent, seed),
        tatp_(o.scale != 0 ? o.scale : 100000, seed),
        tpcc_(tpcc::TpccScale{.n_warehouses = o.scale != 0 ? o.scale : 1},
              seed) {}

  void Append(std::vector<uint8_t>* out, uint64_t request_id) {
    if (workload_ == "banking") {
      server::AppendRequest(out, request_id, Op::kBankingTransfer,
                            banking_.Next());
    } else if (workload_ == "trading") {
      const trading::TradingGenerator::Txn t = trading_.Next();
      if (t.is_trade_order) {
        server::AppendRequest(out, request_id, Op::kTradeOrder, t.order);
      } else {
        server::AppendRequest(out, request_id, Op::kPriceUpdate, t.price);
      }
    } else if (workload_ == "tatp") {
      server::AppendRequest(out, request_id, Op::kTatp, tatp_.Next());
    } else {  // tpcc
      server::AppendRequest(out, request_id, Op::kTpcc, tpcc_.Next());
    }
  }

 private:
  std::string workload_;
  banking::TransferGenerator banking_;
  trading::TradingGenerator trading_;
  tatp::TatpGenerator tatp_;
  tpcc::TpccGenerator tpcc_;
};

struct ConnStats {
  uint64_t scheduled = 0;  // arrivals the open loop generated
  uint64_t sent = 0;       // requests that reached the socket
  uint64_t acked = 0;      // responses received (any status)
  uint64_t committed = 0;
  uint64_t user_aborted = 0;
  uint64_t exhausted = 0;
  uint64_t shed_overload = 0;
  uint64_t shed_rate_limited = 0;
  uint64_t bad = 0;  // kBadRequest/kShuttingDown/unknown
  uint64_t unanswered = 0;
  uint64_t retry_after_us_sum = 0;  // over shed/exhausted responses
  uint64_t protocol_error = 0;
  std::vector<uint64_t> commit_lat_ns;  // end-to-end, committed only
  std::vector<uint64_t> acked_lat_ns;   // end-to-end, every response

  void Merge(const ConnStats& o) {
    scheduled += o.scheduled;
    sent += o.sent;
    acked += o.acked;
    committed += o.committed;
    user_aborted += o.user_aborted;
    exhausted += o.exhausted;
    shed_overload += o.shed_overload;
    shed_rate_limited += o.shed_rate_limited;
    bad += o.bad;
    unanswered += o.unanswered;
    retry_after_us_sum += o.retry_after_us_sum;
    protocol_error += o.protocol_error;
    commit_lat_ns.insert(commit_lat_ns.end(), o.commit_lat_ns.begin(),
                         o.commit_lat_ns.end());
    acked_lat_ns.insert(acked_lat_ns.end(), o.acked_lat_ns.begin(),
                        o.acked_lat_ns.end());
  }
};

int ConnectTo(const std::string& host, uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return -1;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  // Non-blocking after connect: the open loop must never stall in send()
  // while scheduled arrivals pile up behind it.
  const int fl = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, fl | O_NONBLOCK);
  return fd;
}

/// One connection's open loop. Arrivals are Poisson at `rate` (exponential
/// inter-arrival gaps from the thread's own RNG); each response's latency
/// is response-receive-time minus *scheduled* arrival time.
void RunConn(const Options& opts, size_t idx, ConnStats* out) {
  ConnStats st;
  const int fd = ConnectTo(opts.host, opts.port);
  if (fd < 0) {
    std::fprintf(stderr, "conn %zu: connect to %s:%u failed\n", idx,
                 opts.host.c_str(), opts.port);
    st.protocol_error = 1;
    *out = std::move(st);
    return;
  }
  RequestSource source(opts, opts.seed + idx * 7919);
  Xoshiro256 rng(opts.seed + idx * 104729 + 1);
  FrameReader reader;
  std::unordered_map<uint64_t, uint64_t> inflight;  // request_id -> sched_ns
  std::vector<uint8_t> outbuf;
  size_t out_off = 0;
  uint64_t next_request_id = 1;

  const double per_conn_rate = opts.rate / static_cast<double>(opts.connections);
  const uint64_t t0 = MonotonicNowNs();
  const uint64_t warmup_end =
      t0 + static_cast<uint64_t>(opts.warmup_seconds * 1e9);
  const uint64_t send_end = t0 + static_cast<uint64_t>(
                                     (opts.warmup_seconds + opts.seconds) * 1e9);
  const uint64_t drain_end =
      send_end + static_cast<uint64_t>(opts.drain_seconds * 1e9);
  auto next_gap_ns = [&]() -> uint64_t {
    // Exponential inter-arrival: -ln(U)/rate.
    const double u =
        (static_cast<double>(rng.Next() >> 11) + 1.0) * 0x1.0p-53;
    return static_cast<uint64_t>(-std::log(u) / per_conn_rate * 1e9);
  };
  uint64_t next_arrival = t0 + next_gap_ns();
  bool dead = false;

  auto on_response = [&](const uint8_t* payload, uint32_t n) {
    if (n < sizeof(ResponseHeader)) {
      st.protocol_error++;
      return;
    }
    ResponseHeader rh;
    std::memcpy(&rh, payload, sizeof(rh));
    const auto it = inflight.find(rh.request_id);
    if (it == inflight.end()) return;  // warmup-discarded or duplicate
    const uint64_t sched = it->second;
    inflight.erase(it);
    if (sched == 0) return;  // sent during warmup: uncounted
    const uint64_t lat = MonotonicNowNs() - sched;
    st.acked++;
    st.acked_lat_ns.push_back(lat);
    switch (static_cast<TxnStatus>(rh.status)) {
      case TxnStatus::kCommitted:
        st.committed++;
        st.commit_lat_ns.push_back(lat);
        break;
      case TxnStatus::kUserAborted:
        st.user_aborted++;
        break;
      case TxnStatus::kExhausted:
        st.exhausted++;
        st.retry_after_us_sum += rh.retry_after_us;
        break;
      case TxnStatus::kOverload:
        st.shed_overload++;
        st.retry_after_us_sum += rh.retry_after_us;
        break;
      case TxnStatus::kRateLimited:
        st.shed_rate_limited++;
        st.retry_after_us_sum += rh.retry_after_us;
        break;
      default:
        st.bad++;
        break;
    }
  };

  uint8_t rbuf[64 * 1024];
  while (!dead) {
    const uint64_t now = MonotonicNowNs();
    if (now >= drain_end || (now >= send_end && inflight.empty() &&
                             out_off >= outbuf.size())) {
      break;
    }
    // 1. Generate every arrival the schedule says has happened by now.
    while (now < send_end && next_arrival <= now) {
      const uint64_t rid = next_request_id++;
      // Warmup sends carry sched=0 so their responses are not recorded.
      inflight[rid] = next_arrival < warmup_end ? 0 : next_arrival;
      if (next_arrival >= warmup_end) st.scheduled++;
      source.Append(&outbuf, rid);
      next_arrival += next_gap_ns();
    }
    // 2. Push pending bytes (never blocks).
    while (out_off < outbuf.size()) {
      const ssize_t k = send(fd, outbuf.data() + out_off,
                             outbuf.size() - out_off, MSG_NOSIGNAL);
      if (k < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        dead = true;
        break;
      }
      out_off += static_cast<size_t>(k);
    }
    if (out_off >= outbuf.size()) {
      outbuf.clear();
      out_off = 0;
    }
    // 3. Drain responses.
    while (!dead) {
      const ssize_t k = recv(fd, rbuf, sizeof(rbuf), 0);
      if (k < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        dead = true;
        break;
      }
      if (k == 0) {  // server closed
        dead = true;
        break;
      }
      if (!reader.Feed(rbuf, static_cast<size_t>(k), on_response)) {
        st.protocol_error++;
        dead = true;
        break;
      }
    }
    // 4. Sleep until the next scheduled arrival (bounded so response
    //    draining stays responsive).
    const uint64_t now2 = MonotonicNowNs();
    if (now2 < send_end && next_arrival > now2 && outbuf.empty()) {
      const uint64_t gap = std::min<uint64_t>(next_arrival - now2, 200'000);
      std::this_thread::sleep_for(std::chrono::nanoseconds(gap));
    }
  }
  for (const auto& [rid, sched] : inflight) {
    if (sched != 0) st.unanswered++;
  }
  st.sent = st.scheduled;  // everything scheduled was written or counted
  close(fd);
  *out = std::move(st);
}

uint64_t Pctl(std::vector<uint64_t>& v, double p) {
  if (v.empty()) return 0;
  const size_t i = std::min(
      v.size() - 1, static_cast<size_t>(p * static_cast<double>(v.size())));
  std::nth_element(v.begin(), v.begin() + static_cast<ptrdiff_t>(i), v.end());
  return v[i];
}

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --port=N [--host=A] [--workload=W] [--rate=R]\n"
               "  [--seconds=S] [--warmup-seconds=S] [--drain-seconds=S]\n"
               "  [--connections=C] [--scale=N] [--seed=N] [--engine=LABEL]\n"
               "  [--trade-order-percent=P] [--alpha=A] [--fee-percent=P]\n",
               argv0);
  std::exit(2);
}

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

}  // namespace
}  // namespace mv3c

int main(int argc, char** argv) {
  using namespace mv3c;
  Options opts;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (ParseFlag(a, "--host", &v)) {
      opts.host = v;
    } else if (ParseFlag(a, "--port", &v)) {
      opts.port = static_cast<uint16_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(a, "--workload", &v)) {
      opts.workload = v;
    } else if (ParseFlag(a, "--engine", &v)) {
      opts.engine = v;
    } else if (ParseFlag(a, "--rate", &v)) {
      opts.rate = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(a, "--seconds", &v)) {
      opts.seconds = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(a, "--warmup-seconds", &v)) {
      opts.warmup_seconds = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(a, "--drain-seconds", &v)) {
      opts.drain_seconds = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(a, "--connections", &v)) {
      opts.connections = std::strtoul(v.c_str(), nullptr, 10);
    } else if (ParseFlag(a, "--scale", &v)) {
      opts.scale = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(a, "--seed", &v)) {
      opts.seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(a, "--trade-order-percent", &v)) {
      opts.trade_order_percent = std::atoi(v.c_str());
    } else if (ParseFlag(a, "--alpha", &v)) {
      opts.alpha = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(a, "--fee-percent", &v)) {
      opts.fee_percent = std::atoi(v.c_str());
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      Usage(argv[0]);
    }
  }
  if (opts.port == 0) Usage(argv[0]);
  if (opts.connections == 0) opts.connections = 1;
  if (opts.workload != "banking" && opts.workload != "trading" &&
      opts.workload != "tatp" && opts.workload != "tpcc") {
    std::fprintf(stderr, "unknown workload: %s\n", opts.workload.c_str());
    return 2;
  }

  std::vector<ConnStats> per_conn(opts.connections);
  std::vector<std::thread> threads;
  threads.reserve(opts.connections);
  for (size_t i = 0; i < opts.connections; ++i) {
    threads.emplace_back(RunConn, std::cref(opts), i, &per_conn[i]);
  }
  for (auto& t : threads) t.join();

  ConnStats all;
  for (const ConnStats& c : per_conn) all.Merge(c);

  const double secs = opts.seconds;
  const double goodput = static_cast<double>(all.committed) / secs;
  const double achieved = static_cast<double>(all.acked) / secs;
  const uint64_t shed = all.shed_overload + all.shed_rate_limited;
  const double shed_fraction =
      all.acked == 0 ? 0.0
                     : static_cast<double>(shed) / static_cast<double>(all.acked);
  const uint64_t p50 = Pctl(all.commit_lat_ns, 0.50);
  const uint64_t p99 = Pctl(all.commit_lat_ns, 0.99);
  const uint64_t p999 = Pctl(all.commit_lat_ns, 0.999);
  const uint64_t ap50 = Pctl(all.acked_lat_ns, 0.50);
  const uint64_t ap99 = Pctl(all.acked_lat_ns, 0.99);

  std::printf(
      "workload=%s rate=%.0f/s x %.1fs (%zu conns): scheduled=%llu "
      "acked=%llu committed=%llu (%.1f/s) aborted=%llu exhausted=%llu "
      "shed=%llu (%.1f%%) unanswered=%llu proto_err=%llu\n",
      opts.workload.c_str(), opts.rate, secs, opts.connections,
      static_cast<unsigned long long>(all.scheduled),
      static_cast<unsigned long long>(all.acked),
      static_cast<unsigned long long>(all.committed), goodput,
      static_cast<unsigned long long>(all.user_aborted),
      static_cast<unsigned long long>(all.exhausted),
      static_cast<unsigned long long>(shed), shed_fraction * 100,
      static_cast<unsigned long long>(all.unanswered),
      static_cast<unsigned long long>(all.protocol_error));
  std::printf(
      "committed latency: p50=%.1fus p99=%.1fus p999=%.1fus; "
      "all-acked: p50=%.1fus p99=%.1fus\n",
      static_cast<double>(p50) / 1e3, static_cast<double>(p99) / 1e3,
      static_cast<double>(p999) / 1e3, static_cast<double>(ap50) / 1e3,
      static_cast<double>(ap99) / 1e3);

  // RUNJSON, bench_capture.sh-compatible: "tps" is committed goodput (the
  // cross-bench comparable number); serving-specific keys ride alongside.
  std::printf(
      "RUNJSON {\"bench\":\"serve_%s\",\"engine\":\"%s\",\"window\":0,"
      "\"seconds\":%.6f,\"committed\":%llu,\"tps\":%.1f,"
      "\"arrival_rate\":%.1f,\"achieved_rps\":%.1f,\"acked\":%llu,"
      "\"shed\":%llu,\"shed_fraction\":%.6f,\"exhausted\":%llu,"
      "\"unanswered\":%llu,\"p50_us\":%.1f,\"p99_us\":%.1f,"
      "\"p999_us\":%.1f,\"acked_p50_us\":%.1f,\"acked_p99_us\":%.1f}\n",
      opts.workload.c_str(), opts.engine.c_str(), secs,
      static_cast<unsigned long long>(all.committed), goodput, opts.rate,
      achieved, static_cast<unsigned long long>(all.acked),
      static_cast<unsigned long long>(shed), shed_fraction,
      static_cast<unsigned long long>(all.exhausted),
      static_cast<unsigned long long>(all.unanswered),
      static_cast<double>(p50) / 1e3, static_cast<double>(p99) / 1e3,
      static_cast<double>(p999) / 1e3, static_cast<double>(ap50) / 1e3,
      static_cast<double>(ap99) / 1e3);
  std::fflush(stdout);
  // Nonzero exit on protocol errors or total failure so CI notices.
  if (all.protocol_error != 0) return 1;
  if (all.acked == 0) return 1;
  return 0;
}
