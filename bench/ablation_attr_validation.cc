// Ablation (§4.1): attribute-level predicate validation. TPC-C's Payment
// and New-Order share warehouse, district and customer rows but touch
// disjoint columns; with attribute-level validation those intersections
// never conflict. Turning it off validates whole records and repairs or
// restarts transactions that did not actually interfere.

#include "bench/runners.h"

int main(int argc, char** argv) {
  using namespace mv3c;
  using namespace mv3c::bench;
  TraceSession trace;
  const bool full = FullRun(argc, argv);
  TpccSetup s;
  s.scale.n_warehouses = 1;
  if (!full) {
    s.scale.n_items = 10000;
    s.scale.n_customers_per_d = 1000;
    s.scale.preload_orders_per_d = 1000;
    s.scale.preload_new_orders_per_d = 300;
  }
  s.n_txns = full ? 300000 : 10000;

  std::printf("# Ablation: §4.1 attribute-level validation, TPC-C W=1, "
              "window 16\n");
  TablePrinter table({"attr_validation", "mv3c_tps", "mv3c_repairs",
                      "omvcc_tps", "omvcc_fails"});
  for (bool enabled : {true, false}) {
    // Toggled between runs, before each run's workers start; thread
    // creation publishes the flag to them.
    g_attribute_level_validation.store(enabled, std::memory_order_relaxed);
    const RunResult m = RunTpccMv3c(16, s);
    const RunResult o = RunTpccOmvcc(16, s);
    table.Row({enabled ? "on" : "off", Fmt(m.Tps(), 0),
               Fmt(m.Counter("repair_rounds")), Fmt(o.Tps(), 0),
               Fmt(o.Counter("validation_failures") +
                   o.Counter("ww_restarts"))});
    EmitRunJson("ablation_attr_validation",
                enabled ? "mv3c-attr-on" : "mv3c-attr-off", 16, m);
    EmitRunJson("ablation_attr_validation",
                enabled ? "omvcc-attr-on" : "omvcc-attr-off", 16, o);
  }
  g_attribute_level_validation.store(true, std::memory_order_relaxed);
  return 0;
}
