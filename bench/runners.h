#ifndef MV3C_BENCH_RUNNERS_H_
#define MV3C_BENCH_RUNNERS_H_

// Shared engine runners for the figure benchmarks: each builds a fresh
// database, replays a deterministic transaction stream through the window
// driver (the paper's Appendix C simulated-concurrency methodology; on the
// 1-core evaluation host this is also what the paper itself uses for the
// window figures) and reports throughput plus engine statistics.

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "driver/window_driver.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "occ/occ_engine.h"
#include "silo/silo_engine.h"
#include "sv/sv_executor.h"
#include "workloads/banking.h"
#include "workloads/tatp.h"
#include "workloads/tpcc.h"
#include "workloads/tpcc_sv.h"
#include "workloads/trading.h"

namespace mv3c::bench {

/// All MV3C runs use the paper's §4.3 heuristic: after this many failed
/// validation rounds the repair executes inside the commit critical
/// section and the transaction is guaranteed to commit, bounding the
/// number of validation rounds a transaction can burn under extreme
/// contention ("a heuristic is to apply this optimization after N rounds
/// of validation failures").
inline constexpr int kExclusiveRepairAfter = 3;

inline Mv3cConfig DefaultMv3cConfig() {
  Mv3cConfig cfg;
  cfg.exclusive_repair_after = kExclusiveRepairAfter;
  return cfg;
}

struct RunResult {
  double seconds = 0;
  uint64_t committed = 0;
  uint64_t user_aborted = 0;
  uint64_t exhausted = 0;    // gave up after the retry budget
  uint64_t escalations = 0;  // failed rounds re-entering the window
  uint64_t max_rounds = 0;   // most rounds any one transaction took
  /// Merged engine/manager metrics: every native counter under its own
  /// name (repair_rounds, ww_restarts, validation_failures, backoff_us,
  /// ...) plus the per-phase latency histograms. The old RunResult fields
  /// that *remapped* counters (e.g. "conflict_rounds" meaning repairs for
  /// MV3C but validation failures for OMVCC) are gone: benches now ask for
  /// the counter they mean by its native name via Counter().
  obs::MetricsSnapshot metrics;
  // VersionArena counters (zero for SV engines and -DMV3C_ARENA=OFF):
  // allocator churn reported separately from protocol cost (ISSUE 2).
  uint64_t arena_slabs_created = 0;
  uint64_t arena_slabs_retired = 0;
  uint64_t arena_slabs_recycled = 0;
  uint64_t arena_bytes_bumped = 0;
  uint64_t arena_allocations = 0;
  uint64_t arena_peak_held_bytes = 0;  // peak RSS proxy for version memory
  uint64_t arena_retirements_deferred = 0;
  double Tps() const {
    return static_cast<double>(committed) / seconds;
  }
  /// Summed value of a native counter across all merged registries; zero
  /// if no engine in the run exposes it.
  uint64_t Counter(std::string_view name) const { return metrics.Value(name); }
};

/// Declared at the top of every bench main: arms the conflict tracer when
/// MV3C_TRACE=<path> is set and writes the Chrome trace_event JSON there at
/// exit (open in chrome://tracing or ui.perfetto.dev; scripts/README_tracing.md).
struct TraceSession {
  TraceSession() { obs::EnableTraceFromEnv(); }
  ~TraceSession() { obs::DumpTraceIfRequested(); }
};

/// Emits one machine-readable JSON line per run: identity (bench, engine,
/// window), throughput, and the merged observability data — per-phase
/// p50/p99/max latencies plus every native counter. Lines are prefixed
/// "RUNJSON " so scripts can grep them out of the human-readable tables.
inline void EmitRunJson(const char* bench, const char* engine, size_t window,
                        const RunResult& r) {
  std::printf(
      "RUNJSON {\"bench\":\"%s\",\"engine\":\"%s\",\"window\":%zu,"
      "\"seconds\":%.6f,\"committed\":%llu,\"tps\":%.1f,"
      "\"phases\":%s,\"counters\":%s}\n",
      bench, engine, window, r.seconds,
      static_cast<unsigned long long>(r.committed), r.Tps(),
      r.metrics.PhasesJson().c_str(), r.metrics.CountersJson().c_str());
  std::fflush(stdout);
}

/// Copies the manager's arena counters and merges its metrics (GC counters,
/// kGc/kArenaRetire histograms) into the run result; call after the stream
/// finishes and before the manager dies.
inline void AttachArenaStats(RunResult* out, TransactionManager& mgr) {
  out->metrics.Merge(mgr.metrics().Snapshot());
  const VersionArena::Stats s = mgr.arena().snapshot();
  out->arena_slabs_created = s.slabs_created;
  out->arena_slabs_retired = s.slabs_retired;
  out->arena_slabs_recycled = s.slabs_recycled;
  out->arena_bytes_bumped = s.bytes_bumped;
  out->arena_allocations = s.allocations;
  out->arena_peak_held_bytes = s.peak_held_bytes;
  out->arena_retirements_deferred = s.retirements_deferred;
}

template <typename Executor, typename MakeExec, typename MakeProgram>
RunResult Drive(size_t window, uint64_t n_txns, MakeExec&& make_exec,
                MakeProgram&& make_program,
                std::function<void()> maintenance) {
  WindowDriver<Executor> driver(window, make_exec, std::move(maintenance));
  const DriveResult r =
      driver.Run(CountedSource<typename Executor::Program>(
          n_txns, make_program));
  RunResult out;
  out.seconds = r.seconds;  // timed by the driver itself (excludes setup)
  out.committed = r.committed;
  out.user_aborted = r.user_aborted;
  out.exhausted = r.exhausted;
  out.escalations = r.escalations;
  out.max_rounds = r.max_rounds;
  // Generic aggregation: every executor registers its counters and phase
  // histograms on its MetricsRegistry, so one Merge per executor replaces
  // the old duck-typed field remapping.
  for (Executor* e : driver.executors()) {
    out.metrics.Merge(e->metrics().Snapshot());
  }
  return out;
}

// --- Banking (Figures 7a, 7b; overhead) ---

struct BankingSetup {
  int64_t accounts = 10000;
  int64_t initial_balance = 1'000'000;
  int fee_percent = 100;  // % TransferMoney (rest NoFeeTransferMoney)
  uint64_t n_txns = 100000;
  uint64_t seed = 42;
};

inline RunResult RunBankingMv3c(size_t window, const BankingSetup& s) {
  TransactionManager mgr;
  banking::BankingDb db(&mgr, s.accounts, s.initial_balance);
  db.Load();
  banking::TransferGenerator gen(s.accounts, s.fee_percent, s.seed);
  std::vector<banking::TransferParams> stream(s.n_txns);
  for (auto& p : stream) p = gen.Next();
  RunResult r = Drive<Mv3cExecutor>(
      window, s.n_txns,
      [&](...) {
        return std::make_unique<Mv3cExecutor>(&mgr, DefaultMv3cConfig());
      },
      [&](uint64_t i) { return banking::Mv3cTransferMoney(db, stream[i]); },
      [&] { mgr.CollectGarbage(); });
  AttachArenaStats(&r, mgr);
  return r;
}

inline RunResult RunBankingOmvcc(size_t window, const BankingSetup& s) {
  TransactionManager mgr;
  banking::BankingDb db(&mgr, s.accounts, s.initial_balance);
  db.Load();
  banking::TransferGenerator gen(s.accounts, s.fee_percent, s.seed);
  std::vector<banking::TransferParams> stream(s.n_txns);
  for (auto& p : stream) p = gen.Next();
  RunResult r = Drive<OmvccExecutor>(
      window, s.n_txns,
      [&](...) { return std::make_unique<OmvccExecutor>(&mgr); },
      [&](uint64_t i) { return banking::OmvccTransferMoney(db, stream[i]); },
      [&] { mgr.CollectGarbage(); });
  AttachArenaStats(&r, mgr);
  return r;
}

// --- Trading (Figures 6a, 6b) ---

struct TradingSetup {
  uint64_t securities = 100000;
  uint64_t customers = 100000;
  double alpha = 1.4;
  int trade_order_percent = 50;
  uint64_t n_txns = 100000;
  uint64_t seed = 42;
};

template <typename MakeExec, typename Executor>
RunResult RunTradingImpl(size_t window, const TradingSetup& s,
                         TransactionManager& mgr, trading::TradingDb& db,
                         MakeExec&& make_exec, bool mv3c) {
  db.Load();
  trading::TradingGenerator gen(db, s.alpha, s.trade_order_percent, s.seed);
  std::vector<trading::TradingGenerator::Txn> stream(s.n_txns);
  for (auto& t : stream) t = gen.Next();
  RunResult r = Drive<Executor>(
      window, s.n_txns, make_exec,
      [&, mv3c](uint64_t i) -> typename Executor::Program {
        const auto& txn = stream[i];
        if constexpr (std::is_same_v<Executor, Mv3cExecutor>) {
          return txn.is_trade_order ? trading::Mv3cTradeOrder(db, txn.order)
                                    : trading::Mv3cPriceUpdate(db, txn.price);
        } else {
          return txn.is_trade_order
                     ? trading::OmvccTradeOrder(db, txn.order)
                     : trading::OmvccPriceUpdate(db, txn.price);
        }
      },
      [&] { mgr.CollectGarbage(); });
  AttachArenaStats(&r, mgr);
  return r;
}

inline RunResult RunTradingMv3c(size_t window, const TradingSetup& s) {
  TransactionManager mgr;
  trading::TradingDb db(&mgr, s.securities, s.customers);
  return RunTradingImpl<std::function<std::unique_ptr<Mv3cExecutor>()>,
                        Mv3cExecutor>(
      window, s, mgr, db,
      [&] {
        return std::make_unique<Mv3cExecutor>(&mgr, DefaultMv3cConfig());
      },
      true);
}

inline RunResult RunTradingOmvcc(size_t window, const TradingSetup& s) {
  TransactionManager mgr;
  trading::TradingDb db(&mgr, s.securities, s.customers);
  return RunTradingImpl<std::function<std::unique_ptr<OmvccExecutor>()>,
                        OmvccExecutor>(
      window, s, mgr, db,
      [&] { return std::make_unique<OmvccExecutor>(&mgr); }, false);
}

// --- TPC-C (Figures 8a, 8b, 8c, 11) ---

struct TpccSetup {
  tpcc::TpccScale scale;
  uint64_t n_txns = 50000;
  uint64_t seed = 42;
};

inline std::vector<tpcc::TpccParams> TpccStream(const TpccSetup& s) {
  tpcc::TpccGenerator gen(s.scale, s.seed);
  std::vector<tpcc::TpccParams> stream(s.n_txns);
  for (auto& p : stream) p = gen.Next();
  return stream;
}

inline RunResult RunTpccMv3c(size_t window, const TpccSetup& s) {
  TransactionManager mgr;
  tpcc::TpccDb db(&mgr, s.scale);
  db.Load(s.seed);
  const auto stream = TpccStream(s);
  RunResult r = Drive<Mv3cExecutor>(
      window, s.n_txns,
      [&](...) {
        return std::make_unique<Mv3cExecutor>(&mgr, DefaultMv3cConfig());
      },
      [&](uint64_t i) { return tpcc::Mv3cTpccProgram(db, stream[i]); },
      [&] {
        mgr.CollectGarbage();
        db.CleanupNewOrderQueue();
      });
  AttachArenaStats(&r, mgr);
  return r;
}

inline RunResult RunTpccOmvcc(size_t window, const TpccSetup& s) {
  TransactionManager mgr;
  tpcc::TpccDb db(&mgr, s.scale);
  db.Load(s.seed);
  const auto stream = TpccStream(s);
  RunResult r = Drive<OmvccExecutor>(
      window, s.n_txns,
      [&](...) { return std::make_unique<OmvccExecutor>(&mgr); },
      [&](uint64_t i) { return tpcc::OmvccTpccProgram(db, stream[i]); },
      [&] {
        mgr.CollectGarbage();
        db.CleanupNewOrderQueue();
      });
  AttachArenaStats(&r, mgr);
  return r;
}

template <typename Engine>
RunResult RunTpccSv(size_t window, const TpccSetup& s) {
  tpcc::SvTpccDb db(s.scale);
  db.Load(s.seed);
  const auto stream = TpccStream(s);
  Engine engine;
  // SILO is per-worker in real deployments; with the single-threaded
  // window driver one engine instance is race-free for both.
  RunResult r = Drive<SvExecutor<Engine>>(
      window, s.n_txns,
      [&](...) { return std::make_unique<SvExecutor<Engine>>(&engine); },
      [&](uint64_t i) { return tpcc::SvTpccProgram(db, stream[i]); },
      nullptr);
  // The engine (not the executor) owns the validation-phase histogram.
  r.metrics.Merge(engine.metrics().Snapshot());
  return r;
}

// --- TATP (Figure 10) ---

struct TatpSetup {
  uint64_t subscribers = 100000;
  uint64_t n_txns = 200000;
  uint64_t seed = 42;
};

inline RunResult RunTatpMv3c(size_t window, const TatpSetup& s) {
  TransactionManager mgr;
  tatp::TatpDb db(&mgr, s.subscribers);
  db.Load(s.seed);
  tatp::TatpGenerator gen(s.subscribers, s.seed);
  std::vector<tatp::TatpParams> stream(s.n_txns);
  for (auto& p : stream) p = gen.Next();
  RunResult r = Drive<Mv3cExecutor>(
      window, s.n_txns,
      [&](...) {
        return std::make_unique<Mv3cExecutor>(&mgr, DefaultMv3cConfig());
      },
      [&](uint64_t i) { return tatp::Mv3cTatpProgram(db, stream[i]); },
      [&] { mgr.CollectGarbage(); });
  AttachArenaStats(&r, mgr);
  return r;
}

inline RunResult RunTatpOmvcc(size_t window, const TatpSetup& s) {
  TransactionManager mgr;
  tatp::TatpDb db(&mgr, s.subscribers);
  db.Load(s.seed);
  tatp::TatpGenerator gen(s.subscribers, s.seed);
  std::vector<tatp::TatpParams> stream(s.n_txns);
  for (auto& p : stream) p = gen.Next();
  RunResult r = Drive<OmvccExecutor>(
      window, s.n_txns,
      [&](...) { return std::make_unique<OmvccExecutor>(&mgr); },
      [&](uint64_t i) { return tatp::OmvccTatpProgram(db, stream[i]); },
      [&] { mgr.CollectGarbage(); });
  AttachArenaStats(&r, mgr);
  return r;
}

}  // namespace mv3c::bench

#endif  // MV3C_BENCH_RUNNERS_H_
