// §6.2 memory overhead: MV3C adds one pointer per version (the parent-
// predicate back reference used by Repair to prune exactly the invalid
// sub-graph's versions) relative to OMVCC. The paper reports 2% extra for
// big records (Stock) up to 14% for small ones (History), ~4% overall on
// TPC-C. This bench reports the per-table version sizes of this
// implementation and the overall overhead weighted by the standard mix's
// version counts.

#include <cstdio>

#include "bench/bench_util.h"
#include "mvcc/version.h"
#include "workloads/tpcc.h"

namespace {

struct TableEntry {
  const char* name;
  size_t row_bytes;
  /// Versions created per 100 transactions of the standard mix (New-Order
  /// writes district+order+new-order+10 stock+10 order lines; Payment
  /// writes warehouse+district+customer+history; Delivery ~4% of the mix
  /// touches ~10 orders' worth).
  double versions_per_100_txns;
};

}  // namespace

int main() {
  using namespace mv3c;
  using namespace mv3c::bench;
  using namespace mv3c::tpcc;

  // One MV3C version = one OMVCC version + the parent-predicate pointer.
  constexpr size_t kExtraPointer = sizeof(void*);

  const TableEntry tables[] = {
      {"WAREHOUSE", sizeof(WarehouseRow), 43},
      {"DISTRICT", sizeof(DistrictRow), 45 + 43},
      {"CUSTOMER", sizeof(CustomerRow), 43 + 4 * 10},
      {"HISTORY", sizeof(HistoryRow), 43},
      {"ORDER", sizeof(OrderRow), 45 + 4 * 10},
      {"NEW-ORDER", sizeof(NewOrderRow), 45 + 4 * 10},
      {"ORDER-LINE", sizeof(OrderLineRow), 45 * 10 + 4 * 100},
      {"STOCK", sizeof(StockRow), 45 * 10},
  };

  std::printf("# §6.2: per-version memory, MV3C vs OMVCC (bytes)\n");
  TablePrinter table({"table", "row_bytes", "omvcc_version", "mv3c_version",
                      "overhead_pct"});
  double weighted_mv3c = 0, weighted_omvcc = 0;
  for (const TableEntry& t : tables) {
    // Version<Row> layout: header + payload; OMVCC foregoes the parent-
    // predicate pointer.
    const size_t mv3c_bytes = sizeof(VersionBase) + t.row_bytes;
    const size_t omvcc_bytes = mv3c_bytes - kExtraPointer;
    table.Row({t.name, Fmt(static_cast<uint64_t>(t.row_bytes)),
               Fmt(static_cast<uint64_t>(omvcc_bytes)),
               Fmt(static_cast<uint64_t>(mv3c_bytes)),
               Fmt(100.0 * kExtraPointer / omvcc_bytes, 1)});
    weighted_mv3c += t.versions_per_100_txns * mv3c_bytes;
    weighted_omvcc += t.versions_per_100_txns * omvcc_bytes;
  }
  std::printf("\noverall TPC-C version-memory overhead (mix-weighted): "
              "%.2f%%\n",
              (weighted_mv3c / weighted_omvcc - 1.0) * 100.0);
  std::printf("(version header: %zu bytes incl. vtable; extra MV3C field: "
              "%zu bytes)\n",
              sizeof(VersionBase), kExtraPointer);
  return 0;
}
