// §6.2 memory overhead: MV3C adds one pointer per version (the parent-
// predicate back reference used by Repair to prune exactly the invalid
// sub-graph's versions) relative to OMVCC. The paper reports 2% extra for
// big records (Stock) up to 14% for small ones (History), ~4% overall on
// TPC-C. This bench reports the per-table version sizes of this
// implementation and the overall overhead weighted by the standard mix's
// version counts.
//
// Since ISSUE 2 it additionally *measures* allocator behavior: a short
// Banking window run under each engine, reporting throughput together with
// the VersionArena counters (slabs created/retired/recycled, bytes bump-
// allocated, peak held bytes) as one JSON line per engine, so the perf
// trajectory (BENCH_*.json) can track protocol memory overhead separately
// from allocator churn. Build with -DMV3C_ARENA=OFF for the raw-new
// baseline: the arena counters read zero and the throughput delta is the
// allocator's share.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/runners.h"
#include "mvcc/version.h"
#include "mvcc/version_arena.h"
#include "workloads/tpcc.h"

namespace {

struct TableEntry {
  const char* name;
  size_t row_bytes;
  /// Versions created per 100 transactions of the standard mix (New-Order
  /// writes district+order+new-order+10 stock+10 order lines; Payment
  /// writes warehouse+district+customer+history; Delivery ~4% of the mix
  /// touches ~10 orders' worth).
  double versions_per_100_txns;
};

void PrintArenaJson(const char* engine, const mv3c::bench::RunResult& r) {
  std::printf(
      "{\"bench\":\"overhead_memory\",\"engine\":\"%s\","
      "\"arena_enabled\":%s,\"window\":8,"
      "\"tps\":%.0f,\"committed\":%llu,"
      "\"versions_discarded\":%llu,"  // native counter via the obs registry
      "\"arena_slabs_created\":%llu,\"arena_slabs_retired\":%llu,"
      "\"arena_slabs_recycled\":%llu,\"arena_allocations\":%llu,"
      "\"arena_bytes_bumped\":%llu,\"arena_peak_held_bytes\":%llu,"
      "\"arena_retirements_deferred\":%llu}\n",
      engine, mv3c::kVersionArenaEnabled ? "true" : "false", r.Tps(),
      static_cast<unsigned long long>(r.committed),
      static_cast<unsigned long long>(r.Counter("versions_discarded")),
      static_cast<unsigned long long>(r.arena_slabs_created),
      static_cast<unsigned long long>(r.arena_slabs_retired),
      static_cast<unsigned long long>(r.arena_slabs_recycled),
      static_cast<unsigned long long>(r.arena_allocations),
      static_cast<unsigned long long>(r.arena_bytes_bumped),
      static_cast<unsigned long long>(r.arena_peak_held_bytes),
      static_cast<unsigned long long>(r.arena_retirements_deferred));
}

}  // namespace

int main() {
  using namespace mv3c;
  using namespace mv3c::bench;
  using namespace mv3c::tpcc;

  // One MV3C version = one OMVCC version + the parent-predicate pointer.
  constexpr size_t kExtraPointer = sizeof(void*);

  const TableEntry tables[] = {
      {"WAREHOUSE", sizeof(WarehouseRow), 43},
      {"DISTRICT", sizeof(DistrictRow), 45 + 43},
      {"CUSTOMER", sizeof(CustomerRow), 43 + 4 * 10},
      {"HISTORY", sizeof(HistoryRow), 43},
      {"ORDER", sizeof(OrderRow), 45 + 4 * 10},
      {"NEW-ORDER", sizeof(NewOrderRow), 45 + 4 * 10},
      {"ORDER-LINE", sizeof(OrderLineRow), 45 * 10 + 4 * 100},
      {"STOCK", sizeof(StockRow), 45 * 10},
  };

  std::printf("# §6.2: per-version memory, MV3C vs OMVCC (bytes)\n");
  TablePrinter table({"table", "row_bytes", "omvcc_version", "mv3c_version",
                      "overhead_pct"});
  double weighted_mv3c = 0, weighted_omvcc = 0;
  for (const TableEntry& t : tables) {
    // Version<Row> layout: header + payload; OMVCC foregoes the parent-
    // predicate pointer.
    const size_t mv3c_bytes = sizeof(VersionBase) + t.row_bytes;
    const size_t omvcc_bytes = mv3c_bytes - kExtraPointer;
    table.Row({t.name, Fmt(static_cast<uint64_t>(t.row_bytes)),
               Fmt(static_cast<uint64_t>(omvcc_bytes)),
               Fmt(static_cast<uint64_t>(mv3c_bytes)),
               Fmt(100.0 * kExtraPointer / omvcc_bytes, 1)});
    weighted_mv3c += t.versions_per_100_txns * mv3c_bytes;
    weighted_omvcc += t.versions_per_100_txns * omvcc_bytes;
  }
  std::printf("\noverall TPC-C version-memory overhead (mix-weighted): "
              "%.2f%%\n",
              (weighted_mv3c / weighted_omvcc - 1.0) * 100.0);
  std::printf("(version header: %zu bytes incl. vtable; extra MV3C field: "
              "%zu bytes)\n",
              sizeof(VersionBase), kExtraPointer);

  // Measured allocator churn: contended Banking (all transfers touch the
  // fee account) under the window methodology, CI scale by default.
  const bool full = FullRun();
  BankingSetup setup;
  // Few accounts -> long per-account chains -> inline truncation retires
  // superseded versions during the run, so slab retirement/recycling (not
  // just creation) shows up in the counters below.
  setup.accounts = 100;
  setup.n_txns = full ? 200000 : 20000;
  std::printf("\n# version allocator churn, Banking window 8 "
              "(MV3C_ARENA=%s)\n",
              kVersionArenaEnabled ? "ON" : "OFF");
  const RunResult mv3c_run = RunBankingMv3c(/*window=*/8, setup);
  const RunResult omvcc_run = RunBankingOmvcc(/*window=*/8, setup);
  PrintArenaJson("mv3c", mv3c_run);
  PrintArenaJson("omvcc", omvcc_run);
  EmitRunJson("overhead_memory", "mv3c", 8, mv3c_run);
  EmitRunJson("overhead_memory", "omvcc", 8, omvcc_run);
  return 0;
}
