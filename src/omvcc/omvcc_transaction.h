#ifndef MV3C_OMVCC_OMVCC_TRANSACTION_H_
#define MV3C_OMVCC_OMVCC_TRANSACTION_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/retry_policy.h"
#include "common/status.h"
#include "mvcc/predicate.h"
#include "mvcc/transaction.h"
#include "mvcc/transaction_manager.h"
#include "obs/engine_stats.h"  // OmvccStats (migrated to the obs layer)
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mv3c {

/// The OMVCC baseline (paper §2.1; the optimistic MVCC of Neumann et al.
/// that MV3C builds on): transactions gather a flat list of predicates for
/// their reads, validate them with precision locking against the undo
/// buffers of concurrently committed transactions, and on any conflict —
/// read-write at validation, or write-write during execution — abort, roll
/// back, and restart from scratch.
///
/// Programs are straight-line code against this facade: reads return their
/// results directly (no closures, no dependency information) and writes are
/// always fail-fast.
class OmvccTransaction {
 public:
  explicit OmvccTransaction(TransactionManager* mgr)
      : mgr_(mgr), inner_(mgr) {}
  OmvccTransaction(const OmvccTransaction&) = delete;
  OmvccTransaction& operator=(const OmvccTransaction&) = delete;
  ~OmvccTransaction() { ClearPredicates(); }

  Transaction& inner() { return inner_; }
  TransactionManager* manager() const { return mgr_; }
  OmvccStats& stats() { return stats_; }

  /// Point lookup result.
  template <typename TableT>
  struct GetResult {
    typename TableT::Object* object = nullptr;  // nullptr if key unknown
    const typename TableT::Row* row = nullptr;  // nullptr if absent/deleted
  };

  /// Point lookup by primary key; registers a key-equality predicate.
  template <typename TableT>
  GetResult<TableT> Get(TableT& table, const typename TableT::Key& key,
                        ColumnMask monitored) {
    auto* pred = pool_.Create<KeyEqCriterion<TableT>>(&table, key);
    pred->set_monitored(monitored);
    predicates_.push_back(pred);
    GetResult<TableT> r;
    r.object = table.Find(key);
    if (r.object != nullptr) {
      const auto* v = inner_.ReadVersion(table, r.object);
      if (v != nullptr) r.row = &v->data();
    }
    return r;
  }

  /// Full-table scan with a row filter; registers a filter predicate.
  template <typename TableT>
  void Scan(TableT& table,
            std::function<bool(const typename TableT::Row&)> filter,
            ColumnMask monitored,
            std::vector<ScanResultEntry<TableT>>* out) {
    auto* pred = pool_.Create<RowFilterCriterion<TableT>>(&table, filter);
    pred->set_monitored(monitored);
    predicates_.push_back(pred);
    out->clear();
    table.ForEachObject([&](typename TableT::Object& obj) {
      const auto* v = obj.ReadVisible(inner_.start_ts(), inner_.txn_id());
      if (v != nullptr && filter(v->data())) {
        out->push_back({&obj, v->data()});
      }
    });
  }

  /// Ordered-index range scan; registers a key-range predicate.
  template <typename TableT, typename IndexT>
  void RangeScan(
      TableT& table, const IndexT& index, const typename IndexT::KeyType& lo,
      const typename IndexT::KeyType& hi,
      typename KeyRangeCriterion<TableT, typename IndexT::KeyType>::Extract
          extract,
      std::function<bool(const typename TableT::Row&)> filter,
      ColumnMask monitored, size_t limit, bool reverse,
      std::vector<ScanResultEntry<TableT>>* out) {
    using SecKey = typename IndexT::KeyType;
    auto* pred = pool_.Create<KeyRangeCriterion<TableT, SecKey>>(
        &table, lo, hi, extract, filter);
    pred->set_monitored(monitored);
    predicates_.push_back(pred);
    out->clear();
    auto visit = [&](const SecKey&, typename TableT::Object* obj) -> bool {
      const auto* v = obj->ReadVisible(inner_.start_ts(), inner_.txn_id());
      if (v != nullptr && (filter == nullptr || filter(v->data()))) {
        out->push_back({obj, v->data()});
        if (limit != 0 && out->size() >= limit) return false;
      }
      return true;
    };
    if (reverse) {
      index.ScanRangeReverse(lo, hi, visit);
    } else {
      index.ScanRange(lo, hi, visit);
    }
  }

  /// Update; always fail-fast (OMVCC has no tolerance for multiple
  /// uncommitted versions, §2.3.1).
  template <typename TableT>
  ExecStatus UpdateRow(TableT& table, typename TableT::Object* obj,
                       const typename TableT::Row& new_data,
                       ColumnMask modified) {
    const WriteStatus ws = inner_.Update(table, obj, new_data, modified,
                                         /*blind=*/false,
                                         WwPolicy::kFailFast);
    return ws == WriteStatus::kWwConflict ? ExecStatus::kWriteWriteConflict
                                          : ExecStatus::kOk;
  }

  template <typename TableT>
  WriteStatus InsertRow(TableT& table, const typename TableT::Key& key,
                        const typename TableT::Row& data,
                        typename TableT::Object** out_obj = nullptr) {
    return inner_.Insert(table, key, data, out_obj);
  }

  template <typename TableT>
  ExecStatus DeleteRow(TableT& table, typename TableT::Object* obj) {
    const WriteStatus ws = inner_.Delete(table, obj);
    return ws == WriteStatus::kWwConflict ? ExecStatus::kWriteWriteConflict
                                          : ExecStatus::kOk;
  }

  // --- lifecycle ---

  /// Pre-validation outside the critical section; stops at the first
  /// conflict (OMVCC cannot use more than one, §2.4).
  bool Prevalidate() {
    CommittedRecord* head = mgr_->rc_head();
    bool clean = Validate(head);
    if (clean && MV3C_FAILPOINT(failpoint::Site::kPrevalidate)) {
      // Injected validation failure: OMVCC restarts from scratch on any
      // conflict, so pretending one exists is always safe.
      ++stats_.failpoint_trips;
      clean = false;
    }
    if (head != nullptr) inner_.set_validated_up_to(head->commit_ts);
    return clean;
  }

  /// Validation pass starting at `from`; early-exits on the first match.
  bool Validate(CommittedRecord* from) {
    return TransactionManager::ForEachConcurrentVersion(
        from, inner_.validated_up_to(), [&](const VersionBase& v) {
          for (const PredicateBase* p : predicates_) {
            if (p->ConflictsWith(v)) return false;  // abort the walk
          }
          return true;
        });
  }

  bool ReadOnly() const { return inner_.undo_buffer().empty(); }

  void RollbackAll() {
    stats_.versions_discarded += inner_.undo_buffer().size();
    inner_.RollbackWrites();
    ClearPredicates();
  }

  /// Drops the predicate list (end of transaction); memory returns to the
  /// pool for the next program.
  void ClearPredicates() {
    for (PredicateBase* p : predicates_) pool_.Destroy(p);
    predicates_.clear();
  }

  size_t PredicateCount() const { return predicates_.size(); }

 private:
  TransactionManager* mgr_;
  Transaction inner_;
  PredicatePool pool_;
  std::vector<PredicateBase*> predicates_;
  OmvccStats stats_;
};

/// Step-based driver for OMVCC transactions: every failure path — user
/// abort excepted — rolls back and re-executes the program from scratch
/// with a fresh start timestamp. The retry policy bounds the restart loop:
/// OMVCC has no repair to escalate to, so the ladder degenerates to
/// restart-with-backoff until the budget runs out (kExhausted).
class OmvccExecutor {
 public:
  using Program = std::function<ExecStatus(OmvccTransaction&)>;

  explicit OmvccExecutor(TransactionManager* mgr, RetryPolicy policy = {})
      : ctrl_(policy), txn_(mgr) {
    obs::RegisterCounters(&metrics_, &txn_.stats());
  }

  void Reset(Program program) {
    program_ = std::move(program);
    ctrl_.Reset();
    txn_.ClearPredicates();  // drop state from the previous transaction
  }

  void Begin() {
    txn_.manager()->Begin(&txn_.inner());
    // Per-transaction phase-timing sample (obs::kPhaseSampleEvery).
    timed_metrics_ = sampler_.Tick() ? &metrics_ : nullptr;
    MV3C_TRACE_EVENT(obs::TraceEvent::kBegin, txn_.inner().txn_id());
  }

  StepResult Step() {
    ExecStatus st;
    {
      obs::ScopedPhaseTimer timer(timed_metrics_, obs::Phase::kExecute);
      st = program_(txn_);
    }
    if (st == ExecStatus::kUserAbort) {
      txn_.RollbackAll();
      txn_.manager()->FinishAborted(&txn_.inner());
      ++txn_.stats().user_aborts;
      MV3C_TRACE_EVENT(obs::TraceEvent::kAbort, txn_.inner().txn_id());
      return StepResult::kUserAborted;
    }
    if (st == ExecStatus::kWriteWriteConflict) {
      txn_.RollbackAll();
      txn_.manager()->Restart(&txn_.inner());
      ++txn_.stats().ww_restarts;
      return FailRound();
    }
    if (txn_.ReadOnly()) {
      txn_.manager()->CommitReadOnly(&txn_.inner());
      last_commit_ts_ = txn_.inner().start_ts();
      ++txn_.stats().commits;
      txn_.ClearPredicates();
      MV3C_TRACE_EVENT(obs::TraceEvent::kCommit, txn_.inner().txn_id());
      return StepResult::kCommitted;
    }
    {
      obs::ScopedPhaseTimer timer(timed_metrics_, obs::Phase::kValidate);
      if (!txn_.Prevalidate()) {
        txn_.manager()->Retimestamp(&txn_.inner());
        return FailValidation();
      }
    }
    bool committed;
    {
      obs::ScopedPhaseTimer timer(timed_metrics_, obs::Phase::kCommit);
      committed = txn_.manager()->TryCommit(
          &txn_.inner(),
          [this](CommittedRecord* head) {
            bool ok = txn_.Validate(head);
            if (ok && MV3C_FAILPOINT(failpoint::Site::kCommitDelta)) {
              ++txn_.stats().failpoint_trips;
              ok = false;
            }
            return ok;
          },
          &last_commit_ts_);
    }
    if (committed) {
      ++txn_.stats().commits;
      txn_.ClearPredicates();
      MV3C_TRACE_EVENT(obs::TraceEvent::kCommit, txn_.inner().txn_id());
      // Outside the kCommit timer: the group-commit wait is epoch-scale
      // and would swamp the commit-phase histogram.
      (void)txn_.manager()->WalWaitDurable(&txn_.inner());
      return StepResult::kCommitted;
    }
    return FailValidation();
  }

  /// Runs the transaction to completion; bounded by the attempt budget.
  StepResult Run(Program program) {
    Reset(std::move(program));
    Begin();
    StepResult r;
    do {
      r = Step();
    } while (r == StepResult::kNeedsRetry);
    return r;
  }

  /// Run() for callers that cannot tolerate failure (population loaders,
  /// test fixtures): checks the transaction committed. [[nodiscard]] on
  /// StepResult forces every other Run call site to consume its result.
  void MustRun(Program program) {
    MV3C_CHECK(Run(std::move(program)) == StepResult::kCommitted);
  }

  /// Starvation backstop for drivers: abandons the in-flight transaction.
  StepResult GiveUp() { return FinishExhausted(); }

  OmvccTransaction& txn() { return txn_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  const OmvccStats& stats() const {
    return const_cast<OmvccExecutor*>(this)->txn_.stats();
  }
  Timestamp last_commit_ts() const { return last_commit_ts_; }
  uint32_t attempts() const { return ctrl_.attempts(); }

 private:
  StepResult FailValidation() {
    // Abort and restart from scratch: the new start timestamp was drawn in
    // the critical section; the restarted execution reads at it, so the
    // validation watermark resets to it.
    txn_.RollbackAll();
    txn_.inner().ResetValidationWatermark();
    ++txn_.stats().validation_failures;
    MV3C_TRACE_EVENT(obs::TraceEvent::kValidateFail, txn_.inner().txn_id());
    return FailRound();
  }

  StepResult FailRound() {
    const RetryDecision d = ctrl_.OnFailure();
    OmvccStats& s = txn_.stats();
    s.max_rounds = std::max<uint64_t>(s.max_rounds, ctrl_.attempts());
    s.backoff_us = ctrl_.backoff_us_total();
    if (d == RetryDecision::kGiveUp) return FinishExhausted();
    return StepResult::kNeedsRetry;
  }

  StepResult FinishExhausted() {
    txn_.RollbackAll();
    txn_.manager()->FinishAborted(&txn_.inner());
    ++txn_.stats().exhausted;
    MV3C_TRACE_EVENT(obs::TraceEvent::kAbort, txn_.inner().txn_id());
    return StepResult::kExhausted;
  }

  RetryController ctrl_;
  OmvccTransaction txn_;
  Program program_;
  Timestamp last_commit_ts_ = 0;
  // Executor registries are single-threaded; recording skips the lock.
  // timed_metrics_ is the per-transaction sampling decision (Begin()).
  obs::MetricsRegistry metrics_{obs::RecordSync::kUnsynchronized};
  obs::MetricsRegistry* timed_metrics_ = nullptr;
  obs::PhaseSampler sampler_;
};

}  // namespace mv3c

#endif  // MV3C_OMVCC_OMVCC_TRANSACTION_H_
