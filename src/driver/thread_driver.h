#ifndef MV3C_DRIVER_THREAD_DRIVER_H_
#define MV3C_DRIVER_THREAD_DRIVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "driver/window_driver.h"

namespace mv3c {

/// Multi-threaded driver: a fixed pool of worker threads consumes a queue
/// of transactions (paper §6.1.1: "a fixed number of worker threads for
/// handling a queue of transactions"). Each worker owns one executor and
/// drives each transaction to completion (commit or user abort), retrying
/// through repair/restart as its engine dictates.
///
/// `Executor` must provide: Reset(Program), Begin(), Step() -> StepResult.
template <typename Executor>
class ThreadDriver {
 public:
  using Program = typename Executor::Program;

  /// `make_executor(worker_id)` creates the per-worker executor;
  /// `program_at(txn_index, worker_id)` generates the i-th transaction.
  /// Worker 0 runs `maintenance` every ~1024 of its own completions.
  /// `round_cap` is the driver-level starvation backstop: after that many
  /// failed rounds the transaction is abandoned via Executor::GiveUp()
  /// (0 leaves bounding to the executor's own retry policy, which by
  /// default still caps the loop — this loop is no longer unbounded).
  template <typename MakeExecutor, typename ProgramAt>
  static DriveResult Run(size_t num_threads, uint64_t num_txns,
                         MakeExecutor&& make_executor, ProgramAt&& program_at,
                         std::function<void()> maintenance = nullptr,
                         std::vector<std::unique_ptr<Executor>>* out_executors =
                             nullptr,
                         uint32_t round_cap = 0) {
    std::atomic<uint64_t> next{0};
    std::atomic<uint64_t> committed{0}, user_aborted{0}, exhausted{0};
    std::atomic<uint64_t> escalations{0}, max_rounds{0}, steps{0};
    std::vector<std::unique_ptr<Executor>> executors;
    executors.reserve(num_threads);
    for (size_t w = 0; w < num_threads; ++w) {
      executors.push_back(make_executor(w));
    }
    const auto t0 = std::chrono::steady_clock::now();
    auto worker = [&](size_t w) {
      Executor& exec = *executors[w];
      uint64_t local_commits = 0, local_aborts = 0, local_exhausted = 0;
      uint64_t local_escalations = 0, local_max_rounds = 0, local_steps = 0;
      uint64_t since_maintenance = 0;
      while (true) {
        const uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= num_txns) break;
        exec.Reset(program_at(i, w));
        exec.Begin();
        StepResult r;
        uint32_t rounds = 0;
        while (true) {
          ++local_steps;
          r = exec.Step();
          if (r != StepResult::kNeedsRetry) break;
          ++rounds;
          ++local_escalations;
          if (round_cap != 0 && rounds >= round_cap) {
            r = exec.GiveUp();
            break;
          }
        }
        if (rounds > local_max_rounds) local_max_rounds = rounds;
        if (r == StepResult::kCommitted) {
          ++local_commits;
        } else if (r == StepResult::kExhausted) {
          ++local_exhausted;
        } else {
          ++local_aborts;
        }
        if (w == 0 && maintenance != nullptr &&
            ++since_maintenance >= 1024) {
          since_maintenance = 0;
          maintenance();
        }
      }
      committed.fetch_add(local_commits, std::memory_order_relaxed);
      user_aborted.fetch_add(local_aborts, std::memory_order_relaxed);
      exhausted.fetch_add(local_exhausted, std::memory_order_relaxed);
      escalations.fetch_add(local_escalations, std::memory_order_relaxed);
      steps.fetch_add(local_steps, std::memory_order_relaxed);
      uint64_t seen = max_rounds.load(std::memory_order_relaxed);
      while (seen < local_max_rounds &&
             !max_rounds.compare_exchange_weak(seen, local_max_rounds,
                                               std::memory_order_relaxed)) {
      }
    };
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (size_t w = 0; w < num_threads; ++w) threads.emplace_back(worker, w);
    for (auto& t : threads) t.join();
    const auto t1 = std::chrono::steady_clock::now();

    DriveResult result;
    // Relaxed snapshot reads: every writer thread has been join()ed above,
    // and join() establishes a happens-before with each worker's final
    // fetch_add, so no ordering stronger than relaxed is needed here.
    result.committed = committed.load(std::memory_order_relaxed);
    result.user_aborted = user_aborted.load(std::memory_order_relaxed);
    result.exhausted = exhausted.load(std::memory_order_relaxed);
    result.escalations = escalations.load(std::memory_order_relaxed);
    result.max_rounds = max_rounds.load(std::memory_order_relaxed);
    result.steps = steps.load(std::memory_order_relaxed);
    result.seconds = std::chrono::duration<double>(t1 - t0).count();
    if (out_executors != nullptr) *out_executors = std::move(executors);
    return result;
  }
};

}  // namespace mv3c

#endif  // MV3C_DRIVER_THREAD_DRIVER_H_
