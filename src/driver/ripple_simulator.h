#ifndef MV3C_DRIVER_RIPPLE_SIMULATOR_H_
#define MV3C_DRIVER_RIPPLE_SIMULATOR_H_

#include <cstdint>
#include <vector>

namespace mv3c {

/// Logical-time simulation of the ripple effect (paper Appendix C.3,
/// Figure 7(c)).
///
/// Two streams issue TransferMoney transactions at constant rates. Every
/// pair of concurrent transactions conflicts (they all update the central
/// fee account), so a transaction fails its commit attempt iff some other
/// transaction committed during its lifetime; it then pays the engine's
/// conflict-resolution cost and tries again. The paper's parameters:
/// execution costs 250 units for both engines, a retry costs 250 units for
/// OMVCC (full re-execution) and 187 units (three quarters) for MV3C's
/// partial repair, the fast stream issues every 251 units — barely slower
/// than serial processing — and the slow stream every 72,000,000 units.
///
/// Model: transactions draw their start timestamp when their stream issues
/// them and execute FIFO on one worker (the schedule is generated in
/// logical time units, as in the paper). While a backlog exists, every
/// transaction's lifetime covers its predecessor's commit, so it fails
/// validation once and pays the retry cost — the ripple: a single
/// disturbance (the slow stream's arrival) makes ALL later transactions
/// conflict. Whether the backlog then drains or feeds on itself depends on
/// exec+retry vs. the arrival period: at the paper's parameters both
/// engines diverge but OMVCC's latency grows ~249/251 per transaction
/// against MV3C's ~186/251; between 437 and 500 units of inter-arrival
/// time the behaviors split qualitatively (MV3C heals, OMVCC diverges).
class RippleSimulator {
 public:
  struct Params {
    uint64_t exec_cost = 250;    // initial execution, both engines
    uint64_t retry_cost = 250;   // per failed validation (187 for MV3C)
    uint64_t fast_period = 251;  // stream 1 inter-arrival time
    uint64_t slow_period = 72'000'000;  // stream 2 inter-arrival time
    uint64_t n_fast = 10000;     // transactions in stream 1
    uint64_t n_slow = 0;         // extra stream-2 transactions (computed
                                 // from the fast makespan when 0)
  };

  struct TxnResult {
    uint64_t arrival = 0;
    uint64_t commit = 0;
    uint32_t retries = 0;
    uint64_t Latency() const { return commit - arrival; }
  };

  struct Summary {
    std::vector<TxnResult> txns;  // in arrival order
    uint64_t makespan = 0;
    double mean_latency = 0;
    uint64_t max_latency = 0;
    uint64_t total_retries = 0;
  };

  /// Runs the simulation to completion.
  static Summary Run(const Params& params);
};

}  // namespace mv3c

#endif  // MV3C_DRIVER_RIPPLE_SIMULATOR_H_
