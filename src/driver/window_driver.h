#ifndef MV3C_DRIVER_WINDOW_DRIVER_H_
#define MV3C_DRIVER_WINDOW_DRIVER_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace mv3c {

/// Aggregate outcome of driving a transaction stream.
struct DriveResult {
  uint64_t committed = 0;
  uint64_t user_aborted = 0;
  uint64_t exhausted = 0;    // gave up after the retry budget
  uint64_t escalations = 0;  // failed rounds that re-entered the window
  uint64_t max_rounds = 0;   // most rounds any one transaction took
  uint64_t steps = 0;        // total executor steps (execution slices)
  double seconds = 0;        // wall-clock time of the run
};

/// Window-based simulated concurrency (paper Appendix C).
///
/// Given a window size N, N transactions are picked from the input stream;
/// all of them start, then they execute, and finally they validate and
/// commit one after the other — all on a single thread, which makes runs
/// deterministic and decouples the concurrency level from the core count.
/// Transactions that fail validation acquire a new timestamp immediately
/// (inside their commit attempt) and their repair/re-execution moves to the
/// next window; N = 1 is serial execution.
///
/// `Executor` must provide: Reset(Program), Begin(), Step() -> StepResult.
template <typename Executor>
class WindowDriver {
 public:
  using Program = typename Executor::Program;
  /// Returns the next transaction program, or nullopt at end of stream.
  using ProgramSource = std::function<std::optional<Program>()>;
  /// Invoked periodically (once per ~1024 completions) for maintenance
  /// such as garbage collection.
  using MaintenanceFn = std::function<void()>;
  /// Invoked when a transaction finishes: the stream index it was drawn at,
  /// its outcome, and its executor (e.g. for last_commit_ts()).
  using CompletionFn =
      std::function<void(uint64_t stream_index, StepResult, Executor&)>;

  /// `make_executor` creates one executor per window slot.
  template <typename MakeExecutor>
  WindowDriver(size_t window_size, MakeExecutor&& make_executor,
               MaintenanceFn maintenance = nullptr)
      : maintenance_(std::move(maintenance)) {
    MV3C_CHECK(window_size >= 1);
    slots_.reserve(window_size);
    for (size_t i = 0; i < window_size; ++i) {
      slots_.push_back(Slot{make_executor(), false});
    }
  }

  /// Maintenance cadence: one firing per kMaintenanceEveryCompletions
  /// completed transactions OR per kMaintenanceEverySteps executor steps
  /// since the last firing, whichever comes first. The step bound exists
  /// because completions alone stall under extreme contention (transactions
  /// retrying for many rounds complete nothing, yet the recently-committed
  /// list and the retired-version backlog keep growing). Both counters
  /// reset together on every firing so the two triggers can never stack
  /// into back-to-back GC passes.
  static constexpr uint64_t kMaintenanceEveryCompletions = 1024;
  static constexpr uint64_t kMaintenanceEverySteps = 2048;

  /// Drives the stream to completion and returns aggregate counts,
  /// including the wall-clock `seconds` of the whole run.
  DriveResult Run(const ProgramSource& next_program) {
    DriveResult result;
    const auto run_start = std::chrono::steady_clock::now();
    uint64_t completions_since_maintenance = 0;
    uint64_t steps_since_maintenance = 0;
    const auto run_maintenance = [&] {
      completions_since_maintenance = 0;
      steps_since_maintenance = 0;
      maintenance_();
    };
    bool stream_open = true;
    while (true) {
      // Refill: start fresh transactions in the free slots (they must all
      // start before any executes, so they are genuinely concurrent).
      bool any_busy = false;
      for (Slot& slot : slots_) {
        if (!slot.busy && stream_open) {
          std::optional<Program> p = next_program();
          if (!p.has_value()) {
            stream_open = false;
          } else {
            slot.executor->Reset(std::move(*p));
            slot.executor->Begin();
            slot.busy = true;
            slot.rounds = 0;
            slot.stream_index = next_index_++;
          }
        }
        any_busy |= slot.busy;
      }
      if (!any_busy) break;
      // Execute + validate/commit one after the other.
      for (Slot& slot : slots_) {
        if (!slot.busy) continue;
        ++result.steps;
        if (maintenance_ != nullptr &&
            ++steps_since_maintenance >= kMaintenanceEverySteps) {
          run_maintenance();
        }
        StepResult r = slot.executor->Step();
        if (r == StepResult::kNeedsRetry) {
          // A failed round re-enters the next window. Count it — silent
          // re-queuing is how starvation hides — and enforce the driver-
          // level round cap on top of the executor's own attempt budget.
          ++slot.rounds;
          ++result.escalations;
          result.max_rounds = std::max<uint64_t>(result.max_rounds,
                                                 slot.rounds);
          if (round_cap_ == 0 || slot.rounds < round_cap_) continue;
          r = slot.executor->GiveUp();
        }
        slot.busy = false;
        if (r == StepResult::kCommitted) {
          ++result.committed;
        } else if (r == StepResult::kExhausted) {
          ++result.exhausted;
        } else {
          ++result.user_aborted;
        }
        if (on_complete_ != nullptr) {
          on_complete_(slot.stream_index, r, *slot.executor);
        }
        if (maintenance_ != nullptr &&
            ++completions_since_maintenance >= kMaintenanceEveryCompletions) {
          run_maintenance();
        }
      }
    }
    result.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - run_start)
                         .count();
    return result;
  }

  /// Access to the slot executors (for stats aggregation).
  std::vector<Executor*> executors() {
    std::vector<Executor*> out;
    out.reserve(slots_.size());
    for (Slot& s : slots_) out.push_back(s.executor.get());
    return out;
  }

  void set_on_complete(CompletionFn fn) { on_complete_ = std::move(fn); }

  /// Driver-level starvation backstop: after `cap` failed rounds the slot's
  /// transaction is abandoned via Executor::GiveUp() (counted as exhausted).
  /// 0 (the default) leaves bounding to the executor's retry policy.
  void set_round_cap(uint32_t cap) { round_cap_ = cap; }

 private:
  struct Slot {
    std::unique_ptr<Executor> executor;
    bool busy;
    uint32_t rounds = 0;
    uint64_t stream_index = 0;
  };

  std::vector<Slot> slots_;
  MaintenanceFn maintenance_;
  CompletionFn on_complete_;
  uint32_t round_cap_ = 0;
  uint64_t next_index_ = 0;
};

/// Convenience: a ProgramSource over a fixed count, generating each program
/// from an index.
template <typename Program>
std::function<std::optional<Program>()> CountedSource(
    uint64_t count, std::function<Program(uint64_t)> generate) {
  auto next = std::make_shared<uint64_t>(0);
  return [count, generate = std::move(generate), next]()
             -> std::optional<Program> {
    if (*next >= count) return std::nullopt;
    return generate((*next)++);
  };
}

}  // namespace mv3c

#endif  // MV3C_DRIVER_WINDOW_DRIVER_H_
