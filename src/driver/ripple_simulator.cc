#include "driver/ripple_simulator.h"

#include <algorithm>

#include "common/macros.h"

namespace mv3c {

RippleSimulator::Summary RippleSimulator::Run(const Params& params) {
  Summary out;
  // Arrival times of both streams, merged. Transactions draw their start
  // timestamp when issued (the stream is the client) and execute on the
  // worker in FIFO order.
  std::vector<uint64_t> arrivals;
  arrivals.reserve(params.n_fast + 16);
  for (uint64_t i = 0; i < params.n_fast; ++i) {
    arrivals.push_back(i * params.fast_period);
  }
  const uint64_t horizon = params.n_fast * params.fast_period;
  const uint64_t n_slow = params.n_slow != 0
                              ? params.n_slow
                              : 1 + horizon / params.slow_period;
  for (uint64_t i = 0; i < n_slow; ++i) {
    arrivals.push_back(i * params.slow_period);
  }
  std::stable_sort(arrivals.begin(), arrivals.end());

  out.txns.resize(arrivals.size());
  uint64_t worker_free_at = 0;
  uint64_t last_commit = 0;
  bool any_commit = false;
  double sum = 0;
  for (uint32_t i = 0; i < arrivals.size(); ++i) {
    TxnResult& r = out.txns[i];
    r.arrival = arrivals[i];
    const uint64_t begin = std::max(worker_free_at, r.arrival);
    uint64_t attempt = begin + params.exec_cost;
    // Validation: did any transaction commit during this transaction's
    // lifetime (start timestamp drawn at arrival)? While a backlog exists
    // the predecessor always did — the ripple. The retry re-timestamps at
    // the failed attempt; with a single worker nobody commits during the
    // repair, so one retry suffices.
    if (any_commit && last_commit > r.arrival && last_commit <= attempt) {
      ++r.retries;
      ++out.total_retries;
      attempt += params.retry_cost;
    }
    r.commit = attempt;
    last_commit = attempt;
    any_commit = true;
    worker_free_at = attempt;
    out.makespan = std::max(out.makespan, attempt);
    sum += static_cast<double>(r.Latency());
    out.max_latency = std::max(out.max_latency, r.Latency());
  }
  out.mean_latency = sum / static_cast<double>(out.txns.size());
  return out;
}

}  // namespace mv3c
