#ifndef MV3C_WAL_STATE_HASH_H_
#define MV3C_WAL_STATE_HASH_H_

#include <cstdint>
#include <cstring>

#include "common/crc32.h"
#include "mvcc/table.h"
#include "mvcc/timestamp.h"
#include "sv/sv_table.h"

namespace mv3c::wal {

/// Order-independent digest of a table's visible committed state, used by
/// the recovery-equivalence tests: digest the pre-crash tables, replay the
/// log into fresh tables, digest again, compare. Per-row hashes combine by
/// wrapping addition, so the (arbitrary, insert-order-dependent) cuckoo
/// iteration order of the two tables does not matter. Rows are hashed as
/// raw bytes — the same memcpy pipeline the log uses — so padding bytes
/// are identical on both sides (rows are value-initialized everywhere).
struct TableDigest {
  uint64_t hash = 0;
  uint64_t live_rows = 0;

  bool operator==(const TableDigest& o) const {
    return hash == o.hash && live_rows == o.live_rows;
  }
  bool operator!=(const TableDigest& o) const { return !(*this == o); }
};

namespace digest_internal {

/// splitmix64 finalizer: spreads the 32-bit CRC over 64 bits before the
/// commutative sum so colliding low bits don't cancel.
inline uint64_t Mix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

inline uint64_t RowHash(const void* key, size_t key_bytes, const void* row,
                        size_t row_bytes) {
  uint32_t c = crc32::Compute(key, key_bytes);
  c = crc32::Extend(c, row, row_bytes);
  return Mix((static_cast<uint64_t>(key_bytes) << 32) | c);
}

}  // namespace digest_internal

/// Digest of an MVCC table's latest-committed visible state (what a fresh
/// read-only transaction would see). Must not run concurrently with
/// writers.
template <typename TableT>
TableDigest DigestMvccTable(const TableT& table) {
  using Row = typename TableT::Row;
  TableDigest d;
  table.ForEachObject([&](const typename TableT::Object& obj) {
    // Visible-state read: newest committed version, any committer.
    const Version<Row>* v = obj.ReadVisible(kTxnIdBase - 1, /*txn_id=*/0);
    if (v == nullptr) return;  // never committed, or deleted
    d.hash += digest_internal::RowHash(&obj.key(), sizeof(obj.key()),
                                       &v->data(), sizeof(Row));
    ++d.live_rows;
  });
  return d;
}

/// Digest of a single-version table's live rows. Must not run concurrently
/// with writers (rows are read without the optimistic protocol).
template <typename SvTableT>
TableDigest DigestSvTable(const SvTableT& table) {
  using K = typename SvTableT::Key;
  using Row = typename SvTableT::Row;
  TableDigest d;
  table.ForEachRecord([&](const K& key, const sv::Record<K, Row>& rec) {
    if (sv::IsAbsent(rec.tid.load(std::memory_order_relaxed))) return;
    d.hash += digest_internal::RowHash(&key, sizeof(K), &rec.row,
                                       sizeof(Row));
    ++d.live_rows;
  });
  return d;
}

}  // namespace mv3c::wal

#endif  // MV3C_WAL_STATE_HASH_H_
