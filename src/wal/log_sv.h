#ifndef MV3C_WAL_LOG_SV_H_
#define MV3C_WAL_LOG_SV_H_

// Commit-path redo serializer for the single-version engines (OCC, SILO).
// Included by the engines only under -DMV3C_WAL=ON.

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "sv/sv_transaction.h"
#include "wal/log_manager.h"
#include "wal/wal_format.h"

namespace mv3c::wal {

/// Serializes one committing SV transaction's write set into `buf`
/// (created lazily from `lm`) and installs it into memory via
/// sv::InstallWrites — the install runs INSIDE the buffer-lock hold,
/// immediately after serialization. MUST run while the transaction's
/// writes are not yet visible to other committers — inside OCC's
/// validation mutex, or between Silo's write-set locking and its TID
/// publication.
///
/// Two orderings hang off this single lock hold:
///
///  * Causal consistency of epoch prefixes: redo is serialized before the
///    writes become visible, so a dependent transaction can only read them
///    after publication, and its own epoch-tag read (coherence-ordered on
///    the same atomic) observes an epoch >= this one — no durable prefix
///    contains the reader without the writer.
///
///  * Checkpoint completeness: the group-commit writer drains this buffer
///    under the same lock, so by the time epoch E is durable, every
///    transaction tagged <= E has also finished installing. A fuzzy
///    checkpoint that reads durable_epoch = D *before* scanning therefore
///    cannot miss a commit whose records it is about to truncate — any
///    install it races carries a tag > D and stays in the retained WAL
///    suffix (DESIGN §5g). Installing outside the lock would reopen that
///    window: a commit could be durable (later truncated) yet invisible to
///    the scan — a lost update.
///
/// A transaction may write the same record more than once; every entry is
/// logged in write order and recovery's stable sort preserves that order
/// within the commit TID, so last-write-wins replay is exact.
///
/// Returns the epoch tag, or 0 when no write touched a WAL-registered
/// table (the install still runs, outside any buffer lock — untracked
/// tables have no durability ordering to preserve).
inline uint64_t LogSvCommitAndInstall(LogManager& lm, LogBuffer*& buf,
                                      sv::SvTransaction& t,
                                      uint64_t commit_tid) {
  bool any = false;
  for (const sv::SvWrite& w : t.writes()) {
    if (w.wal_table_id != 0) {
      any = true;
      break;
    }
  }
  if (!any) {
    sv::InstallWrites(t, commit_tid);
    return 0;
  }
  obs::ScopedPhaseTimer timer(&lm.metrics(), obs::Phase::kLogSerialize);
  // Round-robin partition placement (no lane hint): the SV engines have no
  // per-lane commit-TID layout to mirror, and this header stays mvcc-free.
  if (buf == nullptr) buf = lm.CreateBuffer();
  return buf->AppendTransaction(
      [&](std::vector<uint8_t>& out, uint32_t& n_records) {
        for (const sv::SvWrite& w : t.writes()) {
          if (w.wal_table_id == 0) continue;
          const bool del = w.op == sv::SvWrite::Op::kDelete;
          RecordHeader h{};
          h.table_id = w.wal_table_id;
          h.commit_ts = commit_tid;
          h.column_mask = ~0ULL;  // single-version writes are full-row
          h.key_bytes = w.key_bytes;
          h.val_bytes = del ? 0 : static_cast<uint32_t>(w.size);
          h.type = static_cast<uint8_t>(del ? RecordType::kDelete
                                            : RecordType::kUpsert);
          h.flags = static_cast<uint8_t>(
              w.op == sv::SvWrite::Op::kInsert ? kFlagInsert : 0);
          AppendRecord(out, h, w.key,
                       del ? nullptr : t.arena() + w.buf_offset);
          ++n_records;
        }
        sv::InstallWrites(t, commit_tid);
      });
}

}  // namespace mv3c::wal

#endif  // MV3C_WAL_LOG_SV_H_
