#ifndef MV3C_WAL_LOG_SV_H_
#define MV3C_WAL_LOG_SV_H_

// Commit-path redo serializer for the single-version engines (OCC, SILO).
// Included by the engines only under -DMV3C_WAL=ON.

#include <cstdint>
#include <vector>

#include "obs/metrics.h"
#include "sv/sv_transaction.h"
#include "wal/log_manager.h"
#include "wal/wal_format.h"

namespace mv3c::wal {

/// Serializes one committing SV transaction's write set into `buf`
/// (created lazily from `lm`). MUST run while the transaction's writes are
/// not yet visible to other committers — inside OCC's validation mutex,
/// or between Silo's write-set locking and its TID publication. That
/// ordering is what makes epoch prefixes causally consistent: a dependent
/// transaction can only read these writes after they are published, so its
/// own epoch-tag read (coherence-ordered on the same atomic) observes an
/// epoch >= this one, and no durable prefix can contain the reader without
/// the writer.
///
/// A transaction may write the same record more than once; every entry is
/// logged in write order and recovery's stable sort preserves that order
/// within the commit TID, so last-write-wins replay is exact.
///
/// Returns the epoch tag, or 0 when no write touched a WAL-registered
/// table.
inline uint64_t LogSvCommit(LogManager& lm, LogBuffer*& buf,
                            const sv::SvTransaction& t,
                            uint64_t commit_tid) {
  bool any = false;
  for (const sv::SvWrite& w : t.writes()) {
    if (w.wal_table_id != 0) {
      any = true;
      break;
    }
  }
  if (!any) return 0;
  obs::ScopedPhaseTimer timer(&lm.metrics(), obs::Phase::kLogSerialize);
  if (buf == nullptr) buf = lm.CreateBuffer();
  return buf->AppendTransaction(
      [&](std::vector<uint8_t>& out, uint32_t& n_records) {
        for (const sv::SvWrite& w : t.writes()) {
          if (w.wal_table_id == 0) continue;
          const bool del = w.op == sv::SvWrite::Op::kDelete;
          RecordHeader h{};
          h.table_id = w.wal_table_id;
          h.commit_ts = commit_tid;
          h.column_mask = ~0ULL;  // single-version writes are full-row
          h.key_bytes = w.key_bytes;
          h.val_bytes = del ? 0 : static_cast<uint32_t>(w.size);
          h.type = static_cast<uint8_t>(del ? RecordType::kDelete
                                            : RecordType::kUpsert);
          h.flags = static_cast<uint8_t>(
              w.op == sv::SvWrite::Op::kInsert ? kFlagInsert : 0);
          AppendRecord(out, h, w.key,
                       del ? nullptr : t.arena() + w.buf_offset);
          ++n_records;
        }
      });
}

}  // namespace mv3c::wal

#endif  // MV3C_WAL_LOG_SV_H_
