#include "wal/log_manager.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/failpoint.h"
#include "common/macros.h"
#include "wal/wal_format.h"

namespace mv3c::wal {

namespace {

// The only raw-I/O call sites in the tree (the no_raw_io_outside_wal lint
// rule keeps it that way): a full-write loop over ::write and a segment
// path formatter.
bool WriteFully(int fd, const uint8_t* p, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += static_cast<size_t>(w);
    n -= static_cast<size_t>(w);
  }
  return true;
}

std::string SegmentPath(const std::string& dir, uint32_t index) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%06u.log", index);
  return dir + "/" + name;
}

}  // namespace

LogManager::LogManager(const WalConfig& config, EpochClock* epoch_clock)
    : config_(config),
      clock_(epoch_clock != nullptr ? epoch_clock : &own_clock_) {
  MV3C_CHECK(!config_.dir.empty());
  MV3C_CHECK(clock_->Current() >= 1);
  // EEXIST is the common restart case; anything else is fatal (a log that
  // cannot be created must never report commits durable).
  if (::mkdir(config_.dir.c_str(), 0755) != 0) {
    MV3C_CHECK(errno == EEXIST);
  }
  metrics_.RegisterCounter("wal_bytes", &wal_bytes_);
  metrics_.RegisterCounter("wal_records", &wal_records_);
  metrics_.RegisterCounter("epochs_flushed", &epochs_flushed_);
  metrics_.RegisterCounter("group_commit_size", &group_commit_size_,
                           obs::MergeKind::kMax);
  metrics_.RegisterCounter("wal_sync_waits", &wal_sync_waits_);
  metrics_.RegisterCounter("wal_segments", &wal_segments_);
  metrics_.RegisterCounter("wal_flush_failures", &wal_flush_failures_);
  OpenNextSegment();
  writer_ = std::thread([this] { WriterLoop(); });
}

LogManager::~LogManager() { Stop(); }

LogBuffer* LogManager::CreateBuffer() {
  std::lock_guard<std::mutex> g(buffers_mu_);
  buffers_.emplace_back(
      std::unique_ptr<LogBuffer>(new LogBuffer(clock_->raw())));
  return buffers_.back().get();
}

bool LogManager::WaitCommitDurable(uint64_t epoch) {
  if (epoch == 0) return true;
  if (config_.ack == WalConfig::Ack::kAsync) return true;
  return WaitDurable(epoch);
}

bool LogManager::WaitDurable(uint64_t epoch) {
  if (durable_epoch_.load(std::memory_order_acquire) >= epoch) return true;
  std::unique_lock<std::mutex> lk(mu_);
  ++wal_sync_waits_;
  flush_requested_ = true;  // don't make the group wait out the interval
  writer_cv_.notify_one();
  durable_cv_.wait(lk, [&] {
    return durable_epoch_.load(std::memory_order_acquire) >= epoch ||
           crashed_.load(std::memory_order_acquire) || stop_requested_;
  });
  return durable_epoch_.load(std::memory_order_acquire) >= epoch;
}

bool LogManager::FlushNow() {
  // Everything appended before this call is tagged ≤ the epoch read here
  // (tags are reads of current_epoch_), so one durable round at or past it
  // covers them all.
  return WaitDurable(clock_->Current());
}

void LogManager::SimulateCrash() {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!writer_.joinable()) return;
    crash_requested_ = true;
    writer_cv_.notify_all();
  }
  writer_.join();
  EnterCrashedState();
}

void LogManager::Stop() {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!writer_.joinable()) return;
    stop_requested_ = true;
    writer_cv_.notify_all();
  }
  writer_.join();
  CloseSegment();
}

void LogManager::EnterCrashedState() {
  CloseSegment();
  {
    std::lock_guard<std::mutex> g(mu_);
    crashed_.store(true, std::memory_order_release);
  }
  durable_cv_.notify_all();
}

void LogManager::WriterLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    writer_cv_.wait_for(
        lk, std::chrono::microseconds(config_.epoch_interval_us), [&] {
          return stop_requested_ || flush_requested_ || crash_requested_;
        });
    if (crash_requested_) return;  // SimulateCrash: drop unflushed bytes
    const bool stopping = stop_requested_;
    flush_requested_ = false;
    lk.unlock();
    const bool ok = FlushRound();
    if (!ok) {
      EnterCrashedState();
      return;
    }
    durable_cv_.notify_all();
    lk.lock();
    if (stopping) return;  // final round flushed whatever was left
  }
}

bool LogManager::FlushRound() {
  obs::ScopedPhaseTimer timer(&metrics_, obs::Phase::kLogFlush);
  // Publish the next epoch BEFORE draining: any committer whose tag-read
  // raced this bump either still holds its buffer lock (drained below,
  // into this round) or sees the new epoch (flushed next round). See
  // LogBuffer's header comment for the full argument. With a shared clock
  // the counter may have been advanced externally (TID rollover,
  // recovery) since the last round; draining under the jumped value is
  // fine — it still covers every tag drawn before the bump.
  const uint64_t epoch = clock_->BumpForFlush();
  payload_.clear();
  uint32_t n_records = 0;
  {
    std::lock_guard<std::mutex> g(buffers_mu_);
    for (const auto& b : buffers_) b->Drain(&payload_, &n_records);
  }
  if (payload_.empty()) {
    // Nothing committed this interval: the epoch is trivially durable, no
    // block is written (idle systems must not grow the log).
    durable_epoch_.store(epoch, std::memory_order_release);
    return true;
  }

  BlockHeader h{};
  h.magic = kBlockMagic;
  h.epoch = epoch;
  h.payload_bytes = static_cast<uint32_t>(payload_.size());
  h.n_records = n_records;
  h.payload_crc = crc32::Compute(payload_.data(), payload_.size());
  h.header_crc = BlockHeaderCrc(h);

  block_.clear();
  block_.resize(sizeof(h) + payload_.size());
  std::memcpy(block_.data(), &h, sizeof(h));
  std::memcpy(block_.data() + sizeof(h), payload_.data(), payload_.size());

  size_t write_bytes = block_.size();
  bool injected_torn = false;
  if (MV3C_FAILPOINT(failpoint::Site::kWalShortWrite)) {
    // Torn write: half the block reaches the disk, then the "machine"
    // dies. Recovery must stop at this block.
    write_bytes /= 2;
    injected_torn = true;
  }
  if (!WriteFully(fd_, block_.data(), write_bytes)) return false;
  if (injected_torn) return false;
  if (MV3C_FAILPOINT(failpoint::Site::kWalCrashAfterAppend)) {
    // Crash between append and fsync: the block's bytes may survive (they
    // did reach the file) but were never acknowledged — recovery may
    // legitimately return either side of this epoch.
    return false;
  }
  if (MV3C_FAILPOINT(failpoint::Site::kWalFsyncFail)) {
    ++wal_flush_failures_;
    return false;
  }
  if (::fsync(fd_) != 0) {
    ++wal_flush_failures_;
    return false;
  }

  durable_epoch_.store(epoch, std::memory_order_release);
  segment_written_ += block_.size();
  segment_max_epoch_ = epoch;
  wal_bytes_ += block_.size();
  wal_records_ += n_records;
  ++epochs_flushed_;
  if (n_records > group_commit_size_) group_commit_size_ = n_records;

  if (segment_written_ >= config_.segment_bytes) {
    {
      // Published under the lock so a concurrent truncation sees the
      // segment only once its byte range is final.
      std::lock_guard<std::mutex> g(segments_mu_);
      closed_segments_.push_back({segment_index_, segment_max_epoch_});
    }
    CloseSegment();
    OpenNextSegment();
  }
  return true;
}

uint64_t LogManager::TruncateSegmentsBefore(uint64_t cut_epoch) {
  if (crashed()) return 0;
  uint64_t deleted = 0;
  std::lock_guard<std::mutex> g(segments_mu_);
  // Oldest-first, stopping at the first keeper: recovery relies on the
  // remaining files being a contiguous, monotonically-numbered suffix.
  while (!closed_segments_.empty() &&
         closed_segments_.front().max_epoch <= cut_epoch) {
    const std::string path =
        SegmentPath(config_.dir, closed_segments_.front().index);
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) break;
    closed_segments_.pop_front();
    ++deleted;
  }
  if (deleted > 0) {
    const int dfd = ::open(config_.dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (dfd >= 0) {
      (void)::fsync(dfd);
      ::close(dfd);
    }
  }
  return deleted;
}

void LogManager::OpenNextSegment() {
  ++segment_index_;
  const std::string path = SegmentPath(config_.dir, segment_index_);
  fd_ = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  MV3C_CHECK(fd_ >= 0);
  const SegmentHeader h = MakeSegmentHeader();
  MV3C_CHECK(WriteFully(fd_, reinterpret_cast<const uint8_t*>(&h),
                        sizeof(h)));
  // Make the segment's directory entry durable: a crash right after
  // rotation must not lose the whole file.
  const int dfd = ::open(config_.dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
  segment_written_ = sizeof(h);
  segment_max_epoch_ = 0;
  ++wal_segments_;
}

void LogManager::CloseSegment() {
  if (fd_ < 0) return;
  ::close(fd_);
  fd_ = -1;
}

}  // namespace mv3c::wal
