#include "wal/log_manager.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/failpoint.h"
#include "common/macros.h"
#include "wal/wal_format.h"

namespace mv3c::wal {

namespace {

// The only raw-I/O call sites in the tree (the no_raw_io_outside_wal lint
// rule keeps it that way): a full-write loop over ::write and the segment
// path formatter in SegmentPath below.
bool WriteFully(int fd, const uint8_t* p, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += static_cast<size_t>(w);
    n -= static_cast<size_t>(w);
  }
  return true;
}

/// Writes header + payload up to `limit` bytes (the short-write failpoint
/// caps it mid-block). Header and payload go out as two writes straight
/// from their own storage — no whole-block assembly copy on the flush path.
bool WriteBlock(int fd, const BlockHeader& h,
                const std::vector<uint8_t>& payload, size_t limit) {
  const auto* hp = reinterpret_cast<const uint8_t*>(&h);
  if (!WriteFully(fd, hp, std::min(limit, sizeof(h)))) return false;
  if (limit > sizeof(h)) {
    return WriteFully(fd, payload.data(), limit - sizeof(h));
  }
  return true;
}

void FsyncDir(const std::string& dir) {
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
}

/// True if `dir` holds segment files of the *other* naming scheme.
/// Changing the partition count over an existing log directory is refused
/// outright: the old streams would stop growing while new ones advance, so
/// recovery's min-over-streams cut would pin to the stale streams and
/// silently discard everything written after the switch. Recover the dir
/// (or checkpoint + truncate it empty) before reconfiguring.
bool HasForeignNaming(const std::string& dir, bool partitioned) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return false;
  bool found = false;
  while (dirent* e = ::readdir(d)) {
    const std::string n = e->d_name;
    if (n.size() <= 8 || n.rfind("wal-", 0) != 0 ||
        n.compare(n.size() - 4, 4, ".log") != 0) {
      continue;
    }
    const bool legacy_name =
        std::isdigit(static_cast<unsigned char>(n[4])) != 0;
    if (partitioned == legacy_name) {
      found = true;
      break;
    }
  }
  ::closedir(d);
  return found;
}

uint32_t ResolvePartitions(const WalConfig& config) {
  uint64_t n = config.partitions;
  if (n == 0) {
    n = 1;
    if (const char* env = std::getenv("MV3C_WAL_PARTITIONS")) {
      const long v = std::strtol(env, nullptr, 10);
      if (v > 0) n = static_cast<uint64_t>(v);
    }
  }
  // The p%02u naming caps the count; far beyond any sane core count here.
  return static_cast<uint32_t>(std::min<uint64_t>(n, 64));
}

}  // namespace

LogManager::LogManager(const WalConfig& config, EpochClock* epoch_clock)
    : config_(config),
      clock_(epoch_clock != nullptr ? epoch_clock : &own_clock_) {
  MV3C_CHECK(!config_.dir.empty());
  MV3C_CHECK(clock_->Current() >= 1);
  config_.partitions = ResolvePartitions(config);
  // EEXIST is the common restart case; anything else is fatal (a log that
  // cannot be created must never report commits durable).
  if (::mkdir(config_.dir.c_str(), 0755) != 0) {
    MV3C_CHECK(errno == EEXIST);
  }
  // See HasForeignNaming: never mix stream layouts in one directory.
  MV3C_CHECK(!HasForeignNaming(config_.dir, config_.partitions > 1));
  metrics_.RegisterCounter("wal_bytes", &wal_bytes_);
  metrics_.RegisterCounter("wal_records", &wal_records_);
  metrics_.RegisterCounter("epochs_flushed", &epochs_flushed_);
  metrics_.RegisterCounter("group_commit_size", &group_commit_size_,
                           obs::MergeKind::kMax);
  metrics_.RegisterCounter("wal_sync_waits", &wal_sync_waits_);
  metrics_.RegisterCounter("wal_segments", &wal_segments_);
  metrics_.RegisterCounter("wal_flush_failures", &wal_flush_failures_);
  for (uint32_t i = 0; i < config_.partitions; ++i) {
    partitions_.emplace_back(std::make_unique<Partition>());
    partitions_.back()->id = i;
  }
  for (auto& p : partitions_) {
    OpenNextSegment(*p);
    ++wal_segments_;
  }
  if (partitions_.size() > 1) {
    flushers_.reserve(partitions_.size());
    for (auto& p : partitions_) {
      flushers_.emplace_back([this, part = p.get()] { FlusherLoop(part); });
    }
  }
  sequencer_ = std::thread([this] { SequencerLoop(); });
}

LogManager::~LogManager() { Stop(); }

LogBuffer* LogManager::CreateBuffer(uint32_t lane_hint) {
  const auto n = static_cast<uint32_t>(partitions_.size());
  const uint32_t idx =
      (lane_hint == kNoLane
           ? next_partition_rr_.fetch_add(1, std::memory_order_relaxed)
           : lane_hint) %
      n;
  Partition& p = *partitions_[idx];
  std::lock_guard<std::mutex> g(p.buffers_mu);
  p.buffers.emplace_back(
      std::unique_ptr<LogBuffer>(new LogBuffer(clock_->raw())));
  return p.buffers.back().get();
}

bool LogManager::WaitCommitDurable(uint64_t epoch) {
  if (epoch == 0) return true;
  if (config_.ack == WalConfig::Ack::kAsync) return true;
  return WaitDurableInternal(epoch, /*commit_wait=*/true);
}

bool LogManager::WaitDurable(uint64_t epoch) {
  return WaitDurableInternal(epoch, /*commit_wait=*/false);
}

bool LogManager::WaitDurableInternal(uint64_t epoch, bool commit_wait) {
  if (durable_epoch_.load(std::memory_order_acquire) >= epoch) return true;
  std::unique_lock<std::mutex> lk(mu_);
  // Only commit-path group-commit waits count: FlushNow/shutdown barriers
  // are test and teardown plumbing, not a latency signal.
  if (commit_wait) ++wal_sync_waits_;
  flush_requested_ = true;  // don't make the group wait out the interval
  writer_cv_.notify_one();
  durable_cv_.wait(lk, [&] {
    // `stopped_` (not stop_requested_): a waiter racing Stop() must see
    // the final round's published durable_epoch before deciding, or it
    // would spuriously fail for an epoch that round does flush.
    return durable_epoch_.load(std::memory_order_acquire) >= epoch ||
           crashed_.load(std::memory_order_acquire) || stopped_;
  });
  return durable_epoch_.load(std::memory_order_acquire) >= epoch;
}

bool LogManager::FlushNow() {
  // Everything appended before this call is tagged ≤ the epoch read here
  // (tags are reads of current_epoch_), so one durable round at or past it
  // covers them all.
  return WaitDurable(clock_->Current());
}

void LogManager::SimulateCrash() {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!sequencer_.joinable()) return;
    crash_requested_ = true;
    writer_cv_.notify_all();
  }
  sequencer_.join();
  EnterCrashedState();
}

void LogManager::Stop() {
  {
    std::lock_guard<std::mutex> g(mu_);
    if (!sequencer_.joinable()) return;
    stop_requested_ = true;
    writer_cv_.notify_all();
  }
  sequencer_.join();
  JoinFlushers();
  for (auto& p : partitions_) CloseSegment(*p);
}

void LogManager::JoinFlushers() {
  if (flushers_.empty()) return;
  {
    std::lock_guard<std::mutex> g(round_mu_);
    flushers_exit_ = true;
  }
  round_cv_.notify_all();
  for (auto& t : flushers_) {
    if (t.joinable()) t.join();
  }
  flushers_.clear();
}

void LogManager::EnterCrashedState() {
  // No round is in flight here (the sequencer only crashes between
  // rounds), so the flushers are idle and joining them is immediate.
  JoinFlushers();
  for (auto& p : partitions_) CloseSegment(*p);
  {
    std::lock_guard<std::mutex> g(mu_);
    crashed_.store(true, std::memory_order_release);
  }
  durable_cv_.notify_all();
}

void LogManager::SequencerLoop() {
  std::unique_lock<std::mutex> lk(mu_);
  while (true) {
    writer_cv_.wait_for(
        lk, std::chrono::microseconds(config_.epoch_interval_us), [&] {
          return stop_requested_ || flush_requested_ || crash_requested_;
        });
    if (crash_requested_) return;  // SimulateCrash: drop unflushed bytes
    const bool stopping = stop_requested_;
    const bool forced = flush_requested_ || stopping;
    flush_requested_ = false;
    lk.unlock();
    const bool ok = FlushRound(forced);
    if (!ok) {
      EnterCrashedState();
      return;
    }
    durable_cv_.notify_all();
    if (stopping) {
      // Publish-then-stop: waiters only observe `stopped_` after the
      // final round's durable_epoch store above.
      {
        std::lock_guard<std::mutex> g(mu_);
        stopped_ = true;
      }
      durable_cv_.notify_all();
      return;
    }
    lk.lock();
  }
}

bool LogManager::FlushRound(bool forced) {
  obs::ScopedPhaseTimer timer(&metrics_, obs::Phase::kLogFlush);
  // Idle probe — the order is the correctness argument (DESIGN §5i): read
  // the clock FIRST, then probe every buffer under its spinlock. A record
  // the probe misses was appended after some probe's unlock, so its
  // tag-read is coherence-ordered after our `current` read and yields
  // ≥ current. Hence if every buffer is empty, nothing tagged ≤ current-1
  // is staged anywhere — those epochs are already on disk and can be
  // published durable without bumping the clock (a quiet system must not
  // burn the bounded commit-TID epoch field, DESIGN §5h) or touching disk.
  const uint64_t current = clock_->Current();
  bool any_data = false;
  for (auto& p : partitions_) {
    std::lock_guard<std::mutex> g(p->buffers_mu);
    for (const auto& b : p->buffers) {
      if (!b->Empty()) {
        any_data = true;
        break;
      }
    }
    if (any_data) break;
  }
  if (!any_data && !forced) {
    if (current - 1 > durable_epoch_.load(std::memory_order_relaxed)) {
      durable_epoch_.store(current - 1, std::memory_order_release);
    }
    return true;
  }

  // Publish the next epoch BEFORE draining: any committer whose tag-read
  // raced this bump either still holds its buffer lock (drained below,
  // into this round) or sees the new epoch (flushed next round). See
  // LogBuffer's header comment for the full argument. With a shared clock
  // the counter may have been advanced externally (TID rollover,
  // recovery) since the last round; draining under the jumped value is
  // fine — it still covers every tag drawn before the bump.
  const uint64_t epoch = clock_->BumpForFlush();
  bool ok = true;
  if (!any_data) {
    // Forced flush of an idle log (FlushNow, stop): every tag ≤ epoch is
    // already durable; publish without writing a block in any stream.
  } else if (partitions_.size() == 1) {
    ok = FlushPartition(*partitions_[0], epoch, /*must_write_block=*/false);
  } else {
    ok = RunPartitionedRound(epoch);
  }

  // Fold the partitions' per-round results here, on the one sequencer
  // thread, so the registry's plain counters never see concurrent writers.
  // Folding happens even on failure: a failed fsync must still show in
  // wal_flush_failures (bytes/records of a failed partition stay zero —
  // nothing it wrote was acknowledged).
  uint64_t round_bytes = 0;
  uint32_t round_records = 0;
  for (auto& p : partitions_) {
    round_bytes += p->round_bytes;
    round_records += p->round_records;
    wal_flush_failures_ += p->round_fsync_failures;
    wal_segments_ += p->round_segments_opened;
    p->round_bytes = 0;
    p->round_records = 0;
    p->round_fsync_failures = 0;
    p->round_segments_opened = 0;
  }
  wal_bytes_ += round_bytes;
  if (round_records > 0) {
    wal_records_ += round_records;
    ++epochs_flushed_;
    if (round_records > group_commit_size_) group_commit_size_ = round_records;
  }
  if (!ok) return false;
  durable_epoch_.store(epoch, std::memory_order_release);
  return true;
}

bool LogManager::RunPartitionedRound(uint64_t epoch) {
  std::unique_lock<std::mutex> lk(round_mu_);
  round_epoch_ = epoch;
  round_pending_ = static_cast<uint32_t>(partitions_.size());
  round_failed_ = false;
  round_cv_.notify_all();
  round_done_cv_.wait(lk, [&] { return round_pending_ == 0; });
  return !round_failed_;
}

void LogManager::FlusherLoop(Partition* p) {
  std::unique_lock<std::mutex> lk(round_mu_);
  uint64_t done = 0;
  while (true) {
    round_cv_.wait(lk, [&] {
      return flushers_exit_ || (round_epoch_ != 0 && round_epoch_ != done);
    });
    if (flushers_exit_) return;
    const uint64_t epoch = round_epoch_;
    lk.unlock();
    const bool ok = FlushPartition(*p, epoch, /*must_write_block=*/true);
    lk.lock();
    done = epoch;
    if (!ok) round_failed_ = true;
    if (--round_pending_ == 0) round_done_cv_.notify_one();
  }
}

bool LogManager::FlushPartition(Partition& p, uint64_t epoch,
                                bool must_write_block) {
  p.payload.clear();
  uint32_t n_records = 0;
  {
    std::lock_guard<std::mutex> g(p.buffers_mu);
    for (const auto& b : p.buffers) {
      // O(1) swap under the buffer spinlock; the concatenation below runs
      // with only buffers_mu held, which committers never take.
      b->Drain(&p.scratch, &n_records);
      if (p.scratch.empty()) continue;
      if (p.payload.empty()) {
        p.payload.swap(p.scratch);
      } else {
        p.payload.insert(p.payload.end(), p.scratch.begin(), p.scratch.end());
        p.scratch.clear();
      }
    }
  }
  if (p.payload.empty() && !must_write_block) {
    // Single-partition empty round: no block (idle systems must not grow
    // the log — and the partitions=1 on-disk layout stays byte-identical
    // to the pre-partitioning format).
    return true;
  }
  // In a partitioned round every stream writes a block — a *heartbeat*
  // (payload_bytes = 0) when this partition had nothing staged. Recovery's
  // durable cut is the min over streams of the last valid block epoch, so
  // a lagging stream must prove it was merely idle, not torn (DESIGN §5i).

  BlockHeader h{};
  h.magic = kBlockMagic;
  h.epoch = epoch;
  h.payload_bytes = static_cast<uint32_t>(p.payload.size());
  h.n_records = n_records;
  h.payload_crc = p.payload.empty()
                      ? crc32::Compute(&h, 0)
                      : crc32::Compute(p.payload.data(), p.payload.size());
  h.header_crc = BlockHeaderCrc(h);

  const size_t total = sizeof(h) + p.payload.size();
  size_t write_bytes = total;
  bool injected_torn = false;
  if (MV3C_FAILPOINT(failpoint::Site::kWalShortWrite)) {
    // Torn write: half the block reaches the disk, then the "machine"
    // dies. Recovery must stop this stream at this block.
    write_bytes /= 2;
    injected_torn = true;
  }
  if (!WriteBlock(p.fd, h, p.payload, write_bytes)) return false;
  if (injected_torn) return false;
  if (MV3C_FAILPOINT(failpoint::Site::kWalCrashAfterAppend)) {
    // Crash between append and fsync: the block's bytes may survive (they
    // did reach the file) but were never acknowledged — recovery may
    // legitimately return either side of this epoch.
    return false;
  }
  if (MV3C_FAILPOINT(failpoint::Site::kWalFsyncFail)) {
    ++p.round_fsync_failures;
    return false;
  }
  if (::fsync(p.fd) != 0) {
    ++p.round_fsync_failures;
    return false;
  }

  p.segment_written += total;
  p.segment_max_epoch = epoch;
  p.round_bytes = total;
  p.round_records = n_records;

  if (p.segment_written >= config_.segment_bytes) {
    {
      // Published under the lock so a concurrent truncation sees the
      // segment only once its byte range is final.
      std::lock_guard<std::mutex> g(p.segments_mu);
      p.closed_segments.push_back({p.segment_index, p.segment_max_epoch});
    }
    CloseSegment(p);
    OpenNextSegment(p);
    ++p.round_segments_opened;
  }
  return true;
}

uint64_t LogManager::TruncateSegmentsBefore(uint64_t cut_epoch) {
  if (crashed()) return 0;
  // One truncator at a time: the pop-unlink-repush below must not
  // interleave with another truncator or each stream's front order (and
  // the contiguous-suffix invariant) would be lost. Flusher rotation only
  // pushes at the back and is excluded only for the O(1) deque ops.
  std::lock_guard<std::mutex> tg(truncate_mu_);
  uint64_t deleted = 0;
  for (auto& pp : partitions_) {
    Partition& p = *pp;
    // Collect deletable entries under segments_mu_, run the filesystem
    // I/O outside it: rotation must never block behind unlink + dir fsync.
    std::vector<ClosedSegment> victims;
    {
      std::lock_guard<std::mutex> g(p.segments_mu);
      while (!p.closed_segments.empty() &&
             p.closed_segments.front().max_epoch <= cut_epoch) {
        victims.push_back(p.closed_segments.front());
        p.closed_segments.pop_front();
      }
    }
    size_t done = 0;
    for (; done < victims.size(); ++done) {
      const std::string path = SegmentPath(p.id, victims[done].index);
      if (::unlink(path.c_str()) != 0 && errno != ENOENT) break;
      ++deleted;
    }
    if (done < victims.size()) {
      // Unlink failure: put the survivors back at the front, in order, so
      // a later truncation pass retries them (the suffix stays contiguous).
      std::lock_guard<std::mutex> g(p.segments_mu);
      for (size_t j = victims.size(); j > done; --j) {
        p.closed_segments.push_front(victims[j - 1]);
      }
    }
  }
  if (deleted > 0) FsyncDir(config_.dir);
  return deleted;
}

std::string LogManager::SegmentPath(uint32_t partition,
                                    uint32_t index) const {
  char name[32];
  if (partitions_.size() <= 1) {
    std::snprintf(name, sizeof(name), "wal-%06u.log", index);
  } else {
    std::snprintf(name, sizeof(name), "wal-p%02u-%06u.log", partition,
                  index);
  }
  return config_.dir + "/" + name;
}

void LogManager::OpenNextSegment(Partition& p) {
  ++p.segment_index;
  const std::string path = SegmentPath(p.id, p.segment_index);
  p.fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  MV3C_CHECK(p.fd >= 0);
  const SegmentHeader h = MakeSegmentHeader();
  MV3C_CHECK(
      WriteFully(p.fd, reinterpret_cast<const uint8_t*>(&h), sizeof(h)));
  // Make the segment's directory entry durable: a crash right after
  // rotation must not lose the whole file.
  FsyncDir(config_.dir);
  p.segment_written = sizeof(h);
  p.segment_max_epoch = 0;
}

void LogManager::CloseSegment(Partition& p) {
  if (p.fd < 0) return;
  ::close(p.fd);
  p.fd = -1;
}

}  // namespace mv3c::wal
