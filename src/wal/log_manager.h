#ifndef MV3C_WAL_LOG_MANAGER_H_
#define MV3C_WAL_LOG_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/epoch_clock.h"
#include "obs/metrics.h"
#include "wal/log_buffer.h"

namespace mv3c::wal {

/// Durability configuration; passed to TransactionManager::EnableWal or a
/// standalone LogManager (SV engines).
struct WalConfig {
  /// How committers learn their transaction is durable.
  enum class Ack : uint8_t {
    /// WaitCommitDurable blocks until the commit's epoch is fsynced
    /// (group commit: the wait is one epoch interval, shared by every
    /// transaction in the epoch).
    kSync,
    /// WaitCommitDurable returns immediately; durability trails commit by
    /// up to one epoch (the Silo/"async-ack" regime benchmarks use to
    /// price the log out of the critical path).
    kAsync,
  };

  std::string dir;  // log directory; created if absent
  Ack ack = Ack::kSync;
  /// Sequencer wakeup cadence: an epoch is flushed at least this often
  /// (sync waiters additionally kick the sequencer immediately).
  uint32_t epoch_interval_us = 200;
  /// Segment rotation threshold (bytes written past it close the file).
  uint64_t segment_bytes = 64ull << 20;
  /// Number of per-core log partitions, each with its own buffers, segment
  /// stream (`wal-pPP-NNNNNN.log`), and drain+append+fsync flusher thread.
  /// 0 means "auto": MV3C_WAL_PARTITIONS from the environment, else 1.
  /// 1 reproduces the single-stream layout byte for byte (legacy
  /// `wal-NNNNNN.log` names, no flusher threads, no heartbeat blocks).
  uint32_t partitions = 0;
};

/// The epoch-based group-commit redo log (Silo-style, DESIGN §5f; the
/// partitioned protocol is §5i): committers serialize their final write
/// set into per-worker LogBuffers (see log_mvcc.h / log_sv.h), each bound
/// to one partition; a sequencer thread runs one *epoch* per round — bump
/// the epoch counter, then have every partition drain its buffers, append
/// the batch as one CRC-framed block in its own stream, and fsync, all in
/// parallel — and publishes the round's epoch as durable once EVERY
/// partition's fsync returned (durable epoch = the min over partitions).
/// Transactions wait on their epoch tag (sync ack) or proceed immediately
/// (async ack). With partitions=1 the sequencer flushes inline and the
/// log is the original single-writer, single-stream layout.
///
/// Idle rounds (every buffer verifiably empty, no flush forced) advance
/// the durable epoch to Current()-1 without bumping the clock or touching
/// the disk: the emptiness probe happens after the Current() read, so any
/// append it missed is coherence-ordered after it and carries a tag ≥
/// Current() — nothing tagged ≤ Current()-1 can be staged. This keeps a
/// quiet system from burning the bounded commit-TID epoch field at the
/// flush cadence (DESIGN §5h).
///
/// Lifecycle: the sequencer (and, for partitions>1, the flushers) start in
/// the constructor and are joined by Stop()/the destructor after a final
/// flush. TransactionManager declares its LogManager as the last member,
/// so the threads are gone before the metrics registry or the arena tears
/// down.
///
/// Failure model: any partition's write/fsync failure — injected
/// (kWalShortWrite, kWalCrashAfterAppend, kWalFsyncFail failpoints) or
/// real — freezes the WHOLE log in a `crashed` state: durable_epoch stops
/// advancing, waiters are released with `false`, nothing more reaches the
/// disk. That mimics a process crash from the log's point of view and is
/// what the crash-chaos tests recover from.
class LogManager {
 public:
  /// `epoch_clock` (optional) shares the epoch counter with the MVCC
  /// substrate: flush rounds advance the same clock commit-TID epoch
  /// components are read from (DESIGN §5h), so a commit's timestamp epoch
  /// never exceeds its redo records' epoch tag. Standalone logs (the SV
  /// engines) pass nullptr and get a private clock. The clock must start
  /// at or above 1 and only ever advance (EpochClock guarantees both);
  /// external AdvanceTo jumps are safe — the next flush round drains under
  /// the jumped value, which still covers every earlier tag.
  explicit LogManager(const WalConfig& config,
                      EpochClock* epoch_clock = nullptr);
  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;
  ~LogManager();

  /// No partition assignment requested: CreateBuffer spreads buffers
  /// round-robin (per-worker cached buffers land on distinct partitions).
  static constexpr uint32_t kNoLane = ~0u;

  /// Creates a per-worker staging buffer (manager-owned; stable address).
  /// Executors cache one lazily per transaction context. `lane_hint` binds
  /// the buffer to partition `lane_hint % partitions` — the MVCC bridge
  /// passes the committing thread's TID lane so log partitioning follows
  /// the §5h per-lane commit-TID layout.
  LogBuffer* CreateBuffer(uint32_t lane_hint = kNoLane);

  const WalConfig& config() const { return config_; }
  uint32_t partition_count() const {
    return static_cast<uint32_t>(partitions_.size());
  }

  uint64_t current_epoch() const { return clock_->Current(); }
  uint64_t durable_epoch() const {
    return durable_epoch_.load(std::memory_order_acquire);
  }

  /// Commit-path wait honoring the ack mode: blocks until `epoch` is
  /// durable under kSync, returns immediately under kAsync. `epoch` 0
  /// (nothing logged) is trivially durable. Returns false iff the log
  /// crashed before the epoch became durable. The only caller counted by
  /// the wal_sync_waits metric.
  bool WaitCommitDurable(uint64_t epoch);

  /// Blocks until `epoch` is durable regardless of ack mode (tests,
  /// shutdown barriers; not counted as a commit-path sync wait). Returns
  /// false iff the log crashed first. A waiter racing Stop() is released
  /// only after the final round published — never spuriously early.
  bool WaitDurable(uint64_t epoch);

  /// Forces everything appended so far onto disk before returning.
  /// Returns false iff the log crashed.
  bool FlushNow();

  /// Test hook: drops everything not yet flushed and freezes the log, as
  /// a crash between buffer append and writer drain would. Idempotent.
  void SimulateCrash();

  /// Final flush + thread joins + segment close. Idempotent; called by
  /// the destructor. No concurrent appends may be in flight.
  void Stop();

  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  /// Deletes closed segment files whose every block has epoch <=
  /// `cut_epoch` (the checkpointer's truncation hook: those epochs are
  /// subsumed by a published checkpoint), independently per partition.
  /// Deletion runs oldest-first and stops at the first segment that must
  /// stay, so each stream's remaining files are always a contiguous
  /// suffix; open segments are never touched. The filesystem I/O runs
  /// OUTSIDE segments_mu_, so flusher rotation never blocks behind
  /// checkpointer unlinks. Safe to call from any thread; no-op on a
  /// crashed log (a frozen log's tail diagnosis must not be disturbed).
  /// Returns the number of segments deleted.
  uint64_t TruncateSegmentsBefore(uint64_t cut_epoch);

  /// The log's own counters (wal_bytes, wal_records, epochs_flushed,
  /// group_commit_size, wal_sync_waits, wal_segments, wal_flush_failures)
  /// and the kLogSerialize/kLogFlush phase histograms. Benchmarks merge
  /// this snapshot next to the engine registries.
  obs::MetricsRegistry& metrics() { return metrics_; }

 private:
  /// Closed segments still on disk, oldest first, with the largest block
  /// epoch each contains — what TruncateSegmentsBefore consults.
  struct ClosedSegment {
    uint32_t index;
    uint64_t max_epoch;
  };

  /// One log partition: its buffer slice, its segment stream, and the
  /// per-round scratch + stats its flusher fills for the sequencer.
  struct Partition {
    uint32_t id = 0;

    // Buffer registry slice: append-only; LogBuffer addresses must stay
    // stable.
    std::mutex buffers_mu;
    std::deque<std::unique_ptr<LogBuffer>> buffers;

    // Segment file state (flusher-owned between rounds; the constructor
    // and Stop/crash teardown touch it only while no round is running).
    int fd = -1;
    uint32_t segment_index = 0;
    uint64_t segment_written = 0;
    uint64_t segment_max_epoch = 0;  // largest block epoch in the open file

    std::mutex segments_mu;
    std::deque<ClosedSegment> closed_segments;

    std::vector<uint8_t> payload;  // drain concat scratch, reused
    std::vector<uint8_t> scratch;  // swap target for LogBuffer::Drain

    // Per-round results, read by the sequencer after the round barrier
    // (so all counter folding stays single-threaded).
    uint64_t round_bytes = 0;
    uint32_t round_records = 0;
    uint32_t round_segments_opened = 0;
    uint32_t round_fsync_failures = 0;
  };

  void SequencerLoop();
  void FlusherLoop(Partition* p);
  /// Runs one epoch round end to end: idle-skip, or bump + dispatch +
  /// collect + publish. Returns false on (injected or real) I/O failure —
  /// the caller freezes the log.
  bool FlushRound(bool forced);
  /// Drain + append + fsync for one partition under `epoch`. Writes a
  /// heartbeat block when the partition has nothing staged but some other
  /// partition does (partitions>1 only; `must_write_block`).
  bool FlushPartition(Partition& p, uint64_t epoch, bool must_write_block);
  /// Dispatches `epoch` to every flusher and waits for all of them.
  bool RunPartitionedRound(uint64_t epoch);
  /// Signals flushers_exit_ and joins the flusher threads. Idempotent.
  void JoinFlushers();
  void OpenNextSegment(Partition& p);
  void CloseSegment(Partition& p);
  std::string SegmentPath(uint32_t partition, uint32_t index) const;
  /// Marks the log crashed, closes every segment, and releases every
  /// waiter. Joins the flushers first. Caller must NOT hold mu_.
  void EnterCrashedState();
  bool WaitDurableInternal(uint64_t epoch, bool commit_wait);

  WalConfig config_;

  // Epoch protocol state (see LogBuffer's header comment). The epoch
  // counter lives in a clock that may be shared with the MVCC substrate;
  // durability bookkeeping stays private to the log.
  EpochClock own_clock_;           // used when no shared clock is passed
  EpochClock* clock_ = nullptr;    // the clock in effect (never null)
  std::atomic<uint64_t> durable_epoch_{0};
  std::atomic<bool> crashed_{false};

  std::vector<std::unique_ptr<Partition>> partitions_;
  std::atomic<uint32_t> next_partition_rr_{0};  // CreateBuffer round-robin

  // Sequencer coordination + waiter wakeup.
  std::mutex mu_;
  std::condition_variable writer_cv_;   // wakes the sequencer
  std::condition_variable durable_cv_;  // wakes WaitDurable callers
  bool stop_requested_ = false;
  bool flush_requested_ = false;
  bool crash_requested_ = false;
  /// Set (under mu_) only AFTER the final stop-path round has published,
  /// so a WaitDurable racing Stop() never gives up on an epoch the final
  /// flush does make durable.
  bool stopped_ = false;
  std::thread sequencer_;

  // Round barrier between the sequencer and the flushers (partitions>1).
  std::mutex round_mu_;
  std::condition_variable round_cv_;       // flushers wait for work
  std::condition_variable round_done_cv_;  // sequencer waits for completion
  uint64_t round_epoch_ = 0;               // epoch being flushed; 0 = none
  uint32_t round_pending_ = 0;
  bool round_failed_ = false;
  bool flushers_exit_ = false;
  std::vector<std::thread> flushers_;

  /// Serializes truncators so the pop-unlink-repush dance in
  /// TruncateSegmentsBefore preserves each stream's front order.
  std::mutex truncate_mu_;

  // Counters (see metrics()). Folded by the sequencer after each round
  // from the partitions' per-round results, except wal_sync_waits_, which
  // is bumped under mu_ by waiting committers.
  uint64_t wal_bytes_ = 0;
  uint64_t wal_records_ = 0;
  uint64_t epochs_flushed_ = 0;
  uint64_t group_commit_size_ = 0;  // largest single epoch, in records
  uint64_t wal_sync_waits_ = 0;
  uint64_t wal_segments_ = 0;
  uint64_t wal_flush_failures_ = 0;

  obs::MetricsRegistry metrics_;  // synchronized: writer + committers
};

}  // namespace mv3c::wal

#endif  // MV3C_WAL_LOG_MANAGER_H_
