#ifndef MV3C_WAL_LOG_MANAGER_H_
#define MV3C_WAL_LOG_MANAGER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/epoch_clock.h"
#include "obs/metrics.h"
#include "wal/log_buffer.h"

namespace mv3c::wal {

/// Durability configuration; passed to TransactionManager::EnableWal or a
/// standalone LogManager (SV engines).
struct WalConfig {
  /// How committers learn their transaction is durable.
  enum class Ack : uint8_t {
    /// WaitCommitDurable blocks until the commit's epoch is fsynced
    /// (group commit: the wait is one epoch interval, shared by every
    /// transaction in the epoch).
    kSync,
    /// WaitCommitDurable returns immediately; durability trails commit by
    /// up to one epoch (the Silo/"async-ack" regime benchmarks use to
    /// price the log out of the critical path).
    kAsync,
  };

  std::string dir;  // log directory; created if absent
  Ack ack = Ack::kSync;
  /// Writer-thread wakeup cadence: an epoch is flushed at least this
  /// often (sync waiters additionally kick the writer immediately).
  uint32_t epoch_interval_us = 200;
  /// Segment rotation threshold (bytes written past it close the file).
  uint64_t segment_bytes = 64ull << 20;
};

/// The epoch-based group-commit redo log (Silo-style, DESIGN §5f):
/// committers serialize their final write set into per-worker LogBuffers
/// (see log_mvcc.h / log_sv.h); a single writer thread runs one *epoch*
/// per round — bump the epoch counter, drain every buffer, append the
/// batch as one CRC-framed block, fsync once — and publishes the round's
/// epoch as durable. Transactions wait on their epoch tag (sync ack) or
/// proceed immediately (async ack).
///
/// Lifecycle: the writer thread starts in the constructor and is joined by
/// Stop()/the destructor after a final flush. TransactionManager declares
/// its LogManager as the last member, so the thread is gone before the
/// metrics registry or the arena tears down.
///
/// Failure model: any write/fsync failure — injected (kWalShortWrite,
/// kWalCrashAfterAppend, kWalFsyncFail failpoints) or real — freezes the
/// log in a `crashed` state: durable_epoch stops advancing, waiters are
/// released with `false`, nothing more reaches the disk. That mimics a
/// process crash from the log's point of view and is what the
/// crash-chaos tests recover from.
class LogManager {
 public:
  /// `epoch_clock` (optional) shares the epoch counter with the MVCC
  /// substrate: flush rounds advance the same clock commit-TID epoch
  /// components are read from (DESIGN §5h), so a commit's timestamp epoch
  /// never exceeds its redo records' epoch tag. Standalone logs (the SV
  /// engines) pass nullptr and get a private clock. The clock must start
  /// at or above 1 and only ever advance (EpochClock guarantees both);
  /// external AdvanceTo jumps are safe — the next flush round drains under
  /// the jumped value, which still covers every earlier tag.
  explicit LogManager(const WalConfig& config,
                      EpochClock* epoch_clock = nullptr);
  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;
  ~LogManager();

  /// Creates a per-worker staging buffer (manager-owned; stable address).
  /// Executors cache one lazily per transaction context.
  LogBuffer* CreateBuffer();

  const WalConfig& config() const { return config_; }

  uint64_t current_epoch() const { return clock_->Current(); }
  uint64_t durable_epoch() const {
    return durable_epoch_.load(std::memory_order_acquire);
  }

  /// Commit-path wait honoring the ack mode: blocks until `epoch` is
  /// durable under kSync, returns immediately under kAsync. `epoch` 0
  /// (nothing logged) is trivially durable. Returns false iff the log
  /// crashed before the epoch became durable.
  bool WaitCommitDurable(uint64_t epoch);

  /// Blocks until `epoch` is durable regardless of ack mode (tests,
  /// shutdown barriers). Returns false iff the log crashed first.
  bool WaitDurable(uint64_t epoch);

  /// Forces everything appended so far onto disk before returning.
  /// Returns false iff the log crashed.
  bool FlushNow();

  /// Test hook: drops everything not yet flushed and freezes the log, as
  /// a crash between buffer append and writer drain would. Idempotent.
  void SimulateCrash();

  /// Final flush + writer join + segment close. Idempotent; called by the
  /// destructor. No concurrent appends may be in flight.
  void Stop();

  bool crashed() const { return crashed_.load(std::memory_order_acquire); }

  /// Deletes closed segment files whose every block has epoch <=
  /// `cut_epoch` (the checkpointer's truncation hook: those epochs are
  /// subsumed by a published checkpoint). Deletion runs oldest-first and
  /// stops at the first segment that must stay, so the remaining files are
  /// always a contiguous suffix; the open segment is never touched. Safe
  /// to call from any thread; no-op on a crashed log (a frozen log's tail
  /// diagnosis must not be disturbed). Returns the number of segments
  /// deleted.
  uint64_t TruncateSegmentsBefore(uint64_t cut_epoch);

  /// The log's own counters (wal_bytes, wal_records, epochs_flushed,
  /// group_commit_size, wal_sync_waits, wal_segments, wal_flush_failures)
  /// and the kLogSerialize/kLogFlush phase histograms. Benchmarks merge
  /// this snapshot next to the engine registries.
  obs::MetricsRegistry& metrics() { return metrics_; }

 private:
  void WriterLoop();
  /// Runs one epoch round: drain, append, fsync, publish. Returns false
  /// on (injected or real) I/O failure — the caller freezes the log.
  bool FlushRound();
  void OpenNextSegment();
  void CloseSegment();
  /// Marks the log crashed and releases every waiter. Caller must NOT
  /// hold mu_.
  void EnterCrashedState();

  WalConfig config_;

  // Epoch protocol state (see LogBuffer's header comment). The epoch
  // counter lives in a clock that may be shared with the MVCC substrate;
  // durability bookkeeping stays private to the log.
  EpochClock own_clock_;           // used when no shared clock is passed
  EpochClock* clock_ = nullptr;    // the clock in effect (never null)
  std::atomic<uint64_t> durable_epoch_{0};
  std::atomic<bool> crashed_{false};

  // Buffer registry: append-only; LogBuffer addresses must stay stable.
  std::mutex buffers_mu_;
  std::deque<std::unique_ptr<LogBuffer>> buffers_;

  // Writer-thread coordination.
  std::mutex mu_;
  std::condition_variable writer_cv_;   // wakes the writer
  std::condition_variable durable_cv_;  // wakes WaitDurable callers
  bool stop_requested_ = false;
  bool flush_requested_ = false;
  bool crash_requested_ = false;
  std::thread writer_;

  // Segment file state (writer thread only after construction).
  int fd_ = -1;
  uint32_t segment_index_ = 0;
  uint64_t segment_written_ = 0;
  uint64_t segment_max_epoch_ = 0;  // largest block epoch in the open file

  /// Closed segments still on disk, oldest first, with the largest block
  /// epoch each contains — what TruncateSegmentsBefore consults. Writer
  /// appends at rotation; the checkpointer thread pops at truncation.
  struct ClosedSegment {
    uint32_t index;
    uint64_t max_epoch;
  };
  std::mutex segments_mu_;
  std::deque<ClosedSegment> closed_segments_;
  std::vector<uint8_t> payload_;  // drain scratch, reused every round
  std::vector<uint8_t> block_;    // header+payload assembly, reused

  // Counters (see metrics()). Writer-thread-owned except wal_sync_waits_,
  // which is bumped under mu_ by waiting committers.
  uint64_t wal_bytes_ = 0;
  uint64_t wal_records_ = 0;
  uint64_t epochs_flushed_ = 0;
  uint64_t group_commit_size_ = 0;  // largest single epoch, in records
  uint64_t wal_sync_waits_ = 0;
  uint64_t wal_segments_ = 0;
  uint64_t wal_flush_failures_ = 0;

  obs::MetricsRegistry metrics_;  // synchronized: writer + committers
};

}  // namespace mv3c::wal

#endif  // MV3C_WAL_LOG_MANAGER_H_
