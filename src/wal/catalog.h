#ifndef MV3C_WAL_CATALOG_H_
#define MV3C_WAL_CATALOG_H_

#if !defined(MV3C_WAL_ENABLED)
#error "wal/catalog.h requires -DMV3C_WAL=ON (gate the include site)"
#endif

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "mvcc/transaction_manager.h"
#include "mvcc/version.h"
#include "sv/sv_table.h"
#include "wal/recovery.h"
#include "wal/wal_format.h"

namespace mv3c::wal {

/// Maps stable table ids to live tables, in both directions: registration
/// stamps the table's wal_id (turning its commits into redo records), and
/// Recover() replays a log directory's records back into the registered
/// tables. The same Catalog value (same ids, same registration order) must
/// be constructed before the workload runs and before recovery — the id is
/// the only identity the log carries.
///
/// Replay is single-threaded and non-transactional: ReplayLogDir hands
/// records over sorted by commit_ts, and each binding applies them with
/// the tables' load paths (version Push for MVCC, LoadRow/LoadTombstone
/// for SV). Applying in ascending commit order keeps MVCC chains
/// head-newest and makes SV last-write-wins trivially correct.
class Catalog {
 public:
  /// Registers an MVCC table. `mgr` owns the VersionArena that replayed
  /// versions are allocated from, and gets its commit clock advanced past
  /// the replayed timestamps at the end of Recover() so post-recovery
  /// transactions order after the replayed history.
  template <typename TableT>
  void RegisterMvcc(uint32_t id, TableT* table, TransactionManager* mgr) {
    static_assert(TableT::kWalEncodable,
                  "WAL-registered tables need trivially copyable key/row");
    using K = typename TableT::Key;
    using Row = typename TableT::Row;
    // No padding bits allowed: the log and the recovery-equivalence digest
    // are byte-level, but struct assignment is free to skip padding, so a
    // padded type would not round-trip deterministically. Add explicit
    // zero-initialized `pad_` members to the struct to satisfy this.
    static_assert(std::has_unique_object_representations_v<K> &&
                      std::has_unique_object_representations_v<Row>,
                  "WAL-registered key/row types must have no padding bytes");
    MV3C_CHECK(id != TableBase::kNoWalId);
    table->set_wal_id(id);
    AddManager(mgr);
    AddBinding(id, [this, table, mgr](const RecordView& r) {
      MV3C_CHECK(r.header.key_bytes == sizeof(K));
      K key;
      std::memcpy(&key, r.key, sizeof(K));
      typename TableT::Object* obj = table->GetOrCreate(key);
      Row row{};
      if (r.header.type == static_cast<uint8_t>(RecordType::kUpsert)) {
        MV3C_CHECK(r.header.val_bytes == sizeof(Row));
        std::memcpy(&row, r.val, sizeof(Row));
      } else {
        MV3C_CHECK(r.header.val_bytes == 0);
      }
      auto* v = mgr->arena().Create<Version<Row>>(table, obj,
                                                  r.header.commit_ts, row);
      v->set_modified_columns(ColumnMask(r.header.column_mask));
      v->set_tombstone(r.header.type ==
                       static_cast<uint8_t>(RecordType::kDelete));
      v->set_is_insert((r.header.flags & kFlagInsert) != 0);
      // kAllowMultiple skips the fail-fast conflict scan (there are no
      // concurrent writers during replay); ascending commit_ts keeps the
      // chain ordered newest-first.
      MV3C_CHECK(obj->Push(v, WwPolicy::kAllowMultiple, /*start_ts=*/0,
                           /*txn_id=*/0) == DataObjectBase::PushResult::kOk);
      if (r.header.commit_ts > max_mvcc_ts_) {
        max_mvcc_ts_ = r.header.commit_ts;
      }
    });
  }

  /// Registers a single-version table (OCC/SILO). Replay uses the
  /// non-transactional load paths; commit_ts is the Silo-style TID.
  template <typename SvTableT>
  void RegisterSv(uint32_t id, SvTableT* table) {
    using K = typename SvTableT::Key;
    using Row = typename SvTableT::Row;
    // Same no-padding contract as RegisterMvcc (see the comment there).
    static_assert(std::has_unique_object_representations_v<K> &&
                      std::has_unique_object_representations_v<Row>,
                  "WAL-registered key/row types must have no padding bytes");
    MV3C_CHECK(id != 0);
    table->set_wal_id(id);
    AddBinding(id, [table](const RecordView& r) {
      MV3C_CHECK(r.header.key_bytes == sizeof(K));
      K key;
      std::memcpy(&key, r.key, sizeof(K));
      if (r.header.type == static_cast<uint8_t>(RecordType::kUpsert)) {
        MV3C_CHECK(r.header.val_bytes == sizeof(Row));
        Row row;
        std::memcpy(&row, r.val, sizeof(Row));
        table->LoadRow(key, row, r.header.commit_ts);
      } else {
        table->LoadTombstone(key, r.header.commit_ts);
      }
    });
  }

  /// Applies one record; false means the table id is unknown to this
  /// catalog (ReplayLogDir counts those and continues).
  bool Apply(const RecordView& r) {
    auto it = bindings_.find(r.header.table_id);
    if (it == bindings_.end()) return false;
    it->second(r);
    return true;
  }

  /// Replays every durable record under `dir` into the registered tables,
  /// then advances each registered TransactionManager's clock past the
  /// largest replayed MVCC commit timestamp.
  RecoveryReport Recover(const std::string& dir) {
    RecoveryReport report = ReplayLogDir(
        dir, [this](const RecordView& r) { return Apply(r); });
    for (TransactionManager* mgr : managers_) {
      mgr->AdvanceClockTo(max_mvcc_ts_);
    }
    return report;
  }

 private:
  void AddBinding(uint32_t id, std::function<void(const RecordView&)> fn) {
    MV3C_CHECK(bindings_.emplace(id, std::move(fn)).second);  // unique ids
  }

  void AddManager(TransactionManager* mgr) {
    for (TransactionManager* m : managers_) {
      if (m == mgr) return;
    }
    managers_.push_back(mgr);
  }

  std::unordered_map<uint32_t, std::function<void(const RecordView&)>>
      bindings_;
  std::vector<TransactionManager*> managers_;
  Timestamp max_mvcc_ts_ = 0;
};

}  // namespace mv3c::wal

#endif  // MV3C_WAL_CATALOG_H_
