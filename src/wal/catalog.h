#ifndef MV3C_WAL_CATALOG_H_
#define MV3C_WAL_CATALOG_H_

#if !defined(MV3C_WAL_ENABLED)
#error "wal/catalog.h requires -DMV3C_WAL=ON (gate the include site)"
#endif

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <thread>
#include <type_traits>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/macros.h"
#include "mvcc/transaction_manager.h"
#include "mvcc/version.h"
#include "sv/sv_table.h"
#include "wal/checkpoint.h"
#include "wal/recovery.h"
#include "wal/wal_format.h"

namespace mv3c::wal {

/// Maps stable table ids to live tables, in both directions: registration
/// stamps the table's wal_id (turning its commits into redo records), and
/// Recover() replays a log directory's records back into the registered
/// tables. The same Catalog value (same ids, same registration order) must
/// be constructed before the workload runs and before recovery — the id is
/// the only identity the log carries.
///
/// Registration also builds the type-erased checkpoint closures: a scan
/// (streaming the table's snapshot state as WAL-framed records) and the
/// shared load path — checkpoint segments reuse the WAL record format, so
/// the SAME binding that replays a log record loads a checkpoint record.
/// That is how the checkpointer (wal::Checkpointer, below both storage
/// engines in the link graph) stays ignorant of MVCC and SV table types.
///
/// Replay is non-transactional: ReplayLogDir hands records over sorted by
/// commit_ts — merging the streams of a partitioned log (epoch order
/// across streams, timestamp order within an epoch) behind that one
/// callback, capped at the durable cut (recovery.h) — and each binding
/// applies them with the tables' load paths
/// (version Push for MVCC, if-newer LoadRow/LoadTombstone for SV).
/// Applying in ascending commit order keeps MVCC chains head-newest and
/// makes SV last-write-wins trivially correct. Checkpoint loading is
/// parallel per table — bindings of distinct tables touch disjoint
/// indexes/chains, and the shared commit-clock watermark is an atomic.
class Catalog {
 public:
  /// Registers an MVCC table. `mgr` owns the VersionArena that replayed
  /// versions are allocated from, and gets its commit clock advanced past
  /// the replayed timestamps at the end of Recover() so post-recovery
  /// transactions order after the replayed history.
  template <typename TableT>
  void RegisterMvcc(uint32_t id, TableT* table, TransactionManager* mgr) {
    static_assert(TableT::kWalEncodable,
                  "WAL-registered tables need trivially copyable key/row");
    using K = typename TableT::Key;
    using Row = typename TableT::Row;
    // No padding bits allowed: the log and the recovery-equivalence digest
    // are byte-level, but struct assignment is free to skip padding, so a
    // padded type would not round-trip deterministically. Add explicit
    // zero-initialized `pad_` members to the struct to satisfy this.
    static_assert(std::has_unique_object_representations_v<K> &&
                      std::has_unique_object_representations_v<Row>,
                  "WAL-registered key/row types must have no padding bytes");
    MV3C_CHECK(id != TableBase::kNoWalId);
    table->set_wal_id(id);
    AddManager(mgr);
    AddBinding(id, [this, table, mgr](const RecordView& r) {
      MV3C_CHECK(r.header.key_bytes == sizeof(K));
      K key;
      std::memcpy(&key, r.key, sizeof(K));
      typename TableT::Object* obj = table->GetOrCreate(key);
      Row row{};
      if (r.header.type == static_cast<uint8_t>(RecordType::kUpsert)) {
        MV3C_CHECK(r.header.val_bytes == sizeof(Row));
        std::memcpy(&row, r.val, sizeof(Row));
      } else {
        MV3C_CHECK(r.header.val_bytes == 0);
      }
      auto* v = mgr->arena().Create<Version<Row>>(table, obj,
                                                  r.header.commit_ts, row);
      v->set_modified_columns(ColumnMask(r.header.column_mask));
      v->set_tombstone(r.header.type ==
                       static_cast<uint8_t>(RecordType::kDelete));
      v->set_is_insert((r.header.flags & kFlagInsert) != 0);
      // kAllowMultiple skips the fail-fast conflict scan (there are no
      // concurrent writers of THIS table during replay — checkpoint
      // loading parallelizes across tables, never within one); ascending
      // commit_ts keeps the chain ordered newest-first.
      MV3C_CHECK(obj->Push(v, WwPolicy::kAllowMultiple, /*start_ts=*/0,
                           /*txn_id=*/0) == DataObjectBase::PushResult::kOk);
      NoteMvccTs(r.header.commit_ts);
    });
    // Checkpoint scan: the newest committed version visible at the pinned
    // snapshot timestamp, per object — exactly what FindVisible(scan_ts)
    // returns for a reader that began at scan_ts. Tombstones are captured
    // too: dropping them would let the recovered commit clock fall below a
    // deletion's timestamp and a later commit could push an older-ts
    // version onto the chain head.
    AddCkptSource(
        id, CkptTableKind::kMvcc, mgr,
        [table](uint64_t scan_ts, const CheckpointSink& sink) {
          table->ForEachObject([&](const typename TableT::Object& obj) {
            const VersionBase* v = obj.FindVisible(scan_ts, /*txn_id=*/0);
            if (v == nullptr) return;  // never committed before the pin
            const bool del = v->tombstone();
            RecordHeader h{};
            h.table_id = table->wal_id();
            h.commit_ts = v->ts();
            h.column_mask = ~0ULL;  // full row image
            h.key_bytes = sizeof(K);
            h.val_bytes = del ? 0 : sizeof(Row);
            h.type = static_cast<uint8_t>(del ? RecordType::kDelete
                                              : RecordType::kUpsert);
            // The loaded version is each chain's base: no earlier
            // committed version exists in the recovered image.
            h.flags = kFlagInsert;
            sink(h, &obj.key(),
                 del ? nullptr
                     : &static_cast<const Version<Row>&>(*v).data());
          });
        });
  }

  /// Registers a single-version table (OCC/SILO). Replay uses the
  /// non-transactional if-newer load paths; commit_ts is the Silo-style
  /// TID. If-newer (instead of unconditional last-write-wins) makes the
  /// same binding correct for checkpoint-based recovery, where the WAL
  /// suffix can replay commits the fuzzy scan already captured; for
  /// genesis replay the ascending-TID sort makes the two equivalent.
  template <typename SvTableT>
  void RegisterSv(uint32_t id, SvTableT* table) {
    using K = typename SvTableT::Key;
    using Row = typename SvTableT::Row;
    // Same no-padding contract as RegisterMvcc (see the comment there).
    static_assert(std::has_unique_object_representations_v<K> &&
                      std::has_unique_object_representations_v<Row>,
                  "WAL-registered key/row types must have no padding bytes");
    MV3C_CHECK(id != 0);
    table->set_wal_id(id);
    AddBinding(id, [table](const RecordView& r) {
      MV3C_CHECK(r.header.key_bytes == sizeof(K));
      K key;
      std::memcpy(&key, r.key, sizeof(K));
      if (r.header.type == static_cast<uint8_t>(RecordType::kUpsert)) {
        MV3C_CHECK(r.header.val_bytes == sizeof(Row));
        Row row;
        std::memcpy(&row, r.val, sizeof(Row));
        table->LoadRowIfNewer(key, row, r.header.commit_ts);
      } else {
        table->LoadTombstoneIfNewer(key, r.header.commit_ts);
      }
    });
    // Checkpoint scan: a fuzzy per-record pass through the optimistic read
    // protocol. Each image carries the TID it was captured at; the
    // if-newer load path reconciles it against the replayed WAL suffix.
    AddCkptSource(
        id, CkptTableKind::kSv, /*mgr=*/nullptr,
        [table](uint64_t /*scan_ts*/, const CheckpointSink& sink) {
          table->ForEachRecord([&](const K& key,
                                   const sv::Record<K, Row>& rec) {
            Row row;
            const uint64_t w = rec.ReadStable(&row);
            if ((w & sv::kTidMask) == 0) return;  // never committed
            const bool del = sv::IsAbsent(w);
            RecordHeader h{};
            h.table_id = table->wal_id();
            h.commit_ts = w & sv::kTidMask;
            h.column_mask = ~0ULL;
            h.key_bytes = sizeof(K);
            h.val_bytes = del ? 0 : sizeof(Row);
            h.type = static_cast<uint8_t>(del ? RecordType::kDelete
                                              : RecordType::kUpsert);
            sink(h, &key, del ? nullptr : &row);
          });
        });
  }

  /// Applies one record; false means the table id is unknown to this
  /// catalog (ReplayLogDir counts those and continues).
  bool Apply(const RecordView& r) {
    auto it = bindings_.find(r.header.table_id);
    if (it == bindings_.end()) return false;
    it->second(r);
    return true;
  }

  /// Opens one checkpoint round's sources: pins a snapshot on every
  /// registered TransactionManager (the Checkpointer calls this strictly
  /// AFTER reading the durable epoch — see wal::Checkpointer) and returns
  /// the per-table scans with their scan timestamps fixed. The returned
  /// release hook drops every pin; until it runs, the GC watermark cannot
  /// pass any scan_ts.
  CheckpointSources OpenCheckpointSources() {
    struct PinEntry {
      TransactionManager* mgr;
      TransactionManager::SnapshotPin pin;
    };
    auto pins = std::make_shared<std::vector<PinEntry>>();
    for (TransactionManager* mgr : managers_) {
      pins->push_back({mgr, mgr->PinSnapshot()});
    }
    CheckpointSources out;
    for (const CkptSourceBinding& b : ckpt_sources_) {
      uint64_t scan_ts = 0;
      if (b.mgr != nullptr) {
        for (const PinEntry& p : *pins) {
          if (p.mgr == b.mgr) {
            scan_ts = p.pin.ts;
            break;
          }
        }
      }
      CheckpointTableSource src;
      src.table_id = b.table_id;
      src.kind = b.kind;
      src.scan_ts = scan_ts;
      src.scan = [scan = b.scan, scan_ts](const CheckpointSink& sink) {
        scan(scan_ts, sink);
      };
      out.tables.push_back(std::move(src));
    }
    out.release = [pins] {
      for (const PinEntry& p : *pins) p.mgr->ReleaseSnapshot(p.pin);
      pins->clear();
    };
    return out;
  }

  /// Convenience for constructing a Checkpointer over this catalog.
  std::function<CheckpointSources()> CheckpointSourceProvider() {
    return [this] { return OpenCheckpointSources(); };
  }

  /// Genesis recovery: replays every durable record under `dir` into the
  /// registered tables, then advances each registered TransactionManager's
  /// clock past the largest replayed MVCC commit timestamp. Ignores
  /// checkpoints — recovery time grows with history length; prefer
  /// RecoverWithCheckpoints once a checkpointer runs.
  RecoveryReport Recover(const std::string& dir) {
    RecoveryReport report = ReplayLogDir(
        dir, [this](const RecordView& r) { return Apply(r); });
    AdvanceClocks();
    std::fprintf(stderr, "%s\n", report.Summary().c_str());
    return report;
  }

  /// Two-phase recovery (DESIGN §5g): load the newest fully-valid
  /// checkpoint with per-table parallel workers, then replay only the WAL
  /// suffix past its cut epoch — recovery time is bounded by the
  /// checkpoint interval, not history length. A damaged manifest or
  /// segment (CRC, torn write, wrong length) fails the WHOLE checkpoint
  /// before any record is applied, and recovery falls back to the previous
  /// manifest, and ultimately to genesis replay.
  ///
  /// `threads` caps the per-table load workers (0 = hardware concurrency).
  RecoveryReport RecoverWithCheckpoints(const std::string& dir,
                                        unsigned threads = 0) {
    RecoveryReport report;

    struct LoadedTable {
      ManifestTableEntry entry{};
      std::vector<uint8_t> buf;
      std::vector<RecordView> records;
      bool ok = false;
    };
    Manifest chosen;
    std::vector<LoadedTable> loaded;
    bool have_checkpoint = false;

    const std::vector<uint64_t> seqs = ListManifestSeqs(dir);
    for (auto it = seqs.rbegin(); it != seqs.rend(); ++it) {
      Manifest m;
      if (!ReadManifest(dir, *it, &m)) {
        ++report.manifests_skipped;
        continue;
      }
      // Phase 1a: validate EVERY table segment completely before applying
      // a single record, so a fallback decision never leaves the tables
      // half-loaded. Validation is embarrassingly parallel per table.
      std::vector<LoadedTable> cand(m.tables.size());
      RunPerTable(m.tables.size(), threads, [&](size_t i) {
        cand[i].entry = m.tables[i];
        cand[i].ok = LoadCkptSegment(dir, *it, m.tables[i], &cand[i].buf,
                                     &cand[i].records);
      });
      bool all_ok = true;
      for (const LoadedTable& t : cand) all_ok = all_ok && t.ok;
      if (!all_ok) {
        ++report.manifests_skipped;
        continue;
      }
      chosen = m;
      loaded = std::move(cand);
      have_checkpoint = true;
      break;
    }

    std::unordered_map<uint32_t, uint64_t> mvcc_floor;
    ReplayOptions opts;
    if (have_checkpoint) {
      // Phase 1b: apply, parallel per table. Bindings of distinct tables
      // are disjoint (own index, own chains; the SV load paths and the
      // MVCC arena/commit-clock watermark are thread-safe).
      std::atomic<uint64_t> applied{0};
      std::atomic<uint64_t> unknown{0};
      RunPerTable(loaded.size(), threads, [&](size_t i) {
        const LoadedTable& t = loaded[i];
        auto binding = bindings_.find(t.entry.table_id);
        if (binding == bindings_.end()) {
          unknown.fetch_add(t.records.size(), std::memory_order_relaxed);
          return;
        }
        for (const RecordView& r : t.records) binding->second(r);
        applied.fetch_add(t.records.size(), std::memory_order_relaxed);
      });
      report.used_checkpoint = true;
      report.checkpoint_seq = chosen.header.checkpoint_seq;
      report.checkpoint_ts = chosen.header.checkpoint_ts;
      report.cut_epoch = chosen.header.cut_epoch;
      report.checkpoint_records_loaded =
          applied.load(std::memory_order_relaxed);
      report.checkpoint_tables_loaded =
          static_cast<uint32_t>(loaded.size());
      report.records_skipped_unknown_table +=
          unknown.load(std::memory_order_relaxed);
      for (const ManifestTableEntry& e : chosen.tables) {
        if (e.kind == static_cast<uint8_t>(CkptTableKind::kMvcc)) {
          // Suffix records below the scan timestamp are already in the
          // loaded snapshot; re-pushing them would bury the chain heads
          // under older timestamps.
          mvcc_floor.emplace(e.table_id, e.scan_ts);
        }
      }
      opts.min_epoch_exclusive = chosen.header.cut_epoch;
    }

    // Phase 2: the WAL suffix.
    RecoveryReport log = ReplayLogDir(
        dir,
        [&](const RecordView& r) {
          auto f = mvcc_floor.find(r.header.table_id);
          if (f != mvcc_floor.end() && r.header.commit_ts < f->second) {
            ++report.records_skipped_below_checkpoint;
            return true;
          }
          return Apply(r);
        },
        opts);
    report.segments_scanned = log.segments_scanned;
    report.blocks_applied = log.blocks_applied;
    report.records_applied = log.records_applied;
    report.records_skipped_unknown_table +=
        log.records_skipped_unknown_table;
    report.max_epoch = log.max_epoch;
    report.max_commit_ts = log.max_commit_ts;
    report.torn_tail = log.torn_tail;
    report.state = log.state;
    report.stop_reason = log.stop_reason;
    report.stop_segment = log.stop_segment;
    report.stop_offset = log.stop_offset;

    AdvanceClocks();
    std::fprintf(stderr, "%s\n", report.Summary().c_str());
    return report;
  }

 private:
  struct CkptSourceBinding {
    uint32_t table_id;
    CkptTableKind kind;
    TransactionManager* mgr;  // null for SV tables
    std::function<void(uint64_t scan_ts, const CheckpointSink&)> scan;
  };

  void AddBinding(uint32_t id, std::function<void(const RecordView&)> fn) {
    MV3C_CHECK(bindings_.emplace(id, std::move(fn)).second);  // unique ids
  }

  void AddCkptSource(
      uint32_t id, CkptTableKind kind, TransactionManager* mgr,
      std::function<void(uint64_t, const CheckpointSink&)> scan) {
    ckpt_sources_.push_back({id, kind, mgr, std::move(scan)});
  }

  void AddManager(TransactionManager* mgr) {
    for (TransactionManager* m : managers_) {
      if (m == mgr) return;
    }
    managers_.push_back(mgr);
  }

  /// Commit-clock watermark across replayed/loaded MVCC records; atomic
  /// because checkpoint loading applies bindings from several threads.
  void NoteMvccTs(Timestamp ts) {
    Timestamp cur = max_mvcc_ts_.load(std::memory_order_relaxed);
    while (ts > cur && !max_mvcc_ts_.compare_exchange_weak(
                           cur, ts, std::memory_order_relaxed)) {
    }
  }

  void AdvanceClocks() {
    const Timestamp ts = max_mvcc_ts_.load(std::memory_order_relaxed);
    for (TransactionManager* mgr : managers_) {
      mgr->AdvanceClockTo(ts);
    }
  }

  /// Runs fn(0..n-1) on up to `threads` workers (0 = hardware
  /// concurrency), one index at a time.
  template <typename Fn>
  static void RunPerTable(size_t n, unsigned threads, Fn&& fn) {
    if (n == 0) return;
    unsigned want = threads != 0 ? threads
                                 : std::thread::hardware_concurrency();
    if (want == 0) want = 1;
    if (want > n) want = static_cast<unsigned>(n);
    if (want <= 1) {
      for (size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    std::atomic<size_t> next{0};
    std::vector<std::thread> workers;
    workers.reserve(want);
    for (unsigned w = 0; w < want; ++w) {
      workers.emplace_back([&] {
        for (size_t i = next.fetch_add(1, std::memory_order_relaxed);
             i < n; i = next.fetch_add(1, std::memory_order_relaxed)) {
          fn(i);
        }
      });
    }
    for (std::thread& t : workers) t.join();
  }

  std::unordered_map<uint32_t, std::function<void(const RecordView&)>>
      bindings_;
  std::vector<CkptSourceBinding> ckpt_sources_;
  std::vector<TransactionManager*> managers_;
  std::atomic<Timestamp> max_mvcc_ts_{0};
};

}  // namespace mv3c::wal

#endif  // MV3C_WAL_CATALOG_H_
