#ifndef MV3C_WAL_LOG_BUFFER_H_
#define MV3C_WAL_LOG_BUFFER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/spinlock.h"
#include "common/thread_safety.h"

namespace mv3c::wal {

class LogManager;

/// One per-worker staging buffer of serialized records, drained by a
/// group-commit flusher once per epoch. Committers append whole
/// transactions under the buffer lock; the flusher drains under the same
/// lock, so a transaction's records land contiguously inside exactly one
/// epoch block (the transaction-consistency guarantee recovery leans on).
/// Each buffer belongs to exactly one log partition — a transaction's
/// records therefore land in exactly one partition's stream, which is what
/// lets the per-partition tagging argument below stand on its own.
///
/// Epoch-tagging protocol (the reason WaitDurable is race-free): the
/// sequencer *first* bumps the manager's current epoch from e to e+1,
/// *then* every partition drains its buffers. A committer reads the epoch
/// inside its buffer-lock hold: if it read e it still holds the lock when
/// the drain arrives, so its bytes are captured by round e; if it acquires
/// the lock after the drain released it, the lock acquire synchronizes
/// with the flusher's release and the committer reads ≥ e+1. Either way, a
/// record tagged T is on disk once durable_epoch ≥ T.
class LogBuffer {
 public:
  LogBuffer(const LogBuffer&) = delete;
  LogBuffer& operator=(const LogBuffer&) = delete;

  /// Appends one transaction's records: `fill(bytes, n_records)` runs with
  /// the buffer lock held and must append complete records to `bytes`,
  /// bumping `n_records` per record. Returns the epoch the records are
  /// tagged with (wait for durable_epoch ≥ it).
  template <typename Fn>
  uint64_t AppendTransaction(Fn&& fill) MV3C_EXCLUDES(lock_) {
    SpinLockGuard g(lock_);
    const uint64_t epoch = current_epoch_->load(std::memory_order_acquire);
    fill(bytes_, n_records_);
    return epoch;
  }

 private:
  friend class LogManager;

  explicit LogBuffer(const std::atomic<uint64_t>* current_epoch)
      : current_epoch_(current_epoch) {}

  /// Sequencer-side idle probe. A true result is only meaningful relative
  /// to a clock value read *before* the probe: the lock release here
  /// synchronizes with any later appender's lock acquire, whose epoch-tag
  /// read is then coherence-ordered after the sequencer's — so every
  /// record this probe missed carries a tag ≥ that earlier clock read.
  bool Empty() MV3C_EXCLUDES(lock_) {
    SpinLockGuard g(lock_);
    return bytes_.empty();
  }

  /// Flusher side: swaps the staged bytes into `out` (which must arrive
  /// empty) and resets the buffer. O(1) under the spinlock — committers
  /// never stall behind a payload-sized memcpy; the concatenation happens
  /// on the flusher thread, outside any committer-visible lock. The
  /// capacities ping-pong between the two vectors, so steady-state appends
  /// still never allocate.
  void Drain(std::vector<uint8_t>* out, uint32_t* n_records)
      MV3C_EXCLUDES(lock_) {
    SpinLockGuard g(lock_);
    if (bytes_.empty()) return;
    out->swap(bytes_);
    *n_records += n_records_;
    n_records_ = 0;
  }

  SpinLock lock_;
  std::vector<uint8_t> bytes_ MV3C_GUARDED_BY(lock_);
  uint32_t n_records_ MV3C_GUARDED_BY(lock_) = 0;
  const std::atomic<uint64_t>* const current_epoch_;
};

}  // namespace mv3c::wal

#endif  // MV3C_WAL_LOG_BUFFER_H_
