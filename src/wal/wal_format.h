#ifndef MV3C_WAL_WAL_FORMAT_H_
#define MV3C_WAL_WAL_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/crc32.h"

namespace mv3c::wal {

/// On-disk layout of the redo log (DESIGN §5f, §5i). A log directory holds
/// numbered segment files — `wal-NNNNNN.log` for a single-partition log,
/// `wal-pPP-NNNNNN.log` (one independently numbered stream per partition)
/// when `WalConfig::partitions > 1`; each segment is one SegmentHeader
/// followed by a sequence of epoch blocks; each block is one BlockHeader
/// followed by `payload_bytes` of concatenated records; each record is one
/// RecordHeader followed by its key and after-image bytes. The structs are
/// identical in both layouts: a partitions=1 log is byte-for-byte the
/// pre-partitioning format.
///
/// Partitioned streams additionally contain *heartbeat* blocks —
/// `payload_bytes == 0, n_records == 0` — written by partitions that had
/// nothing to drain in a round where some other partition did. They give
/// every stream a block for every flushed epoch, so recovery can tell "this
/// stream was idle" from "this stream's tail was lost": its durable cut is
/// the minimum over streams of the last valid block epoch (DESIGN §5i).
/// Single-partition logs never write them.
///
/// Integrity is layered: the block header carries a CRC over itself plus a
/// CRC over its payload (torn-tail detection — recovery stops at the first
/// block whose framing does not check out), and every record additionally
/// carries its own CRC so wal_dump can localize corruption to a record.
///
/// All multi-byte fields are host-endian: logs are recovery artifacts for
/// the machine that wrote them, not an interchange format. Structs are
/// written/read with memcpy; every field is explicit so there is no
/// padding for uninitialized bytes to hide in (static_asserts below).

inline constexpr char kSegmentMagic[8] = {'M', 'V', '3', 'C',
                                          'W', 'A', 'L', '1'};
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr uint32_t kBlockMagic = 0xB10CED0Cu;

struct SegmentHeader {
  char magic[8];            // kSegmentMagic
  uint32_t format_version;  // kFormatVersion
  uint32_t header_crc;      // CRC32-C over magic + format_version
};
static_assert(sizeof(SegmentHeader) == 16);
static_assert(std::is_trivially_copyable_v<SegmentHeader>);

inline SegmentHeader MakeSegmentHeader() {
  SegmentHeader h{};
  std::memcpy(h.magic, kSegmentMagic, sizeof(h.magic));
  h.format_version = kFormatVersion;
  h.header_crc = crc32::Compute(&h, offsetof(SegmentHeader, header_crc));
  return h;
}

inline bool ValidSegmentHeader(const SegmentHeader& h) {
  return std::memcmp(h.magic, kSegmentMagic, sizeof(h.magic)) == 0 &&
         h.format_version == kFormatVersion &&
         h.header_crc == crc32::Compute(&h, offsetof(SegmentHeader,
                                                     header_crc));
}

/// One group-commit epoch: everything one partition's flusher drained from
/// its buffers in one round, made durable by a single fsync. Epochs are
/// strictly increasing within and across the segments of one stream (every
/// partition writes at most one block per round). A transaction's records
/// never span blocks (they are appended under one buffer-lock hold), so
/// any per-stream prefix of valid blocks is transaction-consistent.
struct BlockHeader {
  uint32_t magic;       // kBlockMagic
  uint32_t header_crc;  // CRC32-C over this header with header_crc zeroed
  uint64_t epoch;
  uint32_t payload_bytes;  // total record bytes following this header
  uint32_t n_records;
  uint32_t payload_crc;  // CRC32-C over the payload bytes
  uint32_t reserved;
};
static_assert(sizeof(BlockHeader) == 32);
static_assert(std::is_trivially_copyable_v<BlockHeader>);

inline uint32_t BlockHeaderCrc(const BlockHeader& h) {
  BlockHeader copy = h;
  copy.header_crc = 0;
  return crc32::Compute(&copy, sizeof(copy));
}

enum class RecordType : uint8_t {
  kUpsert = 1,  // after-image replaces the row (update or insert)
  kDelete = 2,  // tombstone; no after-image bytes
};

/// RecordHeader::flags bits.
inline constexpr uint8_t kFlagInsert = 1u << 0;
/// MV3C: the committing transaction went through at least one repair
/// round; by construction the record still carries only the *final* write
/// set (serialization reads the post-repair CommittedRecord), this flag
/// just makes that visible to wal_dump and the tests that assert it.
inline constexpr uint8_t kFlagRepaired = 1u << 1;

struct RecordHeader {
  uint32_t crc;  // CRC32-C over (this header with crc=0) + key + value
  uint32_t table_id;
  uint64_t commit_ts;    // MVCC commit timestamp / SV commit TID
  uint64_t column_mask;  // columns modified (union over the transaction)
  uint32_t key_bytes;
  uint32_t val_bytes;  // 0 for deletes
  uint8_t type;        // RecordType
  uint8_t flags;
  uint16_t reserved;
  uint32_t reserved2;
};
static_assert(sizeof(RecordHeader) == 40);
static_assert(std::is_trivially_copyable_v<RecordHeader>);

/// Parsed view of one record inside a validated block; `key`/`val` point
/// into the caller's buffer.
struct RecordView {
  RecordHeader header;
  const uint8_t* key = nullptr;
  const uint8_t* val = nullptr;
};

/// Appends one fully-formed record (header + key + value, CRC computed) to
/// `out`. `h.crc` is ignored; `h.key_bytes`/`h.val_bytes` must match the
/// spans passed in. Used by the SV serializer (which has contiguous key
/// and after-image bytes at hand); the MVCC serializer encodes in place
/// via the table virtuals (see log_mvcc.h) and patches the CRC the same
/// way.
inline void AppendRecord(std::vector<uint8_t>& out, RecordHeader h,
                         const void* key, const void* val) {
  const size_t base = out.size();
  out.resize(base + sizeof(RecordHeader) + h.key_bytes + h.val_bytes);
  uint8_t* p = out.data() + base;
  h.crc = 0;
  std::memcpy(p, &h, sizeof(h));
  std::memcpy(p + sizeof(h), key, h.key_bytes);
  if (h.val_bytes != 0) {
    std::memcpy(p + sizeof(h) + h.key_bytes, val, h.val_bytes);
  }
  const uint32_t crc =
      crc32::Compute(p, sizeof(h) + h.key_bytes + h.val_bytes);
  std::memcpy(p, &crc, sizeof(crc));  // crc is the first header field
}

/// Verifies the CRC of a serialized record starting at `p` (which must
/// span at least sizeof(RecordHeader) + key_bytes + val_bytes).
inline bool RecordCrcOk(const uint8_t* p, const RecordHeader& h) {
  RecordHeader zeroed = h;
  zeroed.crc = 0;
  uint32_t crc = crc32::Compute(&zeroed, sizeof(zeroed));
  crc = crc32::Extend(crc, p + sizeof(RecordHeader),
                      h.key_bytes + h.val_bytes);
  return crc == h.crc;
}

}  // namespace mv3c::wal

#endif  // MV3C_WAL_WAL_FORMAT_H_
