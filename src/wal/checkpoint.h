#ifndef MV3C_WAL_CHECKPOINT_H_
#define MV3C_WAL_CHECKPOINT_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "wal/checkpoint_format.h"
#include "wal/log_manager.h"
#include "wal/wal_format.h"

namespace mv3c::wal {

/// Receives one row image during a checkpoint table scan. `h.crc` is
/// ignored (the writer computes it); key/val must span h.key_bytes /
/// h.val_bytes.
using CheckpointSink =
    std::function<void(const RecordHeader& h, const void* key,
                       const void* val)>;

/// One table's contribution to a checkpoint, type-erased so the
/// checkpointer needs no knowledge of MVCC or SV storage (the WAL library
/// sits below both in the link graph; wal::Catalog builds these closures
/// where the table types are visible).
struct CheckpointTableSource {
  uint32_t table_id = 0;
  CkptTableKind kind = CkptTableKind::kMvcc;
  /// MVCC: the pinned snapshot timestamp the scan reads at (commits with
  /// commit_ts < scan_ts are captured, everything else is left to the WAL
  /// suffix). SV: 0 — fuzzy per-record TID stamps take its place.
  uint64_t scan_ts = 0;
  std::function<void(const CheckpointSink&)> scan;
};

/// Everything a checkpoint round needs: the per-table scans (with MVCC
/// snapshot pins already taken — scan_ts is fixed) and a release hook
/// dropping those pins. The provider is called at the START of each round,
/// strictly after the checkpointer reads the durable epoch; that order is
/// what makes the cut correct (DESIGN §5g).
struct CheckpointSources {
  std::vector<CheckpointTableSource> tables;
  std::function<void()> release;  // may be empty (no MVCC pins)
};

struct CheckpointConfig {
  /// Checkpoint directory — must be the WAL directory (manifests and
  /// segment subdirectories live next to the log they subsume).
  std::string dir;
  /// Background cadence; 0 disables the thread (TakeCheckpoint() only).
  uint32_t interval_ms = 0;
  /// Delete WAL segments wholly below the previous checkpoint's cut after
  /// publishing a new manifest (two valid checkpoints always retain their
  /// full suffixes — fallback never dangles).
  bool truncate_wal = true;
  /// Manifests kept on disk; older checkpoints are retired after a
  /// successful publish. Minimum 2: the newest plus one fallback.
  uint64_t retain = 2;
};

/// The fuzzy checkpointer (DESIGN §5g): periodically (or on demand)
/// streams a consistent snapshot of every registered table into CRC-framed
/// segment files, atomically publishes a manifest, then truncates WAL
/// history the previous checkpoint already subsumes.
///
/// Failure model mirrors LogManager: any I/O failure — injected
/// (kCkptCrashMidSegment, kCkptCrashBeforeManifest,
/// kCkptCrashAfterManifestBeforeTruncate, kCkptFsyncFail failpoints) or
/// real — freezes the checkpointer in a `failed` state; partial on-disk
/// debris is left exactly as a crash would leave it, which is what the
/// chaos tests recover from. A failed checkpointer never truncates.
class Checkpointer {
 public:
  Checkpointer(const CheckpointConfig& config, LogManager* lm,
               std::function<CheckpointSources()> sources);
  Checkpointer(const Checkpointer&) = delete;
  Checkpointer& operator=(const Checkpointer&) = delete;
  ~Checkpointer();

  /// Runs one synchronous checkpoint round. Returns false if the round
  /// failed (the checkpointer freezes) or the checkpointer/log had already
  /// failed. Serialized against the background thread.
  bool TakeCheckpoint();

  /// Joins the background thread. Idempotent; called by the destructor.
  void Stop();

  bool failed() const { return failed_.load(std::memory_order_acquire); }
  /// Sequence number of the newest successfully published checkpoint; 0
  /// if none yet.
  uint64_t published_seq() const {
    return published_seq_.load(std::memory_order_acquire);
  }

  /// ckpt_* counters (rounds, records, bytes, failures, truncated WAL
  /// segments, retired checkpoints) and the kCheckpoint phase histogram.
  obs::MetricsRegistry& metrics() { return metrics_; }

 private:
  void BackgroundLoop();
  /// One round; returns false on failure. Caller holds round_mu_.
  bool RunRound();
  bool WriteTableSegment(const std::string& dir_path,
                         const CheckpointTableSource& src, uint64_t seq,
                         ManifestTableEntry* entry);
  bool PublishManifest(uint64_t seq,
                       const std::vector<ManifestTableEntry>& entries,
                       uint64_t cut_epoch);
  void RetireOldCheckpoints(uint64_t newest_seq);

  const CheckpointConfig config_;
  LogManager* const lm_;
  const std::function<CheckpointSources()> sources_;

  std::mutex round_mu_;  // serializes TakeCheckpoint vs the thread
  std::atomic<bool> failed_{false};
  std::atomic<uint64_t> published_seq_{0};
  uint64_t next_seq_ = 1;      // under round_mu_
  uint64_t prev_cut_epoch_ = 0;  // cut of the previous manifest; 0 = none

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  std::thread thread_;

  // Counters (round_mu_ holder only).
  uint64_t ckpt_rounds_ = 0;
  uint64_t ckpt_records_ = 0;
  uint64_t ckpt_bytes_ = 0;
  uint64_t ckpt_failures_ = 0;
  uint64_t ckpt_wal_segments_truncated_ = 0;
  uint64_t ckpt_retired_ = 0;

  obs::MetricsRegistry metrics_;
};

/// --- Offline manifest access (recovery, wal_dump) ---

struct Manifest {
  ManifestHeader header{};
  std::vector<ManifestTableEntry> tables;
};

/// Checkpoint sequence numbers with a manifest file present under `dir`,
/// ascending. Presence only — validation happens in ReadManifest.
std::vector<uint64_t> ListManifestSeqs(const std::string& dir);

/// Reads and fully validates (magic, version, whole-manifest CRC) the
/// manifest for `seq`. False on any damage — a torn manifest is treated
/// as absent, never as current.
bool ReadManifest(const std::string& dir, uint64_t seq, Manifest* out);

/// Reads one checkpoint table segment and validates every layer — header,
/// whole-file CRC and byte count against the manifest entry, per-record
/// CRC and record count — before returning. On success `*records` holds
/// views into `*buf` (which must outlive them). False on any damage, with
/// nothing partially returned.
bool LoadCkptSegment(const std::string& dir, uint64_t seq,
                     const ManifestTableEntry& entry,
                     std::vector<uint8_t>* buf,
                     std::vector<RecordView>* records);

}  // namespace mv3c::wal

#endif  // MV3C_WAL_CHECKPOINT_H_
