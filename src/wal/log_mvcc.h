#ifndef MV3C_WAL_LOG_MVCC_H_
#define MV3C_WAL_LOG_MVCC_H_

// Commit-path redo serializer for the MVCC engines (MV3C and OMVCC).
// Included by transaction_manager.h only under -DMV3C_WAL=ON; the wal core
// (log_manager/log_buffer/wal_format) stays mvcc-free, this header is the
// one-way bridge from mvcc types into it.

#include <cstdint>
#include <cstring>
#include <vector>

#include "mvcc/gc.h"
#include "mvcc/table.h"
#include "mvcc/timestamp.h"
#include "mvcc/version.h"
#include "obs/metrics.h"
#include "wal/log_manager.h"
#include "wal/wal_format.h"

namespace mv3c::wal {

/// Serializes one committed transaction's write set into `buf` (created
/// lazily from `lm` on first use; the caller caches it per transaction
/// context). Must run inside the commit critical section, right after
/// PublishCommit: the CommittedRecord's versions are exactly the
/// transaction's newest surviving version per object — for a repaired MV3C
/// transaction that is the *final* (post-repair) write set by
/// construction, so repair rounds never leak discarded writes into the
/// log. Running in-lock also means GC can't reclaim the versions under us;
/// the cost is a few memcpys, the I/O happens on the writer thread.
///
/// Returns the epoch the records were tagged with, or 0 when the
/// transaction touched no WAL-registered table (nothing to wait for).
/// Because `commit_ts`'s epoch component is read from the same shared
/// clock moments earlier in the same critical section (DESIGN §5h), the
/// tag returned here is always >= TsEpoch(commit_ts) — checkpoint epoch
/// cuts therefore never truncate a block whose records carry timestamps
/// from a later epoch than the block's tag.
inline uint64_t LogMvccCommit(LogManager& lm, LogBuffer*& buf,
                              const CommittedRecord& rec,
                              Timestamp commit_ts, bool repaired) {
  bool any = false;
  for (const VersionBase* v : rec.versions) {
    if (v->table()->wal_id() != TableBase::kNoWalId) {
      any = true;
      break;
    }
  }
  if (!any) return 0;
  obs::ScopedPhaseTimer timer(&lm.metrics(), obs::Phase::kLogSerialize);
  // Bind the buffer to this thread's commit-TID lane: log partitioning
  // then follows the §5h per-lane TID layout, and a worker's transactions
  // stay in one partition's stream.
  if (buf == nullptr) buf = lm.CreateBuffer(ThisThreadTidLane());
  return buf->AppendTransaction(
      [&](std::vector<uint8_t>& out, uint32_t& n_records) {
        for (const VersionBase* v : rec.versions) {
          const TableBase* table = v->table();
          if (table->wal_id() == TableBase::kNoWalId) continue;
          const bool del = v->tombstone();
          RecordHeader h{};
          h.table_id = table->wal_id();
          h.commit_ts = commit_ts;
          h.column_mask = v->modified_columns().bits();
          h.key_bytes = table->WalKeyBytes();
          h.val_bytes = del ? 0 : table->WalRowBytes();
          h.type = static_cast<uint8_t>(del ? RecordType::kDelete
                                            : RecordType::kUpsert);
          h.flags =
              static_cast<uint8_t>((v->is_insert() ? kFlagInsert : 0) |
                                   (repaired ? kFlagRepaired : 0));
          // Encode in place (key and after-image copied straight into the
          // buffer through the table's type-erased virtuals), then patch
          // the CRC over the finished span — same layout AppendRecord
          // produces for callers that have contiguous bytes at hand.
          const size_t base = out.size();
          const size_t len =
              sizeof(RecordHeader) + h.key_bytes + h.val_bytes;
          out.resize(base + len);
          uint8_t* p = out.data() + base;
          std::memcpy(p, &h, sizeof(h));
          table->WalEncodeKey(*v, p + sizeof(h));
          if (h.val_bytes != 0) {
            table->WalEncodeRow(*v, p + sizeof(h) + h.key_bytes);
          }
          const uint32_t crc = crc32::Compute(p, len);
          std::memcpy(p, &crc, sizeof(crc));
          ++n_records;
        }
      });
}

}  // namespace mv3c::wal

#endif  // MV3C_WAL_LOG_MVCC_H_
