#ifndef MV3C_WAL_RECOVERY_H_
#define MV3C_WAL_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "wal/wal_format.h"

namespace mv3c::wal {

/// What the physical scan of a log directory found — the diagnosis the
/// manifest-fallback path (and an operator reading one line of output)
/// needs. The three damage shapes have very different meanings: a torn
/// tail is the expected residue of a crash (the unacknowledged last
/// write), an interior corruption means acknowledged history was damaged
/// at rest (the recovered prefix may predate the durable point), and "no
/// log" distinguishes first-boot from data loss.
enum class LogDirState : uint8_t {
  kNoLog = 0,        // no segment files at all (first boot / empty dir)
  kClean,            // every byte of every segment validated
  kTornTail,         // damage at the end of the LAST segment: crash residue
  kCorruptInterior,  // damage before the last segment: at-rest corruption
};

const char* LogDirStateName(LogDirState s);

/// Outcome of one recovery pass (physical log scan, plus checkpoint fields
/// when RecoverWithCheckpoints drove it). Good enough to assert torn-tail
/// and fallback behavior on without reparsing the log.
struct RecoveryReport {
  uint32_t segments_scanned = 0;
  uint64_t blocks_applied = 0;
  uint64_t records_applied = 0;
  /// Records whose table_id had no Catalog binding (schema drift; counted,
  /// skipped, recovery continues).
  uint64_t records_skipped_unknown_table = 0;
  uint64_t max_epoch = 0;      // last durable epoch recovered
  uint64_t max_commit_ts = 0;  // largest commit_ts applied
  /// True when the scan stopped before the physical end of the log (torn
  /// block, bad CRC, truncated file) — i.e. `state` is kTornTail or
  /// kCorruptInterior. The applied prefix is still transaction-consistent.
  bool torn_tail = false;
  /// Number of log streams found: 1 for a legacy/single-partition dir
  /// (`wal-NNNNNN.log`), one per partition (`wal-pPP-NNNNNN.log`) for a
  /// partitioned log.
  uint32_t streams = 0;
  /// The durable cut: min over streams of the last valid block epoch. Only
  /// blocks with epoch <= this are applied — a stream that stops earlier
  /// (torn tail, lost fsync) caps what *every* stream may contribute,
  /// since a round is only acknowledged once all partitions fsynced it
  /// (DESIGN §5i). For a single stream this equals the last valid block
  /// epoch, i.e. exactly the pre-partitioning behavior.
  uint64_t durable_cut = 0;
  /// Valid blocks dropped because their epoch exceeded durable_cut (their
  /// round never completed on some other stream, so it was never
  /// acknowledged durable).
  uint64_t blocks_beyond_cut = 0;
  LogDirState state = LogDirState::kNoLog;
  std::string stop_reason;   // human-readable; empty for a clean log
  std::string stop_segment;  // segment file where the scan stopped
  uint64_t stop_offset = 0;  // byte offset of the first invalid byte

  // --- Checkpoint phase (filled by Catalog::RecoverWithCheckpoints) ---
  bool used_checkpoint = false;
  uint64_t checkpoint_seq = 0;   // manifest the tables were loaded from
  uint64_t checkpoint_ts = 0;    // its snapshot timestamp
  uint64_t cut_epoch = 0;        // WAL epochs <= this were skipped
  uint64_t checkpoint_records_loaded = 0;
  uint32_t checkpoint_tables_loaded = 0;
  /// Manifests that existed but failed validation (torn manifest, damaged
  /// segment) and were fallen past, newest first. Nonzero means the
  /// fallback path ran — exactly what the one-line summary must surface.
  uint64_t manifests_skipped = 0;
  /// Suffix records already captured by the checkpoint (MVCC commit_ts
  /// below the table's scan_ts) and therefore not re-applied.
  uint64_t records_skipped_below_checkpoint = 0;

  /// The one-line operator summary, e.g.
  ///   "wal-recovery: ckpt seq=3 ts=5012 cut=41 tables=9 rows=1204 |
  ///    log torn-tail @wal-000004.log+8192 (block payload CRC mismatch):
  ///    2 segments, 17 blocks, 340 records, max_epoch=58"
  std::string Summary() const;
};

/// Options for the physical scan.
struct ReplayOptions {
  /// Skip blocks with epoch <= this (their records are subsumed by a
  /// checkpoint). Every block is still CRC-validated and epoch-checked —
  /// skipping is about application, not trust.
  uint64_t min_epoch_exclusive = 0;
};

/// Scans a log directory, validates framing layer by layer — segment
/// header, block magic + header CRC, payload length + payload CRC,
/// per-record CRC, epoch monotonicity — and hands every record of every
/// applied block past `options.min_epoch_exclusive` to `apply` in
/// commit-timestamp order (records are collected per scan and
/// stable-sorted by commit_ts before application: workers interleave
/// arbitrarily inside an epoch block, but version chains must be rebuilt
/// oldest-first).
///
/// Segment files are grouped into streams by name prefix (one stream for
/// the legacy `wal-NNNNNN.log` naming, one per partition for
/// `wal-pPP-NNNNNN.log`); within each stream segments scan in filename
/// order and epochs must strictly increase. Each stream's scan stops at
/// its FIRST invalid byte: everything before it is that stream's longest
/// valid prefix (each partition fsyncs whole blocks in epoch order, so
/// nothing after a torn block in a stream can have been acknowledged).
/// Application is then capped at the *durable cut* — the min over streams
/// of the last valid block epoch — because an epoch was only acknowledged
/// once every partition fsynced its block (heartbeat blocks keep idle
/// partitions' streams current, so a stream ending early really did lose
/// its tail). The report's `state`/`stop_segment`/`stop_offset` say where
/// and why the first-damaged stream stopped.
///
/// `apply` returning false means "unknown table": the record is counted in
/// records_skipped_unknown_table and the scan continues.
RecoveryReport ReplayLogDir(
    const std::string& dir,
    const std::function<bool(const RecordView&)>& apply,
    const ReplayOptions& options = {});

}  // namespace mv3c::wal

#endif  // MV3C_WAL_RECOVERY_H_
