#ifndef MV3C_WAL_RECOVERY_H_
#define MV3C_WAL_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <string>

#include "wal/wal_format.h"

namespace mv3c::wal {

/// Outcome of one ReplayLogDir scan (returned, and good enough to assert
/// torn-tail behavior on without reparsing the log).
struct RecoveryReport {
  uint32_t segments_scanned = 0;
  uint64_t blocks_applied = 0;
  uint64_t records_applied = 0;
  /// Records whose table_id had no Catalog binding (schema drift; counted,
  /// skipped, recovery continues).
  uint64_t records_skipped_unknown_table = 0;
  uint64_t max_epoch = 0;      // last durable epoch recovered
  uint64_t max_commit_ts = 0;  // largest commit_ts applied
  /// True when the scan stopped before the physical end of the log (torn
  /// block, bad CRC, truncated file) — i.e. a crash tail was detected and
  /// cut. The applied prefix is still transaction-consistent.
  bool torn_tail = false;
  std::string stop_reason;  // human-readable; empty for a clean log
};

/// Scans a log directory (segments in filename order), validates framing
/// layer by layer — segment header, block magic + header CRC, payload
/// length + payload CRC, per-record CRC, epoch monotonicity — and hands
/// every record of every valid block to `apply` in commit-timestamp order
/// (records are collected per scan and stable-sorted by commit_ts before
/// application: workers interleave arbitrarily inside an epoch block, but
/// version chains must be rebuilt oldest-first).
///
/// The scan stops at the FIRST invalid byte: everything before it is the
/// longest durable prefix (group commit fsyncs whole blocks in epoch
/// order, so nothing after a torn block can have been acknowledged).
///
/// `apply` returning false means "unknown table": the record is counted in
/// records_skipped_unknown_table and the scan continues.
RecoveryReport ReplayLogDir(
    const std::string& dir,
    const std::function<bool(const RecordView&)>& apply);

}  // namespace mv3c::wal

#endif  // MV3C_WAL_RECOVERY_H_
