#include "wal/checkpoint.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/failpoint.h"
#include "common/macros.h"

namespace mv3c::wal {

namespace {

bool WriteFully(int fd, const uint8_t* p, size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += static_cast<size_t>(w);
    n -= static_cast<size_t>(w);
  }
  return true;
}

bool ReadWholeFile(const std::string& path, std::vector<uint8_t>* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }
  out->resize(static_cast<size_t>(st.st_size));
  size_t got = 0;
  while (got < out->size()) {
    const ssize_t r = ::read(fd, out->data() + got, out->size() - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (r == 0) break;
    got += static_cast<size_t>(r);
  }
  ::close(fd);
  out->resize(got);
  return true;
}

bool FsyncDir(const std::string& dir) {
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd < 0) return false;
  const bool ok = ::fsync(dfd) == 0;
  ::close(dfd);
  return ok;
}

/// Writes `bytes` to `path` (create/truncate) and fsyncs the file.
bool WriteFileDurably(const std::string& path,
                      const std::vector<uint8_t>& bytes) {
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return false;
  bool ok = WriteFully(fd, bytes.data(), bytes.size());
  if (ok && MV3C_FAILPOINT(failpoint::Site::kCkptFsyncFail)) ok = false;
  if (ok) ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

/// Removes a checkpoint directory and everything in it (flat layout: the
/// checkpointer only ever creates regular files inside).
void RemoveCkptDir(const std::string& dir_path) {
  DIR* d = ::opendir(dir_path.c_str());
  if (d != nullptr) {
    while (dirent* e = ::readdir(d)) {
      const std::string n = e->d_name;
      if (n == "." || n == "..") continue;
      (void)::unlink((dir_path + "/" + n).c_str());
    }
    ::closedir(d);
  }
  (void)::rmdir(dir_path.c_str());
}

}  // namespace

Checkpointer::Checkpointer(const CheckpointConfig& config, LogManager* lm,
                           std::function<CheckpointSources()> sources)
    : config_(config), lm_(lm), sources_(std::move(sources)) {
  MV3C_CHECK(!config_.dir.empty());
  MV3C_CHECK(lm_ != nullptr);
  MV3C_CHECK(config_.retain >= 2);
  metrics_.RegisterCounter("ckpt_rounds", &ckpt_rounds_);
  metrics_.RegisterCounter("ckpt_records", &ckpt_records_);
  metrics_.RegisterCounter("ckpt_bytes", &ckpt_bytes_);
  metrics_.RegisterCounter("ckpt_failures", &ckpt_failures_);
  metrics_.RegisterCounter("ckpt_wal_segments_truncated",
                           &ckpt_wal_segments_truncated_);
  metrics_.RegisterCounter("ckpt_retired", &ckpt_retired_);
  // Resume numbering after whatever a previous incarnation left behind;
  // its newest *valid* manifest also seeds the truncation ladder.
  const std::vector<uint64_t> seqs = ListManifestSeqs(config_.dir);
  for (auto it = seqs.rbegin(); it != seqs.rend(); ++it) {
    Manifest m;
    if (ReadManifest(config_.dir, *it, &m)) {
      prev_cut_epoch_ = m.header.cut_epoch;
      published_seq_.store(*it, std::memory_order_release);
      break;
    }
  }
  if (!seqs.empty()) next_seq_ = seqs.back() + 1;
  if (config_.interval_ms > 0) {
    thread_ = std::thread([this] { BackgroundLoop(); });
  }
}

Checkpointer::~Checkpointer() { Stop(); }

void Checkpointer::Stop() {
  {
    std::lock_guard<std::mutex> g(stop_mu_);
    stop_requested_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Checkpointer::BackgroundLoop() {
  std::unique_lock<std::mutex> lk(stop_mu_);
  while (!stop_requested_) {
    stop_cv_.wait_for(lk, std::chrono::milliseconds(config_.interval_ms),
                      [&] { return stop_requested_; });
    if (stop_requested_) return;
    lk.unlock();
    const bool ok = TakeCheckpoint();
    lk.lock();
    if (!ok) return;  // frozen: failed_ is set, no further rounds
  }
}

bool Checkpointer::TakeCheckpoint() {
  std::lock_guard<std::mutex> g(round_mu_);
  if (failed()) return false;
  obs::ScopedPhaseTimer timer(&metrics_, obs::Phase::kCheckpoint);
  if (!RunRound()) {
    ++ckpt_failures_;
    failed_.store(true, std::memory_order_release);
    return false;
  }
  ++ckpt_rounds_;
  return true;
}

bool Checkpointer::RunRound() {
  // Order is the whole correctness argument (DESIGN §5g): read the durable
  // epoch FIRST, then open the snapshot. Every commit the snapshot misses
  // serializes after the pin, so its redo tag exceeds D — truncating
  // epochs <= D can never drop a commit the checkpoint failed to capture.
  if (lm_->crashed()) return false;
  const uint64_t cut_epoch = lm_->durable_epoch();
  CheckpointSources sources = sources_();
  const uint64_t seq = next_seq_;

  const std::string dir_path = config_.dir + "/" + CkptDirName(seq);
  RemoveCkptDir(dir_path);  // debris from a crashed attempt at this seq
  bool ok = ::mkdir(dir_path.c_str(), 0755) == 0;

  std::vector<ManifestTableEntry> entries;
  entries.reserve(sources.tables.size());
  uint64_t checkpoint_ts = 0;
  for (const CheckpointTableSource& src : sources.tables) {
    if (!ok) break;
    ManifestTableEntry e{};
    ok = WriteTableSegment(dir_path, src, seq, &e);
    if (ok) {
      entries.push_back(e);
      checkpoint_ts = std::max(checkpoint_ts, e.scan_ts);
    }
  }
  if (sources.release) sources.release();
  if (!ok) return false;
  if (!FsyncDir(dir_path)) return false;

  // The scan raced commits past the cut; every one it partially observed
  // must be fully replayable from the retained suffix before the manifest
  // becomes loadable, so the log is flushed through the scan's end. A
  // crashed log means the suffix guarantee is gone: abort unpublished.
  if (!lm_->FlushNow()) return false;

  if (MV3C_FAILPOINT(failpoint::Site::kCkptCrashBeforeManifest)) {
    return false;
  }
  if (!PublishManifest(seq, entries, cut_epoch)) return false;
  published_seq_.store(seq, std::memory_order_release);
  ++next_seq_;

  if (MV3C_FAILPOINT(
          failpoint::Site::kCkptCrashAfterManifestBeforeTruncate)) {
    return false;
  }

  // Truncate to the PREVIOUS checkpoint's cut: both retained manifests
  // keep their complete WAL suffixes, so recovery can always fall back one
  // checkpoint without dangling. Per partition this only ever deletes a
  // stream's oldest segments, never its tail, so the min-over-streams
  // durable cut recovery computes (DESIGN §5i) is unaffected.
  if (config_.truncate_wal && prev_cut_epoch_ > 0) {
    ckpt_wal_segments_truncated_ +=
        lm_->TruncateSegmentsBefore(prev_cut_epoch_);
  }
  RetireOldCheckpoints(seq);
  prev_cut_epoch_ = cut_epoch;
  return true;
}

bool Checkpointer::WriteTableSegment(const std::string& dir_path,
                                     const CheckpointTableSource& src,
                                     uint64_t seq,
                                     ManifestTableEntry* entry) {
  const std::string path = dir_path + "/" + CkptTableFileName(src.table_id);
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) return false;

  const CkptSegmentHeader sh = MakeCkptSegmentHeader(src.table_id, seq);
  std::vector<uint8_t> chunk(reinterpret_cast<const uint8_t*>(&sh),
                             reinterpret_cast<const uint8_t*>(&sh) +
                                 sizeof(sh));
  uint32_t file_crc = 0;
  uint64_t file_bytes = 0;
  uint64_t record_count = 0;
  bool ok = true;

  auto flush_chunk = [&] {
    if (chunk.empty() || !ok) return;
    if (MV3C_FAILPOINT(failpoint::Site::kCkptCrashMidSegment)) {
      // Torn segment write: half the pending bytes reach the disk, then
      // the "machine" dies. No manifest will reference this file; recovery
      // must never load it.
      (void)WriteFully(fd, chunk.data(), chunk.size() / 2);
      ok = false;
      return;
    }
    if (!WriteFully(fd, chunk.data(), chunk.size())) {
      ok = false;
      return;
    }
    file_crc = crc32::Extend(file_crc, chunk.data(), chunk.size());
    file_bytes += chunk.size();
    chunk.clear();
  };

  constexpr size_t kChunkBytes = 1 << 20;
  src.scan([&](const RecordHeader& h, const void* key, const void* val) {
    if (!ok) return;
    AppendRecord(chunk, h, key, val);
    ++record_count;
    if (chunk.size() >= kChunkBytes) flush_chunk();
  });
  flush_chunk();
  if (ok && MV3C_FAILPOINT(failpoint::Site::kCkptFsyncFail)) ok = false;
  if (ok) ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) return false;

  entry->table_id = src.table_id;
  entry->kind = static_cast<uint8_t>(src.kind);
  entry->scan_ts = src.scan_ts;
  entry->record_count = record_count;
  entry->file_bytes = file_bytes;
  entry->file_crc = file_crc;
  ckpt_records_ += record_count;
  ckpt_bytes_ += file_bytes;
  return true;
}

bool Checkpointer::PublishManifest(
    uint64_t seq, const std::vector<ManifestTableEntry>& entries,
    uint64_t cut_epoch) {
  ManifestHeader h{};
  std::memcpy(h.magic, kManifestMagic, sizeof(h.magic));
  h.format_version = kCkptFormatVersion;
  h.n_tables = static_cast<uint32_t>(entries.size());
  h.checkpoint_seq = seq;
  h.cut_epoch = cut_epoch;
  for (const ManifestTableEntry& e : entries) {
    h.checkpoint_ts = std::max(h.checkpoint_ts, e.scan_ts);
  }
  h.manifest_crc = ManifestCrc(h, entries.data(), h.n_tables);

  std::vector<uint8_t> bytes(sizeof(h) +
                             entries.size() * sizeof(ManifestTableEntry));
  std::memcpy(bytes.data(), &h, sizeof(h));
  if (!entries.empty()) {
    std::memcpy(bytes.data() + sizeof(h), entries.data(),
                entries.size() * sizeof(ManifestTableEntry));
  }

  // tmp + fsync + rename + dir fsync: the manifest appears atomically or
  // not at all — there is no observable half-written manifest state.
  const std::string final_path = config_.dir + "/" + ManifestName(seq);
  const std::string tmp_path = final_path + ".tmp";
  if (!WriteFileDurably(tmp_path, bytes)) return false;
  if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) return false;
  return FsyncDir(config_.dir);
}

void Checkpointer::RetireOldCheckpoints(uint64_t newest_seq) {
  if (newest_seq <= config_.retain) return;
  const uint64_t retire_through = newest_seq - config_.retain;
  for (uint64_t seq : ListManifestSeqs(config_.dir)) {
    if (seq > retire_through) break;
    // Manifest first: once it is gone, recovery can no longer select this
    // checkpoint, so deleting its data directory cannot strand a reader.
    (void)::unlink((config_.dir + "/" + ManifestName(seq)).c_str());
    RemoveCkptDir(config_.dir + "/" + CkptDirName(seq));
    ++ckpt_retired_;
  }
  (void)FsyncDir(config_.dir);
}

std::vector<uint64_t> ListManifestSeqs(const std::string& dir) {
  std::vector<uint64_t> seqs;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return seqs;
  while (dirent* e = ::readdir(d)) {
    const std::string n = e->d_name;
    unsigned long long seq = 0;
    char extra = 0;
    if (std::sscanf(n.c_str(), "MANIFEST-%6llu%c", &seq, &extra) == 1) {
      seqs.push_back(seq);
    }
  }
  ::closedir(d);
  std::sort(seqs.begin(), seqs.end());
  return seqs;
}

bool ReadManifest(const std::string& dir, uint64_t seq, Manifest* out) {
  std::vector<uint8_t> bytes;
  if (!ReadWholeFile(dir + "/" + ManifestName(seq), &bytes)) return false;
  if (bytes.size() < sizeof(ManifestHeader)) return false;
  ManifestHeader h;
  std::memcpy(&h, bytes.data(), sizeof(h));
  if (std::memcmp(h.magic, kManifestMagic, sizeof(h.magic)) != 0 ||
      h.format_version != kCkptFormatVersion || h.checkpoint_seq != seq) {
    return false;
  }
  const size_t want =
      sizeof(ManifestHeader) +
      static_cast<size_t>(h.n_tables) * sizeof(ManifestTableEntry);
  if (bytes.size() != want) return false;
  std::vector<ManifestTableEntry> entries(h.n_tables);
  if (h.n_tables != 0) {
    std::memcpy(entries.data(), bytes.data() + sizeof(ManifestHeader),
                entries.size() * sizeof(ManifestTableEntry));
  }
  if (ManifestCrc(h, entries.data(), h.n_tables) != h.manifest_crc) {
    return false;
  }
  out->header = h;
  out->tables = std::move(entries);
  return true;
}

bool LoadCkptSegment(const std::string& dir, uint64_t seq,
                     const ManifestTableEntry& entry,
                     std::vector<uint8_t>* buf,
                     std::vector<RecordView>* records) {
  const std::string path =
      dir + "/" + CkptDirName(seq) + "/" + CkptTableFileName(entry.table_id);
  if (!ReadWholeFile(path, buf)) return false;
  if (buf->size() != entry.file_bytes) return false;
  if (crc32::Compute(buf->data(), buf->size()) != entry.file_crc) {
    return false;
  }
  if (buf->size() < sizeof(CkptSegmentHeader)) return false;
  CkptSegmentHeader sh;
  std::memcpy(&sh, buf->data(), sizeof(sh));
  if (!ValidCkptSegmentHeader(sh) || sh.table_id != entry.table_id ||
      sh.checkpoint_seq != seq) {
    return false;
  }

  records->clear();
  records->reserve(entry.record_count);
  size_t off = sizeof(CkptSegmentHeader);
  while (off < buf->size()) {
    if (buf->size() - off < sizeof(RecordHeader)) return false;
    RecordView v;
    std::memcpy(&v.header, buf->data() + off, sizeof(RecordHeader));
    const size_t len = sizeof(RecordHeader) +
                       static_cast<size_t>(v.header.key_bytes) +
                       v.header.val_bytes;
    if (buf->size() - off < len) return false;
    if (!RecordCrcOk(buf->data() + off, v.header)) return false;
    if (v.header.table_id != entry.table_id) return false;
    v.key = buf->data() + off + sizeof(RecordHeader);
    v.val = v.key + v.header.key_bytes;
    records->push_back(v);
    off += len;
  }
  return records->size() == entry.record_count;
}

}  // namespace mv3c::wal
