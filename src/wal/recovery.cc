#include "wal/recovery.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <vector>

namespace mv3c::wal {

namespace {

/// Segment file names are zero-padded (`wal-%06u.log` /
/// `wal-pPP-%06u.log`), so lexicographic order is creation order within a
/// stream.
std::vector<std::string> ListSegments(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (dirent* e = ::readdir(d)) {
    const std::string n = e->d_name;
    if (n.size() > 8 && n.rfind("wal-", 0) == 0 &&
        n.compare(n.size() - 4, 4, ".log") == 0) {
      names.push_back(n);
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

/// Stream key = filename minus ".log" minus the trailing segment digits:
/// "wal-000003.log" -> "wal-", "wal-p02-000003.log" -> "wal-p02-". A name
/// with no trailing digits keys its own stream (and will fail header
/// validation on scan).
std::string StreamKey(const std::string& name) {
  std::string base = name.substr(0, name.size() - 4);  // strip ".log"
  size_t pos = base.size();
  while (pos > 0 && std::isdigit(static_cast<unsigned char>(base[pos - 1]))) {
    --pos;
  }
  return base.substr(0, pos);
}

bool ReadWholeFile(const std::string& path, std::vector<uint8_t>* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }
  out->resize(static_cast<size_t>(st.st_size));
  size_t got = 0;
  while (got < out->size()) {
    const ssize_t r = ::read(fd, out->data() + got, out->size() - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (r == 0) break;  // file shrank under us; treat the rest as missing
    got += static_cast<size_t>(r);
  }
  ::close(fd);
  out->resize(got);
  return true;
}

struct ParsedRecord {
  RecordView view;  // pointers into the owning segment buffer
  uint64_t epoch;   // the owning block's epoch (for the durable cut)
};

}  // namespace

const char* LogDirStateName(LogDirState s) {
  switch (s) {
    case LogDirState::kNoLog:
      return "no-log";
    case LogDirState::kClean:
      return "clean";
    case LogDirState::kTornTail:
      return "torn-tail";
    case LogDirState::kCorruptInterior:
      return "corrupt-interior";
  }
  return "?";
}

std::string RecoveryReport::Summary() const {
  char buf[640];
  size_t n = 0;
  if (used_checkpoint) {
    n += static_cast<size_t>(std::snprintf(
        buf + n, sizeof(buf) - n,
        "wal-recovery: ckpt seq=%" PRIu64 " ts=%" PRIu64 " cut=%" PRIu64
        " tables=%u rows=%" PRIu64 "%s | ",
        checkpoint_seq, checkpoint_ts, cut_epoch, checkpoint_tables_loaded,
        checkpoint_records_loaded,
        manifests_skipped != 0 ? " (FELL BACK past damaged manifests)"
                               : ""));
  } else {
    n += static_cast<size_t>(std::snprintf(
        buf + n, sizeof(buf) - n, "wal-recovery: %s | ",
        manifests_skipped != 0 ? "genesis replay (NO valid checkpoint)"
                               : "genesis replay"));
  }
  n += static_cast<size_t>(std::snprintf(
      buf + n, sizeof(buf) - n, "log %s", LogDirStateName(state)));
  if (state == LogDirState::kTornTail ||
      state == LogDirState::kCorruptInterior) {
    n += static_cast<size_t>(std::snprintf(
        buf + n, sizeof(buf) - n, " @%s+%" PRIu64 " (%s)",
        stop_segment.c_str(), stop_offset, stop_reason.c_str()));
  }
  n += static_cast<size_t>(std::snprintf(
      buf + n, sizeof(buf) - n,
      ": %u segments, %" PRIu64 " blocks, %" PRIu64
      " records, max_epoch=%" PRIu64,
      segments_scanned, blocks_applied, records_applied, max_epoch));
  if (streams > 1) {
    (void)std::snprintf(buf + n, sizeof(buf) - n,
                        " [%u streams, cut=%" PRIu64 ", %" PRIu64
                        " blocks beyond cut]",
                        streams, durable_cut, blocks_beyond_cut);
  }
  return buf;
}

RecoveryReport ReplayLogDir(
    const std::string& dir,
    const std::function<bool(const RecordView&)>& apply,
    const ReplayOptions& options) {
  RecoveryReport report;
  // Buffers must outlive the sort+apply below: RecordViews point into them.
  std::vector<std::vector<uint8_t>> buffers;
  std::vector<ParsedRecord> records;
  // Epochs of every validated, non-checkpoint-subsumed block across all
  // streams; split by the durable cut at the end.
  std::vector<uint64_t> block_epochs;

  const std::vector<std::string> names = ListSegments(dir);
  report.state = names.empty() ? LogDirState::kNoLog : LogDirState::kClean;

  // std::map: streams scan in deterministic (sorted-key) order, and the
  // per-stream name lists inherit the sorted order of `names`.
  std::map<std::string, std::vector<std::string>> streams;
  for (const std::string& n : names) streams[StreamKey(n)].push_back(n);
  report.streams = static_cast<uint32_t>(streams.size());

  uint64_t cut = ~0ull;
  bool any_interior = false;
  bool any_torn = false;

  for (const auto& [key, segs] : streams) {
    uint64_t last_epoch = 0;  // per stream: epochs strictly increase
    for (size_t seg = 0; seg < segs.size(); ++seg) {
      const std::string& name = segs[seg];
      // Damage in any segment but the stream's last means acknowledged
      // history was corrupted at rest; in the last it is ordinary crash
      // residue. The report carries the first damage found.
      auto stop = [&](std::string reason, uint64_t offset) {
        const bool interior = seg + 1 != segs.size();
        any_torn = true;
        if (interior) any_interior = true;
        if (report.stop_reason.empty()) {
          report.stop_reason = name + ": " + reason;
          report.stop_segment = name;
          report.stop_offset = offset;
        }
      };

      buffers.emplace_back();
      std::vector<uint8_t>& buf = buffers.back();
      if (!ReadWholeFile(dir + "/" + name, &buf)) {
        stop("unreadable", 0);
        break;
      }
      ++report.segments_scanned;

      if (buf.size() < sizeof(SegmentHeader)) {
        // A crash right after rotation can leave a truncated (even empty)
        // trailing segment; nothing in it was ever acknowledged.
        stop("truncated segment header", 0);
        break;
      }
      SegmentHeader sh;
      std::memcpy(&sh, buf.data(), sizeof(sh));
      if (!ValidSegmentHeader(sh)) {
        stop("bad segment header", 0);
        break;
      }

      size_t off = sizeof(SegmentHeader);
      bool segment_torn = false;
      while (off < buf.size()) {
        if (buf.size() - off < sizeof(BlockHeader)) {
          stop("truncated block header", off);
          segment_torn = true;
          break;
        }
        BlockHeader bh;
        std::memcpy(&bh, buf.data() + off, sizeof(bh));
        if (bh.magic != kBlockMagic) {
          stop("bad block magic", off);
          segment_torn = true;
          break;
        }
        if (bh.header_crc != BlockHeaderCrc(bh)) {
          stop("block header CRC mismatch", off);
          segment_torn = true;
          break;
        }
        const size_t payload_off = off + sizeof(BlockHeader);
        if (buf.size() - payload_off < bh.payload_bytes) {
          stop("truncated block payload", off);
          segment_torn = true;
          break;
        }
        const uint8_t* payload = buf.data() + payload_off;
        if (crc32::Compute(payload, bh.payload_bytes) != bh.payload_crc) {
          stop("block payload CRC mismatch", off);
          segment_torn = true;
          break;
        }
        if (bh.epoch <= last_epoch) {
          // Epochs strictly increase within one stream; a regression means
          // the tail belongs to an older, partially-overwritten run.
          stop("non-monotonic epoch", off);
          segment_torn = true;
          break;
        }

        if (bh.epoch <= options.min_epoch_exclusive) {
          // Subsumed by the checkpoint: validated (above) but not applied.
          last_epoch = bh.epoch;
          off = payload_off + bh.payload_bytes;
          continue;
        }

        // The block checks out; parse its records (a heartbeat block has
        // none). Record-level failures inside a CRC-valid block would be
        // writer bugs, but stay defensive: cut the tail rather than apply
        // garbage.
        size_t roff = 0;
        uint32_t parsed = 0;
        bool bad_record = false;
        const size_t block_records_start = records.size();
        while (roff < bh.payload_bytes) {
          if (bh.payload_bytes - roff < sizeof(RecordHeader)) {
            bad_record = true;
            break;
          }
          ParsedRecord r;
          std::memcpy(&r.view.header, payload + roff, sizeof(RecordHeader));
          const RecordHeader& rh = r.view.header;
          const size_t len = sizeof(RecordHeader) +
                             static_cast<size_t>(rh.key_bytes) + rh.val_bytes;
          if (bh.payload_bytes - roff < len ||
              !RecordCrcOk(payload + roff, rh)) {
            bad_record = true;
            break;
          }
          r.view.key = payload + roff + sizeof(RecordHeader);
          r.view.val = r.view.key + rh.key_bytes;
          r.epoch = bh.epoch;
          records.push_back(r);
          roff += len;
          ++parsed;
        }
        if (bad_record || parsed != bh.n_records) {
          records.resize(block_records_start);  // drop the partial block
          stop("record framing mismatch inside block", off);
          segment_torn = true;
          break;
        }

        last_epoch = bh.epoch;
        block_epochs.push_back(bh.epoch);
        off = payload_off + bh.payload_bytes;
      }
      if (segment_torn) break;
    }
    // This stream vouches for epochs up to its last valid block. The
    // durable cut is the min across streams: an epoch was acknowledged
    // only once EVERY partition fsynced its block for it, and heartbeat
    // blocks guarantee every stream has a block for every flushed epoch —
    // so a stream ending earlier than the others really did lose
    // unacknowledged tail, and nothing past its end was durable anywhere.
    cut = std::min(cut, last_epoch);
  }
  if (streams.empty()) cut = 0;
  report.durable_cut = cut;
  report.max_epoch = cut;

  if (any_torn) {
    report.torn_tail = true;
    report.state = any_interior ? LogDirState::kCorruptInterior
                                : LogDirState::kTornTail;
  }

  for (const uint64_t e : block_epochs) {
    if (e <= cut) {
      ++report.blocks_applied;
    } else {
      ++report.blocks_beyond_cut;
    }
  }

  // Workers interleave arbitrarily inside an epoch block; rebuild version
  // chains oldest-commit-first. stable_sort keeps the (already correct)
  // epoch order between equal timestamps from distinct engines.
  std::stable_sort(records.begin(), records.end(),
                   [](const ParsedRecord& a, const ParsedRecord& b) {
                     return a.view.header.commit_ts < b.view.header.commit_ts;
                   });
  for (const ParsedRecord& r : records) {
    if (r.epoch > cut) continue;  // round never acknowledged; not durable
    if (apply(r.view)) {
      ++report.records_applied;
      if (r.view.header.commit_ts > report.max_commit_ts) {
        report.max_commit_ts = r.view.header.commit_ts;
      }
    } else {
      ++report.records_skipped_unknown_table;
    }
  }
  return report;
}

}  // namespace mv3c::wal
