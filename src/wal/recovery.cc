#include "wal/recovery.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

namespace mv3c::wal {

namespace {

/// Segment file names are zero-padded (`wal-%06u.log`), so lexicographic
/// order is creation order.
std::vector<std::string> ListSegments(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (dirent* e = ::readdir(d)) {
    const std::string n = e->d_name;
    if (n.size() > 8 && n.rfind("wal-", 0) == 0 &&
        n.compare(n.size() - 4, 4, ".log") == 0) {
      names.push_back(n);
    }
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

bool ReadWholeFile(const std::string& path, std::vector<uint8_t>* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return false;
  }
  out->resize(static_cast<size_t>(st.st_size));
  size_t got = 0;
  while (got < out->size()) {
    const ssize_t r = ::read(fd, out->data() + got, out->size() - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return false;
    }
    if (r == 0) break;  // file shrank under us; treat the rest as missing
    got += static_cast<size_t>(r);
  }
  ::close(fd);
  out->resize(got);
  return true;
}

struct ParsedRecord {
  RecordView view;  // pointers into the owning segment buffer
};

}  // namespace

RecoveryReport ReplayLogDir(
    const std::string& dir,
    const std::function<bool(const RecordView&)>& apply) {
  RecoveryReport report;
  // Buffers must outlive the sort+apply below: RecordViews point into them.
  std::vector<std::vector<uint8_t>> buffers;
  std::vector<ParsedRecord> records;
  uint64_t last_epoch = 0;

  auto stop = [&](std::string reason) {
    report.torn_tail = true;
    report.stop_reason = std::move(reason);
  };

  for (const std::string& name : ListSegments(dir)) {
    buffers.emplace_back();
    std::vector<uint8_t>& buf = buffers.back();
    if (!ReadWholeFile(dir + "/" + name, &buf)) {
      stop(name + ": unreadable");
      break;
    }
    ++report.segments_scanned;

    if (buf.size() < sizeof(SegmentHeader)) {
      // A crash right after rotation can leave a truncated (even empty)
      // trailing segment; nothing in it was ever acknowledged.
      stop(name + ": truncated segment header");
      break;
    }
    SegmentHeader sh;
    std::memcpy(&sh, buf.data(), sizeof(sh));
    if (!ValidSegmentHeader(sh)) {
      stop(name + ": bad segment header");
      break;
    }

    size_t off = sizeof(SegmentHeader);
    bool segment_torn = false;
    while (off < buf.size()) {
      if (buf.size() - off < sizeof(BlockHeader)) {
        stop(name + ": truncated block header");
        segment_torn = true;
        break;
      }
      BlockHeader bh;
      std::memcpy(&bh, buf.data() + off, sizeof(bh));
      if (bh.magic != kBlockMagic) {
        stop(name + ": bad block magic");
        segment_torn = true;
        break;
      }
      if (bh.header_crc != BlockHeaderCrc(bh)) {
        stop(name + ": block header CRC mismatch");
        segment_torn = true;
        break;
      }
      const size_t payload_off = off + sizeof(BlockHeader);
      if (buf.size() - payload_off < bh.payload_bytes) {
        stop(name + ": truncated block payload");
        segment_torn = true;
        break;
      }
      const uint8_t* payload = buf.data() + payload_off;
      if (crc32::Compute(payload, bh.payload_bytes) != bh.payload_crc) {
        stop(name + ": block payload CRC mismatch");
        segment_torn = true;
        break;
      }
      if (bh.epoch <= last_epoch) {
        // Epochs are strictly increasing across the whole log; a regression
        // means the tail belongs to an older, partially-overwritten run.
        stop(name + ": non-monotonic epoch");
        segment_torn = true;
        break;
      }

      // The block checks out; parse its records. Record-level failures
      // inside a CRC-valid block would be writer bugs, but stay defensive:
      // cut the tail rather than apply garbage.
      size_t roff = 0;
      uint32_t parsed = 0;
      bool bad_record = false;
      const size_t block_records_start = records.size();
      while (roff < bh.payload_bytes) {
        if (bh.payload_bytes - roff < sizeof(RecordHeader)) {
          bad_record = true;
          break;
        }
        ParsedRecord r;
        std::memcpy(&r.view.header, payload + roff, sizeof(RecordHeader));
        const RecordHeader& rh = r.view.header;
        const size_t len =
            sizeof(RecordHeader) +
            static_cast<size_t>(rh.key_bytes) + rh.val_bytes;
        if (bh.payload_bytes - roff < len ||
            !RecordCrcOk(payload + roff, rh)) {
          bad_record = true;
          break;
        }
        r.view.key = payload + roff + sizeof(RecordHeader);
        r.view.val = r.view.key + rh.key_bytes;
        records.push_back(r);
        roff += len;
        ++parsed;
      }
      if (bad_record || parsed != bh.n_records) {
        records.resize(block_records_start);  // drop the partial block
        stop(name + ": record framing mismatch inside block");
        segment_torn = true;
        break;
      }

      last_epoch = bh.epoch;
      report.max_epoch = bh.epoch;
      ++report.blocks_applied;
      off = payload_off + bh.payload_bytes;
    }
    if (segment_torn) break;
  }

  // Workers interleave arbitrarily inside an epoch block; rebuild version
  // chains oldest-commit-first. stable_sort keeps the (already correct)
  // epoch order between equal timestamps from distinct engines.
  std::stable_sort(records.begin(), records.end(),
                   [](const ParsedRecord& a, const ParsedRecord& b) {
                     return a.view.header.commit_ts < b.view.header.commit_ts;
                   });
  for (const ParsedRecord& r : records) {
    if (apply(r.view)) {
      ++report.records_applied;
      if (r.view.header.commit_ts > report.max_commit_ts) {
        report.max_commit_ts = r.view.header.commit_ts;
      }
    } else {
      ++report.records_skipped_unknown_table;
    }
  }
  return report;
}

}  // namespace mv3c::wal
