#ifndef MV3C_WAL_CHECKPOINT_FORMAT_H_
#define MV3C_WAL_CHECKPOINT_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <type_traits>

#include "common/crc32.h"
#include "wal/wal_format.h"

namespace mv3c::wal {

/// On-disk layout of a checkpoint (DESIGN §5g). A checkpoint with sequence
/// number S consists of a directory `ckpt-SSSSSS/` holding one segment
/// file `table-NNNN.ckpt` per registered table, plus a manifest file
/// `MANIFEST-SSSSSS` in the log directory itself. Both live inside the WAL
/// directory, so one directory captures the full durable state.
///
/// A table segment is one CkptSegmentHeader followed by a sequence of WAL
/// records (the exact RecordHeader + key + after-image framing of
/// wal_format.h, one record per live row or tombstone). Reusing the WAL
/// record format means per-record CRC32-C comes for free, recovery loads
/// checkpoint rows through the same Catalog bindings that replay the log,
/// and wal_dump prints both with one code path.
///
/// The manifest is the atomicity point: it is written to a `.tmp` file,
/// fsynced, renamed into place, and the directory fsynced — so it either
/// exists completely or not at all, and no recovery can observe a
/// half-written checkpoint as current. It carries the checkpoint's cut
/// epoch (every WAL epoch <= cut is subsumed), the snapshot timestamp, and
/// per-table {record count, byte count, whole-file CRC} so segment damage
/// is detected before a single record is applied.
///
/// Same host-endian memcpy conventions as the WAL format: checkpoints are
/// recovery artifacts for the machine that wrote them.

inline constexpr char kCkptSegmentMagic[8] = {'M', 'V', '3', 'C',
                                              'C', 'K', 'P', '1'};
inline constexpr char kManifestMagic[8] = {'M', 'V', '3', 'C',
                                           'M', 'A', 'N', '1'};
inline constexpr uint32_t kCkptFormatVersion = 1;

struct CkptSegmentHeader {
  char magic[8];            // kCkptSegmentMagic
  uint32_t format_version;  // kCkptFormatVersion
  uint32_t table_id;
  uint64_t checkpoint_seq;  // owning checkpoint (cross-check vs manifest)
  uint32_t reserved;
  uint32_t header_crc;  // CRC32-C over all prior fields
};
static_assert(sizeof(CkptSegmentHeader) == 32);
static_assert(std::is_trivially_copyable_v<CkptSegmentHeader>);

inline CkptSegmentHeader MakeCkptSegmentHeader(uint32_t table_id,
                                               uint64_t seq) {
  CkptSegmentHeader h{};
  std::memcpy(h.magic, kCkptSegmentMagic, sizeof(h.magic));
  h.format_version = kCkptFormatVersion;
  h.table_id = table_id;
  h.checkpoint_seq = seq;
  h.header_crc =
      crc32::Compute(&h, offsetof(CkptSegmentHeader, header_crc));
  return h;
}

inline bool ValidCkptSegmentHeader(const CkptSegmentHeader& h) {
  return std::memcmp(h.magic, kCkptSegmentMagic, sizeof(h.magic)) == 0 &&
         h.format_version == kCkptFormatVersion &&
         h.header_crc ==
             crc32::Compute(&h, offsetof(CkptSegmentHeader, header_crc));
}

/// How a manifest table entry's records replay against the WAL suffix.
enum class CkptTableKind : uint8_t {
  /// MVCC table: the segment holds the newest committed version of each
  /// row visible at scan_ts. Suffix records with commit_ts < scan_ts are
  /// already captured and MUST be skipped (applying them would push older
  /// timestamps on top of the loaded chain heads).
  kMvcc = 1,
  /// Single-version table: the segment holds TID-stamped row images from
  /// a fuzzy scan; the suffix replays through the if-newer load paths.
  kSv = 2,
};

struct ManifestTableEntry {
  uint32_t table_id;
  uint8_t kind;  // CkptTableKind
  uint8_t reserved8;
  uint16_t reserved16;
  uint64_t scan_ts;       // MVCC snapshot timestamp; 0 for SV tables
  uint64_t record_count;  // records in the table segment
  uint64_t file_bytes;    // total segment size, header included
  uint32_t file_crc;      // CRC32-C over the entire segment file
  uint32_t reserved32;
};
static_assert(sizeof(ManifestTableEntry) == 40);
static_assert(std::is_trivially_copyable_v<ManifestTableEntry>);

struct ManifestHeader {
  char magic[8];            // kManifestMagic
  uint32_t format_version;  // kCkptFormatVersion
  uint32_t n_tables;
  uint64_t checkpoint_seq;
  /// Largest MVCC scan timestamp across the entries (diagnostics; the
  /// per-table scan_ts values are authoritative for replay filtering).
  uint64_t checkpoint_ts;
  /// Every WAL epoch <= cut_epoch was durable before the scan began, so
  /// the checkpoint subsumes it; recovery replays only epochs > cut_epoch.
  uint64_t cut_epoch;
  /// CRC32-C over this header (with manifest_crc zeroed) plus all table
  /// entries — the whole manifest validates as one unit.
  uint32_t manifest_crc;
  uint32_t reserved;
};
static_assert(sizeof(ManifestHeader) == 48);
static_assert(std::is_trivially_copyable_v<ManifestHeader>);

/// CRC over (header with manifest_crc zeroed) + the entry array.
inline uint32_t ManifestCrc(const ManifestHeader& h,
                            const ManifestTableEntry* entries,
                            uint32_t n_tables) {
  ManifestHeader copy = h;
  copy.manifest_crc = 0;
  uint32_t crc = crc32::Compute(&copy, sizeof(copy));
  return crc32::Extend(crc, entries,
                       static_cast<size_t>(n_tables) *
                           sizeof(ManifestTableEntry));
}

inline std::string CkptDirName(uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%06llu",
                static_cast<unsigned long long>(seq));
  return name;
}

inline std::string ManifestName(uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "MANIFEST-%06llu",
                static_cast<unsigned long long>(seq));
  return name;
}

inline std::string CkptTableFileName(uint32_t table_id) {
  char name[32];
  std::snprintf(name, sizeof(name), "table-%04u.ckpt", table_id);
  return name;
}

}  // namespace mv3c::wal

#endif  // MV3C_WAL_CHECKPOINT_FORMAT_H_
