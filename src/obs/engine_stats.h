#ifndef MV3C_OBS_ENGINE_STATS_H_
#define MV3C_OBS_ENGINE_STATS_H_

// The engines' counter structs, migrated onto the observability layer
// (ISSUE 3): the structs still live as plain fields inside the
// transactions/executors — an increment is one add, in every build — but
// their *definitions* live here, next to the registration functions that
// publish every field on a MetricsRegistry under its native name. That
// registration is what lets bench/runners.h aggregate any engine with one
// generic Snapshot()/Merge() instead of the old duck-typed `requires`
// blocks that silently remapped OMVCC validation_failures into a shared
// "conflict_rounds" field (and aliased MV3C repair_rounds onto it).
//
// CI greps for new `struct ...Stats` definitions outside src/obs/ — add
// counters here (with a registration entry) or not at all.

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "obs/metrics.h"

namespace mv3c {

/// MV3C engine statistics; accumulated across the transactions an executor
/// runs, reported by benchmarks under these field names.
struct Mv3cStats {
  uint64_t commits = 0;
  uint64_t user_aborts = 0;
  uint64_t ww_restarts = 0;           // fail-fast write-write restarts
  uint64_t validation_failures = 0;   // failed validation rounds
  uint64_t repair_rounds = 0;         // Repair algorithm invocations
  uint64_t invalidated_predicates = 0;
  uint64_t reexecuted_closures = 0;   // frontier closures re-run by Repair
  uint64_t result_set_fixes = 0;      // §4.2 patched scans
  uint64_t exclusive_repairs = 0;     // §4.3 in-critical-section repairs
  uint64_t escalations = 0;           // retry-policy ladder transitions
  uint64_t exhausted = 0;             // gave up after the attempt budget
  uint64_t backoff_us = 0;            // microseconds slept backing off
  uint64_t failpoint_trips = 0;       // injected faults observed
  uint64_t max_rounds = 0;            // most failed rounds in one txn
  uint64_t versions_discarded = 0;    // versions returned to the arena by
                                      // rollback/repair before commit

  void Add(const Mv3cStats& o) {
    commits += o.commits;
    user_aborts += o.user_aborts;
    ww_restarts += o.ww_restarts;
    validation_failures += o.validation_failures;
    repair_rounds += o.repair_rounds;
    invalidated_predicates += o.invalidated_predicates;
    reexecuted_closures += o.reexecuted_closures;
    result_set_fixes += o.result_set_fixes;
    exclusive_repairs += o.exclusive_repairs;
    escalations += o.escalations;
    exhausted += o.exhausted;
    backoff_us += o.backoff_us;
    failpoint_trips += o.failpoint_trips;
    max_rounds = std::max(max_rounds, o.max_rounds);
    versions_discarded += o.versions_discarded;
  }
};

/// Statistics for the OMVCC baseline.
struct OmvccStats {
  uint64_t commits = 0;
  uint64_t user_aborts = 0;
  uint64_t ww_restarts = 0;          // premature aborts on WW conflicts
  uint64_t validation_failures = 0;  // abort-and-restart on failed validation
  uint64_t exhausted = 0;            // gave up after the attempt budget
  uint64_t backoff_us = 0;           // microseconds slept backing off
  uint64_t failpoint_trips = 0;      // injected faults observed
  uint64_t max_rounds = 0;           // most failed rounds in one txn
  uint64_t versions_discarded = 0;   // versions returned to the arena by
                                     // restart rollbacks before commit

  void Add(const OmvccStats& o) {
    commits += o.commits;
    user_aborts += o.user_aborts;
    ww_restarts += o.ww_restarts;
    validation_failures += o.validation_failures;
    exhausted += o.exhausted;
    backoff_us += o.backoff_us;
    failpoint_trips += o.failpoint_trips;
    max_rounds = std::max(max_rounds, o.max_rounds);
    versions_discarded += o.versions_discarded;
  }
};

/// Statistics for the single-version engines (OCC, SILO).
struct SvStats {
  uint64_t commits = 0;
  uint64_t user_aborts = 0;
  uint64_t validation_failures = 0;  // abort-and-restart rounds
  uint64_t exhausted = 0;            // gave up after the attempt budget
  uint64_t backoff_us = 0;           // microseconds slept backing off
  uint64_t failpoint_trips = 0;      // injected faults observed
  uint64_t max_rounds = 0;           // most failed rounds in one txn

  void Add(const SvStats& o) {
    commits += o.commits;
    user_aborts += o.user_aborts;
    validation_failures += o.validation_failures;
    exhausted += o.exhausted;
    backoff_us += o.backoff_us;
    failpoint_trips += o.failpoint_trips;
    max_rounds = std::max(max_rounds, o.max_rounds);
  }
};

/// Statistics of the serving front-end (DESIGN §5k). Unlike the engine
/// stats these are atomics: the I/O thread and every worker increment them
/// while /metrics scrapes concurrently, so a snapshot must be a relaxed
/// load, not a racy read of a plain field. Increments stay one uncontended
/// atomic add — negligible next to a syscall-bearing request path.
struct ServerStats {
  std::atomic<uint64_t> connections_opened{0};
  std::atomic<uint64_t> connections_closed{0};
  std::atomic<uint64_t> protocol_errors{0};   // framing violations (CRC, magic…)
  std::atomic<uint64_t> requests_received{0};
  std::atomic<uint64_t> responses_sent{0};
  std::atomic<uint64_t> txn_committed{0};
  std::atomic<uint64_t> txn_user_aborted{0};
  std::atomic<uint64_t> txn_exhausted{0};     // engine gave up under contention
  std::atomic<uint64_t> shed_overload{0};     // admission queue full
  std::atomic<uint64_t> shed_rate_limited{0}; // per-client token bucket empty
  std::atomic<uint64_t> bad_requests{0};
  std::atomic<uint64_t> pings{0};
};

/// One relaxed increment — the only write ServerStats fields ever see.
inline void Bump(std::atomic<uint64_t>& c) {
  c.fetch_add(1, std::memory_order_relaxed);
}

namespace obs {

/// Publishes every Mv3cStats field on `reg` under its native name. `s`
/// must outlive the registry's last Snapshot().
inline void RegisterCounters(MetricsRegistry* reg, const Mv3cStats* s) {
  reg->RegisterCounter("commits", &s->commits);
  reg->RegisterCounter("user_aborts", &s->user_aborts);
  reg->RegisterCounter("ww_restarts", &s->ww_restarts);
  reg->RegisterCounter("validation_failures", &s->validation_failures);
  reg->RegisterCounter("repair_rounds", &s->repair_rounds);
  reg->RegisterCounter("invalidated_predicates", &s->invalidated_predicates);
  reg->RegisterCounter("reexecuted_closures", &s->reexecuted_closures);
  reg->RegisterCounter("result_set_fixes", &s->result_set_fixes);
  reg->RegisterCounter("exclusive_repairs", &s->exclusive_repairs);
  reg->RegisterCounter("escalations", &s->escalations);
  reg->RegisterCounter("exhausted", &s->exhausted);
  reg->RegisterCounter("backoff_us", &s->backoff_us);
  reg->RegisterCounter("failpoint_trips", &s->failpoint_trips);
  reg->RegisterCounter("max_rounds", &s->max_rounds, MergeKind::kMax);
  reg->RegisterCounter("versions_discarded", &s->versions_discarded);
}

inline void RegisterCounters(MetricsRegistry* reg, const OmvccStats* s) {
  reg->RegisterCounter("commits", &s->commits);
  reg->RegisterCounter("user_aborts", &s->user_aborts);
  reg->RegisterCounter("ww_restarts", &s->ww_restarts);
  reg->RegisterCounter("validation_failures", &s->validation_failures);
  reg->RegisterCounter("exhausted", &s->exhausted);
  reg->RegisterCounter("backoff_us", &s->backoff_us);
  reg->RegisterCounter("failpoint_trips", &s->failpoint_trips);
  reg->RegisterCounter("max_rounds", &s->max_rounds, MergeKind::kMax);
  reg->RegisterCounter("versions_discarded", &s->versions_discarded);
}

inline void RegisterCounters(MetricsRegistry* reg, const SvStats* s) {
  reg->RegisterCounter("commits", &s->commits);
  reg->RegisterCounter("user_aborts", &s->user_aborts);
  reg->RegisterCounter("validation_failures", &s->validation_failures);
  reg->RegisterCounter("exhausted", &s->exhausted);
  reg->RegisterCounter("backoff_us", &s->backoff_us);
  reg->RegisterCounter("failpoint_trips", &s->failpoint_trips);
  reg->RegisterCounter("max_rounds", &s->max_rounds, MergeKind::kMax);
}

inline void RegisterCounters(MetricsRegistry* reg, const ServerStats* s) {
  reg->RegisterAtomicCounter("connections_opened", &s->connections_opened);
  reg->RegisterAtomicCounter("connections_closed", &s->connections_closed);
  reg->RegisterAtomicCounter("protocol_errors", &s->protocol_errors);
  reg->RegisterAtomicCounter("requests_received", &s->requests_received);
  reg->RegisterAtomicCounter("responses_sent", &s->responses_sent);
  reg->RegisterAtomicCounter("txn_committed", &s->txn_committed);
  reg->RegisterAtomicCounter("txn_user_aborted", &s->txn_user_aborted);
  reg->RegisterAtomicCounter("txn_exhausted", &s->txn_exhausted);
  reg->RegisterAtomicCounter("shed_overload", &s->shed_overload);
  reg->RegisterAtomicCounter("shed_rate_limited", &s->shed_rate_limited);
  reg->RegisterAtomicCounter("bad_requests", &s->bad_requests);
  reg->RegisterAtomicCounter("pings", &s->pings);
}

}  // namespace obs
}  // namespace mv3c

#endif  // MV3C_OBS_ENGINE_STATS_H_
