#ifndef MV3C_OBS_METRICS_H_
#define MV3C_OBS_METRICS_H_

// Unified observability layer (DESIGN §5d): named counters plus
// log-bucketed (power-of-2, HDR-style) latency histograms for the
// per-transaction phases, shared by all five engines so that benchmark
// reports compare like with like (the CCBench lesson: protocol comparisons
// are only trustworthy with uniform, low-overhead phase instrumentation).
//
// Two compile-time regimes, keyed on -DMV3C_OBS=ON/OFF:
//   * Counters are ALWAYS on. They are plain uint64_t fields owned by the
//     engines (src/obs/engine_stats.h); the registry only *views* them
//     through registered (name, pointer, merge-rule) triples, so an
//     increment costs exactly what it cost before this layer existed and
//     tests keep asserting on exact counter values in every build.
//   * Phase timers, histograms and the event tracer compile to nothing
//     under OFF: ScopedPhaseTimer becomes an empty shell, RecordPhase a
//     no-op, and the out-of-line support code (tsc calibration, trace
//     draining) is not compiled at all — the obs-off ctest verifies no
//     such symbol survives in the binaries.
//
// Timing uses the TSC directly (rdtsc on x86, a steady_clock fallback
// elsewhere): a scoped timer is two register reads plus one bucket
// increment (lock-free on single-threaded executor registries, behind a
// spin lock on shared ones), cheap enough to leave on in benchmark builds
// (see EXPERIMENTS.md "Phase breakdown methodology" for the fig7a ON/OFF
// measurement).

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/spinlock.h"

#if defined(MV3C_OBS_ENABLED)
#include <bit>
#if !defined(__x86_64__) && !defined(__i386__)
#include <chrono>
#endif
#endif

namespace mv3c::obs {

/// The per-transaction phase taxonomy (after Larson et al.): where a
/// transaction's wall-clock time goes between Begin and completion, plus
/// the two maintenance phases that run on behalf of all transactions.
enum class Phase : uint8_t {
  kExecute = 0,   // running the program / re-execution after restart
  kValidate,      // pre-validation & marking outside the critical section
  kRepair,        // MV3C Repair (Algorithm 2) rounds
  kCommit,        // the commit critical section (incl. in-lock delta work)
  kGc,            // TransactionManager::CollectGarbage
  kArenaRetire,   // VersionArena slab retirement/recycling
  kLogSerialize,  // WAL: write-set serialization inside the commit lock
  kLogFlush,      // WAL: one group-commit epoch round (drain+append+fsync)
  kCheckpoint,    // WAL: one fuzzy checkpoint (scan+stream+manifest publish)
  kNumPhases,
};

inline constexpr int kNumPhases = static_cast<int>(Phase::kNumPhases);

inline const char* PhaseName(Phase p) {
  static constexpr const char* kNames[kNumPhases] = {
      "execute",      "validate",  "repair",   "commit",
      "gc",           "arena_retire", "log_serialize", "log_flush",
      "checkpoint"};
  return kNames[static_cast<int>(p)];
}

/// How a counter aggregates when snapshots from several executors/threads
/// merge into one report: summed (events) or maxed (high-water marks).
enum class MergeKind : uint8_t { kSum, kMax };

/// Whether RecordPhase may be called from several threads concurrently.
/// Per-executor registries are single-threaded by construction and skip
/// the lock (an uncontended atomic exchange still costs ~20 cycles — real
/// money against a sub-100 ns validate phase); the TransactionManager's
/// registry (arena retirement can fire from any thread dropping the last
/// slab reference) and the shared SV-engine registries stay synchronized.
enum class RecordSync : uint8_t { kUnsynchronized, kSynchronized };

/// Phase timing is sampled at transaction granularity: every
/// kPhaseSampleEvery-th transaction has all of its phases timed, the rest
/// skip the timers entirely (a ScopedPhaseTimer with a null registry reads
/// no TSC). rdtsc costs ~17 ns on a virtualized container and is an
/// optimizer barrier, so timing every phase of every transaction costs
/// ~10% on fig7a's sub-2 µs transactions; 1-in-16 sampling drops that
/// under the noise floor while a quick fig7a run still collects thousands
/// of samples per phase. Histogram `count` is therefore the number of
/// *sampled* phase executions (≈ total/16), and `max` is the sampled max.
/// GC and arena-retire events are rare and stay always-timed.
inline constexpr uint32_t kPhaseSampleEvery = 16;

#if defined(MV3C_OBS_ENABLED)
/// Per-owner sampling counter. Tick() is true once every
/// kPhaseSampleEvery calls (including the first, so short tests and
/// single-shot transactions still record).
class PhaseSampler {
 public:
  bool Tick() { return (n_++ % kPhaseSampleEvery) == 0; }

 private:
  uint32_t n_ = 0;
};
#else
class PhaseSampler {
 public:
  bool Tick() { return false; }
};
#endif

inline constexpr int kHistogramBuckets = 64;

/// Immutable copy of one histogram, in TSC ticks plus the tick->ns rate at
/// snapshot time. Always available (it is plain data); under -DMV3C_OBS=OFF
/// every instance simply stays empty.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum_ticks = 0;
  uint64_t max_ticks = 0;
  double ticks_per_ns = 1.0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  void Merge(const HistogramSnapshot& o) {
    count += o.count;
    sum_ticks += o.sum_ticks;
    if (o.max_ticks > max_ticks) max_ticks = o.max_ticks;
    if (o.count != 0) ticks_per_ns = o.ticks_per_ns;
    for (int i = 0; i < kHistogramBuckets; ++i) buckets[i] += o.buckets[i];
  }

  /// Value at quantile `p` in [0,1], in ticks. Buckets hold powers of two,
  /// so the answer is the upper edge of the bucket containing the p-th
  /// sample, clamped to the exact observed maximum — which makes the
  /// single-sample case exact and p=1 always return max_ticks.
  uint64_t PercentileTicks(double p) const {
    if (count == 0) return 0;
    if (p < 0) p = 0;
    if (p > 1) p = 1;
    uint64_t target = static_cast<uint64_t>(p * static_cast<double>(count));
    if (static_cast<double>(target) < p * static_cast<double>(count)) {
      ++target;  // ceil(p * count)
    }
    if (target == 0) target = 1;
    uint64_t cum = 0;
    for (int i = 0; i < kHistogramBuckets; ++i) {
      cum += buckets[i];
      if (cum >= target) {
        const uint64_t upper =
            i >= 63 ? ~0ULL : (uint64_t{1} << (i + 1)) - 1;
        return upper < max_ticks ? upper : max_ticks;
      }
    }
    return max_ticks;
  }

  double PercentileNs(double p) const {
    return static_cast<double>(PercentileTicks(p)) / ticks_per_ns;
  }
  double MaxNs() const {
    return static_cast<double>(max_ticks) / ticks_per_ns;
  }
  double MeanNs() const {
    if (count == 0) return 0;
    return static_cast<double>(sum_ticks) / static_cast<double>(count) /
           ticks_per_ns;
  }
};

/// Merged, self-describing copy of a registry: named counters (with their
/// merge rules) plus one histogram snapshot per phase. This is what
/// bench/runners.h aggregates across executors and what benches serialize,
/// replacing the per-engine duck-typed field remapping.
struct MetricsSnapshot {
  struct Counter {
    std::string name;
    uint64_t value = 0;
    MergeKind kind = MergeKind::kSum;
  };

  std::vector<Counter> counters;
  std::array<HistogramSnapshot, kNumPhases> phases{};

  void Merge(const MetricsSnapshot& o) {
    for (const Counter& c : o.counters) {
      Counter* mine = Find(c.name);
      if (mine == nullptr) {
        counters.push_back(c);
      } else if (c.kind == MergeKind::kMax) {
        if (c.value > mine->value) mine->value = c.value;
      } else {
        mine->value += c.value;
      }
    }
    for (int i = 0; i < kNumPhases; ++i) phases[i].Merge(o.phases[i]);
  }

  /// Value of a named counter; 0 if the engine never registered it (the
  /// uniform way benches ask for another engine's native counters).
  uint64_t Value(std::string_view name) const {
    for (const Counter& c : counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  }

  bool Has(std::string_view name) const {
    for (const Counter& c : counters) {
      if (c.name == name) return true;
    }
    return false;
  }

  const HistogramSnapshot& phase(Phase p) const {
    return phases[static_cast<int>(p)];
  }

  /// {"commits":123,...} — native names, insertion order.
  std::string CountersJson() const {
    std::string out = "{";
    for (const Counter& c : counters) {
      if (out.size() > 1) out += ",";
      out += "\"";
      out += c.name;
      out += "\":";
      out += std::to_string(c.value);
    }
    out += "}";
    return out;
  }

  /// {"execute":{"count":N,"p50_ns":...,"p99_ns":...,"max_ns":...},...}
  /// Phases with no samples are omitted (e.g. repair for OMVCC).
  std::string PhasesJson() const {
    std::string out = "{";
    for (int i = 0; i < kNumPhases; ++i) {
      const HistogramSnapshot& h = phases[i];
      if (h.count == 0) continue;
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "\"%s\":{\"count\":%llu,\"p50_ns\":%.0f,"
                    "\"p99_ns\":%.0f,\"max_ns\":%.0f}",
                    PhaseName(static_cast<Phase>(i)),
                    static_cast<unsigned long long>(h.count),
                    h.PercentileNs(0.50), h.PercentileNs(0.99), h.MaxNs());
      if (out.size() > 1) out += ",";
      out += buf;
    }
    out += "}";
    return out;
  }

 private:
  Counter* Find(std::string_view name) {
    for (Counter& c : counters) {
      if (c.name == name) return &c;
    }
    return nullptr;
  }
};

#if defined(MV3C_OBS_ENABLED)

/// Raw timestamp-counter read; the histogram unit. On x86 this is rdtsc
/// (~20 cycles, no serialization — phase durations are long enough that
/// out-of-order skew is noise); elsewhere steady_clock nanoseconds.
inline uint64_t TscNow() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_ia32_rdtsc();
#else
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// TSC ticks per nanosecond, calibrated once (lazily) against
/// steady_clock. Defined in metrics.cc — the symbol the obs-off build test
/// greps for to prove the timing layer compiled out.
double TscTicksPerNs();

/// Log-bucketed latency histogram: bucket i counts values in
/// [2^i, 2^(i+1)) ticks (bucket 0 covers {0,1}). Recording is a bit-scan
/// plus three adds; merge and percentiles run at snapshot time only.
/// Not internally synchronized — MetricsRegistry serializes access.
class LatencyHistogram {
 public:
  static int BucketOf(uint64_t v) {
    return v == 0 ? 0 : std::bit_width(v) - 1;
  }

  void Record(uint64_t ticks) {
    ++buckets_[BucketOf(ticks)];
    ++count_;
    sum_ += ticks;
    if (ticks > max_) max_ = ticks;
  }

  void Merge(const LatencyHistogram& o) {
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.max_ > max_) max_ = o.max_;
    for (int i = 0; i < kHistogramBuckets; ++i) buckets_[i] += o.buckets_[i];
  }

  uint64_t count() const { return count_; }

  HistogramSnapshot Snapshot() const {
    HistogramSnapshot s;
    s.count = count_;
    s.sum_ticks = sum_;
    s.max_ticks = max_;
    s.ticks_per_ns = TscTicksPerNs();
    s.buckets = buckets_;
    return s;
  }

 private:
  std::array<uint64_t, kHistogramBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
};

#endif  // MV3C_OBS_ENABLED

/// One registry per metrics-owning component (executor, transaction
/// manager, SV engine). Counters are registered views onto fields that the
/// owner keeps incrementing directly; phase recordings go into per-phase
/// histograms, locked or lock-free per the RecordSync policy chosen at
/// construction (executors opt out of the lock; the manager's registry
/// takes rare GC/arena events from any thread and stays synchronized).
class MetricsRegistry {
 public:
  explicit MetricsRegistry(RecordSync sync = RecordSync::kSynchronized)
#if defined(MV3C_OBS_ENABLED)
      : sync_(sync)
#endif
  {
    (void)sync;
  }
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers `field` under `name`. The field must outlive the registry's
  /// last Snapshot(); `name` must be a literal (not copied).
  void RegisterCounter(const char* name, const uint64_t* field,
                       MergeKind kind = MergeKind::kSum) {
    counters_.push_back({name, field, nullptr, kind});
  }

  /// Registers an atomic counter view. Engine counters are plain uint64_t
  /// because each is owned by one thread and snapshotted after a quiesce;
  /// components whose counters are written concurrently with Snapshot()
  /// (the serving front-end, scraped live by /metrics) register atomics so
  /// a scrape is a relaxed load, not a data race.
  void RegisterAtomicCounter(const char* name,
                             const std::atomic<uint64_t>* field,
                             MergeKind kind = MergeKind::kSum) {
    counters_.push_back({name, nullptr, field, kind});
  }

#if defined(MV3C_OBS_ENABLED)
  void RecordPhase(Phase p, uint64_t ticks) {
    if (sync_ == RecordSync::kSynchronized) {
      SpinLockGuard g(lock_);
      hist_[static_cast<int>(p)].Record(ticks);
    } else {
      hist_[static_cast<int>(p)].Record(ticks);
    }
  }
#else
  void RecordPhase(Phase, uint64_t) {}
#endif

  MetricsSnapshot Snapshot() const {
    MetricsSnapshot s;
    s.counters.reserve(counters_.size());
    for (const CounterRef& c : counters_) {
      const uint64_t v = c.field != nullptr
                             ? *c.field
                             : c.atomic_field->load(std::memory_order_relaxed);
      s.counters.push_back({c.name, v, c.kind});
    }
#if defined(MV3C_OBS_ENABLED)
    SpinLockGuard g(lock_);
    for (int i = 0; i < kNumPhases; ++i) s.phases[i] = hist_[i].Snapshot();
#endif
    return s;
  }

 private:
  struct CounterRef {
    const char* name;
    const uint64_t* field;                      // exactly one of these two
    const std::atomic<uint64_t>* atomic_field;  // is non-null
    MergeKind kind;
  };

  /// RegisterCounter runs during single-threaded engine setup, before any
  /// worker can call Snapshot (DESIGN §5d); lock_ covers the histograms,
  /// not the registration list.
  // mv3c-lint: allow(guarded_by_coverage)
  std::vector<CounterRef> counters_;
#if defined(MV3C_OBS_ENABLED)
  const RecordSync sync_;
  mutable SpinLock lock_;
  /// Deliberately NOT MV3C_GUARDED_BY(lock_): whether the lock covers the
  /// histograms is the RecordSync policy chosen at construction — executor
  /// registries are single-threaded and record lock-free (DESIGN §5d), the
  /// manager's registry synchronizes. A conditional capability is outside
  /// the static model; the TSan jobs cover the lock-free contract.
  // mv3c-lint: allow(guarded_by_coverage)
  LatencyHistogram hist_[kNumPhases];
#endif
};

#if defined(MV3C_OBS_ENABLED)

/// RAII phase timer: reads the TSC at construction and records the delta
/// into `registry`'s phase histogram at scope exit. A null registry makes
/// it inert and TSC-free — the per-transaction sampling path (executors
/// pass null for unsampled transactions) and the arena before its registry
/// is attached both ride on this.
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(MetricsRegistry* registry, Phase phase)
      : registry_(registry), phase_(phase),
        start_(registry != nullptr ? TscNow() : 0) {}
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;
  ~ScopedPhaseTimer() {
    if (registry_ != nullptr) {
      registry_->RecordPhase(phase_, TscNow() - start_);
    }
  }

 private:
  MetricsRegistry* registry_;
  Phase phase_;
  uint64_t start_;
};

#else  // !MV3C_OBS_ENABLED

/// -DMV3C_OBS=OFF shell: constructing and destroying it is a no-op the
/// optimizer deletes entirely.
class ScopedPhaseTimer {
 public:
  ScopedPhaseTimer(MetricsRegistry*, Phase) {}
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;
};

#endif  // MV3C_OBS_ENABLED

}  // namespace mv3c::obs

#endif  // MV3C_OBS_METRICS_H_
