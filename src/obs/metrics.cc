// Out-of-line support for the observability layer. The whole file is
// guarded: under -DMV3C_OBS=OFF it compiles to an empty translation unit,
// which is what lets the obs-off build test assert that no timing symbol
// exists in the binaries.

#include "obs/metrics.h"

#if defined(MV3C_OBS_ENABLED)

#include <chrono>

namespace mv3c::obs {

namespace {

double CalibrateTicksPerNs() {
  using clock = std::chrono::steady_clock;
  // Spin ~2 ms against steady_clock; the TSC on every supported platform is
  // constant-rate (constant_tsc), so one calibration serves the process.
  const clock::time_point t0 = clock::now();
  const uint64_t c0 = TscNow();
  clock::time_point t1;
  do {
    t1 = clock::now();
  } while (t1 - t0 < std::chrono::milliseconds(2));
  const uint64_t c1 = TscNow();
  const double ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count();
  const double rate = static_cast<double>(c1 - c0) / ns;
  // A TSC that went backwards or a clock that stalled would yield garbage;
  // fall back to 1 tick == 1 ns rather than divide by nonsense.
  return (rate > 0.0 && rate < 1e3) ? rate : 1.0;
}

}  // namespace

double TscTicksPerNs() {
  static const double rate = CalibrateTicksPerNs();
  return rate;
}

}  // namespace mv3c::obs

#endif  // MV3C_OBS_ENABLED
