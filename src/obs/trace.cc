// Tracer implementation. Empty translation unit under -DMV3C_OBS=OFF (the
// obs-off build test greps binaries for these symbols).

#include "obs/trace.h"

#if defined(MV3C_OBS_ENABLED)

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <mutex>

namespace mv3c::obs {

std::atomic<bool> Tracer::enabled_{false};

namespace {

struct TraceBuffer {
  std::unique_ptr<TraceRecord[]> ring{new TraceRecord[kTraceCapacity]};
  uint64_t next = 0;  // monotone event count; slot = next % kTraceCapacity
  uint32_t tid = 0;
};

// Registry of every thread's buffer. Buffers are never freed while the
// process runs (threads exit but their events remain drainable); Reset()
// drops them all for test isolation.
std::mutex g_buffers_mu;
std::vector<std::unique_ptr<TraceBuffer>>* g_buffers = nullptr;
uint32_t g_next_tid = 0;
// Bumped by Reset() to invalidate TLS pointers; atomic because recording
// threads check it outside g_buffers_mu.
std::atomic<uint64_t> g_generation{0};

struct TlsSlot {
  TraceBuffer* buffer = nullptr;
  uint64_t generation = 0;
};
thread_local TlsSlot tls_slot;

TraceBuffer* AcquireBuffer() {
  std::lock_guard<std::mutex> g(g_buffers_mu);
  if (g_buffers == nullptr) {
    g_buffers = new std::vector<std::unique_ptr<TraceBuffer>>();
  }
  auto buf = std::make_unique<TraceBuffer>();
  buf->tid = g_next_tid++;
  TraceBuffer* raw = buf.get();
  g_buffers->push_back(std::move(buf));
  tls_slot.buffer = raw;
  tls_slot.generation = g_generation.load(std::memory_order_relaxed);
  return raw;
}

}  // namespace

void Tracer::RecordSlow(TraceEvent kind, uint64_t id) {
  TraceBuffer* buf = tls_slot.buffer;
  if (MV3C_UNLIKELY(buf == nullptr ||
                    tls_slot.generation !=
                        g_generation.load(std::memory_order_relaxed))) {
    buf = AcquireBuffer();
  }
  TraceRecord& r = buf->ring[buf->next % kTraceCapacity];
  r.tsc = TscNow();
  r.id = id;
  r.tid = buf->tid;
  r.kind = kind;
  ++buf->next;
}

size_t Tracer::Drain(std::vector<TraceRecord>* out) {
  out->clear();
  std::lock_guard<std::mutex> g(g_buffers_mu);
  if (g_buffers == nullptr) return 0;
  for (auto& buf : *g_buffers) {
    const uint64_t n = buf->next;
    if (n <= kTraceCapacity) {
      out->insert(out->end(), buf->ring.get(), buf->ring.get() + n);
    } else {
      // Wrapped: the oldest surviving event sits at the write cursor.
      const uint64_t cur = n % kTraceCapacity;
      out->insert(out->end(), buf->ring.get() + cur,
                  buf->ring.get() + kTraceCapacity);
      out->insert(out->end(), buf->ring.get(), buf->ring.get() + cur);
    }
    buf->next = 0;
  }
  // Per-buffer runs are already chronological; a stable sort interleaves
  // threads without reordering any one thread's events.
  std::stable_sort(out->begin(), out->end(),
                   [](const TraceRecord& a, const TraceRecord& b) {
                     return a.tsc < b.tsc;
                   });
  return out->size();
}

void Tracer::WriteChromeJson(std::FILE* f) {
  std::vector<TraceRecord> events;
  Drain(&events);
  const double ticks_per_us = TscTicksPerNs() * 1000.0;
  const uint64_t base = events.empty() ? 0 : events.front().tsc;
  std::fputs("[", f);
  for (size_t i = 0; i < events.size(); ++i) {
    const TraceRecord& e = events[i];
    std::fprintf(
        f,
        "%s\n{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":0,"
        "\"tid\":%u,\"ts\":%.3f,\"args\":{\"id\":%llu}}",
        i == 0 ? "" : ",", TraceEventName(e.kind), e.tid,
        static_cast<double>(e.tsc - base) / ticks_per_us,
        static_cast<unsigned long long>(e.id));
  }
  std::fputs("\n]\n", f);
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> g(g_buffers_mu);
  if (g_buffers != nullptr) g_buffers->clear();
  g_next_tid = 0;
  g_generation.fetch_add(1, std::memory_order_relaxed);
}

void EnableTraceFromEnv() {
  const char* path = std::getenv("MV3C_TRACE");
  if (path != nullptr && path[0] != '\0') Tracer::SetEnabled(true);
}

void DumpTraceIfRequested() {
  const char* path = std::getenv("MV3C_TRACE");
  if (path == nullptr || path[0] == '\0') return;
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "obs: cannot open trace file %s\n", path);
    return;
  }
  Tracer::WriteChromeJson(f);
  std::fclose(f);
  std::fprintf(stderr,
               "obs: wrote Chrome trace to %s "
               "(open in chrome://tracing or ui.perfetto.dev)\n",
               path);
}

}  // namespace mv3c::obs

#endif  // MV3C_OBS_ENABLED
