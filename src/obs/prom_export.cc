#include "obs/prom_export.h"

#include <cstdio>

#include "common/macros.h"

namespace mv3c::obs {
namespace {

bool ValidLabelName(std::string_view name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha =
        (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
    if (!alpha && (i == 0 || c < '0' || c > '9')) return false;
  }
  return true;
}

void AppendEscapedLabelValue(std::string* out, std::string_view v) {
  for (const char c : v) {
    switch (c) {
      case '\\': *out += "\\\\"; break;
      case '"': *out += "\\\""; break;
      case '\n': *out += "\\n"; break;
      default: *out += c;
    }
  }
}

// HELP text escapes backslash and newline (not quotes — HELP is unquoted).
void AppendEscapedHelp(std::string* out, std::string_view v) {
  for (const char c : v) {
    switch (c) {
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      default: *out += c;
    }
  }
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  // %.17g round-trips any double; trim the noise for integral values,
  // which is what counters and bucket counts always are.
  if (v == static_cast<double>(static_cast<long long>(v))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.9g", v);
  }
  *out += buf;
}

}  // namespace

bool ValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       c == '_' || c == ':';
    if (!alpha && (i == 0 || c < '0' || c > '9')) return false;
  }
  return true;
}

void PromTextWriter::Header(std::string_view name, std::string_view help,
                            std::string_view type) {
  MV3C_CHECK(ValidMetricName(name));
  out_ += "# HELP ";
  out_ += name;
  out_ += ' ';
  AppendEscapedHelp(&out_, help);
  out_ += "\n# TYPE ";
  out_ += name;
  out_ += ' ';
  out_ += type;
  out_ += '\n';
}

void PromTextWriter::Sample(std::string_view name, std::string_view suffix,
                            const std::vector<PromLabel>& labels,
                            std::string_view extra_ln,
                            std::string_view extra_lv, double value) {
  out_ += name;
  out_ += suffix;
  if (!labels.empty() || !extra_ln.empty()) {
    out_ += '{';
    bool first = true;
    for (const PromLabel& l : labels) {
      MV3C_CHECK(ValidLabelName(l.name));
      if (!first) out_ += ',';
      first = false;
      out_ += l.name;
      out_ += "=\"";
      AppendEscapedLabelValue(&out_, l.value);
      out_ += '"';
    }
    if (!extra_ln.empty()) {
      if (!first) out_ += ',';
      out_ += extra_ln;
      out_ += "=\"";
      out_ += extra_lv;  // always a number or +Inf; nothing to escape
      out_ += '"';
    }
    out_ += '}';
  }
  out_ += ' ';
  AppendDouble(&out_, value);
  out_ += '\n';
}

void PromTextWriter::Counter(std::string_view name, std::string_view help,
                             uint64_t value,
                             const std::vector<PromLabel>& labels) {
  // The family is named with the _total suffix: OpenMetrics scrapers
  // expect `# TYPE x_total counter` to match the sample name exactly.
  std::string total(name);
  total += "_total";
  Header(total, help, "counter");
  Sample(total, "", labels, "", "", static_cast<double>(value));
}

void PromTextWriter::Gauge(std::string_view name, std::string_view help,
                           double value,
                           const std::vector<PromLabel>& labels) {
  Header(name, help, "gauge");
  Sample(name, "", labels, "", "", value);
}

void PromTextWriter::Histogram(std::string_view name, std::string_view help,
                               const HistogramSnapshot& h,
                               const std::vector<PromLabel>& labels) {
  Header(name, help, "histogram");
  // Highest non-empty bucket; everything above collapses into +Inf.
  int top = -1;
  for (int i = 0; i < kHistogramBuckets; ++i) {
    if (h.buckets[i] != 0) top = i;
  }
  const double ticks_per_s = h.ticks_per_ns * 1e9;
  uint64_t cum = 0;
  for (int i = 0; i <= top; ++i) {
    cum += h.buckets[i];
    // Upper edge of bucket i is 2^(i+1)-1 ticks (§5d log bucketing).
    const double edge_ticks =
        i >= 63 ? static_cast<double>(~0ULL)
                : static_cast<double>((uint64_t{1} << (i + 1)) - 1);
    char le[32];
    std::snprintf(le, sizeof(le), "%.9g", edge_ticks / ticks_per_s);
    Sample(name, "_bucket", labels, "le", le, static_cast<double>(cum));
  }
  Sample(name, "_bucket", labels, "le", "+Inf", static_cast<double>(h.count));
  Sample(name, "_sum", labels, "", "",
         static_cast<double>(h.sum_ticks) / ticks_per_s);
  Sample(name, "_count", labels, "", "", static_cast<double>(h.count));
}

void WriteSnapshot(PromTextWriter* w, const MetricsSnapshot& snap,
                   std::string_view prefix,
                   const std::vector<PromLabel>& labels) {
  for (const MetricsSnapshot::Counter& c : snap.counters) {
    std::string name(prefix);
    name += '_';
    name += c.name;
    if (c.kind == MergeKind::kMax) {
      w->Gauge(name, "high-water mark (merged with max)",
               static_cast<double>(c.value), labels);
    } else {
      w->Counter(name, "cumulative event count", c.value, labels);
    }
  }
  for (int i = 0; i < kNumPhases; ++i) {
    const HistogramSnapshot& h = snap.phases[i];
    if (h.count == 0) continue;
    std::string name(prefix);
    name += "_phase_";
    name += PhaseName(static_cast<Phase>(i));
    name += "_seconds";
    w->Histogram(name, "sampled per-phase latency histogram", h, labels);
  }
}

}  // namespace mv3c::obs
