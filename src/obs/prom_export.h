#ifndef MV3C_OBS_PROM_EXPORT_H_
#define MV3C_OBS_PROM_EXPORT_H_

// Prometheus text-exposition writer (DESIGN §5k): renders counters, gauges
// and the §5d log-bucketed phase histograms in the text format version
// 0.0.4 that every Prometheus-compatible scraper understands. This is a
// standalone formatting layer — no sockets, no registry coupling — shared
// by the serving front-end's /metrics endpoint and by tools/metrics_dump
// --format=prom, and unit-tested against the exposition grammar
// (tests/prom_export_test.cc) so both consumers inherit a checked
// implementation.
//
// Format contract implemented here:
//   * one `# HELP` and one `# TYPE` line precede a family's samples;
//   * metric names match [a-zA-Z_:][a-zA-Z0-9_:]*, label names
//     [a-zA-Z_][a-zA-Z0-9_]*; callers pass literal names and the writer
//     CHECKs them in debug builds;
//   * label values escape backslash, double-quote and newline;
//   * histograms emit cumulative `_bucket{le="..."}` samples in increasing
//     le order ending with le="+Inf" (== `_count`), plus `_sum`;
//   * samples of one family are contiguous (Prometheus rejects interleaved
//     families).

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"

namespace mv3c::obs {

struct PromLabel {
  std::string_view name;
  std::string_view value;
};

/// Streaming writer: call the family emitters in any order, read str()
/// once at the end. Family names must be unique per writer (a duplicate
/// `# TYPE` is a scrape error); the writer does not deduplicate.
class PromTextWriter {
 public:
  /// Monotonic counter. By Prometheus convention the sample name gets a
  /// `_total` suffix appended here — pass the bare family name.
  void Counter(std::string_view name, std::string_view help, uint64_t value,
               const std::vector<PromLabel>& labels = {});

  /// Point-in-time gauge (queue depth, token count, uptime).
  void Gauge(std::string_view name, std::string_view help, double value,
             const std::vector<PromLabel>& labels = {});

  /// Renders one §5d HistogramSnapshot as a Prometheus histogram in
  /// seconds. Buckets hold TSC ticks in power-of-two ranges; each upper
  /// edge converts through the snapshot's calibrated ticks_per_ns.
  /// Trailing empty buckets collapse into le="+Inf" so an idle phase does
  /// not emit 64 zero lines.
  void Histogram(std::string_view name, std::string_view help,
                 const HistogramSnapshot& h,
                 const std::vector<PromLabel>& labels = {});

  const std::string& str() const { return out_; }

 private:
  void Header(std::string_view name, std::string_view help,
              std::string_view type);
  void Sample(std::string_view name, std::string_view suffix,
              const std::vector<PromLabel>& labels, std::string_view extra_ln,
              std::string_view extra_lv, double value);

  std::string out_;
};

/// Renders a merged MetricsSnapshot: every counter becomes
/// `<prefix>_<name>[_total]` and every non-empty phase histogram becomes
/// `<prefix>_phase_<phase>_seconds`. MergeKind::kMax counters export as
/// gauges (a high-water mark is not monotonic across restarts).
void WriteSnapshot(PromTextWriter* w, const MetricsSnapshot& snap,
                   std::string_view prefix,
                   const std::vector<PromLabel>& labels = {});

/// True iff `name` is a valid Prometheus metric name.
bool ValidMetricName(std::string_view name);

}  // namespace mv3c::obs

#endif  // MV3C_OBS_PROM_EXPORT_H_
