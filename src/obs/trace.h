#ifndef MV3C_OBS_TRACE_H_
#define MV3C_OBS_TRACE_H_

// Per-thread lock-free event tracer (DESIGN §5d): each thread that emits
// an event owns a fixed 64 K-entry ring buffer (overwrite-oldest), so
// recording is a thread-local pointer load, one array store and one index
// bump — nothing shared, nothing locked, safe on every hot path including
// inside the commit critical section. Buffers register themselves with a
// global list on first use; Drain() walks all of them after the run and
// returns the surviving events in timestamp order, and WriteChromeJson()
// serializes them as Chrome trace_event JSON (load chrome://tracing or
// https://ui.perfetto.dev; see scripts/README_tracing.md).
//
// Tracing is gated on a process-global enable flag: disabled (the
// default), a compiled-in call site costs one relaxed atomic load and a
// predicted branch. Under -DMV3C_OBS=OFF the call sites compile to nothing
// at all and none of the symbols below exist.

#include <cstdint>

#include "common/macros.h"

#if defined(MV3C_OBS_ENABLED)
#include <atomic>
#include <cstdio>
#include <vector>

#include "obs/metrics.h"  // TscNow
#endif

namespace mv3c::obs {

/// What happened. The set mirrors the phase taxonomy: lifecycle edges of
/// one transaction plus the shared maintenance events.
enum class TraceEvent : uint8_t {
  kBegin = 0,       // transaction drew its start timestamp
  kValidateFail,    // a validation round failed (repair/restart follows)
  kRepairRound,     // an MV3C repair round started
  kCommit,          // commit succeeded
  kAbort,           // user abort or retry-budget exhaustion
  kGc,              // a CollectGarbage round ran (id = nodes freed)
  kArenaRetire,     // a version slab retired (id = slab address low bits)
  kNumEvents,
};

inline const char* TraceEventName(TraceEvent e) {
  static constexpr const char* kNames[static_cast<int>(
      TraceEvent::kNumEvents)] = {"begin",  "validate_fail", "repair_round",
                                  "commit", "abort",         "gc",
                                  "arena_retire"};
  return kNames[static_cast<int>(e)];
}

#if defined(MV3C_OBS_ENABLED)

inline constexpr size_t kTraceCapacity = 64 * 1024;  // events per thread

struct TraceRecord {
  uint64_t tsc = 0;
  uint64_t id = 0;   // transaction id / event payload
  uint32_t tid = 0;  // small per-thread ordinal, assigned on first event
  TraceEvent kind = TraceEvent::kBegin;
};

class Tracer {
 public:
  /// Turns recording on or off process-wide. Buffers are lazily created
  /// per thread on the first recorded event and survive until Reset().
  static void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  static void Record(TraceEvent kind, uint64_t id) {
    if (MV3C_LIKELY(!enabled())) return;
    RecordSlow(kind, id);
  }

  /// Moves every surviving event (oldest first, globally sorted by
  /// timestamp) into `*out` and clears the rings. Returns the event count.
  static size_t Drain(std::vector<TraceRecord>* out);

  /// Drains and writes Chrome trace_event JSON ("ph":"i" instant events,
  /// microsecond timestamps relative to the earliest event).
  static void WriteChromeJson(std::FILE* f);

  /// Drops all per-thread buffers (tests); existing threads re-register on
  /// their next recorded event.
  static void Reset();

 private:
  static void RecordSlow(TraceEvent kind, uint64_t id);

  static std::atomic<bool> enabled_;
};

/// Benchmark hooks: MV3C_TRACE=<path> in the environment switches tracing
/// on at startup and dumps the Chrome JSON at exit.
void EnableTraceFromEnv();
void DumpTraceIfRequested();

#define MV3C_TRACE_EVENT(kind, id) ::mv3c::obs::Tracer::Record((kind), (id))

#else  // !MV3C_OBS_ENABLED

inline void EnableTraceFromEnv() {}
inline void DumpTraceIfRequested() {}

#define MV3C_TRACE_EVENT(kind, id) \
  do {                             \
  } while (0)

#endif  // MV3C_OBS_ENABLED

}  // namespace mv3c::obs

#endif  // MV3C_OBS_TRACE_H_
