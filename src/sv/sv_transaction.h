#ifndef MV3C_SV_SV_TRANSACTION_H_
#define MV3C_SV_SV_TRANSACTION_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "common/macros.h"
#include "common/status.h"
#include "sv/sv_table.h"

namespace mv3c::sv {

/// Read-set entry: the TID word observed for a record (including ABSENT
/// observations, which protect repeatable non-existence).
struct SvRead {
  const std::atomic<uint64_t>* tid_word;
  uint64_t observed;
};

/// Node-set entry: an ordered-index shard version observed by a range
/// scan; re-validated at commit to catch phantoms (Silo's node-set
/// technique, reused by our OCC for simplicity).
struct SvNode {
  const std::atomic<uint64_t>* version;
  uint64_t observed;
};

/// Write-set entry. Row images live in the transaction's byte arena and
/// are installed with memcpy while the record is locked.
struct SvWrite {
  enum class Op : uint8_t { kUpdate, kInsert, kDelete };
  std::atomic<uint64_t>* tid_word;
  void* dst;
  size_t size;
  size_t buf_offset;
  Op op;
  /// Durability identity: the owning table's wal_id (0 when the table is
  /// not WAL-registered — the redo serializer skips such entries) and the
  /// record's stored key (stable address, deque arena).
  uint32_t wal_table_id;
  uint32_t key_bytes;
  const void* key;
};

/// The read phase of a single-version optimistic transaction: collects
/// read, node and write sets; the commit protocol (OCC or SILO) consumes
/// them. Transaction programs are `ExecStatus(SvTransaction&)` callables,
/// shared verbatim between the two engines.
///
/// Row images are bump-allocated into a per-transaction byte arena that is
/// reused across transactions — the single-version mirror of the MVCC
/// VersionArena (DESIGN §5c): the hot path never touches the system
/// allocator, and Clear() bounds the retained capacity so one oversized
/// transaction cannot pin memory forever. WriteArenaStats tracks the churn
/// for the overhead_memory benchmark.
///
/// Constraint (holds for all TPC-C programs here): a transaction reads a
/// record before writing it and writes each record at most once; reads
/// after writes of the same record are not buffered.
class SvTransaction {
 public:
  /// Undo/write-buffer churn counters; mirrors VersionArena::Stats for the
  /// single-version engines.
  struct WriteArenaStats {
    uint64_t bytes_pushed = 0;  // cumulative row-image bytes buffered
    uint64_t peak_bytes = 0;    // largest single-transaction buffer
    uint64_t shrinks = 0;       // capacity releases at Clear()
  };

  /// Retained-capacity bound: a transaction whose write buffer grew past
  /// this is released back to the allocator at Clear() instead of kept.
  static constexpr size_t kMaxRetainedArenaBytes = 64 * 1024;

  SvTransaction() { arena_.reserve(4096); }
  SvTransaction(const SvTransaction&) = delete;
  SvTransaction& operator=(const SvTransaction&) = delete;

  /// Reads `key`; returns true and fills `*out` if a live row exists. The
  /// observation is recorded either way.
  template <typename TableT>
  bool Read(const TableT& table, const typename TableT::Key& key,
            typename TableT::Row* out,
            typename TableT::Rec** rec_out = nullptr) {
    typename TableT::Rec* rec = table.Find(key);
    if (rec == nullptr) {
      // Key never existed: nothing to observe. A concurrent insert will be
      // caught by the node set if the access came from a scan; point
      // lookups of never-inserted keys are stable in our workloads.
      if (rec_out != nullptr) *rec_out = nullptr;
      return false;
    }
    const uint64_t w = rec->ReadStable(out);
    reads_.push_back({&rec->tid, w});
    if (rec_out != nullptr) *rec_out = rec;
    return !IsAbsent(w);
  }

  /// Buffers an update of a record previously read.
  template <typename TableT>
  void Update(TableT& table, typename TableT::Rec* rec,
              const typename TableT::Row& new_row) {
    const size_t off = Push(&new_row, sizeof(new_row));
    writes_.push_back({&rec->tid, &rec->row, sizeof(new_row), off,
                       SvWrite::Op::kUpdate, table.wal_id(),
                       static_cast<uint32_t>(sizeof(rec->key)), &rec->key});
  }

  /// Buffers an insert; returns false if a live row with the key exists in
  /// the current snapshot (the observation is registered, so a racing
  /// insert is caught at validation).
  template <typename TableT>
  bool Insert(TableT& table, const typename TableT::Key& key,
              const typename TableT::Row& row,
              typename TableT::Rec** rec_out = nullptr) {
    typename TableT::Rec* rec = table.GetOrCreate(key);
    typename TableT::Row ignored;
    const uint64_t w = rec->ReadStable(&ignored);
    reads_.push_back({&rec->tid, w});
    if (!IsAbsent(w)) return false;
    const size_t off = Push(&row, sizeof(row));
    writes_.push_back({&rec->tid, &rec->row, sizeof(row), off,
                       SvWrite::Op::kInsert, table.wal_id(),
                       static_cast<uint32_t>(sizeof(rec->key)), &rec->key});
    if (rec_out != nullptr) *rec_out = rec;
    return true;
  }

  /// Buffers a delete of a record previously read.
  template <typename TableT>
  void Delete(TableT& table, typename TableT::Rec* rec) {
    writes_.push_back({&rec->tid, &rec->row, 0, 0, SvWrite::Op::kDelete,
                       table.wal_id(),
                       static_cast<uint32_t>(sizeof(rec->key)), &rec->key});
  }

  /// Registers an index-shard version for phantom validation.
  void ObserveNode(const std::atomic<uint64_t>* version) {
    nodes_.push_back({version, version->load(std::memory_order_acquire)});
  }

  /// Registers a callback to run after the writes are installed (while the
  /// commit still holds the records locked under SILO / the mutex under
  /// OCC); used for secondary-index insertions of new rows.
  void OnInstall(std::function<void()> fn) {
    install_hooks_.push_back(std::move(fn));
  }

  std::vector<SvRead>& reads() { return reads_; }
  std::vector<SvNode>& nodes() { return nodes_; }
  std::vector<SvWrite>& writes() { return writes_; }
  const std::vector<SvWrite>& writes() const { return writes_; }
  const std::vector<std::function<void()>>& install_hooks() const {
    return install_hooks_;
  }
  const uint8_t* arena() const { return arena_.data(); }
  const WriteArenaStats& arena_stats() const { return arena_stats_; }

  void Clear() {
    reads_.clear();
    nodes_.clear();
    writes_.clear();
    install_hooks_.clear();
    if (arena_.capacity() > kMaxRetainedArenaBytes) {
      arena_ = {};
      arena_.reserve(4096);
      ++arena_stats_.shrinks;
    } else {
      arena_.clear();
    }
  }

  /// True if the write entry's record is also in this transaction's write
  /// set (used by SILO read validation: locked-by-me is fine).
  bool WritesWord(const std::atomic<uint64_t>* word) const {
    for (const SvWrite& w : writes_) {
      if (w.tid_word == word) return true;
    }
    return false;
  }

 private:
  size_t Push(const void* src, size_t n) {
    const size_t off = arena_.size();
    arena_.resize(off + n);
    std::memcpy(arena_.data() + off, src, n);
    arena_stats_.bytes_pushed += n;
    if (arena_.size() > arena_stats_.peak_bytes) {
      arena_stats_.peak_bytes = arena_.size();
    }
    return off;
  }

  std::vector<SvRead> reads_;
  std::vector<SvNode> nodes_;
  std::vector<SvWrite> writes_;
  std::vector<std::function<void()>> install_hooks_;
  std::vector<uint8_t> arena_;
  WriteArenaStats arena_stats_;
};

/// Installs the write set at `commit_tid`; every record must be locked (or
/// the caller must hold the global validation mutex).
inline void InstallWrites(SvTransaction& t, uint64_t commit_tid) {
  const auto& writes = t.writes();
  for (size_t i = 0; i < writes.size(); ++i) {
    const SvWrite& w = writes[i];
    if (w.op != SvWrite::Op::kDelete) {
      std::memcpy(w.dst, t.arena() + w.buf_offset, w.size);
    }
    // If a later entry targets the same record (a transaction may write a
    // record more than once), defer the TID publication — publishing now
    // would drop the lock while the later memcpy is still pending and let
    // readers accept a torn row.
    bool later_write_same_record = false;
    for (size_t j = i + 1; j < writes.size(); ++j) {
      if (writes[j].tid_word == w.tid_word) {
        later_write_same_record = true;
        break;
      }
    }
    if (later_write_same_record) continue;
    uint64_t word = commit_tid;
    if (w.op == SvWrite::Op::kDelete) word |= kAbsentBit;
    w.tid_word->store(word, std::memory_order_release);
  }
  for (const auto& hook : t.install_hooks()) hook();
}

}  // namespace mv3c::sv

#endif  // MV3C_SV_SV_TRANSACTION_H_
