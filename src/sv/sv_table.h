#ifndef MV3C_SV_SV_TABLE_H_
#define MV3C_SV_SV_TABLE_H_

#include <atomic>
#include <cstring>
#include <deque>
#include <string>
#include <type_traits>

#include "common/macros.h"
#include "common/spinlock.h"
#include "common/thread_safety.h"
#include "index/cuckoo_map.h"

namespace mv3c {

/// Single-version in-memory storage shared by the OCC and SILO baselines
/// (the paper compares against THEDB's OCC and SILO implementations on
/// TPC-C, §6.1.1). Each record carries one Silo-style TID word:
///
///   bit 63: LOCK   — held by a committing writer
///   bit 62: ABSENT — the slot exists but holds no live row
///   bits 0..61     — the record's version number (grows on every commit)
///
/// Readers copy the row optimistically and retry until they observe the
/// same unlocked TID before and after the copy.
namespace sv {

inline constexpr uint64_t kLockBit = 1ULL << 63;
inline constexpr uint64_t kAbsentBit = 1ULL << 62;
inline constexpr uint64_t kTidMask = kAbsentBit - 1;

inline bool IsLocked(uint64_t w) { return (w & kLockBit) != 0; }
inline bool IsAbsent(uint64_t w) { return (w & kAbsentBit) != 0; }

/// One record: TID word, the owning key, and the row payload in place. The
/// key is stored on the record (set once at allocation, immutable after)
/// so the redo serializer can reach it from a write-set entry without an
/// index lookup; record addresses are stable (deque arena), so pointers to
/// it stay valid for the transaction's lifetime.
template <typename K, typename Row>
struct Record {
  static_assert(std::is_trivially_copyable_v<Row>,
                "single-version rows are copied with memcpy");
  static_assert(std::is_trivially_copyable_v<K>,
                "single-version keys are logged with memcpy");
  std::atomic<uint64_t> tid{kAbsentBit};
  K key{};
  Row row{};

  /// Optimistically reads a stable snapshot of the row; returns the TID
  /// word observed (possibly ABSENT). Spins across concurrent installs.
  uint64_t ReadStable(Row* out) const {
    while (true) {
      const uint64_t v1 = tid.load(std::memory_order_acquire);
      if (IsLocked(v1)) continue;
      std::memcpy(out, &row, sizeof(Row));
      std::atomic_thread_fence(std::memory_order_acquire);
      const uint64_t v2 = tid.load(std::memory_order_acquire);
      if (v1 == v2) return v1;
    }
  }
};

/// A single-version table: cuckoo index from key to arena-allocated
/// records. Records are never physically removed; deletion sets ABSENT.
template <typename K, typename RowT>
class SvTable {
 public:
  using Key = K;
  using Row = RowT;
  using Rec = Record<K, RowT>;

  explicit SvTable(std::string name, size_t expected_rows = 1024)
      : name_(std::move(name)), index_(expected_rows) {}
  SvTable(const SvTable&) = delete;
  SvTable& operator=(const SvTable&) = delete;

  const std::string& name() const { return name_; }

  Rec* Find(const K& key) const {
    Rec* r = nullptr;
    (void)index_.Find(key, &r);  // miss leaves r nullptr, the signal
    return r;
  }

  /// Returns the record for `key`, creating an ABSENT one if needed.
  Rec* GetOrCreate(const K& key) {
    Rec* r = Find(key);
    if (r != nullptr) return r;
    Rec* fresh = Allocate(key);
    if (index_.Insert(key, fresh)) return fresh;
    MV3C_CHECK(index_.Find(key, &r));  // insert loser: winner must exist
    return r;
  }

  /// Non-transactional load (initial population, WAL replay): installs the
  /// row, present, at `tid` (1 for population; replay passes the record's
  /// commit TID).
  void LoadRow(const K& key, const RowT& row, uint64_t tid = 1) {
    Rec* r = GetOrCreate(key);
    r->row = row;
    r->tid.store(tid & kTidMask, std::memory_order_release);
  }

  /// Non-transactional delete (WAL replay of a tombstone record): marks
  /// the row ABSENT at `tid`.
  void LoadTombstone(const K& key, uint64_t tid = 1) {
    Rec* r = GetOrCreate(key);
    r->tid.store((tid & kTidMask) | kAbsentBit, std::memory_order_release);
  }

  /// Conditional loads for checkpoint-based recovery: the WAL suffix may
  /// replay a commit the checkpoint already captured (the fuzzy scan races
  /// installs of epochs past the cut), so a load only applies when its TID
  /// is at least as new as what the record holds. Equal TIDs re-apply: the
  /// suffix record is then the very commit the checkpoint captured (or a
  /// later write of the same multi-write transaction), so re-application
  /// is idempotent — and required for last-write-wins within one TID.
  /// Fresh records carry version 0 (the ABSENT sentinel masks to 0), so
  /// loading into an empty table degenerates to the unconditional paths.
  void LoadRowIfNewer(const K& key, const RowT& row, uint64_t tid) {
    Rec* r = GetOrCreate(key);
    if ((tid & kTidMask) <
        (r->tid.load(std::memory_order_acquire) & kTidMask)) {
      return;
    }
    r->row = row;
    r->tid.store(tid & kTidMask, std::memory_order_release);
  }

  void LoadTombstoneIfNewer(const K& key, uint64_t tid) {
    Rec* r = GetOrCreate(key);
    if ((tid & kTidMask) <
        (r->tid.load(std::memory_order_acquire) & kTidMask)) {
      return;
    }
    r->tid.store((tid & kTidMask) | kAbsentBit, std::memory_order_release);
  }

  size_t RecordCount() const { return index_.Size(); }

  /// Applies `fn(const K&, const Rec&)` to every record, live or ABSENT
  /// (weakly consistent under concurrent inserts); state digests filter
  /// visibility themselves.
  template <typename Fn>
  void ForEachRecord(Fn&& fn) const {
    index_.ForEach([&fn](const K& k, Rec* r) { fn(k, *r); });
  }

  /// Durability identity, mirroring TableBase::wal_id on the MVCC side:
  /// nonzero once the table is registered with a wal::Catalog. Plain
  /// metadata, compiled in regardless of -DMV3C_WAL.
  uint32_t wal_id() const { return wal_id_; }
  void set_wal_id(uint32_t id) { wal_id_ = id; }

  /// Approximate record-arena footprint; the single-version counterpart of
  /// VersionArena's held_bytes, reported by bench/overhead_memory.
  size_t ApproxArenaBytes() const {
    SpinLockGuard g(arena_lock_);
    return arena_.size() * sizeof(Rec);
  }

 private:
  Rec* Allocate(const K& key) {
    SpinLockGuard g(arena_lock_);
    arena_.emplace_back();
    arena_.back().key = key;
    return &arena_.back();
  }

  const std::string name_;
  CuckooMap<K, Rec*> index_;
  mutable SpinLock arena_lock_;
  std::deque<Rec> arena_ MV3C_GUARDED_BY(arena_lock_);
  /// Registration-phase metadata: set_wal_id runs while the catalog wires
  /// tables to the log, before any worker starts; read-only afterwards.
  // mv3c-lint: allow(guarded_by_coverage)
  uint32_t wal_id_ = 0;
};

}  // namespace sv
}  // namespace mv3c

#endif  // MV3C_SV_SV_TABLE_H_
