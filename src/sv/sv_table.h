#ifndef MV3C_SV_SV_TABLE_H_
#define MV3C_SV_SV_TABLE_H_

#include <atomic>
#include <cstring>
#include <deque>
#include <string>
#include <type_traits>

#include "common/macros.h"
#include "common/spinlock.h"
#include "common/thread_safety.h"
#include "index/cuckoo_map.h"

namespace mv3c {

/// Single-version in-memory storage shared by the OCC and SILO baselines
/// (the paper compares against THEDB's OCC and SILO implementations on
/// TPC-C, §6.1.1). Each record carries one Silo-style TID word:
///
///   bit 63: LOCK   — held by a committing writer
///   bit 62: ABSENT — the slot exists but holds no live row
///   bits 0..61     — the record's version number (grows on every commit)
///
/// Readers copy the row optimistically and retry until they observe the
/// same unlocked TID before and after the copy.
namespace sv {

inline constexpr uint64_t kLockBit = 1ULL << 63;
inline constexpr uint64_t kAbsentBit = 1ULL << 62;
inline constexpr uint64_t kTidMask = kAbsentBit - 1;

inline bool IsLocked(uint64_t w) { return (w & kLockBit) != 0; }
inline bool IsAbsent(uint64_t w) { return (w & kAbsentBit) != 0; }

/// One record: TID word plus the row payload in place.
template <typename Row>
struct Record {
  static_assert(std::is_trivially_copyable_v<Row>,
                "single-version rows are copied with memcpy");
  std::atomic<uint64_t> tid{kAbsentBit};
  Row row{};

  /// Optimistically reads a stable snapshot of the row; returns the TID
  /// word observed (possibly ABSENT). Spins across concurrent installs.
  uint64_t ReadStable(Row* out) const {
    while (true) {
      const uint64_t v1 = tid.load(std::memory_order_acquire);
      if (IsLocked(v1)) continue;
      std::memcpy(out, &row, sizeof(Row));
      std::atomic_thread_fence(std::memory_order_acquire);
      const uint64_t v2 = tid.load(std::memory_order_acquire);
      if (v1 == v2) return v1;
    }
  }
};

/// A single-version table: cuckoo index from key to arena-allocated
/// records. Records are never physically removed; deletion sets ABSENT.
template <typename K, typename RowT>
class SvTable {
 public:
  using Key = K;
  using Row = RowT;
  using Rec = Record<RowT>;

  explicit SvTable(std::string name, size_t expected_rows = 1024)
      : name_(std::move(name)), index_(expected_rows) {}
  SvTable(const SvTable&) = delete;
  SvTable& operator=(const SvTable&) = delete;

  const std::string& name() const { return name_; }

  Rec* Find(const K& key) const {
    Rec* r = nullptr;
    (void)index_.Find(key, &r);  // miss leaves r nullptr, the signal
    return r;
  }

  /// Returns the record for `key`, creating an ABSENT one if needed.
  Rec* GetOrCreate(const K& key) {
    Rec* r = Find(key);
    if (r != nullptr) return r;
    Rec* fresh = Allocate();
    if (index_.Insert(key, fresh)) return fresh;
    MV3C_CHECK(index_.Find(key, &r));  // insert loser: winner must exist
    return r;
  }

  /// Non-transactional load (initial population): installs the row with
  /// TID 1, present.
  void LoadRow(const K& key, const RowT& row) {
    Rec* r = GetOrCreate(key);
    r->row = row;
    r->tid.store(1, std::memory_order_release);
  }

  size_t RecordCount() const { return index_.Size(); }

  /// Approximate record-arena footprint; the single-version counterpart of
  /// VersionArena's held_bytes, reported by bench/overhead_memory.
  size_t ApproxArenaBytes() const {
    SpinLockGuard g(arena_lock_);
    return arena_.size() * sizeof(Rec);
  }

 private:
  Rec* Allocate() {
    SpinLockGuard g(arena_lock_);
    arena_.emplace_back();
    return &arena_.back();
  }

  std::string name_;
  CuckooMap<K, Rec*> index_;
  mutable SpinLock arena_lock_;
  std::deque<Rec> arena_ MV3C_GUARDED_BY(arena_lock_);
};

}  // namespace sv
}  // namespace mv3c

#endif  // MV3C_SV_SV_TABLE_H_
