#ifndef MV3C_SV_SV_EXECUTOR_H_
#define MV3C_SV_SV_EXECUTOR_H_

#include <algorithm>
#include <functional>
#include <utility>

#include "common/failpoint.h"
#include "common/retry_policy.h"
#include "common/status.h"
#include "sv/sv_transaction.h"

namespace mv3c {

/// Statistics for the single-version engines.
struct SvStats {
  uint64_t commits = 0;
  uint64_t user_aborts = 0;
  uint64_t validation_failures = 0;  // abort-and-restart rounds
  uint64_t exhausted = 0;            // gave up after the attempt budget
  uint64_t backoff_us = 0;           // microseconds slept backing off
  uint64_t failpoint_trips = 0;      // injected faults observed
  uint64_t max_rounds = 0;           // most failed rounds in one txn

  void Add(const SvStats& o) {
    commits += o.commits;
    user_aborts += o.user_aborts;
    validation_failures += o.validation_failures;
    exhausted += o.exhausted;
    backoff_us += o.backoff_us;
    failpoint_trips += o.failpoint_trips;
    max_rounds = std::max(max_rounds, o.max_rounds);
  }
};

/// Step-based driver adapter for the single-version engines, so OCC and
/// SILO plug into the same WindowDriver/ThreadDriver as the MVCC engines.
/// `Engine` provides `bool Commit(sv::SvTransaction&)`; OCC shares one
/// engine across executors (global validation mutex), SILO takes one per
/// executor. The retry policy bounds the abort-and-retry loop — precisely
/// the livelock regime CCBench shows dominating OCC at high contention.
template <typename Engine>
class SvExecutor {
 public:
  using Program = std::function<ExecStatus(sv::SvTransaction&)>;

  explicit SvExecutor(Engine* engine, RetryPolicy policy = {})
      : engine_(engine), ctrl_(policy) {}

  void Reset(Program program) {
    program_ = std::move(program);
    ctrl_.Reset();
    txn_.Clear();
  }

  /// Single-version OCC has no global begin (no timestamp to draw).
  void Begin() {}

  StepResult Step() {
    txn_.Clear();
    const ExecStatus st = program_(txn_);
    if (st == ExecStatus::kUserAbort) {
      ++stats_.user_aborts;
      return StepResult::kUserAborted;
    }
    MV3C_DCHECK(st == ExecStatus::kOk);
    // An injected validation failure must be decided *before* Commit runs:
    // a successful Commit installs the write set, after which pretending
    // failure would double-apply the writes on retry.
    bool injected = false;
    if (MV3C_FAILPOINT(failpoint::Site::kSvCommitValidate)) {
      ++stats_.failpoint_trips;
      injected = true;
    }
    if (!injected && engine_->Commit(txn_)) {
      ++stats_.commits;
      return StepResult::kCommitted;
    }
    ++stats_.validation_failures;
    const RetryDecision d = ctrl_.OnFailure();
    stats_.max_rounds = std::max<uint64_t>(stats_.max_rounds,
                                           ctrl_.attempts());
    stats_.backoff_us = ctrl_.backoff_us_total();
    if (d == RetryDecision::kGiveUp) {
      txn_.Clear();
      ++stats_.exhausted;
      return StepResult::kExhausted;
    }
    return StepResult::kNeedsRetry;
  }

  /// Runs the transaction to completion; bounded by the attempt budget.
  StepResult Run(Program program) {
    Reset(std::move(program));
    Begin();
    StepResult r;
    do {
      r = Step();
    } while (r == StepResult::kNeedsRetry);
    return r;
  }

  /// Starvation backstop for drivers: abandons the in-flight transaction.
  /// Single-version transactions buffer writes locally, so dropping the
  /// read/write sets is a complete rollback.
  StepResult GiveUp() {
    txn_.Clear();
    ++stats_.exhausted;
    return StepResult::kExhausted;
  }

  sv::SvTransaction& txn() { return txn_; }
  const SvStats& stats() const { return stats_; }
  uint32_t attempts() const { return ctrl_.attempts(); }

 private:
  Engine* engine_;
  RetryController ctrl_;
  sv::SvTransaction txn_;
  Program program_;
  SvStats stats_;
};

}  // namespace mv3c

#endif  // MV3C_SV_SV_EXECUTOR_H_
