#ifndef MV3C_SV_SV_EXECUTOR_H_
#define MV3C_SV_SV_EXECUTOR_H_

#include <functional>
#include <utility>

#include "common/status.h"
#include "sv/sv_transaction.h"

namespace mv3c {

/// Statistics for the single-version engines.
struct SvStats {
  uint64_t commits = 0;
  uint64_t user_aborts = 0;
  uint64_t validation_failures = 0;  // abort-and-restart rounds

  void Add(const SvStats& o) {
    commits += o.commits;
    user_aborts += o.user_aborts;
    validation_failures += o.validation_failures;
  }
};

/// Step-based driver adapter for the single-version engines, so OCC and
/// SILO plug into the same WindowDriver/ThreadDriver as the MVCC engines.
/// `Engine` provides `bool Commit(sv::SvTransaction&)`; OCC shares one
/// engine across executors (global validation mutex), SILO takes one per
/// executor.
template <typename Engine>
class SvExecutor {
 public:
  using Program = std::function<ExecStatus(sv::SvTransaction&)>;

  explicit SvExecutor(Engine* engine) : engine_(engine) {}

  void Reset(Program program) {
    program_ = std::move(program);
    txn_.Clear();
  }

  /// Single-version OCC has no global begin (no timestamp to draw).
  void Begin() {}

  StepResult Step() {
    txn_.Clear();
    const ExecStatus st = program_(txn_);
    if (st == ExecStatus::kUserAbort) {
      ++stats_.user_aborts;
      return StepResult::kUserAborted;
    }
    MV3C_DCHECK(st == ExecStatus::kOk);
    if (engine_->Commit(txn_)) {
      ++stats_.commits;
      return StepResult::kCommitted;
    }
    ++stats_.validation_failures;
    return StepResult::kNeedsRetry;
  }

  StepResult Run(Program program) {
    Reset(std::move(program));
    Begin();
    StepResult r;
    do {
      r = Step();
    } while (r == StepResult::kNeedsRetry);
    return r;
  }

  sv::SvTransaction& txn() { return txn_; }
  const SvStats& stats() const { return stats_; }

 private:
  Engine* engine_;
  sv::SvTransaction txn_;
  Program program_;
  SvStats stats_;
};

}  // namespace mv3c

#endif  // MV3C_SV_SV_EXECUTOR_H_
