#ifndef MV3C_SV_SV_EXECUTOR_H_
#define MV3C_SV_SV_EXECUTOR_H_

#include <algorithm>
#include <functional>
#include <utility>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/retry_policy.h"
#include "common/status.h"
#include "obs/engine_stats.h"  // SvStats (migrated to the obs layer)
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sv/sv_transaction.h"

#if defined(MV3C_WAL_ENABLED)
#include "wal/log_manager.h"
#endif

namespace mv3c {

/// Step-based driver adapter for the single-version engines, so OCC and
/// SILO plug into the same WindowDriver/ThreadDriver as the MVCC engines.
/// `Engine` provides `bool Commit(sv::SvTransaction&)`; OCC shares one
/// engine across executors (global validation mutex), SILO takes one per
/// executor. The retry policy bounds the abort-and-retry loop — precisely
/// the livelock regime CCBench shows dominating OCC at high contention.
template <typename Engine>
class SvExecutor {
 public:
  using Program = std::function<ExecStatus(sv::SvTransaction&)>;

  explicit SvExecutor(Engine* engine, RetryPolicy policy = {})
      : engine_(engine), ctrl_(policy) {
    obs::RegisterCounters(&metrics_, &stats_);
  }

  void Reset(Program program) {
    program_ = std::move(program);
    ctrl_.Reset();
    txn_.Clear();
  }

  /// Single-version OCC has no global begin (no timestamp to draw); the
  /// executor-local sequence number stands in for a txn id in traces.
  void Begin() {
    // Per-transaction phase-timing sample (obs::kPhaseSampleEvery).
    timed_metrics_ = sampler_.Tick() ? &metrics_ : nullptr;
    MV3C_TRACE_EVENT(obs::TraceEvent::kBegin, ++seq_);
  }

  StepResult Step() {
    txn_.Clear();
    ExecStatus st;
    {
      obs::ScopedPhaseTimer timer(timed_metrics_, obs::Phase::kExecute);
      st = program_(txn_);
    }
    if (st == ExecStatus::kUserAbort) {
      ++stats_.user_aborts;
      MV3C_TRACE_EVENT(obs::TraceEvent::kAbort, seq_);
      return StepResult::kUserAborted;
    }
    MV3C_DCHECK(st == ExecStatus::kOk);
    // An injected validation failure must be decided *before* Commit runs:
    // a successful Commit installs the write set, after which pretending
    // failure would double-apply the writes on retry.
    bool injected = false;
    if (MV3C_FAILPOINT(failpoint::Site::kSvCommitValidate)) {
      ++stats_.failpoint_trips;
      injected = true;
    }
    bool committed = false;
    uint64_t commit_tid = 0;
    uint64_t wal_epoch = 0;
    if (!injected) {
      obs::ScopedPhaseTimer timer(timed_metrics_, obs::Phase::kCommit);
      committed = engine_->Commit(txn_, timed_metrics_ != nullptr,
                                  &commit_tid, &wal_epoch);
    }
    if (committed) {
      ++stats_.commits;
      MV3C_TRACE_EVENT(obs::TraceEvent::kCommit, seq_);
#if defined(MV3C_WAL_ENABLED)
      // Group-commit durability wait (sync ack) — shared with every other
      // transaction in the epoch; a no-op under async ack or when nothing
      // was logged. A false return means the log crashed; the commit is
      // installed in memory either way, crash tests read the log state.
      if (wal_ != nullptr && wal_epoch != 0) {
        (void)wal_->WaitCommitDurable(wal_epoch);
      }
#else
      (void)wal_epoch;
#endif
      return StepResult::kCommitted;
    }
    ++stats_.validation_failures;
    MV3C_TRACE_EVENT(obs::TraceEvent::kValidateFail, seq_);
    const RetryDecision d = ctrl_.OnFailure();
    stats_.max_rounds = std::max<uint64_t>(stats_.max_rounds,
                                           ctrl_.attempts());
    stats_.backoff_us = ctrl_.backoff_us_total();
    if (d == RetryDecision::kGiveUp) {
      txn_.Clear();
      ++stats_.exhausted;
      MV3C_TRACE_EVENT(obs::TraceEvent::kAbort, seq_);
      return StepResult::kExhausted;
    }
    return StepResult::kNeedsRetry;
  }

  /// Runs the transaction to completion; bounded by the attempt budget.
  StepResult Run(Program program) {
    Reset(std::move(program));
    Begin();
    StepResult r;
    do {
      r = Step();
    } while (r == StepResult::kNeedsRetry);
    return r;
  }

  /// Run() for callers that cannot tolerate failure (population loaders,
  /// test fixtures): checks the transaction committed. [[nodiscard]] on
  /// StepResult forces every other Run call site to consume its result.
  void MustRun(Program program) {
    MV3C_CHECK(Run(std::move(program)) == StepResult::kCommitted);
  }

  /// Starvation backstop for drivers: abandons the in-flight transaction.
  /// Single-version transactions buffer writes locally, so dropping the
  /// read/write sets is a complete rollback.
  StepResult GiveUp() {
    txn_.Clear();
    ++stats_.exhausted;
    MV3C_TRACE_EVENT(obs::TraceEvent::kAbort, seq_);
    return StepResult::kExhausted;
  }

  sv::SvTransaction& txn() { return txn_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  const SvStats& stats() const { return stats_; }
  uint32_t attempts() const { return ctrl_.attempts(); }

#if defined(MV3C_WAL_ENABLED)
  /// Attaches the log for commit-durability waits. The engine must be
  /// attached separately (engine->set_wal) — OCC shares one engine across
  /// executors, so the two lifetimes differ.
  void set_wal(wal::LogManager* lm) { wal_ = lm; }
#endif

 private:
  Engine* engine_;
  RetryController ctrl_;
  sv::SvTransaction txn_;
  Program program_;
  SvStats stats_;
  // Executor registries are single-threaded; recording skips the lock.
  // timed_metrics_ is the per-transaction sampling decision (Begin()).
  obs::MetricsRegistry metrics_{obs::RecordSync::kUnsynchronized};
  obs::MetricsRegistry* timed_metrics_ = nullptr;
  obs::PhaseSampler sampler_;
  uint64_t seq_ = 0;
#if defined(MV3C_WAL_ENABLED)
  wal::LogManager* wal_ = nullptr;
#endif
};

}  // namespace mv3c

#endif  // MV3C_SV_SV_EXECUTOR_H_
