#ifndef MV3C_MVCC_TRANSACTION_H_
#define MV3C_MVCC_TRANSACTION_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/column_mask.h"
#include "common/macros.h"
#include "mvcc/data_object.h"
#include "mvcc/gc.h"
#include "mvcc/predicate.h"
#include "mvcc/table.h"
#include "mvcc/timestamp.h"
#include "mvcc/version.h"
#include "mvcc/version_arena.h"

namespace mv3c {

namespace wal {
class LogBuffer;
}  // namespace wal

class TransactionManager;

/// Outcome of a single write primitive.
enum class WriteStatus {
  kOk,
  /// Fail-fast write-write conflict (paper §2.3.1): a foreign uncommitted
  /// version exists, or a committed version newer than our start timestamp.
  kWwConflict,
  /// Insert found a live visible row with the same key.
  kDuplicateKey,
};

/// Core transaction state shared by the OMVCC and MV3C engines: start
/// timestamp, transaction id, and the undo buffer (the ordered list of
/// versions this transaction created, paper §2.1/§2.2).
///
/// The typed read/write primitives below implement snapshot reads
/// (Definition 2.3), versioned updates/inserts/deletes with the per-table
/// write-write policy, rollback, and commit publication (including the
/// newest-version-per-object rule of Definition 2.2 and the §2.4.1 chain
/// move). Predicate bookkeeping — what distinguishes OMVCC's flat list from
/// MV3C's predicate graph — lives in the engine-specific wrappers.
class Transaction {
 public:
  explicit Transaction(TransactionManager* mgr) : mgr_(mgr) {}
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  TransactionManager* manager() const { return mgr_; }
  Timestamp start_ts() const { return start_ts_; }
  Timestamp txn_id() const { return txn_id_; }

  /// Reads the visible version of `obj` (nullptr if none or deleted).
  template <typename TableT>
  const Version<typename TableT::Row>* ReadVersion(
      const TableT& table, const typename TableT::Object* obj) const {
    return obj->ReadVisible(start_ts_, txn_id_);
  }

  /// Creates a new version of `obj` carrying `new_data`. `blind` marks a
  /// blind write (§2.4.1): the writer did not read the row's current value
  /// for the fields it changed, so the write cannot conflict. The MV3C
  /// facade registers the returned version with the creating predicate.
  template <typename TableT>
  WriteStatus Update(TableT& table, typename TableT::Object* obj,
                     const typename TableT::Row& new_data, ColumnMask modified,
                     bool blind, WwPolicy policy,
                     Version<typename TableT::Row>** out = nullptr) {
    using Row = typename TableT::Row;
    auto* v = arena().Create<Version<Row>>(&table, obj, txn_id_, new_data);
    v->set_modified_columns(modified);
    v->set_blind_write(blind);
    if (obj->Push(v, policy, start_ts_, txn_id_) !=
        DataObjectBase::PushResult::kOk) {
      // Never linked, never observed: freed immediately, through the same
      // arena path as GC-retired versions (no more inline-delete asymmetry).
      VersionArena::Destroy(v);
      return WriteStatus::kWwConflict;
    }
    RegisterVersion(v);
    MaybeTruncateChain(obj);
    if (out != nullptr) *out = v;
    return WriteStatus::kOk;
  }

  /// Inserts a row. Always fail-fast on write-write conflicts (§2.3.1:
  /// operations that create or remove keys never interleave). Returns
  /// kDuplicateKey if a live row with this key is visible.
  template <typename TableT>
  WriteStatus Insert(TableT& table, const typename TableT::Key& key,
                     const typename TableT::Row& data,
                     typename TableT::Object** out_obj = nullptr,
                     Version<typename TableT::Row>** out_version = nullptr) {
    using Row = typename TableT::Row;
    typename TableT::Object* obj = table.GetOrCreate(key);
    if (obj->ReadVisible(start_ts_, txn_id_) != nullptr) {
      return WriteStatus::kDuplicateKey;
    }
    auto* v = arena().Create<Version<Row>>(&table, obj, txn_id_, data);
    v->set_modified_columns(ColumnMask::All());
    v->set_is_insert(true);
    if (obj->Push(v, WwPolicy::kFailFast, start_ts_, txn_id_) !=
        DataObjectBase::PushResult::kOk) {
      VersionArena::Destroy(v);  // never linked
      return WriteStatus::kWwConflict;
    }
    RegisterVersion(v);
    if (out_obj != nullptr) *out_obj = obj;
    if (out_version != nullptr) *out_version = v;
    return WriteStatus::kOk;
  }

  /// Deletes a row by appending a tombstone version. The tombstone carries
  /// the before-image payload so range/filter criteria can evaluate it.
  /// Always fail-fast (§2.3.1).
  template <typename TableT>
  WriteStatus Delete(TableT& table, typename TableT::Object* obj,
                     Version<typename TableT::Row>** out_version = nullptr) {
    using Row = typename TableT::Row;
    const Version<Row>* before = obj->ReadVisible(start_ts_, txn_id_);
    MV3C_CHECK(before != nullptr);
    auto* v = arena().Create<Version<Row>>(&table, obj, txn_id_, before->data());
    v->set_modified_columns(ColumnMask::All());
    v->set_tombstone(true);
    if (obj->Push(v, WwPolicy::kFailFast, start_ts_, txn_id_) !=
        DataObjectBase::PushResult::kOk) {
      VersionArena::Destroy(v);  // never linked
      return WriteStatus::kWwConflict;
    }
    RegisterVersion(v);
    if (out_version != nullptr) *out_version = v;
    return WriteStatus::kOk;
  }

  /// Unlinks and retires every version this transaction created (rollback
  /// on user abort or full restart).
  void RollbackWrites() {
    for (VersionBase* v : undo_) {
      v->object()->Unlink(v);
      Retire(v);
    }
    undo_.clear();
  }

  /// Unlinks and retires one version (MV3C repair pruning, Algorithm 2
  /// lines 7 and 10: "remove them from the undo buffer").
  void PruneVersion(VersionBase* v) {
    auto it = std::find(undo_.begin(), undo_.end(), v);
    MV3C_CHECK(it != undo_.end());
    undo_.erase(it);
    v->object()->Unlink(v);
    Retire(v);
  }

  /// Commits all versions at `commit_ts`: enforces Definition 2.2 (only
  /// the newest version per object survives; superseded ones are unlinked),
  /// performs the §2.4.1 move where needed, and returns the recently-
  /// committed record (nullptr for read-only transactions). Must be called
  /// from inside the manager's commit critical section.
  CommittedRecord* PublishCommit(Timestamp commit_ts) {
    if (undo_.empty()) return nullptr;
    auto* rec = arena().Create<CommittedRecord>();
    rec->commit_ts = commit_ts;
    rec->versions.reserve(undo_.size());
    // Per-object union of modified-column masks: the surviving (newest)
    // version represents the transaction's whole effect on the object, so
    // its mask for validation purposes is the union, and columns outside
    // the union are merged from the latest committed version (making
    // partial-column writes compose with concurrent committers).
    std::vector<std::pair<DataObjectBase*, ColumnMask>> effects;
    effects.reserve(undo_.size());
    for (VersionBase* v : undo_) {
      auto it = std::find_if(effects.begin(), effects.end(),
                             [v](const auto& e) { return e.first == v->object(); });
      if (it == effects.end()) {
        effects.push_back({v->object(), v->modified_columns()});
      } else {
        it->second |= v->modified_columns();
      }
    }
    std::vector<DataObjectBase*> seen;
    seen.reserve(effects.size());
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
      VersionBase* v = *it;
      if (std::find(seen.begin(), seen.end(), v->object()) != seen.end()) {
        // An older version of an object we already committed the newest
        // version for: it never becomes visible (Definition 2.2).
        v->object()->Unlink(v);
        Retire(v);
        continue;
      }
      seen.push_back(v->object());
      const ColumnMask effect =
          std::find_if(effects.begin(), effects.end(),
                       [v](const auto& e) { return e.first == v->object(); })
              ->second;
      if (!v->is_insert() && !v->tombstone() &&
          effect != ColumnMask::All()) {
        const VersionBase* base = v->object()->LatestCommitted();
        if (base != nullptr && !base->tombstone()) {
          v->MergeColumnsFrom(*base, effect);
        }
      }
      v->set_modified_columns(effect);
      VersionBase* committed = v->object()->CommitVersion(v, commit_ts);
      if (committed != v) Retire(v);  // the §2.4.1 move used a clone
      rec->versions.push_back(committed);
    }
    undo_.clear();
    return rec;
  }

  const std::vector<VersionBase*>& undo_buffer() const { return undo_; }

  // --- manager-facing lifecycle hooks (see TransactionManager) ---

  void OnBegin(Timestamp start, Timestamp id, uint32_t slot) {
    start_ts_ = start;
    txn_id_ = id;
    slot_ = slot;
    validated_up_to_ = start;
    wal_epoch_ = 0;
    wal_repaired_ = false;
  }
  void OnNewStartTs(Timestamp start) { start_ts_ = start; }
  uint32_t slot() const { return slot_; }

  /// Highest commit timestamp already covered by a validation pass. Every
  /// recently-committed record with commit_ts <= this value has been
  /// matched against the transaction's predicates (or committed before the
  /// transaction's current lifetime); later passes only examine newer
  /// records. Initialized to the start timestamp; kept across repair
  /// rounds (§2.5), reset on a full restart.
  Timestamp validated_up_to() const { return validated_up_to_; }
  void set_validated_up_to(Timestamp ts) {
    if (ts > validated_up_to_) validated_up_to_ = ts;
  }
  void ResetValidationWatermark() { validated_up_to_ = start_ts_; }

  // --- durability hooks (inert pointers/flags when -DMV3C_WAL=OFF) ---

  /// Per-worker WAL staging buffer; the manager's commit path creates one
  /// lazily for this transaction context and reuses it across Begins.
  wal::LogBuffer* wal_buffer() const { return wal_buffer_; }
  void set_wal_buffer(wal::LogBuffer* b) { wal_buffer_ = b; }

  /// Epoch the last commit's redo records were tagged with; 0 when nothing
  /// was logged. The executor waits for this to become durable.
  uint64_t wal_epoch() const { return wal_epoch_; }
  void set_wal_epoch(uint64_t e) { wal_epoch_ = e; }

  /// Set by the MV3C executor when the transaction went through at least
  /// one repair round before committing; stamped on its redo records
  /// (kFlagRepaired) so tests can assert only the final write set is
  /// logged. Reset by OnBegin.
  bool wal_repaired() const { return wal_repaired_; }
  void set_wal_repaired() { wal_repaired_ = true; }

 private:
  void RegisterVersion(VersionBase* v) { undo_.push_back(v); }

  // Defined in transaction_manager.h (needs the manager's GC and clock).
  void Retire(VersionBase* v);
  void MaybeTruncateChain(DataObjectBase* obj);
  VersionArena& arena() const;

  TransactionManager* mgr_;
  Timestamp start_ts_ = 0;
  Timestamp txn_id_ = 0;
  uint32_t slot_ = ~0u;
  std::vector<VersionBase*> undo_;
  Timestamp validated_up_to_ = 0;
  wal::LogBuffer* wal_buffer_ = nullptr;
  uint64_t wal_epoch_ = 0;
  bool wal_repaired_ = false;
};

}  // namespace mv3c

#endif  // MV3C_MVCC_TRANSACTION_H_
