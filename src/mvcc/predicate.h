#ifndef MV3C_MVCC_PREDICATE_H_
#define MV3C_MVCC_PREDICATE_H_

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "common/column_mask.h"
#include "common/macros.h"
#include "common/status.h"
#include "mvcc/table.h"
#include "mvcc/version.h"

namespace mv3c {

/// Global switch for attribute-level predicate validation (§4.1). On by
/// default; the ablation benchmark turns it off to measure how many
/// spurious whole-record conflicts the column masks avoid.
inline std::atomic<bool> g_attribute_level_validation{true};

/// A predicate: a data selection criterion gathered for every read
/// operation of a transaction (paper §2.1, Definition 2.4 items (1)).
///
/// Validation implements a variant of precision locking: a transaction is
/// valid at its commit attempt iff none of the versions committed during
/// its lifetime *matches* any of its predicates. `ConflictsWith` applies
/// the attribute-level short-circuit of §4.1 before the full match.
///
/// The closure, child list and version list of an MV3C predicate
/// (Definition 2.4 items (2)-(4)) live in the MV3C engine's subclass; the
/// OMVCC engine uses bare criterion subclasses in a flat list.
class PredicateBase {
 public:
  explicit PredicateBase(TableBase* table) : table_(table) {}
  PredicateBase(const PredicateBase&) = delete;
  PredicateBase& operator=(const PredicateBase&) = delete;
  virtual ~PredicateBase() = default;

  TableBase* table() const { return table_; }

  /// Columns whose change can invalidate this predicate: the columns of
  /// the selection criterion plus the columns its consumer reads (§4.1).
  ColumnMask monitored() const { return monitored_; }
  void set_monitored(ColumnMask m) { monitored_ = m; }

  /// Full criterion match against a committed version (precision locking).
  virtual bool MatchesVersion(const VersionBase& v) const = 0;

  /// Match with the table filter and the attribute-level validation
  /// short-circuit (§4.1) applied first.
  bool ConflictsWith(const VersionBase& v) const {
    if (v.table() != table_) return false;
    if (g_attribute_level_validation.load(std::memory_order_relaxed) &&
        !monitored_.Intersects(v.modified_columns())) {
      return false;
    }
    return MatchesVersion(v);
  }

  // --- MV3C predicate-graph fields (Definition 2.4 items (2)-(4)) ---
  // The OMVCC engine keeps predicates in a flat list and leaves all of the
  // following unused; the memory cost difference between an OMVCC and an
  // MV3C predicate is modeled in bench/overhead_memory.

  /// The predicate in whose closure this predicate was created, or nullptr
  /// for a root. The parent-child relation forms the predicate graph; with
  /// closure nesting it is a forest whose creation order is a topological
  /// order (a child is always instantiated after its parent).
  PredicateBase* parent() const { return parent_; }
  void set_parent(PredicateBase* p) { parent_ = p; }

  /// D(X): predicates instantiated by this predicate's closure, as an
  /// intrusive sibling list (no per-node allocation). Non-owning: node
  /// lifetimes are managed by the engine's PredicatePool (§6.2: predicate
  /// memory is reused across program executions).
  PredicateBase* first_child() const { return first_child_; }
  PredicateBase* next_sibling() const { return next_sibling_; }
  void AddChild(PredicateBase* child) {
    child->next_sibling_ = first_child_;
    first_child_ = child;
  }
  void ClearChildren() { first_child_ = nullptr; }
  template <typename Fn>
  void ForEachChild(Fn&& fn) const {
    for (PredicateBase* c = first_child_; c != nullptr;
         c = c->next_sibling_) {
      fn(c);
    }
  }

  /// V(X): versions created by this predicate's closure (directly, not by
  /// descendant closures), threaded through the versions' single extra
  /// pointer (§6.2) — appending costs two pointer stores, no allocation.
  void AddVersion(VersionBase* v) {
    v->set_next_in_predicate(versions_head_);
    versions_head_ = v;
  }
  VersionBase* versions_head() const { return versions_head_; }
  void ClearVersions() { versions_head_ = nullptr; }
  template <typename Fn>
  void ForEachVersion(Fn&& fn) const {
    for (VersionBase* v = versions_head_; v != nullptr;) {
      VersionBase* next = v->next_in_predicate();  // fn may retire v
      fn(v);
      v = next;
    }
  }
  size_t VersionCount() const {
    size_t n = 0;
    ForEachVersion([&n](VersionBase*) { ++n; });
    return n;
  }

  /// C(X): re-evaluates the selection criterion under the transaction's
  /// current start timestamp and runs the bound closure. Overridden by the
  /// MV3C DSL's typed nodes (which store the closure by value — no type
  /// erasure on the hot path); re-invoked by the Repair algorithm. The
  /// paper notes that compiling closures efficiently is what keeps MV3C's
  /// conflict-free overhead under 1% (§6.2).
  virtual ExecStatus Reexecute() {
    MV3C_CHECK(false && "predicate without a closure cannot re-execute");
    return ExecStatus::kOk;
  }

  /// Set by the Validation algorithm when this predicate (or an ancestor)
  /// is invalid at the validation timestamp.
  bool invalid() const { return invalid_; }
  void set_invalid(bool i) { invalid_ = i; }

  /// §4.2 result-set reuse: when enabled, validation records the matching
  /// concurrently-committed versions so the repair pass can patch the
  /// result set instead of re-evaluating the criterion from scratch.
  bool reuse_result_set() const { return reuse_result_set_; }
  void set_reuse_result_set(bool r) { reuse_result_set_ = r; }
  std::vector<const VersionBase*>& conflict_versions() {
    return conflict_versions_;
  }

 private:
  TableBase* table_;
  ColumnMask monitored_ = ColumnMask::All();
  friend class PredicatePool;

  PredicateBase* parent_ = nullptr;
  PredicateBase* first_child_ = nullptr;
  PredicateBase* next_sibling_ = nullptr;
  VersionBase* versions_head_ = nullptr;
  uint32_t pool_class_ = 0;  // size class; set by PredicatePool
  bool invalid_ = false;
  bool reuse_result_set_ = false;
  std::vector<const VersionBase*> conflict_versions_;
};

/// Recycling allocator for predicate nodes. A transaction program uses a
/// small, repeating set of predicate shapes; §6.2 relies on their memory
/// being reused after the program finishes to keep the predicate overhead
/// negligible. One pool per executor (single-threaded use).
class PredicatePool {
 public:
  PredicatePool() = default;
  PredicatePool(const PredicatePool&) = delete;
  PredicatePool& operator=(const PredicatePool&) = delete;
  ~PredicatePool() {
    for (auto& bin : bins_) {
      for (void* p : bin) ::operator delete(p);
    }
  }

  /// Constructs a node of type NodeT, reusing a previously freed slot of
  /// the same size class when available.
  template <typename NodeT, typename... Args>
  NodeT* Create(Args&&... args) {
    const uint32_t cls = SizeClass(sizeof(NodeT));
    void* mem;
    if (cls < kNumClasses && !bins_[cls].empty()) {
      mem = bins_[cls].back();
      bins_[cls].pop_back();
    } else {
      mem = ::operator new(ClassBytes(cls));
    }
    NodeT* node = new (mem) NodeT(std::forward<Args>(args)...);
    node->pool_class_ = cls;
    return node;
  }

  /// Destroys a node and recycles its memory.
  void Destroy(PredicateBase* node) {
    const uint32_t cls = node->pool_class_;
    node->~PredicateBase();
    if (cls < kNumClasses) {
      bins_[cls].push_back(node);
    } else {
      ::operator delete(node);
    }
  }

 private:
  static constexpr uint32_t kGranularity = 64;
  static constexpr uint32_t kNumClasses = 32;  // up to 2 KiB pooled

  static uint32_t SizeClass(size_t bytes) {
    const uint32_t cls =
        static_cast<uint32_t>((bytes + kGranularity - 1) / kGranularity);
    return cls;  // classes >= kNumClasses fall through to plain new/delete
  }
  static size_t ClassBytes(uint32_t cls) {
    return static_cast<size_t>(cls) * kGranularity;
  }

  std::vector<void*> bins_[kNumClasses];
};

/// One entry of a scan result-set: the data object plus a snapshot copy of
/// its visible row; shared by the OMVCC and MV3C scan APIs.
template <typename TableT>
struct ScanResultEntry {
  typename TableT::Object* object;
  typename TableT::Row row;
};

/// Criterion: the row with primary key == `key` (point lookups, present or
/// absent — an absent row still yields a predicate, which is what detects
/// phantom inserts of that key).
template <typename TableT>
class KeyEqCriterion : public PredicateBase {
 public:
  using Key = typename TableT::Key;
  using Object = typename TableT::Object;

  KeyEqCriterion(TableT* table, const Key& key)
      : PredicateBase(table), key_(key) {}

  const Key& key() const { return key_; }

  bool MatchesVersion(const VersionBase& v) const override {
    const auto* obj = static_cast<const Object*>(v.object());
    return obj->key() == key_;
  }

 private:
  Key key_;
};

/// Criterion: all rows satisfying `filter` (full-table scans, e.g. the
/// Bonus program of the Banking example). A committed version conflicts if
/// its row enters the result set (new value matches), leaves it (before
/// image matches), or a matching row is deleted.
template <typename TableT>
class RowFilterCriterion : public PredicateBase {
 public:
  using Row = typename TableT::Row;
  using Filter = std::function<bool(const Row&)>;

  RowFilterCriterion(TableT* table, Filter filter)
      : PredicateBase(table), filter_(std::move(filter)) {}

  const Filter& filter() const { return filter_; }

  bool MatchesVersion(const VersionBase& v) const override {
    const auto& tv = static_cast<const Version<Row>&>(v);
    if (!v.tombstone() && filter_(tv.data())) return true;
    const VersionBase* before = v.BeforeImage();
    if (before != nullptr && !before->tombstone() &&
        filter_(static_cast<const Version<Row>*>(before)->data())) {
      return true;
    }
    return false;
  }

 private:
  Filter filter_;
};

/// Criterion: all rows whose derived secondary key lies in [lo, hi]
/// (ordered-index range scans, e.g. TPC-C customers by last name or the
/// oldest undelivered NEW-ORDER). `extract` derives the secondary key from
/// (primary key, row); an optional residual row filter narrows further.
template <typename TableT, typename SecKey>
class KeyRangeCriterion : public PredicateBase {
 public:
  using Key = typename TableT::Key;
  using Row = typename TableT::Row;
  using Object = typename TableT::Object;
  using Extract = std::function<SecKey(const Key&, const Row&)>;
  using Filter = std::function<bool(const Row&)>;

  KeyRangeCriterion(TableT* table, SecKey lo, SecKey hi, Extract extract,
                    Filter filter = nullptr)
      : PredicateBase(table),
        lo_(std::move(lo)),
        hi_(std::move(hi)),
        extract_(std::move(extract)),
        filter_(std::move(filter)) {}

  bool MatchesVersion(const VersionBase& v) const override {
    const auto* obj = static_cast<const Object*>(v.object());
    const auto& tv = static_cast<const Version<Row>&>(v);
    if (!v.tombstone() && RowInRange(obj->key(), tv.data())) return true;
    const VersionBase* before = v.BeforeImage();
    if (before != nullptr && !before->tombstone() &&
        RowInRange(obj->key(),
                   static_cast<const Version<Row>*>(before)->data())) {
      return true;
    }
    return false;
  }

 private:
  bool RowInRange(const Key& key, const Row& row) const {
    const SecKey k = extract_(key, row);
    if (k < lo_ || hi_ < k) return false;
    return filter_ == nullptr || filter_(row);
  }

  SecKey lo_, hi_;
  Extract extract_;
  Filter filter_;
};

}  // namespace mv3c

#endif  // MV3C_MVCC_PREDICATE_H_
