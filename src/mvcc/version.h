#ifndef MV3C_MVCC_VERSION_H_
#define MV3C_MVCC_VERSION_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "common/column_mask.h"
#include "mvcc/timestamp.h"
#include "mvcc/version_arena.h"

namespace mv3c {

class DataObjectBase;
class TableBase;
class PredicateBase;

/// One version of one data object (paper Definition 2.1): the 4-tuple
/// (T, O, A, N) plus the MV3C bookkeeping fields.
///
/// * T is `ts`: the owning transaction's id while uncommitted, the commit
///   timestamp afterwards, or kDeadVersion after rollback/prune.
/// * O is `object`, a back reference to the data object whose chain holds
///   this version.
/// * A is the row payload stored in the typed subclass Version<Row>.
/// * N, the within-transaction version identifier, is realized by chain
///   order: a transaction's newer version for the same object always sits
///   closer to the chain head, and superseded versions are marked dead at
///   commit (Definition 2.2 keeps only the newest per object).
///
/// The `next_in_predicate` field is MV3C's single extra pointer per version
/// (§6.2 measures its memory overhead): it links the versions produced
/// inside one closure into an intrusive list (V(X)) so that Repair can
/// discard exactly the versions of the invalidated sub-graph without any
/// per-predicate allocation.
class VersionBase {
 public:
  VersionBase(TableBase* table, DataObjectBase* object, Timestamp ts)
      : ts_(ts), next_(nullptr), table_(table), object_(object) {}

  VersionBase(const VersionBase&) = delete;
  VersionBase& operator=(const VersionBase&) = delete;
  virtual ~VersionBase() = default;

  Timestamp ts() const { return ts_.load(std::memory_order_acquire); }
  void set_ts(Timestamp ts) { ts_.store(ts, std::memory_order_release); }

  VersionBase* next() const { return next_.load(std::memory_order_acquire); }
  void set_next(VersionBase* n) { next_.store(n, std::memory_order_release); }

  TableBase* table() const { return table_; }
  DataObjectBase* object() const { return object_; }

  /// Next version in the owning predicate's V(X) list (paper §6.2: the
  /// one extra pointer MV3C adds to each version).
  VersionBase* next_in_predicate() const { return next_in_predicate_; }
  void set_next_in_predicate(VersionBase* v) { next_in_predicate_ = v; }

  /// Columns modified relative to the previous committed version; supports
  /// attribute-level predicate validation (§4.1). Inserts and deletes set
  /// the full mask.
  ///
  /// Stored atomically: PublishCommit rewrites the mask (the §2.4.1 merge
  /// of a transaction's per-object effects) on a version that is already
  /// linked in its chain, concurrently with fail-fast Push scans reading
  /// it. Relaxed ordering suffices — pre-commit readers only make a
  /// conservative conflict heuristic (the columns a stale read misses are
  /// carried by the writer's older chained version, which the same scan
  /// visits), and the committed value is ordered by the release store of
  /// the commit timestamp.
  ColumnMask modified_columns() const {
    return ColumnMask(modified_bits_.load(std::memory_order_relaxed));
  }
  void set_modified_columns(ColumnMask m) {
    modified_bits_.store(m.bits(), std::memory_order_relaxed);
  }

  /// True if this version logically deletes the row.
  bool tombstone() const { return tombstone_; }
  void set_tombstone(bool t) { tombstone_ = t; }

  /// True if this version creates the row (no earlier committed version).
  bool is_insert() const { return is_insert_; }
  void set_is_insert(bool i) { is_insert_ = i; }

  /// True if this version was written without reading the row's current
  /// value (paper §2.4.1); blind writes never cause validation conflicts
  /// for the writing transaction.
  bool blind_write() const { return blind_write_; }
  void set_blind_write(bool b) { blind_write_ = b; }

  bool dead() const { return ts() == kDeadVersion; }
  void MarkDead() { set_ts(kDeadVersion); }

  /// Allocates a copy of this version (payload, flags, masks) with the same
  /// timestamp; used by the §2.4.1 commit "move", which replaces a version
  /// buried under foreign uncommitted versions with a duplicate at the
  /// committed-suffix boundary.
  virtual VersionBase* Clone() const = 0;

  /// Allocated extent of the most-derived object. VersionArena::Destroy is
  /// reached through VersionBase* (GC, chain teardown); without this, only
  /// the base subobject would be poisoned under ASan and a use-after-
  /// reclaim on the row payload would go undetected.
  virtual size_t AllocSize() const = 0;

  /// Copies every column NOT in `modified` from `base`'s payload into this
  /// version's payload. Called inside the commit critical section on rows
  /// that implement MergeFrom (see MergeableRow below), so that partial-
  /// column writes (attribute-level validation, §4.1; blind writes,
  /// §2.4.1) compose with concurrently committed writes to other columns
  /// instead of clobbering them with the writer's stale snapshot. No-op for
  /// rows without MergeFrom (full-row semantics).
  virtual void MergeColumnsFrom(const VersionBase& base,
                                ColumnMask modified) = 0;

  /// Returns the newest committed version strictly older than this one in
  /// its chain: the before-image used by scan predicates to detect rows
  /// leaving a result-set. Returns nullptr for inserts.
  const VersionBase* BeforeImage() const {
    for (const VersionBase* v = next(); v != nullptr; v = v->next()) {
      const Timestamp t = v->ts();
      if (IsCommitTs(t)) return v;
    }
    return nullptr;
  }

 private:
  std::atomic<Timestamp> ts_;
  std::atomic<VersionBase*> next_;  // next-older version in the chain
  TableBase* table_;
  DataObjectBase* object_;
  VersionBase* next_in_predicate_ = nullptr;  // MV3C extra pointer (V(X))
  std::atomic<uint64_t> modified_bits_{ColumnMask::All().bits()};
  bool tombstone_ = false;
  bool is_insert_ = false;
  bool blind_write_ = false;
};

/// Rows that support per-column merging implement
///   void MergeFrom(const Row& base, ColumnMask modified);
/// copying every column NOT in `modified` from `base` into *this. Tables
/// whose workloads use attribute-level masks or blind writes on disjoint
/// columns should implement it; rows without it use full-row semantics
/// (each write is expected to carry ColumnMask::All() or concurrent writers
/// always modify the same column set).
template <typename Row>
concept MergeableRow = requires(Row& dst, const Row& src, ColumnMask m) {
  { dst.MergeFrom(src, m) };
};

/// Typed version carrying the row payload by value.
template <typename Row>
class Version : public VersionBase {
 public:
  Version(TableBase* table, DataObjectBase* object, Timestamp ts,
          const Row& data)
      : VersionBase(table, object, ts), data_(data) {}

  const Row& data() const { return data_; }
  /// The payload of a version is immutable once published (paper §2.2);
  /// mutation is only allowed by the owner before the version is visible.
  Row* mutable_data() { return &data_; }

  VersionBase* Clone() const override {
    // Sibling allocation: the clone comes from the same arena as the
    // original, so exclusive-repair/§2.4.1 copies don't bypass the arena
    // (satellite 2) and Destroy's slab lookup stays valid for every version.
    auto* copy = VersionArena::CreateSibling<Version<Row>>(
        this, table(), object(), ts(), data_);
    copy->set_modified_columns(modified_columns());
    copy->set_tombstone(tombstone());
    copy->set_is_insert(is_insert());
    copy->set_blind_write(blind_write());
    return copy;
  }

  void MergeColumnsFrom(const VersionBase& base,
                        ColumnMask modified) override {
    if constexpr (MergeableRow<Row>) {
      data_.MergeFrom(static_cast<const Version<Row>&>(base).data(),
                      modified);
    }
  }

  size_t AllocSize() const override { return sizeof(Version<Row>); }

 private:
  Row data_;
};

}  // namespace mv3c

#endif  // MV3C_MVCC_VERSION_H_
