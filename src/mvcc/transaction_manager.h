#ifndef MV3C_MVCC_TRANSACTION_MANAGER_H_
#define MV3C_MVCC_TRANSACTION_MANAGER_H_

#include <atomic>
#include <cstdint>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/spinlock.h"
#include "common/thread_safety.h"
#include "mvcc/gc.h"
#include "mvcc/timestamp.h"
#include "mvcc/transaction.h"
#include "mvcc/version_arena.h"
#include "obs/metrics.h"

#if defined(MV3C_WAL_ENABLED)
#include <memory>

#include "wal/log_mvcc.h"
#endif

namespace mv3c {

/// The shared transaction-management state of the MVCC substrate (paper
/// §5): the recently-committed list, the active-transaction registry, the
/// start-and-commit timestamp sequence, and the transaction-id sequence.
/// One instance serves both the OMVCC and the MV3C engine — that shared
/// validation surface is exactly what makes the two interoperable (§3).
///
/// Concurrency protocol:
///   * Transaction starts, commit-time (delta) validation, commit/new-start
///     timestamp draws and version publication all happen inside a short
///     spin-locked critical section, matching the paper's requirement that
///     "the whole process of validating a transaction, and drawing a commit
///     timestamp or a new start timestamp ... is done in a short critical
///     section" (§2.5). The expensive part of validation — matching against
///     everything committed since the transaction's start — runs *outside*
///     the critical section as a pre-validation pass (§5 "Parallel
///     Validation"); only records that committed after that pass are
///     re-checked inside.
///   * Repair (MV3C) and restart (OMVCC) run entirely outside the critical
///     section, concurrently with other transactions.
class TransactionManager {
 public:
  static constexpr size_t kMaxActive = 1024;
  static constexpr Timestamp kIdleSlot = ~0ULL;

  TransactionManager() {
    for (auto& s : active_) s.start.store(kIdleSlot, std::memory_order_relaxed);
    // Manager-level maintenance counters live on the shared registry so the
    // bench aggregation sees them next to the per-executor engine counters.
    metrics_.RegisterCounter("gc_rounds", &gc_rounds_);
    metrics_.RegisterCounter("gc_nodes_freed", &gc_nodes_freed_);
    arena_.set_metrics(&metrics_);
  }
  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;
  ~TransactionManager() {
    TrimRecentlyCommitted(kDeadVersion);
    gc_.CollectAll();
  }

  /// Starts `t`: draws a start timestamp and a transaction id, registers
  /// the transaction in the active table.
  void Begin(Transaction* t) MV3C_EXCLUDES(commit_lock_) {
    const Timestamp id = txn_id_seq_.fetch_add(1, std::memory_order_relaxed);
    SpinLockGuard g(commit_lock_);
    // The timestamp sequence only advances under the commit lock, so the
    // value read here is the start timestamp the fetch_add below returns.
    // Registering the slot *before* bumping the sequence guarantees that a
    // concurrent OldestActiveStart() can never compute a watermark above
    // this transaction's start.
    const Timestamp start = ts_seq_.load(std::memory_order_relaxed);
    const uint32_t slot = AcquireSlot(start);
    ts_seq_.fetch_add(1, std::memory_order_seq_cst);
    t->OnBegin(start, id, slot);
  }

  /// Head of the recently-committed list (newest first).
  CommittedRecord* rc_head() const {
    return rc_head_.load(std::memory_order_acquire);
  }

  /// Walks committed versions of recently-committed records newer than
  /// `min_commit_ts_exclusive`, starting at `from` (newest first). Commit
  /// timestamps decrease strictly along the list, so the walk stops at the
  /// first record at or below the bound. Calls `fn(const VersionBase&)`;
  /// if fn returns false the walk aborts. Returns false iff aborted by fn.
  template <typename Fn>
  static bool ForEachConcurrentVersion(CommittedRecord* from,
                                       Timestamp min_commit_ts_exclusive,
                                       Fn&& fn) {
    for (CommittedRecord* r = from; r != nullptr;
         r = r->next.load(std::memory_order_acquire)) {
      if (r->commit_ts <= min_commit_ts_exclusive) break;
      for (const VersionBase* v : r->versions) {
        if (!fn(*v)) return false;
      }
    }
    return true;
  }

  /// Attempts to commit `t`.
  ///
  /// `revalidate(CommittedRecord* from)` must run the engine's validation
  /// over records newer than t->validated_up_to() starting at `from` and
  /// return true iff the transaction is still valid (the pre-validation
  /// pass outside the lock has already covered everything older). On
  /// success the commit timestamp is drawn, versions are published, the
  /// record is appended to the recently-committed list, and the
  /// transaction leaves the active table; `*commit_ts_out` (optional)
  /// receives the commit timestamp. On failure the transaction stays
  /// active with a fresh start timestamp (drawn in the critical section,
  /// §2.5) and the caller runs repair/restart outside.
  template <typename RevalidateFn>
  [[nodiscard]] bool TryCommit(Transaction* t, RevalidateFn&& revalidate,
                               Timestamp* commit_ts_out = nullptr)
      MV3C_EXCLUDES(commit_lock_) {
    SpinLockGuard g(commit_lock_);
    CommittedRecord* head = rc_head();
    const bool valid = revalidate(head);
    if (head != nullptr) t->set_validated_up_to(head->commit_ts);
    if (!valid) {
      RetimestampLocked(t);
      return false;
    }
    const Timestamp c = ts_seq_.fetch_add(1, std::memory_order_seq_cst);
    CommittedRecord* rec = t->PublishCommit(c);
    if (rec != nullptr) {
      rec->next.store(head, std::memory_order_relaxed);
      rc_head_.store(rec, std::memory_order_release);
      LogCommitLocked(t, rec, c);
    }
    ReleaseSlot(t->slot());
    if (commit_ts_out != nullptr) *commit_ts_out = c;
    return true;
  }

  /// §4.3 exclusive repair: like TryCommit, but on validation failure the
  /// engine's `repair()` runs *inside* the critical section; since no other
  /// transaction can commit meanwhile, the repaired transaction commits
  /// immediately afterwards without another validation round. Returns the
  /// repair ExecStatus (kOk implies committed); a non-kOk status leaves the
  /// transaction active with a fresh start timestamp so the caller can
  /// handle the abort/restart outside the lock.
  template <typename RevalidateFn, typename RepairFn>
  ExecStatus TryCommitExclusive(Transaction* t, RevalidateFn&& revalidate,
                                RepairFn&& repair,
                                Timestamp* commit_ts_out = nullptr)
      MV3C_EXCLUDES(commit_lock_) {
    SpinLockGuard g(commit_lock_);
    CommittedRecord* head = rc_head();
    const bool valid = revalidate(head);
    if (head != nullptr) t->set_validated_up_to(head->commit_ts);
    if (!valid) {
      RetimestampLocked(t);
      const ExecStatus st = repair();
      if (st != ExecStatus::kOk) return st;
    }
    const Timestamp c = ts_seq_.fetch_add(1, std::memory_order_seq_cst);
    CommittedRecord* rec = t->PublishCommit(c);
    if (rec != nullptr) {
      rec->next.store(head, std::memory_order_relaxed);
      rc_head_.store(rec, std::memory_order_release);
      LogCommitLocked(t, rec, c);
    }
    ReleaseSlot(t->slot());
    if (commit_ts_out != nullptr) *commit_ts_out = c;
    return ExecStatus::kOk;
  }

  /// Draws a fresh start timestamp for a transaction staying in the
  /// repair path (validation failed during pre-validation, outside the
  /// commit critical section). Keeps the validation watermark.
  void Retimestamp(Transaction* t) MV3C_EXCLUDES(commit_lock_) {
    // Delay/yield injection point: widens the window between a failed
    // pre-validation and the repair round so concurrent commits can slip
    // in (the repeated-invalidation schedule the chaos tests force).
    (void)MV3C_FAILPOINT(failpoint::Site::kRetimestamp);
    SpinLockGuard g(commit_lock_);
    RetimestampLocked(t);
  }

  /// Commits a transaction with an empty write set without validation:
  /// a read-only transaction reads a consistent snapshot and serializes at
  /// its start timestamp (§5, Appendix A).
  void CommitReadOnly(Transaction* t) {
    MV3C_CHECK(t->undo_buffer().empty());
    ReleaseSlot(t->slot());
  }

  /// Draws a fresh start timestamp for a transaction that rolled back its
  /// writes and restarts from scratch (user-abort-free restart paths:
  /// fail-fast write-write conflicts, OMVCC validation failure).
  void Restart(Transaction* t) MV3C_EXCLUDES(commit_lock_) {
    SpinLockGuard g(commit_lock_);
    RetimestampLocked(t);
    t->ResetValidationWatermark();
  }

  /// Removes a user-aborted transaction from the active table. The caller
  /// must have rolled back its writes already.
  void FinishAborted(Transaction* t) { ReleaseSlot(t->slot()); }

  /// A checkpoint reader's hold on the MVCC history: while pinned, the GC
  /// watermark (OldestActiveStart) cannot pass `ts`, so every version
  /// visible at `ts` survives the scan.
  struct SnapshotPin {
    Timestamp ts = 0;
    uint32_t slot = 0;
  };

  /// Pins a consistent read-only snapshot at the current timestamp-sequence
  /// value, exactly like Begin pins a transaction's start: the slot is
  /// registered under the commit lock before any later commit can draw its
  /// timestamp, so a FindVisible(ts, 0) scan sees precisely the commits
  /// with commit_ts < ts — and every commit it does NOT see serializes
  /// after the pin (its redo epoch tag is drawn later still). The sequence
  /// is not advanced: readers need no unique timestamp.
  SnapshotPin PinSnapshot() MV3C_EXCLUDES(commit_lock_) {
    SpinLockGuard g(commit_lock_);
    SnapshotPin pin;
    pin.ts = ts_seq_.load(std::memory_order_relaxed);
    pin.slot = AcquireSlot(pin.ts);
    return pin;
  }

  void ReleaseSnapshot(const SnapshotPin& pin) { ReleaseSlot(pin.slot); }

  /// Oldest start timestamp among active transactions, or kIdleSlot
  /// ("infinity") if none are active. Superseded versions below this
  /// watermark can be reclaimed, and retired nodes with era below it freed.
  Timestamp OldestActiveStart() const {
    Timestamp oldest = kIdleSlot;
    for (const Slot& s : active_) {
      const Timestamp v = s.start.load(std::memory_order_acquire);
      if (v < oldest) oldest = v;
    }
    return oldest;
  }

  /// Current timestamp-sequence value; the retirement era for the GC.
  Timestamp CurrentEra() const {
    return ts_seq_.load(std::memory_order_seq_cst);
  }

  GarbageCollector& gc() { return gc_; }

  /// Version/record memory for every transaction under this manager.
  /// The arena is the last member destroyed here that touches version
  /// memory (declared before gc_, destroyed after it), and tables are
  /// destroyed before their manager throughout the codebase, so every
  /// Destroy() precedes the slabs' release.
  VersionArena& arena() { return arena_; }
  const VersionArena& arena() const { return arena_; }

  /// Trims the recently-committed list and frees retired garbage. Called
  /// periodically by execution drivers; rate limiting is the caller's
  /// business. The whole pass is one kGc phase sample; drivers are
  /// single-threaded per manager for maintenance, so the plain counters
  /// need no synchronization.
  void CollectGarbage() {
    obs::ScopedPhaseTimer timer(&metrics_, obs::Phase::kGc);
    const Timestamp watermark = OldestActiveStart();
    TrimRecentlyCommitted(watermark);
    gc_nodes_freed_ += gc_.Collect(watermark);
    ++gc_rounds_;
    // Recycle slabs whose retirement a kGcReclaim firing parked; same
    // drains-once-injection-stops contract as the node-level backlog.
    arena_.DrainDeferred();
  }

  /// Manager-level metrics (GC rounds/freed counters, kGc and kArenaRetire
  /// phase histograms). Benchmarks merge this with executor registries.
  obs::MetricsRegistry& metrics() { return metrics_; }

#if defined(MV3C_WAL_ENABLED)
  /// Turns on durability: commits of WAL-registered tables serialize their
  /// final write set into the group-commit log (DESIGN §5f). Call before
  /// any transaction runs; the writer thread lives until the manager (or
  /// DisableWal) tears it down.
  void EnableWal(const wal::WalConfig& config) {
    wal_ = std::make_unique<wal::LogManager>(config);
  }
  /// Joins the writer thread and closes the log (final flush included).
  void DisableWal() { wal_.reset(); }
  wal::LogManager* wal() { return wal_.get(); }
#endif

  /// Blocks until `t`'s last commit is durable per the configured ack mode
  /// (a shared group-commit wait under sync ack, a no-op under async ack).
  /// Compiled in every build: without WAL it returns true immediately, so
  /// executors call it unconditionally. Returns false iff the log crashed
  /// before the commit became durable.
  bool WalWaitDurable(Transaction* t) {
#if defined(MV3C_WAL_ENABLED)
    if (wal_ != nullptr && t->wal_epoch() != 0) {
      return wal_->WaitCommitDurable(t->wal_epoch());
    }
#endif
    (void)t;
    return true;
  }

  /// Recovery hook: advances the timestamp sequence past `ts` so versions
  /// replayed with commit timestamps up to `ts` are visible to (and older
  /// than) every transaction started afterwards.
  void AdvanceClockTo(Timestamp ts) MV3C_EXCLUDES(commit_lock_) {
    SpinLockGuard g(commit_lock_);
    if (ts_seq_.load(std::memory_order_relaxed) <= ts) {
      ts_seq_.store(ts + 1, std::memory_order_seq_cst);
    }
  }

  /// Number of records currently reachable in the RC list; metrics/tests.
  size_t RecentlyCommittedLength() const {
    size_t n = 0;
    for (CommittedRecord* r = rc_head(); r != nullptr;
         r = r->next.load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }

 private:
  struct alignas(MV3C_CACHELINE_SIZE) Slot {
    std::atomic<Timestamp> start;
  };

  /// Serializes a just-published commit into the redo log; caller holds
  /// commit_lock_ (the versions can't be GC'd and the write set is final —
  /// for MV3C, final *after* repair). Compiles to nothing without WAL.
  void LogCommitLocked(Transaction* t, const CommittedRecord* rec,
                       Timestamp c) MV3C_REQUIRES(commit_lock_) {
#if defined(MV3C_WAL_ENABLED)
    if (wal_ != nullptr) {
      wal::LogBuffer* buf = t->wal_buffer();
      t->set_wal_epoch(
          wal::LogMvccCommit(*wal_, buf, *rec, c, t->wal_repaired()));
      t->set_wal_buffer(buf);
    }
#else
    (void)t;
    (void)rec;
    (void)c;
#endif
  }

  /// Draws a fresh start timestamp; caller holds commit_lock_. The slot is
  /// updated before the sequence advances (see Begin for why).
  void RetimestampLocked(Transaction* t) MV3C_REQUIRES(commit_lock_) {
    const Timestamp fresh = ts_seq_.load(std::memory_order_relaxed);
    active_[t->slot()].start.store(fresh, std::memory_order_release);
    ts_seq_.fetch_add(1, std::memory_order_seq_cst);
    t->OnNewStartTs(fresh);
  }

  uint32_t AcquireSlot(Timestamp start) {
    const uint32_t hint = slot_hint_.fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0; i < kMaxActive; ++i) {
      const uint32_t idx = (hint + i) % kMaxActive;
      Timestamp expected = kIdleSlot;
      if (active_[idx].start.compare_exchange_strong(
              expected, start, std::memory_order_acq_rel)) {
        return idx;
      }
    }
    MV3C_CHECK(false && "active-transaction table exhausted");
    return 0;
  }

  void ReleaseSlot(uint32_t slot) {
    active_[slot].start.store(kIdleSlot, std::memory_order_release);
  }

  /// Unlinks RC records whose commit timestamp is below `watermark` (no
  /// active transaction can need them for validation) and retires them.
  void TrimRecentlyCommitted(Timestamp watermark)
      MV3C_EXCLUDES(commit_lock_) {
    SpinLockGuard g(commit_lock_);
    CommittedRecord* prev = nullptr;
    CommittedRecord* cur = rc_head();
    while (cur != nullptr && cur->commit_ts >= watermark) {
      prev = cur;
      cur = cur->next.load(std::memory_order_acquire);
    }
    if (cur == nullptr) return;
    if (prev == nullptr) {
      rc_head_.store(nullptr, std::memory_order_release);
    } else {
      prev->next.store(nullptr, std::memory_order_release);
    }
    const Timestamp era = CurrentEra();
    while (cur != nullptr) {
      CommittedRecord* next = cur->next.load(std::memory_order_acquire);
      gc_.RetireRecord(cur, era);
      cur = next;
    }
  }

  alignas(MV3C_CACHELINE_SIZE) std::atomic<Timestamp> ts_seq_{1};
  alignas(MV3C_CACHELINE_SIZE) std::atomic<Timestamp> txn_id_seq_{
      kTxnIdBase + 1};
  /// rc_head_ stays an atomic, not MV3C_GUARDED_BY(commit_lock_): readers
  /// (pre-validation, ForEachConcurrentVersion) chase it lock-free; every
  /// *store* happens with commit_lock_ held (TryCommit/TryCommitExclusive
  /// publication, TrimRecentlyCommitted unlinking). The same split covers
  /// ts_seq_ — it only advances under commit_lock_ (the §2.5 short critical
  /// section) but is read lock-free by CurrentEra and the GC watermark.
  alignas(MV3C_CACHELINE_SIZE) std::atomic<CommittedRecord*> rc_head_{nullptr};
  SpinLock commit_lock_;
  std::atomic<uint32_t> slot_hint_{0};
  Slot active_[kMaxActive];
  uint64_t gc_rounds_ = 0;
  uint64_t gc_nodes_freed_ = 0;
  // Declaration order is teardown-load-bearing: metrics_ before arena_
  // (slab retirement during arena teardown records kArenaRetire samples),
  // arena_ before gc_ (slabs outlive GC teardown).
  obs::MetricsRegistry metrics_;
  VersionArena arena_;
  GarbageCollector gc_;
#if defined(MV3C_WAL_ENABLED)
  // Last member: the log (and its writer thread) tears down first, before
  // gc_/arena_/metrics_ — the writer owns no version memory but its final
  // flush must not outlive any state a hook could touch.
  std::unique_ptr<wal::LogManager> wal_;
#endif
};

// --- Transaction methods that need the manager ---

inline void Transaction::Retire(VersionBase* v) {
  mgr_->gc().RetireVersion(v, mgr_->CurrentEra());
}

inline VersionArena& Transaction::arena() const { return mgr_->arena(); }

inline void Transaction::MaybeTruncateChain(DataObjectBase* obj) {
  constexpr uint32_t kTruncateThreshold = 48;
  if (MV3C_LIKELY(obj->ApproxChainLength() < kTruncateThreshold)) return;
  TransactionManager* mgr = mgr_;
  obj->TruncateOlderThan(mgr->OldestActiveStart(), [mgr](VersionBase* dead) {
    mgr->gc().RetireVersion(dead, mgr->CurrentEra());
  });
}

}  // namespace mv3c

#endif  // MV3C_MVCC_TRANSACTION_MANAGER_H_
