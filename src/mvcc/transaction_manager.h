#ifndef MV3C_MVCC_TRANSACTION_MANAGER_H_
#define MV3C_MVCC_TRANSACTION_MANAGER_H_

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "common/epoch_clock.h"
#include "common/failpoint.h"
#include "common/macros.h"
#include "common/spinlock.h"
#include "common/thread_safety.h"
#include "mvcc/gc.h"
#include "mvcc/timestamp.h"
#include "mvcc/transaction.h"
#include "mvcc/version_arena.h"
#include "obs/metrics.h"

#if defined(MV3C_WAL_ENABLED)
#include <memory>

#include "wal/log_mvcc.h"
#endif

namespace mv3c {

/// The shared transaction-management state of the MVCC substrate (paper
/// §5): the recently-committed list, the active-transaction registry, and
/// the decentralized timestamp substrate (DESIGN §5h). One instance serves
/// both the OMVCC and the MV3C engine — that shared validation surface is
/// exactly what makes the two interoperable (§3).
///
/// Timestamp substrate (DESIGN §5h). There is no start-and-commit
/// sequence. Instead:
///   * `commit_hwm_` is the high-water mark of published commit
///     timestamps. It is stored (seq_cst, under commit_lock_) as the last
///     step of publication, so any thread that reads value `h` is
///     guaranteed every version committed at or below `h` is fully
///     published — reading the mark IS acquiring a consistent snapshot.
///   * Begin is lock-free: start = hwm + 1, register the slot, then check
///     `trim_floor_` (the reclaim protocol below). No timestamp is
///     consumed — concurrent transactions may share a start value.
///   * Commit TIDs are epoch-composed (timestamp.h): allocated at
///     >= hwm + 2 under commit_lock_, shaped onto the committing worker's
///     lane, with the epoch component read from the shared EpochClock the
///     WAL's flush rounds advance. The +2 gap keeps start values disjoint
///     from commit timestamps, preserving the strict `ts < start`
///     visibility bound with no equality cases.
///
/// Concurrency protocol:
///   * Commit-time (delta) validation, commit-TID allocation and version
///     publication still happen inside the short spin-locked critical
///     section, matching the paper's requirement that "the whole process
///     of validating a transaction, and drawing a commit timestamp or a
///     new start timestamp ... is done in a short critical section"
///     (§2.5). The expensive part of validation — matching against
///     everything committed since the transaction's start — runs *outside*
///     the critical section as a pre-validation pass (§5 "Parallel
///     Validation"); only records that committed after that pass are
///     re-checked inside.
///   * Begin, Retimestamp and Restart no longer take the lock at all: a
///     fresh start timestamp is just a seq_cst read of the high-water
///     mark. §2.5's "drawing ... a new start timestamp" inside the
///     critical section existed to keep the draw consistent with
///     concurrent publication; the hwm read gives the same guarantee
///     without serializing (see the class invariant above).
///   * Repair (MV3C) and restart (OMVCC) run entirely outside the critical
///     section, concurrently with other transactions.
///
/// Reclaim protocol (lock-free Begin vs. trimming). A beginner is
/// invisible to watermark scans between its hwm read and its slot
/// registration, so every reclaimer first publishes its watermark cap into
/// `trim_floor_` (seq_cst) and only then scans the slot table;
/// symmetrically Begin registers its slot (seq_cst) and only then loads
/// `trim_floor_`. By the seq_cst total order one of the two sides must see
/// the other: either the scan sees the slot (watermark <= start) or the
/// beginner sees the floor and retries at a fresh start. The cap itself is
/// hwm + 1 — never beyond the newest published commit — which both keeps
/// the floor from running away on an idle system and guarantees a
/// concurrent unregistered beginner (start >= some hwm + 1) can at worst
/// tie the cap, and a tie never unlinks a version the beginner needs
/// (truncation keeps the newest committed version below the watermark).
class TransactionManager {
 public:
  static constexpr size_t kMaxActive = 1024;
  static constexpr Timestamp kIdleSlot = ~0ULL;
  /// Begin retries the trim-floor check a few times lock-free, then falls
  /// back to one commit_lock_ acquisition (the mark is frozen under the
  /// lock, so the check deterministically passes).
  static constexpr int kBeginRetryRounds = 8;

  TransactionManager() {
    for (auto& s : active_) s.start.store(kIdleSlot, std::memory_order_relaxed);
    // Manager-level maintenance counters live on the shared registry so the
    // bench aggregation sees them next to the per-executor engine counters.
    metrics_.RegisterCounter("gc_rounds", &gc_rounds_);
    metrics_.RegisterCounter("gc_nodes_freed", &gc_nodes_freed_);
    // Bumped under commit_lock_ (like wal_sync_waits_ under the WAL's mu_);
    // nonzero only when lock-free Begins lost the trim-floor race past the
    // retry budget — the convoy-diagnosis counter for the §5h substrate.
    metrics_.RegisterCounter("begin_lock_fallbacks", &begin_lock_fallbacks_);
    arena_.set_metrics(&metrics_);
  }
  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;
  ~TransactionManager() {
    TrimRecentlyCommitted(kDeadVersion);
    gc_.CollectAll();
  }

  /// Starts `t`: lock-free. Draws a per-lane transaction id, adopts
  /// `commit_hwm_ + 1` as the start timestamp (no sequence is consumed —
  /// concurrent transactions may share a start), registers the slot, and
  /// runs the reclaim-protocol floor check (class comment).
  void Begin(Transaction* t) MV3C_EXCLUDES(commit_lock_) {
    const uint32_t lane = ThisThreadTidLane();
    const Timestamp id = ComposeTxnId(
        lane, lanes_[lane].txn_tick.fetch_add(1, std::memory_order_relaxed));
    Timestamp start = commit_hwm_.load(std::memory_order_seq_cst) + 1;
    const uint32_t slot = AcquireSlot(start);
    int rounds = 0;
    while (trim_floor_.load(std::memory_order_seq_cst) > start) {
      if (++rounds > kBeginRetryRounds) {
        SpinLockGuard g(commit_lock_);
        ++begin_lock_fallbacks_;
        start = commit_hwm_.load(std::memory_order_seq_cst) + 1;
        active_[slot].start.store(start, std::memory_order_seq_cst);
        break;  // hwm (hence the floor cap) is frozen under the lock
      }
      begin_floor_retries_.fetch_add(1, std::memory_order_relaxed);
      start = commit_hwm_.load(std::memory_order_seq_cst) + 1;
      active_[slot].start.store(start, std::memory_order_seq_cst);
    }
    t->OnBegin(start, id, slot);
  }

  /// Head of the recently-committed list (newest first).
  CommittedRecord* rc_head() const {
    return rc_head_.load(std::memory_order_acquire);
  }

  /// Walks committed versions of recently-committed records newer than
  /// `min_commit_ts_exclusive`, starting at `from` (newest first). Commit
  /// timestamps decrease strictly along the list, so the walk stops at the
  /// first record at or below the bound. Calls `fn(const VersionBase&)`;
  /// if fn returns false the walk aborts. Returns false iff aborted by fn.
  template <typename Fn>
  static bool ForEachConcurrentVersion(CommittedRecord* from,
                                       Timestamp min_commit_ts_exclusive,
                                       Fn&& fn) {
    for (CommittedRecord* r = from; r != nullptr;
         r = r->next.load(std::memory_order_acquire)) {
      if (r->commit_ts <= min_commit_ts_exclusive) break;
      for (const VersionBase* v : r->versions) {
        if (!fn(*v)) return false;
      }
    }
    return true;
  }

  /// Attempts to commit `t`.
  ///
  /// `revalidate(CommittedRecord* from)` must run the engine's validation
  /// over records newer than t->validated_up_to() starting at `from` and
  /// return true iff the transaction is still valid (the pre-validation
  /// pass outside the lock has already covered everything older). On
  /// success the commit TID is allocated, versions are published, the
  /// record is appended to the recently-committed list, and the
  /// transaction leaves the active table; `*commit_ts_out` (optional)
  /// receives the commit timestamp. On failure the transaction stays
  /// active with a fresh start timestamp and the caller runs
  /// repair/restart outside.
  template <typename RevalidateFn>
  [[nodiscard]] bool TryCommit(Transaction* t, RevalidateFn&& revalidate,
                               Timestamp* commit_ts_out = nullptr)
      MV3C_EXCLUDES(commit_lock_) {
    SpinLockGuard g(commit_lock_);
    ExecStatus (*no_repair)() = nullptr;
    return CommitLocked(t, revalidate, no_repair, commit_ts_out) ==
           ExecStatus::kOk;
  }

  /// §4.3 exclusive repair: like TryCommit, but on validation failure the
  /// engine's `repair()` runs *inside* the critical section; since no other
  /// transaction can commit meanwhile, the repaired transaction commits
  /// immediately afterwards without another validation round. Returns the
  /// repair ExecStatus (kOk implies committed); a non-kOk status leaves the
  /// transaction active with a fresh start timestamp so the caller can
  /// handle the abort/restart outside the lock.
  template <typename RevalidateFn, typename RepairFn>
  ExecStatus TryCommitExclusive(Transaction* t, RevalidateFn&& revalidate,
                                RepairFn&& repair,
                                Timestamp* commit_ts_out = nullptr)
      MV3C_EXCLUDES(commit_lock_) {
    SpinLockGuard g(commit_lock_);
    return CommitLocked(t, revalidate, &repair, commit_ts_out);
  }

  /// Draws a fresh start timestamp for a transaction staying in the
  /// repair path (validation failed during pre-validation, outside the
  /// commit critical section). Keeps the validation watermark. Lock-free:
  /// the transaction's slot stays registered throughout, so no reclaim
  /// watermark can pass its (old, smaller) start while the new one is
  /// adopted — the trim-floor check Begin needs is unnecessary here.
  void Retimestamp(Transaction* t) {
    // Delay/yield injection point: widens the window between a failed
    // pre-validation and the repair round so concurrent commits can slip
    // in (the repeated-invalidation schedule the chaos tests force).
    (void)MV3C_FAILPOINT(failpoint::Site::kRetimestamp);
    RefreshStartTs(t);
  }

  /// Commits a transaction with an empty write set without validation:
  /// a read-only transaction reads a consistent snapshot and serializes at
  /// its start timestamp (§5, Appendix A).
  void CommitReadOnly(Transaction* t) {
    MV3C_CHECK(t->undo_buffer().empty());
    ReleaseSlot(t->slot());
  }

  /// Draws a fresh start timestamp for a transaction that rolled back its
  /// writes and restarts from scratch (user-abort-free restart paths:
  /// fail-fast write-write conflicts, OMVCC validation failure). Lock-free
  /// for the same reason as Retimestamp.
  void Restart(Transaction* t) {
    RefreshStartTs(t);
    t->ResetValidationWatermark();
  }

  /// Removes a user-aborted transaction from the active table. The caller
  /// must have rolled back its writes already.
  void FinishAborted(Transaction* t) { ReleaseSlot(t->slot()); }

  /// A checkpoint reader's hold on the MVCC history: while pinned, the GC
  /// watermark cannot pass `ts`, so every version visible at `ts` survives
  /// the scan.
  struct SnapshotPin {
    Timestamp ts = 0;
    uint32_t slot = 0;
  };

  /// Pins a consistent read-only snapshot at `commit_hwm_ + 1`, exactly
  /// like Begin pins a transaction's start — but under commit_lock_, NOT
  /// lock-free. The lock matters for the checkpoint/WAL cut (DESIGN §5g):
  /// a committer midway through its critical section may already have an
  /// epoch tag drawn (and flushed durable) while its hwm store is still
  /// pending; a lock-free pin could slip between the two and take a
  /// snapshot that misses a commit whose epoch the checkpoint then
  /// truncates. Taking the lock waits such a committer out, restoring the
  /// invariant "invisible at pin.ts => epoch tag drawn after the durable
  /// cut was read". The hwm is not advanced: readers need no unique
  /// timestamp, and the slot registration under the lock needs no
  /// trim-floor check (the floor cap <= hwm + 1 = pin.ts is frozen).
  SnapshotPin PinSnapshot() MV3C_EXCLUDES(commit_lock_) {
    SpinLockGuard g(commit_lock_);
    SnapshotPin pin;
    pin.ts = commit_hwm_.load(std::memory_order_relaxed) + 1;
    pin.slot = AcquireSlot(pin.ts);
    return pin;
  }

  void ReleaseSnapshot(const SnapshotPin& pin) { ReleaseSlot(pin.slot); }

  /// Oldest start timestamp among active transactions, or kIdleSlot
  /// ("infinity") if none are active. A plain observer: reclaim paths must
  /// go through AcquireReclaimCuts (which runs the trim-floor protocol
  /// before this scan); direct callers may only use the value for
  /// operations that cannot invalidate an unregistered beginner's
  /// snapshot (e.g. dropping index entries for tombstoned rows — any
  /// future start exceeds every published commit, so it sees the
  /// tombstone regardless).
  Timestamp OldestActiveStart() const {
    Timestamp oldest = kIdleSlot;
    for (const Slot& s : active_) {
      const Timestamp v = s.start.load(std::memory_order_seq_cst);
      if (v < oldest) oldest = v;
    }
    return oldest;
  }

  /// The retirement era for the GC: one past the newest published commit.
  /// A retired node is freed only once the reclaim watermark strictly
  /// exceeds its era, i.e. once no registered transaction's start is at or
  /// below it (gc.h).
  Timestamp CurrentEra() const {
    return commit_hwm_.load(std::memory_order_seq_cst) + 1;
  }

  /// Reclamation bounds, computed with the trim-floor protocol (class
  /// comment): `trim` bounds RC-list trimming and version-chain truncation
  /// (both capped at hwm + 1, so a concurrent unregistered beginner can at
  /// worst tie it — safe, see class comment); `free_below` bounds the
  /// GC's freeing of already-unlinked nodes (capped one higher: an
  /// unlinked node is unreachable from any chain head, so a beginner that
  /// ties its era cannot be standing on it — only registered transactions
  /// at or below the era can, and the OldestActiveStart term covers
  /// those).
  struct ReclaimCuts {
    Timestamp trim;
    Timestamp free_below;
  };
  ReclaimCuts AcquireReclaimCuts() {
    const Timestamp cap = commit_hwm_.load(std::memory_order_seq_cst) + 1;
    // Publish the floor BEFORE scanning the slot table; pairs with Begin's
    // register-then-check (seq_cst on both sides).
    Timestamp floor = trim_floor_.load(std::memory_order_seq_cst);
    while (floor < cap && !trim_floor_.compare_exchange_weak(
                              floor, cap, std::memory_order_seq_cst)) {
    }
    const Timestamp oldest = OldestActiveStart();
    return {std::min(cap, oldest), std::min(cap + 1, oldest)};
  }

  GarbageCollector& gc() { return gc_; }

  /// Version/record memory for every transaction under this manager.
  /// The arena is the last member destroyed here that touches version
  /// memory (declared before gc_, destroyed after it), and tables are
  /// destroyed before their manager throughout the codebase, so every
  /// Destroy() precedes the slabs' release.
  VersionArena& arena() { return arena_; }
  const VersionArena& arena() const { return arena_; }

  /// Trims the recently-committed list and frees retired garbage. Called
  /// periodically by execution drivers; rate limiting is the caller's
  /// business. The whole pass is one kGc phase sample; drivers are
  /// single-threaded per manager for maintenance, so the plain counters
  /// need no synchronization.
  void CollectGarbage() {
    obs::ScopedPhaseTimer timer(&metrics_, obs::Phase::kGc);
    const ReclaimCuts cuts = AcquireReclaimCuts();
    TrimRecentlyCommitted(cuts.trim);
    gc_nodes_freed_ += gc_.Collect(cuts.free_below);
    ++gc_rounds_;
    // Recycle slabs whose retirement a kGcReclaim firing parked; same
    // drains-once-injection-stops contract as the node-level backlog.
    arena_.DrainDeferred();
  }

  /// Manager-level metrics (GC rounds/freed counters, begin_lock_fallbacks,
  /// kGc and kArenaRetire phase histograms). Benchmarks merge this with
  /// executor registries.
  obs::MetricsRegistry& metrics() { return metrics_; }

  /// Lock-free Begins that lost a trim-floor race and retried (relaxed;
  /// diagnosis only — the contract test asserts the protocol, not the
  /// count).
  uint64_t begin_floor_retries() const {
    return begin_floor_retries_.load(std::memory_order_relaxed);
  }

  /// The shared epoch counter (commit-TID epochs + WAL flush rounds).
  EpochClock& epoch_clock() { return epoch_clock_; }

#if defined(MV3C_WAL_ENABLED)
  /// Turns on durability: commits of WAL-registered tables serialize their
  /// final write set into the group-commit log (DESIGN §5f), whose flush
  /// rounds advance this manager's epoch clock — redo-block epoch tags and
  /// commit-TID epoch components stay aligned (tag >= TsEpoch(commit_ts)).
  /// Call before any transaction runs; the writer thread lives until the
  /// manager (or DisableWal) tears it down.
  void EnableWal(const wal::WalConfig& config) {
    wal_ = std::make_unique<wal::LogManager>(config, &epoch_clock_);
  }
  /// Joins the writer thread and closes the log (final flush included).
  void DisableWal() { wal_.reset(); }
  wal::LogManager* wal() { return wal_.get(); }
#endif

  /// Blocks until `t`'s last commit is durable per the configured ack mode
  /// (a shared group-commit wait under sync ack, a no-op under async ack).
  /// Compiled in every build: without WAL it returns true immediately, so
  /// executors call it unconditionally. Returns false iff the log crashed
  /// before the commit became durable.
  bool WalWaitDurable(Transaction* t) {
#if defined(MV3C_WAL_ENABLED)
    if (wal_ != nullptr && t->wal_epoch() != 0) {
      return wal_->WaitCommitDurable(t->wal_epoch());
    }
#endif
    (void)t;
    return true;
  }

  /// Recovery hook: raises the commit high-water mark past `ts` (and the
  /// epoch clock to `ts`'s epoch) so versions replayed with commit
  /// timestamps up to `ts` are visible to — and older than — every
  /// transaction started afterwards. Runs before any transaction starts.
  void AdvanceClockTo(Timestamp ts) MV3C_EXCLUDES(commit_lock_) {
    SpinLockGuard g(commit_lock_);
    if (commit_hwm_.load(std::memory_order_relaxed) < ts) {
      commit_hwm_.store(ts, std::memory_order_seq_cst);
    }
    epoch_clock_.AdvanceTo(TsEpoch(ts));
  }

  /// Number of records currently reachable in the RC list; metrics/tests.
  size_t RecentlyCommittedLength() const {
    size_t n = 0;
    for (CommittedRecord* r = rc_head(); r != nullptr;
         r = r->next.load(std::memory_order_acquire)) {
      ++n;
    }
    return n;
  }

 private:
  struct alignas(MV3C_CACHELINE_SIZE) Slot {
    std::atomic<Timestamp> start;
  };

  /// Per-lane TID state, one cache line per worker lane.
  struct alignas(MV3C_CACHELINE_SIZE) TidLane {
    /// Last commit TID stamped with this lane. Written under commit_lock_
    /// only (the annotation can't say so from a nested struct); redundant
    /// with the hwm floor, kept to make per-lane monotonicity manifest.
    Timestamp last_commit = 0;
    /// Transaction-id tick; relaxed fetch_add, unique via the lane bits.
    std::atomic<uint64_t> txn_tick{0};
  };

  /// The one shared commit path (TryCommit and TryCommitExclusive both
  /// land here): delta revalidation, TID allocation, publication, redo
  /// logging, hwm release. `repair == nullptr` is TryCommit's no-repair
  /// mode — on validation failure the transaction is retimestamped and a
  /// non-kOk sentinel status is returned (the caller only maps it to
  /// `false`; it is never surfaced).
  template <typename RevalidateFn, typename RepairFn>
  ExecStatus CommitLocked(Transaction* t, RevalidateFn&& revalidate,
                          RepairFn* repair, Timestamp* commit_ts_out)
      MV3C_REQUIRES(commit_lock_) {
    CommittedRecord* head = rc_head();
    const bool valid = revalidate(head);
    if (head != nullptr) t->set_validated_up_to(head->commit_ts);
    if (!valid) {
      RetimestampLocked(t);
      if (repair == nullptr) return ExecStatus::kWriteWriteConflict;
      const ExecStatus st = (*repair)();
      if (st != ExecStatus::kOk) return st;
    }
    const Timestamp c = AllocCommitTidLocked();
    CommittedRecord* rec = t->PublishCommit(c);
    if (rec != nullptr) {
      rec->next.store(head, std::memory_order_relaxed);
      rc_head_.store(rec, std::memory_order_release);
      LogCommitLocked(t, rec, c);
    }
    // The hwm store is the publication point (class comment): seq_cst,
    // strictly after the versions and the RC record are in place.
    commit_hwm_.store(c, std::memory_order_seq_cst);
    ReleaseSlot(t->slot());
    if (commit_ts_out != nullptr) *commit_ts_out = c;
    return ExecStatus::kOk;
  }

  /// Allocates the next commit TID (timestamp.h layout): value floor is
  /// hwm + 2 (the start-gap invariant) raised to the current epoch's
  /// range, then shaped onto the committing worker's lane. Rolling past
  /// the epoch's value range advances the shared clock, so the TID's
  /// epoch component never exceeds the epoch tag LogCommitLocked draws
  /// moments later.
  Timestamp AllocCommitTidLocked() MV3C_REQUIRES(commit_lock_) {
    const uint32_t lane = ThisThreadTidLane();
    const uint64_t epoch = epoch_clock_.Current();
    Timestamp floor = commit_hwm_.load(std::memory_order_relaxed) + 2;
    floor = std::max(floor, lanes_[lane].last_commit + 1);
    floor = std::max(floor, EpochFirstTs(epoch));
    const Timestamp c = ShapeToLane(floor, lane);
    lanes_[lane].last_commit = c;
    if (TsEpoch(c) > epoch) epoch_clock_.AdvanceTo(TsEpoch(c));
    MV3C_CHECK(IsCommitTs(c));
    return c;
  }

  /// Serializes a just-published commit into the redo log; caller holds
  /// commit_lock_ (the versions can't be GC'd and the write set is final —
  /// for MV3C, final *after* repair). Compiles to nothing without WAL.
  void LogCommitLocked(Transaction* t, const CommittedRecord* rec,
                       Timestamp c) MV3C_REQUIRES(commit_lock_) {
#if defined(MV3C_WAL_ENABLED)
    if (wal_ != nullptr) {
      wal::LogBuffer* buf = t->wal_buffer();
      t->set_wal_epoch(
          wal::LogMvccCommit(*wal_, buf, *rec, c, t->wal_repaired()));
      t->set_wal_buffer(buf);
    }
#else
    (void)t;
    (void)rec;
    (void)c;
#endif
  }

  /// Adopts a fresh start timestamp for a still-registered transaction.
  /// The slot already holds the old (smaller) start, so no reclaim
  /// watermark can have passed it; the in-place store only raises the
  /// slot's value, which can never shrink a concurrent watermark scan
  /// below what the transaction needs. A fresh start read after a
  /// validation failure necessarily exceeds the invalidator's commit
  /// timestamp (the invalidator published, raising the hwm, before the
  /// failure was observable).
  void RefreshStartTs(Transaction* t) {
    const Timestamp fresh = commit_hwm_.load(std::memory_order_seq_cst) + 1;
    active_[t->slot()].start.store(fresh, std::memory_order_seq_cst);
    t->OnNewStartTs(fresh);
  }

  /// In-critical-section variant (TryCommit's failure path): same body,
  /// named separately so the locked context stays visible at call sites.
  void RetimestampLocked(Transaction* t) MV3C_REQUIRES(commit_lock_) {
    RefreshStartTs(t);
  }

  uint32_t AcquireSlot(Timestamp start) {
    const uint32_t hint = slot_hint_.fetch_add(1, std::memory_order_relaxed);
    for (size_t i = 0; i < kMaxActive; ++i) {
      const uint32_t idx = (hint + i) % kMaxActive;
      Timestamp expected = kIdleSlot;
      if (active_[idx].start.compare_exchange_strong(
              expected, start, std::memory_order_seq_cst)) {
        return idx;
      }
    }
    MV3C_CHECK(false && "active-transaction table exhausted");
    return 0;
  }

  void ReleaseSlot(uint32_t slot) {
    active_[slot].start.store(kIdleSlot, std::memory_order_release);
  }

  /// Unlinks RC records whose commit timestamp is below `watermark` (no
  /// active transaction can need them for validation) and retires them.
  /// Safe against lock-free Begins via the era discipline: the nodes are
  /// retired at era hwm + 1, and the GC frees an era only once every
  /// registered start strictly exceeds it. A later beginner whose start
  /// exceeds the era must have read a hwm store sequenced after this
  /// unlink (hwm only advances under commit_lock_, which we hold), so its
  /// rc_head read cannot reach the unlinked nodes.
  void TrimRecentlyCommitted(Timestamp watermark)
      MV3C_EXCLUDES(commit_lock_) {
    SpinLockGuard g(commit_lock_);
    CommittedRecord* prev = nullptr;
    CommittedRecord* cur = rc_head();
    while (cur != nullptr && cur->commit_ts >= watermark) {
      prev = cur;
      cur = cur->next.load(std::memory_order_acquire);
    }
    if (cur == nullptr) return;
    if (prev == nullptr) {
      rc_head_.store(nullptr, std::memory_order_release);
    } else {
      prev->next.store(nullptr, std::memory_order_release);
    }
    const Timestamp era = CurrentEra();
    while (cur != nullptr) {
      CommittedRecord* next = cur->next.load(std::memory_order_acquire);
      gc_.RetireRecord(cur, era);
      cur = next;
    }
  }

  /// High-water mark of published commit TIDs. Stores happen only under
  /// commit_lock_ (publication, AdvanceClockTo), always seq_cst, always
  /// after the commit's versions are fully in place; reads are lock-free
  /// everywhere (Begin, RefreshStartTs, CurrentEra, reclaim caps). Same
  /// guarded-writes/lock-free-reads split as rc_head_ below.
  alignas(MV3C_CACHELINE_SIZE) std::atomic<Timestamp> commit_hwm_{0};
  /// Reclaim-protocol floor (class comment): monotone, only ever holds
  /// past `hwm + 1` caps.
  alignas(MV3C_CACHELINE_SIZE) std::atomic<Timestamp> trim_floor_{0};
  /// rc_head_ stays an atomic, not MV3C_GUARDED_BY(commit_lock_): readers
  /// (pre-validation, ForEachConcurrentVersion) chase it lock-free; every
  /// *store* happens with commit_lock_ held (CommitLocked publication,
  /// TrimRecentlyCommitted unlinking).
  alignas(MV3C_CACHELINE_SIZE) std::atomic<CommittedRecord*> rc_head_{nullptr};
  SpinLock commit_lock_;
  EpochClock epoch_clock_;
  std::atomic<uint32_t> slot_hint_{0};
  Slot active_[kMaxActive];
  /// TidLane::last_commit is written only under commit_lock_ (NextCommitTs);
  /// the capability lives two declarations up but GUARDED_BY cannot reach
  /// into a nested struct's field from here. txn_tick is atomic.
  // mv3c-lint: allow(guarded_by_coverage)
  TidLane lanes_[kMaxTidLanes];
  std::atomic<uint64_t> begin_floor_retries_{0};
  /// Maintenance counters: CollectGarbage is documented single-caller
  /// (one maintenance thread), so these stay plain — making them atomic
  /// would misrepresent the contract the chaos suite enforces.
  // mv3c-lint: allow(guarded_by_coverage)
  uint64_t gc_rounds_ = 0;
  // mv3c-lint: allow(guarded_by_coverage)
  uint64_t gc_nodes_freed_ = 0;
  uint64_t begin_lock_fallbacks_ MV3C_GUARDED_BY(commit_lock_) = 0;
  // Declaration order is teardown-load-bearing: metrics_ before arena_
  // (slab retirement during arena teardown records kArenaRetire samples),
  // arena_ before gc_ (slabs outlive GC teardown).
  obs::MetricsRegistry metrics_;
  VersionArena arena_;
  GarbageCollector gc_;
#if defined(MV3C_WAL_ENABLED)
  // Last member: the log (and its writer thread) tears down first, before
  // gc_/arena_/metrics_ — the writer owns no version memory but its final
  // flush must not outlive any state a hook could touch. The pointer is
  // set during config-phase EnableWal/DisableWal (no workers yet) and read
  // lock-free on the commit path, so it carries no capability annotation.
  // mv3c-lint: allow(guarded_by_coverage)
  std::unique_ptr<wal::LogManager> wal_;
#endif
};

// --- Transaction methods that need the manager ---

inline void Transaction::Retire(VersionBase* v) {
  mgr_->gc().RetireVersion(v, mgr_->CurrentEra());
}

inline VersionArena& Transaction::arena() const { return mgr_->arena(); }

inline void Transaction::MaybeTruncateChain(DataObjectBase* obj) {
  constexpr uint32_t kTruncateThreshold = 48;
  if (MV3C_LIKELY(obj->ApproxChainLength() < kTruncateThreshold)) return;
  TransactionManager* mgr = mgr_;
  // Worker-thread truncation must run the reclaim protocol (trim-floor
  // publish before the slot scan), not a bare OldestActiveStart.
  obj->TruncateOlderThan(mgr->AcquireReclaimCuts().trim,
                         [mgr](VersionBase* dead) {
                           mgr->gc().RetireVersion(dead, mgr->CurrentEra());
                         });
}

}  // namespace mv3c

#endif  // MV3C_MVCC_TRANSACTION_MANAGER_H_
