#ifndef MV3C_MVCC_TIMESTAMP_H_
#define MV3C_MVCC_TIMESTAMP_H_

#include <atomic>
#include <cstdint>

namespace mv3c {

/// Logical timestamp ordering starts and commits (paper §5): a transaction
/// T ran concurrently with every committed transaction whose commit
/// timestamp is greater than T's start timestamp.
///
/// Commit timestamps are epoch-composed TIDs (DESIGN §5h), not draws from
/// a global sequence:
///
///     63 62                 30 29            8 7          0
///     +--+-------------------+---------------+------------+
///     | 0|       epoch       |   sequence    |    lane    |
///     +--+-------------------+---------------+------------+
///
///   * `lane` stamps the committing worker (8 bits, hashed thread id);
///   * `sequence` makes the value strictly larger than every previously
///     published commit timestamp;
///   * `epoch` is the shared EpochClock value at allocation — the same
///     counter the WAL's group-commit rounds bump, so a commit's epoch
///     component never exceeds its redo records' epoch tag.
///
/// Ordering contract: all visibility (`FindVisible`), validation
/// (`ForEachConcurrentVersion`), GC-watermark and checkpoint logic compare
/// timestamps as plain integers, exactly as before; the layout only
/// changes *which* integers get allocated. Start timestamps are not drawn
/// from a sequence at all — a transaction starts at
/// `commit high-water mark + 1`, and commit TIDs are allocated at
/// `>= high-water mark + 2`, so a start value is never equal to any commit
/// timestamp (the strict `ts < start` visibility bound and the exclusive
/// `commit_ts > validated_up_to` validation bound stay collision-free).
using Timestamp = uint64_t;

/// Transaction identifiers double as provisional commit timestamps on
/// uncommitted versions. They live above every realizable commit
/// timestamp, so a version is uncommitted iff its timestamp is >=
/// kTxnIdBase (paper §5). The epoch field below stays under 2^32 to keep
/// composed commit TIDs below this base (about ten days of 200µs WAL
/// epochs per process lifetime; MV3C_CHECKed at allocation).
inline constexpr Timestamp kTxnIdBase = 1ULL << 62;

/// Sentinel timestamp for versions that were rolled back or pruned out of a
/// version chain. Readers skip dead versions; the garbage collector frees
/// them once no active transaction can still hold a pointer to them.
inline constexpr Timestamp kDeadVersion = ~0ULL;

/// Returns true if `ts` identifies an uncommitted version (a transaction
/// id rather than a commit timestamp).
inline constexpr bool IsTxnId(Timestamp ts) {
  return ts >= kTxnIdBase && ts != kDeadVersion;
}

/// Returns true if `ts` is a commit timestamp.
inline constexpr bool IsCommitTs(Timestamp ts) { return ts < kTxnIdBase; }

// --- Commit-TID layout (DESIGN §5h) -------------------------------------

inline constexpr uint32_t kTidLaneBits = 8;
inline constexpr uint32_t kTidSeqBits = 22;
inline constexpr uint32_t kTidEpochShift = kTidLaneBits + kTidSeqBits;
inline constexpr uint32_t kMaxTidLanes = 1u << kTidLaneBits;
inline constexpr Timestamp kTidLaneMask = kMaxTidLanes - 1;

/// Epoch component of a commit timestamp.
inline constexpr uint64_t TsEpoch(Timestamp ts) { return ts >> kTidEpochShift; }

/// Worker-lane component of a commit timestamp.
inline constexpr uint32_t TsLane(Timestamp ts) {
  return static_cast<uint32_t>(ts & kTidLaneMask);
}

/// Smallest timestamp carrying `epoch` (sequence and lane both zero).
inline constexpr Timestamp EpochFirstTs(uint64_t epoch) {
  return static_cast<Timestamp>(epoch) << kTidEpochShift;
}

/// Smallest timestamp >= `floor` whose lane field is `lane`. Strict
/// monotonicity of allocation comes from the caller's floor (the commit
/// high-water mark + 2); the lane shaping only picks which of the next 256
/// values the TID lands on.
inline constexpr Timestamp ShapeToLane(Timestamp floor, uint32_t lane) {
  const Timestamp c = (floor & ~kTidLaneMask) | lane;
  return c >= floor ? c : c + kMaxTidLanes;
}

/// Transaction-id layout: `kTxnIdBase | lane << 48 | per-lane tick`. Ids
/// are allocated with one relaxed fetch_add on the lane's own cache line —
/// no globally shared counter — and are unique per manager because the
/// lane bits partition the space (2^48 ids per lane before overflow, and
/// the sum stays far below kDeadVersion).
inline constexpr uint32_t kTxnIdLaneShift = 48;

inline constexpr Timestamp ComposeTxnId(uint32_t lane, uint64_t tick) {
  return kTxnIdBase | (static_cast<Timestamp>(lane) << kTxnIdLaneShift) | tick;
}

/// This thread's TID lane: threads grab distinct lanes round-robin and
/// keep them for life. More than kMaxTidLanes threads fold onto shared
/// lanes, which stays correct (lane-local state is either lock-protected
/// or atomic) and only costs some cache-line sharing.
inline uint32_t ThisThreadTidLane() {
  static std::atomic<uint32_t> next_lane{0};
  thread_local const uint32_t lane =
      next_lane.fetch_add(1, std::memory_order_relaxed) &
      static_cast<uint32_t>(kTidLaneMask);
  return lane;
}

}  // namespace mv3c

#endif  // MV3C_MVCC_TIMESTAMP_H_
