#ifndef MV3C_MVCC_TIMESTAMP_H_
#define MV3C_MVCC_TIMESTAMP_H_

#include <cstdint>

namespace mv3c {

/// Logical timestamp drawn from the global start-and-commit sequence.
///
/// Start timestamps and commit timestamps come from one shared sequence
/// (paper §5): a transaction T ran concurrently with every committed
/// transaction whose commit timestamp is greater than T's start timestamp.
using Timestamp = uint64_t;

/// Transaction identifiers double as provisional commit timestamps on
/// uncommitted versions. They are drawn from a second sequence that starts
/// at a value larger than any realizable commit timestamp, so a version is
/// uncommitted iff its timestamp is >= kTxnIdBase (paper §5).
inline constexpr Timestamp kTxnIdBase = 1ULL << 62;

/// Sentinel timestamp for versions that were rolled back or pruned out of a
/// version chain. Readers skip dead versions; the garbage collector frees
/// them once no active transaction can still hold a pointer to them.
inline constexpr Timestamp kDeadVersion = ~0ULL;

/// Returns true if `ts` identifies an uncommitted version (a transaction
/// id rather than a commit timestamp).
inline constexpr bool IsTxnId(Timestamp ts) {
  return ts >= kTxnIdBase && ts != kDeadVersion;
}

/// Returns true if `ts` is a commit timestamp.
inline constexpr bool IsCommitTs(Timestamp ts) { return ts < kTxnIdBase; }

}  // namespace mv3c

#endif  // MV3C_MVCC_TIMESTAMP_H_
