#ifndef MV3C_MVCC_TABLE_H_
#define MV3C_MVCC_TABLE_H_

#include <cstdint>
#include <cstring>
#include <deque>
#include <string>
#include <type_traits>

#include "common/macros.h"
#include "common/spinlock.h"
#include "common/thread_safety.h"
#include "index/cuckoo_map.h"
#include "mvcc/data_object.h"
#include "mvcc/version.h"

namespace mv3c {

/// Type-erased table interface. Versions reference their table so that
/// engine-generic code (validation, garbage collection) can dispatch back
/// to typed operations.
class TableBase {
 public:
  explicit TableBase(std::string name, WwPolicy policy)
      : name_(std::move(name)), ww_policy_(policy) {}
  TableBase(const TableBase&) = delete;
  TableBase& operator=(const TableBase&) = delete;
  virtual ~TableBase() = default;

  const std::string& name() const { return name_; }

  /// Write-write conflict policy for updates of this table (paper §2.3.1:
  /// configurable system-wide or table-wide, overridable per operation).
  WwPolicy ww_policy() const { return ww_policy_; }
  void set_ww_policy(WwPolicy p) { ww_policy_ = p; }

  /// Durability identity: tables registered with a wal::Catalog get a
  /// nonzero stable id that keys their redo records; tables left at
  /// kNoWalId are invisible to the log (their writes are not serialized).
  /// Plain metadata — compiled in regardless of -DMV3C_WAL so table layout
  /// does not fork across build modes.
  static constexpr uint32_t kNoWalId = 0;
  uint32_t wal_id() const { return wal_id_; }
  void set_wal_id(uint32_t id) { wal_id_ = id; }

  /// Type-erased redo serialization of one version (key + after-image),
  /// used by the commit-path serializer which only holds VersionBase*.
  /// Zero sizes mean the table's key/row are not trivially copyable and
  /// the table cannot be logged (Catalog refuses to register it).
  virtual uint32_t WalKeyBytes() const { return 0; }
  virtual uint32_t WalRowBytes() const { return 0; }
  virtual void WalEncodeKey(const VersionBase& v, void* out) const {
    (void)v;
    (void)out;
  }
  virtual void WalEncodeRow(const VersionBase& v, void* out) const {
    (void)v;
    (void)out;
  }

 private:
  const std::string name_;
  WwPolicy ww_policy_;
  uint32_t wal_id_ = kNoWalId;
};

/// An in-memory multi-version table: a concurrent cuckoo hash map from
/// primary keys to data objects, each holding a version chain (paper §5).
///
/// Data objects are allocated from an append-only arena (std::deque) so
/// their addresses stay stable for the lifetime of the table; logical
/// deletion happens through tombstone versions, never by removing objects.
template <typename K, typename RowT>
class Table : public TableBase {
 public:
  using Key = K;
  using Row = RowT;
  using Object = DataObject<K, RowT>;

  Table(std::string name, size_t expected_rows = 1024,
        WwPolicy policy = WwPolicy::kFailFast)
      : TableBase(std::move(name), policy), index_(expected_rows) {}

  /// Returns the data object for `key`, or nullptr if no row with this key
  /// was ever inserted.
  Object* Find(const K& key) const {
    Object* obj = nullptr;
    (void)index_.Find(key, &obj);  // miss leaves obj nullptr, the signal
    return obj;
  }

  /// Returns the data object for `key`, creating an empty one (no versions)
  /// if absent. Used by inserts.
  Object* GetOrCreate(const K& key) {
    Object* obj = nullptr;
    if (index_.Find(key, &obj)) return obj;
    Object* fresh = Allocate(key);
    if (index_.Insert(key, fresh)) return fresh;
    // Lost the race; the winner's object is authoritative. The loser stays
    // in the arena unused (objects are arena-owned and cheap).
    MV3C_CHECK(index_.Find(key, &obj));
    return obj;
  }

  /// Applies `fn(Object&)` to every data object (weakly consistent under
  /// concurrent inserts). Scans filter visibility per object themselves.
  template <typename Fn>
  void ForEachObject(Fn&& fn) const {
    index_.ForEach([&fn](const K&, Object* obj) { fn(*obj); });
  }

  /// Number of data objects ever created (including logically deleted and
  /// ghost rows from rolled-back inserts).
  size_t ObjectCount() const { return index_.Size(); }

  /// Whether this table's writes can be serialized into the redo log: the
  /// log is a memcpy format, so key and row must be trivially copyable.
  static constexpr bool kWalEncodable =
      std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<RowT>;

  uint32_t WalKeyBytes() const override {
    return kWalEncodable ? sizeof(K) : 0;
  }
  uint32_t WalRowBytes() const override {
    return kWalEncodable ? sizeof(RowT) : 0;
  }
  void WalEncodeKey(const VersionBase& v, void* out) const override {
    if constexpr (kWalEncodable) {
      std::memcpy(out, &static_cast<const Object*>(v.object())->key(),
                  sizeof(K));
    } else {
      (void)v;
      (void)out;
    }
  }
  void WalEncodeRow(const VersionBase& v, void* out) const override {
    if constexpr (kWalEncodable) {
      std::memcpy(out, &static_cast<const Version<RowT>&>(v).data(),
                  sizeof(RowT));
    } else {
      (void)v;
      (void)out;
    }
  }

  /// Approximate object-arena footprint (headers/keys only — the versions
  /// hanging off the chains live in the manager's VersionArena, whose
  /// held_bytes covers them). Reported by bench/overhead_memory.
  size_t ApproxObjectBytes() const {
    SpinLockGuard g(arena_lock_);
    return arena_.size() * sizeof(Object);
  }

 private:
  Object* Allocate(const K& key) {
    SpinLockGuard g(arena_lock_);
    arena_.emplace_back(key);
    return &arena_.back();
  }

  CuckooMap<K, Object*> index_;
  mutable SpinLock arena_lock_;
  std::deque<Object> arena_ MV3C_GUARDED_BY(arena_lock_);
};

}  // namespace mv3c

#endif  // MV3C_MVCC_TABLE_H_
