#include "mvcc/version_arena.h"

#include <algorithm>
#include <cstring>

namespace mv3c {

using arena_internal::kAllocAlign;
using arena_internal::kSlabBytes;
using arena_internal::kSlabHeaderBytes;
using arena_internal::kSlabPayloadBytes;
using arena_internal::Slab;

namespace {

std::atomic<uint32_t> g_thread_counter{0};

/// Monotonic max for relaxed peak counters.
void UpdatePeak(std::atomic<uint64_t>& peak, uint64_t value) {
  uint64_t cur = peak.load(std::memory_order_relaxed);
  while (cur < value &&
         !peak.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

uint32_t VersionArena::ThreadSlotIndex() {
  // Threads are striped over the slots round-robin at first use; a slot is
  // a bump target plus a spin lock, so two threads sharing a slot is a
  // throughput matter, never a correctness one.
  thread_local const uint32_t idx =
      g_thread_counter.fetch_add(1, std::memory_order_relaxed) % kThreadSlots;
  return idx;
}

VersionArena::~VersionArena() {
  // By construction the arena outlives every table and the GC that allocate
  // from it (it is destroyed with the TransactionManager, after the tables'
  // chains and the GC deques have run their destructors), so every object
  // has been Destroy()ed. Slabs still marked live here indicate a leaked
  // version; release the memory regardless — ASan's leak checker would
  // otherwise double-report every payload inside.
  DrainDeferred();
  std::lock_guard<SpinLock> g(slabs_lock_);
  for (Slab* slab : all_) {
    UnpoisonRange(slab->payload(), slab->capacity);
    slab->~Slab();
    ::operator delete(slab, std::align_val_t(kSlabBytes));
  }
  all_.clear();
  freelist_.clear();
}

Slab* VersionArena::NewSlab(size_t total_bytes, bool oversize) {
  void* mem = ::operator new(total_bytes, std::align_val_t(kSlabBytes));
  Slab* slab = new (mem) Slab();
  slab->owner = this;
  slab->capacity = static_cast<uint32_t>(total_bytes - kSlabHeaderBytes);
  slab->oversize = oversize;
  {
    std::lock_guard<SpinLock> g(slabs_lock_);
    all_.push_back(slab);
  }
  slabs_created_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t held =
      held_bytes_.fetch_add(total_bytes, std::memory_order_relaxed) +
      total_bytes;
  UpdatePeak(peak_held_bytes_, held);
  UpdatePeak(peak_slabs_live_, LiveSlabCount());
  return slab;
}

uint64_t VersionArena::LiveSlabCount() const {
  std::lock_guard<SpinLock> g(slabs_lock_);
  return all_.size();
}

Slab* VersionArena::TakeSlab() {
  {
    std::lock_guard<SpinLock> g(slabs_lock_);
    if (!freelist_.empty()) {
      Slab* slab = freelist_.back();
      freelist_.pop_back();
      return slab;
    }
  }
  return NewSlab(kSlabBytes, /*oversize=*/false);
}

void* VersionArena::AllocateRaw(size_t bytes) {
  const size_t need = (bytes + kAllocAlign - 1) & ~(kAllocAlign - 1);
  if (MV3C_UNLIKELY(need > kSlabPayloadBytes)) return AllocateOversize(need);

  ThreadSlot& slot = slots_[ThreadSlotIndex()];
  std::lock_guard<SpinLock> g(slot.lock);
  Slab* slab = slot.current;
  if (slab == nullptr || slab->bump + need > slab->capacity) {
    if (slab != nullptr) SealSlab(slab);
    slab = TakeSlab();
    slot.current = slab;
  }
  void* p = slab->payload() + slab->bump;
  slab->bump += static_cast<uint32_t>(need);
  // seq_cst pairs with the sealed/live protocol in SealSlab/ReleaseObject:
  // an increment ordered before the seal can never be missed by the
  // retirement check.
  slab->live.fetch_add(1, std::memory_order_seq_cst);
  allocations_.fetch_add(1, std::memory_order_relaxed);
  bytes_bumped_.fetch_add(need, std::memory_order_relaxed);
  return p;
}

void* VersionArena::AllocateOversize(size_t bytes) {
  // One dedicated block per over-large object (none of the current version
  // or record types hits this; rows carried by value could). Born sealed
  // with live == 1, so the matching Destroy retires it directly.
  Slab* slab = NewSlab(kSlabHeaderBytes + bytes, /*oversize=*/true);
  slab->bump = static_cast<uint32_t>(bytes);
  slab->live.store(1, std::memory_order_relaxed);
  slab->sealed.store(true, std::memory_order_seq_cst);
  oversize_allocs_.fetch_add(1, std::memory_order_relaxed);
  allocations_.fetch_add(1, std::memory_order_relaxed);
  bytes_bumped_.fetch_add(bytes, std::memory_order_relaxed);
  return slab->payload();
}

void VersionArena::SealSlab(Slab* slab) {
  // seq_cst on both sides closes the race with ReleaseObject: either the
  // freeing thread sees sealed == true (and retires), or this load sees its
  // decrement (live == 0, and we retire). Both seeing both is resolved by
  // the retire_claimed CAS in RetireSlab.
  slab->sealed.store(true, std::memory_order_seq_cst);
  if (slab->live.load(std::memory_order_seq_cst) == 0) RetireSlab(slab);
}

void VersionArena::ReleaseObject(Slab* slab) {
  VersionArena* owner = slab->owner;
  owner->frees_.fetch_add(1, std::memory_order_relaxed);
  const uint32_t prev = slab->live.fetch_sub(1, std::memory_order_seq_cst);
  // A zero live count here means an object in this slab was destroyed
  // twice; under -DMV3C_SANITIZE=address the poisoned range reports first.
  MV3C_CHECK(prev != 0 && "version arena double free");
  if (prev == 1 && slab->sealed.load(std::memory_order_seq_cst)) {
    RetireSlab(slab);
  }
}

void VersionArena::RetireSlab(Slab* slab) {
  // Seal-time and final-free retirement can race; exactly one proceeds.
  bool expected = false;
  if (!slab->retire_claimed.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return;
  }
  VersionArena* owner = slab->owner;
  owner->slabs_retired_.fetch_add(1, std::memory_order_relaxed);
  if (MV3C_FAILPOINT(failpoint::Site::kGcReclaim)) {
    // Injected lagging collector at slab granularity: park the slab on the
    // deferred list instead of recycling, stressing the drain paths
    // (DrainDeferred, the next retirement, teardown).
    owner->retirements_deferred_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<SpinLock> g(owner->slabs_lock_);
    owner->deferred_.push_back(slab);
    return;
  }
  std::lock_guard<SpinLock> g(owner->slabs_lock_);
  owner->RecycleOrFreeLocked(slab);
  // A retirement doubles as a drain point for previously deferred slabs, so
  // a chaos schedule cannot strand them until teardown.
  while (!owner->deferred_.empty()) {
    Slab* parked = owner->deferred_.back();
    owner->deferred_.pop_back();
    owner->RecycleOrFreeLocked(parked);
  }
}

void VersionArena::RecycleOrFreeLocked(Slab* slab) {
  if (!slab->oversize && freelist_.size() < kMaxFreeSlabs) {
    // Reset to a fresh bump target (the PredicatePool recycling pattern at
    // slab granularity). The payload is unpoisoned wholesale: placement-new
    // would otherwise write into ranges poisoned by earlier Destroys.
    UnpoisonRange(slab->payload(), slab->capacity);
    slab->bump = 0;
    slab->live.store(0, std::memory_order_relaxed);
    slab->sealed.store(false, std::memory_order_relaxed);
    slab->retire_claimed.store(false, std::memory_order_release);
    freelist_.push_back(slab);
    slabs_recycled_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  FreeSlabLocked(slab);
}

void VersionArena::FreeSlabLocked(Slab* slab) {
  all_.erase(std::remove(all_.begin(), all_.end(), slab), all_.end());
  const uint64_t total = kSlabHeaderBytes + static_cast<uint64_t>(slab->capacity);
  held_bytes_.fetch_sub(total, std::memory_order_relaxed);
  slabs_freed_.fetch_add(1, std::memory_order_relaxed);
  UnpoisonRange(slab->payload(), slab->capacity);
  slab->~Slab();
  ::operator delete(slab, std::align_val_t(kSlabBytes));
}

size_t VersionArena::DrainDeferred() {
  std::vector<Slab*> parked;
  {
    std::lock_guard<SpinLock> g(slabs_lock_);
    parked.swap(deferred_);
  }
  for (Slab* slab : parked) {
    std::lock_guard<SpinLock> g(slabs_lock_);
    RecycleOrFreeLocked(slab);
  }
  return parked.size();
}

VersionArena::Stats VersionArena::snapshot() const {
  Stats s;
  s.slabs_created = slabs_created_.load(std::memory_order_relaxed);
  s.peak_slabs_live = peak_slabs_live_.load(std::memory_order_relaxed);
  s.slabs_retired = slabs_retired_.load(std::memory_order_relaxed);
  s.slabs_recycled = slabs_recycled_.load(std::memory_order_relaxed);
  s.slabs_freed = slabs_freed_.load(std::memory_order_relaxed);
  s.retirements_deferred =
      retirements_deferred_.load(std::memory_order_relaxed);
  s.bytes_bumped = bytes_bumped_.load(std::memory_order_relaxed);
  s.allocations = allocations_.load(std::memory_order_relaxed);
  s.frees = frees_.load(std::memory_order_relaxed);
  s.oversize_allocs = oversize_allocs_.load(std::memory_order_relaxed);
  s.held_bytes = held_bytes_.load(std::memory_order_relaxed);
  s.peak_held_bytes = peak_held_bytes_.load(std::memory_order_relaxed);
  std::lock_guard<SpinLock> g(slabs_lock_);
  s.slabs_live = all_.size();
  s.deferred_slabs = deferred_.size();
  s.freelist_slabs = freelist_.size();
  return s;
}

}  // namespace mv3c
