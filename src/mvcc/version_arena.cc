#include "mvcc/version_arena.h"

#include <algorithm>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mv3c {

using arena_internal::kAllocAlign;
using arena_internal::kSlabBytes;
using arena_internal::kSlabHeaderBytes;
using arena_internal::kSlabPayloadBytes;
using arena_internal::Slab;

namespace {

std::atomic<uint32_t> g_thread_counter{0};

/// Monotonic max for relaxed peak counters.
void UpdatePeak(std::atomic<uint64_t>& peak, uint64_t value) {
  uint64_t cur = peak.load(std::memory_order_relaxed);
  while (cur < value &&
         !peak.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

uint32_t VersionArena::ThreadSlotIndex() {
  // Threads are striped over the slots round-robin at first use; a slot is
  // a bump target plus a spin lock, so two threads sharing a slot is a
  // throughput matter, never a correctness one.
  thread_local const uint32_t idx =
      g_thread_counter.fetch_add(1, std::memory_order_relaxed) % kThreadSlots;
  return idx;
}

VersionArena::~VersionArena() {
  // Seal every slot's bump target, dropping its creation reference: an
  // already-drained current slab retires here, and any slab still holding
  // live objects is left with live == exactly its leak count.
  for (ThreadSlot& slot : slots_) {
    SpinLockGuard g(slot.lock);
    if (slot.current != nullptr) {
      SealSlab(slot.current);
      slot.current = nullptr;
    }
  }
  DrainDeferred();
  // Detach the whole owned set under the lock, then leak-check and release
  // outside it: operator delete and stderr diagnostics are blocking calls
  // that must not run inside a spinlock critical section (lock_scope_io,
  // DESIGN §5j). The swap is O(1) and freelisted slabs are a subset of
  // all_, so clearing the freelist here cannot strand memory.
  std::vector<Slab*> owned;
  {
    SpinLockGuard g(slabs_lock_);
    owned.swap(all_);
    freelist_.clear();
  }
  // By construction the arena outlives every table and the GC that allocate
  // from it (it is destroyed with the TransactionManager, after the tables'
  // chains and the GC deques have run their destructors), so every object
  // must have been Destroy()ed by now. An ordering violation — a table or
  // GC deque outliving its manager — would later dereference the freed
  // slab headers released below; fail loudly here instead of as a silent
  // use-after-free: log always, abort in debug builds.
  uint64_t leaked = 0;
  for (Slab* slab : owned) leaked += slab->live.load(std::memory_order_relaxed);
  if (MV3C_UNLIKELY(leaked != 0)) {
    std::fprintf(stderr,
                 "VersionArena: %llu object(s) leaked at arena destruction; "
                 "a table or the GC outlived its TransactionManager?\n",
                 static_cast<unsigned long long>(leaked));
    MV3C_DCHECK(leaked == 0 && "versions leaked past arena destruction");
  }
  // Release the memory regardless — ASan's leak checker would otherwise
  // double-report every payload inside.
  for (Slab* slab : owned) ReleaseSlabMemory(slab);
}

Slab* VersionArena::NewSlab(size_t total_bytes, bool oversize) {
  void* mem = ::operator new(total_bytes, std::align_val_t(kSlabBytes));
  Slab* slab = new (mem) Slab();
  slab->owner = this;
  slab->capacity = static_cast<uint32_t>(total_bytes - kSlabHeaderBytes);
  slab->oversize = oversize;
  {
    SpinLockGuard g(slabs_lock_);
    all_.push_back(slab);
  }
  slabs_created_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t held =
      held_bytes_.fetch_add(total_bytes, std::memory_order_relaxed) +
      total_bytes;
  UpdatePeak(peak_held_bytes_, held);
  UpdatePeak(peak_slabs_live_, LiveSlabCount());
  return slab;
}

uint64_t VersionArena::LiveSlabCount() const {
  SpinLockGuard g(slabs_lock_);
  return all_.size();
}

Slab* VersionArena::TakeSlab() {
  Slab* slab = nullptr;
  {
    SpinLockGuard g(slabs_lock_);
    if (!freelist_.empty()) {
      slab = freelist_.back();
      freelist_.pop_back();
    }
  }
  if (slab == nullptr) slab = NewSlab(kSlabBytes, /*oversize=*/false);
  // Hand-over to the new owner: freelisted slabs keep their retired state
  // (sealed, live == 0, payload poisoned) until this point, so a stale
  // pointer into a recycled slab keeps reporting under ASan for as long as
  // possible, and no retired-state reset can race a retirement — by the
  // time a slab reaches the freelist its unique retirer has already run.
  UnpoisonRange(slab->payload(), slab->capacity);
  slab->bump = 0;
  slab->sealed.store(false, std::memory_order_relaxed);
  // The creation reference: keeps live >= 1 until SealSlab drops it, so no
  // object free can observe the 1->0 transition while the slab is a bump
  // target. Relaxed suffices — every other thread that touches this slab
  // first receives one of its objects through an acquire edge (chain
  // publication) ordered after these stores.
  slab->live.store(1, std::memory_order_relaxed);
  return slab;
}

void* VersionArena::AllocateRaw(size_t bytes) {
  const size_t need = (bytes + kAllocAlign - 1) & ~(kAllocAlign - 1);
  if (MV3C_UNLIKELY(need > kSlabPayloadBytes)) return AllocateOversize(need);

  ThreadSlot& slot = slots_[ThreadSlotIndex()];
  SpinLockGuard g(slot.lock);
  Slab* slab = slot.current;
  if (slab == nullptr || slab->bump + need > slab->capacity) {
    if (slab != nullptr) SealSlab(slab);
    slab = TakeSlab();
    slot.current = slab;
  }
  void* p = slab->payload() + slab->bump;
  slab->bump += static_cast<uint32_t>(need);
  // Relaxed is enough: the creation reference pins live >= 1 for the whole
  // time this slab is a bump target, so this increment can never race the
  // 1->0 retirement transition.
  slab->live.fetch_add(1, std::memory_order_relaxed);
  allocations_.fetch_add(1, std::memory_order_relaxed);
  bytes_bumped_.fetch_add(need, std::memory_order_relaxed);
  return p;
}

void* VersionArena::AllocateOversize(size_t bytes) {
  // One dedicated block per over-large object (none of the current version
  // or record types hits this; rows carried by value could). Born sealed
  // with live == 1 — the object's own reference, the creation reference
  // conceptually already dropped — so the matching Destroy observes 1->0
  // and retires it directly. Relaxed stores are safe: the destroying
  // thread can only reach this slab via the returned pointer, which is
  // ordered after them.
  Slab* slab = NewSlab(kSlabHeaderBytes + bytes, /*oversize=*/true);
  slab->bump = static_cast<uint32_t>(bytes);
  slab->live.store(1, std::memory_order_relaxed);
  slab->sealed.store(true, std::memory_order_relaxed);
  oversize_allocs_.fetch_add(1, std::memory_order_relaxed);
  allocations_.fetch_add(1, std::memory_order_relaxed);
  bytes_bumped_.fetch_add(bytes, std::memory_order_relaxed);
  return slab->payload();
}

void VersionArena::SealSlab(Slab* slab) {
  // The flag is ordered before the creation-reference drop below, so any
  // thread that later observes live == 1 -> 0 (through the fetch_sub RMW
  // chain) also sees sealed == true.
  slab->sealed.store(true, std::memory_order_relaxed);
  // Drop the creation reference through the same fetch_sub path as object
  // frees: live reaches zero exactly once, the unique observer of the
  // 1->0 transition retires, and no second retirer exists that a recycle
  // could race (the REVIEW.md duplicate-retirement hazard).
  const uint32_t prev = slab->live.fetch_sub(1, std::memory_order_acq_rel);
  MV3C_CHECK(prev != 0 && "slab sealed without a creation reference");
  if (prev == 1) RetireSlab(slab);
}

void VersionArena::ReleaseObject(Slab* slab) {
  VersionArena* owner = slab->owner;
  owner->frees_.fetch_add(1, std::memory_order_relaxed);
  // acq_rel: the release half publishes this thread's destructor writes;
  // the acquire half (effective for the 1->0 observer) pulls in every
  // other freeing thread's writes before the slab is recycled.
  const uint32_t prev = slab->live.fetch_sub(1, std::memory_order_acq_rel);
  // A zero live count here means an object in this slab was destroyed
  // twice; under -DMV3C_SANITIZE=address the poisoned range reports first.
  MV3C_CHECK(prev != 0 && "version arena double free");
  if (prev == 1) {
    // live can only reach zero after SealSlab dropped the creation
    // reference (whose sealed store the RMW chain makes visible here); an
    // unsealed slab means a double free consumed that reference.
    MV3C_CHECK(slab->sealed.load(std::memory_order_relaxed) &&
               "free on an active slab dropped its creation reference");
    RetireSlab(slab);
  }
}

void VersionArena::RetireSlab(Slab* slab) {
  // Called exactly once per slab lifetime: only by the unique observer of
  // live's 1->0 transition (see SealSlab/ReleaseObject).
  VersionArena* owner = slab->owner;
  obs::ScopedPhaseTimer timer(owner->metrics_, obs::Phase::kArenaRetire);
  MV3C_TRACE_EVENT(obs::TraceEvent::kArenaRetire,
                   owner->slabs_retired_.load(std::memory_order_relaxed));
  owner->slabs_retired_.fetch_add(1, std::memory_order_relaxed);
  if (MV3C_FAILPOINT(failpoint::Site::kGcReclaim)) {
    // Injected lagging collector at slab granularity: park the slab on the
    // deferred list instead of recycling, stressing the drain paths
    // (DrainDeferred, the next retirement, teardown).
    owner->retirements_deferred_.fetch_add(1, std::memory_order_relaxed);
    SpinLockGuard g(owner->slabs_lock_);
    owner->deferred_.push_back(slab);
    return;
  }
  // Recycle-or-detach runs under the lock; releasing a detached slab's
  // memory waits until the guard closes (lock_scope_io, DESIGN §5j). A
  // retirement still doubles as a drain point for previously deferred
  // slabs — the O(1) swap takes the whole backlog so a chaos schedule
  // cannot strand them until teardown.
  Slab* detached = nullptr;
  std::vector<Slab*> parked;
  {
    SpinLockGuard g(owner->slabs_lock_);
    detached = owner->RecycleOrDetachLocked(slab);
    parked.swap(owner->deferred_);
  }
  if (detached != nullptr) ReleaseSlabMemory(detached);
  for (Slab* p : parked) {
    Slab* freed = nullptr;
    {
      SpinLockGuard g(owner->slabs_lock_);
      freed = owner->RecycleOrDetachLocked(p);
    }
    if (freed != nullptr) ReleaseSlabMemory(freed);
  }
}

arena_internal::Slab* VersionArena::RecycleOrDetachLocked(Slab* slab) {
  if (!slab->oversize && freelist_.size() < kMaxFreeSlabs) {
    // The slab parks in its retired state (sealed, live == 0, payload
    // still poisoned) — deliberately NOT reset here. TakeSlab resets it at
    // hand-over to the next owner, so recycling never rewinds state that a
    // concurrent retirement path could still act on, and stale pointers
    // into the slab keep reporting under ASan while it waits for reuse
    // (the PredicatePool recycling pattern at slab granularity).
    freelist_.push_back(slab);
    slabs_recycled_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  // Unlink and account under the lock; the caller owns the actual release.
  // Once detached the slab is unreachable (retirement is exactly-once and
  // it is off all_/freelist_/deferred_), so freeing it lock-free is safe.
  all_.erase(std::remove(all_.begin(), all_.end(), slab), all_.end());
  const uint64_t total = kSlabHeaderBytes + static_cast<uint64_t>(slab->capacity);
  held_bytes_.fetch_sub(total, std::memory_order_relaxed);
  slabs_freed_.fetch_add(1, std::memory_order_relaxed);
  return slab;
}

void VersionArena::ReleaseSlabMemory(Slab* slab) {
  UnpoisonRange(slab->payload(), slab->capacity);
  slab->~Slab();
  ::operator delete(slab, std::align_val_t(kSlabBytes));
}

size_t VersionArena::DrainDeferred() {
  std::vector<Slab*> parked;
  {
    SpinLockGuard g(slabs_lock_);
    parked.swap(deferred_);
  }
  for (Slab* slab : parked) {
    Slab* detached = nullptr;
    {
      SpinLockGuard g(slabs_lock_);
      detached = RecycleOrDetachLocked(slab);
    }
    if (detached != nullptr) ReleaseSlabMemory(detached);
  }
  return parked.size();
}

VersionArena::Stats VersionArena::snapshot() const {
  Stats s;
  s.slabs_created = slabs_created_.load(std::memory_order_relaxed);
  s.peak_slabs_live = peak_slabs_live_.load(std::memory_order_relaxed);
  s.slabs_retired = slabs_retired_.load(std::memory_order_relaxed);
  s.slabs_recycled = slabs_recycled_.load(std::memory_order_relaxed);
  s.slabs_freed = slabs_freed_.load(std::memory_order_relaxed);
  s.retirements_deferred =
      retirements_deferred_.load(std::memory_order_relaxed);
  s.bytes_bumped = bytes_bumped_.load(std::memory_order_relaxed);
  s.allocations = allocations_.load(std::memory_order_relaxed);
  s.frees = frees_.load(std::memory_order_relaxed);
  s.oversize_allocs = oversize_allocs_.load(std::memory_order_relaxed);
  s.held_bytes = held_bytes_.load(std::memory_order_relaxed);
  s.peak_held_bytes = peak_held_bytes_.load(std::memory_order_relaxed);
  SpinLockGuard g(slabs_lock_);
  s.slabs_live = all_.size();
  s.deferred_slabs = deferred_.size();
  s.freelist_slabs = freelist_.size();
  return s;
}

}  // namespace mv3c
