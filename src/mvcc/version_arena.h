#ifndef MV3C_MVCC_VERSION_ARENA_H_
#define MV3C_MVCC_VERSION_ARENA_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/spinlock.h"
#include "common/thread_safety.h"

// ASan manual poisoning: freed arena ranges are poisoned so a double free
// (second destructor call) or a use-after-reclaim reports immediately under
// -DMV3C_SANITIZE=address, even though the memory is never returned to the
// system allocator until the whole slab recycles.
#if defined(__SANITIZE_ADDRESS__)
#define MV3C_ARENA_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MV3C_ARENA_ASAN 1
#endif
#endif
#if defined(MV3C_ARENA_ASAN)
#include <sanitizer/asan_interface.h>
#endif

namespace mv3c {

namespace obs {
class MetricsRegistry;
}

/// Compile-time switch (-DMV3C_ARENA=ON/OFF): when off, every Create/Destroy
/// below degenerates to plain new/delete — the pre-arena behavior kept
/// compilable for A/B measurement of allocator churn. These are the ONLY
/// raw new/delete expressions for versions and committed records in the
/// codebase (grep-enforced in CI).
#if defined(MV3C_ARENA_ENABLED)
inline constexpr bool kVersionArenaEnabled = true;
#else
inline constexpr bool kVersionArenaEnabled = false;
#endif

class VersionArena;

namespace arena_internal {

/// Slab geometry. Slabs are allocated aligned to their own size so that any
/// interior pointer recovers its slab header with one mask (Slab::Of) —
/// freeing needs neither a size nor an arena reference at the call site.
inline constexpr size_t kSlabBytes = 64 * 1024;
inline constexpr size_t kSlabHeaderBytes = 64;
inline constexpr size_t kAllocAlign = 16;
inline constexpr size_t kSlabPayloadBytes = kSlabBytes - kSlabHeaderBytes;

/// Slab header; the bump region follows at kSlabHeaderBytes.
///
/// Lifecycle: active (some thread's bump target) -> sealed (full; no new
/// allocations) -> retired (sealed and every object in it freed) ->
/// recycled onto the owner's bounded freelist, or released to the system.
/// `bump` is guarded by the owning thread-slot lock; `live`/`sealed` are
/// touched concurrently by whoever frees (GC, commit section, teardown).
///
/// `live` is a reference count, not a bare object count: while the slab is
/// a bump target it additionally holds one *creation reference* (taken in
/// TakeSlab, dropped by SealSlab through the same fetch_sub as object
/// frees). live therefore cannot reach zero before the seal, exactly one
/// thread ever observes the 1->0 transition, and retirement is
/// exactly-once by construction — no claim flag whose reset could race a
/// delayed retirer against recycling.
struct alignas(kSlabHeaderBytes) Slab {
  VersionArena* owner = nullptr;
  uint32_t capacity = 0;  // usable payload bytes
  uint32_t bump = 0;      // next free payload offset (slot-lock guarded)
  bool oversize = false;  // dedicated block for one over-large object
  std::atomic<uint32_t> live{0};    // creation reference + live objects
  std::atomic<bool> sealed{false};  // no longer a bump target

  uint8_t* payload() {
    return reinterpret_cast<uint8_t*>(this) + kSlabHeaderBytes;
  }

  static Slab* Of(const void* p) {
    return reinterpret_cast<Slab*>(reinterpret_cast<uintptr_t>(p) &
                                   ~static_cast<uintptr_t>(kSlabBytes - 1));
  }
};
static_assert(sizeof(Slab) <= kSlabHeaderBytes,
              "slab header must fit in the reserved prefix");

}  // namespace arena_internal

/// Unified version-memory lifecycle (ISSUE 2 tentpole): a per-thread slab
/// arena with epoch-based reclamation for `Version<Row>` and
/// `CommittedRecord` objects, replacing the ad-hoc raw new/delete that used
/// to live in the write primitives, the GC, and the table teardown.
///
/// * Allocation is a thread-local bump: each thread maps to one of
///   kThreadSlots cache-line-isolated slots holding its current slab;
///   allocating is an offset bump plus one relaxed counter increment.
/// * Freeing never touches the system allocator: the object's destructor
///   runs (payloads may own memory) and the slab's live count drops. The
///   epoch contract is unchanged from the pre-arena GC: linked-then-unlinked
///   versions are freed only after the oldest-active-start-timestamp
///   watermark passes their retirement era, so no reader can stand on a
///   destroyed version; never-linked versions (fail-fast push conflicts)
///   free immediately because no other transaction ever observed them.
/// * Memory reclamation happens at slab granularity: once a slab is sealed
///   (full) and its live count hits zero it is retired, then recycled into
///   a bounded freelist (mirroring PredicatePool's recycling) or released.
///   The `gc-reclaim` failpoint covers slab retirement: a firing parks the
///   slab on a deferred list (a lagging collector), drained by the next
///   retirement, DrainDeferred(), or the arena destructor.
///
/// With -DMV3C_ARENA=OFF the class still compiles but Create/Destroy are
/// plain new/delete and every counter stays zero.
class VersionArena {
 public:
  /// Bound on recycled slabs kept for reuse (4 MiB at 64 KiB slabs);
  /// beyond it, retired slabs go back to the system allocator.
  static constexpr size_t kMaxFreeSlabs = 64;
  static constexpr size_t kThreadSlots = 64;

  /// Counter snapshot for benchmarks and tests. `bytes_bumped` is the
  /// cumulative bump-allocated payload; `held_bytes`/`peak_held_bytes`
  /// approximate the arena's RSS contribution (slab memory currently /
  /// maximally held, including freelisted slabs).
  struct Stats {
    uint64_t slabs_created = 0;
    uint64_t slabs_live = 0;       // currently held (incl. freelist)
    uint64_t peak_slabs_live = 0;
    uint64_t slabs_retired = 0;    // sealed-and-drained transitions
    uint64_t slabs_recycled = 0;   // retired slabs reset onto the freelist
    uint64_t slabs_freed = 0;      // retired slabs released to the system
    uint64_t retirements_deferred = 0;  // gc-reclaim failpoint firings
    uint64_t deferred_slabs = 0;   // currently parked awaiting drain
    uint64_t freelist_slabs = 0;   // currently recycled and ready
    uint64_t bytes_bumped = 0;
    uint64_t allocations = 0;
    uint64_t frees = 0;
    uint64_t oversize_allocs = 0;
    uint64_t held_bytes = 0;
    uint64_t peak_held_bytes = 0;
  };

  VersionArena() = default;
  VersionArena(const VersionArena&) = delete;
  VersionArena& operator=(const VersionArena&) = delete;
  ~VersionArena();

  /// Bump-allocates and constructs a T. All versions and committed records
  /// MUST come from here (or CreateSibling) so that Destroy's slab lookup
  /// is valid for every such pointer in the system.
  template <typename T, typename... Args>
  T* Create(Args&&... args) {
    if constexpr (kVersionArenaEnabled) {
      return new (AllocateRaw(sizeof(T))) T(std::forward<Args>(args)...);
    } else {
      return new T(std::forward<Args>(args)...);
    }
  }

  /// Destroys an arena-created object: runs the destructor (virtual
  /// dispatch frees typed payloads through base pointers), poisons the
  /// full allocation under ASan, and drops the slab's live count — retiring
  /// the slab when it was the last object. Safe to call from any thread;
  /// the epoch watermark is the caller's contract (see class comment).
  ///
  /// Types destroyed through a base pointer must expose the most-derived
  /// extent via `size_t AllocSize() const` (see VersionBase::AllocSize):
  /// sizeof(T) would cover only the base subobject, leaving the row payload
  /// unpoisoned and use-after-reclaim on it invisible to ASan.
  template <typename T>
  static void Destroy(T* p) {
    if (p == nullptr) return;
    if constexpr (kVersionArenaEnabled) {
      arena_internal::Slab* slab = arena_internal::Slab::Of(p);
#if defined(MV3C_ARENA_ASAN)
      const size_t extent = ExtentOf(*p);  // virtual; before the dtor runs
      p->~T();
      PoisonRange(p, extent);
#else
      p->~T();
#endif
      ReleaseObject(slab);
    } else {
      delete p;
    }
  }

  /// Allocates a T from the same arena as `sibling` (which must itself be
  /// arena-created). This is how Version::Clone() — called deep inside the
  /// commit critical section with no transaction context — reaches the
  /// right arena without threading a reference through every chain
  /// operation.
  template <typename T, typename... Args>
  static T* CreateSibling(const void* sibling, Args&&... args) {
    if constexpr (kVersionArenaEnabled) {
      VersionArena* owner = arena_internal::Slab::Of(sibling)->owner;
      return owner->Create<T>(std::forward<Args>(args)...);
    } else {
      (void)sibling;
      return new T(std::forward<Args>(args)...);
    }
  }

  /// Recycles slabs whose retirement was deferred by the `gc-reclaim`
  /// failpoint. Called by TransactionManager::CollectGarbage so the chaos
  /// suite's "backlog drains once injection stops" invariant covers slab
  /// retirement too. Returns the number of slabs drained.
  size_t DrainDeferred() MV3C_EXCLUDES(slabs_lock_);

  Stats snapshot() const MV3C_EXCLUDES(slabs_lock_);

  /// Optional registry for the kArenaRetire phase histogram (set by the
  /// owning TransactionManager; null is fine — timers tolerate it). The
  /// registry must outlive the arena.
  void set_metrics(obs::MetricsRegistry* m) { metrics_ = m; }

 private:
  struct alignas(MV3C_CACHELINE_SIZE) ThreadSlot {
    SpinLock lock;
    /// The slot's bump target. The lock also covers `current->bump`: a
    /// slab's bump offset is written only by the slot that owns the slab
    /// as its current target (Slab::bump cannot carry a MV3C_GUARDED_BY —
    /// which slot lock guards it is a runtime property).
    arena_internal::Slab* current MV3C_GUARDED_BY(lock) = nullptr;
  };

  /// Allocated extent of an object: the most-derived size when the type
  /// reports it (polymorphic types reached through base pointers), its
  /// static size otherwise (concrete types like CommittedRecord).
  template <typename T>
  static size_t ExtentOf(const T& obj) {
    if constexpr (requires { obj.AllocSize(); }) {
      return obj.AllocSize();
    } else {
      return sizeof(T);
    }
  }

  static void PoisonRange(void* p, size_t n) {
#if defined(MV3C_ARENA_ASAN)
    __asan_poison_memory_region(p, n);
#else
    (void)p;
    (void)n;
#endif
  }
  static void UnpoisonRange(void* p, size_t n) {
#if defined(MV3C_ARENA_ASAN)
    __asan_unpoison_memory_region(p, n);
#else
    (void)p;
    (void)n;
#endif
  }

  static uint32_t ThreadSlotIndex();

  void* AllocateRaw(size_t bytes) MV3C_EXCLUDES(slabs_lock_);
  void* AllocateOversize(size_t bytes) MV3C_EXCLUDES(slabs_lock_);
  static void ReleaseObject(arena_internal::Slab* slab);
  uint64_t LiveSlabCount() const MV3C_EXCLUDES(slabs_lock_);

  void SealSlab(arena_internal::Slab* slab);
  static void RetireSlab(arena_internal::Slab* slab);
  /// Parks the slab on the freelist (returns nullptr) or unlinks it from
  /// the owned set and returns it for the caller to release *after* the
  /// lock is dropped — operator delete can take a libc lock or a syscall
  /// and must never run inside the spinlock's critical section (the
  /// lock_scope_io rule, DESIGN §5j).
  [[nodiscard]] arena_internal::Slab* RecycleOrDetachLocked(
      arena_internal::Slab* slab) MV3C_REQUIRES(slabs_lock_);
  static void ReleaseSlabMemory(arena_internal::Slab* slab);
  arena_internal::Slab* TakeSlab() MV3C_EXCLUDES(slabs_lock_);
  arena_internal::Slab* NewSlab(size_t total_bytes, bool oversize)
      MV3C_EXCLUDES(slabs_lock_);

  ThreadSlot slots_[kThreadSlots];
  /// Set once by the owning TransactionManager during single-threaded setup
  /// (set_metrics), read-only afterwards; a GUARDED_BY would force a lock
  /// acquisition onto every allocation-path phase timer.
  // mv3c-lint: allow(guarded_by_coverage)
  obs::MetricsRegistry* metrics_ = nullptr;

  mutable SpinLock slabs_lock_;
  std::vector<arena_internal::Slab*> freelist_ MV3C_GUARDED_BY(slabs_lock_);
  std::vector<arena_internal::Slab*> all_ MV3C_GUARDED_BY(slabs_lock_);
  std::vector<arena_internal::Slab*> deferred_ MV3C_GUARDED_BY(slabs_lock_);

  std::atomic<uint64_t> slabs_created_{0};
  std::atomic<uint64_t> peak_slabs_live_{0};
  std::atomic<uint64_t> slabs_retired_{0};
  std::atomic<uint64_t> slabs_recycled_{0};
  std::atomic<uint64_t> slabs_freed_{0};
  std::atomic<uint64_t> retirements_deferred_{0};
  std::atomic<uint64_t> bytes_bumped_{0};
  std::atomic<uint64_t> allocations_{0};
  std::atomic<uint64_t> frees_{0};
  std::atomic<uint64_t> oversize_allocs_{0};
  std::atomic<uint64_t> held_bytes_{0};
  std::atomic<uint64_t> peak_held_bytes_{0};
};

}  // namespace mv3c

#endif  // MV3C_MVCC_VERSION_ARENA_H_
