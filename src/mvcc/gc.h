#ifndef MV3C_MVCC_GC_H_
#define MV3C_MVCC_GC_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/failpoint.h"
#include "common/spinlock.h"
#include "common/thread_safety.h"
#include "mvcc/timestamp.h"
#include "mvcc/version.h"
#include "mvcc/version_arena.h"
#include "obs/trace.h"

namespace mv3c {

/// A committed transaction's entry in the recently-committed list: its
/// commit timestamp plus its committed versions (Definition 2.2 — only the
/// newest version per object survives commit). The undo buffers of the
/// recently committed transactions are what validation matches predicates
/// against (paper §2.1/§2.4).
struct CommittedRecord {
  Timestamp commit_ts = 0;
  std::vector<VersionBase*> versions;
  std::atomic<CommittedRecord*> next{nullptr};
};

/// Grace-period garbage collector for versions and recently-committed
/// records.
///
/// Readers traverse version chains and the RC list without locks, so
/// unlinked nodes cannot be freed immediately. Every retired node carries
/// the manager's CurrentEra() at retirement — `commit high-water mark + 1`
/// since the §5h timestamp refactor. Start timestamps are drawn from the
/// same mark (start = hwm + 1), so any transaction that could have
/// observed the node has a start timestamp <= era (a later beginner's
/// start exceeding the era implies it read a hwm published after the
/// unlink, hence cannot reach the node — see TrimRecentlyCommitted). A
/// node is therefore safe to free once every registered start strictly
/// exceeds its era (paper §5: versions are reclaimed once no older active
/// transaction can read them); the manager's AcquireReclaimCuts computes
/// that bound.
class GarbageCollector {
 public:
  GarbageCollector() = default;
  GarbageCollector(const GarbageCollector&) = delete;
  GarbageCollector& operator=(const GarbageCollector&) = delete;
  ~GarbageCollector() { CollectAll(); }

  void RetireVersion(VersionBase* v, Timestamp era) MV3C_EXCLUDES(lock_) {
    SpinLockGuard g(lock_);
    versions_.push_back({era, v});
  }

  void RetireRecord(CommittedRecord* r, Timestamp era) MV3C_EXCLUDES(lock_) {
    SpinLockGuard g(lock_);
    records_.push_back({era, r});
  }

  /// Frees retired nodes whose era is strictly below `safe_before` (the
  /// oldest active start timestamp). Returns the number of nodes freed.
  size_t Collect(Timestamp safe_before) {
    if (MV3C_FAILPOINT(failpoint::Site::kGcReclaim)) {
      // Injected lagging collector: skip this reclamation round so retired
      // nodes pile up, stressing the grace-period safety of every reader
      // standing on an unlinked version.
      return 0;
    }
    const size_t freed = CollectImpl(safe_before);
    MV3C_TRACE_EVENT(obs::TraceEvent::kGc, freed);
    return freed;
  }

  /// Frees everything unconditionally; only valid when no transaction is
  /// active (shutdown, tests). Bypasses the kGcReclaim failpoint: teardown
  /// must reclaim even while a chaos schedule is armed.
  size_t CollectAll() { return CollectImpl(kDeadVersion); }

  /// Number of nodes awaiting reclamation; test/metrics helper.
  size_t PendingCount() const MV3C_EXCLUDES(lock_) {
    SpinLockGuard g(lock_);
    return versions_.size() + records_.size();
  }

 private:
  size_t CollectImpl(Timestamp safe_before) MV3C_EXCLUDES(lock_) {
    SpinLockGuard g(lock_);
    size_t freed = 0;
    while (!versions_.empty() && versions_.front().era < safe_before) {
      // Destructor now, slab memory when the whole slab drains: freeing a
      // version below the watermark only decrements its slab's live count;
      // the arena reclaims memory at slab granularity (DESIGN §5c).
      VersionArena::Destroy(versions_.front().version);
      versions_.pop_front();
      ++freed;
    }
    while (!records_.empty() && records_.front().era < safe_before) {
      VersionArena::Destroy(records_.front().record);
      records_.pop_front();
      ++freed;
    }
    return freed;
  }

  struct RetiredVersion {
    Timestamp era;
    VersionBase* version;
  };
  struct RetiredRecord {
    Timestamp era;
    CommittedRecord* record;
  };

  mutable SpinLock lock_;
  std::deque<RetiredVersion> versions_ MV3C_GUARDED_BY(lock_);
  std::deque<RetiredRecord> records_ MV3C_GUARDED_BY(lock_);
};

}  // namespace mv3c

#endif  // MV3C_MVCC_GC_H_
