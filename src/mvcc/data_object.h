#ifndef MV3C_MVCC_DATA_OBJECT_H_
#define MV3C_MVCC_DATA_OBJECT_H_

#include <atomic>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/spinlock.h"
#include "common/thread_safety.h"
#include "mvcc/timestamp.h"
#include "mvcc/version.h"
#include "mvcc/version_arena.h"

namespace mv3c {

/// Write-write conflict policy (paper §2.3.1).
enum class WwPolicy {
  /// Abort and restart a transaction as soon as it tries to write an object
  /// that has a foreign uncommitted version or a committed version newer
  /// than the writer's start timestamp (OMVCC behavior; always used for
  /// inserts and deletes).
  kFailFast,
  /// Let multiple uncommitted versions coexist in the chain; read-write
  /// conflicts are still caught by validation, and blind writes commit
  /// without conflict (§2.4.1).
  kAllowMultiple,
};

/// One row's identity plus its version chain (paper §2.2).
///
/// The chain head is an atomic pointer; readers traverse the chain without
/// locks (finding the visible version is wait-free, §5), while all chain
/// surgery (push, unlink, the §2.4.1 commit "move") happens under a per-
/// object spin lock. Unlinked versions keep their `next` pointer intact and
/// are marked dead, so a concurrent reader standing on one continues its
/// traversal safely; the garbage collector frees them after a grace period.
class DataObjectBase {
 public:
  DataObjectBase() = default;
  DataObjectBase(const DataObjectBase&) = delete;
  DataObjectBase& operator=(const DataObjectBase&) = delete;

  /// Frees the versions still linked in the chain, returning each to its
  /// arena. Retired (unlinked) versions are owned by the garbage collector
  /// instead, so there is no double free. Only runs at table teardown, when
  /// no transaction is live; the arena (owned by the TransactionManager)
  /// outlives every table.
  virtual ~DataObjectBase() {
    VersionBase* v = head_.load(std::memory_order_relaxed);
    while (v != nullptr) {
      VersionBase* next = v->next();
      VersionArena::Destroy(v);
      v = next;
    }
  }

  VersionBase* head() const { return head_.load(std::memory_order_acquire); }

  /// Finds the version visible to a transaction with the given start
  /// timestamp and transaction id (paper Definition 2.3): the transaction's
  /// own newest version, or the newest version committed before `start_ts`.
  /// Returns nullptr if the object has no visible version.
  VersionBase* FindVisible(Timestamp start_ts, Timestamp txn_id) const {
    for (VersionBase* v = head(); v != nullptr; v = v->next()) {
      const Timestamp t = v->ts();
      if (t == kDeadVersion) continue;
      if (t == txn_id) return v;               // own write, newest first
      if (IsCommitTs(t) && t < start_ts) return v;
      // Foreign uncommitted version or committed after start: skip.
    }
    return nullptr;
  }

  /// Result of attempting to add a version to the chain.
  enum class PushResult { kOk, kWwConflict };

  /// Links `v` at the head of the chain, subject to the write-write policy.
  /// `start_ts`/`txn_id` identify the writer. On kWwConflict the chain is
  /// unchanged and the caller owns `v` again.
  ///
  /// Fail-fast detection is attribute-aware (§4.1 extended to write-write
  /// conflicts): a foreign uncommitted or newer-committed version only
  /// conflicts if its modified columns intersect the new version's —
  /// writers of disjoint columns compose at commit (merge-on-commit) and
  /// any read-dependency is still caught by predicate validation. Inserts
  /// and deletes carry a full mask, so key-level operations always
  /// conflict, preserving §2.3.1's fail-fast rule for them.
  PushResult Push(VersionBase* v, WwPolicy policy, Timestamp start_ts,
                  Timestamp txn_id) MV3C_EXCLUDES(chain_lock_) {
    if (MV3C_FAILPOINT(failpoint::Site::kVersionChainPush)) {
      // Injected spurious contention failure: indistinguishable from a
      // genuine write-write conflict, so the caller's rollback-and-restart
      // path handles it and serializability is unaffected.
      return PushResult::kWwConflict;
    }
    SpinLockGuard g(chain_lock_);
    if (policy == WwPolicy::kFailFast) {
      for (VersionBase* cur = head(); cur != nullptr; cur = cur->next()) {
        const Timestamp t = cur->ts();
        if (t == kDeadVersion) continue;
        if (t == txn_id) break;  // our own version; anything below is older
        if (IsTxnId(t)) {
          if (cur->modified_columns().Intersects(v->modified_columns())) {
            return PushResult::kWwConflict;
          }
          continue;  // disjoint-column foreign write; keep scanning
        }
        // Committed version: conflict if it is newer than our start AND
        // touches columns we are writing.
        if (t >= start_ts &&
            cur->modified_columns().Intersects(v->modified_columns())) {
          return PushResult::kWwConflict;
        }
        if (t < start_ts) break;  // older commits cannot conflict
      }
    }
    v->set_next(head());
    head_.store(v, std::memory_order_release);
    approx_chain_len_.fetch_add(1, std::memory_order_relaxed);
    return PushResult::kOk;
  }

  /// Approximate number of versions linked since the last truncation; used
  /// to trigger inline garbage collection of hot chains.
  uint32_t ApproxChainLength() const {
    return approx_chain_len_.load(std::memory_order_relaxed);
  }

  /// Unlinks `v` from the chain and marks it dead (rollback or repair
  /// pruning). `v`'s own next pointer is left intact for concurrent
  /// readers. The caller is responsible for retiring `v` to the garbage
  /// collector.
  void Unlink(VersionBase* v) MV3C_EXCLUDES(chain_lock_) {
    SpinLockGuard g(chain_lock_);
    UnlinkLocked(v);
  }

  /// Publishes `v` as committed with timestamp `commit_ts`, restoring the
  /// chain invariant that committed versions are ordered by commit
  /// timestamp below all uncommitted ones (§2.4.1). If foreign uncommitted
  /// versions were pushed above `v` after `v` (possible only under
  /// kAllowMultiple), `v` is marked dead and a clone of it is spliced in at
  /// the committed boundary instead, mirroring the paper's "mark deleted
  /// and insert a duplicate" move. Returns the version that now carries the
  /// committed payload (`v` itself or the clone); when a clone was used the
  /// caller must retire `v`.
  VersionBase* CommitVersion(VersionBase* v, Timestamp commit_ts)
      MV3C_EXCLUDES(chain_lock_) {
    SpinLockGuard g(chain_lock_);
    // A move is needed iff a live committed version sits above v: our
    // commit timestamp is the newest, so our version must become the head
    // of the committed suffix. Foreign uncommitted versions above v are
    // fine in place (uncommitted versions precede committed ones).
    bool needs_move = false;
    {
      VersionBase* cur = head();
      while (cur != nullptr && cur != v) {
        if (!cur->dead() && IsCommitTs(cur->ts())) {
          needs_move = true;
          break;
        }
        cur = cur->next();
      }
      MV3C_CHECK(needs_move || cur == v);
    }
    if (!needs_move) {
      v->set_ts(commit_ts);
      return v;
    }
    // Mirror the paper's §2.4.1 move: mark v deleted and splice a duplicate
    // in directly above the first live committed version (the committed-
    // suffix boundary), below any foreign uncommitted versions.
    VersionBase* dup = v->Clone();
    VersionBase* prev = nullptr;
    VersionBase* cur = head();
    while (cur != nullptr && (cur->dead() || !IsCommitTs(cur->ts()))) {
      prev = cur;
      cur = cur->next();
    }
    dup->set_next(cur);
    dup->set_ts(commit_ts);
    if (prev == nullptr) {
      head_.store(dup, std::memory_order_release);
    } else {
      prev->set_next(dup);
    }
    approx_chain_len_.fetch_add(1, std::memory_order_relaxed);
    UnlinkLocked(v);
    return dup;
  }

  /// Truncates committed versions that can no longer be seen by any active
  /// transaction: keeps the newest committed version with ts < `watermark`
  /// (it is still the visible version for transactions at the watermark)
  /// and unlinks everything older. Invokes `retire(version)` for each cut
  /// version. Returns the number of versions cut.
  template <typename RetireFn>
  size_t TruncateOlderThan(Timestamp watermark, RetireFn&& retire)
      MV3C_EXCLUDES(chain_lock_) {
    SpinLockGuard g(chain_lock_);
    // Find the newest committed version with ts < watermark: it is still
    // the visible version for the oldest active reader; everything
    // committed below it is unreachable. Uncommitted versions below it can
    // exist (pushed under kAllowMultiple before a later writer committed
    // in place above them) and must be preserved — their owners are live.
    VersionBase* keep = nullptr;
    for (VersionBase* v = head(); v != nullptr; v = v->next()) {
      const Timestamp t = v->ts();
      if (IsCommitTs(t) && t < watermark) {
        keep = v;
        break;
      }
    }
    if (keep == nullptr) return 0;
    size_t cut = 0;
    VersionBase* prev = keep;
    VersionBase* cur = keep->next();
    while (cur != nullptr) {
      VersionBase* next = cur->next();
      const Timestamp t = cur->ts();
      if (IsTxnId(t)) {
        prev = cur;  // live uncommitted version: keep it linked
      } else {
        prev->set_next(next);
        if (!cur->dead()) cur->MarkDead();
        retire(cur);
        ++cut;
      }
      cur = next;
    }
    if (cut > 0) {
      approx_chain_len_.fetch_sub(
          static_cast<uint32_t>(cut), std::memory_order_relaxed);
    }
    return cut;
  }

  /// Newest live committed version in the chain, or nullptr. Used as the
  /// merge base for partial-column commits; only meaningful inside the
  /// commit critical section (the result is otherwise immediately stale).
  VersionBase* LatestCommitted() const {
    for (VersionBase* v = head(); v != nullptr; v = v->next()) {
      if (IsCommitTs(v->ts())) return v;
    }
    return nullptr;
  }

  /// Number of live (non-dead) versions in the chain; test helper.
  size_t ChainLength() const {
    size_t n = 0;
    for (VersionBase* v = head(); v != nullptr; v = v->next()) {
      if (!v->dead()) ++n;
    }
    return n;
  }

 private:
  void UnlinkLocked(VersionBase* v) MV3C_REQUIRES(chain_lock_) {
    VersionBase* prev = nullptr;
    VersionBase* cur = head();
    while (cur != nullptr && cur != v) {
      prev = cur;
      cur = cur->next();
    }
    MV3C_CHECK(cur == v);
    if (prev == nullptr) {
      head_.store(v->next(), std::memory_order_release);
    } else {
      prev->set_next(v->next());
    }
    v->MarkDead();
  }

  /// head_ stays an atomic, not MV3C_GUARDED_BY(chain_lock_): readers
  /// traverse the chain lock-free (finding the visible version is
  /// wait-free, §5); only chain *surgery* — every store to head_ and to
  /// version next pointers — runs under chain_lock_. The REQUIRES on
  /// UnlinkLocked and the EXCLUDES on the surgery entry points are the
  /// statically-checkable half of that protocol.
  std::atomic<VersionBase*> head_{nullptr};
  SpinLock chain_lock_;
  std::atomic<uint32_t> approx_chain_len_{0};
};

/// Typed data object: key plus version chain.
template <typename K, typename Row>
class DataObject : public DataObjectBase {
 public:
  explicit DataObject(const K& key) : key_(key) {}

  const K& key() const { return key_; }

  /// Typed visible read; returns nullptr if no visible version or the
  /// visible version is a tombstone (row deleted).
  const Version<Row>* ReadVisible(Timestamp start_ts, Timestamp txn_id) const {
    const VersionBase* v = FindVisible(start_ts, txn_id);
    if (v == nullptr || v->tombstone()) return nullptr;
    return static_cast<const Version<Row>*>(v);
  }

 private:
  const K key_;
};

}  // namespace mv3c

#endif  // MV3C_MVCC_DATA_OBJECT_H_
