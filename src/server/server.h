#ifndef MV3C_SERVER_SERVER_H_
#define MV3C_SERVER_SERVER_H_

// The mv3c_serve network front-end (DESIGN §5k). One epoll I/O thread
// owns every connection: it parses CRC-framed binary requests (protocol.h),
// applies admission control (admission.h), and routes worker-produced
// responses back; a pool of worker threads pops admitted requests in
// small batches and drives them through the engine via a WorkloadHost.
// The same port speaks HTTP for observability — the first bytes of a
// connection are sniffed (binary frames open with the "MV3S" magic; no
// HTTP method starts with those bytes), and HTTP connections serve
// GET /metrics (Prometheus text exposition) and GET /healthz.
//
// Threading model:
//   * I/O thread: all sockets, all Conn state, the per-connection token
//     buckets. Nothing else touches them — no locks on the request path.
//   * Workers: pop from the AdmissionQueue (one mutex, batched), run
//     transactions, push {conn_id, ResponseHeader} onto the pending list
//     (second mutex) and wake the I/O thread through an eventfd.
//   * Scrapes: /metrics reads ServerStats atomics and the workers'
//     published engine snapshots — never the executors' live counters.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/engine_stats.h"
#include "obs/metrics.h"
#include "server/admission.h"
#include "server/workload_host.h"

namespace mv3c::server {

struct ServerOptions {
  std::string bind_addr = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; the bound port is printed/queried
  /// Admission queue depth — the overload bound. Everything past it sheds.
  size_t queue_depth = 1024;
  /// Max requests a worker pops per queue mutex acquisition.
  size_t batch = 16;
  /// Per-connection token bucket; 0 disables rate limiting.
  double client_rate = 0;
  double client_burst = 64;
  /// A client whose unread responses exceed this closes (slow reader).
  size_t max_out_buffer = 1 << 20;
  HostOptions host;
};

class Server {
 public:
  explicit Server(ServerOptions opts);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Loads the workload, binds, listens, and spawns the I/O and worker
  /// threads. Returns false (with a message on stderr) on any failure.
  bool Start();

  /// Drains admitted requests, flushes what can be flushed, closes every
  /// connection, and joins all threads. Idempotent.
  void Stop();

  uint16_t port() const { return port_; }
  const ServerStats& stats() const { return stats_; }
  size_t queue_peak_depth() const { return queue_->peak_depth(); }
  WorkloadHost* host() { return host_.get(); }

  /// The /metrics payload; public so tests can assert on the exposition
  /// without a socket.
  std::string MetricsText() const;

 private:
  struct Conn;
  struct PendingResponse {
    uint64_t conn_id;
    ResponseHeader rh;
  };

  void IoLoop();
  void WorkerLoop(size_t worker_id);
  void AcceptNew();
  void HandleReadable(Conn* c);
  void HandleBinary(Conn* c, const uint8_t* data, size_t n);
  void HandleHttp(Conn* c);
  void OnFrame(Conn* c, const uint8_t* payload, uint32_t n);
  void RespondNow(Conn* c, uint64_t request_id, TxnStatus status,
                  uint32_t retry_after_us);
  void FlushOut(Conn* c);
  void CloseConn(Conn* c);
  void DrainPendingResponses();
  void PushResponses(std::vector<PendingResponse>&& batch);
  Conn* FindConn(uint64_t conn_id);
  void UpdateEpollOut(Conn* c, bool want_out);

  ServerOptions opts_;
  std::unique_ptr<WorkloadHost> host_;
  std::unique_ptr<AdmissionQueue> queue_;
  ServiceTimeEstimate svc_est_;
  ServerStats stats_;
  obs::MetricsRegistry registry_;  // views onto stats_ (atomics)

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: worker->I/O wakeups and Stop()
  uint16_t port_ = 0;

  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::thread io_thread_;
  std::vector<std::thread> workers_;

  std::mutex pending_mu_;
  std::vector<PendingResponse> pending_;  // guarded by pending_mu_

  // I/O-thread-only state (no locks): fd -> Conn and conn_id -> Conn.
  struct ConnTable;
  std::unique_ptr<ConnTable> conns_;
};

}  // namespace mv3c::server

#endif  // MV3C_SERVER_SERVER_H_
