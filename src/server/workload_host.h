#ifndef MV3C_SERVER_WORKLOAD_HOST_H_
#define MV3C_SERVER_WORKLOAD_HOST_H_

// The bridge between the wire protocol and the engines (DESIGN §5k): a
// WorkloadHost owns one database (banking / trading / tatp / tpcc), its
// TransactionManager, and one executor per worker thread, and turns an
// opcode + raw parameter bytes into a driven transaction. The server
// core stays workload- and engine-agnostic: it validates framing, sheds
// load, and routes responses; everything transactional lives behind this
// interface.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "server/protocol.h"

namespace mv3c::server {

struct HostOptions {
  std::string workload = "banking";  // banking | trading | tatp | tpcc
  std::string engine = "mv3c";       // mv3c | omvcc
  size_t workers = 4;
  /// Workload population knob: accounts (banking), subscribers (tatp),
  /// securities/customers (trading), warehouses (tpcc).
  uint64_t scale = 0;  // 0 = per-workload default
  /// Driver-level starvation backstop, as in ThreadDriver::Run.
  uint32_t round_cap = 64;
  /// Deterministic per-request busy-wait inside the worker, before the
  /// transaction runs. 0 in production; overload tests use it to pin the
  /// service rate so "4x capacity" is a number, not a race.
  uint32_t service_delay_us = 0;
  /// Durability: when true the manager runs with a WAL and committed
  /// responses carry kRespFlagDurable semantics per `sync_ack`.
  bool wal = false;
  bool sync_ack = false;  // kSync (true) vs kAsync group-commit ack
  std::string wal_dir;
  uint32_t wal_partitions = 1;
};

class WorkloadHost {
 public:
  struct Result {
    TxnStatus status = TxnStatus::kBadRequest;
    uint64_t commit_ts = 0;
    uint32_t rounds = 0;
  };

  virtual ~WorkloadHost() = default;

  virtual const char* workload() const = 0;
  virtual const char* engine() const = 0;
  virtual size_t workers() const = 0;
  virtual bool sync_ack() const = 0;

  /// Cheap opcode/size validation for the I/O thread: a request whose
  /// opcode or parameter size does not match this host is rejected as
  /// kBadRequest before it costs a queue slot.
  virtual bool Accepts(uint16_t opcode, size_t param_bytes) const = 0;

  /// Runs one transaction to completion on worker `worker_id`'s executor.
  /// Single-threaded per worker_id; different worker_ids run concurrently.
  virtual Result Run(size_t worker_id, uint16_t opcode, const uint8_t* params,
                     size_t param_bytes) = 0;

  /// Engine maintenance (GC); the server calls it from worker 0 on the
  /// ThreadDriver cadence (~1024 completions).
  virtual void Maintenance() = 0;

  /// Folds worker `worker_id`'s executor registry into its published
  /// snapshot. MUST be called from that worker's own thread (the registry
  /// counters are the executor's plain fields); the server calls it after
  /// each drained batch so a scrape lags by at most one in-flight batch.
  virtual void FlushWorkerMetrics(size_t worker_id) = 0;

  /// Merged engine metrics for /metrics. Snapshots are *published* by the
  /// workers (each worker folds its executor's registry in periodically
  /// and on drain), so a live scrape reads a recent consistent copy
  /// instead of racing the executors' plain counters.
  virtual obs::MetricsSnapshot PublishedEngineMetrics() const = 0;

  /// Flushes the WAL (if any) so shutdown never strands an async-ack
  /// epoch; no-op without a WAL.
  virtual void Shutdown() = 0;
};

/// Builds the host for `opts.workload` x `opts.engine`, loading the
/// database population synchronously. Returns nullptr (with a message on
/// stderr) for an unknown workload/engine combination.
std::unique_ptr<WorkloadHost> MakeWorkloadHost(const HostOptions& opts);

}  // namespace mv3c::server

#endif  // MV3C_SERVER_WORKLOAD_HOST_H_
