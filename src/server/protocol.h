#ifndef MV3C_SERVER_PROTOCOL_H_
#define MV3C_SERVER_PROTOCOL_H_

// Wire protocol of the serving front-end (DESIGN §5k): length-prefixed
// binary frames over TCP, each integrity-checked the same way WAL blocks
// are (src/common/crc32.h CRC32-C over header and payload separately, so a
// torn or bit-flipped frame is detected before any byte of it reaches a
// transaction). Requests and responses reuse the §5f no-padding
// discipline: every struct on the wire is trivially copyable with unique
// object representations, so memcpy framing can never leak uninitialized
// padding bytes or mis-parse across builds.
//
// A frame is:   FrameHeader | payload (payload_bytes bytes)
// A request is: RequestHeader | workload parameter struct (the native
//               TransferParams / TradeOrderParams / PriceUpdateParams /
//               TatpParams / TpccParams — asserted padding-free in their
//               own headers)
// A response:   ResponseHeader only.
//
// The protocol is deliberately host-endian, like the WAL: the loadgen and
// the server are expected to run on the same architecture; this is a
// benchmark serving stack, not an interchange format. Anything that does
// not parse — wrong magic, oversized length, CRC mismatch, a torn header —
// closes the connection; there is no resynchronization state to corrupt.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/crc32.h"

namespace mv3c::server {

inline constexpr uint32_t kFrameMagic = 0x5333564Du;  // "MV3S" on the wire

/// Upper bound on a frame payload. The largest request is RequestHeader +
/// TpccParams (a few hundred bytes); anything claiming more is garbage or
/// an attack, and rejecting it before allocating keeps a malicious length
/// field from ballooning connection buffers.
inline constexpr uint32_t kMaxFramePayload = 4096;

struct FrameHeader {
  uint32_t magic;          // kFrameMagic
  uint32_t payload_bytes;  // bytes following this header
  uint32_t payload_crc;    // CRC32-C over the payload bytes
  uint32_t header_crc;     // CRC32-C over the three fields above
};
static_assert(sizeof(FrameHeader) == 16);
static_assert(std::has_unique_object_representations_v<FrameHeader>);

inline uint32_t FrameHeaderCrc(const FrameHeader& h) {
  return crc32::Compute(&h, offsetof(FrameHeader, header_crc));
}

inline FrameHeader MakeFrameHeader(const void* payload, uint32_t n) {
  FrameHeader h{};
  h.magic = kFrameMagic;
  h.payload_bytes = n;
  h.payload_crc = n == 0 ? 0 : crc32::Compute(payload, n);
  h.header_crc = FrameHeaderCrc(h);
  return h;
}

/// Request opcodes. The high byte selects the workload, so a request sent
/// to a server hosting a different workload is rejected as kBadRequest
/// instead of being reinterpreted.
enum class Op : uint16_t {
  kPing = 0x0001,  // no params; answered kPong without touching the engine
  kBankingTransfer = 0x0101,  // banking::TransferParams
  kTradeOrder = 0x0201,       // trading::TradeOrderParams
  kPriceUpdate = 0x0202,      // trading::PriceUpdateParams
  kTatp = 0x0301,             // tatp::TatpParams (type field selects txn)
  kTpcc = 0x0401,             // tpcc::TpccParams (type field selects txn)
};

/// Response status. The first three mirror StepResult (the engine's
/// verdict); the rest are produced by the front-end without running a
/// transaction.
enum class TxnStatus : uint16_t {
  kCommitted = 1,
  kUserAborted = 2,
  /// Retry-policy budget exhausted under contention; the transaction was
  /// rolled back and shed. retry_after_us carries the server's backoff
  /// hint (clients MUST back off at least that long before resending).
  kExhausted = 3,
  /// Admission queue full: the request never entered the engine.
  /// retry_after_us estimates when capacity frees up.
  kOverload = 4,
  /// Per-client token bucket empty. retry_after_us is the exact time
  /// until the next token accrues.
  kRateLimited = 5,
  kBadRequest = 6,
  kShuttingDown = 7,
  kPong = 8,
};

inline const char* ToString(TxnStatus s) {
  switch (s) {
    case TxnStatus::kCommitted: return "Committed";
    case TxnStatus::kUserAborted: return "UserAborted";
    case TxnStatus::kExhausted: return "Exhausted";
    case TxnStatus::kOverload: return "Overload";
    case TxnStatus::kRateLimited: return "RateLimited";
    case TxnStatus::kBadRequest: return "BadRequest";
    case TxnStatus::kShuttingDown: return "ShuttingDown";
    case TxnStatus::kPong: return "Pong";
  }
  return "?";
}

struct RequestHeader {
  uint64_t request_id;  // client-chosen, echoed verbatim in the response
  uint16_t opcode;      // Op
  uint16_t flags;       // reserved, must be 0
  uint32_t reserved;    // must be 0
};
static_assert(sizeof(RequestHeader) == 16);
static_assert(std::has_unique_object_representations_v<RequestHeader>);

/// ResponseHeader::flags bits.
inline constexpr uint16_t kRespFlagDurable = 1u << 0;  // sync-ack commit

struct ResponseHeader {
  uint64_t request_id;
  uint16_t status;  // TxnStatus
  uint16_t flags;
  /// Server-driven backoff hint for kOverload / kRateLimited / kExhausted;
  /// 0 otherwise.
  uint32_t retry_after_us;
  /// Commit timestamp (opaque §5h composed TID) for kCommitted; 0 else.
  uint64_t commit_ts;
  uint32_t rounds;    // repair/restart rounds the transaction burned
  uint32_t queue_us;  // time spent waiting in the admission queue
};
static_assert(sizeof(ResponseHeader) == 32);
static_assert(std::has_unique_object_representations_v<ResponseHeader>);

/// Serializes one frame (header + payload) into `out`.
inline void AppendFrame(std::vector<uint8_t>* out, const void* payload,
                        uint32_t n) {
  const FrameHeader h = MakeFrameHeader(payload, n);
  const size_t base = out->size();
  out->resize(base + sizeof(h) + n);
  std::memcpy(out->data() + base, &h, sizeof(h));
  if (n != 0) std::memcpy(out->data() + base + sizeof(h), payload, n);
}

/// Request frame: RequestHeader immediately followed by the params struct.
template <typename Params>
void AppendRequest(std::vector<uint8_t>* out, uint64_t request_id, Op op,
                   const Params& params) {
  static_assert(std::is_trivially_copyable_v<Params>);
  static_assert(std::has_unique_object_representations_v<Params>,
                "wire params must be padding-free (DESIGN §5f discipline)");
  uint8_t payload[sizeof(RequestHeader) + sizeof(Params)];
  RequestHeader rh{};
  rh.request_id = request_id;
  rh.opcode = static_cast<uint16_t>(op);
  std::memcpy(payload, &rh, sizeof(rh));
  std::memcpy(payload + sizeof(rh), &params, sizeof(params));
  AppendFrame(out, payload, sizeof(payload));
}

inline void AppendPing(std::vector<uint8_t>* out, uint64_t request_id) {
  RequestHeader rh{};
  rh.request_id = request_id;
  rh.opcode = static_cast<uint16_t>(Op::kPing);
  AppendFrame(out, &rh, sizeof(rh));
}

inline void AppendResponse(std::vector<uint8_t>* out,
                           const ResponseHeader& rh) {
  AppendFrame(out, &rh, sizeof(rh));
}

/// Incremental frame parser: feed it arbitrary byte chunks (as recv
/// returns them) and it invokes the sink once per complete, CRC-verified
/// frame. Any framing violation is terminal: Feed returns false, error()
/// says why, and the connection owner must close. The parser never holds
/// more than one partial frame (bounded by kMaxFramePayload), so a slow
/// or torn sender cannot grow server memory.
class FrameReader {
 public:
  enum class Error : uint8_t {
    kNone = 0,
    kBadMagic,      // first 4 bytes of a frame are not kFrameMagic
    kBadHeaderCrc,  // header CRC mismatch (torn or corrupted header)
    kOversized,     // payload_bytes exceeds the configured maximum
    kBadPayloadCrc, // payload CRC mismatch
  };

  explicit FrameReader(uint32_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  /// Sink signature: void(const uint8_t* payload, uint32_t n).
  template <typename Sink>
  bool Feed(const uint8_t* data, size_t n, Sink&& sink) {
    if (error_ != Error::kNone) return false;
    buf_.insert(buf_.end(), data, data + n);
    size_t off = 0;
    while (buf_.size() - off >= sizeof(FrameHeader)) {
      FrameHeader h;
      std::memcpy(&h, buf_.data() + off, sizeof(h));
      if (h.magic != kFrameMagic) return Fail(Error::kBadMagic);
      if (h.header_crc != FrameHeaderCrc(h)) {
        return Fail(Error::kBadHeaderCrc);
      }
      if (h.payload_bytes > max_payload_) return Fail(Error::kOversized);
      if (buf_.size() - off < sizeof(h) + h.payload_bytes) break;  // torn
      const uint8_t* payload = buf_.data() + off + sizeof(h);
      if (h.payload_bytes != 0 &&
          crc32::Compute(payload, h.payload_bytes) != h.payload_crc) {
        return Fail(Error::kBadPayloadCrc);
      }
      sink(payload, h.payload_bytes);
      off += sizeof(h) + h.payload_bytes;
    }
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(off));
    return true;
  }

  Error error() const { return error_; }
  size_t buffered() const { return buf_.size(); }

 private:
  bool Fail(Error e) {
    error_ = e;
    buf_.clear();
    return false;
  }

  uint32_t max_payload_;
  std::vector<uint8_t> buf_;
  Error error_ = Error::kNone;
};

inline const char* ToString(FrameReader::Error e) {
  switch (e) {
    case FrameReader::Error::kNone: return "none";
    case FrameReader::Error::kBadMagic: return "bad-magic";
    case FrameReader::Error::kBadHeaderCrc: return "bad-header-crc";
    case FrameReader::Error::kOversized: return "oversized";
    case FrameReader::Error::kBadPayloadCrc: return "bad-payload-crc";
  }
  return "?";
}

}  // namespace mv3c::server

#endif  // MV3C_SERVER_PROTOCOL_H_
