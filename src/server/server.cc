#include "server/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <unordered_map>
#include <utility>

#include "obs/prom_export.h"

namespace mv3c::server {

namespace {
constexpr int kMaxEpollEvents = 128;
constexpr size_t kRecvChunk = 64 * 1024;
constexpr size_t kMaxHttpHeader = 8 * 1024;
// The sniffed protocol decision needs this many bytes ("MV3S" or not).
constexpr size_t kSniffBytes = 4;
}  // namespace

struct Server::Conn {
  int fd = -1;
  uint64_t id = 0;
  bool sniffed = false;
  bool is_http = false;
  bool closing = false;   // close as soon as `out` drains
  bool want_out = false;  // EPOLLOUT currently armed
  FrameReader reader;
  std::string sniff_buf;
  std::string http_buf;
  std::vector<uint8_t> out;
  size_t out_off = 0;
  TokenBucket bucket{0, 0};

  Conn(double rate, double burst) : bucket(rate, burst) {}
};

struct Server::ConnTable {
  std::unordered_map<int, std::unique_ptr<Conn>> by_fd;
  std::unordered_map<uint64_t, Conn*> by_id;
  std::vector<int> dead_fds;  // swept at the end of each I/O iteration
  uint64_t next_id = 1;
};

Server::Server(ServerOptions opts)
    : opts_(std::move(opts)), conns_(std::make_unique<ConnTable>()) {
  obs::RegisterCounters(&registry_, &stats_);
}

Server::~Server() { Stop(); }

bool Server::Start() {
  host_ = MakeWorkloadHost(opts_.host);
  if (host_ == nullptr) return false;
  queue_ = std::make_unique<AdmissionQueue>(opts_.queue_depth);

  listen_fd_ =
      socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    std::perror("socket");
    return false;
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (inet_pton(AF_INET, opts_.bind_addr.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "bad bind address '%s'\n", opts_.bind_addr.c_str());
    return false;
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::perror("bind");
    return false;
  }
  if (listen(listen_fd_, 512) != 0) {
    std::perror("listen");
    return false;
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    std::perror("epoll/eventfd");
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  started_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { IoLoop(); });
  workers_.reserve(host_->workers());
  for (size_t w = 0; w < host_->workers(); ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
  return true;
}

void Server::Stop() {
  if (!started_.exchange(false, std::memory_order_acq_rel)) return;
  // Order matters: close the queue first so workers drain what was
  // admitted and exit; their final responses land in pending_ before the
  // I/O thread is told to stop, so every admitted request is answered.
  queue_->Close();
  for (auto& t : workers_) t.join();
  workers_.clear();
  stop_.store(true, std::memory_order_release);
  eventfd_write(wake_fd_, 1);
  io_thread_.join();
  host_->Shutdown();
  if (listen_fd_ >= 0) close(listen_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
}

// --- worker side ---

void Server::WorkerLoop(size_t worker_id) {
  while (true) {
    std::vector<QueuedRequest> batch = queue_->PopBatch(opts_.batch);
    if (batch.empty()) break;  // closed and drained
    std::vector<PendingResponse> responses;
    responses.reserve(batch.size());
    for (QueuedRequest& req : batch) {
      const uint64_t t0 = MonotonicNowNs();
      const WorkloadHost::Result r =
          host_->Run(worker_id, req.opcode, req.params.data(),
                     req.params.size());
      svc_est_.Record(MonotonicNowNs() - t0);
      ResponseHeader rh{};
      rh.request_id = req.request_id;
      rh.status = static_cast<uint16_t>(r.status);
      rh.commit_ts = r.commit_ts;
      rh.rounds = r.rounds;
      const uint64_t queue_us = (t0 - req.enqueue_ns) / 1000;
      rh.queue_us = queue_us > ~0u ? ~0u : static_cast<uint32_t>(queue_us);
      switch (r.status) {
        case TxnStatus::kCommitted:
          Bump(stats_.txn_committed);
          if (host_->sync_ack()) rh.flags |= kRespFlagDurable;
          break;
        case TxnStatus::kUserAborted:
          Bump(stats_.txn_user_aborted);
          break;
        case TxnStatus::kExhausted:
          Bump(stats_.txn_exhausted);
          rh.retry_after_us = svc_est_.RetryAfterUs(queue_->depth());
          break;
        default:
          Bump(stats_.bad_requests);
          break;
      }
      responses.push_back({req.conn_id, rh});
    }
    host_->FlushWorkerMetrics(worker_id);
    PushResponses(std::move(responses));
  }
  host_->FlushWorkerMetrics(worker_id);
}

void Server::PushResponses(std::vector<PendingResponse>&& batch) {
  {
    std::lock_guard<std::mutex> g(pending_mu_);
    for (PendingResponse& r : batch) pending_.push_back(r);
  }
  eventfd_write(wake_fd_, 1);
}

// --- I/O side ---

void Server::IoLoop() {
  epoll_event events[kMaxEpollEvents];
  while (true) {
    const int n = epoll_wait(epoll_fd_, events, kMaxEpollEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        eventfd_t v;
        eventfd_read(wake_fd_, &v);
        DrainPendingResponses();
        continue;
      }
      if (fd == listen_fd_) {
        AcceptNew();
        continue;
      }
      auto it = conns_->by_fd.find(fd);
      if (it == conns_->by_fd.end()) continue;
      Conn* c = it->second.get();
      if (c->fd < 0) continue;  // closed earlier this iteration
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConn(c);
        continue;
      }
      if (events[i].events & EPOLLIN) HandleReadable(c);
      if (c->fd >= 0 && (events[i].events & EPOLLOUT)) FlushOut(c);
    }
    // Sweep connections closed during this iteration.
    for (const int fd : conns_->dead_fds) conns_->by_fd.erase(fd);
    conns_->dead_fds.clear();
    if (stop_.load(std::memory_order_acquire)) {
      // Final drain: workers have exited, every remaining response is in
      // pending_. Append them and give each socket one best-effort flush.
      DrainPendingResponses();
      for (auto& [fd, conn] : conns_->by_fd) {
        if (conn->fd >= 0 && conn->out.size() > conn->out_off) {
          FlushOut(conn.get());
        }
        if (conn->fd >= 0) CloseConn(conn.get());
      }
      conns_->by_fd.clear();
      conns_->dead_fds.clear();
      return;
    }
  }
}

void Server::AcceptNew() {
  while (true) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: epoll will re-arm
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn =
        std::make_unique<Conn>(opts_.client_rate, opts_.client_burst);
    conn->fd = fd;
    conn->id = conns_->next_id++;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
    conns_->by_id[conn->id] = conn.get();
    conns_->by_fd[fd] = std::move(conn);
    Bump(stats_.connections_opened);
  }
}

void Server::HandleReadable(Conn* c) {
  uint8_t buf[kRecvChunk];
  while (c->fd >= 0) {
    const ssize_t n = recv(c->fd, buf, sizeof(buf), 0);
    if (n == 0) {  // peer closed
      CloseConn(c);
      return;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      CloseConn(c);
      return;
    }
    const uint8_t* data = buf;
    size_t len = static_cast<size_t>(n);
    if (!c->sniffed) {
      c->sniff_buf.append(reinterpret_cast<const char*>(data), len);
      if (c->sniff_buf.size() < kSniffBytes) continue;
      c->sniffed = true;
      c->is_http = std::memcmp(c->sniff_buf.data(), "MV3S", 4) != 0;
      // Re-feed the sniffed prefix through the chosen handler.
      std::string head = std::move(c->sniff_buf);
      c->sniff_buf.clear();
      if (c->is_http) {
        c->http_buf = std::move(head);
        HandleHttp(c);
      } else {
        HandleBinary(c, reinterpret_cast<const uint8_t*>(head.data()),
                     head.size());
      }
      continue;
    }
    if (c->is_http) {
      c->http_buf.append(reinterpret_cast<const char*>(data), len);
      HandleHttp(c);
    } else {
      HandleBinary(c, data, len);
    }
  }
}

void Server::HandleBinary(Conn* c, const uint8_t* data, size_t n) {
  const bool ok = c->reader.Feed(data, n, [this, c](const uint8_t* payload,
                                                    uint32_t bytes) {
    if (c->fd < 0) return;  // closed by an earlier frame in this batch
    OnFrame(c, payload, bytes);
  });
  if (!ok && c->fd >= 0) {
    // Any framing violation is terminal (protocol.h): no resync, no
    // partial transaction — the connection dies.
    Bump(stats_.protocol_errors);
    CloseConn(c);
  }
}

void Server::OnFrame(Conn* c, const uint8_t* payload, uint32_t n) {
  if (n < sizeof(RequestHeader)) {
    Bump(stats_.protocol_errors);
    CloseConn(c);
    return;
  }
  RequestHeader rq;
  std::memcpy(&rq, payload, sizeof(rq));
  Bump(stats_.requests_received);
  if (rq.flags != 0 || rq.reserved != 0) {
    Bump(stats_.bad_requests);
    RespondNow(c, rq.request_id, TxnStatus::kBadRequest, 0);
    return;
  }
  if (rq.opcode == static_cast<uint16_t>(Op::kPing)) {
    Bump(stats_.pings);
    RespondNow(c, rq.request_id, TxnStatus::kPong, 0);
    return;
  }
  const uint8_t* params = payload + sizeof(rq);
  const size_t param_bytes = n - sizeof(rq);
  if (!host_->Accepts(rq.opcode, param_bytes)) {
    Bump(stats_.bad_requests);
    RespondNow(c, rq.request_id, TxnStatus::kBadRequest, 0);
    return;
  }
  const uint64_t now_ns = MonotonicNowNs();
  uint32_t retry_after_us = 0;
  if (!c->bucket.TryTake(now_ns, &retry_after_us)) {
    Bump(stats_.shed_rate_limited);
    RespondNow(c, rq.request_id, TxnStatus::kRateLimited, retry_after_us);
    return;
  }
  QueuedRequest req;
  req.conn_id = c->id;
  req.request_id = rq.request_id;
  req.opcode = rq.opcode;
  req.enqueue_ns = now_ns;
  req.params.assign(params, params + param_bytes);
  if (!queue_->TryPush(std::move(req))) {
    // The admission decision (DESIGN §5k): the queue is the overload
    // bound, and a full queue costs the server one response frame, not a
    // transaction. The retry hint is the backlog drain time at the
    // workers' measured service rate.
    Bump(stats_.shed_overload);
    RespondNow(c, rq.request_id, TxnStatus::kOverload,
               svc_est_.RetryAfterUs(queue_->depth()));
  }
}

void Server::RespondNow(Conn* c, uint64_t request_id, TxnStatus status,
                        uint32_t retry_after_us) {
  ResponseHeader rh{};
  rh.request_id = request_id;
  rh.status = static_cast<uint16_t>(status);
  rh.retry_after_us = retry_after_us;
  AppendResponse(&c->out, rh);
  Bump(stats_.responses_sent);
  FlushOut(c);
}

void Server::FlushOut(Conn* c) {
  while (c->out_off < c->out.size()) {
    const ssize_t n = send(c->fd, c->out.data() + c->out_off,
                           c->out.size() - c->out_off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      CloseConn(c);
      return;
    }
    c->out_off += static_cast<size_t>(n);
  }
  if (c->out_off >= c->out.size()) {
    c->out.clear();
    c->out_off = 0;
    if (c->closing) {
      CloseConn(c);
      return;
    }
    UpdateEpollOut(c, false);
    return;
  }
  // A reader slower than its response stream cannot grow server memory
  // unboundedly: past the cap the connection is dropped.
  if (c->out.size() - c->out_off > opts_.max_out_buffer) {
    CloseConn(c);
    return;
  }
  UpdateEpollOut(c, true);
}

void Server::UpdateEpollOut(Conn* c, bool want_out) {
  if (c->want_out == want_out) return;
  c->want_out = want_out;
  epoll_event ev{};
  ev.events = EPOLLIN | (want_out ? EPOLLOUT : 0u);
  ev.data.fd = c->fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, c->fd, &ev);
}

void Server::CloseConn(Conn* c) {
  if (c->fd < 0) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, c->fd, nullptr);
  close(c->fd);
  conns_->by_id.erase(c->id);
  conns_->dead_fds.push_back(c->fd);
  c->fd = -1;
  Bump(stats_.connections_closed);
}

Server::Conn* Server::FindConn(uint64_t conn_id) {
  auto it = conns_->by_id.find(conn_id);
  return it == conns_->by_id.end() ? nullptr : it->second;
}

void Server::DrainPendingResponses() {
  std::vector<PendingResponse> batch;
  {
    std::lock_guard<std::mutex> g(pending_mu_);
    batch.swap(pending_);
  }
  for (const PendingResponse& r : batch) {
    Conn* c = FindConn(r.conn_id);
    if (c == nullptr || c->fd < 0) continue;  // client already left
    AppendResponse(&c->out, r.rh);
    Bump(stats_.responses_sent);
  }
  // Flush once per connection, not once per response.
  for (const PendingResponse& r : batch) {
    Conn* c = FindConn(r.conn_id);
    if (c != nullptr && c->fd >= 0 && c->out.size() > c->out_off) {
      FlushOut(c);
    }
  }
}

// --- HTTP observability endpoints ---

void Server::HandleHttp(Conn* c) {
  const size_t hdr_end = c->http_buf.find("\r\n\r\n");
  if (hdr_end == std::string::npos) {
    if (c->http_buf.size() > kMaxHttpHeader) CloseConn(c);
    return;
  }
  const size_t line_end = c->http_buf.find("\r\n");
  const std::string line = c->http_buf.substr(0, line_end);
  std::string method, path;
  const size_t sp1 = line.find(' ');
  if (sp1 != std::string::npos) {
    method = line.substr(0, sp1);
    const size_t sp2 = line.find(' ', sp1 + 1);
    path = sp2 == std::string::npos ? line.substr(sp1 + 1)
                                    : line.substr(sp1 + 1, sp2 - sp1 - 1);
  }
  std::string body;
  const char* status = "200 OK";
  const char* ctype = "text/plain; version=0.0.4; charset=utf-8";
  if (method != "GET") {
    status = "405 Method Not Allowed";
    body = "method not allowed\n";
  } else if (path == "/metrics") {
    body = MetricsText();
  } else if (path == "/healthz") {
    body = "ok\n";
  } else {
    status = "404 Not Found";
    body = "not found\n";
  }
  char hdr[256];
  const int hn = std::snprintf(hdr, sizeof(hdr),
                               "HTTP/1.1 %s\r\n"
                               "Content-Type: %s\r\n"
                               "Content-Length: %zu\r\n"
                               "Connection: close\r\n\r\n",
                               status, ctype, body.size());
  c->out.insert(c->out.end(), hdr, hdr + hn);
  c->out.insert(c->out.end(), body.begin(), body.end());
  c->closing = true;
  FlushOut(c);
}

std::string Server::MetricsText() const {
  obs::PromTextWriter w;
  obs::WriteSnapshot(&w, registry_.Snapshot(), "mv3c_server");
  w.Gauge("mv3c_server_admission_queue_depth",
          "requests currently waiting for a worker",
          static_cast<double>(queue_->depth()));
  w.Gauge("mv3c_server_admission_queue_capacity",
          "admission queue bound; pushes past it shed",
          static_cast<double>(queue_->capacity()));
  w.Gauge("mv3c_server_admission_queue_peak_depth",
          "high-water mark of the admission queue",
          static_cast<double>(queue_->peak_depth()));
  w.Gauge("mv3c_server_service_time_ewma_seconds",
          "EWMA of per-transaction service time",
          static_cast<double>(svc_est_.ewma_ns()) * 1e-9);
  // Engine counters come from the workers' *published* snapshots
  // (workload_host.h): a live scrape never races the executors' plain
  // fields. Manager-level maintenance counters (gc_rounds, ...) are
  // deliberately absent — they are plain fields bumped concurrently and
  // have no race-free live view.
  obs::WriteSnapshot(&w, host_->PublishedEngineMetrics(), "mv3c_engine",
                     {{"engine", host_->engine()},
                      {"workload", host_->workload()}});
  return w.str();
}

}  // namespace mv3c::server
