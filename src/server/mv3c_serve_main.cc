// mv3c_serve: the single-binary serving front-end (DESIGN §5k). Hosts one
// workload on one engine behind the MV3S wire protocol + HTTP /metrics,
// and runs until SIGINT/SIGTERM.
//
//   mv3c_serve --workload=tpcc --engine=mv3c --port=7433 --workers=4
//              --wal --wal-dir=/tmp/serve-wal --ack=sync
//
// Prints "LISTENING port=<n>" once the socket is bound (port 0 picks an
// ephemeral port), which is what scripts/serve_smoke.sh and the CI
// integration job parse.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "server/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

bool ParseFlag(const char* arg, const char* name, std::string* out) {
  const size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = arg + n + 1;
  return true;
}

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --workload=banking|trading|tatp|tpcc   (default banking)\n"
      "  --engine=mv3c|omvcc                    (default mv3c)\n"
      "  --bind=ADDR          listen address (default 127.0.0.1)\n"
      "  --port=N             listen port; 0 = ephemeral (default 0)\n"
      "  --workers=N          engine worker threads (default 4)\n"
      "  --scale=N            workload population knob (0 = default)\n"
      "  --queue-depth=N      admission queue bound (default 1024)\n"
      "  --batch=N            worker pop batch (default 16)\n"
      "  --client-rate=R      per-connection token rate/s (0 = unlimited)\n"
      "  --client-burst=B     per-connection token burst (default 64)\n"
      "  --round-cap=N        per-txn retry/repair round cap (default 64)\n"
      "  --service-delay-us=N deterministic per-request delay (tests)\n"
      "  --wal                enable the write-ahead log\n"
      "  --ack=sync|async     durability ack mode with --wal (default async)\n"
      "  --wal-dir=PATH       WAL directory (required with --wal)\n"
      "  --wal-partitions=N   per-core WAL streams (default 1)\n",
      argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  mv3c::server::ServerOptions opts;
  std::string v;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (ParseFlag(a, "--workload", &v)) {
      opts.host.workload = v;
    } else if (ParseFlag(a, "--engine", &v)) {
      opts.host.engine = v;
    } else if (ParseFlag(a, "--bind", &v)) {
      opts.bind_addr = v;
    } else if (ParseFlag(a, "--port", &v)) {
      opts.port = static_cast<uint16_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(a, "--workers", &v)) {
      opts.host.workers = std::strtoul(v.c_str(), nullptr, 10);
    } else if (ParseFlag(a, "--scale", &v)) {
      opts.host.scale = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(a, "--queue-depth", &v)) {
      opts.queue_depth = std::strtoul(v.c_str(), nullptr, 10);
    } else if (ParseFlag(a, "--batch", &v)) {
      opts.batch = std::strtoul(v.c_str(), nullptr, 10);
    } else if (ParseFlag(a, "--client-rate", &v)) {
      opts.client_rate = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(a, "--client-burst", &v)) {
      opts.client_burst = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(a, "--round-cap", &v)) {
      opts.host.round_cap =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (ParseFlag(a, "--service-delay-us", &v)) {
      opts.host.service_delay_us =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else if (std::strcmp(a, "--wal") == 0) {
      opts.host.wal = true;
    } else if (ParseFlag(a, "--ack", &v)) {
      if (v == "sync") {
        opts.host.sync_ack = true;
      } else if (v == "async") {
        opts.host.sync_ack = false;
      } else {
        std::fprintf(stderr, "--ack must be sync or async\n");
        return 2;
      }
    } else if (ParseFlag(a, "--wal-dir", &v)) {
      opts.host.wal_dir = v;
    } else if (ParseFlag(a, "--wal-partitions", &v)) {
      opts.host.wal_partitions =
          static_cast<uint32_t>(std::strtoul(v.c_str(), nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      Usage(argv[0]);
    }
  }
  if (opts.host.wal && opts.host.wal_dir.empty()) {
    std::fprintf(stderr, "--wal requires --wal-dir\n");
    return 2;
  }

  std::fprintf(stderr, "loading %s (%s, %zu workers)...\n",
               opts.host.workload.c_str(), opts.host.engine.c_str(),
               opts.host.workers);
  mv3c::server::Server server(opts);
  if (!server.Start()) {
    std::fprintf(stderr, "start failed\n");
    return 1;
  }
  std::printf("LISTENING port=%u\n", server.port());
  std::fflush(stdout);

  struct sigaction sa {};
  sa.sa_handler = OnSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  std::fprintf(stderr, "shutting down...\n");
  server.Stop();

  const auto& s = server.stats();
  std::fprintf(stderr,
               "served: requests=%llu committed=%llu aborted=%llu "
               "exhausted=%llu shed_overload=%llu shed_rate=%llu "
               "proto_errors=%llu\n",
               static_cast<unsigned long long>(s.requests_received.load()),
               static_cast<unsigned long long>(s.txn_committed.load()),
               static_cast<unsigned long long>(s.txn_user_aborted.load()),
               static_cast<unsigned long long>(s.txn_exhausted.load()),
               static_cast<unsigned long long>(s.shed_overload.load()),
               static_cast<unsigned long long>(s.shed_rate_limited.load()),
               static_cast<unsigned long long>(s.protocol_errors.load()));
  return 0;
}
