#ifndef MV3C_SERVER_ADMISSION_H_
#define MV3C_SERVER_ADMISSION_H_

// Admission control for the serving front-end (DESIGN §5k): a per-client
// token bucket (rate limiting — protects the server from one greedy
// client) in front of one bounded admission queue (load shedding —
// protects the engine from aggregate overload). Both reject *before* the
// request touches the engine, so under overload the expensive path — MVCC
// version churn, repair rounds, WAL serialization — is reserved for the
// requests the server has decided to serve, and everything else costs one
// response frame. The shed response carries a server-computed
// retry-after, so backoff pressure is driven by the server's actual
// service rate rather than client guesswork.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

namespace mv3c::server {

/// Classic token bucket over a monotonic nanosecond clock. Not thread-safe
/// — each connection owns one and only the I/O thread touches it.
class TokenBucket {
 public:
  /// `rate` tokens per second, up to `burst` accumulated. rate <= 0 means
  /// unlimited (TryTake always succeeds).
  TokenBucket(double rate, double burst) : rate_(rate), burst_(burst) {}

  /// Takes one token if available. On refusal, *retry_after_us receives
  /// the exact time until the next token accrues.
  bool TryTake(uint64_t now_ns, uint32_t* retry_after_us) {
    if (rate_ <= 0) return true;
    Refill(now_ns);
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      return true;
    }
    const double deficit_s = (1.0 - tokens_) / rate_;
    *retry_after_us = static_cast<uint32_t>(deficit_s * 1e6) + 1;
    return false;
  }

  double tokens() const { return tokens_; }

 private:
  void Refill(uint64_t now_ns) {
    if (last_ns_ == 0) {
      last_ns_ = now_ns;
      tokens_ = burst_;
      return;
    }
    const double dt = static_cast<double>(now_ns - last_ns_) * 1e-9;
    last_ns_ = now_ns;
    tokens_ += dt * rate_;
    if (tokens_ > burst_) tokens_ = burst_;
  }

  double rate_;
  double burst_;
  double tokens_ = 0;
  uint64_t last_ns_ = 0;
};

/// One admitted request, queued between the I/O thread and the worker
/// pool. `conn_id` routes the response back (the server resolves it to a
/// live connection — or drops the response if the client already left).
struct QueuedRequest {
  uint64_t conn_id = 0;
  uint64_t request_id = 0;
  uint16_t opcode = 0;
  uint64_t enqueue_ns = 0;  // for ResponseHeader::queue_us
  std::vector<uint8_t> params;
};

/// Bounded MPMC queue with load-shedding semantics: producers never block
/// (TryPush fails when full — that *is* the admission decision), consumers
/// block until work arrives or the queue is closed. Workers pop small
/// batches so one mutex acquisition amortizes over several transactions
/// entering the engine's epoch pipeline together.
class AdmissionQueue {
 public:
  explicit AdmissionQueue(size_t depth) : depth_(depth) {}

  /// Non-blocking; returns false (sheds) when the queue is at depth.
  bool TryPush(QueuedRequest&& r) {
    {
      std::lock_guard<std::mutex> g(mu_);
      if (closed_ || q_.size() >= depth_) return false;
      q_.push_back(std::move(r));
      if (q_.size() > peak_depth_) peak_depth_ = q_.size();
    }
    cv_.notify_one();
    return true;
  }

  /// Pops up to `max` requests, blocking while the queue is empty and
  /// open. Returns an empty vector only when the queue is closed and
  /// drained — the worker's exit signal.
  std::vector<QueuedRequest> PopBatch(size_t max) {
    std::unique_lock<std::mutex> g(mu_);
    cv_.wait(g, [&] { return closed_ || !q_.empty(); });
    std::vector<QueuedRequest> out;
    while (!q_.empty() && out.size() < max) {
      out.push_back(std::move(q_.front()));
      q_.pop_front();
    }
    return out;
  }

  /// Closes the queue: pending requests still drain, new pushes fail,
  /// and PopBatch returns empty once drained.
  void Close() {
    {
      std::lock_guard<std::mutex> g(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  size_t depth() const {
    std::lock_guard<std::mutex> g(mu_);
    return q_.size();
  }
  /// High-water mark of the queue length — the overload test's "bounded
  /// queue depth" witness.
  size_t peak_depth() const {
    std::lock_guard<std::mutex> g(mu_);
    return peak_depth_;
  }
  size_t capacity() const { return depth_; }

 private:
  const size_t depth_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<QueuedRequest> q_;
  size_t peak_depth_ = 0;
  bool closed_ = false;
};

/// Exponentially-weighted estimate of per-transaction service time,
/// updated by workers after every completed request and read by the I/O
/// thread to compute overload retry-after hints. Stored in a single
/// atomic; the EWMA update races benignly (a lost update nudges the
/// estimate by one sample).
class ServiceTimeEstimate {
 public:
  void Record(uint64_t service_ns) {
    const uint64_t prev = ewma_ns_.load(std::memory_order_relaxed);
    const uint64_t next =
        prev == 0 ? service_ns : prev - (prev >> 3) + (service_ns >> 3);
    ewma_ns_.store(next, std::memory_order_relaxed);
  }

  uint64_t ewma_ns() const { return ewma_ns_.load(std::memory_order_relaxed); }

  /// Retry-after for a shed request: the time the current backlog takes to
  /// drain at the estimated service rate, clamped to [min, max]. The clamp
  /// floor keeps shed clients from hammering a momentarily-empty estimate;
  /// the ceiling keeps a cold estimate from parking clients for minutes.
  uint32_t RetryAfterUs(size_t backlog) const {
    const uint64_t ewma = ewma_ns();
    const uint64_t est_ns = ewma == 0 ? 1'000'000 : ewma * (backlog + 1);
    uint64_t us = est_ns / 1000;
    if (us < 200) us = 200;
    if (us > 1'000'000) us = 1'000'000;
    return static_cast<uint32_t>(us);
  }

 private:
  std::atomic<uint64_t> ewma_ns_{0};
};

inline uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace mv3c::server

#endif  // MV3C_SERVER_ADMISSION_H_
