#include "server/workload_host.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

#include "mv3c/mv3c_executor.h"
#include "mvcc/transaction_manager.h"
#include "obs/engine_stats.h"
#include "omvcc/omvcc_transaction.h"
#include "workloads/banking.h"
#include "workloads/tatp.h"
#include "workloads/tpcc.h"
#include "workloads/trading.h"

#if defined(MV3C_WAL_ENABLED)
#include "wal/catalog.h"
#include "wal/log_manager.h"
#include "workloads/wal_registry.h"
#endif

namespace mv3c::server {
namespace {

/// §4.3 heuristic, same as bench/runners.h DefaultMv3cConfig.
constexpr int kExclusiveRepairAfter = 3;
/// Maintenance cadence, mirroring ThreadDriver worker-0 behavior.
constexpr uint64_t kMaintenanceEvery = 1024;

template <typename Executor>
std::unique_ptr<Executor> MakeExecutor(TransactionManager* mgr) {
  if constexpr (std::is_same_v<Executor, Mv3cExecutor>) {
    Mv3cConfig cfg;
    cfg.exclusive_repair_after = kExclusiveRepairAfter;
    return std::make_unique<Executor>(mgr, cfg);
  } else {
    return std::make_unique<Executor>(mgr);
  }
}

template <typename Executor>
const char* EngineName() {
  return std::is_same_v<Executor, Mv3cExecutor> ? "mv3c" : "omvcc";
}

void BusyWaitUs(uint32_t us) {
  if (us == 0) return;
  const auto until =
      std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < until) {
  }
}

/// Everything engine-generic: per-worker executors, the step loop, the
/// worker-published metrics snapshots, and (when compiled in) the WAL.
/// Subclasses own the database and map opcodes to programs.
template <typename Executor>
class HostBase : public WorkloadHost {
 public:
  explicit HostBase(const HostOptions& opts) : opts_(opts) {
#if defined(MV3C_WAL_ENABLED)
    if (opts_.wal) {
      wal::WalConfig cfg;
      cfg.dir = opts_.wal_dir;
      cfg.ack = opts_.sync_ack ? wal::WalConfig::Ack::kSync
                               : wal::WalConfig::Ack::kAsync;
      cfg.partitions = opts_.wal_partitions;
      mgr_.EnableWal(cfg);
    }
#endif
    workers_.reserve(opts_.workers);
    for (size_t w = 0; w < opts_.workers; ++w) {
      workers_.push_back(std::make_unique<Worker>());
      workers_.back()->exec = MakeExecutor<Executor>(&mgr_);
    }
  }

  const char* engine() const override { return EngineName<Executor>(); }
  size_t workers() const override { return opts_.workers; }
  bool sync_ack() const override { return opts_.wal && opts_.sync_ack; }

  Result Run(size_t worker_id, uint16_t opcode, const uint8_t* params,
             size_t param_bytes) override {
    Worker& w = *workers_[worker_id];
    BusyWaitUs(opts_.service_delay_us);
    typename Executor::Program prog;
    if (!MakeProgram(opcode, params, param_bytes, &prog)) {
      Result r;
      r.status = TxnStatus::kBadRequest;
      return r;
    }
    Executor& e = *w.exec;
    e.Reset(std::move(prog));
    e.Begin();
    Result res;
    StepResult sr;
    while (true) {
      sr = e.Step();
      if (sr != StepResult::kNeedsRetry) break;
      if (++res.rounds >= opts_.round_cap) {
        sr = e.GiveUp();
        break;
      }
    }
    switch (sr) {
      case StepResult::kCommitted:
        res.status = TxnStatus::kCommitted;
        res.commit_ts = e.last_commit_ts();
        break;
      case StepResult::kUserAborted:
        res.status = TxnStatus::kUserAborted;
        break;
      default:
        res.status = TxnStatus::kExhausted;
        break;
    }
    if (worker_id == 0 && ++w.completions % kMaintenanceEvery == 0) {
      Maintenance();
    }
    return res;
  }

  /// Folds this worker's executor registry into its published snapshot.
  /// Called by the worker thread itself (the registry's counters are that
  /// thread's plain fields, so this read is single-threaded); the copy
  /// under the mutex is what /metrics reads.
  void FlushWorkerMetrics(size_t worker_id) override {
    Worker& w = *workers_[worker_id];
    obs::MetricsSnapshot snap = w.exec->metrics().Snapshot();
    std::lock_guard<std::mutex> g(w.mu);
    w.published = std::move(snap);
  }

  obs::MetricsSnapshot PublishedEngineMetrics() const override {
    obs::MetricsSnapshot out;
    for (const auto& w : workers_) {
      std::lock_guard<std::mutex> g(w->mu);
      out.Merge(w->published);
    }
    return out;
  }

  void Maintenance() override { mgr_.CollectGarbage(); }

  void Shutdown() override {
#if defined(MV3C_WAL_ENABLED)
    if (opts_.wal && mgr_.wal() != nullptr) {
      mgr_.wal()->FlushNow();
      mgr_.DisableWal();
    }
#endif
  }

 protected:
  virtual bool MakeProgram(uint16_t opcode, const uint8_t* params,
                           size_t param_bytes,
                           typename Executor::Program* out) = 0;

  HostOptions opts_;
  TransactionManager mgr_;

 private:
  struct Worker {
    std::unique_ptr<Executor> exec;
    uint64_t completions = 0;
    mutable std::mutex mu;
    obs::MetricsSnapshot published;  // guarded by mu
  };
  std::vector<std::unique_ptr<Worker>> workers_;
};

// --- banking ---

template <typename Executor>
class BankingHost final : public HostBase<Executor> {
 public:
  explicit BankingHost(const HostOptions& opts)
      : HostBase<Executor>(opts),
        db_(&this->mgr_, opts.scale == 0 ? 100000 : static_cast<int64_t>(
                                                        opts.scale),
            /*initial_balance=*/1000) {
#if defined(MV3C_WAL_ENABLED)
    if (opts.wal) RegisterWalTables(cat_, db_);
#endif
    db_.Load();
  }

  const char* workload() const override { return "banking"; }

  bool Accepts(uint16_t opcode, size_t n) const override {
    return opcode == static_cast<uint16_t>(Op::kBankingTransfer) &&
           n == sizeof(banking::TransferParams);
  }

 protected:
  bool MakeProgram(uint16_t opcode, const uint8_t* params, size_t n,
                   typename Executor::Program* out) override {
    if (!Accepts(opcode, n)) return false;
    banking::TransferParams p;
    std::memcpy(&p, params, sizeof(p));
    if constexpr (std::is_same_v<Executor, Mv3cExecutor>) {
      *out = banking::Mv3cTransferMoney(db_, p);
    } else {
      *out = banking::OmvccTransferMoney(db_, p);
    }
    return true;
  }

 private:
  banking::BankingDb db_;
#if defined(MV3C_WAL_ENABLED)
  wal::Catalog cat_;
#endif
};

// --- trading ---

template <typename Executor>
class TradingHost final : public HostBase<Executor> {
 public:
  explicit TradingHost(const HostOptions& opts)
      : HostBase<Executor>(opts),
        db_(&this->mgr_, opts.scale == 0 ? 100000 : opts.scale,
            opts.scale == 0 ? 100000 : opts.scale) {
#if defined(MV3C_WAL_ENABLED)
    if (opts.wal) RegisterWalTables(cat_, db_);
#endif
    db_.Load();
  }

  const char* workload() const override { return "trading"; }

  bool Accepts(uint16_t opcode, size_t n) const override {
    if (opcode == static_cast<uint16_t>(Op::kTradeOrder)) {
      return n == sizeof(trading::TradeOrderParams);
    }
    if (opcode == static_cast<uint16_t>(Op::kPriceUpdate)) {
      return n == sizeof(trading::PriceUpdateParams);
    }
    return false;
  }

 protected:
  bool MakeProgram(uint16_t opcode, const uint8_t* params, size_t n,
                   typename Executor::Program* out) override {
    if (!Accepts(opcode, n)) return false;
    if (opcode == static_cast<uint16_t>(Op::kTradeOrder)) {
      trading::TradeOrderParams p;
      std::memcpy(&p, params, sizeof(p));
      if constexpr (std::is_same_v<Executor, Mv3cExecutor>) {
        *out = trading::Mv3cTradeOrder(db_, p);
      } else {
        *out = trading::OmvccTradeOrder(db_, p);
      }
    } else {
      trading::PriceUpdateParams p;
      std::memcpy(&p, params, sizeof(p));
      if constexpr (std::is_same_v<Executor, Mv3cExecutor>) {
        *out = trading::Mv3cPriceUpdate(db_, p);
      } else {
        *out = trading::OmvccPriceUpdate(db_, p);
      }
    }
    return true;
  }

 private:
  trading::TradingDb db_;
#if defined(MV3C_WAL_ENABLED)
  wal::Catalog cat_;
#endif
};

// --- tatp ---

template <typename Executor>
class TatpHost final : public HostBase<Executor> {
 public:
  explicit TatpHost(const HostOptions& opts)
      : HostBase<Executor>(opts),
        db_(&this->mgr_, opts.scale == 0 ? 100000 : opts.scale) {
#if defined(MV3C_WAL_ENABLED)
    if (opts.wal) RegisterWalTables(cat_, db_);
#endif
    db_.Load();
  }

  const char* workload() const override { return "tatp"; }

  bool Accepts(uint16_t opcode, size_t n) const override {
    return opcode == static_cast<uint16_t>(Op::kTatp) &&
           n == sizeof(tatp::TatpParams);
  }

 protected:
  bool MakeProgram(uint16_t opcode, const uint8_t* params, size_t n,
                   typename Executor::Program* out) override {
    if (!Accepts(opcode, n)) return false;
    tatp::TatpParams p;
    std::memcpy(&p, params, sizeof(p));
    // Enum fields crossed the network: bound them before the program
    // switches on them.
    if (p.type > tatp::TxnType::kDeleteCallForwarding) return false;
    if constexpr (std::is_same_v<Executor, Mv3cExecutor>) {
      *out = tatp::Mv3cTatpProgram(db_, p);
    } else {
      *out = tatp::OmvccTatpProgram(db_, p);
    }
    return true;
  }

 private:
  tatp::TatpDb db_;
#if defined(MV3C_WAL_ENABLED)
  wal::Catalog cat_;
#endif
};

// --- tpcc ---

template <typename Executor>
class TpccHost final : public HostBase<Executor> {
 public:
  explicit TpccHost(const HostOptions& opts)
      : HostBase<Executor>(opts), db_(&this->mgr_, ScaleOf(opts)) {
#if defined(MV3C_WAL_ENABLED)
    if (opts.wal) RegisterWalTables(cat_, db_);
#endif
    db_.Load();
  }

  const char* workload() const override { return "tpcc"; }

  bool Accepts(uint16_t opcode, size_t n) const override {
    return opcode == static_cast<uint16_t>(Op::kTpcc) &&
           n == sizeof(tpcc::TpccParams);
  }

  void Maintenance() override {
    this->mgr_.CollectGarbage();
    db_.CleanupNewOrderQueue();
  }

 protected:
  bool MakeProgram(uint16_t opcode, const uint8_t* params, size_t n,
                   typename Executor::Program* out) override {
    if (!Accepts(opcode, n)) return false;
    tpcc::TpccParams p;
    std::memcpy(&p, params, sizeof(p));
    if (p.type > tpcc::TpccTxnType::kStockLevel) return false;
    if (p.ol_cnt > tpcc::kMaxOrderLines) return false;
    if constexpr (std::is_same_v<Executor, Mv3cExecutor>) {
      *out = tpcc::Mv3cTpccProgram(db_, p);
    } else {
      *out = tpcc::OmvccTpccProgram(db_, p);
    }
    return true;
  }

 private:
  static tpcc::TpccScale ScaleOf(const HostOptions& opts) {
    tpcc::TpccScale s;
    if (opts.scale != 0) s.n_warehouses = opts.scale;
    return s;
  }

  tpcc::TpccDb db_;
#if defined(MV3C_WAL_ENABLED)
  wal::Catalog cat_;
#endif
};

template <typename Executor>
std::unique_ptr<WorkloadHost> MakeForEngine(const HostOptions& opts) {
  if (opts.workload == "banking") {
    return std::make_unique<BankingHost<Executor>>(opts);
  }
  if (opts.workload == "trading") {
    return std::make_unique<TradingHost<Executor>>(opts);
  }
  if (opts.workload == "tatp") {
    return std::make_unique<TatpHost<Executor>>(opts);
  }
  if (opts.workload == "tpcc") {
    return std::make_unique<TpccHost<Executor>>(opts);
  }
  std::fprintf(stderr, "unknown workload '%s'\n", opts.workload.c_str());
  return nullptr;
}

}  // namespace

std::unique_ptr<WorkloadHost> MakeWorkloadHost(const HostOptions& opts) {
#if !defined(MV3C_WAL_ENABLED)
  if (opts.wal) {
    std::fprintf(stderr, "--wal requires a -DMV3C_WAL=ON build\n");
    return nullptr;
  }
#endif
  if (opts.engine == "mv3c") return MakeForEngine<Mv3cExecutor>(opts);
  if (opts.engine == "omvcc") return MakeForEngine<OmvccExecutor>(opts);
  std::fprintf(stderr, "unknown engine '%s'\n", opts.engine.c_str());
  return nullptr;
}

}  // namespace mv3c::server
