#ifndef MV3C_COMMON_RETRY_POLICY_H_
#define MV3C_COMMON_RETRY_POLICY_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

#include "common/random.h"

namespace mv3c {

/// Starvation-free retry policy shared by every executor and driver.
///
/// MV3C's pitch is graceful recovery from conflict, but recovery that can
/// loop forever is not graceful: under extreme contention the OCC family
/// livelocks (CCBench, Tanabe et al., VLDB 2020). This policy bounds every
/// retry loop and defines the escalation ladder
///
///   repair -> exclusive repair (§4.3) -> full restart -> give up
///
/// with optional exponential backoff + jitter between rounds. "Give up"
/// surfaces as StepResult::kExhausted instead of an unbounded spin; the
/// caller decides whether to re-queue, shed, or report the transaction.
struct RetryPolicy {
  /// Total failed rounds (validation failures + write-write restarts) a
  /// transaction may burn before it gives up with kExhausted. 0 disables
  /// the budget (the pre-policy unbounded behavior; use only in tests).
  uint32_t max_attempts = 1024;

  /// After this many failed rounds a repair-capable engine escalates to
  /// §4.3 exclusive repair (validation + repair inside the commit critical
  /// section, guaranteeing commit on that attempt). Negative disables the
  /// escalation; engines without repair ignore it.
  int exclusive_repair_after = -1;

  /// After this many failed rounds the transaction abandons incremental
  /// repair and escalates to a full rollback-and-restart (a repair graph
  /// invalidated over and over is evidence the cached work is worthless).
  /// 0 disables the escalation; engines without repair ignore it.
  uint32_t restart_after = 0;

  /// First backoff delay in microseconds; 0 disables backoff entirely
  /// (the default: the single-threaded window driver is deterministic and
  /// benchmarks must not pay for sleeping).
  uint32_t backoff_initial_us = 0;
  /// Backoff cap in microseconds (exponential growth stops here).
  uint32_t backoff_max_us = 1024;
  /// Seed of the per-controller jitter PRNG; jitter draws are deterministic
  /// per (seed, round), keeping chaos runs reproducible.
  uint64_t jitter_seed = 0x5EEDF00DULL;

  /// Policy with every bound disabled — the historical spin-forever
  /// behavior, kept for tests that need to observe unbounded retry.
  static RetryPolicy Unbounded() {
    RetryPolicy p;
    p.max_attempts = 0;
    p.backoff_initial_us = 0;
    return p;
  }
};

/// What an executor should do after a failed round.
enum class RetryDecision {
  /// Repair (or re-run, for restart-based engines) and try again.
  kRetry,
  /// Escalate to §4.3 exclusive repair on the next commit attempt.
  kExclusiveRepair,
  /// Roll back everything and restart from scratch.
  kRestart,
  /// The attempt budget is exhausted: stop retrying, report kExhausted.
  kGiveUp,
};

/// Per-transaction retry state: counts failed rounds, applies the
/// escalation ladder, and performs exponential backoff with jitter.
/// Executors call Reset() per transaction and OnFailure() per failed round.
class RetryController {
 public:
  explicit RetryController(const RetryPolicy& policy = {})
      : policy_(policy), jitter_(policy.jitter_seed) {
    Reset();
  }

  void Reset() {
    attempts_ = 0;
    backoff_us_ = policy_.backoff_initial_us;
  }

  /// Records one failed round and returns the escalation decision. When
  /// backoff is enabled, sleeps here (between rounds, outside any lock).
  RetryDecision OnFailure() {
    ++attempts_;
    if (policy_.max_attempts != 0 && attempts_ >= policy_.max_attempts) {
      return RetryDecision::kGiveUp;
    }
    Backoff();
    if (policy_.restart_after != 0 && attempts_ >= policy_.restart_after) {
      return RetryDecision::kRestart;
    }
    if (policy_.exclusive_repair_after >= 0 &&
        attempts_ >=
            static_cast<uint32_t>(policy_.exclusive_repair_after)) {
      return RetryDecision::kExclusiveRepair;
    }
    return RetryDecision::kRetry;
  }

  /// Failed rounds since Reset().
  uint32_t attempts() const { return attempts_; }
  /// Total microseconds spent backing off since construction.
  uint64_t backoff_us_total() const { return backoff_us_total_; }
  const RetryPolicy& policy() const { return policy_; }

 private:
  void Backoff() {
    if (policy_.backoff_initial_us == 0) return;
    // Full jitter: sleep a uniform draw from [0, backoff_us_]; decorrelates
    // retry herds without ever waiting longer than the deterministic cap.
    const uint64_t us = jitter_.NextBounded(backoff_us_ + 1);
    if (us > 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(us));
      backoff_us_total_ += us;
    }
    backoff_us_ = std::min<uint64_t>(backoff_us_ * 2, policy_.backoff_max_us);
  }

  RetryPolicy policy_;
  Xoshiro256 jitter_;
  uint32_t attempts_ = 0;
  uint64_t backoff_us_ = 0;
  uint64_t backoff_us_total_ = 0;
};

}  // namespace mv3c

#endif  // MV3C_COMMON_RETRY_POLICY_H_
