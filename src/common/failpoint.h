#ifndef MV3C_COMMON_FAILPOINT_H_
#define MV3C_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>

#include "common/macros.h"

namespace mv3c {
namespace failpoint {

/// Deterministic failpoint injection for the MVCC substrate.
///
/// Named failpoints are compiled into the hot paths of the engines
/// (version-chain push, pre-validation, the in-lock delta validation of
/// TryCommit/TryCommitExclusive, Retimestamp, GC reclamation, cuckoo-map
/// insert). When the build enables them (`-DMV3C_FAILPOINTS=ON`), a site can
/// be *armed* with an action and a firing probability; evaluation is driven
/// by a single seeded xoshiro PRNG, so one seed reproduces the exact fault
/// schedule on a single-threaded driver (the reproducibility contract the
/// chaos tests rely on). When the build disables them (the default), the
/// `MV3C_FAILPOINT(site)` macro compiles to a constant `false` and the hot
/// paths carry zero cost.
///
/// Disarmed-but-compiled-in cost is one relaxed atomic load of a bitmask.

/// Compiled-in failpoint sites. Each names one hot-path location.
enum class Site : uint8_t {
  /// DataObjectBase::Push — firing mimics a spurious CAS/contention failure:
  /// the push reports a write-write conflict although none exists.
  kVersionChainPush = 0,
  /// Mv3cTransaction::PrevalidateAndMark / OmvccTransaction::Prevalidate —
  /// firing forces a validation failure outside the critical section.
  kPrevalidate,
  /// The delta revalidation inside TransactionManager::TryCommit — firing
  /// forces the in-lock validation to fail, sending the transaction back to
  /// repair/restart from inside the commit critical section.
  kCommitDelta,
  /// The delta revalidation inside TryCommitExclusive — firing forces the
  /// §4.3 in-lock repair path to run.
  kCommitExclusiveDelta,
  /// TransactionManager::Retimestamp — delay/yield only; widens the window
  /// between validation failure and the next repair round.
  kRetimestamp,
  /// GarbageCollector::Collect — firing skips one reclamation round,
  /// simulating a lagging collector racing active readers.
  kGcReclaim,
  /// CuckooMap::Insert — firing forces one retry of the optimistic insert
  /// loop, exercising the resize/path-invalidation code.
  kCuckooInsert,
  /// SILO/OCC commit validation — firing forces a validation failure.
  kSvCommitValidate,
  /// LogManager::FlushRound — firing truncates the epoch block mid-write
  /// (half its bytes reach the file) and then freezes the log, the classic
  /// torn-tail crash the recovery CRC check must detect.
  kWalShortWrite,
  /// LogManager::FlushRound — firing freezes the log after the block's
  /// bytes reached the file but before fsync: the block may or may not
  /// survive, recovery must accept either outcome.
  kWalCrashAfterAppend,
  /// LogManager::FlushRound — firing makes the epoch's fsync fail; the log
  /// freezes without acknowledging the epoch.
  kWalFsyncFail,
  /// Checkpointer::TakeCheckpoint — firing truncates a checkpoint table
  /// segment mid-write (half its bytes reach the file) and aborts the
  /// checkpoint, leaving a torn segment with no manifest pointing at it.
  kCkptCrashMidSegment,
  /// Checkpointer::TakeCheckpoint — firing aborts after every table
  /// segment is durable but before the manifest is published: the
  /// checkpoint data exists yet must be invisible to recovery.
  kCkptCrashBeforeManifest,
  /// Checkpointer::TakeCheckpoint — firing aborts after the manifest is
  /// published but before WAL truncation / old-checkpoint retirement:
  /// recovery must prefer the new manifest and tolerate the extra history.
  kCkptCrashAfterManifestBeforeTruncate,
  /// Checkpointer::TakeCheckpoint — firing makes a checkpoint fsync fail;
  /// the checkpoint aborts without publishing (and without truncating).
  kCkptFsyncFail,

  kNumSites,
};

inline constexpr int kNumSites = static_cast<int>(Site::kNumSites);

/// What an armed site does when it fires.
enum class Action : uint8_t {
  /// Report an injected failure to the call site (forced validation
  /// failure, spurious CAS failure — the site decides what failing means).
  kFail,
  /// Busy-wait for `delay_us` microseconds, then report no failure.
  kDelay,
  /// std::this_thread::yield(), then report no failure.
  kYield,
};

/// Arming configuration of one site.
struct Config {
  Action action = Action::kFail;
  /// Probability in [0,1] that an evaluation fires. 1.0 fires always.
  double probability = 1.0;
  /// Microseconds to spin for Action::kDelay.
  uint32_t delay_us = 0;
  /// Maximum number of firings before the site disarms itself; 0 means
  /// unlimited. Lets a test force exactly one fault.
  uint64_t max_trips = 0;
};

#if defined(MV3C_FAILPOINTS_ENABLED)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Reseeds the PRNG and clears all arming state, trip counters, and the
/// schedule hash. Call at the start of every chaos run.
void Reset(uint64_t seed);

/// Arms `site` with `config`. Evaluations at the site start rolling the
/// PRNG; every roll consumes PRNG state whether or not the site fires, so
/// the fault schedule is a pure function of (seed, evaluation order).
void Arm(Site site, const Config& config);

/// Disarms `site`; evaluations return to the one-load fast path.
void Disarm(Site site);

/// Disarms every site (keeps counters and the schedule hash).
void DisarmAll();

/// Number of times `site` fired since the last Reset.
uint64_t Trips(Site site);

/// Total firings across all sites since the last Reset.
uint64_t TotalTrips();

/// Number of evaluations (armed rolls, fired or not) at `site`.
uint64_t Evaluations(Site site);

/// FNV-1a hash over the sequence of (site, evaluation index) pairs that
/// fired; two runs with the same seed and workload must produce the same
/// value — the reproducibility contract checked by failpoint_test.
uint64_t ScheduleHash();

/// Human-readable site name (for logs and test diagnostics).
const char* Name(Site site);

namespace internal {
/// Bitmask of armed sites; bit i == Site(i) armed.
extern std::atomic<uint32_t> g_armed_mask;
/// Slow path: rolls the PRNG, performs delay/yield, bumps counters.
/// Returns true iff the site fired with Action::kFail.
bool EvaluateSlow(Site site);
}  // namespace internal

/// Evaluates `site`: false when the site is disarmed (one relaxed load),
/// otherwise rolls the PRNG and returns true iff an injected *failure*
/// should be reported (delay/yield actions perform their effect and return
/// false).
inline bool Evaluate(Site site) {
  const uint32_t mask =
      internal::g_armed_mask.load(std::memory_order_relaxed);
  if (MV3C_LIKELY((mask & (1u << static_cast<int>(site))) == 0)) {
    return false;
  }
  return internal::EvaluateSlow(site);
}

/// RAII arming for tests: arms on construction, disarms on destruction.
class ScopedArm {
 public:
  ScopedArm(Site site, const Config& config) : site_(site) {
    Arm(site, config);
  }
  ~ScopedArm() { Disarm(site_); }
  ScopedArm(const ScopedArm&) = delete;
  ScopedArm& operator=(const ScopedArm&) = delete;

 private:
  Site site_;
};

}  // namespace failpoint
}  // namespace mv3c

/// The hot-path hook. Compiles to a constant `false` (no code, no branch
/// after constant folding) unless the build defines MV3C_FAILPOINTS_ENABLED.
#if defined(MV3C_FAILPOINTS_ENABLED)
#define MV3C_FAILPOINT(site) (::mv3c::failpoint::Evaluate(site))
#else
#define MV3C_FAILPOINT(site) (false)
#endif

#endif  // MV3C_COMMON_FAILPOINT_H_
