#include "common/nurand.h"

namespace mv3c {

uint64_t TatpAConstant(uint64_t n) {
  // TATP spec: A = 65535 for population 1,000,000. For smaller populations
  // the non-uniformity constant shrinks so that A < n; use the largest
  // (2^k - 1) strictly below n, capped at 65535.
  uint64_t a = 65535;
  while (a >= n && a > 1) a >>= 1;
  return a;
}

}  // namespace mv3c
