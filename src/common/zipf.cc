#include "common/zipf.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace mv3c {

ZipfGenerator::ZipfGenerator(uint64_t n, double alpha)
    : n_(n), alpha_(alpha), cdf_(n) {
  MV3C_CHECK(n > 0);
  double sum = 0.0;
  for (uint64_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf_[i] = sum;
  }
  const double inv = 1.0 / sum;
  for (uint64_t i = 0; i < n; ++i) cdf_[i] *= inv;
  cdf_[n - 1] = 1.0;  // guard against rounding
}

uint64_t ZipfGenerator::Next(Xoshiro256& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<uint64_t>(it - cdf_.begin());
}

}  // namespace mv3c
