#ifndef MV3C_COMMON_CIPHER_H_
#define MV3C_COMMON_CIPHER_H_

#include <array>
#include <cstdint>
#include <cstring>

#include "common/random.h"

namespace mv3c {

/// Deterministic keyed stream cipher used by the Trading benchmark (paper
/// Example 5) in place of the unnamed cipher the paper's TPC-E-derived
/// workload uses for customer payloads.
///
/// What matters for the experiment is not cryptographic strength but that
/// encrypting/decrypting a payload costs a deterministic, non-trivial
/// number of CPU cycles: on a conflict, OMVCC re-decrypts and re-parses the
/// TradeOrder payload from scratch while MV3C's repair reuses the closure
/// context and skips that work entirely (§6.1.1). The cipher XORs the data
/// with a xoshiro keystream and runs kMixRounds of extra mixing per block
/// to model a real cipher's per-byte cost.
class StreamCipher {
 public:
  static constexpr int kMixRounds = 8;

  explicit StreamCipher(uint64_t key) : key_(key) {}

  /// In-place encrypt/decrypt (XOR stream: the operation is an involution).
  void Apply(uint8_t* data, size_t len) const {
    Xoshiro256 stream(key_);
    size_t i = 0;
    while (i < len) {
      uint64_t ks = stream.Next();
      for (int r = 0; r < kMixRounds; ++r) {
        ks ^= ks << 13;
        ks ^= ks >> 7;
        ks ^= ks << 17;
      }
      const size_t n = len - i < 8 ? len - i : 8;
      for (size_t b = 0; b < n; ++b) {
        data[i + b] ^= static_cast<uint8_t>(ks >> (8 * b));
      }
      i += n;
    }
  }

  template <size_t N>
  void Apply(std::array<uint8_t, N>* blob) const {
    Apply(blob->data(), N);
  }

  uint64_t key() const { return key_; }

 private:
  uint64_t key_;
};

}  // namespace mv3c

#endif  // MV3C_COMMON_CIPHER_H_
