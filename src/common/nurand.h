#ifndef MV3C_COMMON_NURAND_H_
#define MV3C_COMMON_NURAND_H_

#include <cstdint>

#include "common/random.h"

namespace mv3c {

/// Non-uniform random generators for the TPC-C and TATP benchmarks.
///
/// TPC-C clause 2.1.6 defines NURand(A, x, y) = (((random(0,A) |
/// random(x,y)) + C) % (y - x + 1)) + x, with per-run constants C. TATP
/// (v1.0, §2.2) selects subscriber ids with the same construction using
/// A = 65535 for a 1M-subscriber (scale factor 1) database; for smaller
/// populations A scales down proportionally.
class NuRand {
 public:
  /// Creates a generator with the given run constant `c`.
  explicit NuRand(uint64_t c) : c_(c) {}

  /// NURand(A, x, y) as defined by TPC-C clause 2.1.6.
  uint64_t Next(Xoshiro256& rng, uint64_t a, uint64_t x, uint64_t y) const {
    const uint64_t r1 = rng.NextBounded(a + 1);
    const uint64_t r2 = x + rng.NextBounded(y - x + 1);
    return (((r1 | r2) + c_) % (y - x + 1)) + x;
  }

 private:
  uint64_t c_;
};

/// Returns the TATP "A" constant for a subscriber population of size `n`,
/// per the TATP benchmark description (65535 for 1M subscribers, scaled
/// down to the nearest smaller power-of-two-minus-one for smaller n).
uint64_t TatpAConstant(uint64_t n);

}  // namespace mv3c

#endif  // MV3C_COMMON_NURAND_H_
