#ifndef MV3C_COMMON_SPINLOCK_H_
#define MV3C_COMMON_SPINLOCK_H_

#include <atomic>

namespace mv3c {

/// Tiny test-and-test-and-set spin lock.
///
/// Used for short critical sections (index shards, version-chain surgery)
/// where a futex-based mutex would dominate the protected work. Satisfies
/// the BasicLockable requirements so it composes with std::lock_guard.
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  bool try_lock() { return !flag_.exchange(true, std::memory_order_acquire); }

  void unlock() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace mv3c

#endif  // MV3C_COMMON_SPINLOCK_H_
