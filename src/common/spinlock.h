#ifndef MV3C_COMMON_SPINLOCK_H_
#define MV3C_COMMON_SPINLOCK_H_

#include <atomic>

#include "common/thread_safety.h"

namespace mv3c {

/// Tiny test-and-test-and-set spin lock.
///
/// Used for short critical sections (index shards, version-chain surgery)
/// where a futex-based mutex would dominate the protected work. Satisfies
/// the BasicLockable requirements so it composes with std::lock_guard, but
/// annotated code must hold it through SpinLockGuard (below) so clang's
/// thread-safety analysis sees the acquire/release pair; a structured lint
/// rule (scripts/lint/no_bare_lock_guard.query) rejects bare
/// std::lock_guard<SpinLock> in src/.
class MV3C_CAPABILITY("mutex") SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() MV3C_ACQUIRE() {
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  [[nodiscard]] bool try_lock() MV3C_TRY_ACQUIRE(true) {
    return !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() MV3C_RELEASE() { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII guard for SpinLock, visible to the thread-safety analysis
/// (std::lock_guard is unannotated, so acquisitions through it are invisible
/// to clang and silently weaken every MV3C_GUARDED_BY it should satisfy).
/// Drop-in for the std::lock_guard<SpinLock> pattern:
///
///   SpinLockGuard g(lock_);
class MV3C_SCOPED_CAPABILITY SpinLockGuard {
 public:
  explicit SpinLockGuard(SpinLock& lock) MV3C_ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  SpinLockGuard(const SpinLockGuard&) = delete;
  SpinLockGuard& operator=(const SpinLockGuard&) = delete;
  ~SpinLockGuard() MV3C_RELEASE() { lock_.unlock(); }

 private:
  SpinLock& lock_;
};

}  // namespace mv3c

#endif  // MV3C_COMMON_SPINLOCK_H_
