#ifndef MV3C_COMMON_MACROS_H_
#define MV3C_COMMON_MACROS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>

/// Size of a cache line on the target platform, used to pad hot shared
/// atomics so that independent counters do not false-share.
#define MV3C_CACHELINE_SIZE 64

#define MV3C_LIKELY(x) (__builtin_expect(!!(x), 1))
#define MV3C_UNLIKELY(x) (__builtin_expect(!!(x), 0))

/// Aborts the process with a message when an internal invariant is broken.
/// The library does not use C++ exceptions; invariant violations are
/// programmer errors and terminate the process, following the style guide.
#define MV3C_CHECK(cond)                                                  \
  do {                                                                    \
    if (MV3C_UNLIKELY(!(cond))) {                                         \
      std::fprintf(stderr, "MV3C_CHECK failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

#ifndef NDEBUG
#define MV3C_DCHECK(cond) MV3C_CHECK(cond)
#else
#define MV3C_DCHECK(cond) \
  do {                    \
  } while (0)
#endif

#endif  // MV3C_COMMON_MACROS_H_
