#ifndef MV3C_COMMON_ZIPF_H_
#define MV3C_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace mv3c {

/// Zipf-distributed integer generator over [0, n).
///
/// The Trading benchmark (paper Example 5) draws security ids from a Zipf
/// distribution whose alpha parameter controls the conflict ratio
/// (Figures 6(a) and 6(b)). This implementation precomputes the CDF once and
/// samples by binary search, so sampling is exact for any alpha >= 0.
class ZipfGenerator {
 public:
  /// Builds the CDF for `n` items with exponent `alpha`.
  ZipfGenerator(uint64_t n, double alpha);

  /// Returns a Zipf-distributed value in [0, n); rank 0 is the most popular.
  uint64_t Next(Xoshiro256& rng) const;

  uint64_t n() const { return n_; }
  double alpha() const { return alpha_; }

 private:
  uint64_t n_;
  double alpha_;
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i)
};

}  // namespace mv3c

#endif  // MV3C_COMMON_ZIPF_H_
