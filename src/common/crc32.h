#ifndef MV3C_COMMON_CRC32_H_
#define MV3C_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace mv3c::crc32 {

/// CRC32-C (Castagnoli, polynomial 0x1EDC6F41, reflected): the checksum
/// framing every WAL record and epoch block (src/wal/wal_format.h). The
/// Castagnoli polynomial is the one with hardware support — SSE4.2 ships a
/// dedicated `crc32` instruction — and better error-detection properties
/// than the zlib polynomial at the short message sizes log records have.
///
/// Dispatch is decided once at first use: the SSE4.2 instruction when the
/// CPU reports it, a constexpr-generated table otherwise. Both paths
/// produce identical values (crc32_test proves it), so log files move
/// between machines freely.

/// Extends a running checksum with `n` more bytes. The seed for the first
/// call is 0; feeding a buffer in arbitrary splits yields the same value
/// as one shot (the incremental contract wal recovery relies on).
uint32_t Extend(uint32_t crc, const void* data, size_t n);

/// One-shot convenience: Compute("123456789", 9) == 0xE3069283.
inline uint32_t Compute(const void* data, size_t n) {
  return Extend(0, data, n);
}

/// True if the SSE4.2 hardware path is in use (diagnostics only; both
/// paths are equivalent).
bool HardwareAccelerated();

}  // namespace mv3c::crc32

#endif  // MV3C_COMMON_CRC32_H_
