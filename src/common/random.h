#ifndef MV3C_COMMON_RANDOM_H_
#define MV3C_COMMON_RANDOM_H_

#include <cstdint>

namespace mv3c {

/// Fast, high-quality, deterministic PRNG (xoshiro256**).
///
/// Used by every workload generator. Deterministic seeding keeps benchmark
/// inputs reproducible across runs, which the paper relies on when comparing
/// MV3C and OMVCC on identical transaction streams.
class Xoshiro256 {
 public:
  /// Seeds the generator with splitmix64 expansion of `seed`.
  explicit Xoshiro256(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    // splitmix64 to fill the state; a zero state would be absorbing.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9E3779B97F4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  /// Returns the next 64 random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    // Lemire's multiply-shift rejection-free approximation is fine here:
    // the bias is < 2^-64 * bound which is irrelevant for workload gen.
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(Next()) * bound) >> 64);
  }

  /// Returns a uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Returns a uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace mv3c

#endif  // MV3C_COMMON_RANDOM_H_
