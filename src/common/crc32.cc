#include "common/crc32.h"

#include <array>
#include <cstring>

namespace mv3c::crc32 {
namespace {

// Reflected CRC32-C table, generated at compile time: entry i is the CRC
// state transition for input byte i (polynomial 0x1EDC6F41 reflected to
// 0x82F63B78).
constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> t{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? (0x82F63B78u ^ (c >> 1)) : (c >> 1);
    }
    t[i] = c;
  }
  return t;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

// `state` is the internal (pre-inversion) CRC register throughout.
uint32_t ExtendTable(uint32_t state, const uint8_t* p, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    state = kTable[(state ^ p[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

#if defined(__x86_64__)

__attribute__((target("sse4.2"))) uint32_t ExtendHw(uint32_t state,
                                                    const uint8_t* p,
                                                    size_t n) {
  uint64_t s = state;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);  // crc32q has no alignment requirement, the
    s = __builtin_ia32_crc32di(s, chunk);  // memcpy keeps UBSan quiet
    p += 8;
    n -= 8;
  }
  state = static_cast<uint32_t>(s);
  while (n > 0) {
    state = __builtin_ia32_crc32qi(state, *p);
    ++p;
    --n;
  }
  return state;
}

bool DetectHw() { return __builtin_cpu_supports("sse4.2") != 0; }

#else

uint32_t ExtendHw(uint32_t state, const uint8_t* p, size_t n) {
  return ExtendTable(state, p, n);
}

bool DetectHw() { return false; }

#endif  // __x86_64__

// One CPUID at first use; the branch below is perfectly predicted after.
const bool g_have_hw = DetectHw();

}  // namespace

uint32_t Extend(uint32_t crc, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t state = ~crc;
  state = g_have_hw ? ExtendHw(state, p, n) : ExtendTable(state, p, n);
  return ~state;
}

bool HardwareAccelerated() { return g_have_hw; }

}  // namespace mv3c::crc32
