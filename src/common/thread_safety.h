#ifndef MV3C_COMMON_THREAD_SAFETY_H_
#define MV3C_COMMON_THREAD_SAFETY_H_

/// Clang Thread Safety Analysis annotations (DESIGN §5e).
///
/// The MVCC substrate's correctness argument rests on a strict latch
/// discipline: version-chain surgery, cuckoo buckets, ordered-index shards,
/// the recently-committed list, and the arena slab lifecycle are each
/// touched only under their designated SpinLock or via documented atomics.
/// These macros turn that discipline from comments into compiler-checked
/// capabilities: under clang, `-Wthread-safety -Werror=thread-safety-analysis`
/// (added automatically by the top-level CMakeLists for clang builds and
/// gated in CI by the static-analysis job) rejects any access to a
/// `MV3C_GUARDED_BY(lock)` field without `lock` held, any call to a
/// `MV3C_REQUIRES(lock)` function outside the lock, and any scope that
/// leaks a capability.
///
/// Under gcc (which has no thread-safety analysis) every macro expands to
/// nothing, so the annotations are zero-cost documentation there; the two
/// compilers stay interchangeable and CI keeps both.
///
/// Naming follows the official clang capability vocabulary
/// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), prefixed MV3C_.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define MV3C_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#if !defined(MV3C_THREAD_ANNOTATION)
#define MV3C_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a class as a capability (lock) the analysis tracks by name.
#define MV3C_CAPABILITY(x) MV3C_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases
/// a capability (the annotated replacement for std::lock_guard<SpinLock>).
#define MV3C_SCOPED_CAPABILITY MV3C_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only with the given capability held.
#define MV3C_GUARDED_BY(x) MV3C_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability
/// (the pointer itself may be read freely).
#define MV3C_PT_GUARDED_BY(x) MV3C_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability and holds it on return.
#define MV3C_ACQUIRE(...) MV3C_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (which must be held on entry).
#define MV3C_RELEASE(...) MV3C_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function tries to acquire the capability; holds it iff it returned the
/// given boolean value.
#define MV3C_TRY_ACQUIRE(...) \
  MV3C_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability for the duration of the call.
#define MV3C_REQUIRES(...) \
  MV3C_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself;
/// catches self-deadlock on the non-reentrant SpinLock).
#define MV3C_EXCLUDES(...) MV3C_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Declares a runtime assertion that the capability is held.
#define MV3C_ASSERT_CAPABILITY(x) \
  MV3C_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the given capability.
#define MV3C_RETURN_CAPABILITY(x) MV3C_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for lock patterns the static analysis cannot express
/// (dynamically chosen stripe locks, conditional second acquisitions).
/// Every use must carry a comment saying what dynamic discipline applies
/// and which test (typically the TSan chaos suite) covers it.
#define MV3C_NO_THREAD_SAFETY_ANALYSIS \
  MV3C_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // MV3C_COMMON_THREAD_SAFETY_H_
