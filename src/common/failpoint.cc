#include "common/failpoint.h"

#include <chrono>
#include <thread>

#include "common/random.h"
#include "common/spinlock.h"
#include "common/thread_safety.h"

namespace mv3c {
namespace failpoint {
namespace internal {

std::atomic<uint32_t> g_armed_mask{0};

namespace {

struct SiteState {
  Config config;
  uint64_t trips = 0;
  uint64_t evaluations = 0;
};

/// All mutable registry state lives behind one spin lock. Only armed sites
/// reach it, so the lock is never contended in a healthy (disarmed) run;
/// under injection the serialization is exactly what makes the fault
/// schedule a pure function of the seed on a single-threaded driver.
struct Registry {
  SpinLock lock;
  Xoshiro256 prng MV3C_GUARDED_BY(lock) = Xoshiro256(0);
  SiteState sites[kNumSites] MV3C_GUARDED_BY(lock);
  uint64_t schedule_hash MV3C_GUARDED_BY(lock) =
      0xCBF29CE484222325ULL;  // FNV-1a offset basis
  uint64_t total_trips MV3C_GUARDED_BY(lock) = 0;
};

Registry& GetRegistry() {
  static Registry registry;
  return registry;
}

void SpinFor(uint32_t delay_us) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(delay_us);
  // Busy-wait: sleep granularity (ms on many kernels) would turn a
  // microsecond fault into a scheduling artifact.
  while (std::chrono::steady_clock::now() < until) {
  }
}

}  // namespace

bool EvaluateSlow(Site site) {
  Registry& reg = GetRegistry();
  Action action;
  uint32_t delay_us = 0;
  {
    SpinLockGuard g(reg.lock);
    // Re-check under the lock: the site may have disarmed concurrently.
    const uint32_t bit = 1u << static_cast<int>(site);
    if ((g_armed_mask.load(std::memory_order_relaxed) & bit) == 0) {
      return false;
    }
    SiteState& s = reg.sites[static_cast<int>(site)];
    ++s.evaluations;
    if (s.config.probability < 1.0 &&
        reg.prng.NextDouble() >= s.config.probability) {
      return false;
    }
    ++s.trips;
    ++reg.total_trips;
    // FNV-1a over (site, per-site trip index).
    reg.schedule_hash ^= static_cast<uint64_t>(site);
    reg.schedule_hash *= 0x100000001B3ULL;
    reg.schedule_hash ^= s.trips;
    reg.schedule_hash *= 0x100000001B3ULL;
    if (s.config.max_trips != 0 && s.trips >= s.config.max_trips) {
      g_armed_mask.fetch_and(~bit, std::memory_order_relaxed);
    }
    action = s.config.action;
    delay_us = s.config.delay_us;
  }
  switch (action) {
    case Action::kFail:
      return true;
    case Action::kDelay:
      SpinFor(delay_us);
      return false;
    case Action::kYield:
      std::this_thread::yield();
      return false;
  }
  return false;
}

}  // namespace internal

void Reset(uint64_t seed) {
  internal::Registry& reg = internal::GetRegistry();
  SpinLockGuard g(reg.lock);
  internal::g_armed_mask.store(0, std::memory_order_relaxed);
  reg.prng.Seed(seed);
  for (auto& s : reg.sites) s = internal::SiteState{};
  reg.schedule_hash = 0xCBF29CE484222325ULL;
  reg.total_trips = 0;
}

void Arm(Site site, const Config& config) {
  internal::Registry& reg = internal::GetRegistry();
  SpinLockGuard g(reg.lock);
  reg.sites[static_cast<int>(site)].config = config;
  internal::g_armed_mask.fetch_or(1u << static_cast<int>(site),
                                  std::memory_order_relaxed);
}

void Disarm(Site site) {
  internal::g_armed_mask.fetch_and(~(1u << static_cast<int>(site)),
                                   std::memory_order_relaxed);
}

void DisarmAll() {
  internal::g_armed_mask.store(0, std::memory_order_relaxed);
}

uint64_t Trips(Site site) {
  internal::Registry& reg = internal::GetRegistry();
  SpinLockGuard g(reg.lock);
  return reg.sites[static_cast<int>(site)].trips;
}

uint64_t TotalTrips() {
  internal::Registry& reg = internal::GetRegistry();
  SpinLockGuard g(reg.lock);
  return reg.total_trips;
}

uint64_t Evaluations(Site site) {
  internal::Registry& reg = internal::GetRegistry();
  SpinLockGuard g(reg.lock);
  return reg.sites[static_cast<int>(site)].evaluations;
}

uint64_t ScheduleHash() {
  internal::Registry& reg = internal::GetRegistry();
  SpinLockGuard g(reg.lock);
  return reg.schedule_hash;
}

const char* Name(Site site) {
  switch (site) {
    case Site::kVersionChainPush:
      return "version-chain-push";
    case Site::kPrevalidate:
      return "prevalidate";
    case Site::kCommitDelta:
      return "commit-delta-validation";
    case Site::kCommitExclusiveDelta:
      return "commit-exclusive-delta-validation";
    case Site::kRetimestamp:
      return "retimestamp";
    case Site::kGcReclaim:
      return "gc-reclaim";
    case Site::kCuckooInsert:
      return "cuckoo-insert";
    case Site::kSvCommitValidate:
      return "sv-commit-validate";
    case Site::kWalShortWrite:
      return "wal-short-write";
    case Site::kWalCrashAfterAppend:
      return "wal-crash-after-append";
    case Site::kWalFsyncFail:
      return "wal-fsync-fail";
    case Site::kCkptCrashMidSegment:
      return "ckpt-crash-mid-segment";
    case Site::kCkptCrashBeforeManifest:
      return "ckpt-crash-before-manifest";
    case Site::kCkptCrashAfterManifestBeforeTruncate:
      return "ckpt-crash-after-manifest-before-truncate";
    case Site::kCkptFsyncFail:
      return "ckpt-fsync-fail";
    case Site::kNumSites:
      break;
  }
  return "?";
}

}  // namespace failpoint
}  // namespace mv3c
