#ifndef MV3C_COMMON_STATUS_H_
#define MV3C_COMMON_STATUS_H_

namespace mv3c {

/// Outcome of executing one round of a transaction program body.
/// [[nodiscard]]: silently dropping an engine status is how the PR 1
/// workload-loader bug slipped in; every producer of these enums now
/// requires the caller to consume (or explicitly void-cast) the result.
///
/// The concurrency-control engines never use C++ exceptions; transaction
/// program bodies report their fate through this enum and the engine reacts
/// (commit attempt, rollback, restart, or repair).
enum class [[nodiscard]] ExecStatus {
  /// The program body ran to completion; the transaction may attempt commit.
  kOk,
  /// The program requested a rollback (e.g. insufficient funds). The
  /// transaction is rolled back and NOT restarted: this is a user abort.
  kUserAbort,
  /// A write-write conflict was detected under the fail-fast policy. The
  /// transaction is rolled back and restarted from scratch with a new
  /// start timestamp.
  kWriteWriteConflict,
};

/// Outcome of driving a transaction to completion (including restarts or
/// repair rounds, depending on the engine).
enum class [[nodiscard]] TxnOutcome {
  /// Committed successfully.
  kCommitted,
  /// Rolled back on the program's own request; never restarted.
  kUserAborted,
};

/// Outcome of one executor step (one slice of work under a driver). Shared
/// by all engines so that the threaded and window drivers are generic.
enum class [[nodiscard]] StepResult {
  kCommitted,
  kUserAborted,
  /// The transaction needs another step: validation failed (repair or
  /// restart pending) or it hit a fail-fast write-write conflict.
  kNeedsRetry,
  /// The transaction exceeded its retry-policy attempt budget and was
  /// rolled back and abandoned instead of spinning (starvation backstop;
  /// see common/retry_policy.h). Terminal, like kUserAborted.
  kExhausted,
};

inline const char* ToString(StepResult r) {
  switch (r) {
    case StepResult::kCommitted:
      return "Committed";
    case StepResult::kUserAborted:
      return "UserAborted";
    case StepResult::kNeedsRetry:
      return "NeedsRetry";
    case StepResult::kExhausted:
      return "Exhausted";
  }
  return "?";
}

inline const char* ToString(ExecStatus s) {
  switch (s) {
    case ExecStatus::kOk:
      return "Ok";
    case ExecStatus::kUserAbort:
      return "UserAbort";
    case ExecStatus::kWriteWriteConflict:
      return "WriteWriteConflict";
  }
  return "?";
}

}  // namespace mv3c

#endif  // MV3C_COMMON_STATUS_H_
