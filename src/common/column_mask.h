#ifndef MV3C_COMMON_COLUMN_MASK_H_
#define MV3C_COMMON_COLUMN_MASK_H_

#include <cstdint>

namespace mv3c {

/// Bitmask over the columns of one table row, at most 64 columns.
///
/// Supports the attribute-level predicate validation optimization (paper
/// §4.1): every version records which columns it modified, every predicate
/// records which columns it monitors (selection-criterion columns plus the
/// columns its closure consumes), and a disjoint intersection proves the
/// version cannot invalidate the predicate without running the full match.
class ColumnMask {
 public:
  constexpr ColumnMask() : bits_(0) {}
  constexpr explicit ColumnMask(uint64_t bits) : bits_(bits) {}

  /// Mask containing every column; used when column tracking is disabled
  /// or when a predicate's consumption set is unknown (pessimistic).
  static constexpr ColumnMask All() { return ColumnMask(~0ULL); }

  /// Mask for a single column index (0-based).
  static constexpr ColumnMask Of(int col) { return ColumnMask(1ULL << col); }

  constexpr ColumnMask operator|(ColumnMask o) const {
    return ColumnMask(bits_ | o.bits_);
  }
  ColumnMask& operator|=(ColumnMask o) {
    bits_ |= o.bits_;
    return *this;
  }
  constexpr bool Intersects(ColumnMask o) const {
    return (bits_ & o.bits_) != 0;
  }
  constexpr bool Contains(int col) const {
    return (bits_ & (1ULL << col)) != 0;
  }
  constexpr bool Empty() const { return bits_ == 0; }
  constexpr uint64_t bits() const { return bits_; }

  friend constexpr bool operator==(ColumnMask a, ColumnMask b) {
    return a.bits_ == b.bits_;
  }

 private:
  uint64_t bits_;
};

}  // namespace mv3c

#endif  // MV3C_COMMON_COLUMN_MASK_H_
