#ifndef MV3C_COMMON_EPOCH_CLOCK_H_
#define MV3C_COMMON_EPOCH_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace mv3c {

/// The shared epoch counter behind both the WAL's group-commit rounds and
/// the epoch component of commit timestamps (DESIGN §5h).
///
/// Three writers advance it, all monotonically:
///   * the WAL writer thread, one bump per flush round (BumpForFlush);
///   * the commit-TID allocator, when a timestamp rolls past the current
///     epoch's value range (AdvanceTo);
///   * recovery, re-pointing the clock past every replayed timestamp's
///     epoch (AdvanceTo).
/// All three are plain RMWs, so concurrent advances never lose a bump —
/// the WAL's `durable_epoch <= current - 1` invariant survives an
/// AdvanceTo jump because the next flush round reads the jumped value.
///
/// A TransactionManager owns one clock and hands it to its LogManager so
/// commit-timestamp epochs and redo-block epoch tags are drawn from the
/// same counter; standalone LogManagers (the single-version engines) fall
/// back to a private clock.
class EpochClock {
 public:
  EpochClock() = default;
  EpochClock(const EpochClock&) = delete;
  EpochClock& operator=(const EpochClock&) = delete;

  uint64_t Current() const { return epoch_.load(std::memory_order_acquire); }

  /// WAL writer only: publishes the next epoch and returns the one whose
  /// appends are about to be drained (see LogManager::FlushRound).
  uint64_t BumpForFlush() {
    return epoch_.fetch_add(1, std::memory_order_acq_rel);
  }

  /// Raises the clock to at least `target`; no-op if already past it.
  void AdvanceTo(uint64_t target) {
    uint64_t cur = epoch_.load(std::memory_order_relaxed);
    while (cur < target &&
           !epoch_.compare_exchange_weak(cur, target,
                                         std::memory_order_acq_rel)) {
    }
  }

  /// The underlying counter, for LogBuffer's tag reads (the buffer stores
  /// a pointer to the atomic, not to the clock, so the WAL layer's epoch
  /// protocol is unchanged by clock sharing).
  const std::atomic<uint64_t>* raw() const { return &epoch_; }

 private:
  /// Starts at 1 so epoch tag 0 keeps meaning "nothing logged".
  std::atomic<uint64_t> epoch_{1};
};

}  // namespace mv3c

#endif  // MV3C_COMMON_EPOCH_CLOCK_H_
