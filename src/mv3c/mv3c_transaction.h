#ifndef MV3C_MV3C_MV3C_TRANSACTION_H_
#define MV3C_MV3C_MV3C_TRANSACTION_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/retry_policy.h"
#include "common/status.h"
#include "mvcc/predicate.h"
#include "mvcc/transaction.h"
#include "mvcc/transaction_manager.h"
#include "obs/engine_stats.h"  // Mv3cStats (migrated to the obs layer)

namespace mv3c {

/// Engine configuration.
struct Mv3cConfig {
  /// §4.3 exclusive repair: after this many failed validation rounds the
  /// repair runs inside the commit critical section and the transaction is
  /// guaranteed to commit right after. Negative disables the optimization.
  int exclusive_repair_after = -1;
  /// Starvation-free retry policy: attempt budget, repair->restart
  /// escalation, and backoff. `retry.exclusive_repair_after` is ignored in
  /// favor of the knob above (which predates the policy layer).
  RetryPolicy retry{};
};

/// One entry of a scan result-set: the data object plus a snapshot copy of
/// its visible row.
template <typename TableT>
using ScanEntry = ScanResultEntry<TableT>;

/// The MV3C DSL front end (paper §2.2/§2.3 and Figure 3).
///
/// A transaction program is a callable `ExecStatus(Mv3cTransaction&)` that
/// issues reads through `Lookup`, `Scan` and `RangeScan`. Each read creates
/// an MV3C predicate and immediately executes the closure bound to it; data
/// manipulation inside a closure registers the created versions with the
/// enclosing predicate (V(X)), and nested reads become child predicates
/// (D(X)). The resulting runtime predicate graph drives the Validation
/// (Algorithm 1) and Repair (Algorithm 2) phases.
///
/// Closure rules (Definition 2.5): closures must be deterministic and must
/// capture outer context by value (transaction inputs, ancestor results);
/// they receive the predicate's fresh result on every (re-)execution.
class Mv3cTransaction {
 public:
  explicit Mv3cTransaction(TransactionManager* mgr)
      : mgr_(mgr), inner_(mgr) {}
  Mv3cTransaction(const Mv3cTransaction&) = delete;
  Mv3cTransaction& operator=(const Mv3cTransaction&) = delete;
  ~Mv3cTransaction() { ResetGraph(); }

  Transaction& inner() { return inner_; }
  TransactionManager* manager() const { return mgr_; }
  Mv3cStats& stats() { return stats_; }

  // ----------------------------------------------------------------------
  // Reads: predicate-creating DSL operations.
  // ----------------------------------------------------------------------

  /// Typed predicate node: a criterion plus its evaluation function stored
  /// by value, so executing or re-executing a closure costs one virtual
  /// call and no type-erasure allocations (§6.2 depends on this).
  template <typename Criterion, typename Eval>
  class Node final : public Criterion {
   public:
    template <typename... Args>
    explicit Node(Eval eval, Args&&... args)
        : Criterion(std::forward<Args>(args)...), eval_(std::move(eval)) {}
    ExecStatus Reexecute() override { return eval_(this); }

   private:
    Eval eval_;
  };

  /// Point lookup by primary key. The closure receives the data object (or
  /// nullptr if the key never existed) and the visible row (nullptr if
  /// absent or deleted):
  ///   ExecStatus closure(Mv3cTransaction&, TableT::Object*, const Row*)
  template <typename TableT, typename Closure>
  ExecStatus Lookup(TableT& table, const typename TableT::Key& key,
                    ColumnMask monitored, Closure closure) {
    auto eval = [this, &table, key,
                 closure = std::move(closure)](PredicateBase* self)
        -> ExecStatus {
      typename TableT::Object* obj = table.Find(key);
      const auto* v =
          obj == nullptr ? nullptr : inner_.ReadVersion(table, obj);
      return RunClosure(self, [&](Mv3cTransaction& t) {
        return closure(t, obj, v == nullptr ? nullptr : &v->data());
      });
    };
    using NodeT = Node<KeyEqCriterion<TableT>, decltype(eval)>;
    NodeT* p = pool_.Create<NodeT>(std::move(eval), &table, key);
    p->set_monitored(monitored);
    AttachToGraph(p);
    return p->Reexecute();
  }

  /// Full-table scan with a row filter (e.g. the Bonus program of the
  /// Banking example). The closure receives the result set:
  ///   ExecStatus closure(Mv3cTransaction&,
  ///                      const std::vector<ScanEntry<TableT>>&)
  /// When `reuse_result_set` is set (§4.2), repair patches the previous
  /// result set by re-reading only the objects touched by conflicting
  /// transactions instead of re-scanning the table.
  template <typename TableT, typename Closure>
  ExecStatus Scan(TableT& table,
                  std::function<bool(const typename TableT::Row&)> filter,
                  ColumnMask monitored, bool reuse_result_set,
                  Closure closure) {
    auto state = std::make_shared<ScanState<TableT>>();
    auto eval = [this, &table, filter, closure = std::move(closure),
                 state](PredicateBase* self) -> ExecStatus {
      if (self->reuse_result_set() && state->populated) {
        FixResultSet(table, self, filter, state.get());
      } else {
        state->entries.clear();
        table.ForEachObject([&](typename TableT::Object& obj) {
          const auto* v = obj.ReadVisible(inner_.start_ts(), inner_.txn_id());
          if (v != nullptr && filter(v->data())) {
            state->entries.push_back({&obj, v->data()});
          }
        });
        state->populated = true;
      }
      self->conflict_versions().clear();
      return RunClosure(self, [&](Mv3cTransaction& t) {
        return closure(t, state->entries);
      });
    };
    using NodeT = Node<RowFilterCriterion<TableT>, decltype(eval)>;
    NodeT* p = pool_.Create<NodeT>(std::move(eval), &table, filter);
    p->set_monitored(monitored);
    p->set_reuse_result_set(reuse_result_set);
    AttachToGraph(p);
    return p->Reexecute();
  }

  /// Ordered-index range scan: visits rows whose entry key in `index` lies
  /// in [lo, hi] (index maps secondary keys to table objects). `extract`
  /// derives the secondary key from (primary key, row) for validation;
  /// `limit` bounds the result-set size (0 = unlimited); `reverse` scans
  /// descending. Closure as in Scan.
  template <typename TableT, typename IndexT, typename Closure>
  ExecStatus RangeScan(
      TableT& table, const IndexT& index, const typename IndexT::KeyType& lo,
      const typename IndexT::KeyType& hi,
      typename KeyRangeCriterion<TableT, typename IndexT::KeyType>::Extract
          extract,
      std::function<bool(const typename TableT::Row&)> filter,
      ColumnMask monitored, size_t limit, bool reverse, Closure closure) {
    using SecKey = typename IndexT::KeyType;
    auto state = std::make_shared<ScanState<TableT>>();
    auto eval = [this, &table, &index, lo, hi, filter, limit, reverse,
                 closure = std::move(closure),
                 state](PredicateBase* self) -> ExecStatus {
      state->entries.clear();
      auto visit = [&](const SecKey&, typename TableT::Object* obj) -> bool {
        const auto* v = obj->ReadVisible(inner_.start_ts(), inner_.txn_id());
        if (v != nullptr && (filter == nullptr || filter(v->data()))) {
          state->entries.push_back({obj, v->data()});
          if (limit != 0 && state->entries.size() >= limit) return false;
        }
        return true;
      };
      if (reverse) {
        index.ScanRangeReverse(lo, hi, visit);
      } else {
        index.ScanRange(lo, hi, visit);
      }
      return RunClosure(self, [&](Mv3cTransaction& t) {
        return closure(t, state->entries);
      });
    };
    using NodeT = Node<KeyRangeCriterion<TableT, SecKey>, decltype(eval)>;
    NodeT* p = pool_.Create<NodeT>(std::move(eval), &table, lo, hi, extract,
                                   filter);
    p->set_monitored(monitored);
    AttachToGraph(p);
    return p->Reexecute();
  }

  // ----------------------------------------------------------------------
  // Writes: version-creating operations; must run inside a closure (or at
  // the root, for blind writes).
  // ----------------------------------------------------------------------

  /// Creates a new version of `obj` carrying `new_data`; registers it with
  /// the enclosing predicate. The table's write-write policy applies unless
  /// overridden per operation (§2.3.1: "can be overridden for each
  /// individual update operation") — Example 3's heuristic: writes early in
  /// the program on which everything else depends should fail fast, since
  /// their repair is equivalent to a restart anyway; late or independent
  /// writes should allow multiple uncommitted versions and be repaired.
  template <typename TableT>
  ExecStatus UpdateRow(TableT& table, typename TableT::Object* obj,
                       const typename TableT::Row& new_data,
                       ColumnMask modified, bool blind = false,
                       std::optional<WwPolicy> policy_override = {}) {
    Version<typename TableT::Row>* v = nullptr;
    const WriteStatus ws = inner_.Update(
        table, obj, new_data, modified, blind,
        policy_override.value_or(table.ww_policy()), &v);
    if (ws == WriteStatus::kWwConflict) {
      return ExecStatus::kWriteWriteConflict;
    }
    if (current_parent_ != nullptr) current_parent_->AddVersion(v);
    return ExecStatus::kOk;
  }

  /// Inserts a row; the version registers with the enclosing predicate.
  template <typename TableT>
  WriteStatus InsertRow(TableT& table, const typename TableT::Key& key,
                        const typename TableT::Row& data,
                        typename TableT::Object** out_obj = nullptr) {
    typename TableT::Object* obj = nullptr;
    Version<typename TableT::Row>* v = nullptr;
    const WriteStatus ws = inner_.Insert(table, key, data, &obj, &v);
    if (ws == WriteStatus::kOk) {
      if (current_parent_ != nullptr) current_parent_->AddVersion(v);
      if (out_obj != nullptr) *out_obj = obj;
    }
    return ws;
  }

  /// Deletes a row (tombstone version).
  template <typename TableT>
  ExecStatus DeleteRow(TableT& table, typename TableT::Object* obj) {
    Version<typename TableT::Row>* v = nullptr;
    const WriteStatus ws = inner_.Delete(table, obj, &v);
    if (ws == WriteStatus::kWwConflict) {
      return ExecStatus::kWriteWriteConflict;
    }
    if (current_parent_ != nullptr) current_parent_->AddVersion(v);
    return ExecStatus::kOk;
  }

  /// Blind update (§2.4.1): updates columns of the row with key `key`
  /// without creating a read predicate; `setter(Row&)` mutates a copy of
  /// the currently visible row. Never conflicts at validation time.
  ///
  /// Correctness caveat (documented in DESIGN.md): concurrent blind writes
  /// to the same object must modify the same column set — the version
  /// stores a full row image, so disjoint-column blind writes would
  /// last-writer-win the whole row. All paper workloads satisfy this.
  /// No-op if the key has no visible row.
  template <typename TableT, typename Setter>
  ExecStatus BlindUpdate(TableT& table, const typename TableT::Key& key,
                         ColumnMask modified, Setter setter) {
    typename TableT::Object* obj = table.Find(key);
    if (obj == nullptr) return ExecStatus::kOk;
    const auto* v = inner_.ReadVersion(table, obj);
    if (v == nullptr) return ExecStatus::kOk;
    typename TableT::Row copy = v->data();
    setter(copy);
    return UpdateRow(table, obj, copy, modified, /*blind=*/true);
  }

  // ----------------------------------------------------------------------
  // Lifecycle (driven by Mv3cExecutor).
  // ----------------------------------------------------------------------

  /// Runs the program body, building the predicate graph.
  template <typename Program>
  ExecStatus RunProgram(Program&& program) {
    current_parent_ = nullptr;
    return program(*this);
  }

  /// Pre-validation outside the critical section (§5 "Parallel
  /// Validation"): matches every concurrently-committed version against
  /// every predicate, marking invalid ones (Algorithm 1 runs to completion
  /// rather than stopping at the first conflict, §2.4). Returns true iff no
  /// predicate was invalidated.
  bool PrevalidateAndMark() {
    CommittedRecord* head = mgr_->rc_head();
    bool clean = ValidateAndMark(head);
    if (MV3C_FAILPOINT(failpoint::Site::kPrevalidate) &&
        ForceInvalidatePredicate()) {
      clean = false;
    }
    if (head != nullptr) inner_.set_validated_up_to(head->commit_ts);
    return clean;
  }

  /// Failpoint support: marks one valid predicate invalid, pretending a
  /// concurrent commit invalidated that read. Repair then prunes and
  /// re-executes its closure exactly as for a genuine conflict, so the
  /// injection perturbs scheduling without breaking serializability.
  /// Returns false (no injection possible) when every predicate is already
  /// invalid or the transaction has none (blind-write-only programs).
  bool ForceInvalidatePredicate() {
    for (PredicateBase* p : all_predicates_) {
      if (!p->invalid()) {
        p->set_invalid(true);
        ++stats_.invalidated_predicates;
        ++stats_.failpoint_trips;
        return true;
      }
    }
    return false;
  }

  /// Validation pass over records newer than the validated watermark
  /// starting at `from`; used by both pre-validation and the in-lock delta
  /// revalidation. Predicates are bucketed by table so each committed
  /// version is only matched against the predicates that could possibly
  /// cover it — unlike OMVCC, MV3C cannot stop at the first conflict
  /// (Algorithm 1 must find ALL invalid predicates), so pruning the match
  /// space is what keeps its validation competitive under contention.
  bool ValidateAndMark(CommittedRecord* from) {
    RebuildTableBucketsIfNeeded();
    bool clean = true;
    TransactionManager::ForEachConcurrentVersion(
        from, inner_.validated_up_to(), [&](const VersionBase& v) {
          const std::vector<PredicateBase*>* bucket = nullptr;
          for (const auto& [table, preds] : table_buckets_) {
            if (table == v.table()) {
              bucket = &preds;
              break;
            }
          }
          if (bucket == nullptr) return true;  // no predicate on this table
          for (PredicateBase* p : *bucket) {
            // Already-invalid predicates only need further matches when
            // result-set reuse wants the conflicting versions (§4.2).
            if (p->invalid() && !p->reuse_result_set()) continue;
            if (p->ConflictsWith(v)) {
              clean = false;
              if (!p->invalid()) {
                p->set_invalid(true);
                ++stats_.invalidated_predicates;
              }
              if (p->reuse_result_set()) {
                p->conflict_versions().push_back(&v);
              }
            }
          }
          return true;
        });
    return clean;
  }

  /// The Repair algorithm (Algorithm 2): propagates invalidity to
  /// descendants, prunes the invalid sub-graphs (removing their versions
  /// from the version chains and the undo buffer), and re-executes the
  /// frontier closures under the transaction's new start timestamp.
  ExecStatus Repair() {
    ++stats_.repair_rounds;
    // Creation order is a topological order, so one forward pass spreads
    // invalidity from parents to all descendants (Algorithm 1 L2 closure).
    for (PredicateBase* p : all_predicates_) {
      if (p->parent() != nullptr && p->parent()->invalid()) {
        p->set_invalid(true);
      }
    }
    // Frontier F: invalid nodes with no invalid ancestor (line 4).
    std::vector<PredicateBase*> frontier;
    for (PredicateBase* p : all_predicates_) {
      if (p->invalid() &&
          (p->parent() == nullptr || !p->parent()->invalid())) {
        frontier.push_back(p);
      }
    }
    MV3C_DCHECK(!frontier.empty());
    // Prune (lines 5-11): collect subtrees first, then drop their versions
    // and remove the nodes from the graph.
    std::unordered_set<PredicateBase*> removed;
    for (PredicateBase* f : frontier) {
      CollectSubtree(f, &removed);
      f->ForEachVersion([this](VersionBase* v) {
        ++stats_.versions_discarded;
        inner_.PruneVersion(v);
      });
      f->ClearVersions();
    }
    if (!removed.empty()) {
      for (PredicateBase* node : removed) {
        node->ForEachVersion([this](VersionBase* v) {
          ++stats_.versions_discarded;
          inner_.PruneVersion(v);
        });
        node->ClearVersions();
      }
      table_buckets_dirty_ = true;
      std::erase_if(all_predicates_, [&](PredicateBase* p) {
        return removed.count(p) != 0;
      });
      for (PredicateBase* f : frontier) f->ClearChildren();
      for (PredicateBase* node : removed) pool_.Destroy(node);
    }
    // Re-execute the frontier closures (lines 12-14); order is irrelevant
    // because frontier nodes are independent.
    for (PredicateBase* f : frontier) {
      f->set_invalid(false);
      ++stats_.reexecuted_closures;
      const ExecStatus st = f->Reexecute();
      if (st != ExecStatus::kOk) return st;
    }
    return ExecStatus::kOk;
  }

  /// True if the transaction wrote nothing; such transactions serialize at
  /// their start timestamp and skip validation.
  bool ReadOnly() const { return inner_.undo_buffer().empty(); }

  /// True if a validation pass has marked at least one predicate invalid
  /// and no repair has cleared it yet.
  bool HasInvalidPredicates() const {
    for (const PredicateBase* p : all_predicates_) {
      if (p->invalid()) return true;
    }
    return false;
  }

  /// Rolls back all writes and destroys the predicate graph (full restart
  /// or abort path). The discarded versions go back to the arena via the
  /// GC's grace period, same as repair-pruned ones.
  void RollbackAll() {
    stats_.versions_discarded += inner_.undo_buffer().size();
    inner_.RollbackWrites();
    ResetGraph();
  }

  /// Destroys the predicate graph; node memory returns to the pool for
  /// the next program (§6.2).
  void ResetGraph() {
    for (PredicateBase* p : all_predicates_) pool_.Destroy(p);
    roots_.clear();
    all_predicates_.clear();
    current_parent_ = nullptr;
    table_buckets_dirty_ = true;
  }

  /// Number of live predicates; tests/metrics.
  size_t PredicateCount() const { return all_predicates_.size(); }
  const std::vector<PredicateBase*>& predicates() const {
    return all_predicates_;
  }

 private:
  template <typename TableT>
  struct ScanState {
    std::vector<ScanEntry<TableT>> entries;
    bool populated = false;
  };

  void AttachToGraph(PredicateBase* node) {
    table_buckets_dirty_ = true;
    node->set_parent(current_parent_);
    if (current_parent_ != nullptr) {
      current_parent_->AddChild(node);
    } else {
      roots_.push_back(node);
    }
    all_predicates_.push_back(node);
  }

  /// Runs `body` with `p` as the enclosing predicate, so nested reads and
  /// writes attach to it.
  template <typename Body>
  ExecStatus RunClosure(PredicateBase* p, Body&& body) {
    PredicateBase* saved = current_parent_;
    current_parent_ = p;
    const ExecStatus st = body(*this);
    current_parent_ = saved;
    return st;
  }

  /// §4.2: patches a cached scan result set by re-reading only the objects
  /// named by the conflicting committed versions, instead of re-scanning.
  template <typename TableT>
  void FixResultSet(TableT& table, PredicateBase* p,
                    const std::function<bool(const typename TableT::Row&)>&
                        filter,
                    ScanState<TableT>* state) {
    ++stats_.result_set_fixes;
    std::unordered_set<DataObjectBase*> touched;
    for (const VersionBase* cv : p->conflict_versions()) {
      touched.insert(cv->object());
    }
    for (DataObjectBase* base : touched) {
      auto* obj = static_cast<typename TableT::Object*>(base);
      const auto* v = obj->ReadVisible(inner_.start_ts(), inner_.txn_id());
      const bool in_set = v != nullptr && filter(v->data());
      auto it = std::find_if(
          state->entries.begin(), state->entries.end(),
          [obj](const ScanEntry<TableT>& e) { return e.object == obj; });
      if (in_set) {
        if (it != state->entries.end()) {
          it->row = v->data();
        } else {
          state->entries.push_back({obj, v->data()});
        }
      } else if (it != state->entries.end()) {
        state->entries.erase(it);
      }
    }
  }

  static void CollectSubtree(PredicateBase* f,
                             std::unordered_set<PredicateBase*>* out) {
    f->ForEachChild([out](PredicateBase* child) {
      out->insert(child);
      CollectSubtree(child, out);
    });
  }

  void RebuildTableBucketsIfNeeded() {
    if (!table_buckets_dirty_) return;
    for (auto& [table, preds] : table_buckets_) preds.clear();
    for (PredicateBase* p : all_predicates_) {
      std::vector<PredicateBase*>* bucket = nullptr;
      for (auto& [table, preds] : table_buckets_) {
        if (table == p->table()) {
          bucket = &preds;
          break;
        }
      }
      if (bucket == nullptr) {
        table_buckets_.push_back({p->table(), {}});
        bucket = &table_buckets_.back().second;
      }
      bucket->push_back(p);
    }
    std::erase_if(table_buckets_,
                  [](const auto& e) { return e.second.empty(); });
    table_buckets_dirty_ = false;
  }

  TransactionManager* mgr_;
  Transaction inner_;
  PredicatePool pool_;
  std::vector<PredicateBase*> roots_;
  std::vector<PredicateBase*> all_predicates_;  // creation (= topo) order
  std::vector<std::pair<TableBase*, std::vector<PredicateBase*>>>
      table_buckets_;
  bool table_buckets_dirty_ = true;
  PredicateBase* current_parent_ = nullptr;
  Mv3cStats stats_;
};

}  // namespace mv3c

#endif  // MV3C_MV3C_MV3C_TRANSACTION_H_
