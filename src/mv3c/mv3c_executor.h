#ifndef MV3C_MV3C_MV3C_EXECUTOR_H_
#define MV3C_MV3C_MV3C_EXECUTOR_H_

#include <algorithm>
#include <functional>
#include <utility>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/retry_policy.h"
#include "common/status.h"
#include "mv3c/mv3c_transaction.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mv3c {

/// Drives one logical MV3C transaction through the lifecycle of paper
/// Figure 4: Start -> Execution -> Validation -> (Commit | Repair ->
/// Validation ...), with fail-fast write-write conflicts causing a full
/// rollback-and-restart and user aborts terminating the transaction.
///
/// The executor is deliberately *step*-based: `Begin()` draws the start
/// timestamp; each `Step()` performs the pending work (first execution,
/// repair, or restart re-execution) followed by one commit attempt. The
/// multi-threaded driver loops `Step()` until completion; the window driver
/// (Appendix C simulated concurrency) interleaves steps of many executors,
/// moving transactions that fail to the next window exactly as the paper
/// describes.
///
/// Every failed round consults the RetryController, which walks the
/// starvation-free escalation ladder (common/retry_policy.h):
/// repair -> §4.3 exclusive repair -> full restart -> kExhausted. The
/// budget makes Step() loops terminate even under adversarial contention
/// or failpoint injection; kExhausted rolls the transaction back and
/// removes it from the active table, exactly like a user abort, so the
/// system stays consistent when a transaction is shed.
///
/// Version memory on every path here — repair pruning, restart rollback,
/// abort, exhaustion — flows back to the manager's VersionArena: unlinked
/// versions via the GC grace period, never-linked ones (fail-fast push
/// conflicts) immediately inside Transaction's write primitives. The
/// executor itself never frees a version (DESIGN §5c); the per-transaction
/// churn shows up as Mv3cStats::versions_discarded.
class Mv3cExecutor {
 public:
  using Program = std::function<ExecStatus(Mv3cTransaction&)>;

  Mv3cExecutor(TransactionManager* mgr, Mv3cConfig config = {})
      : config_(config), ctrl_(MergedPolicy(config)), txn_(mgr) {
    obs::RegisterCounters(&metrics_, &txn_.stats());
  }

  /// Installs the program of the next logical transaction.
  void Reset(Program program) {
    program_ = std::move(program);
    phase_ = Phase::kExecute;
    // Threshold 0 means "exclusive from the very first commit attempt".
    exclusive_mode_ = config_.exclusive_repair_after == 0;
    ctrl_.Reset();
    txn_.ResetGraph();  // drop any graph left from the previous transaction
  }

  /// Starts the transaction (draws start timestamp and transaction id).
  void Begin() {
    txn_.manager()->Begin(&txn_.inner());
    // Phase timing is sampled per transaction (obs::kPhaseSampleEvery):
    // every phase of a sampled transaction is timed, unsampled ones skip
    // the TSC reads entirely via the null-registry timer.
    timed_metrics_ = sampler_.Tick() ? &metrics_ : nullptr;
    MV3C_TRACE_EVENT(obs::TraceEvent::kBegin, txn_.inner().txn_id());
  }

  /// Performs the pending work and one validation/commit attempt. Each
  /// sub-step runs under a scoped phase timer (obs::Phase) so benchmarks
  /// can report where per-transaction time goes (DESIGN §5d).
  StepResult Step() {
    ExecStatus st = ExecStatus::kOk;
    switch (phase_) {
      case Phase::kExecute:
      case Phase::kRestart: {
        obs::ScopedPhaseTimer timer(timed_metrics_, obs::Phase::kExecute);
        st = txn_.RunProgram(program_);
        break;
      }
      case Phase::kRepair: {
        obs::ScopedPhaseTimer timer(timed_metrics_, obs::Phase::kRepair);
        MV3C_TRACE_EVENT(obs::TraceEvent::kRepairRound,
                         txn_.inner().txn_id());
        // Durability note: repaired transactions log only their *final*
        // write set (the post-repair CommittedRecord); this flag just
        // stamps kFlagRepaired on those records for tests/wal_dump.
        txn_.inner().set_wal_repaired();
        st = txn_.Repair();
        break;
      }
    }
    if (st == ExecStatus::kUserAbort) return FinishUserAbort();
    if (st == ExecStatus::kWriteWriteConflict) return BeginRestart();

    if (txn_.ReadOnly()) {
      txn_.manager()->CommitReadOnly(&txn_.inner());
      last_commit_ts_ = txn_.inner().start_ts();
      ++txn_.stats().commits;
      txn_.ResetGraph();
      MV3C_TRACE_EVENT(obs::TraceEvent::kCommit, txn_.inner().txn_id());
      return StepResult::kCommitted;
    }

    if (exclusive_mode_) {
      // §4.3: the bulk of validation still runs outside the lock (marking
      // only); the in-lock pass covers the delta, and if anything is
      // invalid the repair itself runs inside the critical section so the
      // transaction is guaranteed to commit right after.
      ++txn_.stats().exclusive_repairs;
      {
        obs::ScopedPhaseTimer timer(timed_metrics_, obs::Phase::kValidate);
        txn_.PrevalidateAndMark();
      }
      ExecStatus xs;
      {
        obs::ScopedPhaseTimer commit_timer(timed_metrics_,
                                           obs::Phase::kCommit);
        xs = txn_.manager()->TryCommitExclusive(
            &txn_.inner(),
            [this](CommittedRecord* head) {
              bool delta_clean = txn_.ValidateAndMark(head);
              if (MV3C_FAILPOINT(failpoint::Site::kCommitExclusiveDelta) &&
                  txn_.ForceInvalidatePredicate()) {
                delta_clean = false;
              }
              return delta_clean && !txn_.HasInvalidPredicates();
            },
            [this]() {
              ++txn_.stats().validation_failures;
              MV3C_TRACE_EVENT(obs::TraceEvent::kValidateFail,
                               txn_.inner().txn_id());
              txn_.inner().set_wal_repaired();  // §4.3 in-lock repair
              return txn_.Repair();
            },
            &last_commit_ts_);
      }
      if (xs == ExecStatus::kOk) {
        ++txn_.stats().commits;
        txn_.ResetGraph();
        MV3C_TRACE_EVENT(obs::TraceEvent::kCommit, txn_.inner().txn_id());
        // Outside the kCommit timer: the group-commit wait is epoch-scale
        // and would swamp the commit-phase histogram.
        (void)txn_.manager()->WalWaitDurable(&txn_.inner());
        return StepResult::kCommitted;
      }
      if (xs == ExecStatus::kUserAbort) return FinishUserAbort();
      return BeginRestart();
    }
    {
      obs::ScopedPhaseTimer timer(timed_metrics_, obs::Phase::kValidate);
      if (!txn_.PrevalidateAndMark()) {
        // Conflicts found outside the critical section: draw the new start
        // timestamp (§2.5) and repair in the next step.
        txn_.manager()->Retimestamp(&txn_.inner());
        return FailRound();
      }
    }
    bool committed;
    {
      obs::ScopedPhaseTimer timer(timed_metrics_, obs::Phase::kCommit);
      committed = txn_.manager()->TryCommit(
          &txn_.inner(),
          [this](CommittedRecord* head) {
            bool ok = txn_.ValidateAndMark(head);
            if (MV3C_FAILPOINT(failpoint::Site::kCommitDelta) &&
                txn_.ForceInvalidatePredicate()) {
              ok = false;
            }
            return ok;
          },
          &last_commit_ts_);
    }
    if (committed) {
      ++txn_.stats().commits;
      txn_.ResetGraph();
      MV3C_TRACE_EVENT(obs::TraceEvent::kCommit, txn_.inner().txn_id());
      (void)txn_.manager()->WalWaitDurable(&txn_.inner());
      return StepResult::kCommitted;
    }
    return FailRound();
  }

  /// Convenience driver: runs the transaction to completion. The loop is
  /// bounded by the retry policy's attempt budget (kExhausted is terminal).
  StepResult Run(Program program) {
    Reset(std::move(program));
    Begin();
    StepResult r;
    do {
      r = Step();
    } while (r == StepResult::kNeedsRetry);
    return r;
  }

  /// Run() for callers that cannot tolerate failure (population loaders,
  /// test fixtures): checks the transaction committed. [[nodiscard]] on
  /// StepResult forces every other Run call site to consume its result.
  void MustRun(Program program) {
    MV3C_CHECK(Run(std::move(program)) == StepResult::kCommitted);
  }

  /// Starvation backstop for drivers: abandons the in-flight transaction
  /// (rollback, leave the active table) and reports kExhausted.
  StepResult GiveUp() { return FinishExhausted(); }

  Mv3cTransaction& txn() { return txn_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  const Mv3cStats& stats() const {
    return const_cast<Mv3cExecutor*>(this)->txn_.stats();
  }
  Timestamp last_commit_ts() const { return last_commit_ts_; }
  uint32_t attempts() const { return ctrl_.attempts(); }
  const RetryPolicy& retry_policy() const { return ctrl_.policy(); }

 private:
  enum class Phase { kExecute, kRepair, kRestart };

  /// The executor predates the policy layer; its `exclusive_repair_after`
  /// knob keeps working by overriding the policy's copy.
  static RetryPolicy MergedPolicy(const Mv3cConfig& config) {
    RetryPolicy p = config.retry;
    p.exclusive_repair_after = config.exclusive_repair_after;
    return p;
  }

  StepResult FinishUserAbort() {
    txn_.RollbackAll();
    txn_.manager()->FinishAborted(&txn_.inner());
    ++txn_.stats().user_aborts;
    MV3C_TRACE_EVENT(obs::TraceEvent::kAbort, txn_.inner().txn_id());
    return StepResult::kUserAborted;
  }

  StepResult FinishExhausted() {
    txn_.RollbackAll();
    txn_.manager()->FinishAborted(&txn_.inner());
    ++txn_.stats().exhausted;
    MV3C_TRACE_EVENT(obs::TraceEvent::kAbort, txn_.inner().txn_id());
    return StepResult::kExhausted;
  }

  /// Records one failed round with the controller and mirrors its state
  /// into the stats counters; returns the escalation decision.
  RetryDecision NoteFailure() {
    const RetryDecision d = ctrl_.OnFailure();
    Mv3cStats& s = txn_.stats();
    s.max_rounds = std::max<uint64_t>(s.max_rounds, ctrl_.attempts());
    s.backoff_us = ctrl_.backoff_us_total();
    if (d == RetryDecision::kExclusiveRepair && !exclusive_mode_) {
      exclusive_mode_ = true;
      ++s.escalations;
    }
    return d;
  }

  StepResult BeginRestart() {
    const RetryDecision d = NoteFailure();
    if (d == RetryDecision::kGiveUp) return FinishExhausted();
    txn_.RollbackAll();
    txn_.manager()->Restart(&txn_.inner());
    ++txn_.stats().ww_restarts;
    phase_ = Phase::kRestart;
    return StepResult::kNeedsRetry;
  }

  StepResult FailRound() {
    ++txn_.stats().validation_failures;
    MV3C_TRACE_EVENT(obs::TraceEvent::kValidateFail, txn_.inner().txn_id());
    const RetryDecision d = NoteFailure();
    switch (d) {
      case RetryDecision::kGiveUp:
        return FinishExhausted();
      case RetryDecision::kRestart:
        // Escalation past repair: the predicate graph kept getting
        // re-invalidated, so throw it away and re-execute from scratch.
        ++txn_.stats().escalations;
        txn_.RollbackAll();
        txn_.manager()->Restart(&txn_.inner());
        phase_ = Phase::kRestart;
        return StepResult::kNeedsRetry;
      case RetryDecision::kExclusiveRepair:
      case RetryDecision::kRetry:
        phase_ = Phase::kRepair;
        return StepResult::kNeedsRetry;
    }
    return StepResult::kNeedsRetry;
  }

  Mv3cConfig config_;
  RetryController ctrl_;
  Mv3cTransaction txn_;
  Program program_;
  Phase phase_ = Phase::kExecute;
  bool exclusive_mode_ = false;
  Timestamp last_commit_ts_ = 0;
  // Executor registries are single-threaded (one executor per window
  // slot); recording skips the lock. timed_metrics_ is the per-transaction
  // sampling decision: &metrics_ or null, refreshed in Begin().
  obs::MetricsRegistry metrics_{obs::RecordSync::kUnsynchronized};
  obs::MetricsRegistry* timed_metrics_ = nullptr;
  obs::PhaseSampler sampler_;
};

}  // namespace mv3c

#endif  // MV3C_MV3C_MV3C_EXECUTOR_H_
