#ifndef MV3C_MV3C_MV3C_EXECUTOR_H_
#define MV3C_MV3C_MV3C_EXECUTOR_H_

#include <functional>
#include <utility>

#include "common/macros.h"
#include "common/status.h"
#include "mv3c/mv3c_transaction.h"

namespace mv3c {

/// Drives one logical MV3C transaction through the lifecycle of paper
/// Figure 4: Start -> Execution -> Validation -> (Commit | Repair ->
/// Validation ...), with fail-fast write-write conflicts causing a full
/// rollback-and-restart and user aborts terminating the transaction.
///
/// The executor is deliberately *step*-based: `Begin()` draws the start
/// timestamp; each `Step()` performs the pending work (first execution,
/// repair, or restart re-execution) followed by one commit attempt. The
/// multi-threaded driver loops `Step()` until completion; the window driver
/// (Appendix C simulated concurrency) interleaves steps of many executors,
/// moving transactions that fail to the next window exactly as the paper
/// describes.
class Mv3cExecutor {
 public:
  using Program = std::function<ExecStatus(Mv3cTransaction&)>;

  Mv3cExecutor(TransactionManager* mgr, Mv3cConfig config = {})
      : config_(config), txn_(mgr) {}

  /// Installs the program of the next logical transaction.
  void Reset(Program program) {
    program_ = std::move(program);
    phase_ = Phase::kExecute;
    failed_rounds_ = 0;
    txn_.ResetGraph();  // drop any graph left from the previous transaction
  }

  /// Starts the transaction (draws start timestamp and transaction id).
  void Begin() { txn_.manager()->Begin(&txn_.inner()); }

  /// Performs the pending work and one validation/commit attempt.
  StepResult Step() {
    ExecStatus st = ExecStatus::kOk;
    switch (phase_) {
      case Phase::kExecute:
      case Phase::kRestart:
        st = txn_.RunProgram(program_);
        break;
      case Phase::kRepair:
        st = txn_.Repair();
        break;
    }
    if (st == ExecStatus::kUserAbort) return FinishUserAbort();
    if (st == ExecStatus::kWriteWriteConflict) return BeginRestart();

    if (txn_.ReadOnly()) {
      txn_.manager()->CommitReadOnly(&txn_.inner());
      last_commit_ts_ = txn_.inner().start_ts();
      ++txn_.stats().commits;
      txn_.ResetGraph();
      return StepResult::kCommitted;
    }

    const bool exclusive =
        config_.exclusive_repair_after >= 0 &&
        failed_rounds_ >= config_.exclusive_repair_after;

    if (exclusive) {
      // §4.3: the bulk of validation still runs outside the lock (marking
      // only); the in-lock pass covers the delta, and if anything is
      // invalid the repair itself runs inside the critical section so the
      // transaction is guaranteed to commit right after.
      ++txn_.stats().exclusive_repairs;
      txn_.PrevalidateAndMark();
      const ExecStatus xs = txn_.manager()->TryCommitExclusive(
          &txn_.inner(),
          [this](CommittedRecord* head) {
            const bool delta_clean = txn_.ValidateAndMark(head);
            return delta_clean && !txn_.HasInvalidPredicates();
          },
          [this]() {
            ++txn_.stats().validation_failures;
            return txn_.Repair();
          },
          &last_commit_ts_);
      if (xs == ExecStatus::kOk) {
        ++txn_.stats().commits;
        txn_.ResetGraph();
        return StepResult::kCommitted;
      }
      if (xs == ExecStatus::kUserAbort) return FinishUserAbort();
      return BeginRestart();
    }
    if (!txn_.PrevalidateAndMark()) {
      // Conflicts found outside the critical section: draw the new start
      // timestamp (§2.5) and repair in the next step.
      txn_.manager()->Retimestamp(&txn_.inner());
      return FailRound();
    }
    if (txn_.manager()->TryCommit(
            &txn_.inner(),
            [this](CommittedRecord* head) {
              return txn_.ValidateAndMark(head);
            },
            &last_commit_ts_)) {
      ++txn_.stats().commits;
      txn_.ResetGraph();
      return StepResult::kCommitted;
    }
    return FailRound();
  }

  /// Convenience driver: runs the transaction to completion.
  StepResult Run(Program program) {
    Reset(std::move(program));
    Begin();
    StepResult r;
    do {
      r = Step();
    } while (r == StepResult::kNeedsRetry);
    return r;
  }

  Mv3cTransaction& txn() { return txn_; }
  const Mv3cStats& stats() const {
    return const_cast<Mv3cExecutor*>(this)->txn_.stats();
  }
  Timestamp last_commit_ts() const { return last_commit_ts_; }

 private:
  enum class Phase { kExecute, kRepair, kRestart };

  StepResult FinishUserAbort() {
    txn_.RollbackAll();
    txn_.manager()->FinishAborted(&txn_.inner());
    ++txn_.stats().user_aborts;
    return StepResult::kUserAborted;
  }

  StepResult BeginRestart() {
    txn_.RollbackAll();
    txn_.manager()->Restart(&txn_.inner());
    ++txn_.stats().ww_restarts;
    phase_ = Phase::kRestart;
    return StepResult::kNeedsRetry;
  }

  StepResult FailRound() {
    ++txn_.stats().validation_failures;
    ++failed_rounds_;
    phase_ = Phase::kRepair;
    return StepResult::kNeedsRetry;
  }

  Mv3cConfig config_;
  Mv3cTransaction txn_;
  Program program_;
  Phase phase_ = Phase::kExecute;
  int failed_rounds_ = 0;
  Timestamp last_commit_ts_ = 0;
};

}  // namespace mv3c

#endif  // MV3C_MV3C_MV3C_EXECUTOR_H_
