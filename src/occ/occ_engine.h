#ifndef MV3C_OCC_OCC_ENGINE_H_
#define MV3C_OCC_OCC_ENGINE_H_

#include <atomic>
#include <mutex>

#include "obs/metrics.h"
#include "sv/sv_transaction.h"

namespace mv3c {

/// Classic OCC baseline (Kung–Robinson style with serial validation): the
/// read phase runs lock-free; validation and the write phase execute in a
/// single global critical section, which makes the check "did any record I
/// read change since I read it, and did any scanned index node change"
/// atomic with the installation of the write set.
class OccEngine {
 public:
  /// Validates and commits `t`. Returns true on commit; on false the
  /// caller rolls back (clears the sets) and restarts the program.
  /// The validation section records into the engine's kValidate histogram,
  /// sampled 1-in-kPhaseSampleEvery per calling thread; since OCC shares
  /// one engine across executors the registry stays synchronized for the
  /// (rare, post-measurement) recording step.
  bool Commit(sv::SvTransaction& t) {
    thread_local obs::PhaseSampler sampler;
    std::lock_guard<std::mutex> g(mu_);
    {
      obs::ScopedPhaseTimer timer(sampler.Tick() ? &metrics_ : nullptr,
                                  obs::Phase::kValidate);
      for (const sv::SvRead& r : t.reads()) {
        if (r.tid_word->load(std::memory_order_acquire) != r.observed) {
          return false;
        }
      }
      for (const sv::SvNode& n : t.nodes()) {
        if (n.version->load(std::memory_order_acquire) != n.observed) {
          return false;
        }
      }
    }
    const uint64_t commit_tid =
        tid_seq_.fetch_add(1, std::memory_order_relaxed);
    sv::InstallWrites(t, commit_tid);
    return true;
  }

  obs::MetricsRegistry& metrics() { return metrics_; }

 private:
  std::mutex mu_;
  std::atomic<uint64_t> tid_seq_{2};
  obs::MetricsRegistry metrics_;
};

}  // namespace mv3c

#endif  // MV3C_OCC_OCC_ENGINE_H_
