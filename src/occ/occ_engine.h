#ifndef MV3C_OCC_OCC_ENGINE_H_
#define MV3C_OCC_OCC_ENGINE_H_

#include <atomic>
#include <mutex>

#include "obs/metrics.h"
#include "sv/sv_transaction.h"

#if defined(MV3C_WAL_ENABLED)
#include "wal/log_sv.h"
#endif

namespace mv3c {

/// Classic OCC baseline (Kung–Robinson style with serial validation): the
/// read phase runs lock-free; validation and the write phase execute in a
/// single global critical section, which makes the check "did any record I
/// read change since I read it, and did any scanned index node change"
/// atomic with the installation of the write set.
class OccEngine {
 public:
  /// Validates and commits `t`. Returns true on commit; on false the
  /// caller rolls back (clears the sets) and restarts the program.
  /// `timing_sampled` is the calling executor's per-*transaction* sampling
  /// decision (obs::kPhaseSampleEvery): a sampled transaction has ALL its
  /// phases timed, an unsampled one none — an engine-local per-phase
  /// sampler would decouple the validate samples from the execute/commit
  /// samples and bias the phase-breakdown ratios. Since OCC shares one
  /// engine across executors the registry stays synchronized for the
  /// (rare, post-measurement) recording step. `*commit_tid_out` (optional)
  /// receives the commit TID on success (the WAL's commit_ts for SV);
  /// `*wal_epoch_out` the redo records' epoch tag (0 when nothing logged).
  bool Commit(sv::SvTransaction& t, bool timing_sampled = false,
              uint64_t* commit_tid_out = nullptr,
              uint64_t* wal_epoch_out = nullptr) {
    std::lock_guard<std::mutex> g(mu_);
    {
      obs::ScopedPhaseTimer timer(timing_sampled ? &metrics_ : nullptr,
                                  obs::Phase::kValidate);
      for (const sv::SvRead& r : t.reads()) {
        if (r.tid_word->load(std::memory_order_acquire) != r.observed) {
          return false;
        }
      }
      for (const sv::SvNode& n : t.nodes()) {
        if (n.version->load(std::memory_order_acquire) != n.observed) {
          return false;
        }
      }
    }
    const uint64_t commit_tid =
        tid_seq_.fetch_add(1, std::memory_order_relaxed);
    // Serialize redo and install in one buffer-lock hold (wal/log_sv.h):
    // the mutex keeps the writes invisible to dependent committers until
    // after our epoch tag is drawn (causal epoch prefixes), and the shared
    // lock hold keeps fuzzy checkpoints from missing commits whose epochs
    // they truncate.
#if defined(MV3C_WAL_ENABLED)
    if (wal_ != nullptr) {
      const uint64_t e =
          wal::LogSvCommitAndInstall(*wal_, wal_buf_, t, commit_tid);
      if (wal_epoch_out != nullptr) *wal_epoch_out = e;
    } else {
      sv::InstallWrites(t, commit_tid);
    }
#else
    (void)wal_epoch_out;
    sv::InstallWrites(t, commit_tid);
#endif
    if (commit_tid_out != nullptr) *commit_tid_out = commit_tid;
    return true;
  }

  obs::MetricsRegistry& metrics() { return metrics_; }

#if defined(MV3C_WAL_ENABLED)
  /// Attaches the group-commit log; commits of WAL-registered tables start
  /// serializing redo records. One staging buffer per engine is enough —
  /// the validation mutex already serializes committers.
  void set_wal(wal::LogManager* lm) { wal_ = lm; }
#endif

 private:
  std::mutex mu_;
  std::atomic<uint64_t> tid_seq_{2};
  obs::MetricsRegistry metrics_;
#if defined(MV3C_WAL_ENABLED)
  wal::LogManager* wal_ = nullptr;
  wal::LogBuffer* wal_buf_ = nullptr;  // guarded by mu_
#endif
};

}  // namespace mv3c

#endif  // MV3C_OCC_OCC_ENGINE_H_
