#ifndef MV3C_INDEX_ORDERED_INDEX_H_
#define MV3C_INDEX_ORDERED_INDEX_H_

#include <atomic>
#include <cstdint>
#include <map>

#include "common/macros.h"
#include "common/spinlock.h"
#include "common/thread_safety.h"

namespace mv3c {

/// Partition extractor that maps every key to one partition; usable when an
/// index is small or scanned rarely enough that sharding does not pay off.
struct SinglePartition {
  template <typename K>
  size_t operator()(const K&) const {
    return 0;
  }
};

/// Concurrent ordered secondary index, sharded by a key-prefix partition.
///
/// TPC-C needs ordered access paths the primary-key cuckoo index cannot
/// serve: customers by (w, d, last-name), orders by (w, d, c, o-id desc),
/// the oldest undelivered NEW-ORDER per (w, d), and recent order-lines for
/// STOCK-LEVEL. All of these scans are confined to one logical partition
/// (a warehouse/district prefix of the composite key), which this index
/// exploits: keys are sharded by `Partition(key)` and a range scan may only
/// span keys with `Partition(lo) == Partition(hi)`.
///
/// Every shard carries a structural version counter, bumped on insert and
/// erase. Single-version engines (OCC, SILO) validate scans against it to
/// detect phantoms; the MVCC engines do not need it (phantoms are caught by
/// predicate matching against concurrently committed versions).
///
/// Thread safety: all operations are thread-safe; scans hold the shard lock
/// for their duration, so scan bodies must be short and must not touch the
/// same index.
template <typename K, typename V, typename Partition, size_t kNumShards = 64>
class OrderedIndex {
 public:
  using KeyType = K;
  using ValueType = V;

  OrderedIndex() = default;
  OrderedIndex(const OrderedIndex&) = delete;
  OrderedIndex& operator=(const OrderedIndex&) = delete;

  /// Inserts (key, value); returns false if the key already exists.
  [[nodiscard]] bool Insert(const K& key, const V& value) {
    Shard& shard = ShardFor(key);
    SpinLockGuard g(shard.lock);
    auto [it, inserted] = shard.map.emplace(key, value);
    if (inserted) shard.version.fetch_add(1, std::memory_order_release);
    return inserted;
  }

  /// Removes `key`; returns true if it was present.
  bool Erase(const K& key) {
    Shard& shard = ShardFor(key);
    SpinLockGuard g(shard.lock);
    const bool erased = shard.map.erase(key) > 0;
    if (erased) shard.version.fetch_add(1, std::memory_order_release);
    return erased;
  }

  /// Looks up `key`; returns true and fills `*out` if found.
  [[nodiscard]] bool Find(const K& key, V* out) const {
    const Shard& shard = ShardFor(key);
    SpinLockGuard g(shard.lock);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) return false;
    *out = it->second;
    return true;
  }

  /// Applies `fn(key, value) -> bool` to entries in [lo, hi] in key order,
  /// stopping early when fn returns false. lo and hi must belong to the
  /// same partition.
  template <typename Fn>
  void ScanRange(const K& lo, const K& hi, Fn&& fn) const {
    MV3C_DCHECK(partition_(lo) == partition_(hi));
    const Shard& shard = ShardFor(lo);
    SpinLockGuard g(shard.lock);
    for (auto it = shard.map.lower_bound(lo);
         it != shard.map.end() && !(hi < it->first); ++it) {
      if (!fn(it->first, it->second)) break;
    }
  }

  /// Applies `fn(key, value) -> bool` to entries in [lo, hi] in REVERSE key
  /// order, stopping early when fn returns false. Same partition rule.
  template <typename Fn>
  void ScanRangeReverse(const K& lo, const K& hi, Fn&& fn) const {
    MV3C_DCHECK(partition_(lo) == partition_(hi));
    const Shard& shard = ShardFor(lo);
    SpinLockGuard g(shard.lock);
    auto it = shard.map.upper_bound(hi);
    while (it != shard.map.begin()) {
      --it;
      if (it->first < lo) break;
      if (!fn(it->first, it->second)) break;
    }
  }

  /// Returns the structural version of the shard holding `key`'s partition.
  uint64_t ShardVersion(const K& key) const {
    return ShardFor(key).version.load(std::memory_order_acquire);
  }

  /// Reference to the shard's version counter, for engines that register
  /// it in a validation node set (OCC/SILO phantom detection).
  const std::atomic<uint64_t>& ShardVersionRef(const K& key) const {
    return ShardFor(key).version;
  }

  /// Total number of entries (linearizable only when quiescent).
  size_t Size() const {
    size_t n = 0;
    for (const Shard& s : shards_) {
      SpinLockGuard g(s.lock);
      n += s.map.size();
    }
    return n;
  }

 private:
  struct Shard {
    mutable SpinLock lock;
    /// Guarded: every structural read and write of the tree goes through
    /// the shard lock; `version` stays an atomic because OCC/SILO read it
    /// lock-free during validation.
    std::map<K, V> map MV3C_GUARDED_BY(lock);
    std::atomic<uint64_t> version{0};
  };

  Shard& ShardFor(const K& key) {
    return shards_[partition_(key) % kNumShards];
  }
  const Shard& ShardFor(const K& key) const {
    return shards_[partition_(key) % kNumShards];
  }

  Partition partition_;
  Shard shards_[kNumShards];
};

}  // namespace mv3c

#endif  // MV3C_INDEX_ORDERED_INDEX_H_
