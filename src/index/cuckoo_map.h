#ifndef MV3C_INDEX_CUCKOO_MAP_H_
#define MV3C_INDEX_CUCKOO_MAP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "common/failpoint.h"
#include "common/macros.h"
#include "common/spinlock.h"
#include "common/thread_safety.h"

namespace mv3c {

/// Concurrent bucketized cuckoo hash map with lock striping.
///
/// This is the primary-key index used by every MVCC table, modeled on the
/// concurrent cuckoo hashing design the paper cites for its table
/// implementation (§5, "each table is implemented as a concurrent cuckoo
/// hash-map of primary keys to data objects").
///
/// Design:
///   * Buckets hold kSlotsPerBucket entries; each key has two candidate
///     buckets derived from one hash (partial-key cuckoo hashing, so the
///     alternate bucket is computable from the stored hash alone).
///   * A fixed array of spin locks is striped over buckets; operations lock
///     the (one or two) involved buckets in stripe order, so there is no
///     global lock on the fast path.
///   * Inserts displace entries along a BFS-discovered cuckoo path of
///     bounded depth; if no path exists the table doubles in size under a
///     full-table lock. Operations detect a concurrent resize by observing a
///     changed bucket mask after acquiring their stripe locks and retry.
///
/// Values are stored by value; MVCC tables store stable `DataObject*`
/// pointers so references handed out remain valid across resizes.
///
/// Thread safety: all public member functions are thread-safe. `ForEach` is
/// weakly consistent: it observes every entry present for the whole call and
/// may or may not observe concurrent inserts.
template <typename K, typename V, typename Hash = std::hash<K>>
class CuckooMap {
 public:
  static constexpr int kSlotsPerBucket = 4;

  /// Creates a map with capacity for roughly `initial_capacity` entries
  /// before the first resize.
  explicit CuckooMap(size_t initial_capacity = 1024) {
    size_t buckets = 16;
    while (buckets * kSlotsPerBucket < initial_capacity * 2) buckets <<= 1;
    buckets_.resize(buckets);
    bucket_mask_.store(buckets - 1, std::memory_order_relaxed);
  }

  CuckooMap(const CuckooMap&) = delete;
  CuckooMap& operator=(const CuckooMap&) = delete;

  /// Inserts (key, value). Returns false (and leaves the map unchanged) if
  /// the key is already present.
  [[nodiscard]] bool Insert(const K& key, const V& value)
      MV3C_EXCLUDES(evict_lock_) {
    const uint64_t h = HashOf(key);
    bool injected_retry = false;
    while (true) {
      if (!injected_retry && MV3C_FAILPOINT(failpoint::Site::kCuckooInsert)) {
        // Injected spurious restart: behave as if a concurrent resize
        // invalidated the optimistic snapshot, exercising the retry path
        // without needing a real racing resize. One shot per call so an
        // always-firing config cannot livelock the insert.
        injected_retry = true;
        continue;
      }
      const size_t mask = Mask();
      const size_t b1 = h & mask;
      const size_t b2 = AltIndexOf(b1, h, mask);
      {
        TwoBucketGuard guard(this, b1, b2);
        if (Mask() != mask) continue;  // resized under us; recompute
        if (FindInBucket(b1, key) >= 0 || FindInBucket(b2, key) >= 0) {
          return false;
        }
        if (TryInsertIntoBucket(b1, key, value, h) ||
            TryInsertIntoBucket(b2, key, value, h)) {
          size_.fetch_add(1, std::memory_order_relaxed);
          return true;
        }
      }
      // Both candidate buckets are full: displace along a cuckoo path, or
      // grow the table if no short path exists.
      InsertResult r = InsertWithEviction(key, value, h);
      if (r == InsertResult::kInserted) {
        size_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      if (r == InsertResult::kDuplicate) return false;
      if (r == InsertResult::kNeedResize) Resize(mask);
      // kRetry falls through to the top of the loop.
    }
  }

  /// Looks up `key`. Returns true and copies the value into `*out` if found.
  [[nodiscard]] bool Find(const K& key, V* out) const {
    const uint64_t h = HashOf(key);
    auto* self = const_cast<CuckooMap*>(this);
    while (true) {
      const size_t mask = Mask();
      const size_t b1 = h & mask;
      const size_t b2 = AltIndexOf(b1, h, mask);
      TwoBucketGuard guard(self, b1, b2);
      if (Mask() != mask) continue;
      int s = FindInBucket(b1, key);
      if (s >= 0) {
        *out = buckets_[b1].slots[s].value;
        return true;
      }
      s = FindInBucket(b2, key);
      if (s >= 0) {
        *out = buckets_[b2].slots[s].value;
        return true;
      }
      return false;
    }
  }

  /// Returns true if `key` is present.
  [[nodiscard]] bool Contains(const K& key) const {
    V ignored;
    return Find(key, &ignored);
  }

  /// Removes `key`. Returns true if it was present.
  bool Erase(const K& key) {
    const uint64_t h = HashOf(key);
    while (true) {
      const size_t mask = Mask();
      const size_t b1 = h & mask;
      const size_t b2 = AltIndexOf(b1, h, mask);
      TwoBucketGuard guard(this, b1, b2);
      if (Mask() != mask) continue;
      for (size_t b : {b1, b2}) {
        const int s = FindInBucket(b, key);
        if (s >= 0) {
          buckets_[b].slots[s].occupied = false;
          size_.fetch_sub(1, std::memory_order_relaxed);
          return true;
        }
      }
      return false;
    }
  }

  /// Applies `fn(key, value)` to every entry. Weakly consistent under
  /// concurrent mutation (locks one bucket at a time).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    auto* self = const_cast<CuckooMap*>(this);
    for (size_t b = 0;; ++b) {
      SpinLockGuard g(self->LockFor(b));
      if (b > Mask()) break;  // bucket count can only grow
      for (const Slot& slot : buckets_[b].slots) {
        if (slot.occupied) fn(slot.key, slot.value);
      }
    }
  }

  /// Number of entries currently stored.
  size_t Size() const { return size_.load(std::memory_order_relaxed); }

  /// Number of buckets (kSlotsPerBucket slots each); exposed for tests.
  size_t BucketCount() const { return Mask() + 1; }

 private:
  struct Slot {
    bool occupied = false;
    uint64_t hash = 0;
    K key{};
    V value{};
  };
  struct Bucket {
    Slot slots[kSlotsPerBucket];
  };

  enum class InsertResult { kInserted, kDuplicate, kNeedResize, kRetry };

  /// Finalizing mixer (splitmix64): the map cannot trust the user hash to
  /// spread entropy — std::hash for integers is the identity on common
  /// implementations, and composite keys packed into integers often carry
  /// all their entropy in the high bits while bucket selection uses the
  /// low ones (without mixing, such keys pile onto one bucket pair and
  /// resizing can never separate them).
  static uint64_t MixHash(uint64_t x) {
    x ^= x >> 30;
    x *= 0xBF58476D1CE4E5B9ULL;
    x ^= x >> 27;
    x *= 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return x;
  }

  uint64_t HashOf(const K& key) const { return MixHash(hasher_(key)); }

  static constexpr size_t kNumLocks = 1 << 12;
  static constexpr int kMaxBfsNodes = 256;

  size_t Mask() const { return bucket_mask_.load(std::memory_order_acquire); }

  SpinLock& LockFor(size_t bucket) const {
    return locks_[bucket & (kNumLocks - 1)];
  }

  /// Locks the stripe locks of two buckets in stripe order (deduplicating a
  /// shared stripe) and releases them on destruction.
  /// The stripe pair is chosen dynamically (bucket index modulo the stripe
  /// count, deduplicated and ordered), so the acquisitions are invisible to
  /// the static analysis: clang capabilities must be named expressions, and
  /// `locks_[l1_]`/`locks_[l2_]` resolve only at run time. The guard's
  /// lock/unlock pairing is structural (RAII + the held_ flag); the
  /// discipline itself is exercised dynamically by the TSan chaos suite
  /// (tests/chaos_serializability_test.cc) and tests/index_test.cc.
  class TwoBucketGuard {
   public:
    TwoBucketGuard(CuckooMap* map, size_t b1, size_t b2)
        MV3C_NO_THREAD_SAFETY_ANALYSIS : map_(map) {
      l1_ = b1 & (kNumLocks - 1);
      l2_ = b2 & (kNumLocks - 1);
      if (l1_ > l2_) std::swap(l1_, l2_);
      map_->locks_[l1_].lock();
      if (l2_ != l1_) map_->locks_[l2_].lock();
    }
    ~TwoBucketGuard() { Release(); }
    void Release() MV3C_NO_THREAD_SAFETY_ANALYSIS {
      if (!held_) return;
      if (l2_ != l1_) map_->locks_[l2_].unlock();
      map_->locks_[l1_].unlock();
      held_ = false;
    }

   private:
    CuckooMap* map_;
    size_t l1_, l2_;
    bool held_ = true;
  };

  /// Partial-key cuckoo hashing: the alternate bucket is derived from the
  /// current bucket and the hash, so it can be recomputed during eviction
  /// without rehashing the key. xor keeps the mapping an involution.
  static size_t AltIndexOf(size_t index, uint64_t h, size_t mask) {
    const uint64_t tag = (h >> 32) | 1;
    return (index ^ (tag * 0x5BD1E995ULL)) & mask;
  }

  int FindInBucket(size_t b, const K& key) const {
    for (int s = 0; s < kSlotsPerBucket; ++s) {
      const Slot& slot = buckets_[b].slots[s];
      if (slot.occupied && slot.key == key) return s;
    }
    return -1;
  }

  bool TryInsertIntoBucket(size_t b, const K& key, const V& value,
                           uint64_t h) {
    for (int s = 0; s < kSlotsPerBucket; ++s) {
      Slot& slot = buckets_[b].slots[s];
      if (!slot.occupied) {
        slot.occupied = true;
        slot.hash = h;
        slot.key = key;
        slot.value = value;
        return true;
      }
    }
    return false;
  }

  /// One node of the BFS displacement search: (bucket, slot) whose occupant
  /// would move to its alternate bucket.
  struct PathEntry {
    size_t bucket;
    int slot;
    int parent;  // index into the BFS frontier, -1 for roots
  };

  /// Attempts to make room by evicting along a BFS path of bounded size,
  /// then inserts. Serialized by `evict_lock_` (evictions are rare); bucket
  /// locks are still taken for each displacement so readers stay correct.
  InsertResult InsertWithEviction(const K& key, const V& value, uint64_t h)
      MV3C_EXCLUDES(evict_lock_) {
    SpinLockGuard evict_guard(evict_lock_);
    const size_t mask = Mask();
    const size_t b1 = h & mask;
    const size_t b2 = AltIndexOf(b1, h, mask);

    // BFS over displacement candidates starting from both home buckets.
    std::vector<PathEntry> frontier;
    frontier.reserve(kMaxBfsNodes + 2 * kSlotsPerBucket);
    for (size_t b : {b1, b2}) {
      for (int s = 0; s < kSlotsPerBucket; ++s) {
        frontier.push_back({b, s, -1});
      }
    }
    int found = -1;
    for (size_t head = 0;
         head < frontier.size() && frontier.size() < kMaxBfsNodes; ++head) {
      const PathEntry e = frontier[head];
      size_t target;
      {
        SpinLockGuard g(LockFor(e.bucket));
        if (Mask() != mask) return InsertResult::kRetry;
        const Slot& slot = buckets_[e.bucket].slots[e.slot];
        if (!slot.occupied) {
          found = static_cast<int>(head);
          break;
        }
        target = AltIndexOf(e.bucket, slot.hash, mask);
      }
      {
        SpinLockGuard g(LockFor(target));
        if (Mask() != mask) return InsertResult::kRetry;
        bool has_free = false;
        for (int s = 0; s < kSlotsPerBucket; ++s) {
          if (!buckets_[target].slots[s].occupied) {
            frontier.push_back({target, s, static_cast<int>(head)});
            found = static_cast<int>(frontier.size()) - 1;
            has_free = true;
            break;
          }
        }
        if (!has_free) {
          for (int s = 0; s < kSlotsPerBucket; ++s) {
            frontier.push_back({target, s, static_cast<int>(head)});
          }
        }
      }
      if (found >= 0) break;
    }
    if (found < 0) return InsertResult::kNeedResize;

    // Walk the path backwards, moving occupants one hop towards the free
    // slot. Each hop locks the pair of buckets involved.
    int cur = found;
    while (frontier[cur].parent >= 0) {
      const PathEntry& dst = frontier[cur];
      const PathEntry& src = frontier[frontier[cur].parent];
      TwoBucketGuard g(this, src.bucket, dst.bucket);
      if (Mask() != mask) return InsertResult::kRetry;
      Slot& from = buckets_[src.bucket].slots[src.slot];
      Slot& to = buckets_[dst.bucket].slots[dst.slot];
      if (to.occupied || !from.occupied ||
          AltIndexOf(src.bucket, from.hash, mask) != dst.bucket) {
        // A concurrent erase/insert changed the landscape; retry outside.
        return InsertResult::kRetry;
      }
      to = from;
      from.occupied = false;
      cur = frontier[cur].parent;
    }
    // The root slot (in one of the home buckets) is now free.
    const PathEntry& root = frontier[cur];
    TwoBucketGuard g(this, b1, b2);
    if (Mask() != mask) return InsertResult::kRetry;
    if (FindInBucket(b1, key) >= 0 || FindInBucket(b2, key) >= 0) {
      return InsertResult::kDuplicate;
    }
    Slot& slot = buckets_[root.bucket].slots[root.slot];
    if (slot.occupied) return InsertResult::kRetry;
    slot.occupied = true;
    slot.hash = h;
    slot.key = key;
    slot.value = value;
    return InsertResult::kInserted;
  }

  /// Doubles the bucket array under the eviction lock plus every stripe
  /// lock. No-op if another thread already resized past `observed_mask`.
  /// Analysis suppressed: the all-stripes acquisition loop (and its two
  /// reverse-release exits) iterates over an array of capabilities, which
  /// the static analysis cannot enumerate; callers still get the
  /// EXCLUDES(evict_lock_) self-deadlock check.
  void Resize(size_t observed_mask)
      MV3C_EXCLUDES(evict_lock_) MV3C_NO_THREAD_SAFETY_ANALYSIS {
    SpinLockGuard evict_guard(evict_lock_);
    for (size_t i = 0; i < kNumLocks; ++i) locks_[i].lock();
    if (Mask() != observed_mask) {
      for (size_t i = kNumLocks; i-- > 0;) locks_[i].unlock();
      return;
    }
    std::vector<Bucket> old = std::move(buckets_);
    size_t new_count = old.size();
    while (true) {
      new_count *= 2;
      buckets_.assign(new_count, Bucket{});
      const size_t new_mask = new_count - 1;
      bool ok = true;
      for (const Bucket& bucket : old) {
        for (const Slot& slot : bucket.slots) {
          if (!slot.occupied) continue;
          const size_t nb1 = slot.hash & new_mask;
          const size_t nb2 = AltIndexOf(nb1, slot.hash, new_mask);
          if (!TryInsertIntoBucket(nb1, slot.key, slot.value, slot.hash) &&
              !TryInsertIntoBucket(nb2, slot.key, slot.value, slot.hash)) {
            ok = false;
            break;
          }
        }
        if (!ok) break;
      }
      if (ok) break;
      // Both home buckets full right after doubling is vanishingly rare;
      // double again rather than running eviction inside the resize.
    }
    bucket_mask_.store(buckets_.size() - 1, std::memory_order_release);
    for (size_t i = kNumLocks; i-- > 0;) locks_[i].unlock();
  }

  const Hash hasher_{};
  /// Guarded by the *stripe set*: a slot in bucket b may be touched only
  /// with LockFor(b) held (or every stripe, during Resize). Striping is a
  /// dynamic discipline clang capabilities cannot name, so there is no
  /// MV3C_GUARDED_BY here; see TwoBucketGuard for the dynamic coverage.
  // mv3c-lint: allow(guarded_by_coverage)
  std::vector<Bucket> buckets_;
  std::atomic<size_t> bucket_mask_;
  mutable SpinLock locks_[kNumLocks];
  SpinLock evict_lock_;
  std::atomic<size_t> size_{0};
};

}  // namespace mv3c

#endif  // MV3C_INDEX_CUCKOO_MAP_H_
