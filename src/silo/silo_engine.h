#ifndef MV3C_SILO_SILO_ENGINE_H_
#define MV3C_SILO_SILO_ENGINE_H_

#include <algorithm>
#include <atomic>
#include <vector>

#include "obs/metrics.h"
#include "sv/sv_transaction.h"

#if defined(MV3C_WAL_ENABLED)
#include "wal/log_sv.h"
#endif

namespace mv3c {

/// SILO-style decentralized OCC baseline (Tu et al., SOSP'13, simplified):
/// commit locks the write set in address order, re-validates the read set
/// (a record locked by the transaction itself is fine) and the scan node
/// set, derives the commit TID locally from everything observed, installs,
/// and unlocks by publishing the new TID. There is no global coordination
/// point; the epoch machinery that Silo uses for logging/RCU is not needed
/// in this in-memory reproduction.
class SiloEngine {
 public:
  /// `timing_sampled` is the executor's per-transaction sampling decision
  /// (all-or-none per transaction, see OccEngine::Commit for the bias
  /// argument); `*commit_tid_out` (optional) receives the commit TID on
  /// success (the WAL's commit_ts for SV); `*wal_epoch_out` the redo
  /// records' epoch tag (0 when nothing logged).
  bool Commit(sv::SvTransaction& t, bool timing_sampled = false,
              uint64_t* commit_tid_out = nullptr,
              uint64_t* wal_epoch_out = nullptr) {
    // Phase 1: lock the write set in a deterministic order.
    std::vector<std::atomic<uint64_t>*> locked;
    locked.reserve(t.writes().size());
    std::vector<const sv::SvWrite*> ws;
    ws.reserve(t.writes().size());
    for (const sv::SvWrite& w : t.writes()) ws.push_back(&w);
    std::sort(ws.begin(), ws.end(),
              [](const sv::SvWrite* a, const sv::SvWrite* b) {
                return a->tid_word < b->tid_word;
              });
    uint64_t max_tid = 0;
    bool ok = true;
    for (size_t wi = 0; wi < ws.size(); ++wi) {
      const sv::SvWrite* w = ws[wi];
      // A transaction may write the same record more than once (e.g. a
      // TPC-C order containing the same item twice updates that stock row
      // per line); after sorting, duplicates are adjacent — skip them, the
      // lock is already ours.
      if (wi > 0 && ws[wi - 1]->tid_word == w->tid_word) continue;
      uint64_t cur = w->tid_word->load(std::memory_order_acquire);
      while (true) {
        if (sv::IsLocked(cur)) {
          // Contended: abort rather than spin (wound-free, no deadlock).
          ok = false;
          break;
        }
        if (w->tid_word->compare_exchange_weak(cur, cur | sv::kLockBit,
                                               std::memory_order_acq_rel)) {
          locked.push_back(w->tid_word);
          max_tid = std::max(max_tid, cur & sv::kTidMask);
          break;
        }
      }
      if (!ok) break;
    }
    // Phase 2: validate reads and scan nodes.
    {
      obs::ScopedPhaseTimer timer(timing_sampled ? &metrics_ : nullptr,
                                  obs::Phase::kValidate);
      if (ok) {
        for (const sv::SvRead& r : t.reads()) {
          const uint64_t cur = r.tid_word->load(std::memory_order_acquire);
          if (cur == r.observed) continue;
          // Locked by us with an otherwise unchanged TID is still valid.
          if (sv::IsLocked(cur) && (cur & ~sv::kLockBit) == r.observed &&
              t.WritesWord(r.tid_word)) {
            continue;
          }
          ok = false;
          break;
        }
      }
      if (ok) {
        for (const sv::SvNode& n : t.nodes()) {
          if (n.version->load(std::memory_order_acquire) != n.observed) {
            ok = false;
            break;
          }
        }
      }
    }
    if (!ok) {
      for (std::atomic<uint64_t>* w : locked) {
        w->fetch_and(~sv::kLockBit, std::memory_order_release);
      }
      return false;
    }
    // Phase 3: derive the commit TID and install.
    for (const sv::SvRead& r : t.reads()) {
      max_tid = std::max(max_tid, r.observed & sv::kTidMask);
    }
    max_tid = std::max(max_tid, last_tid_);
    const uint64_t commit_tid = max_tid + 1;
    last_tid_ = commit_tid;
    // Serialize redo and install in one buffer-lock hold (wal/log_sv.h):
    // the write set is still locked, so a dependent transaction cannot
    // read these writes (and draw its own, possibly earlier, epoch tag)
    // until after ours is drawn — durable epoch prefixes stay causally
    // consistent — and the shared lock hold keeps fuzzy checkpoints from
    // missing commits whose epochs they truncate. Silo TIDs are
    // per-engine, but conflicting transactions always have ordered TIDs
    // (locks/reads propagate max_tid), so TID-sorted replay is correct.
#if defined(MV3C_WAL_ENABLED)
    if (wal_ != nullptr) {
      const uint64_t e =
          wal::LogSvCommitAndInstall(*wal_, wal_buf_, t, commit_tid);
      if (wal_epoch_out != nullptr) *wal_epoch_out = e;
    } else {
      sv::InstallWrites(t, commit_tid);  // clears the lock bits
    }
#else
    (void)wal_epoch_out;
    sv::InstallWrites(t, commit_tid);  // clears the lock bits
#endif
    if (commit_tid_out != nullptr) *commit_tid_out = commit_tid;
    return true;
  }

  obs::MetricsRegistry& metrics() { return metrics_; }

#if defined(MV3C_WAL_ENABLED)
  /// Attaches the group-commit log. SILO engines are per-executor, so the
  /// staging buffer is single-writer by construction.
  void set_wal(wal::LogManager* lm) { wal_ = lm; }
#endif

 private:
  uint64_t last_tid_ = 1;  // per-engine-instance (one engine per worker)
  obs::MetricsRegistry metrics_;
#if defined(MV3C_WAL_ENABLED)
  wal::LogManager* wal_ = nullptr;
  wal::LogBuffer* wal_buf_ = nullptr;
#endif
};

}  // namespace mv3c

#endif  // MV3C_SILO_SILO_ENGINE_H_
