#ifndef MV3C_WORKLOADS_TRADING_H_
#define MV3C_WORKLOADS_TRADING_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/cipher.h"
#include "common/macros.h"
#include "common/random.h"
#include "common/zipf.h"
#include "mv3c/mv3c_executor.h"
#include "omvcc/omvcc_transaction.h"

namespace mv3c::trading {

/// The Trading benchmark of paper Example 5: a simplified TPC-E with four
/// tables and two transaction programs. TradeOrder decrypts a customer
/// payload, reads the current prices of the ordered securities and records
/// the trade; PriceUpdate blind-writes a security's price. Instances
/// conflict when a PriceUpdate hits a security a concurrent TradeOrder
/// read; security popularity is Zipf-distributed (Figures 6(a) and 6(b)).

inline constexpr int kMaxOrderItems = 5;
inline constexpr size_t kPayloadBytes = 112;
using Blob = std::array<uint8_t, kPayloadBytes>;

// --- rows ---

inline constexpr int kColPrice = 0;

struct SecurityRow {
  uint64_t symbol = 0;
  int64_t price = 0;  // fixed-point centimes
};

struct CustomerRow {
  uint64_t cipher_key = 0;
};

struct TradeRow {
  Blob encrypted_data{};  // timestamp + item count, encrypted
};

struct TradeLineRow {
  Blob encrypted_data{};  // security id + traded price, encrypted
};

using SecurityTable = Table<uint64_t, SecurityRow>;
using CustomerTable = Table<uint64_t, CustomerRow>;
using TradeTable = Table<uint64_t, TradeRow>;
using TradeLineTable = Table<uint64_t, TradeLineRow>;  // t_id * 16 + tl_id

/// Cleartext contents of a TradeOrder payload.
struct OrderPayload {
  uint64_t trade_id = 0;
  uint64_t timestamp = 0;
  uint32_t n_items = 0;
  struct Item {
    uint64_t security_id = 0;
    int8_t buy = 1;  // +1 buy, -1 sell
  } items[kMaxOrderItems];
};
static_assert(sizeof(OrderPayload) <= kPayloadBytes);

inline Blob EncodePayload(const OrderPayload& p, uint64_t key) {
  // Copy through a zeroed struct: OrderPayload::Item has padding after
  // `buy`, and memcpy'ing `p` directly would bake whatever stack garbage
  // sits in those bytes into the ciphertext — leaking uninitialized
  // memory into logged rows and making otherwise-identical runs produce
  // different row bytes (the recovery-equivalence digests compare them).
  OrderPayload clean;
  std::memset(&clean, 0, sizeof(clean));
  clean.trade_id = p.trade_id;
  clean.timestamp = p.timestamp;
  clean.n_items = p.n_items;
  for (uint32_t i = 0; i < kMaxOrderItems; ++i) {
    // Scalar assignments, not struct copies: a trivially-copyable struct
    // assignment may lower to memcpy and drag `p`'s padding along.
    clean.items[i].security_id = p.items[i].security_id;
    clean.items[i].buy = p.items[i].buy;
  }
  Blob blob{};
  std::memcpy(blob.data(), &clean, sizeof(clean));
  StreamCipher(key).Apply(&blob);
  return blob;
}

inline OrderPayload DecodePayload(Blob blob, uint64_t key) {
  StreamCipher(key).Apply(&blob);
  OrderPayload p;
  std::memcpy(&p, blob.data(), sizeof(p));
  return p;
}

/// Deterministic cipher key of a customer (used by the loader and by
/// order generators, which play the role of the client application that
/// knows the customer's key).
inline uint64_t CustomerKeyFor(uint64_t customer_id) {
  return 0x9E3779B97F4A7C15ULL * (customer_id + 1);
}

/// The Trading database: 100k securities and 100k customers at paper
/// scale; sizes are parameters so tests can shrink them.
class TradingDb {
 public:
  TradingDb(TransactionManager* mgr, uint64_t n_securities,
            uint64_t n_customers)
      : securities("Security", n_securities, WwPolicy::kAllowMultiple),
        customers("Customer", n_customers),
        trades("Trade", 1 << 16),
        trade_lines("TradeLine", 1 << 18),
        mgr_(mgr),
        n_securities_(n_securities),
        n_customers_(n_customers) {}

  void Load() {
    Mv3cExecutor loader(mgr_);
    // Chunked loading keeps the undo buffer bounded.
    for (uint64_t base = 0; base < n_securities_; base += 4096) {
      loader.MustRun([&](Mv3cTransaction& t) {
        const uint64_t end = std::min(n_securities_, base + 4096);
        for (uint64_t s = base; s < end; ++s) {
          const WriteStatus ws = t.InsertRow(
              securities, s,
              SecurityRow{s * 31, 1000 + static_cast<int64_t>(s % 900)});
          MV3C_CHECK(ws == WriteStatus::kOk);
        }
        return ExecStatus::kOk;
      });
    }
    for (uint64_t base = 0; base < n_customers_; base += 4096) {
      loader.MustRun([&](Mv3cTransaction& t) {
        const uint64_t end = std::min(n_customers_, base + 4096);
        for (uint64_t c = base; c < end; ++c) {
          const WriteStatus ws =
              t.InsertRow(customers, c, CustomerRow{CustomerKeyFor(c)});
          MV3C_CHECK(ws == WriteStatus::kOk);
        }
        return ExecStatus::kOk;
      });
    }
  }

  uint64_t n_securities() const { return n_securities_; }
  uint64_t n_customers() const { return n_customers_; }
  TransactionManager* manager() { return mgr_; }

  SecurityTable securities;
  CustomerTable customers;
  TradeTable trades;
  TradeLineTable trade_lines;

 private:
  TransactionManager* mgr_;
  uint64_t n_securities_;
  uint64_t n_customers_;
};

/// TradeOrder input: the customer id and the encrypted payload, as an
/// application would submit it.
struct TradeOrderParams {
  uint64_t customer_id = 0;
  Blob payload{};
};
// Both params travel verbatim inside serving-protocol frames
// (src/server/protocol.h), so they follow the §5f no-padding discipline.
static_assert(sizeof(TradeOrderParams) == 8 + kPayloadBytes);
static_assert(std::has_unique_object_representations_v<TradeOrderParams>);

struct PriceUpdateParams {
  uint64_t security_id = 0;
  int64_t new_price = 0;
};
static_assert(sizeof(PriceUpdateParams) == 16);
static_assert(std::has_unique_object_representations_v<PriceUpdateParams>);

// --- MV3C programs ---

/// TradeOrder in the MV3C DSL. The predicate graph is a root on the
/// customer row (whose closure performs the expensive decrypt+deserialize
/// and inserts the Trade row) with one child predicate per ordered
/// security (whose closure inserts that TradeLine). A conflicting
/// PriceUpdate invalidates only the touched security's predicate: repair
/// re-reads one price and re-encodes one trade line — the decryption is
/// never redone (§6.1.1).
inline Mv3cExecutor::Program Mv3cTradeOrder(TradingDb& db,
                                            TradeOrderParams params) {
  return [&db, params](Mv3cTransaction& t) -> ExecStatus {
    return t.Lookup(
        db.customers, params.customer_id, ColumnMask::All(),
        [&db, params](Mv3cTransaction& t, CustomerTable::Object*,
                      const CustomerRow* cust) -> ExecStatus {
          if (cust == nullptr) return ExecStatus::kUserAbort;
          const uint64_t key = cust->cipher_key;
          const OrderPayload order = DecodePayload(params.payload, key);
          if (order.n_items == 0 || order.n_items > kMaxOrderItems) {
            return ExecStatus::kUserAbort;
          }
          // Record the trade itself (depends only on the payload).
          OrderPayload header{};
          header.trade_id = order.trade_id;
          header.timestamp = order.timestamp;
          header.n_items = order.n_items;
          if (t.InsertRow(db.trades, order.trade_id,
                          TradeRow{EncodePayload(header, key)}) ==
              WriteStatus::kWwConflict) {
            return ExecStatus::kWriteWriteConflict;
          }
          // One child predicate per ordered security.
          for (uint32_t i = 0; i < order.n_items; ++i) {
            const OrderPayload::Item item = order.items[i];
            const uint64_t tl_key = order.trade_id * 16 + i;
            const ExecStatus st = t.Lookup(
                db.securities, item.security_id, ColumnMask::Of(kColPrice),
                [&db, key, item, tl_key](
                    Mv3cTransaction& t, SecurityTable::Object*,
                    const SecurityRow* sec) -> ExecStatus {
                  if (sec == nullptr) return ExecStatus::kUserAbort;
                  OrderPayload line{};
                  line.items[0].security_id = item.security_id;
                  line.items[0].buy = item.buy;
                  // Traded price, negative for a buy order (Example 5).
                  line.trade_id = static_cast<uint64_t>(
                      item.buy > 0 ? -sec->price : sec->price);
                  if (t.InsertRow(db.trade_lines, tl_key,
                                  TradeLineRow{EncodePayload(line, key)}) ==
                      WriteStatus::kWwConflict) {
                    return ExecStatus::kWriteWriteConflict;
                  }
                  return ExecStatus::kOk;
                });
            if (st != ExecStatus::kOk) return st;
          }
          return ExecStatus::kOk;
        });
  };
}

/// PriceUpdate in MV3C: a blind write (§2.4.1) — never conflicts.
inline Mv3cExecutor::Program Mv3cPriceUpdate(TradingDb& db,
                                             PriceUpdateParams params) {
  return [&db, params](Mv3cTransaction& t) -> ExecStatus {
    return t.BlindUpdate(
        db.securities, params.security_id, ColumnMask::Of(kColPrice),
        [params](SecurityRow& r) { r.price = params.new_price; });
  };
}

// --- OMVCC programs ---

inline OmvccExecutor::Program OmvccTradeOrder(TradingDb& db,
                                              TradeOrderParams params) {
  return [&db, params](OmvccTransaction& t) -> ExecStatus {
    auto cust = t.Get(db.customers, params.customer_id, ColumnMask::All());
    if (cust.row == nullptr) return ExecStatus::kUserAbort;
    const uint64_t key = cust.row->cipher_key;
    const OrderPayload order = DecodePayload(params.payload, key);
    if (order.n_items == 0 || order.n_items > kMaxOrderItems) {
      return ExecStatus::kUserAbort;
    }
    OrderPayload header{};
    header.trade_id = order.trade_id;
    header.timestamp = order.timestamp;
    header.n_items = order.n_items;
    if (t.InsertRow(db.trades, order.trade_id,
                    TradeRow{EncodePayload(header, key)}) ==
        WriteStatus::kWwConflict) {
      return ExecStatus::kWriteWriteConflict;
    }
    for (uint32_t i = 0; i < order.n_items; ++i) {
      const auto item = order.items[i];
      auto sec = t.Get(db.securities, item.security_id,
                       ColumnMask::Of(kColPrice));
      if (sec.row == nullptr) return ExecStatus::kUserAbort;
      OrderPayload line{};
      line.items[0].security_id = item.security_id;
      line.items[0].buy = item.buy;
      line.trade_id = static_cast<uint64_t>(item.buy > 0 ? -sec.row->price
                                                         : sec.row->price);
      if (t.InsertRow(db.trade_lines, order.trade_id * 16 + i,
                      TradeLineRow{EncodePayload(line, key)}) ==
          WriteStatus::kWwConflict) {
        return ExecStatus::kWriteWriteConflict;
      }
    }
    return ExecStatus::kOk;
  };
}

/// PriceUpdate under OMVCC: the update is a read-modify-write with
/// fail-fast write-write conflicts (§6.1.1: "PriceUpdate consists of a
/// blind write operation, which does not lead to a conflict in MV3C, but
/// creates a conflict in OMVCC").
inline OmvccExecutor::Program OmvccPriceUpdate(TradingDb& db,
                                               PriceUpdateParams params) {
  return [&db, params](OmvccTransaction& t) -> ExecStatus {
    auto sec = t.Get(db.securities, params.security_id,
                     ColumnMask::Of(kColPrice));
    if (sec.row == nullptr) return ExecStatus::kUserAbort;
    SecurityRow n = *sec.row;
    n.price = params.new_price;
    return t.UpdateRow(db.securities, sec.object, n,
                       ColumnMask::Of(kColPrice));
  };
}

/// Generates the benchmark's transaction mix: a TradeOrder/PriceUpdate
/// stream with Zipf-distributed security ids (parameter alpha controls the
/// conflict rate).
class TradingGenerator {
 public:
  /// `trade_order_percent` of transactions are TradeOrders; the rest are
  /// PriceUpdates.
  TradingGenerator(const TradingDb& db, double alpha, int trade_order_percent,
                   uint64_t seed)
      : TradingGenerator(db.n_securities(), db.n_customers(), alpha,
                         trade_order_percent, seed) {}

  /// Db-free overload for remote clients (bench/loadgen.cc) that generate
  /// requests against a server-hosted database they cannot see; only the
  /// population sizes matter.
  TradingGenerator(uint64_t n_securities, uint64_t n_customers, double alpha,
                   int trade_order_percent, uint64_t seed)
      : zipf_(n_securities, alpha),
        n_customers_(n_customers),
        trade_order_percent_(trade_order_percent),
        rng_(seed) {}

  struct Txn {
    bool is_trade_order;
    TradeOrderParams order;
    PriceUpdateParams price;
  };

  Txn Next() {
    Txn txn;
    txn.is_trade_order =
        static_cast<int>(rng_.NextBounded(100)) < trade_order_percent_;
    if (txn.is_trade_order) {
      const uint64_t c = rng_.NextBounded(n_customers_);
      OrderPayload p{};
      p.trade_id = ++trade_seq_;
      p.timestamp = trade_seq_ * 7;
      p.n_items = 1 + static_cast<uint32_t>(rng_.NextBounded(kMaxOrderItems));
      for (uint32_t i = 0; i < p.n_items; ++i) {
        p.items[i].security_id = zipf_.Next(rng_);
        p.items[i].buy = rng_.NextBounded(2) == 0 ? 1 : -1;
      }
      txn.order.customer_id = c;
      txn.order.payload = EncodePayload(p, CustomerKeyFor(c));
    } else {
      txn.price.security_id = zipf_.Next(rng_);
      txn.price.new_price = 500 + static_cast<int64_t>(rng_.NextBounded(2000));
    }
    return txn;
  }

 private:
  ZipfGenerator zipf_;
  uint64_t n_customers_;
  int trade_order_percent_;
  Xoshiro256 rng_;
  uint64_t trade_seq_ = 0;
};

}  // namespace mv3c::trading

#endif  // MV3C_WORKLOADS_TRADING_H_
