#include "workloads/tpcc.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>
#include <string>

#include "common/macros.h"

namespace mv3c::tpcc {

namespace {

constexpr ColumnMask kAllCols = ColumnMask::All();

/// Reads the latest committed row of an object; only valid when callers
/// tolerate an instantaneous snapshot (loaders, consistency checks).
template <typename TableT>
const typename TableT::Row* LatestRow(typename TableT::Object* obj) {
  if (obj == nullptr) return nullptr;
  const auto* v = obj->ReadVisible(kTxnIdBase - 1, 0);
  return v == nullptr ? nullptr : &v->data();
}

}  // namespace

// ---------------------------------------------------------------------------
// Loader
// ---------------------------------------------------------------------------

void TpccDb::Load(uint64_t seed) {
  Xoshiro256 rng(seed);
  Mv3cExecutor loader(mgr_);
  const TpccScale& s = scale_;
  const bool dbg = std::getenv("MV3C_LOAD_DEBUG") != nullptr;

  // ITEM: shared across warehouses.
  for (uint64_t base = 1; base <= s.n_items; base += 4096) {
    loader.MustRun([&](Mv3cTransaction& t) {
      const uint64_t end = std::min(s.n_items, base + 4095);
      for (uint64_t i = base; i <= end; ++i) {
        ItemRow row;
        row.price = 100 + static_cast<int64_t>(rng.NextBounded(9900));
        row.im_id = static_cast<uint32_t>(1 + rng.NextBounded(10000));
        t.InsertRow(items, i, row);
      }
      return ExecStatus::kOk;
    });
  }

  if (dbg) std::fprintf(stderr, "[load] items done\n");
  for (uint64_t w = 1; w <= s.n_warehouses; ++w) {
    loader.MustRun([&](Mv3cTransaction& t) {
      WarehouseRow wr;
      wr.tax = static_cast<int32_t>(rng.NextBounded(2001));
      wr.ytd = 30000000;  // 300,000.00
      t.InsertRow(warehouses, w, wr);
      return ExecStatus::kOk;
    });
    // STOCK.
    for (uint64_t base = 1; base <= s.n_items; base += 2048) {
      loader.MustRun([&](Mv3cTransaction& t) {
        const uint64_t end = std::min(s.n_items, base + 2047);
        for (uint64_t i = base; i <= end; ++i) {
          StockRow row;
          row.quantity = static_cast<int32_t>(10 + rng.NextBounded(91));
          t.InsertRow(stock, StockKey(w, i), row);
        }
        return ExecStatus::kOk;
      });
    }
    if (dbg) std::fprintf(stderr, "[load] stock done w=%llu\n", (unsigned long long)w);
    for (uint64_t d = 1; d <= s.n_districts; ++d) {
      if (dbg) std::fprintf(stderr, "[load] district %llu\n", (unsigned long long)d);
      loader.MustRun([&](Mv3cTransaction& t) {
        DistrictRow dr;
        dr.tax = static_cast<int32_t>(rng.NextBounded(2001));
        dr.ytd = 3000000;  // 30,000.00
        dr.next_o_id = static_cast<uint32_t>(s.preload_orders_per_d + 1);
        t.InsertRow(districts, DistrictKey(w, d), dr);
        return ExecStatus::kOk;
      });
      // CUSTOMER + HISTORY.
      for (uint64_t base = 1; base <= s.n_customers_per_d; base += 1024) {
        loader.MustRun([&](Mv3cTransaction& t) {
          const uint64_t end = std::min(s.n_customers_per_d, base + 1023);
          for (uint64_t c = base; c <= end; ++c) {
            CustomerRow row;
            // Spec: the first 1000 customers get sequential last names so
            // that every name id 0..999 exists; the rest are NURand(255).
            row.last_name_id =
                c <= 1000 ? static_cast<uint16_t>(c - 1)
                          : static_cast<uint16_t>(
                                NuRand(123).Next(rng, 255, 0, 999));
            row.discount = static_cast<int32_t>(rng.NextBounded(5001));
            row.bad_credit = rng.NextBounded(100) < 10;
            const uint64_t key = CustomerKey(w, d, c);
            t.InsertRow(customers, key, row);
            MV3C_CHECK(customers_by_name.Insert(
                {DistrictKey(w, d), row.last_name_id, key},
                customers.Find(key)));
            HistoryRow h;
            h.c_key = key;
            h.d_key = DistrictKey(w, d);
            h.amount = 1000;
            t.InsertRow(history, NextHistoryKey(), h);
          }
          return ExecStatus::kOk;
        });
      }
      // ORDER / ORDER-LINE / NEW-ORDER preload: customers in a random
      // permutation, the last `preload_new_orders_per_d` undelivered.
      std::vector<uint64_t> perm(s.preload_orders_per_d);
      std::iota(perm.begin(), perm.end(), 1);
      for (size_t i = perm.size(); i > 1; --i) {
        std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
      }
      if (dbg) std::fprintf(stderr, "[load] customers done d=%llu\n", (unsigned long long)d);
      for (uint64_t base = 1; base <= s.preload_orders_per_d; base += 256) {
        if (dbg) std::fprintf(stderr, "[load] orders base=%llu\n", (unsigned long long)base);
        loader.MustRun([&](Mv3cTransaction& t) {
          const uint64_t end = std::min(s.preload_orders_per_d, base + 255);
          for (uint64_t o = base; o <= end; ++o) {
            const bool delivered =
                o + s.preload_new_orders_per_d <= s.preload_orders_per_d;
            const uint64_t c = 1 + (perm[o - 1] - 1) % s.n_customers_per_d;
            OrderRow orow;
            orow.c_id = c;
            orow.entry_d = o;
            orow.ol_cnt = static_cast<uint8_t>(5 + rng.NextBounded(11));
            orow.carrier_id =
                delivered ? static_cast<int32_t>(1 + rng.NextBounded(10))
                          : -1;
            const uint64_t okey = OrderKey(w, d, o);
            t.InsertRow(orders, okey, orow);
            MV3C_CHECK(orders_by_customer.Insert(CustomerOrderKey(w, d, c, o),
                                                 orders.Find(okey)));
            for (uint8_t ol = 1; ol <= orow.ol_cnt; ++ol) {
              OrderLineRow lrow;
              lrow.i_id = 1 + rng.NextBounded(s.n_items);
              lrow.supply_w_id = w;
              lrow.quantity = 5;
              lrow.delivery_d = delivered ? o : 0;
              lrow.amount =
                  delivered ? 0
                            : static_cast<int64_t>(1 +
                                                   rng.NextBounded(999999));
              const uint64_t lkey = OrderLineKey(w, d, o, ol);
              t.InsertRow(order_lines, lkey, lrow);
              MV3C_CHECK(order_lines_by_district.Insert(
                  lkey, order_lines.Find(lkey)));
            }
            if (!delivered) {
              t.InsertRow(new_orders, okey, NewOrderRow{});
              MV3C_CHECK(new_order_queue.Insert(okey, new_orders.Find(okey)));
            }
          }
          return ExecStatus::kOk;
        });
      }
    }
  }
}

size_t TpccDb::CleanupNewOrderQueue() {
  // An entry is removable when no active transaction could still see the
  // row: every version is committed and the newest committed one is a
  // tombstone older than the GC watermark. NEW-ORDER keys are never
  // reused, so a removed entry can never need to come back.
  const Timestamp watermark = mgr_->OldestActiveStart();
  size_t removed = 0;
  for (uint64_t w = 1; w <= scale_.n_warehouses; ++w) {
    for (uint64_t d = 1; d <= scale_.n_districts; ++d) {
      std::vector<uint64_t> ghosts;
      new_order_queue.ScanRange(
          OrderKey(w, d, 0), OrderKey(w, d, kMaxOrdersPerD - 1),
          [&](uint64_t key, NewOrderTable::Object* obj) {
            // Stop at the first live (or possibly-live) entry: the queue
            // is delivered in order, so everything after it is live too.
            const VersionBase* newest = obj->head();
            if (newest == nullptr) return true;  // ghost of aborted insert
            for (const VersionBase* v = newest; v != nullptr;
                 v = v->next()) {
              const Timestamp t = v->ts();
              if (t == kDeadVersion) continue;
              if (IsTxnId(t)) return false;  // uncommitted: stop cleanup
              if (v->tombstone() && t < watermark) {
                ghosts.push_back(key);
                return true;
              }
              return false;  // live committed row: stop
            }
            return true;  // only dead versions: ghost
          });
      for (uint64_t key : ghosts) {
        if (new_order_queue.Erase(key)) ++removed;
      }
    }
  }
  return removed;
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

TpccParams TpccGenerator::Next() {
  TpccParams p;
  p.w_id = 1 + rng_.NextBounded(scale_.n_warehouses);
  p.d_id = 1 + rng_.NextBounded(scale_.n_districts);
  p.date = date_seq_++;
  const uint64_t mix = rng_.NextBounded(100);
  if (mix < 45) {
    p.type = TpccTxnType::kNewOrder;
    p.c_id = nurand_c_id_.Next(rng_, 1023, 1, scale_.n_customers_per_d);
    p.ol_cnt = static_cast<uint8_t>(5 + rng_.NextBounded(11));
    const bool rollback = rng_.NextBounded(100) < 1;  // 1% invalid item
    for (uint8_t i = 0; i < p.ol_cnt; ++i) {
      p.items[i].i_id = nurand_i_id_.Next(rng_, 8191, 1, scale_.n_items);
      p.items[i].quantity = static_cast<uint8_t>(1 + rng_.NextBounded(10));
      p.items[i].supply_w = p.w_id;
      if (scale_.n_warehouses > 1 && rng_.NextBounded(100) < 1) {
        do {
          p.items[i].supply_w = 1 + rng_.NextBounded(scale_.n_warehouses);
        } while (p.items[i].supply_w == p.w_id);
      }
    }
    if (rollback) p.items[p.ol_cnt - 1].i_id = scale_.n_items + 1;
  } else if (mix < 88) {
    p.type = TpccTxnType::kPayment;
    p.amount = static_cast<int64_t>(100 + rng_.NextBounded(500000));
    p.by_last_name = rng_.NextBounded(100) < 60;
    p.c_last = static_cast<uint16_t>(nurand_c_last_.Next(rng_, 255, 0, 999));
    p.c_id = nurand_c_id_.Next(rng_, 1023, 1, scale_.n_customers_per_d);
    p.c_w_id = p.w_id;
    p.c_d_id = p.d_id;
    if (scale_.n_warehouses > 1 && rng_.NextBounded(100) < 15) {
      do {
        p.c_w_id = 1 + rng_.NextBounded(scale_.n_warehouses);
      } while (p.c_w_id == p.w_id);
      p.c_d_id = 1 + rng_.NextBounded(scale_.n_districts);
    }
  } else if (mix < 92) {
    p.type = TpccTxnType::kOrderStatus;
    p.by_last_name = rng_.NextBounded(100) < 60;
    p.c_last = static_cast<uint16_t>(nurand_c_last_.Next(rng_, 255, 0, 999));
    p.c_id = nurand_c_id_.Next(rng_, 1023, 1, scale_.n_customers_per_d);
  } else if (mix < 96) {
    p.type = TpccTxnType::kDelivery;
    p.carrier_id = static_cast<int32_t>(1 + rng_.NextBounded(10));
  } else {
    p.type = TpccTxnType::kStockLevel;
    p.threshold = static_cast<int32_t>(10 + rng_.NextBounded(11));
  }
  return p;
}

// ---------------------------------------------------------------------------
// MV3C programs
// ---------------------------------------------------------------------------

namespace {

/// Middle customer of a by-last-name run (spec clause 2.5.2.2: position
/// n/2 rounded up in the run ordered by first name; we order by c_id).
template <typename Entries>
size_t MiddleIndex(const Entries& entries) {
  return (entries.size() + 1) / 2 - 1;
}

// The MV3C program bodies receive the transaction parameters by POINTER:
// the pointee is the copy owned by the program std::function, which lives
// across every repair round and restart, so closures capture 8 bytes
// instead of re-copying the ~0.5 KB parameter block at each nesting level
// (§6.2's low overhead depends on cheap closure captures).

ExecStatus Mv3cNewOrderBody(Mv3cTransaction& t, TpccDb& db,
                            const TpccParams* p) {
  // Nesting: warehouse ⊃ customer ⊃ district ⊃ (per item: item ⊃ stock).
  // The hot repairable conflicts (stock updates) sit at the innermost
  // level; the district bump's ORDER/NEW-ORDER key collisions fail fast.
  return t.Lookup(
      db.warehouses, p->w_id, ColumnMask::Of(kColWTax),
      [&db, p](Mv3cTransaction& t, WarehouseTable::Object*,
               const WarehouseRow* w) -> ExecStatus {
        if (w == nullptr) return ExecStatus::kUserAbort;
        const int32_t w_tax = w->tax;
        return t.Lookup(
            db.customers, CustomerKey(p->w_id, p->d_id, p->c_id),
            ColumnMask::Of(kColCInfo),
            [&db, p, w_tax](Mv3cTransaction& t, CustomerTable::Object*,
                            const CustomerRow* c) -> ExecStatus {
              if (c == nullptr) return ExecStatus::kUserAbort;
              const int32_t c_disc = c->discount;
              return t.Lookup(
                  db.districts, DistrictKey(p->w_id, p->d_id),
                  ColumnMask::Of(kColDTax) | ColumnMask::Of(kColDNextOid),
                  [&db, p, w_tax, c_disc](
                      Mv3cTransaction& t, DistrictTable::Object* dobj,
                      const DistrictRow* d) -> ExecStatus {
                    if (d == nullptr) return ExecStatus::kUserAbort;
                    const uint64_t o_id = d->next_o_id;
                    DistrictRow dn = *d;
                    dn.next_o_id = static_cast<uint32_t>(o_id + 1);
                    // Per-operation fail-fast override (§2.3.1, Example 3):
                    // the order-id bump happens early and the whole rest of
                    // the program depends on it — repairing it re-executes
                    // nearly everything, so detecting the conflict at write
                    // time and restarting is strictly cheaper. Payment's
                    // YTD update on the same row keeps kAllowMultiple and
                    // is repaired instead.
                    ExecStatus st = t.UpdateRow(
                        db.districts, dobj, dn, ColumnMask::Of(kColDNextOid),
                        /*blind=*/false, WwPolicy::kFailFast);
                    if (st != ExecStatus::kOk) return st;
                    OrderRow orow;
                    orow.c_id = p->c_id;
                    orow.entry_d = p->date;
                    orow.ol_cnt = p->ol_cnt;
                    orow.all_local = true;
                    for (uint8_t i = 0; i < p->ol_cnt; ++i) {
                      if (p->items[i].supply_w != p->w_id) {
                        orow.all_local = false;
                      }
                    }
                    const uint64_t okey = OrderKey(p->w_id, p->d_id, o_id);
                    OrderTable::Object* oobj = nullptr;
                    if (t.InsertRow(db.orders, okey, orow, &oobj) !=
                        WriteStatus::kOk) {
                      return ExecStatus::kWriteWriteConflict;
                    }
                    // Duplicate is expected on a repair round: the same
                    // o_id re-inserts the same arena-stable object.
                    (void)db.orders_by_customer.Insert(
                        CustomerOrderKey(p->w_id, p->d_id, p->c_id, o_id),
                        oobj);
                    NewOrderTable::Object* nobj = nullptr;
                    if (t.InsertRow(db.new_orders, okey, NewOrderRow{},
                                    &nobj) != WriteStatus::kOk) {
                      return ExecStatus::kWriteWriteConflict;
                    }
                    (void)db.new_order_queue.Insert(okey, nobj);
                    for (uint8_t i = 0; i < p->ol_cnt; ++i) {
                      const uint8_t ol_number = i;
                      st = t.Lookup(
                          db.items, p->items[i].i_id, kAllCols,
                          [&db, p, w_tax, c_disc, o_id, ol_number](
                              Mv3cTransaction& t, ItemTable::Object*,
                              const ItemRow* item) -> ExecStatus {
                            if (item == nullptr) {
                              return ExecStatus::kUserAbort;  // 1% rule
                            }
                            const int64_t price = item->price;
                            const NewOrderItem it = p->items[ol_number];
                            return t.Lookup(
                                db.stock, StockKey(it.supply_w, it.i_id),
                                ColumnMask::Of(kColSQuantity),
                                [&db, p, w_tax, c_disc, o_id, price,
                                 ol_number](
                                    Mv3cTransaction& t,
                                    StockTable::Object* sobj,
                                    const StockRow* s) -> ExecStatus {
                                  if (s == nullptr) {
                                    return ExecStatus::kUserAbort;
                                  }
                                  const NewOrderItem it =
                                      p->items[ol_number];
                                  StockRow sn = *s;
                                  if (sn.quantity - it.quantity >= 10) {
                                    sn.quantity -= it.quantity;
                                  } else {
                                    sn.quantity += 91 - it.quantity;
                                  }
                                  sn.ytd += it.quantity;
                                  sn.order_cnt += 1;
                                  if (it.supply_w != p->w_id) {
                                    sn.remote_cnt += 1;
                                  }
                                  ExecStatus st2 = t.UpdateRow(
                                      db.stock, sobj, sn,
                                      ColumnMask::Of(kColSQuantity) |
                                          ColumnMask::Of(kColSCounts));
                                  if (st2 != ExecStatus::kOk) return st2;
                                  OrderLineRow ol;
                                  ol.i_id = it.i_id;
                                  ol.supply_w_id = it.supply_w;
                                  ol.quantity = it.quantity;
                                  ol.amount = it.quantity * price *
                                              (10000 + w_tax) / 10000 *
                                              (10000 - c_disc) / 10000;
                                  std::memcpy(ol.dist_info,
                                              s->dist[p->d_id - 1],
                                              sizeof(ol.dist_info));
                                  const uint64_t lkey =
                                      OrderLineKey(p->w_id, p->d_id, o_id,
                                                   ol_number + 1);
                                  OrderLineTable::Object* lobj = nullptr;
                                  if (t.InsertRow(db.order_lines, lkey, ol,
                                                  &lobj) !=
                                      WriteStatus::kOk) {
                                    return ExecStatus::kWriteWriteConflict;
                                  }
                                  (void)db.order_lines_by_district.Insert(
                                      lkey, lobj);
                                  return ExecStatus::kOk;
                                });
                          });
                      if (st != ExecStatus::kOk) return st;
                    }
                    return ExecStatus::kOk;
                  });
            });
      });
}

ExecStatus Mv3cPaymentBody(Mv3cTransaction& t, TpccDb& db,
                           const TpccParams* p) {
  // Three independent roots (disjoint failure units, Figure 1(a)): the
  // warehouse YTD bump, the district YTD bump, and the customer payment
  // (with the HISTORY insert nested under the customer).
  ExecStatus st = t.Lookup(
      db.warehouses, p->w_id, ColumnMask::Of(kColWYtd),
      [&db, p](Mv3cTransaction& t, WarehouseTable::Object* wobj,
               const WarehouseRow* w) -> ExecStatus {
        if (w == nullptr) return ExecStatus::kUserAbort;
        WarehouseRow wn = *w;
        wn.ytd += p->amount;
        return t.UpdateRow(db.warehouses, wobj, wn,
                           ColumnMask::Of(kColWYtd));
      });
  if (st != ExecStatus::kOk) return st;
  st = t.Lookup(
      db.districts, DistrictKey(p->w_id, p->d_id), ColumnMask::Of(kColDYtd),
      [&db, p](Mv3cTransaction& t, DistrictTable::Object* dobj,
               const DistrictRow* d) -> ExecStatus {
        if (d == nullptr) return ExecStatus::kUserAbort;
        DistrictRow dn = *d;
        dn.ytd += p->amount;
        return t.UpdateRow(db.districts, dobj, dn, ColumnMask::Of(kColDYtd));
      });
  if (st != ExecStatus::kOk) return st;

  auto pay_customer = [&db, p](Mv3cTransaction& t,
                               CustomerTable::Object* cobj,
                               const CustomerRow& c,
                               uint64_t c_key) -> ExecStatus {
    CustomerRow cn = c;
    cn.balance -= p->amount;
    cn.ytd_payment += p->amount;
    cn.payment_cnt += 1;
    ColumnMask mask = ColumnMask::Of(kColCBalance);
    if (c.bad_credit) {
      std::memmove(cn.data + 16, cn.data, sizeof(cn.data) - 16);
      std::memcpy(cn.data, &c_key, sizeof(c_key));
      std::memcpy(cn.data + 8, &p->amount, sizeof(p->amount));
      mask |= ColumnMask::Of(kColCData);
    }
    ExecStatus st2 = t.UpdateRow(db.customers, cobj, cn, mask);
    if (st2 != ExecStatus::kOk) return st2;
    HistoryRow h;
    h.c_key = c_key;
    h.d_key = DistrictKey(p->w_id, p->d_id);
    h.amount = p->amount;
    h.date = p->date;
    if (t.InsertRow(db.history, db.NextHistoryKey(), h) != WriteStatus::kOk) {
      return ExecStatus::kWriteWriteConflict;
    }
    return ExecStatus::kOk;
  };

  if (p->by_last_name) {
    const uint64_t wd = DistrictKey(p->c_w_id, p->c_d_id);
    return t.RangeScan(
        db.customers, db.customers_by_name,
        CustomerNameKey{wd, p->c_last, 0},
        CustomerNameKey{wd, p->c_last, ~0ULL},
        [](const uint64_t& key, const CustomerRow& row) {
          return CustomerNameKey{key / kMaxCustomersPerD, row.last_name_id,
                                 key};
        },
        nullptr, ColumnMask::Of(kColCInfo) | ColumnMask::Of(kColCBalance), 0,
        false,
        [pay_customer](Mv3cTransaction& t,
                       const std::vector<ScanEntry<CustomerTable>>& rs)
            -> ExecStatus {
          if (rs.empty()) return ExecStatus::kUserAbort;
          const auto& e = rs[MiddleIndex(rs)];
          return pay_customer(t, e.object, e.row, e.object->key());
        });
  }
  const uint64_t c_key = CustomerKey(p->c_w_id, p->c_d_id, p->c_id);
  return t.Lookup(
      db.customers, c_key,
      ColumnMask::Of(kColCInfo) | ColumnMask::Of(kColCBalance),
      [pay_customer, c_key](Mv3cTransaction& t, CustomerTable::Object* obj,
                            const CustomerRow* c) -> ExecStatus {
        if (c == nullptr) return ExecStatus::kUserAbort;
        return pay_customer(t, obj, *c, c_key);
      });
}

ExecStatus Mv3cOrderStatusBody(Mv3cTransaction& t, TpccDb& db,
                               const TpccParams* p) {
  auto status_of = [&db, p](Mv3cTransaction& t, uint64_t c_id) -> ExecStatus {
    return t.RangeScan(
        db.orders, db.orders_by_customer,
        CustomerOrderKey(p->w_id, p->d_id, c_id, 0),
        CustomerOrderKey(p->w_id, p->d_id, c_id, kMaxOrdersPerD - 1),
        [](const uint64_t& key, const OrderRow&) { return key; }, nullptr,
        ColumnMask::Of(kColOCarrier) | ColumnMask::Of(kColOInfo), 1, true,
        [&db, p](Mv3cTransaction& t,
                 const std::vector<ScanEntry<OrderTable>>& rs) -> ExecStatus {
          if (rs.empty()) return ExecStatus::kUserAbort;
          const uint64_t o_id = rs[0].object->key() % kMaxOrdersPerD;
          return t.RangeScan(
              db.order_lines, db.order_lines_by_district,
              OrderLineKey(p->w_id, p->d_id, o_id, 0),
              OrderLineKey(p->w_id, p->d_id, o_id, kMaxOrderLines - 1),
              [](const uint64_t& key, const OrderLineRow&) { return key; },
              nullptr, ColumnMask::Of(kColOlInfo), 0, false,
              [](Mv3cTransaction&,
                 const std::vector<ScanEntry<OrderLineTable>>& lines)
                  -> ExecStatus {
                int64_t total = 0;
                for (const auto& l : lines) total += l.row.amount;
                (void)total;
                return ExecStatus::kOk;
              });
        });
  };
  if (p->by_last_name) {
    const uint64_t wd = DistrictKey(p->w_id, p->d_id);
    return t.RangeScan(
        db.customers, db.customers_by_name,
        CustomerNameKey{wd, p->c_last, 0},
        CustomerNameKey{wd, p->c_last, ~0ULL},
        [](const uint64_t& key, const CustomerRow& row) {
          return CustomerNameKey{key / kMaxCustomersPerD, row.last_name_id,
                                 key};
        },
        nullptr, ColumnMask::Of(kColCInfo) | ColumnMask::Of(kColCBalance), 0,
        false,
        [status_of](Mv3cTransaction& t,
                    const std::vector<ScanEntry<CustomerTable>>& rs)
            -> ExecStatus {
          if (rs.empty()) return ExecStatus::kUserAbort;
          const auto& e = rs[MiddleIndex(rs)];
          return status_of(t, e.object->key() % kMaxCustomersPerD);
        });
  }
  return t.Lookup(
      db.customers, CustomerKey(p->w_id, p->d_id, p->c_id),
      ColumnMask::Of(kColCBalance),
      [p, status_of](Mv3cTransaction& t, CustomerTable::Object*,
                     const CustomerRow* c) -> ExecStatus {
        if (c == nullptr) return ExecStatus::kUserAbort;
        return status_of(t, p->c_id);
      });
}

ExecStatus Mv3cDeliveryBody(Mv3cTransaction& t, TpccDb& db,
                            const TpccParams* p) {
  for (uint64_t d = 1; d <= db.scale().n_districts; ++d) {
    const ExecStatus st = t.RangeScan(
        db.new_orders, db.new_order_queue, OrderKey(p->w_id, d, 0),
        OrderKey(p->w_id, d, kMaxOrdersPerD - 1),
        [](const uint64_t& key, const NewOrderRow&) { return key; }, nullptr,
        kAllCols, 1, false,
        [&db, p, d](Mv3cTransaction& t,
                    const std::vector<ScanEntry<NewOrderTable>>& rs)
            -> ExecStatus {
          if (rs.empty()) return ExecStatus::kOk;  // nothing to deliver
          NewOrderTable::Object* nobj = rs[0].object;
          const uint64_t okey = nobj->key();
          const uint64_t o_id = okey % kMaxOrdersPerD;
          ExecStatus st2 = t.DeleteRow(db.new_orders, nobj);
          if (st2 != ExecStatus::kOk) return st2;
          return t.Lookup(
              db.orders, okey,
              ColumnMask::Of(kColOCarrier) | ColumnMask::Of(kColOInfo),
              [&db, p, d, o_id](Mv3cTransaction& t, OrderTable::Object* oobj,
                                const OrderRow* o) -> ExecStatus {
                if (o == nullptr) return ExecStatus::kUserAbort;
                OrderRow on = *o;
                on.carrier_id = p->carrier_id;
                ExecStatus st3 = t.UpdateRow(db.orders, oobj, on,
                                             ColumnMask::Of(kColOCarrier));
                if (st3 != ExecStatus::kOk) return st3;
                const uint64_t c_id = o->c_id;
                return t.RangeScan(
                    db.order_lines, db.order_lines_by_district,
                    OrderLineKey(p->w_id, d, o_id, 0),
                    OrderLineKey(p->w_id, d, o_id, kMaxOrderLines - 1),
                    [](const uint64_t& key, const OrderLineRow&) {
                      return key;
                    },
                    nullptr,
                    ColumnMask::Of(kColOlDeliveryD) |
                        ColumnMask::Of(kColOlInfo),
                    0, false,
                    [&db, p, d, c_id](
                        Mv3cTransaction& t,
                        const std::vector<ScanEntry<OrderLineTable>>& lines)
                        -> ExecStatus {
                      int64_t total = 0;
                      for (const auto& l : lines) {
                        total += l.row.amount;
                        OrderLineRow ln = l.row;
                        ln.delivery_d = p->date;
                        const ExecStatus st4 = t.UpdateRow(
                            db.order_lines, l.object, ln,
                            ColumnMask::Of(kColOlDeliveryD));
                        if (st4 != ExecStatus::kOk) return st4;
                      }
                      return t.Lookup(
                          db.customers, CustomerKey(p->w_id, d, c_id),
                          ColumnMask::Of(kColCBalance),
                          [&db, total](Mv3cTransaction& t,
                                       CustomerTable::Object* cobj,
                                       const CustomerRow* c) -> ExecStatus {
                            if (c == nullptr) {
                              return ExecStatus::kUserAbort;
                            }
                            CustomerRow cn = *c;
                            cn.balance += total;
                            cn.delivery_cnt += 1;
                            return t.UpdateRow(db.customers, cobj, cn,
                                               ColumnMask::Of(kColCBalance));
                          });
                    });
              });
        });
    if (st != ExecStatus::kOk) return st;
  }
  return ExecStatus::kOk;
}

ExecStatus Mv3cStockLevelBody(Mv3cTransaction& t, TpccDb& db,
                              const TpccParams* p) {
  return t.Lookup(
      db.districts, DistrictKey(p->w_id, p->d_id),
      ColumnMask::Of(kColDNextOid),
      [&db, p](Mv3cTransaction& t, DistrictTable::Object*,
               const DistrictRow* d) -> ExecStatus {
        if (d == nullptr) return ExecStatus::kUserAbort;
        const uint64_t next_o = d->next_o_id;
        const uint64_t lo_o = next_o > 20 ? next_o - 20 : 1;
        return t.RangeScan(
            db.order_lines, db.order_lines_by_district,
            OrderLineKey(p->w_id, p->d_id, lo_o, 0),
            OrderLineKey(p->w_id, p->d_id, next_o - 1, kMaxOrderLines - 1),
            [](const uint64_t& key, const OrderLineRow&) { return key; },
            nullptr, ColumnMask::Of(kColOlInfo), 0, false,
            [&db, p](Mv3cTransaction& t,
                     const std::vector<ScanEntry<OrderLineTable>>& lines)
                -> ExecStatus {
              std::vector<uint64_t> seen;
              int low_stock = 0;
              for (const auto& l : lines) {
                const uint64_t i_id = l.row.i_id;
                if (std::find(seen.begin(), seen.end(), i_id) != seen.end()) {
                  continue;
                }
                seen.push_back(i_id);
                const ExecStatus st = t.Lookup(
                    db.stock, StockKey(p->w_id, i_id),
                    ColumnMask::Of(kColSQuantity),
                    [p, &low_stock](Mv3cTransaction&, StockTable::Object*,
                                    const StockRow* s) -> ExecStatus {
                      if (s != nullptr && s->quantity < p->threshold) {
                        ++low_stock;
                      }
                      return ExecStatus::kOk;
                    });
                if (st != ExecStatus::kOk) return st;
              }
              return ExecStatus::kOk;
            });
      });
}

}  // namespace

Mv3cExecutor::Program Mv3cTpccProgram(TpccDb& db, const TpccParams& p) {
  // The program lambda owns the parameter copy; closures built by the
  // bodies capture a pointer to it, which stays valid across repair rounds
  // and restarts (the std::function outlives the transaction attempt).
  return [&db, p](Mv3cTransaction& t) -> ExecStatus {
    switch (p.type) {
      case TpccTxnType::kNewOrder:
        return Mv3cNewOrderBody(t, db, &p);
      case TpccTxnType::kPayment:
        return Mv3cPaymentBody(t, db, &p);
      case TpccTxnType::kOrderStatus:
        return Mv3cOrderStatusBody(t, db, &p);
      case TpccTxnType::kDelivery:
        return Mv3cDeliveryBody(t, db, &p);
      case TpccTxnType::kStockLevel:
        return Mv3cStockLevelBody(t, db, &p);
    }
    MV3C_CHECK(false);
    return ExecStatus::kUserAbort;
  };
}

// ---------------------------------------------------------------------------
// OMVCC programs (straight-line equivalents)
// ---------------------------------------------------------------------------

namespace {

OmvccExecutor::Program OmvccNewOrder(TpccDb& db, const TpccParams& p) {
  return [&db, p](OmvccTransaction& t) -> ExecStatus {
    auto w = t.Get(db.warehouses, p.w_id, ColumnMask::Of(kColWTax));
    if (w.row == nullptr) return ExecStatus::kUserAbort;
    const int32_t w_tax = w.row->tax;
    auto c = t.Get(db.customers, CustomerKey(p.w_id, p.d_id, p.c_id),
                   ColumnMask::Of(kColCInfo));
    if (c.row == nullptr) return ExecStatus::kUserAbort;
    const int32_t c_disc = c.row->discount;
    auto d = t.Get(db.districts, DistrictKey(p.w_id, p.d_id),
                   ColumnMask::Of(kColDTax) | ColumnMask::Of(kColDNextOid));
    if (d.row == nullptr) return ExecStatus::kUserAbort;
    const uint64_t o_id = d.row->next_o_id;
    DistrictRow dn = *d.row;
    dn.next_o_id = static_cast<uint32_t>(o_id + 1);
    ExecStatus st = t.UpdateRow(db.districts, d.object, dn,
                                ColumnMask::Of(kColDNextOid));
    if (st != ExecStatus::kOk) return st;
    OrderRow orow;
    orow.c_id = p.c_id;
    orow.entry_d = p.date;
    orow.ol_cnt = p.ol_cnt;
    const uint64_t okey = OrderKey(p.w_id, p.d_id, o_id);
    OrderTable::Object* oobj = nullptr;
    if (t.InsertRow(db.orders, okey, orow, &oobj) != WriteStatus::kOk) {
      return ExecStatus::kWriteWriteConflict;
    }
    // Duplicate is expected on a repair/restart round: the same o_id
    // re-inserts the same arena-stable object.
    (void)db.orders_by_customer.Insert(
        CustomerOrderKey(p.w_id, p.d_id, p.c_id, o_id), oobj);
    NewOrderTable::Object* nobj = nullptr;
    if (t.InsertRow(db.new_orders, okey, NewOrderRow{}, &nobj) !=
        WriteStatus::kOk) {
      return ExecStatus::kWriteWriteConflict;
    }
    (void)db.new_order_queue.Insert(okey, nobj);
    for (uint8_t i = 0; i < p.ol_cnt; ++i) {
      const NewOrderItem it = p.items[i];
      auto item = t.Get(db.items, it.i_id, kAllCols);
      if (item.row == nullptr) return ExecStatus::kUserAbort;  // 1% rule
      auto s = t.Get(db.stock, StockKey(it.supply_w, it.i_id),
                     ColumnMask::Of(kColSQuantity));
      if (s.row == nullptr) return ExecStatus::kUserAbort;
      StockRow sn = *s.row;
      if (sn.quantity - it.quantity >= 10) {
        sn.quantity -= it.quantity;
      } else {
        sn.quantity += 91 - it.quantity;
      }
      sn.ytd += it.quantity;
      sn.order_cnt += 1;
      if (it.supply_w != p.w_id) sn.remote_cnt += 1;
      st = t.UpdateRow(
          db.stock, s.object, sn,
          ColumnMask::Of(kColSQuantity) | ColumnMask::Of(kColSCounts));
      if (st != ExecStatus::kOk) return st;
      OrderLineRow ol;
      ol.i_id = it.i_id;
      ol.supply_w_id = it.supply_w;
      ol.quantity = it.quantity;
      ol.amount = it.quantity * item.row->price * (10000 + w_tax) / 10000 *
                  (10000 - c_disc) / 10000;
      std::memcpy(ol.dist_info, s.row->dist[p.d_id - 1],
                  sizeof(ol.dist_info));
      const uint64_t lkey = OrderLineKey(p.w_id, p.d_id, o_id, i + 1);
      OrderLineTable::Object* lobj = nullptr;
      if (t.InsertRow(db.order_lines, lkey, ol, &lobj) != WriteStatus::kOk) {
        return ExecStatus::kWriteWriteConflict;
      }
      (void)db.order_lines_by_district.Insert(lkey, lobj);
    }
    return ExecStatus::kOk;
  };
}

OmvccExecutor::Program OmvccPayment(TpccDb& db, const TpccParams& p) {
  return [&db, p](OmvccTransaction& t) -> ExecStatus {
    auto w = t.Get(db.warehouses, p.w_id, ColumnMask::Of(kColWYtd));
    if (w.row == nullptr) return ExecStatus::kUserAbort;
    WarehouseRow wn = *w.row;
    wn.ytd += p.amount;
    ExecStatus st = t.UpdateRow(db.warehouses, w.object, wn,
                                ColumnMask::Of(kColWYtd));
    if (st != ExecStatus::kOk) return st;
    auto d = t.Get(db.districts, DistrictKey(p.w_id, p.d_id),
                   ColumnMask::Of(kColDYtd));
    if (d.row == nullptr) return ExecStatus::kUserAbort;
    DistrictRow dn = *d.row;
    dn.ytd += p.amount;
    st = t.UpdateRow(db.districts, d.object, dn, ColumnMask::Of(kColDYtd));
    if (st != ExecStatus::kOk) return st;

    CustomerTable::Object* cobj = nullptr;
    CustomerRow cn;
    if (p.by_last_name) {
      const uint64_t wd = DistrictKey(p.c_w_id, p.c_d_id);
      std::vector<ScanResultEntry<CustomerTable>> rs;
      t.RangeScan(db.customers, db.customers_by_name,
                  CustomerNameKey{wd, p.c_last, 0},
                  CustomerNameKey{wd, p.c_last, ~0ULL},
                  [](const uint64_t& key, const CustomerRow& row) {
                    return CustomerNameKey{key / kMaxCustomersPerD,
                                           row.last_name_id, key};
                  },
                  nullptr,
                  ColumnMask::Of(kColCInfo) | ColumnMask::Of(kColCBalance),
                  0, false, &rs);
      if (rs.empty()) return ExecStatus::kUserAbort;
      cobj = rs[MiddleIndex(rs)].object;
      cn = rs[MiddleIndex(rs)].row;
    } else {
      auto c = t.Get(db.customers, CustomerKey(p.c_w_id, p.c_d_id, p.c_id),
                     ColumnMask::Of(kColCInfo) |
                         ColumnMask::Of(kColCBalance));
      if (c.row == nullptr) return ExecStatus::kUserAbort;
      cobj = c.object;
      cn = *c.row;
    }
    const bool bad_credit = cn.bad_credit;
    const uint64_t c_key = cobj->key();
    cn.balance -= p.amount;
    cn.ytd_payment += p.amount;
    cn.payment_cnt += 1;
    ColumnMask mask = ColumnMask::Of(kColCBalance);
    if (bad_credit) {
      std::memmove(cn.data + 16, cn.data, sizeof(cn.data) - 16);
      std::memcpy(cn.data, &c_key, sizeof(c_key));
      std::memcpy(cn.data + 8, &p.amount, sizeof(p.amount));
      mask |= ColumnMask::Of(kColCData);
    }
    st = t.UpdateRow(db.customers, cobj, cn, mask);
    if (st != ExecStatus::kOk) return st;
    HistoryRow h;
    h.c_key = c_key;
    h.d_key = DistrictKey(p.w_id, p.d_id);
    h.amount = p.amount;
    h.date = p.date;
    if (t.InsertRow(db.history, db.NextHistoryKey(), h) != WriteStatus::kOk) {
      return ExecStatus::kWriteWriteConflict;
    }
    return ExecStatus::kOk;
  };
}

OmvccExecutor::Program OmvccOrderStatus(TpccDb& db, const TpccParams& p) {
  return [&db, p](OmvccTransaction& t) -> ExecStatus {
    uint64_t c_id = p.c_id;
    if (p.by_last_name) {
      const uint64_t wd = DistrictKey(p.w_id, p.d_id);
      std::vector<ScanResultEntry<CustomerTable>> rs;
      t.RangeScan(db.customers, db.customers_by_name,
                  CustomerNameKey{wd, p.c_last, 0},
                  CustomerNameKey{wd, p.c_last, ~0ULL},
                  [](const uint64_t& key, const CustomerRow& row) {
                    return CustomerNameKey{key / kMaxCustomersPerD,
                                           row.last_name_id, key};
                  },
                  nullptr,
                  ColumnMask::Of(kColCInfo) | ColumnMask::Of(kColCBalance),
                  0, false, &rs);
      if (rs.empty()) return ExecStatus::kUserAbort;
      c_id = rs[MiddleIndex(rs)].object->key() % kMaxCustomersPerD;
    } else {
      auto c = t.Get(db.customers, CustomerKey(p.w_id, p.d_id, p.c_id),
                     ColumnMask::Of(kColCBalance));
      if (c.row == nullptr) return ExecStatus::kUserAbort;
    }
    std::vector<ScanResultEntry<OrderTable>> orders_rs;
    t.RangeScan(db.orders, db.orders_by_customer,
                CustomerOrderKey(p.w_id, p.d_id, c_id, 0),
                CustomerOrderKey(p.w_id, p.d_id, c_id, kMaxOrdersPerD - 1),
                [](const uint64_t& key, const OrderRow&) { return key; },
                nullptr,
                ColumnMask::Of(kColOCarrier) | ColumnMask::Of(kColOInfo), 1,
                true, &orders_rs);
    if (orders_rs.empty()) return ExecStatus::kUserAbort;
    const uint64_t o_id = orders_rs[0].object->key() % kMaxOrdersPerD;
    std::vector<ScanResultEntry<OrderLineTable>> lines;
    t.RangeScan(db.order_lines, db.order_lines_by_district,
                OrderLineKey(p.w_id, p.d_id, o_id, 0),
                OrderLineKey(p.w_id, p.d_id, o_id, kMaxOrderLines - 1),
                [](const uint64_t& key, const OrderLineRow&) { return key; },
                nullptr, ColumnMask::Of(kColOlInfo), 0, false, &lines);
    int64_t total = 0;
    for (const auto& l : lines) total += l.row.amount;
    (void)total;
    return ExecStatus::kOk;
  };
}

OmvccExecutor::Program OmvccDelivery(TpccDb& db, const TpccParams& p) {
  return [&db, p](OmvccTransaction& t) -> ExecStatus {
    for (uint64_t d = 1; d <= db.scale().n_districts; ++d) {
      std::vector<ScanResultEntry<NewOrderTable>> rs;
      t.RangeScan(db.new_orders, db.new_order_queue, OrderKey(p.w_id, d, 0),
                  OrderKey(p.w_id, d, kMaxOrdersPerD - 1),
                  [](const uint64_t& key, const NewOrderRow&) { return key; },
                  nullptr, kAllCols, 1, false, &rs);
      if (rs.empty()) continue;
      NewOrderTable::Object* nobj = rs[0].object;
      const uint64_t okey = nobj->key();
      const uint64_t o_id = okey % kMaxOrdersPerD;
      ExecStatus st = t.DeleteRow(db.new_orders, nobj);
      if (st != ExecStatus::kOk) return st;
      auto o = t.Get(db.orders, okey,
                     ColumnMask::Of(kColOCarrier) |
                         ColumnMask::Of(kColOInfo));
      if (o.row == nullptr) return ExecStatus::kUserAbort;
      OrderRow on = *o.row;
      on.carrier_id = p.carrier_id;
      st = t.UpdateRow(db.orders, o.object, on,
                       ColumnMask::Of(kColOCarrier));
      if (st != ExecStatus::kOk) return st;
      const uint64_t c_id = o.row->c_id;
      std::vector<ScanResultEntry<OrderLineTable>> lines;
      t.RangeScan(db.order_lines, db.order_lines_by_district,
                  OrderLineKey(p.w_id, d, o_id, 0),
                  OrderLineKey(p.w_id, d, o_id, kMaxOrderLines - 1),
                  [](const uint64_t& key, const OrderLineRow&) {
                    return key;
                  },
                  nullptr,
                  ColumnMask::Of(kColOlDeliveryD) |
                      ColumnMask::Of(kColOlInfo),
                  0, false, &lines);
      int64_t total = 0;
      for (const auto& l : lines) {
        total += l.row.amount;
        OrderLineRow ln = l.row;
        ln.delivery_d = p.date;
        st = t.UpdateRow(db.order_lines, l.object, ln,
                         ColumnMask::Of(kColOlDeliveryD));
        if (st != ExecStatus::kOk) return st;
      }
      auto c = t.Get(db.customers, CustomerKey(p.w_id, d, c_id),
                     ColumnMask::Of(kColCBalance));
      if (c.row == nullptr) return ExecStatus::kUserAbort;
      CustomerRow cn = *c.row;
      cn.balance += total;
      cn.delivery_cnt += 1;
      st = t.UpdateRow(db.customers, c.object, cn,
                       ColumnMask::Of(kColCBalance));
      if (st != ExecStatus::kOk) return st;
    }
    return ExecStatus::kOk;
  };
}

OmvccExecutor::Program OmvccStockLevel(TpccDb& db, const TpccParams& p) {
  return [&db, p](OmvccTransaction& t) -> ExecStatus {
    auto d = t.Get(db.districts, DistrictKey(p.w_id, p.d_id),
                   ColumnMask::Of(kColDNextOid));
    if (d.row == nullptr) return ExecStatus::kUserAbort;
    const uint64_t next_o = d.row->next_o_id;
    const uint64_t lo_o = next_o > 20 ? next_o - 20 : 1;
    std::vector<ScanResultEntry<OrderLineTable>> lines;
    t.RangeScan(db.order_lines, db.order_lines_by_district,
                OrderLineKey(p.w_id, p.d_id, lo_o, 0),
                OrderLineKey(p.w_id, p.d_id, next_o - 1, kMaxOrderLines - 1),
                [](const uint64_t& key, const OrderLineRow&) { return key; },
                nullptr, ColumnMask::Of(kColOlInfo), 0, false, &lines);
    std::vector<uint64_t> seen;
    int low_stock = 0;
    for (const auto& l : lines) {
      if (std::find(seen.begin(), seen.end(), l.row.i_id) != seen.end()) {
        continue;
      }
      seen.push_back(l.row.i_id);
      auto s = t.Get(db.stock, StockKey(p.w_id, l.row.i_id),
                     ColumnMask::Of(kColSQuantity));
      if (s.row != nullptr && s.row->quantity < p.threshold) ++low_stock;
    }
    (void)low_stock;
    return ExecStatus::kOk;
  };
}

}  // namespace

OmvccExecutor::Program OmvccTpccProgram(TpccDb& db, const TpccParams& p) {
  switch (p.type) {
    case TpccTxnType::kNewOrder:
      return OmvccNewOrder(db, p);
    case TpccTxnType::kPayment:
      return OmvccPayment(db, p);
    case TpccTxnType::kOrderStatus:
      return OmvccOrderStatus(db, p);
    case TpccTxnType::kDelivery:
      return OmvccDelivery(db, p);
    case TpccTxnType::kStockLevel:
      return OmvccStockLevel(db, p);
  }
  MV3C_CHECK(false);
  return nullptr;
}

// ---------------------------------------------------------------------------
// Consistency checks (spec clause 3.3.2, subset)
// ---------------------------------------------------------------------------

bool CheckConsistency(TpccDb& db, std::string* why) {
  const TpccScale& s = db.scale();
  for (uint64_t w = 1; w <= s.n_warehouses; ++w) {
    const WarehouseRow* wr = LatestRow<WarehouseTable>(db.warehouses.Find(w));
    if (wr == nullptr) {
      *why = "missing warehouse";
      return false;
    }
    int64_t d_ytd_sum = 0;
    for (uint64_t d = 1; d <= s.n_districts; ++d) {
      const DistrictRow* dr =
          LatestRow<DistrictTable>(db.districts.Find(DistrictKey(w, d)));
      if (dr == nullptr) {
        *why = "missing district";
        return false;
      }
      d_ytd_sum += dr->ytd;
      // Consistency 2: d_next_o_id - 1 == max(o_id) in ORDER.
      const uint64_t max_o = dr->next_o_id - 1;
      if (max_o > 0) {
        if (LatestRow<OrderTable>(db.orders.Find(OrderKey(w, d, max_o))) ==
            nullptr) {
          *why = "d_next_o_id does not match max order id (w=" +
                 std::to_string(w) + " d=" + std::to_string(d) + ")";
          return false;
        }
        OrderTable::Object* beyond = db.orders.Find(OrderKey(w, d, max_o + 1));
        if (beyond != nullptr && LatestRow<OrderTable>(beyond) != nullptr) {
          *why = "order beyond d_next_o_id";
          return false;
        }
      }
      // Consistency 4: the most recent orders carry exactly ol_cnt lines.
      const uint64_t check_from = max_o > 30 ? max_o - 30 : 1;
      for (uint64_t o_id = check_from; o_id <= max_o; ++o_id) {
        OrderTable::Object* oo = db.orders.Find(OrderKey(w, d, o_id));
        const OrderRow* orow = LatestRow<OrderTable>(oo);
        if (orow == nullptr) continue;
        int cnt = 0;
        for (uint64_t ol = 1; ol < kMaxOrderLines; ++ol) {
          OrderLineTable::Object* lo =
              db.order_lines.Find(OrderLineKey(w, d, o_id, ol));
          if (lo != nullptr && LatestRow<OrderLineTable>(lo) != nullptr) {
            ++cnt;
          }
        }
        if (cnt != orow->ol_cnt) {
          *why = "order line count mismatch (w=" + std::to_string(w) +
                 " d=" + std::to_string(d) + " o=" + std::to_string(o_id) +
                 " have=" + std::to_string(cnt) +
                 " want=" + std::to_string(orow->ol_cnt) + ")";
          return false;
        }
      }
    }
    // Consistency 1: W_YTD == sum(D_YTD), compared as deltas against the
    // seeded values so scaled-down district counts also pass.
    const int64_t w_seed = 30000000;
    const int64_t d_seed_sum = 3000000 * static_cast<int64_t>(s.n_districts);
    if (wr->ytd - w_seed != d_ytd_sum - d_seed_sum) {
      *why = "w_ytd delta != sum(d_ytd) delta for w=" + std::to_string(w) +
             ": " + std::to_string(wr->ytd - w_seed) + " vs " +
             std::to_string(d_ytd_sum - d_seed_sum);
      return false;
    }
  }
  return true;
}

}  // namespace mv3c::tpcc
