#ifndef MV3C_WORKLOADS_WAL_REGISTRY_H_
#define MV3C_WORKLOADS_WAL_REGISTRY_H_

#if !defined(MV3C_WAL_ENABLED)
#error "workloads/wal_registry.h requires -DMV3C_WAL=ON (gate the include)"
#endif

#include "wal/catalog.h"
#include "workloads/banking.h"
#include "workloads/tatp.h"
#include "workloads/tpcc.h"
#include "workloads/tpcc_sv.h"
#include "workloads/trading.h"

namespace mv3c {

/// Stable WAL table-id assignments per workload. The id is the only table
/// identity the log carries, so pre-crash and recovery runs must register
/// the same tables with the same ids — keeping every assignment in this
/// one header makes that invariant syntactic. Ids are scoped per workload
/// (each run recovers with one catalog for one database).

inline void RegisterWalTables(wal::Catalog& cat, banking::BankingDb& db) {
  cat.RegisterMvcc(1, &db.accounts, db.manager());
}

inline void RegisterWalTables(wal::Catalog& cat, trading::TradingDb& db) {
  cat.RegisterMvcc(1, &db.securities, db.manager());
  cat.RegisterMvcc(2, &db.customers, db.manager());
  cat.RegisterMvcc(3, &db.trades, db.manager());
  cat.RegisterMvcc(4, &db.trade_lines, db.manager());
}

inline void RegisterWalTables(wal::Catalog& cat, tatp::TatpDb& db) {
  cat.RegisterMvcc(1, &db.subscribers, db.manager());
  cat.RegisterMvcc(2, &db.access_info, db.manager());
  cat.RegisterMvcc(3, &db.special_facilities, db.manager());
  cat.RegisterMvcc(4, &db.call_forwarding, db.manager());
}

inline void RegisterWalTables(wal::Catalog& cat, tpcc::TpccDb& db) {
  cat.RegisterMvcc(1, &db.warehouses, db.manager());
  cat.RegisterMvcc(2, &db.districts, db.manager());
  cat.RegisterMvcc(3, &db.customers, db.manager());
  cat.RegisterMvcc(4, &db.history, db.manager());
  cat.RegisterMvcc(5, &db.orders, db.manager());
  cat.RegisterMvcc(6, &db.new_orders, db.manager());
  cat.RegisterMvcc(7, &db.order_lines, db.manager());
  cat.RegisterMvcc(8, &db.items, db.manager());
  cat.RegisterMvcc(9, &db.stock, db.manager());
}

inline void RegisterWalTables(wal::Catalog& cat, tpcc::SvTpccDb& db) {
  cat.RegisterSv(1, &db.warehouses);
  cat.RegisterSv(2, &db.districts);
  cat.RegisterSv(3, &db.customers);
  cat.RegisterSv(4, &db.history);
  cat.RegisterSv(5, &db.orders);
  cat.RegisterSv(6, &db.new_orders);
  cat.RegisterSv(7, &db.order_lines);
  cat.RegisterSv(8, &db.items);
  cat.RegisterSv(9, &db.stock);
}

}  // namespace mv3c

#endif  // MV3C_WORKLOADS_WAL_REGISTRY_H_
