#ifndef MV3C_WORKLOADS_TPCC_H_
#define MV3C_WORKLOADS_TPCC_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <vector>

#include "common/nurand.h"
#include "common/random.h"
#include "index/ordered_index.h"
#include "mv3c/mv3c_executor.h"
#include "omvcc/omvcc_transaction.h"

namespace mv3c::tpcc {

/// TPC-C for the MVCC engines (paper §6.1.1, Figures 8 and 11): all nine
/// tables, the full five-transaction mix, NURand key skew, and the spec's
/// 1% invalid-item rollback. Table sizes follow the spec (10 districts per
/// warehouse, 3000 customers per district, 100k items/stock) but are
/// parameters so tests can shrink them.
///
/// Contention behavior mirrors the paper's description:
///   * Payment's warehouse/district YTD read-modify-writes and New-Order's
///     stock updates run under kAllowMultiple: conflicts surface at
///     validation and MV3C repairs them.
///   * New-Order's district next-o-id bump also produces ORDER/NEW-ORDER
///     primary-key collisions between concurrent transactions; inserts are
///     always fail-fast (§2.3.1), so those conflicts prematurely abort —
///     "almost all conflicting transactions in TPC-C lead to premature
///     abort during execution" (§6.1.1).
///   * Attribute-level validation (§4.1) keeps Payment and New-Order from
///     conflicting on the rows they share (disjoint columns).

// ---------------------------------------------------------------------------
// Keys (packed into uint64 for the hash index; helpers keep the packing in
// one place).
// ---------------------------------------------------------------------------

inline constexpr uint64_t kMaxDistrictsPerW = 16;
inline constexpr uint64_t kMaxCustomersPerD = 1 << 14;
inline constexpr uint64_t kMaxOrdersPerD = 1 << 24;
inline constexpr uint64_t kMaxOrderLines = 16;

inline uint64_t DistrictKey(uint64_t w, uint64_t d) {
  return w * kMaxDistrictsPerW + d;
}
inline uint64_t CustomerKey(uint64_t w, uint64_t d, uint64_t c) {
  return DistrictKey(w, d) * kMaxCustomersPerD + c;
}
inline uint64_t OrderKey(uint64_t w, uint64_t d, uint64_t o) {
  return DistrictKey(w, d) * kMaxOrdersPerD + o;
}
inline uint64_t OrderLineKey(uint64_t w, uint64_t d, uint64_t o,
                             uint64_t ol) {
  return OrderKey(w, d, o) * kMaxOrderLines + ol;
}
inline uint64_t StockKey(uint64_t w, uint64_t i) { return (w << 20) | i; }

// ---------------------------------------------------------------------------
// Rows. Char payloads approximate the spec's record sizes (the §6.2 memory
// experiment depends on realistic big-vs-small records: Stock is big,
// History small).
// ---------------------------------------------------------------------------

inline constexpr int kColWTax = 0;
inline constexpr int kColWYtd = 1;
struct WarehouseRow {
  int64_t ytd = 0;
  int32_t tax = 0;  // basis points
  char name[10] = {};
  char address[40] = {};
  char pad_[2] = {};  // explicit tail padding: WAL rows must have none

  void MergeFrom(const WarehouseRow& base, ColumnMask modified) {
    if (!modified.Contains(kColWTax)) tax = base.tax;
    if (!modified.Contains(kColWYtd)) ytd = base.ytd;
  }
};

inline constexpr int kColDTax = 0;
inline constexpr int kColDNextOid = 1;
inline constexpr int kColDYtd = 2;
struct DistrictRow {
  int64_t ytd = 0;
  uint32_t next_o_id = 1;
  int32_t tax = 0;
  char name[10] = {};
  char address[40] = {};
  char pad_[6] = {};  // explicit tail padding: WAL rows must have none

  void MergeFrom(const DistrictRow& base, ColumnMask modified) {
    if (!modified.Contains(kColDTax)) tax = base.tax;
    if (!modified.Contains(kColDNextOid)) next_o_id = base.next_o_id;
    if (!modified.Contains(kColDYtd)) ytd = base.ytd;
  }
};

inline constexpr int kColCInfo = 0;      // discount, credit, names
inline constexpr int kColCBalance = 1;   // balance, ytd_payment, cnts
inline constexpr int kColCData = 2;      // credit data
struct CustomerRow {
  int64_t balance = -1000;  // centimes, spec: -10.00
  int64_t ytd_payment = 1000;
  int32_t payment_cnt = 1;
  int32_t delivery_cnt = 0;
  int32_t discount = 0;  // basis points
  uint16_t last_name_id = 0;
  bool bad_credit = false;
  char first[16] = {};
  char middle[2] = {'O', 'E'};
  char street[40] = {};
  char phone[16] = {};
  char data[250] = {};
  char pad_[5] = {};  // explicit tail padding: WAL rows must have none

  void MergeFrom(const CustomerRow& base, ColumnMask modified) {
    if (!modified.Contains(kColCInfo)) {
      discount = base.discount;
      last_name_id = base.last_name_id;
      bad_credit = base.bad_credit;
      std::memcpy(first, base.first, sizeof(first));
    }
    if (!modified.Contains(kColCBalance)) {
      balance = base.balance;
      ytd_payment = base.ytd_payment;
      payment_cnt = base.payment_cnt;
      delivery_cnt = base.delivery_cnt;
    }
    if (!modified.Contains(kColCData)) {
      std::memcpy(data, base.data, sizeof(data));
    }
  }
};

struct HistoryRow {
  uint64_t c_key = 0;
  uint64_t d_key = 0;
  int64_t amount = 0;
  uint64_t date = 0;
  char data[24] = {};
};

inline constexpr int kColOCarrier = 0;
inline constexpr int kColOInfo = 1;
struct OrderRow {
  uint64_t c_id = 0;
  uint64_t entry_d = 0;
  int32_t carrier_id = -1;  // -1 = undelivered
  uint8_t ol_cnt = 0;
  bool all_local = true;
  char pad_[2] = {};  // explicit tail padding: WAL rows must have none

  void MergeFrom(const OrderRow& base, ColumnMask modified) {
    if (!modified.Contains(kColOCarrier)) carrier_id = base.carrier_id;
    if (!modified.Contains(kColOInfo)) {
      c_id = base.c_id;
      entry_d = base.entry_d;
      ol_cnt = base.ol_cnt;
      all_local = base.all_local;
    }
  }
};

struct NewOrderRow {
  uint8_t filler = 0;
};

inline constexpr int kColOlDeliveryD = 0;
inline constexpr int kColOlInfo = 1;
struct OrderLineRow {
  uint64_t i_id = 0;
  uint64_t supply_w_id = 0;
  uint64_t delivery_d = 0;  // 0 = undelivered
  int64_t amount = 0;
  uint8_t quantity = 0;
  char dist_info[24] = {};
  char pad_[7] = {};  // explicit tail padding: WAL rows must have none

  void MergeFrom(const OrderLineRow& base, ColumnMask modified) {
    if (!modified.Contains(kColOlDeliveryD)) delivery_d = base.delivery_d;
    if (!modified.Contains(kColOlInfo)) {
      i_id = base.i_id;
      supply_w_id = base.supply_w_id;
      amount = base.amount;
      quantity = base.quantity;
      std::memcpy(dist_info, base.dist_info, sizeof(dist_info));
    }
  }
};

struct ItemRow {
  int64_t price = 0;
  uint32_t im_id = 0;
  char name[24] = {};
  char data[50] = {};
  char pad_[2] = {};  // explicit tail padding: WAL rows must have none
};

inline constexpr int kColSQuantity = 0;
inline constexpr int kColSCounts = 1;
struct StockRow {
  // ytd leads so the int32 trio packs without internal padding (WAL rows
  // must have none).
  int64_t ytd = 0;
  int32_t quantity = 0;
  int32_t order_cnt = 0;
  int32_t remote_cnt = 0;
  char dist[10][24] = {};
  char data[50] = {};
  char pad_[2] = {};  // explicit tail padding

  void MergeFrom(const StockRow& base, ColumnMask modified) {
    if (!modified.Contains(kColSQuantity)) quantity = base.quantity;
    if (!modified.Contains(kColSCounts)) {
      ytd = base.ytd;
      order_cnt = base.order_cnt;
      remote_cnt = base.remote_cnt;
    }
  }
};

using WarehouseTable = Table<uint64_t, WarehouseRow>;
using DistrictTable = Table<uint64_t, DistrictRow>;
using CustomerTable = Table<uint64_t, CustomerRow>;
using HistoryTable = Table<uint64_t, HistoryRow>;
using OrderTable = Table<uint64_t, OrderRow>;
using NewOrderTable = Table<uint64_t, NewOrderRow>;
using OrderLineTable = Table<uint64_t, OrderLineRow>;
using ItemTable = Table<uint64_t, ItemRow>;
using StockTable = Table<uint64_t, StockRow>;

// Secondary index key/partition types.

/// Customers ordered by (w, d, last-name id, c_id): Payment/Order-Status
/// by-last-name selection takes the middle customer of the run.
struct CustomerNameKey {
  uint64_t wd = 0;  // DistrictKey
  uint16_t last_name_id = 0;
  uint64_t c_key = 0;
  friend auto operator<=>(const CustomerNameKey&,
                          const CustomerNameKey&) = default;
};
struct CustomerNamePartition {
  size_t operator()(const CustomerNameKey& k) const { return k.wd; }
};
using CustomerNameIndex =
    OrderedIndex<CustomerNameKey, CustomerTable::Object*,
                 CustomerNamePartition>;

/// Packed-uint64 secondary indexes: dividing the key by a constant yields
/// the partition (a district, or a customer), so range scans stay within
/// one ordered shard.
template <uint64_t Divisor>
struct DivPartition {
  size_t operator()(uint64_t key) const { return key / Divisor; }
};

/// NEW-ORDER queue per district: Delivery scans ascending for the oldest
/// undelivered order.
using NewOrderIndex =
    OrderedIndex<uint64_t, NewOrderTable::Object*,
                 DivPartition<kMaxOrdersPerD>>;
/// Orders by customer (key = CustomerKey * kMaxOrdersPerD + o): Order-
/// Status scans descending for the customer's latest order.
using CustomerOrderIndex =
    OrderedIndex<uint64_t, OrderTable::Object*, DivPartition<kMaxOrdersPerD>>;
inline uint64_t CustomerOrderKey(uint64_t w, uint64_t d, uint64_t c,
                                 uint64_t o) {
  return CustomerKey(w, d, c) * kMaxOrdersPerD + o;
}
/// Order lines by district (primary-key order): Delivery reads one order's
/// lines, Stock-Level the lines of the last 20 orders.
using OrderLineIndex =
    OrderedIndex<uint64_t, OrderLineTable::Object*,
                 DivPartition<kMaxOrdersPerD * kMaxOrderLines>>;

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

/// Scale knobs: spec values by default, smaller for tests.
struct TpccScale {
  uint64_t n_warehouses = 1;
  uint64_t n_districts = 10;
  uint64_t n_customers_per_d = 3000;
  uint64_t n_items = 100000;
  /// Preloaded orders per district (spec: 3000, the last 900 undelivered).
  uint64_t preload_orders_per_d = 3000;
  uint64_t preload_new_orders_per_d = 900;
};

class TpccDb {
 public:
  TpccDb(TransactionManager* mgr, const TpccScale& scale)
      : warehouses("WAREHOUSE", scale.n_warehouses,
                   WwPolicy::kAllowMultiple),
        districts("DISTRICT", scale.n_warehouses * scale.n_districts,
                  WwPolicy::kAllowMultiple),
        customers("CUSTOMER",
                  scale.n_warehouses * scale.n_districts *
                      scale.n_customers_per_d,
                  WwPolicy::kAllowMultiple),
        history("HISTORY", 1 << 16),
        orders("ORDER", 1 << 16, WwPolicy::kAllowMultiple),
        new_orders("NEW-ORDER", 1 << 16),
        order_lines("ORDER-LINE", 1 << 18, WwPolicy::kAllowMultiple),
        items("ITEM", scale.n_items),
        stock("STOCK", scale.n_warehouses * scale.n_items,
              WwPolicy::kAllowMultiple),
        mgr_(mgr),
        scale_(scale) {}

  /// Populates all nine tables per the spec's rules (scaled).
  void Load(uint64_t seed = 1);

  /// Physically removes NEW-ORDER queue entries whose rows were delivered
  /// (tombstoned) and are no longer visible to any active transaction.
  /// Delivery's oldest-undelivered scan otherwise re-skips every past
  /// delivery's ghost on each run. Call from driver maintenance.
  size_t CleanupNewOrderQueue();

  TransactionManager* manager() { return mgr_; }
  const TpccScale& scale() const { return scale_; }

  /// Next history primary key (HISTORY has no natural key).
  uint64_t NextHistoryKey() {
    return history_seq_.fetch_add(1, std::memory_order_relaxed);
  }

  WarehouseTable warehouses;
  DistrictTable districts;
  CustomerTable customers;
  HistoryTable history;
  OrderTable orders;
  NewOrderTable new_orders;
  OrderLineTable order_lines;
  ItemTable items;
  StockTable stock;

  CustomerNameIndex customers_by_name;
  NewOrderIndex new_order_queue;
  CustomerOrderIndex orders_by_customer;
  OrderLineIndex order_lines_by_district;

 private:
  TransactionManager* mgr_;
  TpccScale scale_;
  std::atomic<uint64_t> history_seq_{0};
};

// ---------------------------------------------------------------------------
// Transaction inputs and generator
// ---------------------------------------------------------------------------

enum class TpccTxnType : uint8_t {
  kNewOrder,
  kPayment,
  kOrderStatus,
  kDelivery,
  kStockLevel,
};

struct NewOrderItem {
  uint64_t i_id = 0;
  uint64_t supply_w = 0;
  uint8_t quantity = 1;
  uint8_t pad_[7] = {};  // explicit tail padding: wire/no-padding contract
};
static_assert(std::has_unique_object_representations_v<NewOrderItem>);

/// Field order is wire layout: TpccParams travels verbatim inside
/// serving-protocol frames (src/server/protocol.h), so wide fields lead
/// and the byte-sized tail is padded explicitly (§5f discipline).
struct TpccParams {
  uint64_t w_id = 0;
  uint64_t d_id = 0;
  uint64_t c_id = 0;
  int64_t amount = 0;          // Payment
  uint64_t c_w_id = 0;         // Payment: customer's warehouse
  uint64_t c_d_id = 0;
  uint64_t date = 0;
  int32_t carrier_id = 0;      // Delivery
  int32_t threshold = 10;      // Stock-Level
  uint16_t c_last = 0;
  TpccTxnType type = TpccTxnType::kNewOrder;
  bool by_last_name = false;
  uint8_t ol_cnt = 0;          // New-Order
  uint8_t pad_[3] = {};
  NewOrderItem items[kMaxOrderLines];
};
static_assert(std::has_unique_object_representations_v<TpccParams>);

/// Standard-mix generator with the spec's NURand constants (clause 2.1.6)
/// and the 1% invalid-item rule.
class TpccGenerator {
 public:
  TpccGenerator(const TpccScale& scale, uint64_t seed)
      : scale_(scale),
        rng_(seed),
        nurand_c_last_(123),
        nurand_c_id_(259),
        nurand_i_id_(x_factor_) {}

  TpccParams Next();

  /// Last-name id distribution used by both the loader and the generator.
  uint16_t RandomLastName(Xoshiro256& rng, const NuRand& nurand) const {
    return static_cast<uint16_t>(nurand.Next(rng, 255, 0, 999));
  }

 private:
  TpccScale scale_;
  Xoshiro256 rng_;
  NuRand nurand_c_last_;
  NuRand nurand_c_id_;
  NuRand nurand_i_id_;
  static constexpr uint64_t x_factor_ = 42;
  uint64_t date_seq_ = 1;
};

// ---------------------------------------------------------------------------
// Transaction programs
// ---------------------------------------------------------------------------

Mv3cExecutor::Program Mv3cTpccProgram(TpccDb& db, const TpccParams& p);
OmvccExecutor::Program OmvccTpccProgram(TpccDb& db, const TpccParams& p);

/// TPC-C consistency conditions (spec clause 3.3.2, subset): used by tests
/// after workload runs. Returns true and fills `why` on the first
/// violation found.
bool CheckConsistency(TpccDb& db, std::string* why);

}  // namespace mv3c::tpcc

#endif  // MV3C_WORKLOADS_TPCC_H_
