#ifndef MV3C_WORKLOADS_BANKING_H_
#define MV3C_WORKLOADS_BANKING_H_

#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "mv3c/mv3c_executor.h"
#include "mv3c/mv3c_transaction.h"
#include "omvcc/omvcc_transaction.h"

namespace mv3c::banking {

// Column ids of the Account table.
inline constexpr int kColBalance = 0;
inline constexpr int kColDate = 1;
inline constexpr ColumnMask kBalanceMask = ColumnMask::Of(kColBalance);
inline constexpr ColumnMask kDateMask = ColumnMask::Of(kColDate);

/// One account row. Fixed-point money (centimes) to keep arithmetic exact.
struct AccountRow {
  int64_t balance = 0;
  int64_t last_date = 0;

  void MergeFrom(const AccountRow& base, ColumnMask modified) {
    if (!modified.Contains(kColBalance)) balance = base.balance;
    if (!modified.Contains(kColDate)) last_date = base.last_date;
  }
};

using AccountTable = Table<int64_t, AccountRow>;

/// The Banking database of the paper's Example 2: an Account table with the
/// central fee account at id 0 and customer accounts 1..n.
class BankingDb {
 public:
  static constexpr int64_t kFeeAccount = 0;

  BankingDb(TransactionManager* mgr, int64_t n_accounts,
            int64_t initial_balance)
      : accounts("Account", static_cast<size_t>(n_accounts) + 1,
                 WwPolicy::kAllowMultiple),
        mgr_(mgr),
        n_accounts_(n_accounts),
        initial_balance_(initial_balance) {}

  /// Seeds the fee account (balance 0) and n customer accounts. The load
  /// runs serially with no retry loop around it, so a failed insert (only
  /// possible under fault injection) must abort loudly, never silently
  /// leave an account without its initial version.
  void Load() {
    Mv3cExecutor loader(mgr_);
    loader.MustRun([this](Mv3cTransaction& t) {
      for (int64_t id = 0; id <= n_accounts_; ++id) {
        const WriteStatus ws = t.InsertRow(
            accounts, id,
            AccountRow{id == kFeeAccount ? 0 : initial_balance_, 0});
        MV3C_CHECK(ws == WriteStatus::kOk);
      }
      return ExecStatus::kOk;
    });
  }

  /// Sum of all balances; must be invariant under TransferMoney.
  int64_t TotalBalance() {
    int64_t total = 0;
    Mv3cExecutor e(mgr_);
    e.MustRun([&](Mv3cTransaction& t) {
      return t.Scan(
          accounts, [](const AccountRow&) { return true; }, kBalanceMask,
          false,
          [&total](Mv3cTransaction&,
                   const std::vector<ScanEntry<AccountTable>>& rs) {
            total = 0;
            for (const auto& e : rs) total += e.row.balance;
            return ExecStatus::kOk;
          });
    });
    return total;
  }

  int64_t BalanceOf(int64_t id) {
    int64_t out = -1;
    Mv3cExecutor e(mgr_);
    e.MustRun([&](Mv3cTransaction& t) {
      return t.Lookup(accounts, id, kBalanceMask,
                      [&out](Mv3cTransaction&, AccountTable::Object*,
                             const AccountRow* row) {
                        if (row != nullptr) out = row->balance;
                        return ExecStatus::kOk;
                      });
    });
    return out;
  }

  TransactionManager* manager() { return mgr_; }
  int64_t n_accounts() const { return n_accounts_; }
  int64_t initial_balance() const { return initial_balance_; }

  AccountTable accounts;

 private:
  TransactionManager* mgr_;
  int64_t n_accounts_;
  int64_t initial_balance_;
};

/// Parameters of one TransferMoney invocation. `with_fee` distinguishes
/// TransferMoney from NoFeeTransferMoney (paper §6.1.2): without the fee
/// payment to the central account, transfers over disjoint accounts do not
/// conflict.
struct TransferParams {
  int64_t from = 0;
  int64_t to = 0;
  int64_t amount = 0;
  bool with_fee = true;
  uint8_t pad_[7] = {};  // explicit tail padding: wire/no-padding contract
};
// TransferParams travels verbatim inside serving-protocol frames
// (src/server/protocol.h), so it follows the §5f no-padding discipline.
static_assert(std::has_unique_object_representations_v<TransferParams>);

inline int64_t FeeOf(const TransferParams& p) {
  if (!p.with_fee) return 0;
  return p.amount < 100 ? 1 : p.amount / 100;
}

/// TransferMoney in the MV3C DSL (paper Figure 3): root predicate P1 on the
/// sender, child predicates P2 (receiver) and P3 (fee account).
inline Mv3cExecutor::Program Mv3cTransferMoney(BankingDb& db,
                                               TransferParams p) {
  return [&db, p](Mv3cTransaction& t) -> ExecStatus {
    const int64_t fee = FeeOf(p);
    return t.Lookup(
        db.accounts, p.from, kBalanceMask,
        [&db, p, fee](Mv3cTransaction& t, AccountTable::Object* fm,
                      const AccountRow* fm_row) -> ExecStatus {
          if (fm_row == nullptr || fm_row->balance < p.amount + fee) {
            return ExecStatus::kUserAbort;
          }
          AccountRow fm_new = *fm_row;
          fm_new.balance -= p.amount + fee;
          ExecStatus st = t.UpdateRow(db.accounts, fm, fm_new, kBalanceMask);
          if (st != ExecStatus::kOk) return st;
          st = t.Lookup(db.accounts, p.to, kBalanceMask,
                        [&db, p](Mv3cTransaction& t, AccountTable::Object* to,
                                 const AccountRow* to_row) -> ExecStatus {
                          if (to_row == nullptr) return ExecStatus::kUserAbort;
                          AccountRow to_new = *to_row;
                          to_new.balance += p.amount;
                          return t.UpdateRow(db.accounts, to, to_new,
                                             kBalanceMask);
                        });
          if (st != ExecStatus::kOk) return st;
          if (fee == 0) return ExecStatus::kOk;
          return t.Lookup(
              db.accounts, BankingDb::kFeeAccount, kBalanceMask,
              [&db, fee](Mv3cTransaction& t, AccountTable::Object* fa,
                         const AccountRow* fa_row) -> ExecStatus {
                AccountRow fa_new = *fa_row;
                fa_new.balance += fee;
                return t.UpdateRow(db.accounts, fa, fa_new, kBalanceMask);
              });
        });
  };
}

/// TransferMoney against the OMVCC baseline (straight-line, Figure 2).
inline OmvccExecutor::Program OmvccTransferMoney(BankingDb& db,
                                                 TransferParams p) {
  return [&db, p](OmvccTransaction& t) -> ExecStatus {
    const int64_t fee = FeeOf(p);
    auto fm = t.Get(db.accounts, p.from, kBalanceMask);
    if (fm.row == nullptr || fm.row->balance < p.amount + fee) {
      return ExecStatus::kUserAbort;
    }
    AccountRow fm_new = *fm.row;
    fm_new.balance -= p.amount + fee;
    ExecStatus st = t.UpdateRow(db.accounts, fm.object, fm_new, kBalanceMask);
    if (st != ExecStatus::kOk) return st;
    auto to = t.Get(db.accounts, p.to, kBalanceMask);
    if (to.row == nullptr) return ExecStatus::kUserAbort;
    AccountRow to_new = *to.row;
    to_new.balance += p.amount;
    st = t.UpdateRow(db.accounts, to.object, to_new, kBalanceMask);
    if (st != ExecStatus::kOk) return st;
    if (fee == 0) return ExecStatus::kOk;
    auto fa = t.Get(db.accounts, BankingDb::kFeeAccount, kBalanceMask);
    AccountRow fa_new = *fa.row;
    fa_new.balance += fee;
    return t.UpdateRow(db.accounts, fa.object, fa_new, kBalanceMask);
  };
}

/// SumAll: read-only scan over every account (paper Example 2).
inline Mv3cExecutor::Program Mv3cSumAll(BankingDb& db,
                                        int64_t* out = nullptr) {
  return [&db, out](Mv3cTransaction& t) {
    return t.Scan(
        db.accounts, [](const AccountRow&) { return true; }, kBalanceMask,
        false,
        [out](Mv3cTransaction&,
              const std::vector<ScanEntry<AccountTable>>& rs) {
          int64_t total = 0;
          for (const auto& e : rs) total += e.row.balance;
          if (out != nullptr) *out = total;
          return ExecStatus::kOk;
        });
  };
}

inline OmvccExecutor::Program OmvccSumAll(BankingDb& db,
                                          int64_t* out = nullptr) {
  return [&db, out](OmvccTransaction& t) {
    std::vector<ScanResultEntry<AccountTable>> rs;
    t.Scan(
        db.accounts, [](const AccountRow&) { return true; }, kBalanceMask,
        &rs);
    int64_t total = 0;
    for (const auto& e : rs) total += e.row.balance;
    if (out != nullptr) *out = total;
    return ExecStatus::kOk;
  };
}

/// Bonus: +1 to every account with balance >= threshold (full scan; the
/// §4.2 result-set reuse showcase).
inline Mv3cExecutor::Program Mv3cBonus(BankingDb& db, int64_t threshold,
                                       bool reuse_result_set) {
  return [&db, threshold, reuse_result_set](Mv3cTransaction& t) {
    return t.Scan(
        db.accounts,
        [threshold](const AccountRow& r) { return r.balance >= threshold; },
        kBalanceMask, reuse_result_set,
        [&db](Mv3cTransaction& t,
              const std::vector<ScanEntry<AccountTable>>& rs) -> ExecStatus {
          for (const auto& e : rs) {
            AccountRow n = e.row;
            n.balance += 1;
            const ExecStatus st =
                t.UpdateRow(db.accounts, e.object, n, kBalanceMask);
            if (st != ExecStatus::kOk) return st;
          }
          return ExecStatus::kOk;
        });
  };
}

inline OmvccExecutor::Program OmvccBonus(BankingDb& db, int64_t threshold) {
  return [&db, threshold](OmvccTransaction& t) -> ExecStatus {
    std::vector<ScanResultEntry<AccountTable>> rs;
    t.Scan(
        db.accounts,
        [threshold](const AccountRow& r) { return r.balance >= threshold; },
        kBalanceMask, &rs);
    for (const auto& e : rs) {
      AccountRow n = e.row;
      n.balance += 1;
      const ExecStatus st =
          t.UpdateRow(db.accounts, e.object, n, kBalanceMask);
      if (st != ExecStatus::kOk) return st;
    }
    return ExecStatus::kOk;
  };
}

/// Generates TransferMoney parameter streams. `fee_fraction_percent`
/// controls the TransferMoney / NoFeeTransferMoney mix of Figure 7(b):
/// 100 means every transfer pays the fee (all conflict on the central
/// account), 0 means none do.
class TransferGenerator {
 public:
  TransferGenerator(int64_t n_accounts, int fee_fraction_percent,
                    uint64_t seed)
      : n_(n_accounts), fee_percent_(fee_fraction_percent), rng_(seed) {}

  TransferParams Next() {
    TransferParams p;
    p.from = 1 + static_cast<int64_t>(rng_.NextBounded(n_));
    do {
      p.to = 1 + static_cast<int64_t>(rng_.NextBounded(n_));
    } while (p.to == p.from);
    p.amount = rng_.UniformInt(1, 300);
    p.with_fee =
        static_cast<int>(rng_.NextBounded(100)) < fee_percent_;
    return p;
  }

 private:
  int64_t n_;
  int fee_percent_;
  Xoshiro256 rng_;
};

}  // namespace mv3c::banking

#endif  // MV3C_WORKLOADS_BANKING_H_
