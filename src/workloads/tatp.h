#ifndef MV3C_WORKLOADS_TATP_H_
#define MV3C_WORKLOADS_TATP_H_

#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/nurand.h"
#include "common/random.h"
#include "mv3c/mv3c_executor.h"
#include "omvcc/omvcc_transaction.h"

namespace mv3c::tatp {

/// The TATP telecom benchmark (paper Appendix C.1): four tables keyed by
/// subscriber, a 7-transaction mix that is 80% read-only, and non-uniform
/// subscriber selection. Scale factor 1 is 1,000,000 subscribers; the
/// population is a parameter so tests can shrink it.
///
/// Per the paper, the decisive difference between the engines on TATP is
/// UPDATE_LOCATION: a blind write that MV3C accepts without conflict
/// (§2.4.1) while OMVCC prematurely aborts on the write-write conflict.

// --- rows and keys ---

inline constexpr int kColBits = 0;
inline constexpr int kColMscLocation = 1;
inline constexpr int kColVlrLocation = 2;

struct SubscriberRow {
  uint64_t sub_nbr = 0;
  uint32_t bits = 0;        // bit_1..bit_10
  uint32_t msc_location = 0;
  uint32_t vlr_location = 0;
  char pad_[4] = {};  // explicit tail padding: WAL rows must have none

  void MergeFrom(const SubscriberRow& base, ColumnMask modified) {
    if (!modified.Contains(kColBits)) bits = base.bits;
    if (!modified.Contains(kColMscLocation)) msc_location = base.msc_location;
    if (!modified.Contains(kColVlrLocation)) vlr_location = base.vlr_location;
  }
};

struct AccessInfoKey {
  uint64_t s_id = 0;
  uint8_t ai_type = 0;  // 1..4
  char pad_[7] = {};    // explicit tail padding: WAL keys must have none
  friend bool operator==(const AccessInfoKey&, const AccessInfoKey&) =
      default;
};
struct AccessInfoRow {
  // data3 leads so the uint16 pair packs without internal padding (WAL
  // rows must have none).
  uint64_t data3 = 0;
  uint64_t data4 = 0;
  uint16_t data1 = 0;
  uint16_t data2 = 0;
  char pad_[4] = {};  // explicit tail padding
};

struct SpecialFacilityKey {
  uint64_t s_id = 0;
  uint8_t sf_type = 0;  // 1..4
  char pad_[7] = {};    // explicit tail padding: WAL keys must have none
  friend bool operator==(const SpecialFacilityKey&,
                         const SpecialFacilityKey&) = default;
};
inline constexpr int kColIsActive = 0;
inline constexpr int kColDataA = 1;
struct SpecialFacilityRow {
  // data_b leads so the narrow members pack without internal padding (WAL
  // rows must have none).
  uint64_t data_b = 0;
  uint16_t error_cntrl = 0;
  uint16_t data_a = 0;
  bool is_active = true;
  char pad_[3] = {};  // explicit tail padding

  void MergeFrom(const SpecialFacilityRow& base, ColumnMask modified) {
    if (!modified.Contains(kColIsActive)) is_active = base.is_active;
    if (!modified.Contains(kColDataA)) {
      error_cntrl = base.error_cntrl;
      data_a = base.data_a;
      data_b = base.data_b;
    }
  }
};

struct CallForwardingKey {
  uint64_t s_id = 0;
  uint8_t sf_type = 0;
  uint8_t start_time = 0;  // 0, 8, 16
  char pad_[6] = {};       // explicit tail padding: WAL keys must have none
  friend bool operator==(const CallForwardingKey&,
                         const CallForwardingKey&) = default;
};
struct CallForwardingRow {
  // numberx leads so end_time packs without internal padding (WAL rows
  // must have none).
  uint64_t numberx = 0;
  uint8_t end_time = 0;
  char pad_[7] = {};  // explicit tail padding
};

struct KeyHash {
  size_t operator()(const AccessInfoKey& k) const {
    return std::hash<uint64_t>()(k.s_id * 31 + k.ai_type);
  }
  size_t operator()(const SpecialFacilityKey& k) const {
    return std::hash<uint64_t>()(k.s_id * 37 + k.sf_type);
  }
  size_t operator()(const CallForwardingKey& k) const {
    return std::hash<uint64_t>()(k.s_id * 41 + k.sf_type * 5 + k.start_time);
  }
};

}  // namespace mv3c::tatp

// Hash support for the composite keys (CuckooMap defaults to std::hash).
template <>
struct std::hash<mv3c::tatp::AccessInfoKey> : mv3c::tatp::KeyHash {};
template <>
struct std::hash<mv3c::tatp::SpecialFacilityKey> : mv3c::tatp::KeyHash {};
template <>
struct std::hash<mv3c::tatp::CallForwardingKey> : mv3c::tatp::KeyHash {};

namespace mv3c::tatp {

using SubscriberTable = Table<uint64_t, SubscriberRow>;
using AccessInfoTable = Table<AccessInfoKey, AccessInfoRow>;
using SpecialFacilityTable = Table<SpecialFacilityKey, SpecialFacilityRow>;
using CallForwardingTable = Table<CallForwardingKey, CallForwardingRow>;

class TatpDb {
 public:
  TatpDb(TransactionManager* mgr, uint64_t n_subscribers)
      : subscribers("Subscriber", n_subscribers, WwPolicy::kAllowMultiple),
        access_info("Access_Info", n_subscribers * 3),
        special_facilities("Special_Facility", n_subscribers * 3),
        call_forwarding("Call_Forwarding", n_subscribers * 2),
        mgr_(mgr),
        n_(n_subscribers) {}

  /// TATP population rules: each subscriber has 1-4 access-info rows and
  /// 1-4 special facilities; ~31% of (facility, time-slot) pairs carry an
  /// initial call-forwarding row.
  void Load(uint64_t seed = 1) {
    Xoshiro256 rng(seed);
    Mv3cExecutor loader(mgr_);
    for (uint64_t base = 0; base < n_; base += 2048) {
      loader.MustRun([&](Mv3cTransaction& t) {
        const uint64_t end = std::min(n_, base + 2048);
        for (uint64_t s = base; s < end; ++s) {
          SubscriberRow row;
          row.sub_nbr = SubNbrOf(s);
          row.bits = static_cast<uint32_t>(rng.Next());
          row.msc_location = static_cast<uint32_t>(rng.Next());
          row.vlr_location = static_cast<uint32_t>(rng.Next());
          t.InsertRow(subscribers, s, row);
          const int n_ai = 1 + static_cast<int>(rng.NextBounded(4));
          for (int a = 1; a <= n_ai; ++a) {
            AccessInfoRow ai;
            ai.data1 = static_cast<uint16_t>(rng.Next());
            ai.data2 = static_cast<uint16_t>(rng.Next());
            ai.data3 = rng.Next();
            ai.data4 = rng.Next();
            t.InsertRow(access_info, {s, static_cast<uint8_t>(a)}, ai);
          }
          const int n_sf = 1 + static_cast<int>(rng.NextBounded(4));
          for (int f = 1; f <= n_sf; ++f) {
            SpecialFacilityRow sf;
            sf.is_active = rng.NextBounded(100) < 85;
            sf.error_cntrl = static_cast<uint16_t>(rng.Next());
            sf.data_a = static_cast<uint16_t>(rng.Next());
            sf.data_b = rng.Next();
            t.InsertRow(special_facilities, {s, static_cast<uint8_t>(f)}, sf);
            for (uint8_t start : {0, 8, 16}) {
              if (rng.NextBounded(100) < 31) {
                CallForwardingRow cf;
                cf.end_time = static_cast<uint8_t>(start + 8);
                cf.numberx = rng.Next();
                t.InsertRow(call_forwarding,
                            {s, static_cast<uint8_t>(f), start}, cf);
              }
            }
          }
        }
        return ExecStatus::kOk;
      });
    }
  }

  static uint64_t SubNbrOf(uint64_t s_id) { return s_id; }

  uint64_t n_subscribers() const { return n_; }
  TransactionManager* manager() { return mgr_; }

  SubscriberTable subscribers;
  AccessInfoTable access_info;
  SpecialFacilityTable special_facilities;
  CallForwardingTable call_forwarding;

 private:
  TransactionManager* mgr_;
  uint64_t n_;
};

// --- transaction parameters & generator ---

enum class TxnType : uint8_t {
  kGetSubscriberData,
  kGetNewDestination,
  kGetAccessData,
  kUpdateSubscriberData,
  kUpdateLocation,
  kInsertCallForwarding,
  kDeleteCallForwarding,
};

/// Field order is wire layout: TatpParams travels verbatim inside
/// serving-protocol frames (src/server/protocol.h), so wide fields lead
/// and the byte-sized tail is padded explicitly (§5f discipline).
struct TatpParams {
  uint64_t s_id = 0;
  uint64_t numberx = 0;
  uint32_t bit = 0;
  uint32_t location = 0;
  uint16_t data_a = 0;
  TxnType type = TxnType::kGetSubscriberData;
  uint8_t ai_type = 1;
  uint8_t sf_type = 1;
  uint8_t start_time = 0;
  uint8_t end_time = 8;
  uint8_t pad_ = 0;
};
static_assert(sizeof(TatpParams) == 32);
static_assert(std::has_unique_object_representations_v<TatpParams>);

/// TATP mix and non-uniform key generator (A constant per population).
class TatpGenerator {
 public:
  TatpGenerator(uint64_t n_subscribers, uint64_t seed)
      : n_(n_subscribers),
        a_(TatpAConstant(n_subscribers)),
        nurand_(n_subscribers / 2 + 1),
        rng_(seed) {}

  TatpParams Next() {
    TatpParams p;
    const uint64_t mix = rng_.NextBounded(100);
    if (mix < 35) {
      p.type = TxnType::kGetSubscriberData;
    } else if (mix < 45) {
      p.type = TxnType::kGetNewDestination;
    } else if (mix < 80) {
      p.type = TxnType::kGetAccessData;
    } else if (mix < 82) {
      p.type = TxnType::kUpdateSubscriberData;
    } else if (mix < 96) {
      p.type = TxnType::kUpdateLocation;
    } else if (mix < 98) {
      p.type = TxnType::kInsertCallForwarding;
    } else {
      p.type = TxnType::kDeleteCallForwarding;
    }
    p.s_id = nurand_.Next(rng_, a_, 0, n_ - 1);
    p.ai_type = static_cast<uint8_t>(1 + rng_.NextBounded(4));
    p.sf_type = static_cast<uint8_t>(1 + rng_.NextBounded(4));
    p.start_time = static_cast<uint8_t>(8 * rng_.NextBounded(3));
    p.end_time = static_cast<uint8_t>(1 + rng_.NextBounded(24));
    p.data_a = static_cast<uint16_t>(rng_.Next());
    p.bit = static_cast<uint32_t>(rng_.NextBounded(2));
    p.location = static_cast<uint32_t>(rng_.Next());
    p.numberx = rng_.Next();
    return p;
  }

 private:
  uint64_t n_;
  uint64_t a_;
  NuRand nurand_;
  Xoshiro256 rng_;
};

// --- MV3C programs ---

Mv3cExecutor::Program Mv3cTatpProgram(TatpDb& db, const TatpParams& p);

// --- OMVCC programs ---

OmvccExecutor::Program OmvccTatpProgram(TatpDb& db, const TatpParams& p);

}  // namespace mv3c::tatp

#endif  // MV3C_WORKLOADS_TATP_H_
