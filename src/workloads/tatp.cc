#include "workloads/tatp.h"

namespace mv3c::tatp {

namespace {
constexpr ColumnMask kAllCols = ColumnMask::All();
}  // namespace

Mv3cExecutor::Program Mv3cTatpProgram(TatpDb& db, const TatpParams& p) {
  switch (p.type) {
    case TxnType::kGetSubscriberData:
      return [&db, p](Mv3cTransaction& t) {
        return t.Lookup(db.subscribers, p.s_id, kAllCols,
                        [](Mv3cTransaction&, SubscriberTable::Object*,
                           const SubscriberRow* row) {
                          return row == nullptr ? ExecStatus::kUserAbort
                                                : ExecStatus::kOk;
                        });
      };

    case TxnType::kGetNewDestination:
      return [&db, p](Mv3cTransaction& t) {
        // Read the special facility; if active, probe the call-forwarding
        // slots whose interval covers the query time.
        return t.Lookup(
            db.special_facilities, {p.s_id, p.sf_type}, kAllCols,
            [&db, p](Mv3cTransaction& t, SpecialFacilityTable::Object*,
                     const SpecialFacilityRow* sf) -> ExecStatus {
              if (sf == nullptr || !sf->is_active) {
                return ExecStatus::kUserAbort;
              }
              int found = 0;
              for (uint8_t start : {0, 8, 16}) {
                if (start > p.start_time) continue;
                const ExecStatus st = t.Lookup(
                    db.call_forwarding, {p.s_id, p.sf_type, start}, kAllCols,
                    [p, &found](Mv3cTransaction&,
                                CallForwardingTable::Object*,
                                const CallForwardingRow* cf) {
                      if (cf != nullptr && p.start_time < cf->end_time) {
                        ++found;
                      }
                      return ExecStatus::kOk;
                    });
                if (st != ExecStatus::kOk) return st;
              }
              return found > 0 ? ExecStatus::kOk : ExecStatus::kUserAbort;
            });
      };

    case TxnType::kGetAccessData:
      return [&db, p](Mv3cTransaction& t) {
        return t.Lookup(db.access_info, {p.s_id, p.ai_type}, kAllCols,
                        [](Mv3cTransaction&, AccessInfoTable::Object*,
                           const AccessInfoRow* row) {
                          return row == nullptr ? ExecStatus::kUserAbort
                                                : ExecStatus::kOk;
                        });
      };

    case TxnType::kUpdateSubscriberData:
      return [&db, p](Mv3cTransaction& t) -> ExecStatus {
        // Two logically disjoint paths (paper Figure 1(a)): the subscriber
        // bit update and the special-facility data update repair
        // independently.
        ExecStatus st = t.Lookup(
            db.subscribers, p.s_id, ColumnMask::Of(kColBits),
            [&db, p](Mv3cTransaction& t, SubscriberTable::Object* obj,
                     const SubscriberRow* row) -> ExecStatus {
              if (row == nullptr) return ExecStatus::kUserAbort;
              SubscriberRow n = *row;
              n.bits = (n.bits & ~1u) | p.bit;
              return t.UpdateRow(db.subscribers, obj, n,
                                 ColumnMask::Of(kColBits));
            });
        if (st != ExecStatus::kOk) return st;
        return t.Lookup(
            db.special_facilities, {p.s_id, p.sf_type},
            ColumnMask::Of(kColDataA),
            [&db, p](Mv3cTransaction& t, SpecialFacilityTable::Object* obj,
                     const SpecialFacilityRow* sf) -> ExecStatus {
              if (sf == nullptr) return ExecStatus::kUserAbort;
              SpecialFacilityRow n = *sf;
              n.data_a = p.data_a;
              return t.UpdateRow(db.special_facilities, obj, n,
                                 ColumnMask::Of(kColDataA));
            });
      };

    case TxnType::kUpdateLocation:
      return [&db, p](Mv3cTransaction& t) {
        // Blind write (§2.4.1, Appendix C.1): "no conflicts among
        // Update_Location transaction instances in MV3C".
        return t.BlindUpdate(
            db.subscribers, TatpDb::SubNbrOf(p.s_id),
            ColumnMask::Of(kColVlrLocation),
            [p](SubscriberRow& r) { r.vlr_location = p.location; });
      };

    case TxnType::kInsertCallForwarding:
      return [&db, p](Mv3cTransaction& t) {
        return t.Lookup(
            db.subscribers, TatpDb::SubNbrOf(p.s_id), kAllCols,
            [&db, p](Mv3cTransaction& t, SubscriberTable::Object*,
                     const SubscriberRow* row) -> ExecStatus {
              if (row == nullptr) return ExecStatus::kUserAbort;
              return t.Lookup(
                  db.special_facilities, {p.s_id, p.sf_type}, kAllCols,
                  [&db, p](Mv3cTransaction& t,
                           SpecialFacilityTable::Object*,
                           const SpecialFacilityRow* sf) -> ExecStatus {
                    if (sf == nullptr) return ExecStatus::kUserAbort;
                    const WriteStatus ws = t.InsertRow(
                        db.call_forwarding,
                        {p.s_id, p.sf_type, p.start_time},
                        CallForwardingRow{p.numberx, p.end_time});
                    if (ws == WriteStatus::kDuplicateKey) {
                      return ExecStatus::kUserAbort;  // TATP: expected fail
                    }
                    if (ws == WriteStatus::kWwConflict) {
                      return ExecStatus::kWriteWriteConflict;
                    }
                    return ExecStatus::kOk;
                  });
            });
      };

    case TxnType::kDeleteCallForwarding:
      return [&db, p](Mv3cTransaction& t) {
        return t.Lookup(
            db.call_forwarding, {p.s_id, p.sf_type, p.start_time}, kAllCols,
            [&db](Mv3cTransaction& t, CallForwardingTable::Object* obj,
                  const CallForwardingRow* cf) -> ExecStatus {
              if (cf == nullptr) return ExecStatus::kUserAbort;
              return t.DeleteRow(db.call_forwarding, obj);
            });
      };
  }
  MV3C_CHECK(false);
  return nullptr;
}

OmvccExecutor::Program OmvccTatpProgram(TatpDb& db, const TatpParams& p) {
  switch (p.type) {
    case TxnType::kGetSubscriberData:
      return [&db, p](OmvccTransaction& t) {
        auto r = t.Get(db.subscribers, p.s_id, kAllCols);
        return r.row == nullptr ? ExecStatus::kUserAbort : ExecStatus::kOk;
      };

    case TxnType::kGetNewDestination:
      return [&db, p](OmvccTransaction& t) -> ExecStatus {
        auto sf = t.Get(db.special_facilities,
                        SpecialFacilityKey{p.s_id, p.sf_type}, kAllCols);
        if (sf.row == nullptr || !sf.row->is_active) {
          return ExecStatus::kUserAbort;
        }
        int found = 0;
        for (uint8_t start : {0, 8, 16}) {
          if (start > p.start_time) continue;
          auto cf = t.Get(db.call_forwarding,
                          CallForwardingKey{p.s_id, p.sf_type, start},
                          kAllCols);
          if (cf.row != nullptr && p.start_time < cf.row->end_time) ++found;
        }
        return found > 0 ? ExecStatus::kOk : ExecStatus::kUserAbort;
      };

    case TxnType::kGetAccessData:
      return [&db, p](OmvccTransaction& t) {
        auto r = t.Get(db.access_info, AccessInfoKey{p.s_id, p.ai_type},
                       kAllCols);
        return r.row == nullptr ? ExecStatus::kUserAbort : ExecStatus::kOk;
      };

    case TxnType::kUpdateSubscriberData:
      return [&db, p](OmvccTransaction& t) -> ExecStatus {
        auto sub = t.Get(db.subscribers, p.s_id, ColumnMask::Of(kColBits));
        if (sub.row == nullptr) return ExecStatus::kUserAbort;
        SubscriberRow n = *sub.row;
        n.bits = (n.bits & ~1u) | p.bit;
        ExecStatus st = t.UpdateRow(db.subscribers, sub.object, n,
                                    ColumnMask::Of(kColBits));
        if (st != ExecStatus::kOk) return st;
        auto sf = t.Get(db.special_facilities,
                        SpecialFacilityKey{p.s_id, p.sf_type},
                        ColumnMask::Of(kColDataA));
        if (sf.row == nullptr) return ExecStatus::kUserAbort;
        SpecialFacilityRow m = *sf.row;
        m.data_a = p.data_a;
        return t.UpdateRow(db.special_facilities, sf.object, m,
                           ColumnMask::Of(kColDataA));
      };

    case TxnType::kUpdateLocation:
      return [&db, p](OmvccTransaction& t) -> ExecStatus {
        // OMVCC cannot express a blind write: read-modify-write with
        // fail-fast WW detection.
        auto sub = t.Get(db.subscribers, TatpDb::SubNbrOf(p.s_id),
                         ColumnMask::Of(kColVlrLocation));
        if (sub.row == nullptr) return ExecStatus::kUserAbort;
        SubscriberRow n = *sub.row;
        n.vlr_location = p.location;
        return t.UpdateRow(db.subscribers, sub.object, n,
                           ColumnMask::Of(kColVlrLocation));
      };

    case TxnType::kInsertCallForwarding:
      return [&db, p](OmvccTransaction& t) -> ExecStatus {
        auto sub = t.Get(db.subscribers, TatpDb::SubNbrOf(p.s_id), kAllCols);
        if (sub.row == nullptr) return ExecStatus::kUserAbort;
        auto sf = t.Get(db.special_facilities,
                        SpecialFacilityKey{p.s_id, p.sf_type}, kAllCols);
        if (sf.row == nullptr) return ExecStatus::kUserAbort;
        const WriteStatus ws =
            t.InsertRow(db.call_forwarding,
                        CallForwardingKey{p.s_id, p.sf_type, p.start_time},
                        CallForwardingRow{p.numberx, p.end_time});
        if (ws == WriteStatus::kDuplicateKey) return ExecStatus::kUserAbort;
        if (ws == WriteStatus::kWwConflict) {
          return ExecStatus::kWriteWriteConflict;
        }
        return ExecStatus::kOk;
      };

    case TxnType::kDeleteCallForwarding:
      return [&db, p](OmvccTransaction& t) -> ExecStatus {
        auto cf = t.Get(db.call_forwarding,
                        CallForwardingKey{p.s_id, p.sf_type, p.start_time},
                        kAllCols);
        if (cf.row == nullptr) return ExecStatus::kUserAbort;
        return t.DeleteRow(db.call_forwarding, cf.object);
      };
  }
  MV3C_CHECK(false);
  return nullptr;
}

}  // namespace mv3c::tatp
