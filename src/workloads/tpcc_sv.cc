#include "workloads/tpcc_sv.h"

#include <algorithm>
#include <numeric>
#include <string>

#include "common/macros.h"

namespace mv3c::tpcc {

// ---------------------------------------------------------------------------
// Loader (non-transactional; mirrors TpccDb::Load)
// ---------------------------------------------------------------------------

void SvTpccDb::Load(uint64_t seed) {
  Xoshiro256 rng(seed);
  const TpccScale& s = scale_;
  for (uint64_t i = 1; i <= s.n_items; ++i) {
    ItemRow row;
    row.price = 100 + static_cast<int64_t>(rng.NextBounded(9900));
    row.im_id = static_cast<uint32_t>(1 + rng.NextBounded(10000));
    items.LoadRow(i, row);
  }
  for (uint64_t w = 1; w <= s.n_warehouses; ++w) {
    WarehouseRow wr;
    wr.tax = static_cast<int32_t>(rng.NextBounded(2001));
    wr.ytd = 30000000;
    warehouses.LoadRow(w, wr);
    for (uint64_t i = 1; i <= s.n_items; ++i) {
      StockRow row;
      row.quantity = static_cast<int32_t>(10 + rng.NextBounded(91));
      stock.LoadRow(StockKey(w, i), row);
    }
    for (uint64_t d = 1; d <= s.n_districts; ++d) {
      DistrictRow dr;
      dr.tax = static_cast<int32_t>(rng.NextBounded(2001));
      dr.ytd = 3000000;
      dr.next_o_id = static_cast<uint32_t>(s.preload_orders_per_d + 1);
      districts.LoadRow(DistrictKey(w, d), dr);
      for (uint64_t c = 1; c <= s.n_customers_per_d; ++c) {
        CustomerRow row;
        row.last_name_id =
            c <= 1000 ? static_cast<uint16_t>(c - 1)
                      : static_cast<uint16_t>(
                            NuRand(123).Next(rng, 255, 0, 999));
        row.discount = static_cast<int32_t>(rng.NextBounded(5001));
        row.bad_credit = rng.NextBounded(100) < 10;
        const uint64_t key = CustomerKey(w, d, c);
        customers.LoadRow(key, row);
        MV3C_CHECK(customers_by_name.Insert(
            {DistrictKey(w, d), row.last_name_id, key}, customers.Find(key)));
        HistoryRow h;
        h.c_key = key;
        h.d_key = DistrictKey(w, d);
        h.amount = 1000;
        history.LoadRow(NextHistoryKey(), h);
      }
      std::vector<uint64_t> perm(s.preload_orders_per_d);
      std::iota(perm.begin(), perm.end(), 1);
      for (size_t i = perm.size(); i > 1; --i) {
        std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
      }
      for (uint64_t o = 1; o <= s.preload_orders_per_d; ++o) {
        const bool delivered =
            o + s.preload_new_orders_per_d <= s.preload_orders_per_d;
        const uint64_t c = 1 + (perm[o - 1] - 1) % s.n_customers_per_d;
        OrderRow orow;
        orow.c_id = c;
        orow.entry_d = o;
        orow.ol_cnt = static_cast<uint8_t>(5 + rng.NextBounded(11));
        orow.carrier_id =
            delivered ? static_cast<int32_t>(1 + rng.NextBounded(10)) : -1;
        const uint64_t okey = OrderKey(w, d, o);
        orders.LoadRow(okey, orow);
        MV3C_CHECK(orders_by_customer.Insert(CustomerOrderKey(w, d, c, o),
                                             orders.Find(okey)));
        for (uint8_t ol = 1; ol <= orow.ol_cnt; ++ol) {
          OrderLineRow lrow;
          lrow.i_id = 1 + rng.NextBounded(s.n_items);
          lrow.supply_w_id = w;
          lrow.quantity = 5;
          lrow.delivery_d = delivered ? o : 0;
          lrow.amount =
              delivered ? 0
                        : static_cast<int64_t>(1 + rng.NextBounded(999999));
          const uint64_t lkey = OrderLineKey(w, d, o, ol);
          order_lines.LoadRow(lkey, lrow);
          MV3C_CHECK(
              order_lines_by_district.Insert(lkey, order_lines.Find(lkey)));
        }
        if (!delivered) {
          new_orders.LoadRow(okey, NewOrderRow{});
          MV3C_CHECK(new_order_queue.Insert(okey, new_orders.Find(okey)));
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Programs
// ---------------------------------------------------------------------------

namespace {

size_t MiddleIndex(size_t n) { return (n + 1) / 2 - 1; }

using Txn = sv::SvTransaction;

/// Reads the middle customer of a by-last-name run; returns nullptr if the
/// run is empty. Registers the shard version and every read.
SvCustomerTable::Rec* SelectCustomerByName(Txn& t, SvTpccDb& db, uint64_t wd,
                                           uint16_t last, CustomerRow* out,
                                           uint64_t* c_key_out) {
  t.ObserveNode(&db.customers_by_name.ShardVersionRef(
      CustomerNameKey{wd, last, 0}));
  std::vector<std::pair<uint64_t, SvCustomerTable::Rec*>> run;
  db.customers_by_name.ScanRange(
      CustomerNameKey{wd, last, 0}, CustomerNameKey{wd, last, ~0ULL},
      [&](const CustomerNameKey& k, SvCustomerTable::Rec* rec) {
        run.push_back({k.c_key, rec});
        return true;
      });
  if (run.empty()) return nullptr;
  const auto& [key, rec] = run[MiddleIndex(run.size())];
  const uint64_t w = rec->ReadStable(out);
  t.reads().push_back({&rec->tid, w});
  if (sv::IsAbsent(w)) return nullptr;
  if (c_key_out != nullptr) *c_key_out = key;
  return rec;
}

ExecStatus SvNewOrder(Txn& t, SvTpccDb& db, const TpccParams& p) {
  WarehouseRow w;
  if (!t.Read(db.warehouses, p.w_id, &w)) return ExecStatus::kUserAbort;
  CustomerRow c;
  if (!t.Read(db.customers, CustomerKey(p.w_id, p.d_id, p.c_id), &c)) {
    return ExecStatus::kUserAbort;
  }
  DistrictRow d;
  SvDistrictTable::Rec* drec = nullptr;
  if (!t.Read(db.districts, DistrictKey(p.w_id, p.d_id), &d, &drec)) {
    return ExecStatus::kUserAbort;
  }
  const uint64_t o_id = d.next_o_id;
  DistrictRow dn = d;
  dn.next_o_id = static_cast<uint32_t>(o_id + 1);
  t.Update(db.districts, drec, dn);

  OrderRow orow;
  orow.c_id = p.c_id;
  orow.entry_d = p.date;
  orow.ol_cnt = p.ol_cnt;
  const uint64_t okey = OrderKey(p.w_id, p.d_id, o_id);
  SvOrderTable::Rec* orec = nullptr;
  if (!t.Insert(db.orders, okey, orow, &orec)) {
    return ExecStatus::kUserAbort;  // duplicate o_id; validation rare-cases
  }
  SvNewOrderTable::Rec* nrec = nullptr;
  if (!t.Insert(db.new_orders, okey, NewOrderRow{}, &nrec)) {
    return ExecStatus::kUserAbort;
  }
  t.OnInstall([&db, p, o_id, okey, orec, nrec] {
    // Install hooks run exactly once at commit; o_id is fresh this txn, so
    // the secondary-index inserts must win.
    MV3C_CHECK(db.orders_by_customer.Insert(
        CustomerOrderKey(p.w_id, p.d_id, p.c_id, o_id), orec));
    MV3C_CHECK(db.new_order_queue.Insert(okey, nrec));
  });

  for (uint8_t i = 0; i < p.ol_cnt; ++i) {
    const NewOrderItem it = p.items[i];
    ItemRow item;
    if (!t.Read(db.items, it.i_id, &item)) {
      return ExecStatus::kUserAbort;  // 1% invalid item
    }
    StockRow s;
    SvStockTable::Rec* srec = nullptr;
    if (!t.Read(db.stock, StockKey(it.supply_w, it.i_id), &s, &srec)) {
      return ExecStatus::kUserAbort;
    }
    StockRow sn = s;
    if (sn.quantity - it.quantity >= 10) {
      sn.quantity -= it.quantity;
    } else {
      sn.quantity += 91 - it.quantity;
    }
    sn.ytd += it.quantity;
    sn.order_cnt += 1;
    if (it.supply_w != p.w_id) sn.remote_cnt += 1;
    t.Update(db.stock, srec, sn);

    OrderLineRow ol;
    ol.i_id = it.i_id;
    ol.supply_w_id = it.supply_w;
    ol.quantity = it.quantity;
    ol.amount = it.quantity * item.price * (10000 + w.tax) / 10000 *
                (10000 - c.discount) / 10000;
    std::memcpy(ol.dist_info, s.dist[p.d_id - 1], sizeof(ol.dist_info));
    const uint64_t lkey = OrderLineKey(p.w_id, p.d_id, o_id, i + 1);
    SvOrderLineTable::Rec* lrec = nullptr;
    if (!t.Insert(db.order_lines, lkey, ol, &lrec)) {
      return ExecStatus::kUserAbort;
    }
    t.OnInstall([&db, lkey, lrec] {
      MV3C_CHECK(db.order_lines_by_district.Insert(lkey, lrec));
    });
  }
  return ExecStatus::kOk;
}

ExecStatus SvPayment(Txn& t, SvTpccDb& db, const TpccParams& p) {
  WarehouseRow w;
  SvWarehouseTable::Rec* wrec = nullptr;
  if (!t.Read(db.warehouses, p.w_id, &w, &wrec)) {
    return ExecStatus::kUserAbort;
  }
  WarehouseRow wn = w;
  wn.ytd += p.amount;
  t.Update(db.warehouses, wrec, wn);

  DistrictRow d;
  SvDistrictTable::Rec* drec = nullptr;
  if (!t.Read(db.districts, DistrictKey(p.w_id, p.d_id), &d, &drec)) {
    return ExecStatus::kUserAbort;
  }
  DistrictRow dn = d;
  dn.ytd += p.amount;
  t.Update(db.districts, drec, dn);

  CustomerRow c;
  SvCustomerTable::Rec* crec = nullptr;
  uint64_t c_key = 0;
  if (p.by_last_name) {
    const uint64_t wd = DistrictKey(p.c_w_id, p.c_d_id);
    crec = SelectCustomerByName(t, db, wd, p.c_last, &c, &c_key);
    if (crec == nullptr) return ExecStatus::kUserAbort;
  } else {
    c_key = CustomerKey(p.c_w_id, p.c_d_id, p.c_id);
    if (!t.Read(db.customers, c_key, &c, &crec)) {
      return ExecStatus::kUserAbort;
    }
  }
  CustomerRow cn = c;
  cn.balance -= p.amount;
  cn.ytd_payment += p.amount;
  cn.payment_cnt += 1;
  if (c.bad_credit) {
    std::memmove(cn.data + 16, cn.data, sizeof(cn.data) - 16);
    std::memcpy(cn.data, &c_key, sizeof(c_key));
    std::memcpy(cn.data + 8, &p.amount, sizeof(p.amount));
  }
  t.Update(db.customers, crec, cn);

  HistoryRow h;
  h.c_key = c_key;
  h.d_key = DistrictKey(p.w_id, p.d_id);
  h.amount = p.amount;
  h.date = p.date;
  if (!t.Insert(db.history, db.NextHistoryKey(), h)) {
    return ExecStatus::kUserAbort;
  }
  return ExecStatus::kOk;
}

ExecStatus SvOrderStatus(Txn& t, SvTpccDb& db, const TpccParams& p) {
  uint64_t c_id = p.c_id;
  if (p.by_last_name) {
    CustomerRow c;
    const uint64_t wd = DistrictKey(p.w_id, p.d_id);
    uint64_t c_key = 0;
    SvCustomerTable::Rec* crec =
        SelectCustomerByName(t, db, wd, p.c_last, &c, &c_key);
    if (crec == nullptr) return ExecStatus::kUserAbort;
    c_id = c_key % kMaxCustomersPerD;
  } else {
    CustomerRow c;
    if (!t.Read(db.customers, CustomerKey(p.w_id, p.d_id, p.c_id), &c)) {
      return ExecStatus::kUserAbort;
    }
  }
  t.ObserveNode(&db.orders_by_customer.ShardVersionRef(
      CustomerOrderKey(p.w_id, p.d_id, c_id, 0)));
  SvOrderTable::Rec* last_order = nullptr;
  uint64_t last_okey = 0;
  db.orders_by_customer.ScanRangeReverse(
      CustomerOrderKey(p.w_id, p.d_id, c_id, 0),
      CustomerOrderKey(p.w_id, p.d_id, c_id, kMaxOrdersPerD - 1),
      [&](const uint64_t key, SvOrderTable::Rec* rec) {
        last_order = rec;
        last_okey = key;
        return false;
      });
  if (last_order == nullptr) return ExecStatus::kUserAbort;
  OrderRow o;
  const uint64_t w = last_order->ReadStable(&o);
  t.reads().push_back({&last_order->tid, w});
  if (sv::IsAbsent(w)) return ExecStatus::kUserAbort;
  const uint64_t o_id = last_okey % kMaxOrdersPerD;
  for (uint64_t ol = 1; ol <= o.ol_cnt; ++ol) {
    OrderLineRow l;
    t.Read(db.order_lines, OrderLineKey(p.w_id, p.d_id, o_id, ol), &l);
  }
  return ExecStatus::kOk;
}

ExecStatus SvDelivery(Txn& t, SvTpccDb& db, const TpccParams& p) {
  for (uint64_t d = 1; d <= db.scale().n_districts; ++d) {
    t.ObserveNode(
        &db.new_order_queue.ShardVersionRef(OrderKey(p.w_id, d, 0)));
    SvNewOrderTable::Rec* nrec = nullptr;
    uint64_t okey = 0;
    db.new_order_queue.ScanRange(
        OrderKey(p.w_id, d, 0), OrderKey(p.w_id, d, kMaxOrdersPerD - 1),
        [&](const uint64_t key, SvNewOrderTable::Rec* rec) {
          NewOrderRow nr;
          const uint64_t w = rec->ReadStable(&nr);
          t.reads().push_back({&rec->tid, w});
          if (sv::IsAbsent(w)) return true;  // delivered ghost, keep going
          nrec = rec;
          okey = key;
          return false;
        });
    if (nrec == nullptr) continue;
    t.Delete(db.new_orders, nrec);
    const uint64_t o_id = okey % kMaxOrdersPerD;
    OrderRow o;
    SvOrderTable::Rec* orec = nullptr;
    if (!t.Read(db.orders, okey, &o, &orec)) return ExecStatus::kUserAbort;
    OrderRow on = o;
    on.carrier_id = p.carrier_id;
    t.Update(db.orders, orec, on);
    int64_t total = 0;
    for (uint64_t ol = 1; ol <= o.ol_cnt; ++ol) {
      OrderLineRow l;
      SvOrderLineTable::Rec* lrec = nullptr;
      if (!t.Read(db.order_lines, OrderLineKey(p.w_id, d, o_id, ol), &l,
                  &lrec)) {
        continue;
      }
      total += l.amount;
      OrderLineRow ln = l;
      ln.delivery_d = p.date;
      t.Update(db.order_lines, lrec, ln);
    }
    CustomerRow c;
    SvCustomerTable::Rec* crec = nullptr;
    if (!t.Read(db.customers, CustomerKey(p.w_id, d, o.c_id), &c, &crec)) {
      return ExecStatus::kUserAbort;
    }
    CustomerRow cn = c;
    cn.balance += total;
    cn.delivery_cnt += 1;
    t.Update(db.customers, crec, cn);
  }
  return ExecStatus::kOk;
}

ExecStatus SvStockLevel(Txn& t, SvTpccDb& db, const TpccParams& p) {
  DistrictRow d;
  if (!t.Read(db.districts, DistrictKey(p.w_id, p.d_id), &d)) {
    return ExecStatus::kUserAbort;
  }
  const uint64_t next_o = d.next_o_id;
  const uint64_t lo_o = next_o > 20 ? next_o - 20 : 1;
  t.ObserveNode(&db.order_lines_by_district.ShardVersionRef(
      OrderLineKey(p.w_id, p.d_id, lo_o, 0)));
  std::vector<uint64_t> seen;
  int low_stock = 0;
  std::vector<uint64_t> item_ids;
  db.order_lines_by_district.ScanRange(
      OrderLineKey(p.w_id, p.d_id, lo_o, 0),
      OrderLineKey(p.w_id, p.d_id, next_o - 1, kMaxOrderLines - 1),
      [&](const uint64_t, SvOrderLineTable::Rec* rec) {
        OrderLineRow l;
        const uint64_t w = rec->ReadStable(&l);
        t.reads().push_back({&rec->tid, w});
        if (!sv::IsAbsent(w)) item_ids.push_back(l.i_id);
        return true;
      });
  for (uint64_t i_id : item_ids) {
    if (std::find(seen.begin(), seen.end(), i_id) != seen.end()) continue;
    seen.push_back(i_id);
    StockRow s;
    if (t.Read(db.stock, StockKey(p.w_id, i_id), &s) &&
        s.quantity < p.threshold) {
      ++low_stock;
    }
  }
  (void)low_stock;
  return ExecStatus::kOk;
}

}  // namespace

std::function<ExecStatus(sv::SvTransaction&)> SvTpccProgram(
    SvTpccDb& db, const TpccParams& p) {
  switch (p.type) {
    case TpccTxnType::kNewOrder:
      return [&db, p](Txn& t) { return SvNewOrder(t, db, p); };
    case TpccTxnType::kPayment:
      return [&db, p](Txn& t) { return SvPayment(t, db, p); };
    case TpccTxnType::kOrderStatus:
      return [&db, p](Txn& t) { return SvOrderStatus(t, db, p); };
    case TpccTxnType::kDelivery:
      return [&db, p](Txn& t) { return SvDelivery(t, db, p); };
    case TpccTxnType::kStockLevel:
      return [&db, p](Txn& t) { return SvStockLevel(t, db, p); };
  }
  MV3C_CHECK(false);
  return nullptr;
}

bool CheckSvConsistency(SvTpccDb& db, std::string* why) {
  const TpccScale& s = db.scale();
  for (uint64_t w = 1; w <= s.n_warehouses; ++w) {
    SvWarehouseTable::Rec* wrec = db.warehouses.Find(w);
    if (wrec == nullptr) {
      *why = "missing warehouse";
      return false;
    }
    WarehouseRow wr;
    wrec->ReadStable(&wr);
    int64_t d_ytd_sum = 0;
    for (uint64_t d = 1; d <= s.n_districts; ++d) {
      SvDistrictTable::Rec* drec = db.districts.Find(DistrictKey(w, d));
      if (drec == nullptr) {
        *why = "missing district";
        return false;
      }
      DistrictRow dr;
      drec->ReadStable(&dr);
      d_ytd_sum += dr.ytd;
      const uint64_t max_o = dr.next_o_id - 1;
      if (max_o > 0) {
        SvOrderTable::Rec* orec = db.orders.Find(OrderKey(w, d, max_o));
        OrderRow orow;
        if (orec == nullptr ||
            sv::IsAbsent(orec->ReadStable(&orow))) {
          *why = "d_next_o_id does not match max order id";
          return false;
        }
      }
    }
    const int64_t w_seed = 30000000;
    const int64_t d_seed_sum = 3000000 * static_cast<int64_t>(s.n_districts);
    if (wr.ytd - w_seed != d_ytd_sum - d_seed_sum) {
      *why = "w_ytd delta != sum(d_ytd) delta";
      return false;
    }
  }
  return true;
}

}  // namespace mv3c::tpcc
