#ifndef MV3C_WORKLOADS_TPCC_SV_H_
#define MV3C_WORKLOADS_TPCC_SV_H_

#include "sv/sv_executor.h"
#include "sv/sv_table.h"
#include "workloads/tpcc.h"

namespace mv3c::tpcc {

/// TPC-C over the single-version store, driven by the OCC and SILO
/// baselines (paper Figure 8 compares MV3C/OMVCC with THEDB's OCC and
/// SILO). Schema, keys, generator parameters and program logic mirror the
/// MVCC implementation in tpcc.h/tpcc.cc; programs are written once against
/// sv::SvTransaction and shared by both engines, which differ only in the
/// commit protocol.

using SvWarehouseTable = sv::SvTable<uint64_t, WarehouseRow>;
using SvDistrictTable = sv::SvTable<uint64_t, DistrictRow>;
using SvCustomerTable = sv::SvTable<uint64_t, CustomerRow>;
using SvHistoryTable = sv::SvTable<uint64_t, HistoryRow>;
using SvOrderTable = sv::SvTable<uint64_t, OrderRow>;
using SvNewOrderTable = sv::SvTable<uint64_t, NewOrderRow>;
using SvOrderLineTable = sv::SvTable<uint64_t, OrderLineRow>;
using SvItemTable = sv::SvTable<uint64_t, ItemRow>;
using SvStockTable = sv::SvTable<uint64_t, StockRow>;

using SvCustomerNameIndex =
    OrderedIndex<CustomerNameKey, SvCustomerTable::Rec*,
                 CustomerNamePartition>;
using SvNewOrderIndex =
    OrderedIndex<uint64_t, SvNewOrderTable::Rec*,
                 DivPartition<kMaxOrdersPerD>>;
using SvCustomerOrderIndex =
    OrderedIndex<uint64_t, SvOrderTable::Rec*, DivPartition<kMaxOrdersPerD>>;
using SvOrderLineIndex =
    OrderedIndex<uint64_t, SvOrderLineTable::Rec*,
                 DivPartition<kMaxOrdersPerD * kMaxOrderLines>>;

class SvTpccDb {
 public:
  SvTpccDb(const TpccScale& scale)
      : warehouses("WAREHOUSE", scale.n_warehouses),
        districts("DISTRICT", scale.n_warehouses * scale.n_districts),
        customers("CUSTOMER", scale.n_warehouses * scale.n_districts *
                                  scale.n_customers_per_d),
        history("HISTORY", 1 << 16),
        orders("ORDER", 1 << 16),
        new_orders("NEW-ORDER", 1 << 16),
        order_lines("ORDER-LINE", 1 << 18),
        items("ITEM", scale.n_items),
        stock("STOCK", scale.n_warehouses * scale.n_items),
        scale_(scale) {}

  /// Non-transactional population; same rules (and same seed semantics) as
  /// TpccDb::Load.
  void Load(uint64_t seed = 1);

  const TpccScale& scale() const { return scale_; }

  uint64_t NextHistoryKey() {
    return history_seq_.fetch_add(1, std::memory_order_relaxed);
  }

  SvWarehouseTable warehouses;
  SvDistrictTable districts;
  SvCustomerTable customers;
  SvHistoryTable history;
  SvOrderTable orders;
  SvNewOrderTable new_orders;
  SvOrderLineTable order_lines;
  SvItemTable items;
  SvStockTable stock;

  SvCustomerNameIndex customers_by_name;
  SvNewOrderIndex new_order_queue;
  SvCustomerOrderIndex orders_by_customer;
  SvOrderLineIndex order_lines_by_district;

 private:
  TpccScale scale_;
  std::atomic<uint64_t> history_seq_{0};
};

/// The five TPC-C programs against the single-version store. Shared by OCC
/// and SILO (the engine only differs in SvExecutor's commit call).
std::function<ExecStatus(sv::SvTransaction&)> SvTpccProgram(
    SvTpccDb& db, const TpccParams& p);

/// Consistency conditions over the single-version database (same subset as
/// tpcc::CheckConsistency).
bool CheckSvConsistency(SvTpccDb& db, std::string* why);

}  // namespace mv3c::tpcc

#endif  // MV3C_WORKLOADS_TPCC_SV_H_
