// Randomized property test for Lemma 2.4 (repair ≡ restart): build random
// transaction programs with nested predicate structure, inject random
// concurrent committed conflicts, and verify that driving the victim
// through MV3C repair produces exactly the database state that a full
// OMVCC-style restart produces on a replica.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "mv3c/mv3c_executor.h"

namespace mv3c {
namespace {

struct CellRow {
  int64_t value = 0;
};
using CellTable = Table<uint64_t, CellRow>;
constexpr uint64_t kCells = 24;

/// A random program: a tree of lookups, each closure updating its cell as
/// a deterministic function of the parent's observed value and then
/// descending into child lookups. Because every write depends on the read
/// above it, a conflict anywhere forces exactly that subtree to re-run.
struct ProgramSpec {
  struct NodeSpec {
    uint64_t cell;
    int64_t addend;
    std::vector<NodeSpec> children;
  };
  std::vector<NodeSpec> roots;

  /// Cells are distinct within one program: a repeated cell across
  /// independent branches would be an undeclared dependency (the second
  /// read observes the first branch's write), which the MV3C DSL contract
  /// forbids — dependent operations must nest inside the closure they
  /// depend on (Definition 2.5).
  static ProgramSpec Random(Xoshiro256& rng, int max_nodes) {
    ProgramSpec spec;
    std::vector<bool> used(kCells, false);
    int budget = 2 + static_cast<int>(rng.NextBounded(max_nodes - 1));
    while (budget > 0) {
      spec.roots.push_back(RandomNode(rng, &budget, 0, &used));
    }
    return spec;
  }

  static NodeSpec RandomNode(Xoshiro256& rng, int* budget, int depth,
                             std::vector<bool>* used) {
    NodeSpec n;
    do {
      n.cell = rng.NextBounded(kCells);
    } while ((*used)[n.cell]);
    (*used)[n.cell] = true;
    n.addend = rng.UniformInt(1, 9);
    --*budget;
    while (depth < 3 && *budget > 0 && rng.NextBounded(100) < 45) {
      n.children.push_back(RandomNode(rng, budget, depth + 1, used));
    }
    return n;
  }
};

ExecStatus RunNodeMv3c(Mv3cTransaction& t, CellTable& table,
                       const ProgramSpec::NodeSpec& node, int64_t parent_seen) {
  // DSL rule (Definition 2.5): closures capture their context BY VALUE —
  // they may be re-executed by Repair long after the enclosing call frame
  // (or even the program object) is gone.
  return t.Lookup(
      table, node.cell, ColumnMask::All(),
      [&table, n = node, parent_seen](Mv3cTransaction& t,
                                      CellTable::Object* obj,
                                      const CellRow* row) -> ExecStatus {
        if (row == nullptr) return ExecStatus::kUserAbort;
        CellRow updated = *row;
        updated.value = row->value * 3 + n.addend + parent_seen % 7;
        const ExecStatus st =
            t.UpdateRow(table, obj, updated, ColumnMask::All());
        if (st != ExecStatus::kOk) return st;
        for (const auto& child : n.children) {
          const ExecStatus cst = RunNodeMv3c(t, table, child, row->value);
          if (cst != ExecStatus::kOk) return cst;
        }
        return ExecStatus::kOk;
      });
}

Mv3cExecutor::Program Mv3cProgram(CellTable& table, const ProgramSpec& spec) {
  return [&table, spec](Mv3cTransaction& t) -> ExecStatus {
    for (const auto& root : spec.roots) {
      const ExecStatus st = RunNodeMv3c(t, table, root, 0);
      if (st != ExecStatus::kOk) return st;
    }
    return ExecStatus::kOk;
  };
}


std::vector<int64_t> Snapshot(CellTable& table) {
  std::vector<int64_t> out;
  for (uint64_t c = 0; c < kCells; ++c) {
    const auto* v = table.Find(c)->ReadVisible(kTxnIdBase - 1, 0);
    out.push_back(v == nullptr ? -1 : v->data().value);
  }
  return out;
}

class RepairPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RepairPropertyTest, RepairMatchesRestartStateExactly) {
  Xoshiro256 rng(GetParam());
  for (int round = 0; round < 40; ++round) {
    // Two replicas of the same database.
    TransactionManager mgr_a, mgr_b;
    CellTable table_a("cells_a", 64, WwPolicy::kAllowMultiple);
    CellTable table_b("cells_b", 64, WwPolicy::kAllowMultiple);
    auto load = [&](TransactionManager& m, CellTable& tbl) {
      Mv3cExecutor e(&m);
      e.MustRun([&](Mv3cTransaction& t) {
        for (uint64_t c = 0; c < kCells; ++c) {
          t.InsertRow(tbl, c, CellRow{static_cast<int64_t>(c * 10)});
        }
        return ExecStatus::kOk;
      });
    };
    load(mgr_a, table_a);
    load(mgr_b, table_b);

    const ProgramSpec victim_spec = ProgramSpec::Random(rng, 10);
    const ProgramSpec intruder_spec = ProgramSpec::Random(rng, 4);

    // Replica A: victim executes, intruder commits, victim REPAIRS.
    Mv3cExecutor victim_a(&mgr_a);
    victim_a.Reset(Mv3cProgram(table_a, victim_spec));
    victim_a.Begin();
    StepResult ra;
    {
      // Execute the victim's first round only (no commit attempt yet):
      // Step() includes the attempt, so stage via a manual program run.
      ASSERT_EQ(victim_a.txn().RunProgram(Mv3cProgram(table_a, victim_spec)),
                ExecStatus::kOk);
      Mv3cExecutor intruder(&mgr_a);
      ASSERT_EQ(intruder.Run(Mv3cProgram(table_a, intruder_spec)),
                StepResult::kCommitted);
      // Validate+repair loop through the manager.
      int guard = 0;
      do {
        if (!victim_a.txn().PrevalidateAndMark()) {
          mgr_a.Retimestamp(&victim_a.txn().inner());
          ASSERT_EQ(victim_a.txn().Repair(), ExecStatus::kOk);
          ra = StepResult::kNeedsRetry;
        } else if (mgr_a.TryCommit(&victim_a.txn().inner(),
                                   [&](CommittedRecord* h) {
                                     return victim_a.txn().ValidateAndMark(h);
                                   })) {
          ra = StepResult::kCommitted;
        } else {
          ASSERT_EQ(victim_a.txn().Repair(), ExecStatus::kOk);
          ra = StepResult::kNeedsRetry;
        }
        ASSERT_LT(++guard, 20);
      } while (ra != StepResult::kCommitted);
    }

    // Replica B: intruder commits first, victim runs fresh (the restart
    // semantics).
    Mv3cExecutor intruder_b(&mgr_b);
    ASSERT_EQ(intruder_b.Run(Mv3cProgram(table_b, intruder_spec)),
              StepResult::kCommitted);
    Mv3cExecutor victim_b(&mgr_b);
    ASSERT_EQ(victim_b.Run(Mv3cProgram(table_b, victim_spec)),
              StepResult::kCommitted);

    ASSERT_EQ(Snapshot(table_a), Snapshot(table_b))
        << "repair diverged from restart on round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RepairPropertyTest,
                         ::testing::Values(11, 222, 3333, 44444));

}  // namespace
}  // namespace mv3c
