// Timestamp-substrate contract tests (DESIGN §5h): the epoch-composed,
// lane-stamped commit TIDs allocated without a Begin-side lock must
// preserve the ordering contract the whole MVCC stack is built on —
// strictly monotone unique commit timestamps, start values disjoint from
// commit values, monotone visibility of the commit high-water mark, the
// repair-retimestamp ordering (a fresh start exceeds the invalidator's
// commit), and the reclaim trim-floor protocol that protects lock-free
// Begins from concurrent trimming. The concurrency cases are the TSan
// targets of the tsan-timestamp-contract CI job; failpoint injection
// (kRetimestamp delay, kGcReclaim) widens the racy windows when the build
// has failpoints compiled in.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "mvcc/table.h"
#include "mvcc/timestamp.h"
#include "mvcc/transaction.h"
#include "mvcc/transaction_manager.h"

#if defined(MV3C_WAL_ENABLED)
#include <filesystem>

#include "wal/log_manager.h"
#endif

namespace mv3c {
namespace {

namespace fp = failpoint;

struct Row {
  int64_t v = 0;
};
using TestTable = Table<uint64_t, Row>;

bool PlainCommit(TransactionManager& mgr, Transaction& t,
                 Timestamp* cts = nullptr) {
  return mgr.TryCommit(&t, [](CommittedRecord*) { return true; }, cts);
}

// --- TID layout -----------------------------------------------------------

static_assert(kTidEpochShift == 30);
static_assert(TsEpoch(EpochFirstTs(7) + 123) == 7);
static_assert(TsLane(ShapeToLane(1000, 42)) == 42);
static_assert(ShapeToLane(1000, 42) >= 1000);
static_assert(ShapeToLane(1000, 42) < 1000 + kMaxTidLanes);
static_assert(IsTxnId(ComposeTxnId(kMaxTidLanes - 1, 0)));
static_assert(IsTxnId(ComposeTxnId(0, (1ULL << 48) - 1)));
static_assert(ComposeTxnId(255, 99) != kDeadVersion);

TEST(TidLayout, ShapeToLaneIsMinimalAndExact) {
  for (uint32_t lane = 0; lane < kMaxTidLanes; lane += 17) {
    for (Timestamp floor : {Timestamp{1}, Timestamp{255}, Timestamp{256},
                            EpochFirstTs(3) + 511}) {
      const Timestamp c = ShapeToLane(floor, lane);
      EXPECT_GE(c, floor);
      EXPECT_EQ(TsLane(c), lane);
      // Minimal: the next-lower lane-shaped value (c - kMaxTidLanes) would
      // be below the floor.
      EXPECT_LT(c, floor + kMaxTidLanes);
    }
  }
}

// --- Single-threaded ordering contract ------------------------------------

TEST(TimestampContract, CommitsAreMonotoneStartsAreDisjoint) {
  TransactionManager mgr;
  TestTable table("t", 64);
  std::vector<Timestamp> commits;
  std::vector<Timestamp> starts;
  for (int i = 0; i < 50; ++i) {
    Transaction t(&mgr);
    mgr.Begin(&t);
    starts.push_back(t.start_ts());
    if (i == 0) {
      ASSERT_EQ(t.Insert(table, 1, Row{0}), WriteStatus::kOk);
    } else {
      ASSERT_EQ(t.Update(table, table.Find(1), Row{i}, ColumnMask::All(),
                         false, WwPolicy::kFailFast),
                WriteStatus::kOk);
    }
    Timestamp cts = 0;
    ASSERT_TRUE(PlainCommit(mgr, t, &cts));
    EXPECT_TRUE(IsCommitTs(cts));
    EXPECT_GT(cts, t.start_ts() + 0);  // commit strictly after start
    commits.push_back(cts);
  }
  for (size_t i = 1; i < commits.size(); ++i) {
    EXPECT_LT(commits[i - 1], commits[i]);  // strictly monotone, no reuse
  }
  // The +2 gap: no start value is ever a commit value, so the strict
  // `ts < start` visibility bound has no equality cases to get wrong.
  std::set<Timestamp> commit_set(commits.begin(), commits.end());
  for (Timestamp s : starts) EXPECT_EQ(commit_set.count(s), 0u);
  // Every commit is lane-stamped with this thread's lane.
  for (Timestamp c : commits) EXPECT_EQ(TsLane(c), ThisThreadTidLane());
}

TEST(TimestampContract, RetimestampOrdersAfterInvalidator) {
  TransactionManager mgr;
  TestTable table("t", 64);
  {
    Transaction seed(&mgr);
    mgr.Begin(&seed);
    ASSERT_EQ(seed.Insert(table, 1, Row{0}), WriteStatus::kOk);
    ASSERT_TRUE(PlainCommit(mgr, seed));
  }
  Transaction victim(&mgr);
  mgr.Begin(&victim);
  const Timestamp old_start = victim.start_ts();
  const Timestamp old_watermark = victim.validated_up_to();

  Timestamp invalidator_cts = 0;
  {
    Transaction w(&mgr);
    mgr.Begin(&w);
    ASSERT_EQ(w.Update(table, table.Find(1), Row{1}, ColumnMask::All(),
                       false, WwPolicy::kFailFast),
              WriteStatus::kOk);
    ASSERT_TRUE(PlainCommit(mgr, w, &invalidator_cts));
  }
  // Repair path: the fresh start must serialize after the invalidator so
  // re-executed reads see its writes (§2.5 ordering), and the validation
  // watermark survives (repair does not restart validation from scratch).
  mgr.Retimestamp(&victim);
  EXPECT_GT(victim.start_ts(), invalidator_cts);
  EXPECT_GT(victim.start_ts(), old_start);
  EXPECT_GE(victim.validated_up_to(), old_watermark);
  const auto* seen = table.Find(1)->ReadVisible(victim.start_ts(), 0);
  ASSERT_NE(seen, nullptr);
  EXPECT_EQ(seen->data().v, 1);  // repair-round reads see the invalidator
  victim.RollbackWrites();
  mgr.FinishAborted(&victim);
}

TEST(TimestampContract, PinSnapshotExcludesLaterCommits) {
  TransactionManager mgr;
  TestTable table("t", 64);
  {
    Transaction seed(&mgr);
    mgr.Begin(&seed);
    ASSERT_EQ(seed.Insert(table, 1, Row{7}), WriteStatus::kOk);
    ASSERT_TRUE(PlainCommit(mgr, seed));
  }
  const TransactionManager::SnapshotPin pin = mgr.PinSnapshot();
  Timestamp later = 0;
  {
    Transaction w(&mgr);
    mgr.Begin(&w);
    ASSERT_EQ(w.Update(table, table.Find(1), Row{8}, ColumnMask::All(),
                       false, WwPolicy::kFailFast),
              WriteStatus::kOk);
    ASSERT_TRUE(PlainCommit(mgr, w, &later));
  }
  EXPECT_GT(later, pin.ts);  // commits after the pin serialize after it
  const auto* v = table.Find(1)->ReadVisible(pin.ts, 0);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->data().v, 7);
  mgr.ReleaseSnapshot(pin);
}

// --- Concurrent contract (the TSan targets) -------------------------------

/// Writers on disjoint keys + one contended key, readers asserting the
/// published high-water mark is really a consistent snapshot: a reader
/// that observes (via an atomic side channel) that value `k` committed
/// must see value >= k after its next Begin. Commit TIDs collected from
/// every thread must be globally unique; no commit may equal any observed
/// start.
TEST(TimestampContract, HwmPublicationIsMonotoneAcrossThreads) {
  if (fp::kEnabled) {
    fp::Reset(0x7155);
    fp::Config delay;
    delay.action = fp::Action::kDelay;
    delay.delay_us = 3;
    delay.probability = 0.2;
    fp::Arm(fp::Site::kRetimestamp, delay);
    fp::Config reclaim;
    reclaim.probability = 0.25;
    fp::Arm(fp::Site::kGcReclaim, reclaim);
  }
  TransactionManager mgr;
  TestTable table("t", 256);
  {
    Transaction seed(&mgr);
    mgr.Begin(&seed);
    ASSERT_EQ(seed.Insert(table, 0, Row{0}), WriteStatus::kOk);
    ASSERT_TRUE(PlainCommit(mgr, seed));
  }
  constexpr int kWriters = 3;
  constexpr int kReaders = 3;
  constexpr int kTxnsPerWriter = 400;
  std::atomic<int64_t> published{0};  // last value known committed on key 0
  std::atomic<bool> stop{false};
  std::vector<std::vector<Timestamp>> commits(kWriters);
  std::vector<std::vector<Timestamp>> starts(kWriters + kReaders);

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      int64_t mine = 0;
      for (int i = 0; i < kTxnsPerWriter; ++i) {
        Transaction t(&mgr);
        mgr.Begin(&t);
        starts[w].push_back(t.start_ts());
        const auto* cur = table.Find(0)->ReadVisible(t.start_ts(), t.txn_id());
        ASSERT_NE(cur, nullptr);
        const int64_t next = cur->data().v + 1;
        if (t.Update(table, table.Find(0), Row{next}, ColumnMask::All(),
                     false, WwPolicy::kFailFast) != WriteStatus::kOk) {
          t.RollbackWrites();
          mgr.FinishAborted(&t);
          continue;
        }
        Timestamp cts = 0;
        const bool ok = mgr.TryCommit(
            &t,
            [&](CommittedRecord* from) {
              // Delta validation: fail if anyone committed key 0 above our
              // validation watermark (single-object write conflict).
              return TransactionManager::ForEachConcurrentVersion(
                  from, t.validated_up_to(), [&](const VersionBase& v) {
                    return v.object() != table.Find(0);
                  });
            },
            &cts);
        if (!ok) {
          t.RollbackWrites();
          mgr.FinishAborted(&t);
          continue;
        }
        commits[w].push_back(cts);
        mine = next;
        // Publish "value `next` is committed" only monotonically.
        int64_t prev = published.load(std::memory_order_relaxed);
        while (prev < mine && !published.compare_exchange_weak(
                                  prev, mine, std::memory_order_seq_cst)) {
        }
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&, r] {
      int64_t last_seen = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int64_t floor = published.load(std::memory_order_seq_cst);
        Transaction t(&mgr);
        mgr.Begin(&t);
        starts[kWriters + r].push_back(t.start_ts());
        const auto* v = table.Find(0)->ReadVisible(t.start_ts(), t.txn_id());
        ASSERT_NE(v, nullptr);  // the floor protocol: snapshot always readable
        const int64_t got = v->data().v;
        // Monotone visibility: a Begin after the publication handshake
        // must see at least the published state, and per-reader snapshots
        // never go backwards.
        EXPECT_GE(got, floor);
        EXPECT_GE(got, last_seen);
        last_seen = got;
        mgr.CommitReadOnly(&t);
      }
    });
  }
  // Maintenance loop on the main thread, as drivers do.
  for (int i = 0; i < kWriters; ++i) threads[i].join();
  stop.store(true, std::memory_order_relaxed);
  for (size_t i = kWriters; i < threads.size(); ++i) threads[i].join();
  mgr.CollectGarbage();
  if (fp::kEnabled) fp::DisarmAll();
  mgr.CollectGarbage();

  // No commit-TID reuse, lane stamping, start/commit disjointness.
  std::set<Timestamp> all_commits;
  for (int w = 0; w < kWriters; ++w) {
    for (size_t i = 0; i < commits[w].size(); ++i) {
      EXPECT_TRUE(IsCommitTs(commits[w][i]));
      EXPECT_TRUE(all_commits.insert(commits[w][i]).second)
          << "commit TID reused: " << commits[w][i];
      if (i > 0) {
        EXPECT_LT(commits[w][i - 1], commits[w][i]);
      }
    }
    // One thread, one lane: every TID a writer drew carries the same lane.
    for (size_t i = 1; i < commits[w].size(); ++i) {
      EXPECT_EQ(TsLane(commits[w][i]), TsLane(commits[w][0]));
    }
  }
  for (const auto& ss : starts) {
    for (Timestamp s : ss) EXPECT_EQ(all_commits.count(s), 0u);
  }
  // The interleaved increments on key 0 must have produced a clean chain:
  // final value == number of successful increment commits.
  size_t n_commits = 0;
  for (const auto& cs : commits) n_commits += cs.size();
  Transaction check(&mgr);
  mgr.Begin(&check);
  const auto* fin = table.Find(0)->ReadVisible(check.start_ts(), 0);
  ASSERT_NE(fin, nullptr);
  EXPECT_EQ(fin->data().v, static_cast<int64_t>(n_commits));
  mgr.CommitReadOnly(&check);
}

/// Chain truncation (the reclaim path worker threads trigger) racing
/// lock-free Begins: every reader must always find a visible version.
/// This is the schedule the trim-floor protocol exists for — without it a
/// truncator could cut the newest-committed-below-start version out from
/// under a beginner between its hwm read and its slot registration.
TEST(TimestampContract, TruncationNeverStrandsAReader) {
  if (fp::kEnabled) {
    fp::Reset(0x7156);
    fp::Config reclaim;
    reclaim.probability = 0.25;
    fp::Arm(fp::Site::kGcReclaim, reclaim);
  }
  TransactionManager mgr;
  TestTable table("t", 64);
  {
    Transaction seed(&mgr);
    mgr.Begin(&seed);
    ASSERT_EQ(seed.Insert(table, 1, Row{0}), WriteStatus::kOk);
    ASSERT_TRUE(PlainCommit(mgr, seed));
  }
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    // Long chains on one object force MaybeTruncateChain's worker-side
    // truncation over and over.
    for (int i = 1; i <= 4000; ++i) {
      Transaction t(&mgr);
      mgr.Begin(&t);
      if (t.Update(table, table.Find(1), Row{i}, ColumnMask::All(), false,
                   WwPolicy::kFailFast) != WriteStatus::kOk) {
        t.RollbackWrites();
        mgr.FinishAborted(&t);
        continue;
      }
      if (!PlainCommit(mgr, t)) {
        t.RollbackWrites();
        mgr.FinishAborted(&t);
      }
      if ((i & 255) == 0) mgr.CollectGarbage();
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      int64_t last = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        Transaction t(&mgr);
        mgr.Begin(&t);
        const auto* v = table.Find(1)->ReadVisible(t.start_ts(), t.txn_id());
        ASSERT_NE(v, nullptr) << "truncation cut a beginner's snapshot";
        EXPECT_GE(v->data().v, last);
        last = v->data().v;
        mgr.CommitReadOnly(&t);
      }
    });
  }
  writer.join();
  stop.store(true, std::memory_order_relaxed);
  for (auto& t : readers) t.join();
  if (fp::kEnabled) fp::DisarmAll();
  mgr.CollectGarbage();
  mgr.CollectGarbage();
}

// --- WAL epoch alignment --------------------------------------------------

#if defined(MV3C_WAL_ENABLED)
TEST(TimestampContract, CommitTsEpochNeverExceedsRedoTag) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "ts_contract_epoch_align";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    TransactionManager mgr;
    wal::WalConfig cfg;
    cfg.dir = dir.string();
    cfg.epoch_interval_us = 50;  // fast rounds: epochs advance mid-test
    mgr.EnableWal(cfg);
    TestTable table("t", 64);
    table.set_wal_id(1);
    for (int i = 0; i < 200; ++i) {
      Transaction t(&mgr);
      mgr.Begin(&t);
      if (i == 0) {
        ASSERT_EQ(t.Insert(table, 1, Row{0}), WriteStatus::kOk);
      } else {
        ASSERT_EQ(t.Update(table, table.Find(1), Row{i}, ColumnMask::All(),
                           false, WwPolicy::kFailFast),
                  WriteStatus::kOk);
      }
      Timestamp cts = 0;
      ASSERT_TRUE(PlainCommit(mgr, t, &cts));
      ASSERT_NE(t.wal_epoch(), 0u);
      // The alignment invariant behind checkpoint/recovery epoch cuts:
      // a redo record's block tag is never older than its commit TID's
      // epoch component (both are reads of the shared clock, tag second).
      EXPECT_LE(TsEpoch(cts), t.wal_epoch());
      ASSERT_TRUE(mgr.WalWaitDurable(&t));
      EXPECT_GE(mgr.wal()->durable_epoch(), t.wal_epoch());
    }
    // The flush rounds really advanced the shared clock past epoch 1, so
    // the assertion above covered epoch transitions, not just round zero.
    EXPECT_GT(mgr.epoch_clock().Current(), 1u);
  }
  fs::remove_all(dir);
}

/// Idle epoch headroom (§5h): TsEpoch is a bounded field of the commit
/// TID, so the flush timer must not burn it while nothing commits. An
/// idle log writer at a 200us interval used to bump the shared clock
/// ~5000 times per second around the clock; now an idle round publishes
/// durability at Current()-1 and leaves the clock alone. Tagging stays
/// sound because the emptiness probe happens after the Current() read:
/// any append the probe missed carries a tag >= Current(), above the
/// published durable epoch.
TEST(TimestampContract, IdleFlushRoundsBurnNoEpochHeadroom) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) / "ts_contract_idle_headroom";
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    wal::WalConfig cfg;
    cfg.dir = dir.string();
    cfg.ack = wal::WalConfig::Ack::kAsync;
    cfg.epoch_interval_us = 200;
    wal::LogManager lm(cfg);
    // One forced round so the writer has published at least one epoch.
    ASSERT_TRUE(lm.FlushNow());
    const uint64_t current = lm.current_epoch();
    const uint64_t durable = lm.durable_epoch();
    EXPECT_EQ(durable, current - 1);
    // ~250 timer rounds with nothing staged. Before the fix this burned
    // ~250 epochs of TID headroom; now the clock must not move at all.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_EQ(lm.current_epoch(), current);
    EXPECT_EQ(lm.durable_epoch(), durable);
    // The writer is still live: a forced flush bumps exactly once and
    // acknowledges it.
    ASSERT_TRUE(lm.FlushNow());
    EXPECT_EQ(lm.current_epoch(), current + 1);
    EXPECT_EQ(lm.durable_epoch(), durable + 1);
    lm.Stop();
  }
  fs::remove_all(dir);
}
#endif  // MV3C_WAL_ENABLED

}  // namespace
}  // namespace mv3c
