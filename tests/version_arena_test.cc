// VersionArena unit tests: slab bump allocation, seal/retire/recycle
// lifecycle, the bounded freelist, oversize fallback, sibling allocation
// (the Clone() path), failpoint-deferred retirement, and the double-free
// backstop. Engine-level integration (watermark interplay, chaos) lives in
// gc_test.cc and chaos_serializability_test.cc.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/failpoint.h"
#include "mvcc/version.h"
#include "mvcc/version_arena.h"

namespace mv3c {
namespace {

namespace fp = ::mv3c::failpoint;

// 64 bytes, 16-aligned: packs the 65472-byte slab payload exactly
// (1023 objects), so one extra allocation forces a seal.
struct PackedObj {
  uint64_t payload[8] = {0};
};
static_assert(sizeof(PackedObj) == 64);
constexpr size_t kPerSlab =
    arena_internal::kSlabPayloadBytes / sizeof(PackedObj);

class VersionArenaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!kVersionArenaEnabled) {
      GTEST_SKIP() << "built with -DMV3C_ARENA=OFF";
    }
  }
};

TEST_F(VersionArenaTest, CreateDestroyRoundTrip) {
  VersionArena arena;
  PackedObj* p = arena.Create<PackedObj>();
  ASSERT_NE(p, nullptr);
  p->payload[0] = 42;  // the memory is writable
  VersionArena::Stats s = arena.snapshot();
  EXPECT_EQ(s.allocations, 1u);
  EXPECT_EQ(s.frees, 0u);
  EXPECT_EQ(s.slabs_created, 1u);
  EXPECT_GE(s.bytes_bumped, sizeof(PackedObj));
  VersionArena::Destroy(p);
  s = arena.snapshot();
  EXPECT_EQ(s.frees, 1u);
  // The slab was never sealed (not full), so it is still the bump target:
  // no retirement, no recycle.
  EXPECT_EQ(s.slabs_retired, 0u);
}

TEST_F(VersionArenaTest, SealedAndDrainedSlabRecyclesOntoFreelist) {
  VersionArena arena;
  std::vector<PackedObj*> objs;
  // Fill slab 1 exactly, then one more to force the seal + a second slab.
  for (size_t i = 0; i < kPerSlab + 1; ++i) {
    objs.push_back(arena.Create<PackedObj>());
  }
  VersionArena::Stats s = arena.snapshot();
  EXPECT_EQ(s.slabs_created, 2u);
  // Drain slab 1: the last free retires it and recycles it.
  for (size_t i = 0; i < kPerSlab; ++i) VersionArena::Destroy(objs[i]);
  s = arena.snapshot();
  EXPECT_EQ(s.slabs_retired, 1u);
  EXPECT_EQ(s.slabs_recycled, 1u);
  EXPECT_EQ(s.freelist_slabs, 1u);
  EXPECT_EQ(s.slabs_freed, 0u);
  // The next slab roll-over takes the recycled slab instead of allocating.
  for (size_t i = 0; i < kPerSlab; ++i) {
    objs.push_back(arena.Create<PackedObj>());
  }
  s = arena.snapshot();
  EXPECT_EQ(s.slabs_created, 2u) << "recycled slab must be reused";
  EXPECT_EQ(s.freelist_slabs, 0u);
  for (size_t i = kPerSlab; i < objs.size(); ++i) {
    VersionArena::Destroy(objs[i]);
  }
}

TEST_F(VersionArenaTest, ObjectsNeverStraddleASlabBoundary) {
  VersionArena arena;
  // Leave 48 bytes of tail room in slab 1, then allocate a 64-byte object:
  // it must start in slab 2, not straddle the boundary.
  struct Odd {
    uint8_t b[48];
  };
  std::vector<void*> cleanup;
  for (size_t i = 0; i < kPerSlab - 1; ++i) {
    cleanup.push_back(arena.Create<PackedObj>());
  }
  Odd* odd = arena.Create<Odd>();  // fits the 64-byte tail exactly
  PackedObj* next = arena.Create<PackedObj>();  // must open slab 2
  EXPECT_EQ(arena_internal::Slab::Of(odd),
            arena_internal::Slab::Of(cleanup.front()));
  EXPECT_NE(arena_internal::Slab::Of(next),
            arena_internal::Slab::Of(cleanup.front()));
  EXPECT_EQ(arena.snapshot().slabs_created, 2u);
  for (void* p : cleanup) VersionArena::Destroy(static_cast<PackedObj*>(p));
  VersionArena::Destroy(odd);
  VersionArena::Destroy(next);
}

TEST_F(VersionArenaTest, FreelistIsBounded) {
  VersionArena arena;
  // Create and fully drain far more slabs than the freelist keeps. Drains
  // happen while later slabs are still live, so recycled slabs pile up
  // faster than reuse consumes them.
  const size_t kSlabs = VersionArena::kMaxFreeSlabs + 8;
  std::vector<std::vector<PackedObj*>> per_slab(kSlabs);
  for (size_t i = 0; i < kSlabs; ++i) {
    for (size_t j = 0; j < kPerSlab; ++j) {
      per_slab[i].push_back(arena.Create<PackedObj>());
    }
  }
  PackedObj* sentinel = arena.Create<PackedObj>();  // seals the last full slab
  for (auto& objs : per_slab) {
    for (PackedObj* p : objs) VersionArena::Destroy(p);
  }
  VersionArena::Destroy(sentinel);
  const VersionArena::Stats s = arena.snapshot();
  EXPECT_EQ(s.slabs_retired, kSlabs);
  EXPECT_LE(s.freelist_slabs, VersionArena::kMaxFreeSlabs);
  EXPECT_GT(s.slabs_freed, 0u) << "beyond the bound, slabs go to the OS";
  EXPECT_EQ(s.slabs_recycled + s.slabs_freed, s.slabs_retired);
}

TEST_F(VersionArenaTest, OversizeObjectGetsDedicatedBlockAndFreesEagerly) {
  VersionArena arena;
  struct Big {
    uint8_t bytes[arena_internal::kSlabPayloadBytes + 1000];
  };
  const uint64_t held_before = arena.snapshot().held_bytes;
  Big* big = arena.Create<Big>();
  big->bytes[sizeof(big->bytes) - 1] = 7;
  VersionArena::Stats s = arena.snapshot();
  EXPECT_EQ(s.oversize_allocs, 1u);
  EXPECT_GT(s.held_bytes, held_before + sizeof(Big) - 1);
  VersionArena::Destroy(big);
  s = arena.snapshot();
  // Oversize blocks never enter the freelist; the memory returns at once.
  EXPECT_EQ(s.held_bytes, held_before);
  EXPECT_GT(s.slabs_freed, 0u);
}

TEST_F(VersionArenaTest, CreateSiblingAllocatesFromTheSameArena) {
  VersionArena arena;
  PackedObj* a = arena.Create<PackedObj>();
  PackedObj* b = VersionArena::CreateSibling<PackedObj>(a);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(arena_internal::Slab::Of(a)->owner,
            arena_internal::Slab::Of(b)->owner);
  EXPECT_EQ(arena.snapshot().allocations, 2u);
  VersionArena::Destroy(a);
  VersionArena::Destroy(b);
  EXPECT_EQ(arena.snapshot().frees, 2u);
}

TEST_F(VersionArenaTest, FailpointDefersRetirementUntilDrain) {
  if (!fp::kEnabled) {
    GTEST_SKIP() << "built with -DMV3C_FAILPOINTS=OFF";
  }
  fp::Reset(/*seed=*/3);
  VersionArena arena;
  std::vector<PackedObj*> objs;
  for (size_t i = 0; i < kPerSlab + 1; ++i) {
    objs.push_back(arena.Create<PackedObj>());
  }
  {
    fp::Config cfg;
    cfg.probability = 1.0;
    fp::ScopedArm arm(fp::Site::kGcReclaim, cfg);
    for (size_t i = 0; i < kPerSlab; ++i) VersionArena::Destroy(objs[i]);
  }
  VersionArena::Stats s = arena.snapshot();
  EXPECT_EQ(s.retirements_deferred, 1u);
  EXPECT_EQ(s.deferred_slabs, 1u);
  EXPECT_EQ(s.slabs_recycled + s.slabs_freed, 0u);
  EXPECT_EQ(arena.DrainDeferred(), 1u);
  s = arena.snapshot();
  EXPECT_EQ(s.deferred_slabs, 0u);
  EXPECT_EQ(s.slabs_recycled, 1u);
  VersionArena::Destroy(objs.back());
  fp::Reset(0);
}

TEST_F(VersionArenaTest, SealRetiresAnAlreadyDrainedSlab) {
  VersionArena arena;
  // Fill slab 1 exactly and destroy everything while it is still the bump
  // target: the creation reference keeps it alive (live == 1), so nothing
  // retires yet. The next allocation seals it, drops that reference, and
  // the seal path itself must observe 1 -> 0 and retire the slab.
  std::vector<PackedObj*> objs;
  for (size_t i = 0; i < kPerSlab; ++i) objs.push_back(arena.Create<PackedObj>());
  for (PackedObj* p : objs) VersionArena::Destroy(p);
  VersionArena::Stats s = arena.snapshot();
  EXPECT_EQ(s.slabs_retired, 0u) << "creation reference must pin the slab";
  PackedObj* extra = arena.Create<PackedObj>();  // rolls over, seals slab 1
  s = arena.snapshot();
  EXPECT_EQ(s.slabs_retired, 1u);
  EXPECT_EQ(s.slabs_recycled, 1u);
  // The roll-over seals before taking a slab, so the retired slab recycles
  // straight back into the same slot — no second slab is ever created.
  EXPECT_EQ(s.freelist_slabs, 0u);
  EXPECT_EQ(s.slabs_created, 1u);
  VersionArena::Destroy(extra);
}

using VersionArenaDeathTest = VersionArenaTest;

TEST_F(VersionArenaDeathTest, DoubleFreeIsCaught) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Under -DMV3C_SANITIZE=address the poisoned range reports first; without
  // it, the second free drops the slab's creation reference and the
  // MV3C_CHECK in ReleaseObject aborts. Either way: death.
  EXPECT_DEATH(
      {
        VersionArena arena;
        PackedObj* p = arena.Create<PackedObj>();
        VersionArena::Destroy(p);
        VersionArena::Destroy(p);
      },
      "");
}

#if defined(MV3C_ARENA_ASAN)
// 256-byte row: the payload extends far past the VersionBase subobject.
struct WideRow {
  uint64_t cells[32] = {0};
};

TEST_F(VersionArenaDeathTest, DestroyThroughBasePointerPoisonsFullPayload) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Destroy is reached via VersionBase* (GC, chain teardown); the poisoned
  // extent must be the most-derived AllocSize(), not sizeof(VersionBase),
  // or a use-after-reclaim on the row payload escapes ASan.
  EXPECT_DEATH(
      {
        VersionArena arena;
        auto* v = arena.Create<Version<WideRow>>(
            /*table=*/nullptr, /*object=*/nullptr, Timestamp{1}, WideRow{});
        const uint64_t* payload = &v->data().cells[31];
        VersionArena::Destroy(static_cast<VersionBase*>(v));
        volatile uint64_t sink = *payload;
        (void)sink;
      },
      "use-after-poison");
}
#endif

#ifndef NDEBUG
TEST_F(VersionArenaDeathTest, LeakAtDestructionAbortsInDebug) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // A version outliving the arena means a table or the GC outlived the
  // TransactionManager; the destructor logs the leak count in every build
  // and aborts under !NDEBUG instead of leaving a silent use-after-free.
  EXPECT_DEATH(
      {
        VersionArena arena;
        arena.Create<PackedObj>();  // never destroyed
      },
      "leaked at arena destruction");
}
#endif

}  // namespace
}  // namespace mv3c
