// Tests for the execution drivers: window semantics (Appendix C), the
// completion callback, stream exhaustion, and the thread driver.

#include <gtest/gtest.h>

#include <set>

#include "driver/thread_driver.h"
#include "driver/window_driver.h"
#include "workloads/banking.h"

namespace mv3c {
namespace {

using banking::BankingDb;

class DriverTest : public ::testing::Test {
 protected:
  DriverTest() : db_(&mgr_, 64, 1000) { db_.Load(); }

  TransactionManager mgr_;
  BankingDb db_;
};

TEST_F(DriverTest, WindowOneIsSerial) {
  banking::TransferGenerator gen(64, 100, 3);
  WindowDriver<Mv3cExecutor> driver(
      1, [&](...) { return std::make_unique<Mv3cExecutor>(&mgr_); });
  const DriveResult r = driver.Run(CountedSource<Mv3cExecutor::Program>(
      200, [&](uint64_t) { return banking::Mv3cTransferMoney(db_, gen.Next()); }));
  EXPECT_EQ(r.committed + r.user_aborted, 200u);
  // Serial execution: no conflicts at all.
  uint64_t conflicts = 0;
  for (auto* e : driver.executors()) {
    conflicts += e->stats().validation_failures + e->stats().ww_restarts;
  }
  EXPECT_EQ(conflicts, 0u);
  EXPECT_EQ(r.steps, 200u);  // one step per transaction
  // Regression: Run() used to leave DriveResult::seconds at zero, which
  // made every WindowDriver-based benchmark divide by an external timer
  // that included setup. The driver now times the run itself.
  EXPECT_GT(r.seconds, 0.0);
}

TEST_F(DriverTest, CompletionCallbackSeesEveryStreamIndexOnce) {
  banking::TransferGenerator gen(64, 100, 5);
  WindowDriver<Mv3cExecutor> driver(
      8, [&](...) { return std::make_unique<Mv3cExecutor>(&mgr_); });
  std::set<uint64_t> seen;
  Timestamp last_cts = 0;
  bool cts_monotone_per_completion = true;
  driver.set_on_complete([&](uint64_t idx, StepResult r, Mv3cExecutor& e) {
    EXPECT_TRUE(seen.insert(idx).second) << "duplicate completion " << idx;
    if (r == StepResult::kCommitted && !e.txn().ReadOnly()) {
      // Commit timestamps grow over time (not necessarily in stream
      // order, but monotonically as completions happen).
      if (e.last_commit_ts() < last_cts) {
        // Completions within one window run in slot order while commits
        // happened earlier in the same Step; still monotone per commit.
        cts_monotone_per_completion = false;
      }
      last_cts = e.last_commit_ts();
    }
  });
  const DriveResult r = driver.Run(CountedSource<Mv3cExecutor::Program>(
      300, [&](uint64_t) { return banking::Mv3cTransferMoney(db_, gen.Next()); }));
  EXPECT_EQ(seen.size(), 300u);
  EXPECT_EQ(*seen.rbegin(), 299u);
  EXPECT_EQ(r.committed + r.user_aborted, 300u);
  EXPECT_TRUE(cts_monotone_per_completion);
}

TEST_F(DriverTest, EmptyStreamCompletesImmediately) {
  WindowDriver<Mv3cExecutor> driver(
      4, [&](...) { return std::make_unique<Mv3cExecutor>(&mgr_); });
  const DriveResult r = driver.Run(
      []() -> std::optional<Mv3cExecutor::Program> { return std::nullopt; });
  EXPECT_EQ(r.committed, 0u);
  EXPECT_EQ(r.steps, 0u);
}

TEST_F(DriverTest, RetriedTransactionsFinishAfterStreamEnds) {
  // A window larger than the stream: conflicts must still resolve.
  banking::TransferGenerator gen(64, 100, 9);
  WindowDriver<Mv3cExecutor> driver(
      32, [&](...) { return std::make_unique<Mv3cExecutor>(&mgr_); });
  const DriveResult r = driver.Run(CountedSource<Mv3cExecutor::Program>(
      16, [&](uint64_t) { return banking::Mv3cTransferMoney(db_, gen.Next()); }));
  EXPECT_EQ(r.committed + r.user_aborted, 16u);
  EXPECT_EQ(db_.TotalBalance(), 64 * 1000);
}

TEST_F(DriverTest, MaintenanceCadenceIsUnified) {
  // Conflict-free serial stream (window 1): every transaction completes in
  // one step, so steps == completions and only the completion trigger
  // (every 1024) can fire — the old split-counter scheme would have fired
  // an extra time from its independent step counter at 2048 because the
  // completion-path firings never reset it. 3000 transactions => firings
  // at completions 1024 and 2048 exactly.
  banking::TransferGenerator gen(64, 100, 3);
  uint64_t maintenance_calls = 0;
  WindowDriver<Mv3cExecutor> driver(
      1, [&](...) { return std::make_unique<Mv3cExecutor>(&mgr_); },
      [&] {
        ++maintenance_calls;
        mgr_.CollectGarbage();
      });
  const DriveResult r = driver.Run(CountedSource<Mv3cExecutor::Program>(
      3000,
      [&](uint64_t) { return banking::Mv3cTransferMoney(db_, gen.Next()); }));
  EXPECT_EQ(r.committed + r.user_aborted, 3000u);
  EXPECT_EQ(r.steps, 3000u);
  EXPECT_EQ(maintenance_calls, 2u);
  EXPECT_GT(r.seconds, 0.0);
}

TEST_F(DriverTest, ThreadDriverCompletesAndConserves) {
  banking::TransferGenerator gen(64, 100, 11);
  std::vector<banking::TransferParams> stream(500);
  for (auto& p : stream) p = gen.Next();
  const DriveResult r = ThreadDriver<Mv3cExecutor>::Run(
      3, stream.size(),
      [&](size_t) { return std::make_unique<Mv3cExecutor>(&mgr_); },
      [&](uint64_t i, size_t) {
        return banking::Mv3cTransferMoney(db_, stream[i]);
      },
      [&] { mgr_.CollectGarbage(); });
  EXPECT_EQ(r.committed + r.user_aborted, stream.size());
  EXPECT_EQ(db_.TotalBalance(), 64 * 1000);
  EXPECT_GT(r.seconds, 0.0);
}

}  // namespace
}  // namespace mv3c
