// TPC-C workload tests: loader invariants, each transaction type under
// both engines, the spec's consistency conditions after contended runs,
// and the contention behaviors the paper describes (§6.1.1): premature
// aborts on district/order collisions, repairable stock and payment
// conflicts.

#include <gtest/gtest.h>

#include "driver/window_driver.h"
#include "workloads/tpcc.h"

namespace mv3c {
namespace {

using namespace mv3c::tpcc;  // NOLINT

TpccScale TestScale() {
  TpccScale s;
  s.n_warehouses = 1;
  s.n_districts = 4;
  s.n_customers_per_d = 100;
  s.n_items = 500;
  s.preload_orders_per_d = 100;
  s.preload_new_orders_per_d = 30;
  return s;
}

class TpccTest : public ::testing::Test {
 protected:
  TpccTest() : db_(&mgr_, TestScale()) { db_.Load(7); }

  TransactionManager mgr_;
  TpccDb db_;
};

TEST_F(TpccTest, LoaderSatisfiesConsistencyConditions) {
  EXPECT_EQ(db_.warehouses.ObjectCount(), 1u);
  EXPECT_EQ(db_.districts.ObjectCount(), 4u);
  EXPECT_EQ(db_.customers.ObjectCount(), 400u);
  EXPECT_EQ(db_.items.ObjectCount(), 500u);
  EXPECT_EQ(db_.stock.ObjectCount(), 500u);
  EXPECT_EQ(db_.orders.ObjectCount(), 400u);
  EXPECT_EQ(db_.new_orders.ObjectCount(), 4u * 30);
  std::string why;
  EXPECT_TRUE(CheckConsistency(db_, &why)) << why;
}

TEST_F(TpccTest, NewOrderCommitsAndAdvancesDistrict) {
  TpccGenerator gen(db_.scale(), 3);
  TpccParams p;
  do {
    p = gen.Next();
  } while (p.type != TpccTxnType::kNewOrder ||
           p.items[p.ol_cnt - 1].i_id > db_.scale().n_items);
  Mv3cExecutor e(&mgr_);
  ASSERT_EQ(e.Run(Mv3cTpccProgram(db_, p)), StepResult::kCommitted);
  std::string why;
  EXPECT_TRUE(CheckConsistency(db_, &why)) << why;
  EXPECT_EQ(db_.orders.ObjectCount(), 401u);
  EXPECT_EQ(db_.new_orders.ObjectCount(), 121u);
}

TEST_F(TpccTest, NewOrderInvalidItemRollsBack) {
  TpccParams p;
  p.type = TpccTxnType::kNewOrder;
  p.w_id = 1;
  p.d_id = 1;
  p.c_id = 5;
  p.ol_cnt = 5;
  for (int i = 0; i < 5; ++i) {
    p.items[i] = {static_cast<uint64_t>(i + 1), 1, 3};
  }
  p.items[4].i_id = db_.scale().n_items + 1;  // invalid
  Mv3cExecutor e(&mgr_);
  ASSERT_EQ(e.Run(Mv3cTpccProgram(db_, p)), StepResult::kUserAborted);
  // No residue: next_o_id unchanged and the would-be order key invisible
  // (the data object may exist as a ghost from the rolled-back insert).
  std::string why;
  EXPECT_TRUE(CheckConsistency(db_, &why)) << why;
  OrderTable::Object* ghost = db_.orders.Find(OrderKey(1, 1, 101));
  if (ghost != nullptr) {
    EXPECT_EQ(ghost->ReadVisible(kTxnIdBase - 1, 0), nullptr);
  }

  OmvccExecutor o(&mgr_);
  ASSERT_EQ(o.Run(OmvccTpccProgram(db_, p)), StepResult::kUserAborted);
  EXPECT_TRUE(CheckConsistency(db_, &why)) << why;
}

TEST_F(TpccTest, PaymentByIdAndByLastName) {
  TpccParams p;
  p.type = TpccTxnType::kPayment;
  p.w_id = 1;
  p.d_id = 2;
  p.c_w_id = 1;
  p.c_d_id = 2;
  p.c_id = 7;
  p.amount = 1234;
  p.by_last_name = false;
  Mv3cExecutor e(&mgr_);
  ASSERT_EQ(e.Run(Mv3cTpccProgram(db_, p)), StepResult::kCommitted);

  p.by_last_name = true;
  p.c_last = 3;  // last-name ids 0..99 exist for the 100 customers
  OmvccExecutor o(&mgr_);
  ASSERT_EQ(o.Run(OmvccTpccProgram(db_, p)), StepResult::kCommitted);

  std::string why;
  EXPECT_TRUE(CheckConsistency(db_, &why)) << why;
}

TEST_F(TpccTest, DeliveryDrainsNewOrders) {
  TpccParams p;
  p.type = TpccTxnType::kDelivery;
  p.w_id = 1;
  p.carrier_id = 3;
  p.date = 99;
  const size_t before = db_.new_orders.ObjectCount();
  (void)before;
  Mv3cExecutor e(&mgr_);
  ASSERT_EQ(e.Run(Mv3cTpccProgram(db_, p)), StepResult::kCommitted);
  // One new-order per district delivered (tombstoned, object remains).
  // Check via a second delivery picking the NEXT order.
  OmvccExecutor o(&mgr_);
  ASSERT_EQ(o.Run(OmvccTpccProgram(db_, p)), StepResult::kCommitted);
  std::string why;
  EXPECT_TRUE(CheckConsistency(db_, &why)) << why;
}

TEST_F(TpccTest, OrderStatusAndStockLevelAreReadOnly) {
  TpccParams p;
  p.type = TpccTxnType::kOrderStatus;
  p.w_id = 1;
  p.d_id = 1;
  p.c_id = 3;
  p.by_last_name = false;
  Mv3cExecutor e(&mgr_);
  const StepResult r = e.Run(Mv3cTpccProgram(db_, p));
  // Customer 3 may or may not have an order in the permutation; both
  // outcomes are fine, but nothing may be written.
  EXPECT_TRUE(r == StepResult::kCommitted || r == StepResult::kUserAborted);
  EXPECT_EQ(e.txn().inner().undo_buffer().size(), 0u);

  p.type = TpccTxnType::kStockLevel;
  p.threshold = 15;
  Mv3cExecutor e2(&mgr_);
  ASSERT_EQ(e2.Run(Mv3cTpccProgram(db_, p)), StepResult::kCommitted);
  EXPECT_EQ(e2.stats().validation_failures, 0u);
}

// §6.1.1: concurrent New-Orders on the same district collide on the
// ORDER/NEW-ORDER keys and prematurely abort (fail-fast inserts).
TEST_F(TpccTest, ConcurrentNewOrdersPrematurelyAbort) {
  TpccParams p;
  p.type = TpccTxnType::kNewOrder;
  p.w_id = 1;
  p.d_id = 1;
  p.c_id = 5;
  p.ol_cnt = 5;
  for (int i = 0; i < 5; ++i) {
    p.items[i] = {static_cast<uint64_t>(10 + i), 1, 3};
  }
  TpccParams q = p;
  q.c_id = 9;
  for (int i = 0; i < 5; ++i) q.items[i].i_id = 100 + i;

  Mv3cExecutor a(&mgr_), b(&mgr_);
  a.Reset(Mv3cTpccProgram(db_, p));
  b.Reset(Mv3cTpccProgram(db_, q));
  a.Begin();
  b.Begin();
  // a executes (uncommitted); b picks the same o_id and collides.
  ASSERT_EQ(a.txn().RunProgram(Mv3cTpccProgram(db_, p)), ExecStatus::kOk);
  ASSERT_EQ(b.Step(), StepResult::kNeedsRetry);
  EXPECT_EQ(b.stats().ww_restarts, 1u);
  // Commit a, then b restarts cleanly with the next o_id.
  ASSERT_TRUE(mgr_.TryCommit(&a.txn().inner(), [&](CommittedRecord* h) {
    return a.txn().ValidateAndMark(h);
  }));
  StepResult r;
  int guard = 0;
  do {
    r = b.Step();
    ASSERT_LT(++guard, 10);
  } while (r == StepResult::kNeedsRetry);
  ASSERT_EQ(r, StepResult::kCommitted);
  std::string why;
  EXPECT_TRUE(CheckConsistency(db_, &why)) << why;
}

// Payment-vs-Payment on the same warehouse: the YTD RMW conflict is
// repaired by MV3C with a single closure re-execution.
TEST_F(TpccTest, ConcurrentPaymentsRepairWarehouseYtd) {
  TpccParams p;
  p.type = TpccTxnType::kPayment;
  p.w_id = 1;
  p.d_id = 1;
  p.c_w_id = 1;
  p.c_d_id = 1;
  p.c_id = 3;
  p.amount = 100;
  p.by_last_name = false;
  TpccParams q = p;
  q.d_id = 2;  // different district and customer: only warehouse conflicts
  q.c_d_id = 2;
  q.c_id = 8;
  q.amount = 500;

  Mv3cExecutor a(&mgr_), b(&mgr_);
  a.Reset(Mv3cTpccProgram(db_, p));
  b.Reset(Mv3cTpccProgram(db_, q));
  a.Begin();
  b.Begin();
  ASSERT_EQ(a.Step(), StepResult::kCommitted);
  ASSERT_EQ(b.Step(), StepResult::kNeedsRetry);
  ASSERT_EQ(b.Step(), StepResult::kCommitted);
  EXPECT_EQ(b.stats().repair_rounds, 1u);
  EXPECT_EQ(b.stats().reexecuted_closures, 1u);  // only the warehouse root
  std::string why;
  EXPECT_TRUE(CheckConsistency(db_, &why)) << why;
}

// New-Order and Payment on the same warehouse/district/customer do NOT
// conflict thanks to attribute-level validation (§4.1).
TEST_F(TpccTest, NewOrderAndPaymentDisjointColumns) {
  TpccParams no;
  no.type = TpccTxnType::kNewOrder;
  no.w_id = 1;
  no.d_id = 3;
  no.c_id = 11;
  no.ol_cnt = 5;
  for (int i = 0; i < 5; ++i) {
    no.items[i] = {static_cast<uint64_t>(20 + i), 1, 2};
  }
  TpccParams pay;
  pay.type = TpccTxnType::kPayment;
  pay.w_id = 1;
  pay.d_id = 3;
  pay.c_w_id = 1;
  pay.c_d_id = 3;
  pay.c_id = 11;
  pay.amount = 777;
  pay.by_last_name = false;

  Mv3cExecutor a(&mgr_), b(&mgr_);
  a.Reset(Mv3cTpccProgram(db_, pay));
  b.Reset(Mv3cTpccProgram(db_, no));
  a.Begin();
  b.Begin();
  ASSERT_EQ(a.Step(), StepResult::kCommitted);
  // b read W/D/C before a committed, but on columns a did not touch.
  ASSERT_EQ(b.Step(), StepResult::kCommitted);
  EXPECT_EQ(b.stats().validation_failures, 0u);
  std::string why;
  EXPECT_TRUE(CheckConsistency(db_, &why)) << why;
}

// Full-mix window runs stay consistent under both engines.
TEST_F(TpccTest, WindowMixedRunKeepsConsistency) {
  TpccGenerator gen(db_.scale(), 17);
  std::vector<TpccParams> stream;
  for (int i = 0; i < 1000; ++i) stream.push_back(gen.Next());

  WindowDriver<Mv3cExecutor> driver(
      8, [&](...) { return std::make_unique<Mv3cExecutor>(&mgr_); },
      [&] { mgr_.CollectGarbage(); });
  const DriveResult res = driver.Run(CountedSource<Mv3cExecutor::Program>(
      stream.size(),
      [&](uint64_t i) { return Mv3cTpccProgram(db_, stream[i]); }));
  EXPECT_EQ(res.committed + res.user_aborted, stream.size());
  std::string why;
  EXPECT_TRUE(CheckConsistency(db_, &why)) << why;

  // Same stream on a fresh OMVCC-driven database: same commit count is not
  // guaranteed (user-abort divergence through by-name scans is possible but
  // parameters here avoid it), but consistency must hold.
  TransactionManager mgr2;
  TpccDb db2(&mgr2, TestScale());
  db2.Load(7);
  WindowDriver<OmvccExecutor> driver2(
      8, [&](...) { return std::make_unique<OmvccExecutor>(&mgr2); },
      [&] { mgr2.CollectGarbage(); });
  const DriveResult res2 = driver2.Run(CountedSource<OmvccExecutor::Program>(
      stream.size(),
      [&](uint64_t i) { return OmvccTpccProgram(db2, stream[i]); }));
  EXPECT_EQ(res2.committed + res2.user_aborted, stream.size());
  EXPECT_TRUE(CheckConsistency(db2, &why)) << why;
}

TEST_F(TpccTest, CleanupNewOrderQueueRemovesDeliveredGhosts) {
  const size_t before = db_.new_order_queue.Size();
  // Deliver everything: each Delivery takes one order per district.
  TpccParams p;
  p.type = TpccTxnType::kDelivery;
  p.w_id = 1;
  p.carrier_id = 1;
  for (int i = 0; i < 10; ++i) {
    p.date = 100 + i;
    Mv3cExecutor e(&mgr_);
    ASSERT_EQ(e.Run(Mv3cTpccProgram(db_, p)), StepResult::kCommitted);
  }
  // 10 deliveries x 4 districts = 40 tombstoned queue entries.
  EXPECT_EQ(db_.new_order_queue.Size(), before);  // ghosts still indexed
  const size_t removed = db_.CleanupNewOrderQueue();
  EXPECT_EQ(removed, 40u);
  EXPECT_EQ(db_.new_order_queue.Size(), before - 40);
  // Delivery still works after cleanup (next oldest order found).
  p.date = 200;
  Mv3cExecutor e(&mgr_);
  ASSERT_EQ(e.Run(Mv3cTpccProgram(db_, p)), StepResult::kCommitted);
  std::string why;
  EXPECT_TRUE(CheckConsistency(db_, &why)) << why;
}

TEST_F(TpccTest, CleanupStopsAtActiveSnapshots) {
  // A reader holding an old snapshot pins delivered rows: cleanup must
  // not remove entries it could still see.
  Mv3cTransaction pinned(&mgr_);
  mgr_.Begin(&pinned.inner());
  TpccParams p;
  p.type = TpccTxnType::kDelivery;
  p.w_id = 1;
  p.carrier_id = 1;
  p.date = 300;
  Mv3cExecutor e(&mgr_);
  ASSERT_EQ(e.Run(Mv3cTpccProgram(db_, p)), StepResult::kCommitted);
  EXPECT_EQ(db_.CleanupNewOrderQueue(), 0u);  // pinned snapshot blocks
  mgr_.CommitReadOnly(&pinned.inner());
  EXPECT_EQ(db_.CleanupNewOrderQueue(), 4u);  // one per district
}

TEST(TpccMultiWarehouseTest, RemoteTransactionsStayConsistent) {
  TpccScale scale = TestScale();
  scale.n_warehouses = 3;
  TransactionManager mgr;
  TpccDb db(&mgr, scale);
  db.Load(11);
  TpccGenerator gen(scale, 29);
  std::vector<TpccParams> stream;
  for (int i = 0; i < 600; ++i) stream.push_back(gen.Next());
  // The generator emits remote payments and remote stock updates for W>1.
  bool any_remote = false;
  for (const auto& p : stream) {
    if (p.type == TpccTxnType::kPayment && p.c_w_id != p.w_id) {
      any_remote = true;
    }
  }
  EXPECT_TRUE(any_remote);
  WindowDriver<Mv3cExecutor> driver(
      8, [&](...) { return std::make_unique<Mv3cExecutor>(&mgr); },
      [&] { mgr.CollectGarbage(); });
  const DriveResult res = driver.Run(CountedSource<Mv3cExecutor::Program>(
      stream.size(),
      [&](uint64_t i) { return Mv3cTpccProgram(db, stream[i]); }));
  EXPECT_EQ(res.committed + res.user_aborted, stream.size());
  std::string why;
  EXPECT_TRUE(CheckConsistency(db, &why)) << why;
}

}  // namespace
}  // namespace mv3c
