// Prometheus text-exposition grammar tests for src/obs/prom_export
// (DESIGN §5k). A small validator parses the writer's output against the
// 0.0.4 format contract — name charsets, HELP/TYPE pairing, family
// contiguity, label escaping, cumulative histogram buckets ending at
// le="+Inf" — so the /metrics endpoint and tools/metrics_dump share a
// checked implementation instead of two ad-hoc printf formats.

#include "obs/prom_export.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace mv3c::obs {
namespace {

bool ValidLabelNameForTest(const std::string& s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
    return false;
  }
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
  }
  return true;
}

struct Sample {
  std::string name;
  std::map<std::string, std::string> labels;  // unescaped values
  double value = 0;
};

/// Minimal exposition-format parser. Returns false (with `why`) on any
/// grammar violation; fills families (name -> type) and samples.
bool ParseExposition(const std::string& text,
                     std::map<std::string, std::string>* families,
                     std::vector<Sample>* samples, std::string* why) {
  std::istringstream in(text);
  std::string line;
  std::string open_family;  // samples must be contiguous per family
  std::map<std::string, bool> family_closed;
  int lineno = 0;
  auto fail = [&](const std::string& m) {
    *why = "line " + std::to_string(lineno) + ": " + m + " [" + line + "]";
    return false;
  };
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) return fail("empty line");
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string hash, kind, name;
      ls >> hash >> kind >> name;
      if (kind != "HELP" && kind != "TYPE") return fail("unknown comment");
      if (!ValidMetricName(name)) return fail("bad family name " + name);
      if (kind == "TYPE") {
        std::string type;
        ls >> type;
        if (type != "counter" && type != "gauge" && type != "histogram") {
          return fail("bad type " + type);
        }
        if (families->count(name) != 0) return fail("duplicate TYPE " + name);
        (*families)[name] = type;
        if (!open_family.empty()) family_closed[open_family] = true;
        if (family_closed[name]) return fail("family reopened: " + name);
        open_family = name;
      }
      continue;
    }
    // Sample line: name[{labels}] value
    Sample s;
    size_t i = 0;
    while (i < line.size() && line[i] != '{' && line[i] != ' ') ++i;
    s.name = line.substr(0, i);
    if (!ValidMetricName(s.name)) return fail("bad sample name " + s.name);
    if (i < line.size() && line[i] == '{') {
      ++i;
      while (i < line.size() && line[i] != '}') {
        size_t eq = line.find('=', i);
        if (eq == std::string::npos) return fail("label missing '='");
        const std::string lname = line.substr(i, eq - i);
        if (!ValidLabelNameForTest(lname)) return fail("bad label " + lname);
        if (eq + 1 >= line.size() || line[eq + 1] != '"') {
          return fail("label value not quoted");
        }
        std::string val;
        size_t j = eq + 2;
        for (; j < line.size() && line[j] != '"'; ++j) {
          if (line[j] == '\\') {
            if (j + 1 >= line.size()) return fail("dangling escape");
            ++j;
            if (line[j] == 'n') {
              val += '\n';
            } else if (line[j] == '\\' || line[j] == '"') {
              val += line[j];
            } else {
              return fail("bad escape");
            }
          } else if (line[j] == '\n') {
            return fail("raw newline in label value");
          } else {
            val += line[j];
          }
        }
        if (j >= line.size()) return fail("unterminated label value");
        s.labels[lname] = val;
        i = j + 1;
        if (i < line.size() && line[i] == ',') ++i;
      }
      if (i >= line.size() || line[i] != '}') return fail("unterminated {}");
      ++i;
    }
    if (i >= line.size() || line[i] != ' ') return fail("missing value");
    const std::string vstr = line.substr(i + 1);
    if (vstr == "+Inf") {
      s.value = HUGE_VAL;
    } else {
      char* end = nullptr;
      s.value = std::strtod(vstr.c_str(), &end);
      if (end == nullptr || *end != '\0') return fail("bad value " + vstr);
    }
    // The sample must belong to the currently open family (histogram
    // samples use the family name + _bucket/_sum/_count suffixes).
    const bool belongs =
        s.name == open_family || s.name == open_family + "_bucket" ||
        s.name == open_family + "_sum" || s.name == open_family + "_count";
    if (!belongs) return fail("sample outside its family: " + s.name);
    samples->push_back(std::move(s));
  }
  return true;
}

/// Validates every histogram family: cumulative buckets in increasing le
/// order, last bucket le="+Inf" equal to _count, _sum present.
bool CheckHistograms(const std::map<std::string, std::string>& families,
                     const std::vector<Sample>& samples, std::string* why) {
  for (const auto& [fam, type] : families) {
    if (type != "histogram") continue;
    double last_le = -HUGE_VAL, last_cum = -1, inf_count = -1;
    double count = -1;
    bool saw_sum = false, saw_inf = false;
    for (const Sample& s : samples) {
      if (s.name == fam + "_bucket") {
        const auto it = s.labels.find("le");
        if (it == s.labels.end()) {
          *why = fam + ": bucket without le";
          return false;
        }
        const double le =
            it->second == "+Inf" ? HUGE_VAL : std::atof(it->second.c_str());
        if (le <= last_le) {
          *why = fam + ": le not increasing";
          return false;
        }
        if (s.value < last_cum) {
          *why = fam + ": buckets not cumulative";
          return false;
        }
        last_le = le;
        last_cum = s.value;
        if (le == HUGE_VAL) {
          saw_inf = true;
          inf_count = s.value;
        }
      } else if (s.name == fam + "_sum") {
        saw_sum = true;
      } else if (s.name == fam + "_count") {
        count = s.value;
      }
    }
    if (!saw_inf || !saw_sum || count < 0) {
      *why = fam + ": missing +Inf bucket, _sum, or _count";
      return false;
    }
    if (inf_count != count) {
      *why = fam + ": +Inf bucket != _count";
      return false;
    }
  }
  return true;
}

testing::AssertionResult WellFormed(const std::string& text) {
  std::map<std::string, std::string> families;
  std::vector<Sample> samples;
  std::string why;
  if (!ParseExposition(text, &families, &samples, &why)) {
    return testing::AssertionFailure() << why;
  }
  if (!CheckHistograms(families, samples, &why)) {
    return testing::AssertionFailure() << why;
  }
  return testing::AssertionSuccess();
}

TEST(ValidMetricNameTest, Charset) {
  EXPECT_TRUE(ValidMetricName("mv3c_server_txn_committed_total"));
  EXPECT_TRUE(ValidMetricName("a:b_c9"));
  EXPECT_TRUE(ValidMetricName("_private"));
  EXPECT_FALSE(ValidMetricName(""));
  EXPECT_FALSE(ValidMetricName("9starts_with_digit"));
  EXPECT_FALSE(ValidMetricName("has-dash"));
  EXPECT_FALSE(ValidMetricName("has space"));
  EXPECT_FALSE(ValidMetricName("unicode\xc3\xa9"));
}

TEST(PromTextWriterTest, CounterGetsTotalSuffixAndHeaders) {
  PromTextWriter w;
  w.Counter("reqs", "requests served", 42);
  const std::string& out = w.str();
  EXPECT_NE(out.find("# HELP reqs_total requests served\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE reqs_total counter\n"), std::string::npos);
  EXPECT_NE(out.find("\nreqs_total 42\n"), std::string::npos);
  EXPECT_TRUE(WellFormed(out));
}

TEST(PromTextWriterTest, GaugeKeepsBareName) {
  PromTextWriter w;
  w.Gauge("queue_depth", "waiting requests", 7.5);
  EXPECT_NE(w.str().find("# TYPE queue_depth gauge\n"), std::string::npos);
  EXPECT_EQ(w.str().find("_total"), std::string::npos);
  EXPECT_TRUE(WellFormed(w.str()));
}

TEST(PromTextWriterTest, LabelValueEscaping) {
  PromTextWriter w;
  w.Counter("evil", "h", 1,
            {{"path", "a\\b"}, {"quote", "say \"hi\""}, {"nl", "two\nlines"}});
  std::map<std::string, std::string> families;
  std::vector<Sample> samples;
  std::string why;
  ASSERT_TRUE(ParseExposition(w.str(), &families, &samples, &why)) << why;
  ASSERT_EQ(samples.size(), 1u);
  // Round-trip: the parser unescapes back to the original values.
  EXPECT_EQ(samples[0].labels.at("path"), "a\\b");
  EXPECT_EQ(samples[0].labels.at("quote"), "say \"hi\"");
  EXPECT_EQ(samples[0].labels.at("nl"), "two\nlines");
  // And no raw newline leaked into the sample line.
  EXPECT_TRUE(WellFormed(w.str()));
}

TEST(PromTextWriterTest, HelpEscaping) {
  PromTextWriter w;
  w.Gauge("g", "line1\nline2 with \\ backslash", 1);
  // The HELP text must stay on one line.
  std::string out = w.str();
  size_t help = out.find("# HELP g ");
  ASSERT_NE(help, std::string::npos);
  size_t eol = out.find('\n', help);
  EXPECT_NE(out.substr(help, eol - help).find("\\n"), std::string::npos);
  EXPECT_TRUE(WellFormed(out));
}

TEST(PromTextWriterTest, HistogramGrammar) {
  HistogramSnapshot h;
  h.ticks_per_ns = 1.0;  // 1 tick == 1 ns: le edges are 2^(i+1)-1 ns
  h.count = 10;
  h.sum_ticks = 5000;
  h.max_ticks = 900;
  h.buckets[4] = 3;  // 16..31 ticks
  h.buckets[7] = 5;  // 128..255
  h.buckets[9] = 2;  // 512..1023
  PromTextWriter w;
  w.Histogram("lat", "latency", h, {{"phase", "commit"}});
  EXPECT_TRUE(WellFormed(w.str()));
  // Cumulative counts: bucket 4 edge carries 3, bucket 7 edge 8, +Inf 10.
  EXPECT_NE(w.str().find("} 3\n"), std::string::npos);
  EXPECT_NE(w.str().find("} 8\n"), std::string::npos);
  EXPECT_NE(w.str().find("le=\"+Inf\""), std::string::npos);
  EXPECT_NE(w.str().find("lat_count{phase=\"commit\"} 10\n"),
            std::string::npos);
  EXPECT_NE(w.str().find("lat_sum{"), std::string::npos);
}

TEST(PromTextWriterTest, EmptyHistogramStillWellFormed) {
  HistogramSnapshot h;  // count == 0
  PromTextWriter w;
  w.Histogram("idle", "never sampled", h);
  EXPECT_TRUE(WellFormed(w.str()));
  EXPECT_NE(w.str().find("idle_count 0\n"), std::string::npos);
}

TEST(WriteSnapshotTest, CountersAndMaxAsGauge) {
  MetricsSnapshot snap;
  snap.counters.push_back({"commits", 123, MergeKind::kSum});
  snap.counters.push_back({"max_rounds", 7, MergeKind::kMax});
  snap.phases[static_cast<int>(Phase::kCommit)].count = 4;
  snap.phases[static_cast<int>(Phase::kCommit)].sum_ticks = 400;
  snap.phases[static_cast<int>(Phase::kCommit)].max_ticks = 200;
  snap.phases[static_cast<int>(Phase::kCommit)].buckets[6] = 4;

  PromTextWriter w;
  WriteSnapshot(&w, snap, "mv3c_engine", {{"engine", "mv3c"}});
  const std::string& out = w.str();
  EXPECT_TRUE(WellFormed(out));
  // kSum counter -> counter family with _total.
  EXPECT_NE(out.find("# TYPE mv3c_engine_commits_total counter"),
            std::string::npos);
  EXPECT_NE(out.find("mv3c_engine_commits_total{engine=\"mv3c\"} 123"),
            std::string::npos);
  // kMax counter -> gauge, no _total (a high-water mark is not monotonic).
  EXPECT_NE(out.find("# TYPE mv3c_engine_max_rounds gauge"),
            std::string::npos);
  EXPECT_EQ(out.find("max_rounds_total"), std::string::npos);
  // Non-empty phase -> histogram family; empty phases omitted.
  EXPECT_NE(out.find("# TYPE mv3c_engine_phase_commit_seconds histogram"),
            std::string::npos);
  EXPECT_EQ(out.find("phase_execute"), std::string::npos);
}

TEST(WriteSnapshotTest, EmptySnapshotIsEmptyText) {
  MetricsSnapshot snap;
  PromTextWriter w;
  WriteSnapshot(&w, snap, "x");
  EXPECT_TRUE(w.str().empty());
  EXPECT_TRUE(WellFormed(w.str()));
}

}  // namespace
}  // namespace mv3c::obs
