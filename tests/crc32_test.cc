// CRC32-C unit tests: known-answer vectors, the incremental-update
// contract, and hardware/table-path equivalence. These protect the WAL's
// torn-tail detection — a CRC implementation drift would silently change
// the on-disk format.

#include "common/crc32.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace mv3c {
namespace {

TEST(Crc32Test, CheckVector) {
  // The canonical CRC32-C check value.
  EXPECT_EQ(crc32::Compute("123456789", 9), 0xE3069283u);
}

TEST(Crc32Test, Rfc7143Vectors) {
  // iSCSI (RFC 7143 / RFC 3720 B.4) test patterns.
  uint8_t zeros[32];
  std::memset(zeros, 0x00, sizeof(zeros));
  EXPECT_EQ(crc32::Compute(zeros, sizeof(zeros)), 0x8A9136AAu);

  uint8_t ones[32];
  std::memset(ones, 0xFF, sizeof(ones));
  EXPECT_EQ(crc32::Compute(ones, sizeof(ones)), 0x62A8AB43u);

  uint8_t incr[32];
  for (int i = 0; i < 32; ++i) incr[i] = static_cast<uint8_t>(i);
  EXPECT_EQ(crc32::Compute(incr, sizeof(incr)), 0x46DD794Eu);
}

TEST(Crc32Test, SingleByte) {
  EXPECT_EQ(crc32::Compute("a", 1), 0xC1D04330u);
}

TEST(Crc32Test, EmptyIsZero) {
  EXPECT_EQ(crc32::Compute(nullptr, 0), 0u);
  EXPECT_EQ(crc32::Extend(0x12345678u, nullptr, 0), 0x12345678u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  // Feeding a buffer in arbitrary splits must equal the one-shot value —
  // RecordCrcOk extends a header CRC over the key/value bytes.
  std::vector<uint8_t> buf(1027);
  uint64_t x = 0x243F6A8885A308D3ull;  // deterministic pseudo-random fill
  for (auto& b : buf) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    b = static_cast<uint8_t>(x >> 56);
  }
  const uint32_t oneshot = crc32::Compute(buf.data(), buf.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{7}, size_t{8},
                       size_t{512}, buf.size() - 1, buf.size()}) {
    uint32_t c = crc32::Extend(0, buf.data(), split);
    c = crc32::Extend(c, buf.data() + split, buf.size() - split);
    EXPECT_EQ(c, oneshot) << "split at " << split;
  }
  // Many small chunks of awkward sizes.
  uint32_t c = 0;
  size_t off = 0;
  for (size_t step = 1; off < buf.size(); step = step * 2 + 1) {
    const size_t n = std::min(step, buf.size() - off);
    c = crc32::Extend(c, buf.data() + off, n);
    off += n;
  }
  EXPECT_EQ(c, oneshot);
}

TEST(Crc32Test, DetectsBitFlip) {
  std::string msg = "the quick brown fox jumps over the lazy dog";
  const uint32_t base = crc32::Compute(msg.data(), msg.size());
  for (size_t i = 0; i < msg.size(); i += 5) {
    std::string corrupt = msg;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x20);
    EXPECT_NE(crc32::Compute(corrupt.data(), corrupt.size()), base);
  }
}

TEST(Crc32Test, HardwarePathSmoke) {
  // Whichever path dispatch picked must produce the canonical values
  // (covered above); this just records which one runs so a CI log shows
  // whether the SSE4.2 path got exercised.
  SUCCEED() << "hardware crc32: "
            << (crc32::HardwareAccelerated() ? "yes" : "no");
}

}  // namespace
}  // namespace mv3c
