// Crash-chaos tests for the WAL: seeded failpoints inject the three
// classic durability faults (torn block write, crash between append and
// fsync, fsync failure) into a live banking run, and recovery of whatever
// reached the disk must yield a transaction-consistent prefix — the
// conservation invariant (total balance unchanged by any transfer prefix)
// is the consistency oracle. Requires -DMV3C_FAILPOINTS=ON; skips
// otherwise.

#include <cstdint>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "wal/catalog.h"
#include "wal/log_manager.h"
#include "wal/state_hash.h"
#include "workloads/wal_registry.h"

namespace mv3c {
namespace {

namespace fs = std::filesystem;
namespace fp = ::mv3c::failpoint;

constexpr int64_t kAccounts = 100;
constexpr int64_t kInitial = 10'000;
constexpr int64_t kTotal = kAccounts * kInitial;

class WalChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!fp::kEnabled) {
      GTEST_SKIP() << "failpoint hooks compiled out (MV3C_FAILPOINTS=OFF)";
    }
    dir_ = fs::path(::testing::TempDir()) /
           ("wal_chaos_" +
            std::string(
                ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    fp::Reset(0xC4A05'5EEDull);
  }
  void TearDown() override {
    if (fp::kEnabled) fp::DisarmAll();
    fs::remove_all(dir_);
  }

  struct CrashRun {
    uint64_t durable_epoch_at_crash = 0;
    uint64_t committed_after_arm = 0;
    uint64_t flush_failures = 0;
  };

  /// Runs banking with the WAL on: establishes a durable prefix, arms
  /// `site` to fire on the next non-empty flush round, keeps committing
  /// until the log crashes.
  CrashRun RunUntilCrash(fp::Site site) {
    CrashRun out;
    TransactionManager mgr;
    wal::WalConfig cfg;
    cfg.dir = dir_.string();
    cfg.ack = wal::WalConfig::Ack::kAsync;
    cfg.epoch_interval_us = 50;
    mgr.EnableWal(cfg);
    banking::BankingDb db(&mgr, kAccounts, kInitial);
    wal::Catalog cat;
    RegisterWalTables(cat, db);
    db.Load();

    banking::TransferGenerator gen(kAccounts, 100, /*seed=*/11);
    Mv3cExecutor e(&mgr);
    for (int i = 0; i < 100; ++i) {
      (void)e.Run(banking::Mv3cTransferMoney(db, gen.Next()));
    }
    // The pre-fault history is durable; everything after this point may
    // be lost, but never torn mid-transaction.
    EXPECT_TRUE(mgr.wal()->FlushNow());
    EXPECT_FALSE(mgr.wal()->crashed());

    fp::Config fc;
    fc.action = fp::Action::kFail;
    fc.probability = 1.0;
    fc.max_trips = 1;
    fp::Arm(site, fc);

    // Commit until the writer hits the fault (it only evaluates the site
    // on non-empty rounds, so committing guarantees progress).
    for (int i = 0; i < 5000 && !mgr.wal()->crashed(); ++i) {
      if (e.Run(banking::Mv3cTransferMoney(db, gen.Next())) ==
          StepResult::kCommitted) {
        ++out.committed_after_arm;
      }
    }
    EXPECT_TRUE(mgr.wal()->crashed());
    EXPECT_EQ(fp::Trips(site), 1u);
    // Crashed log: durability waits must fail, not hang.
    EXPECT_FALSE(mgr.wal()->WaitDurable(mgr.wal()->current_epoch()));
    EXPECT_FALSE(mgr.wal()->FlushNow());
    out.durable_epoch_at_crash = mgr.wal()->durable_epoch();
    out.flush_failures =
        mgr.wal()->metrics().Snapshot().Value("wal_flush_failures");
    // The in-memory database is still live and consistent even though
    // durability is gone (commits outran the log, as async ack allows).
    EXPECT_EQ(db.TotalBalance(), kTotal);
    mgr.DisableWal();
    return out;
  }

  struct Recovered {
    wal::RecoveryReport report;
    int64_t total = 0;
    uint64_t live_rows = 0;
  };

  Recovered Recover() {
    Recovered r;
    TransactionManager mgr;
    banking::BankingDb db(&mgr, kAccounts, kInitial);
    wal::Catalog cat;
    RegisterWalTables(cat, db);
    r.report = cat.Recover(dir_.string());
    r.total = db.TotalBalance();
    r.live_rows = wal::DigestMvccTable(db.accounts).live_rows;
    return r;
  }

  /// The shared postcondition: recovery lands on a transaction-consistent
  /// prefix that includes at least the pre-fault durable history.
  void ExpectConsistentPrefix(const Recovered& r, const CrashRun& run) {
    EXPECT_GE(r.report.max_epoch, 1u);
    EXPECT_GT(r.report.records_applied, 0u);
    EXPECT_EQ(r.report.records_skipped_unknown_table, 0u);
    // The population transaction and the 100 pre-fault transfers were
    // acknowledged durable, so every account row exists and conservation
    // holds regardless of where the fault cut the tail.
    EXPECT_EQ(r.live_rows, static_cast<uint64_t>(kAccounts) + 1);
    EXPECT_EQ(r.total, kTotal);
    // Nothing beyond what the log acknowledged... except for the
    // append-then-crash faults, where one written-but-unacknowledged
    // block may legitimately survive (checked per-site below).
    (void)run;
  }

  fs::path dir_;
};

TEST_F(WalChaosTest, TornBlockWrite) {
  const CrashRun run = RunUntilCrash(fp::Site::kWalShortWrite);
  const Recovered r = Recover();
  // Half a block reached the file: recovery must detect the tear and cut
  // exactly there. (LE, not EQ: empty rounds advance the durable epoch
  // without writing a block.)
  EXPECT_TRUE(r.report.torn_tail) << r.report.stop_reason;
  EXPECT_LE(r.report.max_epoch, run.durable_epoch_at_crash);
  ExpectConsistentPrefix(r, run);
}

TEST_F(WalChaosTest, CrashBetweenAppendAndFsync) {
  const CrashRun run = RunUntilCrash(fp::Site::kWalCrashAfterAppend);
  const Recovered r = Recover();
  // The block's bytes reached the file intact but were never fsynced: on
  // a real crash either outcome is legal. Reading the surviving file, the
  // block is whole, so recovery replays one epoch past the acknowledged
  // durable point — allowed, as long as the result is still a consistent
  // prefix.
  EXPECT_FALSE(r.report.torn_tail) << r.report.stop_reason;
  EXPECT_GE(r.report.max_epoch, run.durable_epoch_at_crash);
  ExpectConsistentPrefix(r, run);
}

TEST_F(WalChaosTest, FsyncFailureFreezesLog) {
  const CrashRun run = RunUntilCrash(fp::Site::kWalFsyncFail);
  EXPECT_EQ(run.flush_failures, 1u);
  const Recovered r = Recover();
  EXPECT_FALSE(r.report.torn_tail) << r.report.stop_reason;
  EXPECT_GE(r.report.max_epoch, run.durable_epoch_at_crash);
  ExpectConsistentPrefix(r, run);
}

// Same seed, same fault site, fresh directory: the recovered prefix is a
// deterministic function of the single-threaded commit order up to the
// (timing-dependent) cut point, so both runs must satisfy the oracle —
// and the schedule bookkeeping must show exactly one firing each.
TEST_F(WalChaosTest, RepeatedTornWritesAlwaysRecoverConsistently) {
  for (int round = 0; round < 3; ++round) {
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    fp::Reset(1000 + static_cast<uint64_t>(round));
    const CrashRun run = RunUntilCrash(fp::Site::kWalShortWrite);
    const Recovered r = Recover();
    EXPECT_TRUE(r.report.torn_tail);
    ExpectConsistentPrefix(r, run);
    fp::DisarmAll();
  }
}

}  // namespace
}  // namespace mv3c
